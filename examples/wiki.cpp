// A miniature MediaWiki-style application ported to TxCache, following the paper's §7.2 notes:
//
//   * article rendering cached as a function of (title, revision-independent): the dominant
//     read path, invalidated automatically on edit;
//   * a localization cache: interface messages scanned once and cached (wildcard-tagged, so a
//     message edit invalidates it — rare);
//   * the user-object trap the paper describes: MediaWiki cached each user's edit count inside
//     the USER object and *forgot to invalidate it on edit* (bug #8391). With TxCache the
//     dependency is tracked automatically — no developer reasoning required.
//
// Run: ./build/examples/wiki
#include <cstdio>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"

using namespace txcache;

namespace {

struct ArticleCols {
  enum : ColumnId { kId, kTitle, kBody, kRevision, kLastEditor, kCount };
};
struct UserCols {
  enum : ColumnId { kId, kName, kEditCount, kCount };
};
struct MessageCols {
  enum : ColumnId { kKey, kText, kCount };
};

struct RenderedPage {
  std::string html;
  template <typename F>
  void ForEachField(F&& f) {
    f(html);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(html);
  }
};

struct UserCard {
  std::string name;
  int64_t edit_count = 0;
  template <typename F>
  void ForEachField(F&& f) {
    f(name), f(edit_count);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(name), f(edit_count);
  }
};

}  // namespace

int main() {
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer cache("wiki-cache", &clock);
  bus.Subscribe(&cache);
  CacheCluster cluster;
  cluster.AddNode(&cache);
  Pincushion pincushion(&db, &clock);

  // --- schema ---
  db.CreateTable(TableSchema{"articles",
                             {{"id", ValueType::kInt, false},
                              {"title", ValueType::kString, false},
                              {"body", ValueType::kString, false},
                              {"revision", ValueType::kInt, false},
                              {"last_editor", ValueType::kInt, false}}});
  db.CreateIndex(IndexSchema{"articles_pk", "articles", {ArticleCols::kId}, true});
  db.CreateIndex(IndexSchema{"articles_by_title", "articles", {ArticleCols::kTitle}, true});
  db.CreateTable(TableSchema{"wiki_users",
                             {{"id", ValueType::kInt, false},
                              {"name", ValueType::kString, false},
                              {"edit_count", ValueType::kInt, false}}});
  db.CreateIndex(IndexSchema{"wiki_users_pk", "wiki_users", {UserCols::kId}, true});
  db.CreateTable(TableSchema{"messages",
                             {{"key", ValueType::kString, false},
                              {"text", ValueType::kString, false}}});
  db.CreateIndex(IndexSchema{"messages_pk", "messages", {MessageCols::kKey}, true});

  {
    TxnId txn = db.BeginReadWrite();
    db.Insert(txn, "articles",
              Row{Value(1), Value("TxCache"), Value("A transactional cache."), Value(1),
                  Value(100)});
    db.Insert(txn, "wiki_users", Row{Value(100), Value("Alice"), Value(41)});
    db.Insert(txn, "messages", Row{Value("sidebar"), Value("Main page | Random | Help")});
    db.Insert(txn, "messages", Row{Value("footer"), Value("Content is available under CC.")});
    db.Commit(txn);
  }

  TxCacheClient client(&db, &pincushion, &cluster, &clock);

  // Localization cache: the paper notes MediaWiki already caches message translations; here it
  // is one cacheable function over a sequential scan (wildcard tag on `messages`).
  auto messages = client.MakeCacheable<std::vector<std::string>>("wiki.messages", [&] {
    std::vector<std::string> out;
    auto r = client.ExecuteQuery(
        Query::From(AccessPath::SeqScan("messages")).SortBy(MessageCols::kKey));
    if (r.ok()) {
      for (const Row& row : r.value().rows) {
        out.push_back(row[MessageCols::kText].AsString());
      }
    }
    return out;
  });

  // The USER object with its edit count — the exact object from MediaWiki bug #8391.
  auto user_card = client.MakeCacheable<UserCard, int64_t>("wiki.user", [&](int64_t id) {
    UserCard card;
    auto r = client.ExecuteQuery(
        Query::From(AccessPath::IndexEq("wiki_users", "wiki_users_pk", Row{Value(id)})));
    if (r.ok() && !r.value().rows.empty()) {
      card.name = r.value().rows[0][UserCols::kName].AsString();
      card.edit_count = r.value().rows[0][UserCols::kEditCount].AsInt();
    }
    return card;
  });

  // Article rendering: nested cacheable calls (messages + user card inside the page).
  auto render = client.MakeCacheable<RenderedPage, std::string>(
      "wiki.render", [&](const std::string& title) {
        RenderedPage page;
        auto r = client.ExecuteQuery(Query::From(
            AccessPath::IndexEq("articles", "articles_by_title", Row{Value(title)})));
        if (!r.ok() || r.value().rows.empty()) {
          page.html = "<h1>No such article</h1>";
          return page;
        }
        const Row& article = r.value().rows[0];
        UserCard editor = user_card(article[ArticleCols::kLastEditor].AsInt());
        std::string chrome;
        for (const std::string& m : messages()) {
          chrome += "<nav>" + m + "</nav>";
        }
        page.html = chrome + "<h1>" + title + "</h1><p>" +
                    article[ArticleCols::kBody].AsString() + "</p><footer>rev " +
                    std::to_string(article[ArticleCols::kRevision].AsInt()) + ", last edit by " +
                    editor.name + " (" + std::to_string(editor.edit_count) +
                    " edits)</footer>";
        return page;
      });

  auto show = [&](const char* label) {
    client.BeginRO(Seconds(0));
    RenderedPage p = render("TxCache");
    UserCard alice = user_card(100);
    client.Commit();
    std::printf("%-28s %s\n", label, p.html.c_str());
    std::printf("%-28s Alice has %lld edits\n", "", (long long)alice.edit_count);
  };

  show("initial render (cold):");
  show("second render (cached):");
  const ClientStats& s1 = client.stats();
  std::printf("--> hits so far: %llu, db queries: %llu\n\n", (unsigned long long)s1.cache_hits,
              (unsigned long long)s1.db_queries);

  // Edit the article. In MediaWiki this required remembering to invalidate the page AND the
  // user object; here the database's invalidation tags handle both.
  client.BeginRW();
  client.Update("articles",
                AccessPath::IndexEq("articles", "articles_by_title", Row{Value("TxCache")}),
                nullptr,
                {{ArticleCols::kBody, Value("A transactional, self-invalidating cache.")},
                 {ArticleCols::kRevision, Value(2)}});
  client.Update("wiki_users",
                AccessPath::IndexEq("wiki_users", "wiki_users_pk", Row{Value(int64_t{100})}),
                nullptr, {{UserCols::kEditCount, Value(42)}});
  client.Commit();
  std::printf("=== Alice edits the article (one read/write transaction) ===\n\n");

  show("render after edit:");
  std::printf("\nNo explicit invalidation anywhere in this file: the edit's invalidation tags\n"
              "truncated the article page AND the cached user object (the bug-#8391 case).\n");
  return 0;
}
