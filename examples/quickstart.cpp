// Quickstart: a miniature blog showing the whole TxCache API in ~100 lines.
//
//   * stand up the components (database, cache nodes, invalidation bus, pincushion);
//   * mark a function cacheable with MakeCacheable — no keys, no explicit invalidation;
//   * watch a read/write transaction invalidate the cached result automatically;
//   * see transactional consistency: a read-only transaction never mixes old and new data.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/rubis/types.h"  // reuse Page for a serializable result type

using namespace txcache;

namespace {

struct PostCols {
  enum : ColumnId { kId, kTitle, kBody, kLikes, kCount };
};

void PrintStats(const char* label, const TxCacheClient& client) {
  const ClientStats& s = client.stats();
  std::printf("%-34s calls=%llu hits=%llu misses=%llu inserts=%llu\n", label,
              (unsigned long long)s.cacheable_calls, (unsigned long long)s.cache_hits,
              (unsigned long long)s.cache_misses, (unsigned long long)s.cache_inserts);
}

}  // namespace

int main() {
  // --- infrastructure: one database, two cache nodes, the invalidation stream, a pincushion.
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node_a("cache-a", &clock), node_b("cache-b", &clock);
  bus.Subscribe(&node_a);
  bus.Subscribe(&node_b);
  CacheCluster cluster;
  cluster.AddNode(&node_a);
  cluster.AddNode(&node_b);
  Pincushion pincushion(&db, &clock);

  // --- schema + seed data.
  db.CreateTable(TableSchema{"posts",
                             {{"id", ValueType::kInt, false},
                              {"title", ValueType::kString, false},
                              {"body", ValueType::kString, false},
                              {"likes", ValueType::kInt, false}}});
  db.CreateIndex(IndexSchema{"posts_pk", "posts", {PostCols::kId}, true});
  {
    TxnId txn = db.BeginReadWrite();
    db.Insert(txn, "posts", Row{Value(1), Value("Hello TxCache"), Value("cache me!"), Value(0)});
    db.Insert(txn, "posts", Row{Value(2), Value("Second post"), Value("more text"), Value(0)});
    db.Commit(txn);
  }

  // --- the application: one client, one cacheable function. The function is pure: it depends
  // only on its argument and the database.
  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto render_post = client.MakeCacheable<rubis::Page, int64_t>(
      "render_post", [&client](int64_t id) {
        auto result = client.ExecuteQuery(
            Query::From(AccessPath::IndexEq("posts", "posts_pk", Row{Value(id)})));
        std::string html = "<html><h1>post " + std::to_string(id) + "</h1>";
        if (result.ok() && !result.value().rows.empty()) {
          const Row& r = result.value().rows[0];
          html += "<h2>" + r[PostCols::kTitle].AsString() + "</h2><p>" +
                  r[PostCols::kBody].AsString() + "</p><p>likes: " +
                  std::to_string(r[PostCols::kLikes].AsInt()) + "</p>";
        }
        return rubis::Page{html + "</html>"};
      });

  // 1. First read-only transaction: miss, compute, insert into the cache.
  client.BeginRO(Seconds(30));
  rubis::Page p1 = render_post(1);
  render_post(2);
  client.Commit();
  PrintStats("after first RO txn (cold cache)", client);

  // 2. Second transaction: both pages served from the cache, no database contact.
  client.BeginRO(Seconds(30));
  rubis::Page p2 = render_post(1);
  render_post(2);
  Timestamp ro_ts = client.Commit().value();
  PrintStats("after second RO txn (warm)", client);
  std::printf("cached page identical: %s; RO txn serialized at ts=%llu\n",
              p1.html == p2.html ? "yes" : "NO", (unsigned long long)ro_ts);

  // 3. A read/write transaction likes post 1. It bypasses the cache and, at commit, the
  //    database publishes an invalidation that truncates the cached page's validity interval.
  client.BeginRW();
  client.Update("posts", AccessPath::IndexEq("posts", "posts_pk", Row{Value(1)}), nullptr,
                {{PostCols::kLikes, Value(int64_t{1})}});
  Timestamp w_ts = client.Commit().value();
  std::printf("update committed at ts=%llu (invalidation published)\n",
              (unsigned long long)w_ts);

  // 4. A fresh transaction sees the new like count — recomputed, not stale.
  client.BeginRO(/*staleness=*/0);
  rubis::Page p3 = render_post(1);
  client.Commit();
  std::printf("page now shows:  ...%s\n",
              p3.html.substr(p3.html.find("likes")).c_str());
  PrintStats("after invalidation + re-read", client);

  // 5. Stale-tolerant transactions may still use the old version — but always consistently.
  client.BeginRO(Seconds(30));
  rubis::Page p4 = render_post(1);
  client.Commit();
  std::printf("stale-tolerant txn saw %s version\n",
              p4.html == p3.html ? "the new" : "a consistent old");

  std::printf("\ncache nodes: %s=%zu versions, %s=%zu versions\n", node_a.name().c_str(),
              node_a.version_count(), node_b.name().c_str(), node_b.version_count());
  return 0;
}
