// The SQL surface: the same TxCache machinery driven through SQL text — statements are planned
// onto index access paths, SELECTs report their validity intervals, and updates invalidate
// cached pages automatically even when the pages were built from SQL.
//
// Run: ./build/examples/sql_tour
#include <cstdio>

#include "src/core/cacheable_function.h"
#include "src/sql/session.h"

using namespace txcache;
using namespace txcache::sql;

int main() {
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer cache("sql-cache", &clock);
  bus.Subscribe(&cache);
  CacheCluster cluster;
  cluster.AddNode(&cache);
  Pincushion pincushion(&db, &clock);

  db.CreateTable(TableSchema{"books",
                             {{"id", ValueType::kInt, false},
                              {"title", ValueType::kString, false},
                              {"author", ValueType::kString, false},
                              {"copies", ValueType::kInt, false}}});
  db.CreateIndex(IndexSchema{"books_pk", "books", {0}, true});
  db.CreateIndex(IndexSchema{"books_by_author", "books", {2}, false});

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  SqlSession sql(&client, &db);

  auto run = [&](const char* text) {
    auto r = sql.Execute(text);
    std::printf("sql> %s\n", text);
    if (r.ok()) {
      std::printf("%s\n\n", r.value().ToString().c_str());
    } else {
      std::printf("error: %s\n\n", r.status().ToString().c_str());
    }
  };

  client.BeginRW();
  run("INSERT INTO books VALUES (1, 'Operating Systems', 'ports', 3)");
  run("INSERT INTO books VALUES (2, 'Caches Considered', 'ports', 1)");
  run("INSERT INTO books VALUES (3, 'Snapshot Tales', 'liskov', 5)");
  client.Commit();

  client.BeginRO(Seconds(30));
  run("SELECT title, copies FROM books WHERE author = 'ports' ORDER BY id");
  run("SELECT COUNT(*) FROM books");
  run("SELECT author, SUM(copies) FROM books GROUP BY author");
  client.Commit();

  // A cacheable "report" built from SQL — invalidated by a SQL UPDATE, no keys anywhere.
  auto author_report = client.MakeCacheable<std::string, std::string>(
      "report", [&](const std::string& author) {
        auto r = sql.Execute("SELECT SUM(copies) FROM books WHERE author = '" + author + "'");
        return r.ok() ? r.value().ToString() : std::string("?");
      });

  client.BeginRO(Seconds(30));
  std::printf("report('ports') [miss]:\n%s\n\n", author_report("ports").c_str());
  client.Commit();
  client.BeginRO(Seconds(30));
  std::printf("report('ports') [hit, %llu db queries so far]:\n%s\n\n",
              (unsigned long long)client.stats().db_queries, author_report("ports").c_str());
  client.Commit();

  client.BeginRW();
  run("UPDATE books SET copies = 9 WHERE id = 2");
  client.Commit();

  client.BeginRO(/*staleness=*/0);
  std::printf("report('ports') after UPDATE [recomputed]:\n%s\n",
              author_report("ports").c_str());
  client.Commit();
  std::printf("\nclient: %llu hits / %llu cacheable calls\n",
              (unsigned long long)client.stats().cache_hits,
              (unsigned long long)client.stats().cacheable_calls);
  return 0;
}
