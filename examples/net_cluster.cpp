// Multi-process cluster over the binary wire protocol: the socket transport without any
// in-process shortcuts.
//
// The process forks two real cache-node children. Each child runs its own CacheServer behind
// an epoll NetServer on an ephemeral loopback port and reports the port back over a pipe.
// The parent never touches the children's memory — it builds a CacheCluster from client-only
// socket transports (MakeSocketTransport with no local server), so every insert, lookup and
// batched multi-lookup rides the length-prefixed frames of src/net/wire.h across a process
// boundary, exactly like a deployment with cache nodes on other machines.
//
// The finale is the paper's availability story (§4): the parent SIGKILLs one child and keeps
// issuing lookups. Keys owned by the dead node answer kNodeUnavailable misses — never an
// error, never a stale read — while the surviving node keeps serving its share warm.
//
// Run: ./build/example_net_cluster
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/net/net_server.h"
#include "src/net/transport.h"
#include "src/util/clock.h"
#include "src/util/hash.h"

using namespace txcache;

namespace {

struct ChildNode {
  pid_t pid = -1;
  uint16_t port = 0;
  int stop_fd = -1;  // closing this tells the child to exit cleanly
};

// Forks a cache-node process. The child serves `name` on an ephemeral port, writes the port
// to the parent once the listener is live, then blocks until the parent closes stop_fd.
ChildNode SpawnNode(const std::string& name) {
  int port_pipe[2];
  int stop_pipe[2];
  if (pipe(port_pipe) != 0 || pipe(stop_pipe) != 0) {
    std::perror("pipe");
    return {};
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return {};
  }
  if (pid == 0) {
    // --- child: a standalone cache-node process ---
    close(port_pipe[0]);
    close(stop_pipe[1]);
    SystemClock clock;
    CacheServer server(name, &clock);
    net::NetServer net_server(&server);
    if (!net_server.Start().ok()) {
      _exit(1);
    }
    uint16_t port = net_server.port();
    if (write(port_pipe[1], &port, sizeof(port)) != sizeof(port)) {
      _exit(1);
    }
    close(port_pipe[1]);
    // Serve until the parent closes its end of the stop pipe (or dies, which closes it too).
    char byte;
    while (read(stop_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    net_server.Stop();
    _exit(0);
  }
  // --- parent ---
  close(port_pipe[1]);
  close(stop_pipe[0]);
  ChildNode node;
  node.pid = pid;
  node.stop_fd = stop_pipe[1];
  if (read(port_pipe[0], &node.port, sizeof(node.port)) != sizeof(node.port)) {
    std::fprintf(stderr, "child %s never reported a port\n", name.c_str());
    node.port = 0;
  }
  close(port_pipe[0]);
  return node;
}

LookupRequest Probe(const std::string& key) {
  LookupRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);
  req.bounds_lo = 1;
  req.bounds_hi = kTimestampInfinity;
  req.fresh_lo = 1;
  return req;
}

}  // namespace

int main() {
  std::printf("Forking two cache-node processes...\n");
  ChildNode a = SpawnNode("proc-a");
  ChildNode b = SpawnNode("proc-b");
  if (a.port == 0 || b.port == 0) {
    return 1;
  }
  std::printf("  proc-a pid=%d port=%u\n  proc-b pid=%d port=%u\n\n", (int)a.pid,
              (unsigned)a.port, (int)b.pid, (unsigned)b.port);

  // Client-only transports: no local CacheServer objects — the wire is the only path.
  CacheCluster cluster;
  cluster.AddNode(MakeSocketTransport("proc-a", nullptr, "127.0.0.1", a.port));
  cluster.AddNode(MakeSocketTransport("proc-b", nullptr, "127.0.0.1", b.port));

  const int kKeys = 64;
  int stored = 0;
  for (int i = 0; i < kKeys; ++i) {
    InsertRequest ins;
    ins.key = "user:" + std::to_string(i);
    ins.key_hash = Fnv1a(ins.key);
    ins.value = "profile-" + std::to_string(i);
    ins.interval = {1, kTimestampInfinity};
    ins.computed_at = 1;
    ins.fill_cost_us = 250;
    if (cluster.Insert(ins).status.ok()) {
      ++stored;
    }
  }
  std::printf("inserted %d/%d keys through the ring (consistent hashing spreads them "
              "across both processes)\n",
              stored, kKeys);

  int hits = 0, from_a = 0, from_b = 0;
  for (int i = 0; i < kKeys; ++i) {
    LookupResponse resp = cluster.Lookup(Probe("user:" + std::to_string(i)));
    if (resp.hit) {
      ++hits;
      (resp.served_by == "proc-a" ? from_a : from_b)++;
    }
  }
  std::printf("single lookups: %d/%d hits (%d served by proc-a, %d by proc-b)\n", hits, kKeys,
              from_a, from_b);

  // One pipelined exchange per node touched instead of one round-trip per key.
  MultiLookupRequest batch;
  for (int i = 0; i < kKeys; ++i) {
    batch.lookups.push_back(Probe("user:" + std::to_string(i)));
  }
  auto multi = cluster.MultiLookup(batch);
  int batch_hits = 0;
  if (multi.ok()) {
    for (const LookupResponse& r : multi.value().responses) {
      batch_hits += r.hit ? 1 : 0;
    }
  }
  std::printf("batched multi-lookup: %d/%d hits in one scatter\n\n", batch_hits, kKeys);

  std::printf("SIGKILL proc-b (pid %d) — no goodbye, no cleanup...\n", (int)b.pid);
  kill(b.pid, SIGKILL);
  waitpid(b.pid, nullptr, 0);
  close(b.stop_fd);

  int warm = 0, unavailable = 0, errors = 0;
  for (int i = 0; i < kKeys; ++i) {
    LookupResponse resp = cluster.Lookup(Probe("user:" + std::to_string(i)));
    if (resp.hit) {
      ++warm;
    } else if (resp.miss == MissKind::kNodeUnavailable) {
      ++unavailable;
    } else {
      ++errors;
    }
  }
  std::printf("after the crash: %d still-warm hits (proc-a), %d kNodeUnavailable misses "
              "(proc-b's keys: refill from the database), %d errors\n",
              warm, unavailable, errors);
  std::printf("a vanished node is just misses — the consistency guarantee never depended on "
              "it answering.\n");

  close(a.stop_fd);  // polite shutdown for the survivor
  waitpid(a.pid, nullptr, 0);
  return errors == 0 ? 0 : 1;
}
