// A guided tour of the RUBiS auction application on TxCache: loads a small dataset, walks a
// user session through browsing, bidding, and the monotonic-session pattern (§2.2: feed the
// last commit timestamp back as the next staleness bound so the user never sees time move
// backwards).
//
// Run: ./build/examples/auction_site
#include <cstdio>

#include "src/rubis/app.h"
#include "src/rubis/data.h"
#include "src/rubis/session.h"

using namespace txcache;
using namespace txcache::rubis;

namespace {

void PrintStats(const TxCacheClient& client, const CacheCluster& cluster) {
  const ClientStats& s = client.stats();
  CacheStats c = cluster.TotalStats();
  std::printf("  [stats] cacheable calls=%llu hits=%llu misses=%llu (consistency=%llu) "
              "db-queries=%llu cache-bytes=%zu\n",
              (unsigned long long)s.cacheable_calls, (unsigned long long)s.cache_hits,
              (unsigned long long)s.cache_misses, (unsigned long long)s.miss_consistency,
              (unsigned long long)s.db_queries, cluster.TotalBytesUsed());
  (void)c;
}

}  // namespace

int main() {
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node_a("cache-a", &clock), node_b("cache-b", &clock);
  bus.Subscribe(&node_a);
  bus.Subscribe(&node_b);
  CacheCluster cluster;
  cluster.AddNode(&node_a);
  cluster.AddNode(&node_b);
  Pincushion pincushion(&db, &clock);

  RubisScale scale;
  scale.users = 200;
  scale.active_items = 150;
  scale.old_items = 50;
  scale.description_bytes = 48;
  auto dataset_or = LoadRubis(&db, scale, &clock, /*seed=*/2026);
  if (!dataset_or.ok()) {
    std::printf("load failed: %s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  auto dataset = std::move(dataset_or.value());
  std::printf("Loaded RUBiS: %lld users, %lld active auctions, %lld closed, ~%zu KB\n\n",
              (long long)scale.users, (long long)scale.active_items,
              (long long)scale.old_items, db.ApproximateDataBytes() / 1024);

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  RubisApp app(&client, dataset.get(), &clock);

  // --- a user browses (read-only transactions; everything becomes cached) ---
  std::printf("=== browsing category 3 (cold cache) ===\n");
  client.BeginRO(Seconds(30));
  Page listing = app.search_category_page(3, 0);
  client.Commit();
  std::printf("%.160s...\n", listing.html.c_str());
  PrintStats(client, cluster);

  std::printf("\n=== same page again (warm) ===\n");
  client.BeginRO(Seconds(30));
  app.search_category_page(3, 0);
  client.Commit();
  PrintStats(client, cluster);

  // --- view an item, then bid on it ---
  int64_t item = -1;
  client.BeginRO(Seconds(30));
  auto ids = app.category_items(3, 0);
  if (!ids.empty()) {
    item = ids[0];
    app.view_item_page(item);
  }
  client.Commit();
  if (item < 0) {
    std::printf("category empty, picking item 0\n");
    item = 0;
  }
  client.BeginRO(Seconds(30));
  ItemInfo before = app.get_item(item);
  client.Commit();
  std::printf("\n=== bidding %.2f on \"%s\" (current max %.2f, %lld bids) ===\n",
              before.max_bid + 25.0, before.name.c_str(), before.max_bid,
              (long long)before.nb_of_bids);

  client.BeginRW();
  Status bid = app.StoreBid(/*user=*/7, item, before.max_bid + 25.0);
  auto bid_commit = client.Commit();
  std::printf("bid %s at ts=%llu\n", bid.ok() ? "accepted" : bid.ToString().c_str(),
              bid_commit.ok() ? (unsigned long long)bid_commit.value() : 0ull);

  // --- the monotonic-session pattern (§2.2) ---
  // A fresh transaction bounded by "0 seconds stale" is guaranteed to include our own bid.
  // (More generally, an application stores the commit timestamp in its session state; any
  // staleness limit that keeps the pinned snapshot at or after it preserves read-your-writes.)
  client.BeginRO(/*staleness=*/0);
  ItemInfo after = app.get_item(item);
  auto ro_ts = client.Commit();
  std::printf("re-reading item after bid: max=%.2f bids=%lld (txn serialized at ts=%llu >= %llu)\n",
              after.max_bid, (long long)after.nb_of_bids,
              ro_ts.ok() ? (unsigned long long)ro_ts.value() : 0ull,
              bid_commit.ok() ? (unsigned long long)bid_commit.value() : 0ull);

  // A stale-tolerant reader may still see the pre-bid page — but always a consistent one.
  client.BeginRO(Seconds(30));
  ItemInfo relaxed = app.get_item(item);
  client.Commit();
  std::printf("stale-tolerant reader sees %lld bids (consistent snapshot either way)\n",
              (long long)relaxed.nb_of_bids);

  // --- run a burst of emulated sessions to exercise the whole mix ---
  std::printf("\n=== running 200 emulated interactions (the 26-type bidding mix) ===\n");
  RubisSession session(&client, dataset.get(), &clock, /*seed=*/7);
  for (int i = 0; i < 200; ++i) {
    session.Run(session.Next());
  }
  std::printf("completed=%llu failed=%llu (read-only=%llu, read/write=%llu)\n",
              (unsigned long long)session.stats().completed,
              (unsigned long long)session.stats().failed,
              (unsigned long long)session.stats().read_only,
              (unsigned long long)session.stats().read_write);
  PrintStats(client, cluster);
  std::printf("pincushion: %zu pinned snapshots; db: %zu versions vacuumable\n",
              pincushion.pinned_count(), db.Vacuum());
  return 0;
}
