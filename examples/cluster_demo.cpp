// Cluster simulation demo: runs the paper's evaluation cluster (7 web servers, 2 cache nodes,
// 1 database, closed-loop RUBiS clients) in all three modes and prints a comparison — a
// miniature of the Figure 5 experiment that finishes in a few seconds.
//
// Run: ./build/examples/cluster_demo
#include <cstdio>

#include "src/sim/cluster_sim.h"

using namespace txcache;
using namespace txcache::sim;

int main() {
  std::printf("Simulating the paper's testbed on a scaled-down RUBiS dataset...\n\n");
  std::printf("%-16s %12s %12s %10s %10s %10s %12s\n", "mode", "req/s", "resp (ms)", "db cpu",
              "db disk", "hit rate", "consistency");
  struct Case {
    const char* name;
    ClientMode mode;
  };
  for (const Case& c : {Case{"No caching", ClientMode::kNoCache},
                        Case{"TxCache", ClientMode::kConsistent},
                        Case{"No consistency", ClientMode::kNoConsistency}}) {
    SimConfig cfg;
    cfg.scale = rubis::RubisScale::InMemory(0.01);
    cfg.mode = c.mode;
    cfg.num_clients = 600;
    cfg.cache_bytes_per_node = 2 << 20;
    cfg.warmup = Seconds(4);
    cfg.measure = Seconds(8);
    ClusterSim sim(cfg);
    auto result = sim.Run();
    if (!result.ok()) {
      std::printf("%-16s FAILED: %s\n", c.name, result.status().ToString().c_str());
      continue;
    }
    const SimResult& r = result.value();
    std::printf("%-16s %12.0f %12.2f %9.0f%% %9.0f%% %9.1f%% %9.2f%%\n", c.name,
                r.throughput_rps, r.avg_response_ms, r.db_cpu_utilization * 100,
                r.db_disk_utilization * 100, r.cache.hit_rate() * 100,
                r.cache.misses() == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(r.cache.miss_consistency) /
                          static_cast<double>(r.cache.misses()));
  }
  std::printf(
      "\nThe full figure reproductions live in build/bench/ (fig5..fig8, overhead, micro).\n");
  return 0;
}
