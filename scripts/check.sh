#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass over the concurrency-sensitive tests.
#
#   scripts/check.sh           # configure, build, ctest, then TSan concurrency tests
#   SKIP_TSAN=1 scripts/check.sh   # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- tier-1 verify ---
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# --- ThreadSanitizer build of the concurrency tests ---
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B build-tsan -S . -DTXCACHE_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" --target concurrency_stress_test cache_shard_test
  (cd build-tsan && ctest --output-on-failure -R 'concurrency_stress_test|cache_shard_test')
fi

echo "check.sh: all green"
