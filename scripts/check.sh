#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass over the concurrency-sensitive tests.
#
#   scripts/check.sh                     # configure, build, ctest, then TSan concurrency tests
#   scripts/check.sh --labels eviction   # ctest filtered to a label (regex), e.g. the
#                                        # cost-aware policy suite; the TSan pass narrows to
#                                        # the same label
#   scripts/check.sh --labels membership # the elastic-membership/churn suite
#   scripts/check.sh --bench-smoke       # additionally Release-build every bench/micro_*
#                                        # binary and run it with tiny iteration counts, so
#                                        # benchmarks cannot bit-rot between perf PRs
#   scripts/check.sh --asan              # additionally build the whole tier-1 suite under
#                                        # AddressSanitizer+UBSan and run it (alongside the
#                                        # existing TSan set, which stays thread-focused)
#   SKIP_TSAN=1 scripts/check.sh         # tier-1 only
#
# Also fails fast if any tests/*_test.cc is missing from the registered ctest targets, so a
# new suite can never silently not build.
set -euo pipefail
cd "$(dirname "$0")/.."

LABELS=""
BENCH_SMOKE=0
ASAN=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --labels)
      [[ $# -ge 2 ]] || { echo "check.sh: --labels needs an argument" >&2; exit 2; }
      LABELS="$2"
      shift 2
      ;;
    --labels=*)
      LABELS="${1#*=}"
      shift
      ;;
    --bench-smoke)
      BENCH_SMOKE=1
      shift
      ;;
    --asan)
      ASAN=1
      shift
      ;;
    *)
      echo "check.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- tier-1 verify ---
cmake -B build -S .

# Guard: every tests/*_test.cc must be a registered ctest target. The test list is built by a
# CMake GLOB, so a stale configure (or a future move away from globbing) could silently drop a
# suite — fail fast instead of green-lighting a build that never ran it.
registered="$(cd build && ctest -N)"
missing=0
for src in tests/*_test.cc; do
  name="$(basename "$src" .cc)"
  if ! grep -Eq "Test +#[0-9]+: ${name}\$" <<< "$registered"; then
    echo "check.sh: test suite '$name' (from $src) is not a registered ctest target" >&2
    missing=1
  fi
done
if [[ "$missing" != "0" ]]; then
  echo "check.sh: refusing to continue with unbuilt test suites" >&2
  exit 1
fi

cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS" ${LABELS:+-L "$LABELS"})

# The optimistic read-write transaction suite (label `txn`) is a standing gate: run it as a
# dedicated pass so a label rename or a GLOB miss can never leave serializability untested.
if [[ -z "$LABELS" ]]; then
  (cd build && ctest --output-on-failure -L txn)
fi

# --- socket-transport parity pass ---
# The cross-node suites rerun with TXCACHE_TRANSPORT=socket: AddNode(CacheServer*) then
# self-hosts every node behind a real epoll NetServer and routes the data plane through the
# binary wire protocol over TCP. The parity contract (src/net/transport.h) says the answers
# are identical to loopback, so the SAME tests must pass unchanged — this pass is what
# enforces it. Scoped to the suites that exercise cluster routing; pure-unit suites gain
# nothing from riding a socket. sql_tag_derivation_test rides along: the derived-vs-handwritten
# equivalence diff and the derived-mode wiki/RUBiS end-to-end runs must hold identically when
# every cache lookup/insert crosses a real socket.
if [[ -z "$LABELS" ]]; then
  (cd build && TXCACHE_TRANSPORT=socket ctest --output-on-failure -j "$JOBS" \
      -R '^(core_lookup_semantics_test|core_client_test|core_invariant_property_test|membership_test|cache_replication_test|cache_write_tx_test|net_transport_test|sql_tag_derivation_test)$')
fi

# --- ThreadSanitizer build of the concurrency-sensitive tests ---
# cache_eviction_test and cache_property_test ride along: the eviction/admission suite must be
# deterministic AND data-race-free (its stats are read concurrently by the stress tests).
# membership_test rides along too: the join protocol and cluster membership mutex must stay
# race-free against the churn thread in concurrency_stress_test. cache_snapshot_test and
# cache_replication_test join them: snapshot persistence fires from Deliver and replica
# pushes/failover cross node boundaries, both of which must stay race-free.
# cache_write_tx_test (label txn) completes the set: write intents and commit-time read
# validation race against the invalidation stream and concurrent zero-copy readers.
# net_transport_test joins them: epoll workers, pipelined clients and the socket no-stale-read
# property test are the transport's own race surface.
# sql_test and sql_tag_derivation_test (label sql) join them: the derivation suites drive full
# client/cache/bus stacks, and cache_property_test's derived-tag interleavings already ride
# here — the front-end suites must be equally clean under TSan.
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_TARGETS=(concurrency_stress_test cache_shard_test cache_eviction_test cache_property_test
                membership_test cache_readpath_test cache_admission_sizing_test cache_ebr_test
                cache_snapshot_test cache_replication_test cache_write_tx_test net_transport_test
                sql_test sql_tag_derivation_test)
  cmake -B build-tsan -S . -DTXCACHE_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"
  if [[ -n "$LABELS" ]]; then
    (cd build-tsan && ctest --output-on-failure -L "$LABELS" \
        -R "$(IFS='|'; echo "${TSAN_TARGETS[*]}")")
  else
    (cd build-tsan && ctest --output-on-failure -R "$(IFS='|'; echo "${TSAN_TARGETS[*]}")")
  fi
fi

# --- AddressSanitizer + UndefinedBehaviorSanitizer pass (opt-in) --------------
# The full tier-1 test suite, rebuilt with -fsanitize=address,undefined. Complements the
# TSan pass above: TSan finds races, ASan/UBSan find the lifetime and arithmetic bugs the
# zero-copy aliasing and multi-MB buffer paths could hide. detect_leaks stays on (default);
# halt_on_error makes UBSan findings fail the run instead of scrolling past.
if [[ "$ASAN" == "1" ]]; then
  cmake -B build-asan -S . -DTXCACHE_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && UBSAN_OPTIONS=halt_on_error=1 \
      ctest --output-on-failure -j "$JOBS" ${LABELS:+-L "$LABELS"})
fi

# --- benchmark smoke (opt-in) -------------------------------------------------
# Release-builds every bench/micro_* binary with -DTXCACHE_LOCK_STATS=OFF — the measured hot
# path must carry no lock-acquisition accounting — and runs it with tiny iteration counts.
# Gates are disabled (TXCACHE_BENCH_GATE=0): the point is that the binaries still build and
# run end to end (including the micro_lookup_hotpath thread sweep), not that a 0.2 s run
# clears a throughput bar. Smoke-run BENCH_*.json artifacts land in build-bench/ — NOT the
# repo root, whose checked-in JSONs hold full-length measured runs — and each one is then
# checked for its gate/headline keys, so a benchmark that silently stops emitting the metric
# a gate reads fails here instead of after a perf PR lands.
if [[ "$BENCH_SMOKE" == "1" ]]; then
  micro_targets=()
  for src in bench/micro_*.cc; do
    micro_targets+=("bench_$(basename "$src" .cc)")
  done
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release -DTXCACHE_LOCK_STATS=OFF
  cmake --build build-bench -j "$JOBS" --target "${micro_targets[@]}"
  for target in "${micro_targets[@]}"; do
    echo "check.sh: bench smoke: $target"
    if [[ "$target" == "bench_micro_components" ]]; then
      # google-benchmark binary: bound wall time through its own flag.
      TXCACHE_BENCH_JSON_DIR=build-bench \
      ./build-bench/"$target" --benchmark_min_time=0.01 >/dev/null
    else
      TXCACHE_BENCH_SCALE=0.005 TXCACHE_BENCH_MEASURE_S=0.2 TXCACHE_BENCH_GATE=0 \
      TXCACHE_BENCH_OPS=2000 TXCACHE_BENCH_JSON_DIR=build-bench \
      ./build-bench/"$target" >/dev/null
    fi
  done

  # Gate-key presence check: every metric a bench gate (or the cross-PR tracking) reads must
  # appear in the JSON the smoke run just produced.
  declare -A required_keys=(
    [lookup_hotpath]="gate_single_shard_4k_speedup scaling_8t_over_1t"
    [shard_scaling]="gate_16_shard_speedup"
    [membership_churn]="leave_remapped_fraction recovered_fraction_of_steady warm_rejoin_hit_rate flash_crowd_floor join_snapshot_restores"
    [large_values]="recompute_saved_with_feedback ttl_consistency_miss_reduction"
    [write_tx]="abort_rate commit_throughput no_stale_reads"
    [net_rpc]="pipeline_speedup p99_us conns_128_mops"
  )
  for bench in "${!required_keys[@]}"; do
    json="build-bench/BENCH_${bench}.json"
    if [[ ! -f "$json" ]]; then
      echo "check.sh: bench smoke did not produce $json" >&2
      exit 1
    fi
    for key in ${required_keys[$bench]}; do
      if ! grep -q "\"$key\"" "$json"; then
        echo "check.sh: $json is missing required key \"$key\"" >&2
        exit 1
      fi
    done
  done
fi

echo "check.sh: all green"
