#!/usr/bin/env bash
# Tier-1 verify plus a ThreadSanitizer pass over the concurrency-sensitive tests.
#
#   scripts/check.sh                   # configure, build, ctest, then TSan concurrency tests
#   scripts/check.sh --labels eviction # ctest filtered to a label (regex), e.g. the cost-aware
#                                      # policy suite; the TSan pass narrows to the same label
#   SKIP_TSAN=1 scripts/check.sh       # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

LABELS=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --labels)
      [[ $# -ge 2 ]] || { echo "check.sh: --labels needs an argument" >&2; exit 2; }
      LABELS="$2"
      shift 2
      ;;
    --labels=*)
      LABELS="${1#*=}"
      shift
      ;;
    *)
      echo "check.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- tier-1 verify ---
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS" ${LABELS:+-L "$LABELS"})

# --- ThreadSanitizer build of the concurrency-sensitive tests ---
# cache_eviction_test and cache_property_test ride along: the eviction/admission suite must be
# deterministic AND data-race-free (its stats are read concurrently by the stress tests).
if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_TARGETS=(concurrency_stress_test cache_shard_test cache_eviction_test cache_property_test)
  cmake -B build-tsan -S . -DTXCACHE_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$JOBS" --target "${TSAN_TARGETS[@]}"
  if [[ -n "$LABELS" ]]; then
    (cd build-tsan && ctest --output-on-failure -L "$LABELS" \
        -R "$(IFS='|'; echo "${TSAN_TARGETS[*]}")")
  else
    (cd build-tsan && ctest --output-on-failure -R "$(IFS='|'; echo "${TSAN_TARGETS[*]}")")
  fi
fi

echo "check.sh: all green"
