// Figure 8 (table): breakdown of cache misses by type across four configurations.
//
//   in-memory DB, 60%-of-DB cache, 30 s staleness
//   in-memory DB, 60%-of-DB cache, 15 s staleness
//   in-memory DB,  tiny (7.5%) cache, 30 s staleness   (capacity-dominated)
//   disk-bound DB, large cache, 30 s staleness         (compulsory-dominated)
//
// Expected shape (§8.3): consistency misses are the rarest class by a large margin (the paper
// reports 0.2%-7.8% of all misses); the tiny cache is dominated by capacity misses; the
// disk-bound dataset by compulsory misses. The paper's cache cannot separate staleness from
// capacity misses; ours can, so both the combined and split numbers are printed.
#include "bench/bench_common.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

struct ConfigSpec {
  const char* label;
  bool disk_bound;
  double cache_fraction;
  double staleness_s;
};

void RunOne(const ConfigSpec& spec) {
  sim::SimConfig cfg = PaperConfig(spec.disk_bound, EnvScale());
  const size_t db_bytes = ProbeDatasetBytes(cfg);
  cfg.cache_bytes_per_node =
      std::max<size_t>(static_cast<size_t>(static_cast<double>(db_bytes) *
                                           spec.cache_fraction /
                                           static_cast<double>(cfg.num_cache_nodes)),
                       64 * 1024);
  cfg.staleness = Seconds(spec.staleness_s);  // paper values; the window below exceeds them
  cfg.warmup = Seconds(12);
  cfg.measure = std::max<WallClock>(EnvMeasure(), Seconds(25));
  cfg.mode = ClientMode::kConsistent;
  sim::ClusterSim sim(cfg);
  auto result = sim.Run();
  if (!result.ok()) {
    std::printf("%-34s FAILED: %s\n", spec.label, result.status().ToString().c_str());
    return;
  }
  const CacheStats& c = result.value().cache;
  const double misses = static_cast<double>(std::max<uint64_t>(c.misses(), 1));
  std::printf("%-34s %9.1f%% %12.1f%% (%5.1f%% / %5.1f%%) %11.1f%% %10.1f%%\n", spec.label,
              100.0 * static_cast<double>(c.miss_compulsory) / misses,
              100.0 * static_cast<double>(c.miss_staleness + c.miss_capacity) / misses,
              100.0 * static_cast<double>(c.miss_staleness) / misses,
              100.0 * static_cast<double>(c.miss_capacity) / misses,
              100.0 * static_cast<double>(c.miss_consistency) / misses,
              c.hit_rate() * 100);
  std::fflush(stdout);
}

}  // namespace

int main() {
  PrintHeader("fig8_miss_breakdown: cache misses by type (percent of all misses)", "Figure 8");
  std::printf("%-34s %10s %28s %12s %10s\n", "configuration", "compulsory",
              "stale/capacity (stale / cap)", "consistency", "hit rate");
  RunOne({"in-memory, 60% cache, 30s stale", false, 0.60, 30});
  RunOne({"in-memory, 60% cache, 15s stale", false, 0.60, 15});
  RunOne({"in-memory, 7.5% cache, 30s stale", false, 0.075, 30});
  RunOne({"disk-bound, 150% cache, 30s stale", true, 1.50, 30});
  return 0;
}
