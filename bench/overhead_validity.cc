// §8.1 claim: "We found no observable difference" between stock PostgreSQL and the modified
// version that tracks validity intervals and invalidation tags.
//
// Two measurements:
//   1. macro: baseline (no-cache) peak throughput with tracking enabled vs disabled;
//   2. micro: direct query latencies on the engine with tracking on/off, per access path.
// Expected shape: differences within a few percent — tracking is a small bookkeeping step on
// top of the visibility checks MVCC already performs.
#include <chrono>

#include "bench/bench_common.h"
#include "tests/test_support.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

double MicroQueryNanos(bool track_validity, const Query& query, int iterations) {
  ManualClock clock;
  Database::Options options;
  options.track_validity = track_validity;
  Database db(&clock, options);
  txcache::testing::CreateAccountsTable(&db);
  {
    TxnId txn = db.BeginReadWrite();
    for (int64_t i = 0; i < 2000; ++i) {
      db.Insert(txn, txcache::testing::kAccounts,
                txcache::testing::Account(i, "owner" + std::to_string(i % 97), i % 1000, i % 31));
    }
    db.Commit(txn);
  }
  // Churn to create dead versions (so visibility checks and masks have real work).
  for (int round = 0; round < 3; ++round) {
    TxnId txn = db.BeginReadWrite();
    for (int64_t i = 0; i < 2000; i += 7) {
      db.Update(txn, txcache::testing::kAccounts,
                AccessPath::IndexEq(txcache::testing::kAccounts, txcache::testing::kAccountsPk,
                                    Row{Value(i)}),
                nullptr, {{txcache::testing::AccountsCol::kBalance, Value(i + round)}});
    }
    db.Commit(txn);
  }
  auto txn = db.BeginReadOnly();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto r = db.Execute(txn.value(), query);
    if (!r.ok()) {
      return -1;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  db.Commit(txn.value());
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count()) /
         iterations;
}

}  // namespace

int main() {
  PrintHeader("overhead_validity: stock vs validity-tracking database", "§8.1 overhead claim");

  std::printf("\n--- macro: no-cache baseline peak throughput ---\n");
  for (bool track : {false, true}) {
    sim::SimConfig cfg = PaperConfig(/*disk_bound=*/false, EnvScale());
    cfg.mode = ClientMode::kNoCache;
    // Note: ClusterSim always builds the engine with tracking on; the macro comparison uses the
    // same code path because the no-cache client never requests validity (RW + executor skips
    // tracking for RW). The meaningful macro number is the micro one below; we still report the
    // baseline for context.
    sim::SimResult r = sim::PeakThroughput(cfg, 0.05);
    std::printf("tracking %-9s %10.0f req/s\n", track ? "enabled" : "disabled",
                r.throughput_rps);
  }

  std::printf("\n--- micro: query latency, engine-level (2000 rows + churn) ---\n");
  struct Case {
    const char* name;
    Query query;
    int iters;
  };
  using txcache::testing::kAccounts;
  using txcache::testing::kAccountsPk;
  using txcache::testing::kAccountsByOwner;
  using txcache::testing::AccountsCol;
  std::vector<Case> cases;
  cases.push_back({"pk point lookup",
                   Query::From(AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(int64_t{42})})),
                   20000});
  cases.push_back({"secondary index (20 rows)",
                   Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner,
                                                   Row{Value("owner42")})),
                   10000});
  cases.push_back({"seq scan + predicate",
                   Query::From(AccessPath::SeqScan(kAccounts))
                       .Where(PCmp(AccountsCol::kBalance, CmpOp::kLt, Value(int64_t{50}))),
                   300});
  cases.push_back({"aggregate over index",
                   Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner,
                                                   Row{Value("owner13")}))
                       .Agg(AggKind::kCount),
                   10000});
  std::printf("%-28s %14s %14s %10s\n", "query", "stock (ns)", "tracking (ns)", "overhead");
  for (const Case& c : cases) {
    double stock = MicroQueryNanos(false, c.query, c.iters);
    double tracked = MicroQueryNanos(true, c.query, c.iters);
    std::printf("%-28s %14.0f %14.0f %9.1f%%\n", c.name, stock, tracked,
                100.0 * (tracked - stock) / stock);
  }
  return 0;
}
