// micro_membership_churn — elastic membership: what a node leave costs, and how fast the
// fleet recovers after a crash + rejoin.
//
// Four measurements:
//
//   1. Remap fraction. On an epoch-stamped consistent-hash ring with virtual nodes, removing
//      one of n nodes must disturb only the departed node's arc — about 1/n of the key space,
//      and never more than 2/n. Keys on surviving nodes must not move at all.
//
//   2. Hit-rate recovery. A fleet of real CacheServer nodes serves a closed key population
//      under a live invalidation feed (real bus, real sequencer, real tag-index truncation).
//      Mid-run one node crashes (stays in the ring: its keys degrade to kNodeUnavailable
//      misses, the §4 failure model), then rejoins through the join protocol. The bus's
//      bounded history is deliberately too small for the outage, so the rejoin takes the
//      flush path — the worst case: the node comes back cold and must re-earn its hit rate.
//      The run reports per-round hit rates and checks that the fleet recovers to >= 90% of
//      its steady state within the recovery window.
//
//   3. Warm rejoin. Same outage, but the victim is a genuine cold restart (the process is
//      destroyed and rebuilt — no in-memory state survives) with a snapshot store attached.
//      The node persisted snapshots while serving; the rejoin restores the freshest one,
//      adopts its stream position and replays only the residual gap — so it must come back
//      WARM: join_snapshot_restores >= 1, zero join flushes, and recovery >= 90% of steady.
//
//   4. Flash crowd + node loss. Traffic shifts ~100x onto a handful of hot keys, then the
//      node owning hot keys crashes. Baseline (R=1): the crowd's keys answer
//      kNodeUnavailable until the node returns — a miss storm. With hot-key replication
//      (R=2, periodic ReplicateHotKeys): ring successors hold the hot keys and lookups fail
//      over, so the post-crash hit-rate floor must be no worse than the baseline's.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/cache/snapshot_store.h"
#include "src/cluster/consistent_hash.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace txcache {
namespace {

// --- part 1: remap fraction ----------------------------------------------------

constexpr size_t kRingNodes = 8;
constexpr int kRingKeys = 40'000;

struct RemapResult {
  double fraction = 0;
  bool only_victim_moved = true;
};

RemapResult MeasureRemap() {
  ConsistentHashRing ring(64);
  for (size_t n = 0; n < kRingNodes; ++n) {
    ring.AddNode("n" + std::to_string(n));
  }
  std::map<std::string, std::string> before;
  for (int i = 0; i < kRingKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    before[key] = ring.NodeForKey(key).value();
  }
  ring.RemoveNode("n3");
  RemapResult result;
  int moved = 0;
  for (const auto& [key, owner] : before) {
    if (ring.NodeForKey(key).value() != owner) {
      ++moved;
      if (owner != "n3") {
        result.only_victim_moved = false;
      }
    }
  }
  result.fraction = static_cast<double>(moved) / kRingKeys;
  return result;
}

// --- part 2: hit-rate recovery after crash + rejoin ----------------------------

constexpr size_t kNodes = 4;
constexpr size_t kKeys = 2048;
constexpr size_t kGroups = 128;
constexpr int kLookupsPerRound = 4096;
constexpr int kInvalsPerRound = 32;
constexpr int kRounds = 20;
constexpr int kCrashRound = 8;    // node 0 crashes entering this round
constexpr int kRejoinRound = 11;  // and rejoins (flush path) entering this one
constexpr int kSteadyFrom = 5, kSteadyTo = 7;     // steady-state window (pre-crash)
constexpr int kRecoveredFrom = 17, kRecoveredTo = 19;  // recovery window (post-rejoin)

InvalidationTag GroupTag(size_t group) {
  return InvalidationTag::Concrete("items", "idx", "g" + std::to_string(group));
}

std::string KeyName(size_t k) { return "key-" + std::to_string(k); }

struct ChurnRun {
  std::vector<double> hit_rate;  // per round
  uint64_t unavailable_misses = 0;
  uint64_t join_flushes = 0;
  uint64_t join_catchups = 0;
};

ChurnRun RunChurn() {
  ManualClock clock;
  clock.Set(Seconds(1));
  // History far smaller than the messages published during the outage, so the rejoin must
  // flush: the recovery measured below is the cold-restart worst case.
  InvalidationBus bus(/*history_limit=*/16);
  CacheCluster cluster;
  std::vector<std::unique_ptr<CacheServer>> nodes;
  for (size_t n = 0; n < kNodes; ++n) {
    nodes.push_back(std::make_unique<CacheServer>("cache-" + std::to_string(n), &clock));
    bus.Subscribe(nodes.back().get());
    cluster.AddNode(nodes.back().get());
  }

  Rng rng(42);
  Timestamp feed_ts = 1;
  auto fill = [&](size_t k) {
    InsertRequest req;
    req.key = KeyName(k);
    req.value = std::string(64, 'v');
    req.interval = {feed_ts, kTimestampInfinity};
    req.computed_at = feed_ts;
    req.tags = {GroupTag(k % kGroups)};
    req.fill_cost_us = 500;
    cluster.Insert(req);
  };
  for (size_t k = 0; k < kKeys; ++k) {
    fill(k);  // prefill: every key resident and still-valid
  }

  ChurnRun run;
  for (int round = 0; round < kRounds; ++round) {
    if (round == kCrashRound) {
      nodes[0]->Crash();
    }
    if (round == kRejoinRound) {
      nodes[0]->Join(&bus);
    }
    clock.Advance(Millis(100));
    // Live invalidation feed: real messages through the real bus; the crashed node loses
    // them, which is exactly why its rejoin must flush.
    for (int i = 0; i < kInvalsPerRound; ++i) {
      InvalidationMessage msg;
      msg.ts = ++feed_ts;
      msg.wallclock = clock.Now();
      msg.tags = {GroupTag(static_cast<size_t>(rng.Uniform(0, kGroups - 1)))};
      bus.Publish(msg);
    }
    // Closed-loop clients: lookup with a fresh transaction's bounds; on miss, recompute and
    // re-insert (as a cacheable-function fill would).
    uint64_t hits = 0;
    for (int i = 0; i < kLookupsPerRound; ++i) {
      const size_t k = static_cast<size_t>(rng.Uniform(0, kKeys - 1));
      LookupRequest req;
      req.key = KeyName(k);
      req.bounds_lo = feed_ts > 60 ? feed_ts - 60 : 1;
      req.bounds_hi = kTimestampInfinity;
      req.fresh_lo = req.bounds_lo;
      LookupResponse resp = cluster.Lookup(req);
      if (resp.hit) {
        ++hits;
      } else {
        fill(k);
      }
    }
    run.hit_rate.push_back(static_cast<double>(hits) / kLookupsPerRound);
  }
  const CacheStats total = cluster.TotalStats();
  run.unavailable_misses = total.nodes_unavailable;
  run.join_flushes = total.join_flushes;
  run.join_catchups = total.join_catchups;
  return run;
}

double WindowMean(const std::vector<double>& v, int from, int to) {
  double sum = 0;
  for (int i = from; i <= to; ++i) {
    sum += v[static_cast<size_t>(i)];
  }
  return sum / (to - from + 1);
}

// --- part 3: warm rejoin from a persisted snapshot -----------------------------

struct WarmRun {
  std::vector<double> hit_rate;  // per round
  uint64_t join_flushes = 0;
  uint64_t join_snapshot_restores = 0;
  uint64_t snapshot_saves = 0;
};

WarmRun RunWarmRejoin() {
  ManualClock clock;
  clock.Set(Seconds(1));
  // History sized so the COLD path still fails (the victim restarts at stream position 1,
  // hundreds of messages behind) but the RESIDUAL gap after restoring a recent snapshot is
  // covered: the snapshot, not the history, is what makes this rejoin warm.
  InvalidationBus bus(/*history_limit=*/128);
  InMemorySnapshotStore store;
  CacheServer::Options options;
  options.snapshot_interval_messages = 8;  // persist frequently relative to the feed
  CacheCluster cluster;
  std::vector<std::unique_ptr<CacheServer>> nodes;
  for (size_t n = 0; n < kNodes; ++n) {
    nodes.push_back(
        std::make_unique<CacheServer>("cache-" + std::to_string(n), &clock, options));
    nodes.back()->set_snapshot_store(&store);
    bus.Subscribe(nodes.back().get());
    cluster.AddNode(nodes.back().get());
  }

  Rng rng(43);
  Timestamp feed_ts = 1;
  auto fill = [&](size_t k) {
    InsertRequest req;
    req.key = KeyName(k);
    req.value = std::string(64, 'v');
    req.interval = {feed_ts, kTimestampInfinity};
    req.computed_at = feed_ts;
    req.tags = {GroupTag(k % kGroups)};
    req.fill_cost_us = 500;
    cluster.Insert(req);
  };
  for (size_t k = 0; k < kKeys; ++k) {
    fill(k);
  }

  WarmRun run;
  for (int round = 0; round < kRounds; ++round) {
    if (round == kCrashRound) {
      // Cold restart, not a healed partition: the process dies and every byte of in-memory
      // state dies with it. Only the snapshot store (stable storage) survives.
      bus.Unsubscribe(nodes[0].get());
      cluster.RemoveNode(nodes[0]->name());
      nodes[0].reset();
    }
    if (round == kRejoinRound) {
      nodes[0] = std::make_unique<CacheServer>("cache-0", &clock, options);
      nodes[0]->set_snapshot_store(&store);
      nodes[0]->Join(&bus);  // restores the snapshot, replays the residual gap
      cluster.AddNode(nodes[0].get());
    }
    clock.Advance(Millis(100));
    for (int i = 0; i < kInvalsPerRound; ++i) {
      InvalidationMessage msg;
      msg.ts = ++feed_ts;
      msg.wallclock = clock.Now();
      msg.tags = {GroupTag(static_cast<size_t>(rng.Uniform(0, kGroups - 1)))};
      bus.Publish(msg);
    }
    uint64_t hits = 0;
    for (int i = 0; i < kLookupsPerRound; ++i) {
      const size_t k = static_cast<size_t>(rng.Uniform(0, kKeys - 1));
      LookupRequest req;
      req.key = KeyName(k);
      req.bounds_lo = feed_ts > 60 ? feed_ts - 60 : 1;
      req.bounds_hi = kTimestampInfinity;
      req.fresh_lo = req.bounds_lo;
      LookupResponse resp = cluster.Lookup(req);
      if (resp.hit) {
        ++hits;
      } else {
        fill(k);
      }
    }
    run.hit_rate.push_back(static_cast<double>(hits) / kLookupsPerRound);
  }
  const CacheStats total = cluster.TotalStats();
  run.join_flushes = total.join_flushes;
  run.join_snapshot_restores = total.join_snapshot_restores;
  run.snapshot_saves = store.saves();
  return run;
}

// --- part 4: flash crowd + node loss, with and without hot-key replication -----

constexpr size_t kHotKeys = 8;           // the crowd's whole working set
constexpr double kCrowdFraction = 0.9;   // share of lookups on it (~100x per-key skew shift)
constexpr int kFlashRounds = 16;
constexpr int kCrowdFrom = 4;   // skew shifts entering this round
constexpr int kHotCrashRound = 8;  // a hot key's owner crashes entering this one

struct FlashRun {
  std::vector<double> hit_rate;  // per round
  double floor = 1.0;            // min round hit rate from the crash on
  uint64_t replica_pushes = 0;
  uint64_t replica_redirects = 0;
};

FlashRun RunFlashCrowd(bool replicate) {
  ManualClock clock;
  clock.Set(Seconds(1));
  InvalidationBus bus(/*history_limit=*/4096);
  CacheCluster cluster;
  if (replicate) {
    cluster.set_replication(2);
  }
  std::vector<std::unique_ptr<CacheServer>> nodes;
  for (size_t n = 0; n < kNodes; ++n) {
    nodes.push_back(std::make_unique<CacheServer>("cache-" + std::to_string(n), &clock));
    bus.Subscribe(nodes.back().get());
    cluster.AddNode(nodes.back().get());
  }

  Rng rng(44);
  Timestamp feed_ts = 1;
  auto fill = [&](size_t k) {
    InsertRequest req;
    req.key = KeyName(k);
    req.value = std::string(64, 'v');
    req.interval = {feed_ts, kTimestampInfinity};
    req.computed_at = feed_ts;
    req.tags = {GroupTag(k % kGroups)};
    req.fill_cost_us = 500;
    cluster.Insert(req);
  };
  for (size_t k = 0; k < kKeys; ++k) {
    fill(k);
  }
  // The node that owns hot key 0 is the one the crowd will lose.
  CacheServer* hot_owner = cluster.NodeForKey(KeyName(0)).value();

  FlashRun run;
  for (int round = 0; round < kFlashRounds; ++round) {
    if (round == kHotCrashRound) {
      hot_owner->Crash();  // stays in the ring: its keys answer kNodeUnavailable
    }
    clock.Advance(Millis(100));
    for (int i = 0; i < kInvalsPerRound; ++i) {
      InvalidationMessage msg;
      msg.ts = ++feed_ts;
      msg.wallclock = clock.Now();
      msg.tags = {GroupTag(static_cast<size_t>(rng.Uniform(0, kGroups - 1)))};
      bus.Publish(msg);
    }
    const bool crowd = round >= kCrowdFrom;
    uint64_t hits = 0;
    for (int i = 0; i < kLookupsPerRound; ++i) {
      const size_t k = crowd && rng.Uniform(0, 999) < static_cast<int>(kCrowdFraction * 1000)
                           ? static_cast<size_t>(rng.Uniform(0, kHotKeys - 1))
                           : static_cast<size_t>(rng.Uniform(0, kKeys - 1));
      LookupRequest req;
      req.key = KeyName(k);
      req.bounds_lo = feed_ts > 60 ? feed_ts - 60 : 1;
      req.bounds_hi = kTimestampInfinity;
      req.fresh_lo = req.bounds_lo;
      LookupResponse resp = cluster.Lookup(req);
      if (resp.hit) {
        ++hits;
      } else {
        fill(k);
      }
    }
    run.hit_rate.push_back(static_cast<double>(hits) / kLookupsPerRound);
    if (round >= kHotCrashRound) {
      run.floor = std::min(run.floor, run.hit_rate.back());
    }
    if (replicate) {
      // Replication rides a maintenance cadence: each round every live node drains its
      // hot-key sketch and pushes its hottest keys to their ring successors.
      cluster.ReplicateHotKeys(/*max_keys_per_node=*/16);
    }
  }
  run.replica_pushes = cluster.replica_pushes();
  run.replica_redirects = cluster.replica_redirects();
  return run;
}

}  // namespace
}  // namespace txcache

int main() {
  using namespace txcache;

  std::printf("================================================================\n");
  std::printf("micro_membership_churn: leave remap cost + crash/rejoin recovery\n");
  std::printf("================================================================\n");

  const RemapResult remap = MeasureRemap();
  std::printf("\n[1] leave: %zu-node ring (64 vnodes), remove 1 node, %d keys\n", kRingNodes,
              kRingKeys);
  std::printf("    remapped fraction: %.4f (1/n = %.4f, bound 2/n = %.4f)%s\n", remap.fraction,
              1.0 / kRingNodes, 2.0 / kRingNodes,
              remap.only_victim_moved ? "" : "  [ERROR: surviving nodes' keys moved]");

  const ChurnRun run = RunChurn();
  std::printf("\n[2] crash/rejoin: %zu nodes, %zu keys, %d lookups/round, %d invals/round\n",
              kNodes, kKeys, kLookupsPerRound, kInvalsPerRound);
  std::printf("    node 0 crashes entering round %d, rejoins entering round %d\n", kCrashRound,
              kRejoinRound);
  std::printf("%8s %9s %s\n", "round", "hit%", "phase");
  for (int i = 0; i < kRounds; ++i) {
    const char* phase = i < kCrashRound     ? "steady"
                        : i < kRejoinRound  ? "node 0 DOWN"
                        : i < kRejoinRound + 2 ? "rejoined (cold)"
                                               : "recovering";
    std::printf("%8d %8.1f%% %s\n", i, run.hit_rate[static_cast<size_t>(i)] * 100.0, phase);
  }
  const double steady = WindowMean(run.hit_rate, kSteadyFrom, kSteadyTo);
  const double during = WindowMean(run.hit_rate, kCrashRound, kRejoinRound - 1);
  const double recovered = WindowMean(run.hit_rate, kRecoveredFrom, kRecoveredTo);
  std::printf("\nsteady %.1f%% | during outage %.1f%% | recovered %.1f%% (%.0f%% of steady)\n",
              steady * 100, during * 100, recovered * 100, 100 * recovered / steady);
  std::printf("unavailable misses: %llu, join flushes: %llu, join catch-ups: %llu\n",
              static_cast<unsigned long long>(run.unavailable_misses),
              static_cast<unsigned long long>(run.join_flushes),
              static_cast<unsigned long long>(run.join_catchups));

  const WarmRun warm = RunWarmRejoin();
  std::printf("\n[3] warm rejoin: same outage, cold process restart + snapshot store\n");
  std::printf("    snapshots persisted while serving: %llu\n",
              static_cast<unsigned long long>(warm.snapshot_saves));
  std::printf("%8s %9s %s\n", "round", "hit%", "phase");
  for (int i = 0; i < kRounds; ++i) {
    const char* phase = i < kCrashRound      ? "steady"
                        : i < kRejoinRound   ? "node 0 DESTROYED"
                        : i < kRejoinRound + 2 ? "rejoined (warm)"
                                               : "recovering";
    std::printf("%8d %8.1f%% %s\n", i, warm.hit_rate[static_cast<size_t>(i)] * 100.0, phase);
  }
  const double warm_steady = WindowMean(warm.hit_rate, kSteadyFrom, kSteadyTo);
  const double warm_recovered = WindowMean(warm.hit_rate, kRecoveredFrom, kRecoveredTo);
  std::printf("\nsteady %.1f%% | recovered %.1f%% (%.0f%% of steady)\n", warm_steady * 100,
              warm_recovered * 100, 100 * warm_recovered / warm_steady);
  std::printf("snapshot restores: %llu, join flushes: %llu\n",
              static_cast<unsigned long long>(warm.join_snapshot_restores),
              static_cast<unsigned long long>(warm.join_flushes));

  const FlashRun flash_base = RunFlashCrowd(/*replicate=*/false);
  const FlashRun flash_repl = RunFlashCrowd(/*replicate=*/true);
  std::printf("\n[4] flash crowd + node loss: %.0f%% of lookups shift onto %zu keys entering "
              "round %d; their owner crashes entering round %d\n",
              kCrowdFraction * 100, kHotKeys, kCrowdFrom, kHotCrashRound);
  std::printf("%8s %12s %12s\n", "round", "R=1 hit%", "R=2 hit%");
  for (int i = 0; i < kFlashRounds; ++i) {
    std::printf("%8d %11.1f%% %11.1f%%%s\n", i,
                flash_base.hit_rate[static_cast<size_t>(i)] * 100.0,
                flash_repl.hit_rate[static_cast<size_t>(i)] * 100.0,
                i == kHotCrashRound ? "   <- owner down" : "");
  }
  std::printf("\npost-crash floor: R=1 %.1f%% | R=2 %.1f%% (replica pushes %llu, "
              "failover redirects %llu)\n",
              flash_base.floor * 100, flash_repl.floor * 100,
              static_cast<unsigned long long>(flash_repl.replica_pushes),
              static_cast<unsigned long long>(flash_repl.replica_redirects));

  bench::BenchJson json("membership_churn");
  json.Add("leave_remapped_fraction", remap.fraction);
  json.Add("leave_remap_bound", 2.0 / kRingNodes);
  json.Add("steady_hit_rate", steady);
  json.Add("outage_hit_rate", during);
  json.Add("recovered_hit_rate", recovered);
  json.Add("recovered_fraction_of_steady", steady > 0 ? recovered / steady : 0);
  json.Add("join_flushes", static_cast<double>(run.join_flushes));
  json.Add("join_catchups", static_cast<double>(run.join_catchups));
  json.Add("warm_rejoin_hit_rate", warm_recovered);
  json.Add("warm_rejoin_fraction_of_steady", warm_steady > 0 ? warm_recovered / warm_steady : 0);
  json.Add("join_snapshot_restores", static_cast<double>(warm.join_snapshot_restores));
  json.Add("flash_crowd_floor", flash_repl.floor);
  json.Add("flash_crowd_floor_baseline", flash_base.floor);
  json.Add("replica_pushes", static_cast<double>(flash_repl.replica_pushes));
  json.Add("replica_redirects", static_cast<double>(flash_repl.replica_redirects));
  json.Write();

  const bool remap_ok = remap.fraction <= 2.0 / kRingNodes && remap.only_victim_moved;
  const bool degraded = during < steady;  // the outage must actually have cost something
  const bool recovered_ok = recovered >= 0.9 * steady;
  const bool flushed = run.join_flushes >= 1;  // the worst-case rejoin path was exercised
  // Warm rejoin must take the snapshot path (never the flush path) and recover at least as
  // well as the cold baseline's bar.
  const bool warm_ok = warm.join_snapshot_restores >= 1 && warm.join_flushes == 0 &&
                       warm_recovered >= 0.9 * warm_steady;
  // Replication must not make the flash-crowd outage worse; it should hold the floor up.
  const bool flash_ok = flash_repl.floor >= flash_base.floor;
  std::printf("\nleave remaps <= 2/n: %s | outage visible: %s | rejoin flushed: %s | "
              "recovery >= 90%% of steady: %s | warm rejoin (restore, no flush, >= 90%%): %s | "
              "replicated floor >= baseline floor: %s\n",
              remap_ok ? "PASS" : "FAIL", degraded ? "PASS" : "FAIL",
              flushed ? "PASS" : "FAIL", recovered_ok ? "PASS" : "FAIL",
              warm_ok ? "PASS" : "FAIL", flash_ok ? "PASS" : "FAIL");
  return (remap_ok && degraded && recovered_ok && flushed && warm_ok && flash_ok) ||
                 !bench::GateEnabled()
             ? 0
             : 1;
}
