// Figure 5: effect of cache size on peak throughput.
//   (a) in-memory database — series: No consistency, TxCache, No caching baseline
//   (b) disk-bound database — series: TxCache, No caching baseline
//
// Cache sizes are expressed as the same fractions of the database size as the paper's axes
// (64 MB..1024 MB against an 850 MB database; 1 GB..9 GB against a 6 GB database), applied to
// our scaled dataset. Expected shape: throughput grows with cache size; speedups of roughly
// 2-5x (in-memory) and 2-3x (disk-bound); the no-consistency variant only slightly above
// TxCache (§8.1, §8.3).
#include "bench/bench_common.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

void RunSeries(const char* label, bool disk_bound, const std::vector<double>& fractions,
               const std::vector<ClientMode>& modes) {
  const double scale = EnvScale();
  sim::SimConfig base = PaperConfig(disk_bound, scale);
  const size_t db_bytes = ProbeDatasetBytes(base);
  std::printf("\n--- %s (database ~%.1f MB at scale %.3f) ---\n", label,
              static_cast<double>(db_bytes) / (1 << 20), scale);

  double baseline_tput = 0;
  std::printf("%-22s", "cache size (frac of DB)");
  for (double f : fractions) {
    std::printf("%12.0f%%", f * 100);
  }
  std::printf("\n");

  for (ClientMode mode : modes) {
    std::printf("%-22s", ModeName(mode));
    for (double f : fractions) {
      sim::SimConfig cfg = base;
      cfg.mode = mode;
      cfg.cache_bytes_per_node =
          std::max<size_t>(static_cast<size_t>(static_cast<double>(db_bytes) * f /
                                               static_cast<double>(cfg.num_cache_nodes)),
                           64 * 1024);
      sim::SimResult r = sim::PeakThroughput(cfg, /*improvement_threshold=*/0.05);
      std::printf("%13.0f", r.throughput_rps);
      std::fflush(stdout);
      if (mode == ClientMode::kNoCache) {
        baseline_tput = r.throughput_rps;
        // The baseline does not depend on cache size; print once and stop.
        for (size_t i = 1; i < fractions.size(); ++i) {
          std::printf("%13s", "(same)");
        }
        break;
      }
    }
    std::printf("  req/s\n");
  }
  if (baseline_tput > 0) {
    std::printf("(speedups are relative to the %-.0f req/s baseline)\n", baseline_tput);
  }
}

}  // namespace

int main() {
  PrintHeader("fig5_throughput: peak throughput vs cache size", "Figure 5(a), 5(b)");
  // Paper fractions: 64/850, 256/850, 512/850, 768/850, 1024/850.
  RunSeries("Figure 5(a): in-memory database", /*disk_bound=*/false,
            {0.075, 0.30, 0.60, 0.90, 1.20},
            {ClientMode::kNoCache, ClientMode::kConsistent, ClientMode::kNoConsistency});
  // Paper fractions: 1/6 .. 9/6 of the 6 GB database.
  RunSeries("Figure 5(b): disk-bound database", /*disk_bound=*/true,
            {0.17, 0.50, 0.83, 1.17, 1.50},
            {ClientMode::kNoCache, ClientMode::kConsistent});
  return 0;
}
