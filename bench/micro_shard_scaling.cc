// micro_shard_scaling — intra-node lookup throughput vs. shard count, under a concurrent
// invalidation feed.
//
// What it measures: the node-internal sharding refactor (cache_shard.{h,cc}). A single
// CacheServer is configured with 1, 4 and 16 lock-striped shards; a closed-loop client
// population hammers Lookup (re-inserting on miss, as a cacheable function would), while an
// invalidation feed publishes real messages through the bus the whole time.
//
// Methodology: like every benchmark in this repo, a *hybrid* simulation. Every operation runs
// the REAL cache-server code — real shard routing, real tag-index truncation, real sequencer
// fan-out, real insert-time history replay — and its service demand is then charged to
// discrete-event FIFO resources: one resource per shard for the lock-serialized share of each
// op, and one multi-server resource for the node's parse/marshal worker pool. Shard counts
// change only which shard resource an op queues on (taken from the server's actual routing),
// so throughput differences reflect the architecture, not a synthetic model. Wall-clock
// thread scaling cannot be observed on a single-core CI host, which is exactly why the
// repo's benchmarks report simulated time (see bench_common.h).
//
// Service demands come from the calibrated CostModel: cache_op per LOOKUP/PUT, split by
// cache_lock_fraction into a serialized share (queued on the op's shard) and a parallel share
// (queued on the worker pool). The real measured per-op CPU time on the host is printed for
// reference.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/bus/bus.h"
#include "src/cache/cache_server.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/util/rng.h"

namespace txcache {
namespace {

constexpr size_t kKeys = 4096;
constexpr size_t kGroups = 256;
constexpr size_t kClients = 64;
constexpr double kWorkerPool = 8.0;          // parse/marshal workers per node
constexpr WallClock kFeedInterval = Millis(0.5);  // one invalidation message per 0.5 ms
constexpr WallClock kWarmup = Millis(200);
constexpr WallClock kMeasure = Seconds(2);

InvalidationTag GroupTag(size_t group) {
  return InvalidationTag::Concrete("items", "idx", "g" + std::to_string(group));
}

std::string KeyName(size_t k) { return "key-" + std::to_string(k); }

struct RunResult {
  double lookups_per_s = 0;
  double hit_rate = 0;
  uint64_t truncations = 0;
  uint64_t messages = 0;
  double measured_op_us = 0;  // real per-op CPU on this host, for calibration reference
};

RunResult RunOne(size_t num_shards, const sim::CostModel& cost) {
  sim::EventQueue queue;
  sim::SimClock clock(&queue);

  CacheOptions options;
  options.num_shards = num_shards;
  options.capacity_bytes = 256 << 20;  // capacity is not the subject here
  CacheServer server("shard-bench", &clock, options);
  InvalidationBus bus;
  bus.Subscribe(&server);

  // Prefill: every key still-valid, tagged with its group.
  for (size_t k = 0; k < kKeys; ++k) {
    InsertRequest req;
    req.key = KeyName(k);
    req.value = std::string(64, 'v');
    req.interval = {1, kTimestampInfinity};
    req.computed_at = 1;
    req.tags = {GroupTag(k % kGroups)};
    server.Insert(req);
  }

  // Calibration reference: real per-op CPU for a lookup on this host.
  Rng calib_rng(7);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kCalibOps = 20000;
  for (int i = 0; i < kCalibOps; ++i) {
    LookupRequest req;
    req.key = KeyName(static_cast<size_t>(calib_rng.Uniform(0, kKeys - 1)));
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
    server.Lookup(req);
  }
  const double measured_op_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count() /
      kCalibOps;
  server.ResetStats();

  // Service demands from the calibrated model: the lock-serialized share of an op queues on
  // the op's shard; the parallel share queues on the worker pool.
  const WallClock lock_cost =
      static_cast<WallClock>(static_cast<double>(cost.cache_op) * cost.cache_lock_fraction);
  const WallClock parse_cost = cost.cache_op - lock_cost;
  // Applying one invalidation message inside a shard is cheaper than a full lookup: hash
  // probes into the tag index plus the occasional truncation.
  const WallClock apply_cost = lock_cost / 2;

  std::vector<sim::SimResource> shard_res;
  for (size_t i = 0; i < num_shards; ++i) {
    shard_res.emplace_back(1.0);
  }
  sim::SimResource workers(kWorkerPool);

  Rng rng(42);
  Timestamp feed_ts = 1;
  uint64_t completed = 0;
  bool measuring = false;

  // Invalidation feed: real messages through the real bus/sequencer, with the per-shard
  // fan-out charged to every shard's resource (the sequencer applies each message to each
  // shard under that shard's lock).
  std::function<void()> feed = [&] {
    InvalidationMessage msg;
    msg.ts = ++feed_ts;
    msg.wallclock = clock.Now();
    msg.tags = {GroupTag(static_cast<size_t>(rng.Uniform(0, kGroups - 1))),
                GroupTag(static_cast<size_t>(rng.Uniform(0, kGroups - 1)))};
    bus.Publish(msg);
    const WallClock now = queue.now();
    for (sim::SimResource& r : shard_res) {
      r.Serve(now, apply_cost);
    }
    queue.ScheduleAfter(kFeedInterval, feed);
  };
  queue.ScheduleAfter(kFeedInterval, feed);

  // Closed-loop clients: lookup; on miss recompute + PUT (one more op through the same
  // resources), zero think time — the node runs saturated. Each resource round runs in its
  // own event so Serve() arrivals stay in sim-time order (a round chained with a future
  // arrival time would spuriously delay every later-arriving op on the shared resources).
  std::function<void(size_t)> client = [&](size_t idx) {
    const WallClock t_arrive = queue.now();
    const size_t k = static_cast<size_t>(rng.Uniform(0, kKeys - 1));
    LookupRequest req;
    req.key = KeyName(k);
    // A fresh transaction's pin-set bounds: anything valid since shortly before "now".
    req.bounds_lo = feed_ts > 50 ? feed_ts - 50 : 1;
    req.bounds_hi = kTimestampInfinity;
    req.fresh_lo = req.bounds_lo;
    LookupResponse resp = server.Lookup(req);

    const size_t shard = server.ShardIndexForKey(req.key);
    WallClock t = workers.Serve(t_arrive, parse_cost);
    t = shard_res[shard].Serve(t, lock_cost);
    if (resp.hit) {
      if (measuring) {
        ++completed;
      }
      queue.Schedule(t, [&client, idx] { client(idx); });
      return;
    }
    // Recompute and PUT, like a cacheable-function miss — as a second round at its own time.
    queue.Schedule(t, [&, idx, k] {
      InsertRequest ins;
      ins.key = KeyName(k);
      ins.value = std::string(64, 'v');
      ins.interval = {feed_ts, kTimestampInfinity};
      ins.computed_at = feed_ts;
      ins.tags = {GroupTag(k % kGroups)};
      server.Insert(ins);
      WallClock t2 = workers.Serve(queue.now(), parse_cost);
      t2 = shard_res[server.ShardIndexForKey(ins.key)].Serve(t2, lock_cost);
      if (measuring) {
        ++completed;
      }
      queue.Schedule(t2, [&client, idx] { client(idx); });
    });
  };
  for (size_t i = 0; i < kClients; ++i) {
    queue.Schedule(queue.now(), [&client, i] { client(i); });
  }

  queue.Schedule(kWarmup, [&] {
    measuring = true;
    completed = 0;
    server.ResetStats();
  });
  queue.RunUntil(kWarmup + kMeasure);

  CacheStats stats = server.stats();
  RunResult result;
  result.lookups_per_s = static_cast<double>(completed) / ToSeconds(kMeasure);
  result.hit_rate = stats.hit_rate();
  result.truncations = stats.invalidation_truncations;
  result.messages = stats.invalidation_messages;
  result.measured_op_us = measured_op_us;
  return result;
}

}  // namespace
}  // namespace txcache

int main() {
  using namespace txcache;
  sim::CostModel cost;

  std::printf("================================================================\n");
  std::printf("micro_shard_scaling: intra-node lookup throughput vs. shard count\n");
  std::printf("hybrid simulation: real CacheServer ops, per-shard queued resources\n");
  std::printf("cache_op=%.0fus lock_fraction=%.2f workers=%.0f clients=%zu feed=1msg/%.1fms\n",
              static_cast<double>(cost.cache_op), cost.cache_lock_fraction, kWorkerPool,
              kClients, ToSeconds(kFeedInterval) * 1000.0);
  std::printf("================================================================\n");
  std::printf("%8s %14s %9s %7s %13s %11s\n", "shards", "lookups/s", "speedup", "hit%",
              "truncations", "real us/op");

  bench::BenchJson json("shard_scaling");
  double base = 0;
  double best_speedup = 0;
  for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    RunResult r = RunOne(shards, cost);
    if (shards == 1) {
      base = r.lookups_per_s;
    }
    const double speedup = base > 0 ? r.lookups_per_s / base : 0;
    if (shards == 16) {
      best_speedup = speedup;
    }
    std::printf("%8zu %14.0f %8.2fx %6.1f%% %13llu %11.3f\n", shards, r.lookups_per_s, speedup,
                r.hit_rate * 100.0, static_cast<unsigned long long>(r.truncations),
                r.measured_op_us);
    const std::string cell = "s" + std::to_string(shards);
    json.Add(cell + "_lookups_per_s", r.lookups_per_s);
    json.Add(cell + "_hit_rate", r.hit_rate);
  }
  json.Add("gate_16_shard_speedup", best_speedup);
  json.Write();
  std::printf("\n16-shard speedup over 1 shard: %.2fx (target >= 3.00x): %s\n", best_speedup,
              best_speedup >= 3.0 ? "PASS" : "FAIL");
  return best_speedup >= 3.0 || !bench::GateEnabled() ? 0 : 1;
}
