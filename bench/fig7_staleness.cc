// Figure 7: impact of the staleness limit on peak throughput (relative to the no-cache
// baseline), staleness 1..120 s.
//
// Expected shape (§8.2): even 5-10 s of staleness helps substantially because frequently
// invalidated objects stay usable for the staleness window; the benefit levels off around 30 s.
#include "bench/bench_common.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

void RunSeries(const char* label, bool disk_bound, double cache_fraction) {
  const double scale = EnvScale();
  sim::SimConfig base = PaperConfig(disk_bound, scale);
  const size_t db_bytes = ProbeDatasetBytes(base);
  base.cache_bytes_per_node =
      std::max<size_t>(static_cast<size_t>(static_cast<double>(db_bytes) * cache_fraction /
                                           static_cast<double>(base.num_cache_nodes)),
                       64 * 1024);

  base.mode = ClientMode::kNoCache;
  sim::SimResult baseline = sim::PeakThroughput(base, 0.05);
  std::printf("\n--- %s (baseline %.0f req/s) ---\n", label, baseline.throughput_rps);
  std::printf("%-24s %16s %14s %10s\n", "staleness limit (s)", "throughput (req/s)",
              "relative", "hit rate");

  base.mode = ClientMode::kConsistent;
  // The axis is printed in paper seconds; the run uses staleness scaled by the global time
  // scale (default 10x down) so that even the 120 s limit binds within the simulated window.
  for (double staleness_s : {1.0, 2.0, 5.0, 10.0, 15.0, 30.0, 60.0, 90.0, 120.0}) {
    sim::SimConfig cfg = base;
    cfg.staleness = ScaledStaleness(staleness_s);
    cfg.think_time_mean = Seconds(7.0 * EnvTimeScale());
    sim::SimResult r = sim::PeakThroughput(cfg, 0.05);
    std::printf("%24.0f %18.0f %13.2fx %9.1f%%\n", staleness_s, r.throughput_rps,
                r.throughput_rps / std::max(1.0, baseline.throughput_rps),
                r.cache.hit_rate() * 100);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  PrintHeader("fig7_staleness: peak throughput vs staleness limit", "Figure 7");
  // Paper series: in-memory DB with a 512 MB cache (~60% of DB), and the larger disk-bound DB
  // with a 9 GB cache (~150% of DB).
  RunSeries("in-memory DB, mid-size cache", /*disk_bound=*/false, 0.60);
  RunSeries("disk-bound DB, large cache", /*disk_bound=*/true, 1.50);
  return 0;
}
