// micro_lookup_hotpath — the zero-copy read fast path vs. the copy/exclusive baseline.
//
// What it measures: the cache node's lookup hot path after the read-fast-path rebuild
// (cache_shard.{h,cc}): shared-lock lookups that alias the resident buffer, deferred
// LRU/score touches, and hash-once key routing — against ReadPath::kExclusiveCopy, which
// reproduces the pre-change behavior (exclusive shard lock, deep-copied payloads, inline
// LRU/score maintenance) inside the same binary. Both sides run the identical CacheServer
// code and the identical instrumented lock; only the read-path policy differs.
//
// Workload: read-mostly (99% lookups of resident keys, 1% unknown-key misses), single
// requester, measured in real wall-clock time on this host. The interesting regime is large
// values — the baseline pays a malloc+memcpy per hit that grows with the value while the
// fast path's cost is flat — so the matrix crosses {1, 16} shards with {256 B, 4 KiB, 16 KiB}
// values. A trailing thread sweep ({1,2,4,8} readers x {1,16} shards, 4 KiB, zero-copy path)
// measures multi-core hit scaling after the EBR rebuild: hits take no lock at all, so
// aggregate throughput should rise with reader count instead of serializing on the shard
// mutex. The 4-thread/16-shard cell also runs the copy/exclusive baseline for the contention
// contrast.
//
// Gates (TXCACHE_BENCH_GATE=0 to disable):
//   1. single-shard hit throughput on >= 4 KiB values must be >= 1.5x the copy/exclusive
//      baseline;
//   2. 8-thread aggregate zero-copy throughput on 16 shards must be >= 3x the 1-thread run.
// Gate 2 needs real cores to mean anything — when std::thread::hardware_concurrency() is
// below the sweep width (single-core CI hosts), it auto-relaxes to informational: the
// scaling_8t_over_1t metric is still measured and written, but does not fail the run.
// Results land in BENCH_lookup_hotpath.json via bench::BenchJson for cross-PR perf tracking.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cache_server.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace txcache {
namespace {

constexpr size_t kKeys = 2048;

std::string KeyName(size_t k) { return "key-" + std::to_string(k); }

std::unique_ptr<CacheServer> MakeServer(const Clock* clock, size_t shards, ReadPath path,
                                        size_t value_bytes) {
  CacheOptions options;
  options.num_shards = shards;
  options.read_path = path;
  // Roomy budget: this benchmark measures the hit path, not eviction.
  options.capacity_bytes = kKeys * (value_bytes + 512) * 2;
  auto server = std::make_unique<CacheServer>("hotpath", clock, options);
  for (size_t k = 0; k < kKeys; ++k) {
    InsertRequest req;
    req.key = KeyName(k);
    req.value = std::string(value_bytes, static_cast<char>('a' + k % 23));
    req.interval = {1, kTimestampInfinity};
    req.computed_at = 1;
    req.tags = {InvalidationTag::Concrete("items", "idx", "g" + std::to_string(k % 64))};
    req.fill_cost_us = 500;
    req.key_hash = Fnv1a(req.key);
    Status st = server->Insert(req);
    if (!st.ok()) {
      std::fprintf(stderr, "warm insert failed: %s\n", st.ToString().c_str());
      std::exit(2);
    }
  }
  return server;
}

// One requester hammering `server` with `ops` lookups, 99% resident / 1% unknown keys, the
// client-side hash computed once per request (the production hot path). Returns Mops/s.
double RunReader(CacheServer& server, uint64_t ops, uint64_t seed) {
  Rng rng(seed);
  // Pre-build the request stream so the measured loop is lookups, not key formatting.
  std::vector<LookupRequest> reqs(1024);
  for (LookupRequest& req : reqs) {
    const bool miss = rng.Bernoulli(0.01);
    req.key = miss ? "unknown-" + std::to_string(rng.Uniform(0, 1 << 20))
                   : KeyName(static_cast<size_t>(rng.Uniform(0, kKeys - 1)));
    req.key_hash = Fnv1a(req.key);
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
  }
  uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    LookupResponse resp = server.Lookup(reqs[i % reqs.size()]);
    if (resp.hit) {
      // Touch one byte of the payload like a real consumer would; for the zero-copy path
      // this is the alias, for the baseline the fresh copy.
      sink += static_cast<uint8_t>((*resp.value)[0]);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  if (sink == 0) {
    std::fprintf(stderr, "no hits?\n");
    std::exit(2);
  }
  return static_cast<double>(ops) / seconds / 1e6;
}

double RunOne(size_t shards, ReadPath path, size_t value_bytes, uint64_t ops) {
  ManualClock clock;
  auto server = MakeServer(&clock, shards, path, value_bytes);
  RunReader(*server, ops / 8, 1);  // warm-up pass (page in, steady-state allocator)
  return RunReader(*server, ops, 2);
}

double RunThreaded(size_t shards, ReadPath path, size_t value_bytes, uint64_t ops,
                   size_t threads) {
  ManualClock clock;
  auto server = MakeServer(&clock, shards, path, value_bytes);
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&server, t, ops] { RunReader(*server, ops, 100 + t); });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  return static_cast<double>(ops * threads) / seconds / 1e6;
}

}  // namespace
}  // namespace txcache

int main() {
  using namespace txcache;
  const uint64_t ops = bench::EnvOps(400'000);

  std::printf("================================================================\n");
  std::printf("micro_lookup_hotpath: zero-copy shared-lock reads vs copy/exclusive\n");
  std::printf("read-mostly (99%% hit), %zu resident keys, %llu ops/cell "
              "(TXCACHE_BENCH_OPS)\n",
              kKeys, static_cast<unsigned long long>(ops));
  std::printf("================================================================\n");
  std::printf("%7s %9s %22s %22s %9s\n", "shards", "value", "copy/exclusive Mops", "zero-copy Mops",
              "speedup");

  bench::BenchJson json("lookup_hotpath");
  double gate_speedup = 0;  // single-shard, 4 KiB
  for (size_t shards : {size_t{1}, size_t{16}}) {
    for (size_t value_bytes : {size_t{256}, size_t{4096}, size_t{16384}}) {
      const double base = RunOne(shards, ReadPath::kExclusiveCopy, value_bytes, ops);
      const double fast = RunOne(shards, ReadPath::kSharedZeroCopy, value_bytes, ops);
      const double speedup = base > 0 ? fast / base : 0;
      if (shards == 1 && value_bytes == 4096) {
        gate_speedup = speedup;
      }
      std::printf("%7zu %8zuB %22.2f %22.2f %8.2fx\n", shards, value_bytes, base, fast, speedup);
      const std::string cell =
          "s" + std::to_string(shards) + "_v" + std::to_string(value_bytes);
      json.Add(cell + "_exclusive_copy_mops", base);
      json.Add(cell + "_zero_copy_mops", fast);
      json.Add(cell + "_speedup", speedup);
    }
  }

  // Thread sweep: aggregate zero-copy throughput as reader count grows. With EBR-guarded
  // lock-free hits the per-shard mutex is out of the hit path entirely, so 16-shard (and
  // even 1-shard) aggregate throughput should scale with cores. Each cell divides the op
  // budget across threads so wall-clock per cell stays flat.
  std::printf("\n%7s %7s %8s %22s\n", "threads", "shards", "value", "zero-copy agg Mops");
  const unsigned hw_threads = std::thread::hardware_concurrency();
  double mt1_s16 = 0, mt8_s16 = 0;
  for (size_t shards : {size_t{1}, size_t{16}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const double agg =
          RunThreaded(shards, ReadPath::kSharedZeroCopy, 4096, ops / threads, threads);
      if (shards == 16 && threads == 1) mt1_s16 = agg;
      if (shards == 16 && threads == 8) mt8_s16 = agg;
      std::printf("%7zu %7zu %8s %22.2f\n", threads, shards, "4096B", agg);
      json.Add("mt" + std::to_string(threads) + "_s" + std::to_string(shards) +
                   "_v4096_zero_copy_mops",
               agg);
    }
  }
  // Contention contrast at the 4-thread/16-shard cell: the baseline's exclusive lock
  // serializes readers per shard; kept under its historical key for cross-PR diffing.
  const double base_mt4 = RunThreaded(16, ReadPath::kExclusiveCopy, 4096, ops / 4, 4);
  std::printf("%7d %7d %8s %22.2f   (copy/exclusive baseline)\n", 4, 16, "4096B", base_mt4);
  json.Add("mt4_s16_v4096_exclusive_copy_mops", base_mt4);

  const double scaling = mt1_s16 > 0 ? mt8_s16 / mt1_s16 : 0;
  json.Add("scaling_8t_over_1t", scaling);
  json.Add("gate_single_shard_4k_speedup", gate_speedup);
  json.Write();

  const bool speedup_ok = gate_speedup >= 1.5;
  // The scaling gate only binds when the host can actually run the sweep in parallel.
  const bool scaling_binds = hw_threads >= 8;
  const bool scaling_ok = scaling >= 3.0;
  std::printf("\nsingle-shard 4 KiB speedup: %.2fx (target >= 1.50x): %s\n", gate_speedup,
              speedup_ok ? "PASS" : "FAIL");
  std::printf("8-thread/1-thread scaling, 16 shards: %.2fx (target >= 3.00x): %s\n", scaling,
              !scaling_binds
                  ? "INFO (host reports < 8 hardware threads; gate relaxed)"
                  : (scaling_ok ? "PASS" : "FAIL"));
  const bool pass = speedup_ok && (scaling_ok || !scaling_binds);
  return pass || !bench::GateEnabled() ? 0 : 1;
}
