// Component microbenchmarks (google-benchmark): interval algebra, serialization, consistent
// hashing, cache server operations, database access paths, pincushion round trips, and the
// pin-set operations of the client library.
//
// Includes the §5.4 claim ("nearly all pincushion requests received a response in under
// 0.2 ms") and the DESIGN.md ablation of bounds-only vs exact pin-set filtering.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"
#include "src/core/pin_set.h"
#include "src/db/database.h"
#include "src/pincushion/pincushion.h"
#include "src/util/rng.h"
#include "src/util/serde.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

// --- interval algebra ---

void BM_IntervalSetAdd(benchmark::State& state) {
  Rng rng(1);
  std::vector<Interval> intervals;
  for (int i = 0; i < 256; ++i) {
    Timestamp lo = static_cast<Timestamp>(rng.Uniform(0, 100000));
    intervals.push_back({lo, lo + static_cast<Timestamp>(rng.Uniform(1, 500))});
  }
  for (auto _ : state) {
    IntervalSet s;
    for (const Interval& iv : intervals) {
      s.Add(iv);
    }
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_IntervalSetAdd);

void BM_IntervalMaximalGap(benchmark::State& state) {
  IntervalSet s;
  Rng rng(2);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    Timestamp lo = static_cast<Timestamp>(rng.Uniform(0, 1000000));
    s.Add({lo, lo + 50});
  }
  Timestamp t = 500'000;
  while (s.Contains(t)) {
    ++t;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.MaximalGapAround(t, Interval::All()));
  }
}
BENCHMARK(BM_IntervalMaximalGap)->Arg(16)->Arg(256)->Arg(4096);

// --- serialization (cache keys / values) ---

void BM_SerdeCacheKey(benchmark::State& state) {
  for (auto _ : state) {
    Writer w;
    w.PutString("rubis.page.view_item");
    SerializeValue(w, int64_t{123456});
    SerializeValue(w, std::string("second-arg"));
    benchmark::DoNotOptimize(w.Take());
  }
}
BENCHMARK(BM_SerdeCacheKey);

void BM_SerdeRowRoundtrip(benchmark::State& state) {
  Row row{Value(int64_t{1}), Value("nickname"), Value(3.5), Value(int64_t{42}),
          Value(std::string(200, 'd'))};
  for (auto _ : state) {
    auto decoded = DecodeRow(EncodeRow(row));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SerdeRowRoundtrip);

// --- consistent hashing ---

void BM_ConsistentHashLookup(benchmark::State& state) {
  ConsistentHashRing ring(64);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    ring.AddNode("node-" + std::to_string(i));
  }
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.NodeForKey(key++));
  }
}
BENCHMARK(BM_ConsistentHashLookup)->Arg(2)->Arg(8)->Arg(64);

// --- cache server ---

void BM_CacheLookupHit(benchmark::State& state) {
  ManualClock clock;
  CacheServer server("bench", &clock);
  Rng rng(3);
  constexpr int kKeys = 10'000;
  for (int i = 0; i < kKeys; ++i) {
    InsertRequest req;
    req.key = "key-" + std::to_string(i);
    req.value = std::string(128, 'v');
    req.interval = {10, kTimestampInfinity};
    req.computed_at = 10;
    req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(i))};
    server.Insert(req);
  }
  LookupRequest req;
  req.bounds_lo = 10;
  req.bounds_hi = 10;
  for (auto _ : state) {
    req.key = "key-" + std::to_string(rng.Uniform(0, kKeys - 1));
    benchmark::DoNotOptimize(server.Lookup(req));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInsert(benchmark::State& state) {
  ManualClock clock;
  CacheServer::Options options;
  options.capacity_bytes = 64 << 20;
  CacheServer server("bench", &clock, options);
  int64_t i = 0;
  for (auto _ : state) {
    InsertRequest req;
    req.key = "key-" + std::to_string(i++);
    req.value = std::string(128, 'v');
    req.interval = {10, 20};
    server.Insert(req);
  }
}
BENCHMARK(BM_CacheInsert);

void BM_CacheInvalidation(benchmark::State& state) {
  // Applies one invalidation message against a cache holding `range` still-valid entries per
  // tag bucket.
  ManualClock clock;
  CacheServer server("bench", &clock);
  uint64_t seqno = 1;
  Timestamp ts = 100;
  for (auto _ : state) {
    state.PauseTiming();
    server.Flush();
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      InsertRequest req;
      req.key = "key-" + std::to_string(i);
      req.value = "v";
      req.interval = {ts - 50, kTimestampInfinity};
      req.computed_at = ts - 50;
      req.tags = {InvalidationTag::Concrete("t", "i", "hot")};
      server.Insert(req);
    }
    InvalidationMessage msg;
    msg.seqno = seqno++;
    msg.ts = ts++;
    msg.tags = {InvalidationTag::Concrete("t", "i", "hot")};
    state.ResumeTiming();
    server.Deliver(msg);
  }
}
BENCHMARK(BM_CacheInvalidation)->Arg(1)->Arg(64);

// --- database access paths ---

class DbFixture : public benchmark::Fixture {
 public:
  void SetUp(const ::benchmark::State&) override {
    clock_ = std::make_unique<ManualClock>();
    db_ = std::make_unique<Database>(clock_.get());
    CreateAccountsTable(db_.get());
    TxnId txn = db_->BeginReadWrite();
    for (int64_t i = 0; i < 20'000; ++i) {
      db_->Insert(txn, kAccounts, Account(i, "owner" + std::to_string(i % 499), i % 1000,
                                          i % 63));
    }
    db_->Commit(txn);
  }
  void TearDown(const ::benchmark::State&) override {
    db_.reset();
    clock_.reset();
  }

  std::unique_ptr<ManualClock> clock_;
  std::unique_ptr<Database> db_;
};

BENCHMARK_F(DbFixture, BM_DbPointLookup)(benchmark::State& state) {
  auto txn = db_->BeginReadOnly();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db_->Execute(txn.value(), AccountById(rng.Uniform(0, 19'999))));
  }
  db_->Commit(txn.value());
}

BENCHMARK_F(DbFixture, BM_DbSecondaryIndexScan)(benchmark::State& state) {
  auto txn = db_->BeginReadOnly();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db_->Execute(
        txn.value(), Query::From(AccessPath::IndexEq(
                         kAccounts, kAccountsByOwner,
                         Row{Value("owner" + std::to_string(rng.Uniform(0, 498)))}))));
  }
  db_->Commit(txn.value());
}

BENCHMARK_F(DbFixture, BM_DbUpdateCommit)(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    TxnId txn = db_->BeginReadWrite();
    db_->Update(txn, kAccounts, AccountById(rng.Uniform(0, 19'999)).from, nullptr,
                {{AccountsCol::kBalance, Value(rng.Uniform(0, 999))}});
    benchmark::DoNotOptimize(db_->Commit(txn));
  }
}

BENCHMARK_F(DbFixture, BM_DbVacuum)(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TxnId txn = db_->BeginReadWrite();
    for (int64_t i = 0; i < 512; ++i) {
      db_->Update(txn, kAccounts, AccountById(i * 7 % 20'000).from, nullptr,
                  {{AccountsCol::kBalance, Value(i)}});
    }
    db_->Commit(txn);
    state.ResumeTiming();
    benchmark::DoNotOptimize(db_->Vacuum());
  }
}

// --- pincushion (§5.4: sub-0.2 ms responses) ---

void BM_PincushionRoundTrip(benchmark::State& state) {
  ManualClock clock;
  Database db(&clock);
  CreateAccountsTable(&db);
  InsertAccount(&db, 1, "a", 1);
  Pincushion pincushion(&db, &clock);
  for (int i = 0; i < 20; ++i) {
    PinnedSnapshot snap = db.Pin();
    pincushion.Register(PinInfo{snap.ts, snap.wallclock});
  }
  for (auto _ : state) {
    auto pins = pincushion.AcquireFreshPins(Seconds(30));
    pincushion.Release(pins);
    benchmark::DoNotOptimize(pins);
  }
}
BENCHMARK(BM_PincushionRoundTrip);

// --- pin set: bounds-only vs exact narrowing (DESIGN.md ablation) ---

void BM_PinSetNarrowExact(benchmark::State& state) {
  std::vector<PinInfo> pins;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    pins.push_back(PinInfo{static_cast<Timestamp>(10 + i), 0});
  }
  for (auto _ : state) {
    PinSet set;
    set.Reset(pins, true);
    benchmark::DoNotOptimize(set.NarrowTo(Interval{12, 10 + pins.size()}));
  }
}
BENCHMARK(BM_PinSetNarrowExact)->Arg(4)->Arg(64);

void BM_PinSetBoundsOnly(benchmark::State& state) {
  std::vector<PinInfo> pins;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    pins.push_back(PinInfo{static_cast<Timestamp>(10 + i), 0});
  }
  PinSet set;
  set.Reset(pins, true);
  for (auto _ : state) {
    Interval bounds{set.BoundsLo(), set.BoundsHi()};
    benchmark::DoNotOptimize(bounds.Overlaps(Interval{12, 10 + pins.size()}));
  }
}
BENCHMARK(BM_PinSetBoundsOnly)->Arg(4)->Arg(64);

}  // namespace
}  // namespace txcache

namespace txcache {
namespace {

// Console output as usual, plus every run's per-iteration real time captured into
// BENCH_components.json so the component micro-benchmarks join the cross-PR perf trajectory
// like the other bench/micro_* binaries.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(bench::BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      std::string key = run.benchmark_name() + "_ns";
      for (char& c : key) {
        if (c == '/' || c == ':' || c == '"') {
          c = '_';
        }
      }
      json_->Add(key, run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJson* json_;
};

}  // namespace
}  // namespace txcache

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  txcache::bench::BenchJson json("components");
  txcache::JsonCapturingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  json.Write();
  benchmark::Shutdown();
  return 0;
}
