// micro_large_values — size-aware admission + advisory-hint feedback + learned-TTL expiry on
// a mixed-size workload, against the PR-2 cost-aware baseline at an equal byte budget.
//
//  (1) Size-aware admission with the feedback loop (GATED). The workload mixes 256 B page
//      fragments, 64 KiB listings and rare 4 MB report pages (skewed popularity). Under PR-2
//      a 4 MB fill is judged only by its function's EWMA benefit-per-byte — the gate has no
//      concept of per-entry size — so the reports keep getting stored (and churned out),
//      displacing resident small entries, and the application keeps paying their full
//      recompute cost on every request. Under PR-5 the max_entry_fraction guard and the
//      displacement comparison decline them with kDeclinedTooLarge, and the advisory hints
//      on the decline responses tell the call site its fills are being refused
//      (decline_rate -> 1); the call site then adapts its fill sizing — rendering the
//      compact variant of the report, which caches fine — exactly the MAKE-CACHEABLE
//      feedback loop of the tentpole. GATE: the PR-5 system (size-aware admission + hint
//      adaptation) pays >= 25% less total recompute cost than PR-2 over the identical
//      request stream. The admission-only delta (no adaptation on either side) is reported
//      alongside, un-gated: GreedyDual eviction already self-protects against much of the
//      large-entry damage, so admission alone is worth ~10-15% here — the feedback loop is
//      where the tentpole earns its keep.
//
//  (2) Learned-TTL expiry (reported, non-gated). A write-hot "volatile" class competes with
//      a stable class for bytes; the stream truncates volatile entries after ~learned
//      lifetime. With TTL expiry on, entries resident past slack x learned lifetime are
//      demoted to stale-first victims and recycled before the invalidation lands, which
//      trims the truncated-but-resident window that answers present-time probes with
//      consistency misses. Reported: consistency misses with TTL on vs off (and the hit-rate
//      cost of the earlier recycling, which is the knob's tradeoff).
//
// Results land in BENCH_large_values.json via bench::BenchJson.
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cache_server.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "src/util/serde.h"

namespace txcache {
namespace {

// MakeCacheKey-shaped keys so CacheKeyFunction recovers the class name as the profile.
std::string FnKey(const std::string& function, uint64_t arg) {
  Writer w;
  w.PutString(function);
  w.PutU64(arg);
  return w.Take();
}

constexpr size_t kBudget = 8u << 20;  // equal byte budget on both sides

struct MixResult {
  uint64_t recompute_cost_us = 0;
  uint64_t hits = 0;
  uint64_t lookups = 0;
  uint64_t declined_too_large = 0;
  uint64_t declined_watermark = 0;
  uint64_t adapted_fills = 0;  // report requests downgraded to the compact variant
};

// Runs the identical skewed request stream against `options`, recomputing (and attempting to
// insert) on every miss, exactly as a TxCacheClient fill loop would. With `adapt` the report
// call site reads the advisory hints observed on its responses and, once the cache reports
// declining its fills (decline_rate > 0.5), renders the compact variant instead — the
// MAKE-CACHEABLE fill-sizing feedback loop.
MixResult RunMix(CacheServer::Options options, bool adapt, uint64_t ops, uint64_t seed) {
  ManualClock clock;
  clock.Set(Seconds(100));
  options.capacity_bytes = kBudget;
  options.num_shards = 8;
  options.policy = EvictionPolicy::kCostAware;
  CacheServer server("large-values", &clock, options);
  Rng rng(seed);
  MixResult out;
  std::shared_ptr<const AdvisoryHints> report_hints;  // as a client would track per function
  for (uint64_t i = 0; i < ops; ++i) {
    clock.Advance(Millis(1));
    const double roll = rng.UniformReal(0, 1);
    std::string fn;
    uint64_t key, cost;
    size_t bytes;
    if (roll < 0.02) {
      // 4 MB report page, rare and rarely repeated: per-byte it can never earn its slice.
      // An adapted call site renders the compact summary instead (different function,
      // different cache entry — the page's own choice of fidelity).
      if (adapt && report_hints != nullptr && report_hints->decline_rate > 0.5) {
        ++out.adapted_fills;
        fn = "report_lite";
        key = rng.Zipf(300, 0.9) - 1;
        bytes = 4 << 10;
        cost = 8'000;
      } else {
        fn = "report";
        key = rng.Zipf(300, 0.9) - 1;
        bytes = 4u << 20;
        cost = 150'000;
      }
    } else if (roll < 0.22) {
      fn = "listing";
      key = rng.Zipf(100, 0.9) - 1;
      bytes = 64 << 10;
      cost = 5'000;
    } else {
      // Near-uniform fragment popularity: residency translates linearly into hit rate, so
      // bytes wasted on doomed 4 MB fills show up as fragment recomputes.
      fn = "page_frag";
      key = static_cast<uint64_t>(rng.Uniform(0, 3599));
      bytes = 256;
      cost = 400;
    }
    LookupRequest req;
    req.key = FnKey(fn, key);
    req.key_hash = Fnv1a(req.key);
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
    ++out.lookups;
    LookupResponse resp = server.Lookup(req);
    if (resp.hit) {
      ++out.hits;
      if (fn == "report" && resp.hints != nullptr) {
        report_hints = resp.hints;
      }
      continue;
    }
    // Miss: pay the recompute, offer the fill. Declines are policy outcomes — the recompute
    // is already paid either way, which is exactly the cost this benchmark totals.
    out.recompute_cost_us += cost;
    InsertRequest ins;
    ins.key = std::move(req.key);
    ins.key_hash = req.key_hash;
    ins.value = std::string(bytes, 'v');
    ins.interval = {1, kTimestampInfinity};
    ins.computed_at = 1;
    ins.fill_cost_us = cost;
    std::shared_ptr<const AdvisoryHints> hints;
    Status st = server.Insert(ins, &hints);
    if (fn == "report" && hints != nullptr) {
      report_hints = std::move(hints);  // the feedback loop: declines teach the call site
    }
    if (st.code() == StatusCode::kDeclinedTooLarge) {
      ++out.declined_too_large;
    } else if (st.code() == StatusCode::kDeclined) {
      ++out.declined_watermark;
    } else if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      std::exit(2);
    }
  }
  return out;
}

struct TtlResult {
  uint64_t miss_consistency = 0;
  uint64_t hits = 0;
  uint64_t lookups = 0;
  uint64_t ttl_demotions = 0;
};

// TTL experiment: a write-hot "volatile" class (tag groups invalidated on a fixed cadence,
// ~200 ms realized lifetimes) competes with a never-invalidated "stable" class for a tight
// budget. Probes run at the present with a trailing staleness window, so a truncated entry
// still resident classifies as a consistency miss until evicted.
TtlResult RunTtl(double ttl_expiry_slack, uint64_t ops, uint64_t seed) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options;
  options.capacity_bytes = 2u << 20;
  options.num_shards = 2;
  options.policy = EvictionPolicy::kCostAware;
  options.admission_min_samples = std::numeric_limits<uint64_t>::max();  // isolate TTL
  options.displacement_check_bytes = std::numeric_limits<size_t>::max();
  options.lifetime_min_samples = 4;
  options.ttl_expiry_slack = ttl_expiry_slack;
  options.sweep_interval_ops = 16;
  CacheServer server("ttl", &clock, options);
  Rng rng(seed);

  constexpr uint64_t kStableKeys = 2500;
  constexpr uint64_t kVolatileKeys = 600;
  constexpr uint64_t kGroups = 8;
  constexpr uint64_t kInvalidateEvery = 40;  // group period: 320 ops (= 320 ms)
  Timestamp now_ts = 1;
  uint64_t seqno = 1;
  uint64_t next_group = 0;
  TtlResult out;
  for (uint64_t i = 0; i < ops; ++i) {
    clock.Advance(Millis(1));
    if (i % kInvalidateEvery == 0) {
      InvalidationMessage msg;
      msg.seqno = seqno++;
      msg.ts = ++now_ts;
      msg.wallclock = clock.Now();
      msg.tags = {InvalidationTag::Concrete("t", "i", "g" + std::to_string(next_group))};
      next_group = (next_group + 1) % kGroups;
      server.Deliver(msg);
    }
    const bool volatile_class = rng.Bernoulli(0.25);
    const uint64_t key =
        rng.Zipf(static_cast<int64_t>(volatile_class ? kVolatileKeys : kStableKeys), 0.8) - 1;
    LookupRequest req;
    req.key = FnKey(volatile_class ? "volatile" : "stable", key);
    req.key_hash = Fnv1a(req.key);
    req.bounds_lo = now_ts;  // present-time probe...
    req.bounds_hi = kTimestampInfinity;
    req.fresh_lo = now_ts > 100 ? now_ts - 100 : 0;  // ...with a trailing staleness window
    ++out.lookups;
    LookupResponse resp = server.Lookup(req);
    if (resp.hit) {
      ++out.hits;
      continue;
    }
    if (resp.miss == MissKind::kConsistency) {
      ++out.miss_consistency;
    }
    InsertRequest ins;
    ins.key = std::move(req.key);
    ins.key_hash = req.key_hash;
    ins.value = std::string(1024, 'v');
    ins.interval = {now_ts, kTimestampInfinity};
    ins.computed_at = now_ts;
    if (volatile_class) {
      ins.tags = {InvalidationTag::Concrete("t", "i", "g" + std::to_string(key % kGroups))};
    }
    ins.fill_cost_us = volatile_class ? 3000 : 1000;
    Status st = server.Insert(ins);
    if (!st.ok() && st.code() != StatusCode::kDeclined &&
        st.code() != StatusCode::kDeclinedTooLarge) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      std::exit(2);
    }
  }
  out.ttl_demotions = server.stats().ttl_demotions;
  return out;
}

}  // namespace
}  // namespace txcache

int main() {
  using namespace txcache;
  const uint64_t ops = bench::EnvOps(60'000);

  std::printf("================================================================\n");
  std::printf("micro_large_values: size-aware admission + hint feedback + learned TTLs\n");
  std::printf("mixed 256B/64KiB/4MB skewed mix, %llu ops (TXCACHE_BENCH_OPS), 8 MiB budget\n",
              static_cast<unsigned long long>(ops));
  std::printf("================================================================\n");

  // PR-2 baseline: cost-aware watermark only, no size gate, no hints to act on.
  CacheServer::Options pr2;
  pr2.max_entry_fraction = 0;
  pr2.displacement_check_bytes = std::numeric_limits<size_t>::max();
  // PR-5: the defaults (guard + displacement comparison), with and without the call-site
  // adaptation the advisory hints enable.
  CacheServer::Options size_aware;  // defaults

  const MixResult base = RunMix(pr2, /*adapt=*/false, ops, 42);
  const MixResult aware = RunMix(size_aware, /*adapt=*/false, ops, 42);
  const MixResult full = RunMix(size_aware, /*adapt=*/true, ops, 42);
  auto saved_vs_base = [&base](const MixResult& r) {
    return base.recompute_cost_us == 0
               ? 0.0
               : 1.0 - static_cast<double>(r.recompute_cost_us) /
                           static_cast<double>(base.recompute_cost_us);
  };
  auto row = [](const char* name, const MixResult& r) {
    std::printf("%-34s %10.1f %8.1f%% %9llu %9llu %9llu\n", name,
                static_cast<double>(r.recompute_cost_us) / 1e6,
                100.0 * static_cast<double>(r.hits) / static_cast<double>(r.lookups),
                static_cast<unsigned long long>(r.declined_too_large),
                static_cast<unsigned long long>(r.declined_watermark),
                static_cast<unsigned long long>(r.adapted_fills));
  };
  std::printf("%-34s %10s %9s %9s %9s %9s\n", "", "rec(s)", "hit", "too-large", "watermark",
              "adapted");
  row("PR-2 cost-aware", base);
  row("PR-5 size-aware (admission only)", aware);
  row("PR-5 size-aware + hint feedback", full);
  const double saved_admission = saved_vs_base(aware);
  const double saved_full = saved_vs_base(full);
  std::printf("recompute cost saved: admission only %.1f%%, with hint feedback %.1f%%\n",
              saved_admission * 100.0, saved_full * 100.0);

  // Learned-TTL expiry: consistency misses with the expiry pass on vs off (reported margin,
  // non-gated), plus the hit-rate cost of recycling entries early.
  const TtlResult no_ttl = RunTtl(/*ttl_expiry_slack=*/0, ops, 7);
  const TtlResult ttl = RunTtl(/*ttl_expiry_slack=*/1.0, ops, 7);
  const double consistency_margin =
      no_ttl.miss_consistency == 0
          ? 0
          : 1.0 - static_cast<double>(ttl.miss_consistency) /
                      static_cast<double>(no_ttl.miss_consistency);
  std::printf("\nlearned-TTL expiry: consistency misses %llu -> %llu (%.1f%% fewer), "
              "%llu demotions, hit rate %.1f%% -> %.1f%%\n",
              static_cast<unsigned long long>(no_ttl.miss_consistency),
              static_cast<unsigned long long>(ttl.miss_consistency),
              consistency_margin * 100.0,
              static_cast<unsigned long long>(ttl.ttl_demotions),
              100.0 * static_cast<double>(no_ttl.hits) / static_cast<double>(no_ttl.lookups),
              100.0 * static_cast<double>(ttl.hits) / static_cast<double>(ttl.lookups));

  bench::BenchJson json("large_values");
  json.Add("pr2_recompute_cost_s", static_cast<double>(base.recompute_cost_us) / 1e6);
  json.Add("size_aware_recompute_cost_s",
           static_cast<double>(aware.recompute_cost_us) / 1e6);
  json.Add("size_aware_feedback_recompute_cost_s",
           static_cast<double>(full.recompute_cost_us) / 1e6);
  json.Add("recompute_saved_admission_only", saved_admission);
  json.Add("recompute_saved_with_feedback", saved_full);
  json.Add("pr2_hit_rate", static_cast<double>(base.hits) / static_cast<double>(base.lookups));
  json.Add("feedback_hit_rate",
           static_cast<double>(full.hits) / static_cast<double>(full.lookups));
  json.Add("feedback_adapted_fills", static_cast<double>(full.adapted_fills));
  json.Add("size_aware_declined_too_large", static_cast<double>(aware.declined_too_large));
  json.Add("ttl_off_consistency_misses", static_cast<double>(no_ttl.miss_consistency));
  json.Add("ttl_on_consistency_misses", static_cast<double>(ttl.miss_consistency));
  json.Add("ttl_consistency_miss_reduction", consistency_margin);
  json.Add("ttl_demotions", static_cast<double>(ttl.ttl_demotions));
  json.Write();

  std::printf("\nPR-5 vs PR-2 recompute saving: %.1f%% (target >= 25%%): %s\n",
              saved_full * 100.0, saved_full >= 0.25 ? "PASS" : "FAIL");
  return saved_full >= 0.25 || !bench::GateEnabled() ? 0 : 1;
}
