// Figure 6: effect of cache size on cache hit rate (30 s staleness limit).
//   (a) in-memory database   (b) disk-bound database
//
// Expected shape (§8.1): hit rate grows with cache size — roughly linearly until the working
// set fits, then slowly — reaching high values; the disk-bound configuration shows high hit
// rates even for small caches (few hot keys) while large, rarely-accessed data dominates
// misses.
#include "bench/bench_common.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

void RunConfig(const char* label, bool disk_bound, const std::vector<double>& fractions) {
  const double scale = EnvScale();
  sim::SimConfig base = PaperConfig(disk_bound, scale);
  base.mode = ClientMode::kConsistent;
  const size_t db_bytes = ProbeDatasetBytes(base);
  std::printf("\n--- %s (database ~%.1f MB) ---\n", label,
              static_cast<double>(db_bytes) / (1 << 20));
  std::printf("%-26s %12s %12s %14s\n", "cache size (frac of DB)", "hit rate", "lookups",
              "bytes used");
  for (double f : fractions) {
    sim::SimConfig cfg = base;
    cfg.cache_bytes_per_node =
        std::max<size_t>(static_cast<size_t>(static_cast<double>(db_bytes) * f /
                                             static_cast<double>(cfg.num_cache_nodes)),
                         64 * 1024);
    sim::ClusterSim sim(cfg);
    auto r = sim.Run();
    if (!r.ok()) {
      std::printf("%25.0f%%  FAILED: %s\n", f * 100, r.status().ToString().c_str());
      continue;
    }
    std::printf("%25.0f%% %11.1f%% %12llu %11.2f MB\n", f * 100,
                r.value().cache.hit_rate() * 100,
                static_cast<unsigned long long>(r.value().cache.lookups),
                static_cast<double>(r.value().cache_bytes_used) / (1 << 20));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  PrintHeader("fig6_hitrate: cache hit rate vs cache size", "Figure 6(a), 6(b)");
  RunConfig("Figure 6(a): in-memory database", false, {0.075, 0.30, 0.60, 0.90, 1.20});
  RunConfig("Figure 6(b): disk-bound database", true, {0.17, 0.50, 0.83, 1.17, 1.50});
  return 0;
}
