// Figure 6: effect of cache size on cache hit rate (30 s staleness limit).
//   (a) in-memory database   (b) disk-bound database
//
// Expected shape (§8.1): hit rate grows with cache size — roughly linearly until the working
// set fits, then slowly — reaching high values; the disk-bound configuration shows high hit
// rates even for small caches (few hot keys) while large, rarely-accessed data dominates
// misses.
//
// Extension (automatic management): a head-to-head of plain LRU vs the cost-aware policy on a
// skewed RUBiS-like mix of cacheable functions at equal cache bytes. The interesting metric is
// not hit rate but TOTAL RECOMPUTE COST — the fill time the database pays for misses — which
// is what benefit-per-byte eviction and the admission watermark actually optimize. The
// cost-aware policy must recompute >= 10% less total fill cost than LRU.
#include "bench/bench_common.h"

#include "src/util/rng.h"
#include "src/util/serde.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

void RunConfig(const char* label, bool disk_bound, const std::vector<double>& fractions) {
  const double scale = EnvScale();
  sim::SimConfig base = PaperConfig(disk_bound, scale);
  base.mode = ClientMode::kConsistent;
  const size_t db_bytes = ProbeDatasetBytes(base);
  std::printf("\n--- %s (database ~%.1f MB) ---\n", label,
              static_cast<double>(db_bytes) / (1 << 20));
  std::printf("%-26s %12s %12s %14s\n", "cache size (frac of DB)", "hit rate", "lookups",
              "bytes used");
  for (double f : fractions) {
    sim::SimConfig cfg = base;
    cfg.cache_bytes_per_node =
        std::max<size_t>(static_cast<size_t>(static_cast<double>(db_bytes) * f /
                                             static_cast<double>(cfg.num_cache_nodes)),
                         64 * 1024);
    sim::ClusterSim sim(cfg);
    auto r = sim.Run();
    if (!r.ok()) {
      std::printf("%25.0f%%  FAILED: %s\n", f * 100, r.status().ToString().c_str());
      continue;
    }
    std::printf("%25.0f%% %11.1f%% %12llu %11.2f MB\n", f * 100,
                r.value().cache.hit_rate() * 100,
                static_cast<unsigned long long>(r.value().cache.lookups),
                static_cast<double>(r.value().cache_bytes_used) / (1 << 20));
    std::fflush(stdout);
  }
}

// One class of cacheable function in the skewed workload: RUBiS-shaped heterogeneity, where
// a page-of-items render is cheap per byte while a search/aggregation is expensive per byte.
struct FnClass {
  const char* name;
  size_t value_bytes;
  uint64_t fill_cost_us;
  int64_t keys;
  double weight;
};

struct PolicyRun {
  double hit_rate = 0;
  double recompute_s = 0;  // total fill cost paid for misses, in seconds of compute
  uint64_t admission_rejects = 0;
  uint64_t evictions_stale = 0;
  uint64_t evictions_cost = 0;
  uint64_t evictions_lru = 0;
};

PolicyRun RunPolicy(EvictionPolicy policy, const std::vector<FnClass>& classes,
                    size_t capacity_bytes, int steps, uint64_t seed) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options;
  options.capacity_bytes = capacity_bytes;
  options.policy = policy;
  CacheServer server("policy-bench", &clock, options);

  std::vector<double> weights;
  for (const FnClass& c : classes) {
    weights.push_back(c.weight);
  }
  WeightedChoice choice(weights);
  Rng rng(seed);

  uint64_t lookups = 0, hits = 0, total_cost_us = 0;
  for (int step = 0; step < steps; ++step) {
    const FnClass& c = classes[choice.Pick(rng)];
    // Zipf popularity within the class: the same few keys dominate, with a long cold tail.
    const int64_t idx = rng.Zipf(c.keys, 0.9);
    Writer w;
    w.PutString(c.name);
    w.PutU64(static_cast<uint64_t>(idx));
    const std::string key = w.Take();

    LookupRequest req;
    req.key = key;
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
    ++lookups;
    if (server.Lookup(req).hit) {
      ++hits;
      continue;
    }
    total_cost_us += c.fill_cost_us;  // the miss recomputes whether or not the store succeeds
    InsertRequest ins;
    ins.key = key;
    ins.value = std::string(c.value_bytes, 'v');
    ins.interval = {1, kTimestampInfinity};
    ins.computed_at = 1;
    ins.fill_cost_us = c.fill_cost_us;
    server.Insert(ins);
  }

  PolicyRun out;
  const CacheStats stats = server.stats();
  out.hit_rate = lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  out.recompute_s = static_cast<double>(total_cost_us) / 1e6;
  out.admission_rejects = stats.admission_rejects;
  out.evictions_stale = stats.evictions_capacity_stale;
  out.evictions_cost = stats.evictions_cost;
  out.evictions_lru = stats.evictions_lru;
  if (policy == EvictionPolicy::kCostAware) {
    std::printf("\n  per-function profiles (cost-aware run):\n");
    std::printf("  %-12s %10s %10s %10s %12s %14s\n", "function", "fills", "hits", "rejects",
                "fill cost s", "EWMA benefit/B");
    for (const FunctionStatsEntry& e : server.FunctionStats()) {
      std::printf("  %-12s %10llu %10llu %10llu %12.2f %14.3f\n", e.function.c_str(),
                  static_cast<unsigned long long>(e.fills),
                  static_cast<unsigned long long>(e.hits),
                  static_cast<unsigned long long>(e.admission_rejects),
                  static_cast<double>(e.fill_cost_total_us) / 1e6, e.ewma_benefit_per_byte);
    }
  }
  return out;
}

void RunPolicyComparison() {
  // Skewed RUBiS-like function mix: hot item/user fetches (cheap, small), search/aggregation
  // pages (expensive, mid-size), and a long tail of large rarely-reread renders whose bytes
  // crowd everything else out of a byte-LRU.
  const std::vector<FnClass> classes = {
      {"view_item", 1024, 80, 64, 0.50},
      {"search_cat", 2048, 4000, 256, 0.30},
      {"browse_page", 16384, 120, 2048, 0.20},
  };
  constexpr size_t kCapacity = 1 << 20;  // 1 MB: forces continuous replacement decisions
  constexpr int kSteps = 60000;
  constexpr uint64_t kSeed = 42;

  std::printf("\n--- LRU vs cost-aware at equal cache bytes (%zu KB, skewed mix) ---\n",
              kCapacity / 1024);
  PolicyRun lru = RunPolicy(EvictionPolicy::kLru, classes, kCapacity, kSteps, kSeed);
  PolicyRun cost = RunPolicy(EvictionPolicy::kCostAware, classes, kCapacity, kSteps, kSeed);

  std::printf("\n  %-12s %10s %16s %12s %22s\n", "policy", "hit rate", "recompute cost",
              "rejects", "evictions (stale/cost/lru)");
  std::printf("  %-12s %9.1f%% %14.2f s %12llu %12llu/%llu/%llu\n", "LRU",
              lru.hit_rate * 100, lru.recompute_s,
              static_cast<unsigned long long>(lru.admission_rejects),
              static_cast<unsigned long long>(lru.evictions_stale),
              static_cast<unsigned long long>(lru.evictions_cost),
              static_cast<unsigned long long>(lru.evictions_lru));
  std::printf("  %-12s %9.1f%% %14.2f s %12llu %12llu/%llu/%llu\n", "cost-aware",
              cost.hit_rate * 100, cost.recompute_s,
              static_cast<unsigned long long>(cost.admission_rejects),
              static_cast<unsigned long long>(cost.evictions_stale),
              static_cast<unsigned long long>(cost.evictions_cost),
              static_cast<unsigned long long>(cost.evictions_lru));
  const double savings = lru.recompute_s <= 0
                             ? 0.0
                             : (lru.recompute_s - cost.recompute_s) / lru.recompute_s;
  std::printf("\n  cost-aware recomputes %.1f%% less total fill cost than LRU  [%s >= 10%%]\n",
              savings * 100, savings >= 0.10 ? "OK" : "FAIL");
}

}  // namespace

int main() {
  PrintHeader("fig6_hitrate: cache hit rate vs cache size", "Figure 6(a), 6(b)");
  RunConfig("Figure 6(a): in-memory database", false, {0.075, 0.30, 0.60, 0.90, 1.20});
  RunConfig("Figure 6(b): disk-bound database", true, {0.17, 0.50, 0.83, 1.17, 1.50});
  RunPolicyComparison();
  return 0;
}
