// Ablation for the §5.2 executor design choice: evaluate predicates BEFORE visibility checks so
// that dead versions of non-matching tuples never enter the invalidity mask.
//
// With the stock ordering (cheap visibility check first), every dead version a scan encounters
// widens the mask, shrinking validity intervals and therefore cache usefulness: entries come
// out with narrower intervals and transactions find fewer consistent versions. The paper keeps
// the reordering because "it incurs little overhead for simple predicates".
//
// Expected shape: predicate-first yields equal-or-better hit rate and throughput; both stay
// correct (the validity property tests run under both orderings).
#include "bench/bench_common.h"
#include "tests/test_support.h"

using namespace txcache;
using namespace txcache::bench;

namespace {

// Engine-level mask quality: a table where non-matching rows churn heavily. Scan queries with a
// residual predicate see identical results under both orderings, but the stock ordering's
// invalidity mask swallows every dead version it encounters, collapsing validity intervals.
void EngineLevelSection() {
  using namespace txcache::testing;
  std::printf("\n--- engine level: scan with residual predicate over churning table ---\n");
  std::printf("%-28s %22s %18s\n", "executor ordering", "avg validity width", "still-valid");
  for (bool predicate_first : {true, false}) {
    ManualClock clock;
    Database::Options options;
    options.predicate_before_visibility = predicate_first;
    Database db(&clock, options);
    CreateAccountsTable(&db);
    // 50 stable rows that match the query; 50 churning rows that never do.
    for (int64_t i = 0; i < 50; ++i) {
      InsertAccount(&db, i, "stable", 100 + i);
      InsertAccount(&db, 100 + i, "churn", 0);
    }
    double total_width = 0;
    int still_valid = 0;
    constexpr int kRounds = 40;
    for (int round = 0; round < kRounds; ++round) {
      UpdateBalance(&db, 100 + round % 50, round);  // churn a non-matching row
      auto txn = db.BeginReadOnly();
      auto r = db.Execute(txn.value(), Query::From(AccessPath::SeqScan(kAccounts))
                                           .Where(PEq(AccountsCol::kOwner, Value("stable"))));
      db.Commit(txn.value());
      const Interval v = r.value().validity;
      const Timestamp upper = v.unbounded() ? db.LatestCommitTs() + 1 : v.upper;
      total_width += static_cast<double>(upper - v.lower);
      still_valid += v.unbounded() ? 1 : 0;
    }
    std::printf("%-28s %19.1f ts %17.0f%%\n",
                predicate_first ? "predicate-first (paper)" : "visibility-first (stock)",
                total_width / kRounds, 100.0 * still_valid / kRounds);
  }
  std::printf("(wider intervals => cached entries usable by more transactions)\n");
}

}  // namespace

int main() {
  PrintHeader("ablation_mask_order: predicate-before-visibility (paper) vs stock ordering",
              "§5.2 design choice");
  std::printf("%-28s %12s %12s %16s %18s\n", "executor ordering", "req/s", "hit rate",
              "cons. misses", "inserts skipped");
  for (bool predicate_first : {true, false}) {
    sim::SimConfig cfg = PaperConfig(/*disk_bound=*/false, EnvScale());
    cfg.db_options.predicate_before_visibility = predicate_first;
    cfg.mode = ClientMode::kConsistent;
    cfg.cache_bytes_per_node = 8 << 20;
    sim::ClusterSim sim(cfg);
    auto result = sim.Run();
    if (!result.ok()) {
      std::printf("%-28s FAILED: %s\n", predicate_first ? "predicate-first" : "stock",
                  result.status().ToString().c_str());
      continue;
    }
    const sim::SimResult& r = result.value();
    std::printf("%-28s %12.0f %11.1f%% %16llu %18llu\n",
                predicate_first ? "predicate-first (paper)" : "visibility-first (stock)",
                r.throughput_rps, r.cache.hit_rate() * 100,
                static_cast<unsigned long long>(r.cache.miss_consistency),
                static_cast<unsigned long long>(r.clients.inserts_skipped));
  }
  std::printf("(RUBiS is almost entirely index-equality lookups, where the ordering cannot\n"
              " matter — consistent with the paper's note that wildcard-prone scans are rare.)\n");
  EngineLevelSection();
  return 0;
}
