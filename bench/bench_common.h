// Shared helpers for the figure-reproduction benchmarks.
//
// Every binary prints the same rows/series as the corresponding paper figure or table. Scale
// knobs (dataset size, measurement window) default to values that finish in seconds; set
// TXCACHE_BENCH_SCALE (e.g. 1.0 for paper-sized datasets) and TXCACHE_BENCH_MEASURE_S for
// longer, higher-fidelity runs.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cluster_sim.h"

namespace txcache::bench {

inline double EnvScale(double fallback = 0.02) {
  const char* s = std::getenv("TXCACHE_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : fallback;
}

inline WallClock EnvMeasure(double fallback_s = 8.0) {
  const char* s = std::getenv("TXCACHE_BENCH_MEASURE_S");
  return Seconds(s != nullptr ? std::atof(s) : fallback_s);
}

// Operation count for the micro benchmarks that iterate a fixed op budget rather than a
// simulated time window (micro_lookup_hotpath, micro_large_values). check.sh --bench-smoke
// sets it tiny so every binary still runs end to end in CI time.
inline uint64_t EnvOps(uint64_t fallback) {
  const char* s = std::getenv("TXCACHE_BENCH_OPS");
  return s != nullptr ? static_cast<uint64_t>(std::atoll(s)) : fallback;
}

// Global time-scale factor: the paper's 7 s think time and 1-120 s staleness axes are scaled
// down together (default 10x) so short simulated windows exercise the same ratios of staleness
// to update rate. All printed axis labels are in PAPER seconds; the scaled value actually runs.
inline double EnvTimeScale(double fallback = 0.1) {
  const char* s = std::getenv("TXCACHE_BENCH_TIMESCALE");
  return s != nullptr ? std::atof(s) : fallback;
}

inline WallClock ScaledStaleness(double paper_seconds) {
  return Seconds(paper_seconds * EnvTimeScale());
}

inline const char* ModeName(ClientMode mode) {
  switch (mode) {
    case ClientMode::kConsistent:
      return "TxCache";
    case ClientMode::kNoConsistency:
      return "No consistency";
    case ClientMode::kNoCache:
      return "No caching";
  }
  return "?";
}

// Baseline simulation configuration mirroring the paper's testbed (§8): seven web servers, two
// dedicated cache nodes, one database, 30 s staleness limit, bidding mix.
inline sim::SimConfig PaperConfig(bool disk_bound, double scale) {
  sim::SimConfig cfg;
  cfg.disk_bound = disk_bound;
  cfg.scale = disk_bound ? rubis::RubisScale::DiskBound(scale)
                         : rubis::RubisScale::InMemory(scale);
  cfg.num_web_servers = 7;
  cfg.num_cache_nodes = 2;
  // Think time is scaled down (default 10x) so saturating client populations stay small; the
  // offered load per client rises by the same factor, preserving the closed-loop shape.
  cfg.think_time_mean = Seconds(7.0 * EnvTimeScale());
  cfg.staleness = Seconds(30);  // paper default; figure binaries override per experiment
  cfg.warmup = Seconds(8);
  cfg.measure = EnvMeasure();
  cfg.num_clients = disk_bound ? 400 : 1600;
  return cfg;
}

// Measures the dataset size of a configuration (for expressing cache sizes as fractions of the
// database, as the paper's absolute MB/GB axes do).
inline size_t ProbeDatasetBytes(const sim::SimConfig& base) {
  sim::SimConfig cfg = base;
  cfg.num_clients = 1;
  cfg.warmup = Seconds(0);
  cfg.measure = Millis(1);
  sim::ClusterSim sim(cfg);
  auto r = sim.Run();
  return r.ok() ? r.value().db_bytes : 0;
}

// Pass/fail gates can be disabled (TXCACHE_BENCH_GATE=0) for smoke runs — scripts/check.sh
// --bench-smoke only verifies that every benchmark still builds and runs end to end; a 0.2 s
// run is not expected to clear a throughput bar.
inline bool GateEnabled() {
  const char* s = std::getenv("TXCACHE_BENCH_GATE");
  return s == nullptr || std::atoi(s) != 0;
}

// Machine-readable benchmark results: one flat JSON object per file, written as
// BENCH_<name>.json so the perf trajectory is diffable across PRs.
//
//   BenchJson out("lookup_hotpath");
//   out.Add("single_shard_zero_copy_mops", 3.2);
//   out.Write();   // -> BENCH_lookup_hotpath.json (in $TXCACHE_BENCH_JSON_DIR or the CWD)
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) { metrics_.emplace_back(key, value); }

  bool Write() const {
    const char* dir = std::getenv("TXCACHE_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : metrics_) {
      std::fprintf(f, ",\n  \"%s\": %.6g", key.c_str(), value);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale=%.3f (TXCACHE_BENCH_SCALE), measure=%.1fs (TXCACHE_BENCH_MEASURE_S)\n",
              EnvScale(), ToSeconds(EnvMeasure()));
  std::printf("================================================================\n");
}

}  // namespace txcache::bench

#endif  // BENCH_BENCH_COMMON_H_
