// micro_net_rpc: wire-protocol RPC cost and the pipelining win.
//
// Measures the socket data plane in isolation (one CacheServer behind an epoll NetServer on
// loopback, no simulator):
//
//   1. Hit latency over the wire — p50/p99 of single LOOKUP round-trips on one keep-alive
//      connection.
//   2. Pipelining — throughput of batch-16 lookups issued as 16 sequential round-trips vs
//      one pipelined CallPipelined exchange. GATE: pipelined must be >= 3x sequential (the
//      tentpole claim: K small requests ride one round-trip, not K).
//   3. Connection scaling — lookup throughput with 1 vs 128 concurrent client connections
//      against the shared epoll workers.
//
// Wall-clock timed (real sockets, real scheduler), so numbers vary with the host; the gate
// compares two modes of the SAME run, which is robust. TXCACHE_BENCH_OPS scales iteration
// counts; TXCACHE_BENCH_GATE=0 turns the hard gate into a report (check.sh --bench-smoke).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cache_server.h"
#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "src/net/wire.h"
#include "src/util/clock.h"
#include "src/util/hash.h"

namespace txcache {
namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::string KeyFor(uint64_t i) { return "net:key:" + std::to_string(i % 512); }

LookupRequest ProbeFor(uint64_t i) {
  LookupRequest req;
  req.key = KeyFor(i);
  req.key_hash = Fnv1a(req.key);
  req.bounds_lo = 1;
  req.bounds_hi = kTimestampInfinity;
  req.fresh_lo = 1;
  return req;
}

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
};

LatencyStats Percentiles(std::vector<double>& samples_us) {
  LatencyStats out;
  if (samples_us.empty()) {
    return out;
  }
  std::sort(samples_us.begin(), samples_us.end());
  out.p50_us = samples_us[samples_us.size() / 2];
  out.p99_us = samples_us[std::min(samples_us.size() - 1,
                                   (samples_us.size() * 99) / 100)];
  return out;
}

}  // namespace

int Run() {
  bench::PrintHeader("micro_net_rpc: socket RPC latency, pipelining, connection scaling",
                     "transport layer for the paper's cluster protocol (LOOKUP/PUT, §4)");

  const uint64_t ops = bench::EnvOps(20000);
  const int kBatch = 16;

  SystemClock clock;
  CacheServer::Options options;
  options.capacity_bytes = 64 << 20;
  CacheServer server("bench-node", &clock, options);

  net::NetServerOptions server_options;
  server_options.num_workers = 4;
  net::NetServer net_server(&server, server_options);
  if (!net_server.Start().ok()) {
    std::fprintf(stderr, "FAIL: could not bind loopback NetServer\n");
    return 1;
  }

  // Seed the working set through the wire (also verifies INSERT end to end).
  net::NetClientOptions copts;
  copts.port = net_server.port();
  {
    net::NetClient seeder(copts);
    for (uint64_t i = 0; i < 512; ++i) {
      InsertRequest ins;
      ins.key = KeyFor(i);
      ins.key_hash = Fnv1a(ins.key);
      ins.value = std::string(256, 'v');
      ins.interval = {1, kTimestampInfinity};
      ins.computed_at = 1;
      ins.fill_cost_us = 100;
      net::FrameType type;
      std::string payload;
      if (!seeder.Call(net::FrameType::kInsertReq, net::EncodeInsertRequest(ins), &type,
                       &payload) ||
          type != net::FrameType::kInsertResp) {
        std::fprintf(stderr, "FAIL: seed insert %llu\n", static_cast<unsigned long long>(i));
        return 1;
      }
    }
  }

  // --- 1. single-request hit latency (one keep-alive connection) ---
  net::NetClient client(copts);
  std::vector<double> lat_us;
  lat_us.reserve(ops);
  uint64_t hits = 0;
  const auto lat_start = SteadyClock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    net::FrameType type;
    std::string payload;
    const auto t0 = SteadyClock::now();
    if (!client.Call(net::FrameType::kLookupReq, net::EncodeLookupRequest(ProbeFor(i)), &type,
                     &payload)) {
      std::fprintf(stderr, "FAIL: lookup rpc failed\n");
      return 1;
    }
    lat_us.push_back(std::chrono::duration<double, std::micro>(SteadyClock::now() - t0).count());
    LookupResponse resp;
    if (type == net::FrameType::kLookupResp && net::DecodeLookupResponse(payload, &resp) &&
        resp.hit) {
      ++hits;
    }
  }
  const double single_conn_s = SecondsSince(lat_start);
  const double single_conn_mops = static_cast<double>(ops) / single_conn_s / 1e6;
  LatencyStats lat = Percentiles(lat_us);
  std::printf("\nsingle connection: %llu lookups, hit_rate=%.3f\n",
              static_cast<unsigned long long>(ops),
              static_cast<double>(hits) / static_cast<double>(ops));
  std::printf("  hit latency p50=%.1fus p99=%.1fus, throughput=%.3f Mops/s\n", lat.p50_us,
              lat.p99_us, single_conn_mops);

  // --- 2. pipelining: batch-16 sequential vs pipelined on the same connection ---
  const uint64_t batches = std::max<uint64_t>(ops / kBatch, 1);
  const auto seq_start = SteadyClock::now();
  for (uint64_t b = 0; b < batches; ++b) {
    for (int j = 0; j < kBatch; ++j) {
      net::FrameType type;
      std::string payload;
      if (!client.Call(net::FrameType::kLookupReq,
                       net::EncodeLookupRequest(ProbeFor(b * kBatch + j)), &type, &payload)) {
        std::fprintf(stderr, "FAIL: sequential batch rpc\n");
        return 1;
      }
    }
  }
  const double seq_s = SecondsSince(seq_start);

  const auto pipe_start = SteadyClock::now();
  for (uint64_t b = 0; b < batches; ++b) {
    std::vector<std::pair<net::FrameType, std::string>> requests;
    requests.reserve(kBatch);
    for (int j = 0; j < kBatch; ++j) {
      requests.emplace_back(net::FrameType::kLookupReq,
                            net::EncodeLookupRequest(ProbeFor(b * kBatch + j)));
    }
    std::vector<net::FrameType> types;
    std::vector<std::string> payloads;
    if (!client.CallPipelined(requests, &types, &payloads) || types.size() != kBatch) {
      std::fprintf(stderr, "FAIL: pipelined batch rpc\n");
      return 1;
    }
  }
  const double pipe_s = SecondsSince(pipe_start);
  const double pipeline_speedup = pipe_s > 0 ? seq_s / pipe_s : 0;
  std::printf("\nbatch-%d x %llu: sequential=%.3fs pipelined=%.3fs speedup=%.2fx\n", kBatch,
              static_cast<unsigned long long>(batches), seq_s, pipe_s, pipeline_speedup);

  // --- 3. connection scaling: 1 vs 128 concurrent connections ---
  auto run_concurrent = [&](int conns, uint64_t ops_per_conn) {
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(conns);
    const auto start = SteadyClock::now();
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        // One NetClient per thread = one dedicated connection (pool of size 1 per client).
        net::NetClient mine(copts);
        for (uint64_t i = 0; i < ops_per_conn; ++i) {
          net::FrameType type;
          std::string payload;
          if (!mine.Call(net::FrameType::kLookupReq,
                         net::EncodeLookupRequest(ProbeFor(i * 131 + c)), &type, &payload)) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    const double secs = SecondsSince(start);
    if (failures.load() != 0) {
      return -1.0;
    }
    return static_cast<double>(conns) * static_cast<double>(ops_per_conn) / secs / 1e6;
  };

  const uint64_t scale_ops = std::max<uint64_t>(ops / 64, 16);
  const double conns_1_mops = run_concurrent(1, scale_ops * 8);
  const double conns_128_mops = run_concurrent(128, scale_ops);
  std::printf("\nconnection scaling: 1 conn=%.3f Mops/s, 128 conns=%.3f Mops/s (%.1fx)\n",
              conns_1_mops, conns_128_mops,
              conns_1_mops > 0 ? conns_128_mops / conns_1_mops : 0);
  std::printf("server: %llu connections accepted, %llu frames served, %llu protocol errors\n",
              static_cast<unsigned long long>(net_server.connections_accepted()),
              static_cast<unsigned long long>(net_server.frames_served()),
              static_cast<unsigned long long>(net_server.protocol_errors()));

  bench::BenchJson json("net_rpc");
  json.Add("p50_us", lat.p50_us);
  json.Add("p99_us", lat.p99_us);
  json.Add("single_conn_mops", single_conn_mops);
  json.Add("pipeline_speedup", pipeline_speedup);
  json.Add("conns_1_mops", conns_1_mops);
  json.Add("conns_128_mops", conns_128_mops);
  json.Write();

  net_server.Stop();

  if (conns_1_mops < 0 || conns_128_mops < 0) {
    std::fprintf(stderr, "FAIL: rpc failures during connection-scaling run\n");
    return 1;
  }
  if (bench::GateEnabled() && pipeline_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: pipelined batch-16 speedup %.2fx < 3x over sequential round-trips\n",
                 pipeline_speedup);
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}

}  // namespace txcache

int main() { return txcache::Run(); }
