// Optimistic read-write transactions through the cache, on the RUBiS bid/comment write mix:
// abort rate vs committed throughput as the write share of the client population rises, with
// exact lost-update oracles.
//
// Workload: kThreads concurrent clients over one shared database + cache node. Reader
// threads render item/bid-history/user pages through MAKE-CACHEABLE at staleness 0 (every
// invalidation forces a real recompute). Writer threads run StoreBid (80%) / StoreComment
// (20%) as optimistic transactions (RunRwTransaction): advisory write intents on the keys
// they invalidate, snapshot reads recorded for commit-time validation, abort-and-retry on
// conflict. The write mix is the writer share of the population (1 of 4 threads = 25%), so
// the committed-throughput comparison measures what matters: write transactions flowing
// through the cache must leave the lock-free read fast path intact.
//
// Oracles (exact, not statistical): StoreBid increments its item's nb_of_bids by one and
// inserts one bid row inside the same validated transaction, so a stale nb_of_bids read
// surviving commit validation is a lost update — after the run, Δ sum(nb_of_bids) must equal
// Δ count(bids) must equal committed StoreBids. StoreComment's rating adjustment gives the
// analogous check: Δ sum(users.rating) == Δ sum over comments of (rating - 3).
//
// Gates: every oracle holds at every mix (no_stale_reads), and committed throughput at the
// 25% write mix stays >= 50% of the read-only baseline.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/core/txcache_client.h"
#include "src/pincushion/pincushion.h"
#include "src/rubis/app.h"
#include "src/rubis/data.h"
#include "src/rubis/schema.h"

using namespace txcache;

namespace {

constexpr size_t kThreads = 4;

struct MixResult {
  double committed_per_s = 0;  // committed transactions (reads + writes) per wall second
  double abort_rate = 0;       // aborted optimistic rounds / all finished optimistic rounds
  uint64_t committed_bids = 0;
  uint64_t committed_comments = 0;
  uint64_t rw_retries = 0;
  bool serializable = true;
};

// Reads the whole table at the latest snapshot and folds one int column.
int64_t SumColumn(Database* db, const char* table, uint32_t col) {
  auto txn = db->BeginReadOnly();
  if (!txn.ok()) {
    return 0;
  }
  auto r = db->Execute(txn.value(), Query::From(AccessPath::SeqScan(table)));
  db->Commit(txn.value());
  int64_t sum = 0;
  if (r.ok()) {
    for (const Row& row : r.value().rows) {
      sum += row[col].AsInt();
    }
  }
  return sum;
}

int64_t CountTable(Database* db, const char* table) {
  auto txn = db->BeginReadOnly();
  if (!txn.ok()) {
    return 0;
  }
  auto r = db->Execute(txn.value(),
                       Query::From(AccessPath::SeqScan(table)).Agg(AggKind::kCount));
  db->Commit(txn.value());
  return r.ok() ? r.value().rows[0][0].AsInt() : 0;
}

// Σ (rating - 3) over every comment row: the exact total adjustment the comments applied.
int64_t CommentAdjustment(Database* db) {
  auto txn = db->BeginReadOnly();
  if (!txn.ok()) {
    return 0;
  }
  auto r = db->Execute(txn.value(), Query::From(AccessPath::SeqScan(rubis::kComments)));
  db->Commit(txn.value());
  int64_t sum = 0;
  if (r.ok()) {
    for (const Row& row : r.value().rows) {
      sum += row[rubis::CommentsCol::kRating].AsInt() - 3;
    }
  }
  return sum;
}

MixResult RunMix(size_t writer_threads, double duration_s) {
  ManualClock clock;
  Database db(&clock);
  InvalidationBus bus;
  CacheServer::Options cache_options;
  cache_options.num_shards = 8;
  CacheServer cache("node", &clock, cache_options);
  bus.Subscribe(&cache);
  CacheCluster cluster;
  cluster.AddNode(&cache);
  Pincushion pincushion(&db, &clock);

  rubis::RubisScale scale;
  scale.users = 100;
  scale.active_items = 200;
  scale.old_items = 20;
  scale.max_bids_per_item = 3;
  scale.description_bytes = 64;
  auto dataset_or = rubis::LoadRubis(&db, scale, &clock, /*seed=*/42);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "LoadRubis: %s\n", dataset_or.status().ToString().c_str());
    return {};
  }
  std::unique_ptr<rubis::RubisDataset> dataset = std::move(dataset_or.value());
  db.set_invalidation_bus(&bus);

  const int64_t bids_before = CountTable(&db, rubis::kBids);
  const int64_t nb_before = SumColumn(&db, rubis::kItems, rubis::ItemsCol::kNbOfBids) +
                            SumColumn(&db, rubis::kOldItems, rubis::ItemsCol::kNbOfBids);
  const int64_t rating_before = SumColumn(&db, rubis::kUsers, rubis::UsersCol::kRating);
  const int64_t adjust_before = CommentAdjustment(&db);

  std::atomic<uint64_t> committed_reads{0}, committed_bids{0}, committed_comments{0};
  std::atomic<uint64_t> rw_commits{0}, rw_aborts{0}, rw_retries{0};
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(duration_s);

  auto writer = [&](size_t t) {
    TxCacheClient::Options options;
    options.rw_backoff_sleep = [](WallClock) {};  // retry immediately: abort cost in rounds
    options.rw_backoff_seed = 1000 + t;
    TxCacheClient client(&db, &pincushion, &cluster, &clock, options);
    rubis::RubisApp app(&client, dataset.get(), &clock);
    Rng rng(0xb1d + t);
    const int64_t user = dataset->PickUser(rng);
    while (std::chrono::steady_clock::now() < deadline) {
      if (rng.UniformReal(0, 1) < 0.8) {
        auto ts = client.RunRwTransaction([&]() -> Status {
          return app.StoreBid(user, dataset->PickActiveItem(rng),
                              rng.UniformReal(1.0, 300.0));
        });
        if (ts.ok()) {
          committed_bids.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        auto ts = client.RunRwTransaction([&]() -> Status {
          return app.StoreComment(user, dataset->PickUser(rng), dataset->PickAnyItem(rng),
                                  rng.Uniform(1, 5), "great transaction");
        });
        if (ts.ok()) {
          committed_comments.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    const ClientStats stats = client.stats();
    rw_commits.fetch_add(stats.rw_commits, std::memory_order_relaxed);
    rw_aborts.fetch_add(stats.rw_aborts, std::memory_order_relaxed);
    rw_retries.fetch_add(stats.rw_retries, std::memory_order_relaxed);
  };

  auto reader = [&](size_t t) {
    TxCacheClient client(&db, &pincushion, &cluster, &clock);
    rubis::RubisApp app(&client, dataset.get(), &clock);
    Rng rng(0xead + t);
    uint64_t local = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (!client.BeginRO(/*staleness=*/0).ok()) {
        continue;
      }
      const double roll = rng.UniformReal(0, 1);
      if (roll < 0.7) {
        app.view_item_page(dataset->PickActiveItem(rng));
      } else if (roll < 0.9) {
        app.bid_history_page(dataset->PickActiveItem(rng));
      } else {
        app.view_user_page(dataset->PickUser(rng));
      }
      if (client.Commit().ok()) {
        ++local;
      }
    }
    committed_reads.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    if (t < writer_threads) {
      threads.emplace_back(writer, t);
    } else {
      threads.emplace_back(reader, t);
    }
  }
  for (auto& th : threads) {
    th.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  MixResult result;
  result.committed_bids = committed_bids.load();
  result.committed_comments = committed_comments.load();
  result.rw_retries = rw_retries.load();
  const uint64_t rounds = rw_commits.load() + rw_aborts.load();
  result.abort_rate =
      rounds == 0 ? 0.0 : static_cast<double>(rw_aborts.load()) / static_cast<double>(rounds);
  result.committed_per_s =
      static_cast<double>(committed_reads.load() + result.committed_bids +
                          result.committed_comments) /
      std::max(elapsed_s, 1e-9);

  // --- exact serializability oracles on the final database state ---
  const int64_t bid_rows = CountTable(&db, rubis::kBids) - bids_before;
  const int64_t nb_delta = SumColumn(&db, rubis::kItems, rubis::ItemsCol::kNbOfBids) +
                           SumColumn(&db, rubis::kOldItems, rubis::ItemsCol::kNbOfBids) -
                           nb_before;
  const int64_t rating_delta =
      SumColumn(&db, rubis::kUsers, rubis::UsersCol::kRating) - rating_before;
  const int64_t adjust_delta = CommentAdjustment(&db) - adjust_before;
  const bool bids_ok = bid_rows == static_cast<int64_t>(result.committed_bids) &&
                       nb_delta == static_cast<int64_t>(result.committed_bids);
  const bool comments_ok = rating_delta == adjust_delta;
  result.serializable = bids_ok && comments_ok;
  if (!bids_ok) {
    std::fprintf(stderr,
                 "ORACLE: committed bids %llu, bid rows %+lld, nb_of_bids %+lld (lost update)\n",
                 static_cast<unsigned long long>(result.committed_bids),
                 static_cast<long long>(bid_rows), static_cast<long long>(nb_delta));
  }
  if (!comments_ok) {
    std::fprintf(stderr, "ORACLE: rating delta %+lld != comment adjustment %+lld\n",
                 static_cast<long long>(rating_delta), static_cast<long long>(adjust_delta));
  }
  // No intent may outlive its transaction on any path.
  const uint64_t leaked = cache.ClearIntents();
  if (leaked != 0) {
    std::fprintf(stderr, "ORACLE: %llu intents leaked\n",
                 static_cast<unsigned long long>(leaked));
    result.serializable = false;
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("micro_write_tx: optimistic RUBiS bid/comment mix through the cache",
                     "whole-system serializability (commit-time read validation)");
  // One quarter of the default 8 s window per mix point; bench-smoke shrinks it via
  // TXCACHE_BENCH_MEASURE_S.
  const double duration_s = std::max(0.04, ToSeconds(bench::EnvMeasure()) / 8.0);

  std::printf("\n%8s %16s %12s %10s %10s %10s %8s\n", "writers", "committed/s", "abort rate",
              "bids", "comments", "retries", "oracle");
  MixResult baseline, mix25;
  double max_abort_rate = 0;
  bool all_serializable = true;
  for (size_t writers = 0; writers < kThreads; ++writers) {
    MixResult r = RunMix(writers, duration_s);
    max_abort_rate = std::max(max_abort_rate, r.abort_rate);
    std::printf("%5zu/%zu %16.0f %11.1f%% %10llu %10llu %10llu %8s\n", writers, kThreads,
                r.committed_per_s, r.abort_rate * 100,
                static_cast<unsigned long long>(r.committed_bids),
                static_cast<unsigned long long>(r.committed_comments),
                static_cast<unsigned long long>(r.rw_retries),
                r.serializable ? "PASS" : "FAIL");
    all_serializable = all_serializable && r.serializable;
    if (writers == 0) {
      baseline = r;
    }
    if (writers == 1) {
      mix25 = r;
    }
  }

  const double retention =
      baseline.committed_per_s > 0 ? mix25.committed_per_s / baseline.committed_per_s : 0.0;
  const bool throughput_ok = retention >= 0.5;

  bench::BenchJson json("write_tx");
  json.Add("read_only_throughput", baseline.committed_per_s);
  json.Add("commit_throughput", mix25.committed_per_s);
  json.Add("abort_rate", mix25.abort_rate);
  json.Add("abort_rate_max_mix", max_abort_rate);
  json.Add("throughput_retention_25pct_writes", retention);
  json.Add("committed_writes_25pct",
           static_cast<double>(mix25.committed_bids + mix25.committed_comments));
  json.Add("no_stale_reads", all_serializable ? 1.0 : 0.0);
  json.Write();

  std::printf("\nlost-update oracles at every mix: %s\n", all_serializable ? "PASS" : "FAIL");
  std::printf("25%%-write committed throughput: %.0f/s = %.0f%% of read-only baseline "
              "(target >= 50%%): %s\n",
              mix25.committed_per_s, retention * 100, throughput_ok ? "PASS" : "FAIL");
  return (all_serializable && throughput_ok) || !bench::GateEnabled() ? 0 : 1;
}
