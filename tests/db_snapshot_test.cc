// Pinned snapshots, time-travel reads (PIN / UNPIN / BEGIN SNAPSHOTID) and vacuum (paper §5.1).
#include <gtest/gtest.h>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class DbSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    CreateAccountsTable(db_.get());
  }

  int64_t BalanceAt(Timestamp snapshot, int64_t id) {
    auto txn = db_->BeginReadOnly(snapshot);
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    auto r = db_->Execute(txn.value(), AccountById(id));
    EXPECT_TRUE(r.ok());
    db_->Commit(txn.value());
    if (!r.ok() || r.value().rows.empty()) {
      return -1;
    }
    return r.value().rows[0][AccountsCol::kBalance].AsInt();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(DbSnapshotTest, PinReturnsLatestCommitTs) {
  Timestamp t = InsertAccount(db_.get(), 1, "a", 100);
  clock_.Set(Seconds(5));
  PinnedSnapshot pin = db_->Pin();
  EXPECT_EQ(pin.ts, t);
  EXPECT_EQ(pin.wallclock, Seconds(5));
  EXPECT_EQ(db_->pinned_snapshot_count(), 1u);
}

TEST_F(DbSnapshotTest, ReadsAtPinnedSnapshotSeeThePast) {
  InsertAccount(db_.get(), 1, "a", 100);
  PinnedSnapshot pin = db_->Pin();
  UpdateBalance(db_.get(), 1, 999);
  EXPECT_EQ(BalanceAt(pin.ts, 1), 100);
  EXPECT_EQ(BalanceAt(db_->LatestCommitTs(), 1), 999);
}

TEST_F(DbSnapshotTest, DeletedRowStillVisibleAtOldSnapshot) {
  InsertAccount(db_.get(), 1, "a", 100);
  PinnedSnapshot pin = db_->Pin();
  DeleteAccount(db_.get(), 1);
  EXPECT_EQ(BalanceAt(pin.ts, 1), 100);
  EXPECT_EQ(BalanceAt(db_->LatestCommitTs(), 1), -1);
}

TEST_F(DbSnapshotTest, RowInsertedLaterInvisibleAtOldSnapshot) {
  InsertAccount(db_.get(), 1, "a", 100);
  PinnedSnapshot pin = db_->Pin();
  InsertAccount(db_.get(), 2, "b", 50);
  EXPECT_EQ(BalanceAt(pin.ts, 2), -1);
}

TEST_F(DbSnapshotTest, UnpinnedPastSnapshotIsRejected) {
  InsertAccount(db_.get(), 1, "a", 100);
  Timestamp old_ts = db_->LatestCommitTs();
  UpdateBalance(db_.get(), 1, 200);
  // old_ts was never pinned and is no longer the latest: not retained.
  auto txn = db_->BeginReadOnly(old_ts);
  EXPECT_EQ(txn.status().code(), StatusCode::kNotFound);
}

TEST_F(DbSnapshotTest, FutureSnapshotRejected) {
  auto txn = db_->BeginReadOnly(Timestamp{1000});
  EXPECT_FALSE(txn.ok());
}

TEST_F(DbSnapshotTest, UnpinUnknownSnapshotFails) {
  EXPECT_EQ(db_->Unpin(Timestamp{5}).code(), StatusCode::kNotFound);
}

TEST_F(DbSnapshotTest, PinIsRefcounted) {
  InsertAccount(db_.get(), 1, "a", 100);
  PinnedSnapshot p1 = db_->Pin();
  PinnedSnapshot p2 = db_->Pin();
  EXPECT_EQ(p1.ts, p2.ts);
  EXPECT_EQ(db_->pinned_snapshot_count(), 1u);
  EXPECT_TRUE(db_->Unpin(p1.ts).ok());
  EXPECT_EQ(db_->pinned_snapshot_count(), 1u) << "still pinned once";
  EXPECT_TRUE(db_->Unpin(p1.ts).ok());
  EXPECT_EQ(db_->pinned_snapshot_count(), 0u);
}

TEST_F(DbSnapshotTest, VacuumReclaimsDeadVersions) {
  InsertAccount(db_.get(), 1, "a", 100);
  for (int i = 0; i < 5; ++i) {
    UpdateBalance(db_.get(), 1, 200 + i);
  }
  size_t reclaimed = db_->Vacuum();
  EXPECT_EQ(reclaimed, 5u) << "five superseded versions";
  // The live version must survive and still be readable.
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 204);
}

TEST_F(DbSnapshotTest, VacuumSparesVersionsVisibleToPins) {
  InsertAccount(db_.get(), 1, "a", 100);
  PinnedSnapshot pin = db_->Pin();
  UpdateBalance(db_.get(), 1, 200);
  EXPECT_EQ(db_->Vacuum(), 0u) << "old version still visible at the pin";
  EXPECT_EQ(BalanceAt(pin.ts, 1), 100);
  ASSERT_TRUE(db_->Unpin(pin.ts).ok());
  EXPECT_EQ(db_->Vacuum(), 1u) << "reclaimable once unpinned";
}

TEST_F(DbSnapshotTest, VacuumSparesVersionsVisibleToRunningTxns) {
  InsertAccount(db_.get(), 1, "a", 100);
  auto reader = db_->BeginReadOnly();
  ASSERT_TRUE(reader.ok());
  UpdateBalance(db_.get(), 1, 200);
  EXPECT_EQ(db_->Vacuum(), 0u);
  auto r = db_->Execute(reader.value(), AccountById(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][AccountsCol::kBalance].AsInt(), 100);
  db_->Commit(reader.value());
  EXPECT_EQ(db_->Vacuum(), 1u);
}

TEST_F(DbSnapshotTest, VacuumReclaimsAbortedInserts) {
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, kAccounts, Account(1, "ghost", 0)).ok());
  db_->Abort(txn);
  EXPECT_EQ(db_->Vacuum(), 1u);
  EXPECT_TRUE(ReadLatest(db_.get(), AccountById(1)).rows.empty());
}

TEST_F(DbSnapshotTest, VacuumedVersionsLeaveIndexes) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kOwner, Value("bob")}})
                  .ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  ASSERT_EQ(db_->Vacuum(), 1u);
  // The old index entry (owner=alice) must be gone; lookups see only the new row.
  QueryResult by_alice = ReadLatest(
      db_.get(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")})));
  EXPECT_TRUE(by_alice.rows.empty());
  QueryResult by_bob = ReadLatest(
      db_.get(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("bob")})));
  EXPECT_EQ(by_bob.rows.size(), 1u);
}

TEST_F(DbSnapshotTest, VacuumIsIdempotent) {
  InsertAccount(db_.get(), 1, "a", 100);
  UpdateBalance(db_.get(), 1, 200);
  EXPECT_EQ(db_->Vacuum(), 1u);
  EXPECT_EQ(db_->Vacuum(), 0u);
}

TEST_F(DbSnapshotTest, MultipleDistinctPinsRetainHistoryChain) {
  InsertAccount(db_.get(), 1, "a", 1);
  PinnedSnapshot p1 = db_->Pin();
  UpdateBalance(db_.get(), 1, 2);
  PinnedSnapshot p2 = db_->Pin();
  UpdateBalance(db_.get(), 1, 3);
  EXPECT_EQ(BalanceAt(p1.ts, 1), 1);
  EXPECT_EQ(BalanceAt(p2.ts, 1), 2);
  EXPECT_EQ(BalanceAt(db_->LatestCommitTs(), 1), 3);
  // Unpinning the older pin lets exactly its version go.
  ASSERT_TRUE(db_->Unpin(p1.ts).ok());
  EXPECT_EQ(db_->Vacuum(), 1u);
  EXPECT_EQ(BalanceAt(p2.ts, 1), 2) << "later pin unaffected";
  ASSERT_TRUE(db_->Unpin(p2.ts).ok());
}

TEST_F(DbSnapshotTest, SnapshotOfReportsTransactionSnapshot) {
  Timestamp t = InsertAccount(db_.get(), 1, "a", 1);
  auto ro = db_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  auto snap = db_->SnapshotOf(ro.value());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value(), t);
  db_->Commit(ro.value());
  EXPECT_FALSE(db_->SnapshotOf(ro.value()).ok());
}

}  // namespace
}  // namespace txcache
