// The MediaWiki-style port (§7.2): porting patterns, and the two MediaWiki bug classes the
// paper cites — now impossible by construction.
#include "src/wiki/wiki.h"

#include <gtest/gtest.h>

namespace txcache::wiki {
namespace {

class WikiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("node", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    ASSERT_TRUE(CreateWikiSchema(db_.get()).ok());
    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_);
    app_ = std::make_unique<WikiApp>(client_.get(), &clock_);

    ASSERT_TRUE(client_->BeginRW().ok());
    ASSERT_TRUE(app_->RegisterUser(1, "Alice").ok());
    ASSERT_TRUE(app_->RegisterUser(2, "Bob").ok());
    ASSERT_TRUE(app_->SetMessage("sidebar.main", "Main page").ok());
    ASSERT_TRUE(app_->SetMessage("sidebar.help", "Help").ok());
    ASSERT_TRUE(app_->SetMessage("footer.license", "CC BY-SA").ok());
    auto rev = app_->EditArticle(1, "TxCache", "A transactional cache.", "created");
    ASSERT_TRUE(rev.ok());
    ASSERT_TRUE(client_->Commit().ok());
  }

  // Runs one read-only transaction around `fn` with the given staleness.
  template <typename Fn>
  auto InRo(Fn&& fn, WallClock staleness = Seconds(30)) {
    EXPECT_TRUE(client_->BeginRO(staleness).ok());
    auto result = fn();
    EXPECT_TRUE(client_->Commit().ok());
    return result;
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<TxCacheClient> client_;
  std::unique_ptr<WikiApp> app_;
};

TEST_F(WikiTest, RenderArticleCachesAndHits) {
  RenderedArticle first = InRo([&] { return app_->render_article("TxCache"); });
  EXPECT_TRUE(first.found);
  EXPECT_NE(first.html.find("A transactional cache."), std::string::npos);
  uint64_t queries = client_->stats().db_queries;
  RenderedArticle second = InRo([&] { return app_->render_article("TxCache"); });
  EXPECT_EQ(second.html, first.html);
  EXPECT_EQ(client_->stats().db_queries, queries) << "second render fully cached";
}

TEST_F(WikiTest, MissingArticleRendersPlaceholderAndCachesNegativeResult) {
  RenderedArticle missing = InRo([&] { return app_->render_article("Ghost"); });
  EXPECT_FALSE(missing.found);
  uint64_t queries = client_->stats().db_queries;
  InRo([&] { return app_->render_article("Ghost"); });
  EXPECT_EQ(client_->stats().db_queries, queries) << "negative results cache too";

  // Creating the page must invalidate the cached negative result (the stale-negative-result
  // race from §4.2 that made MediaWiki refuse to cache failed lookups).
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->EditArticle(2, "Ghost", "Now it exists.", "created").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));
  RenderedArticle created = InRo([&] { return app_->render_article("Ghost"); },
                                 /*staleness=*/0);
  EXPECT_TRUE(created.found);
}

TEST_F(WikiTest, EditInvalidatesRenderAndUserCardTransitively) {
  // Warm both the page and the user card; the page embeds the card (nested cacheable call).
  RenderedArticle before = InRo([&] { return app_->render_article("TxCache"); });
  UserCard alice_before = InRo([&] { return app_->user_card(1); });
  EXPECT_EQ(alice_before.edit_count, 1);
  EXPECT_NE(before.html.find("(1 edits)"), std::string::npos);

  // Bug #8391 scenario: the edit bumps Alice's edit count. No invalidation code exists
  // anywhere in WikiApp — the database's tags must invalidate the USER object AND the page.
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->EditArticle(1, "TxCache", "A transactional, tested cache.", "edit").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  UserCard alice_after = InRo([&] { return app_->user_card(1); }, /*staleness=*/0);
  EXPECT_EQ(alice_after.edit_count, 2);
  RenderedArticle after = InRo([&] { return app_->render_article("TxCache"); },
                               /*staleness=*/0);
  EXPECT_NE(after.html.find("A transactional, tested cache."), std::string::npos);
  EXPECT_NE(after.html.find("(2 edits)"), std::string::npos)
      << "the embedded user card must be fresh in the re-rendered page";
}

TEST_F(WikiTest, WatchlistKeysIncludeEveryArgument) {
  // Bug #7474 scenario: MediaWiki cached the watchlist under a user-only key, so requests with
  // different "days" windows returned each other's results. Keys here derive from all args.
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->Watch(1, 1).ok());  // watched long ago
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(3 * 86'400));  // three days pass
  ASSERT_TRUE(client_->BeginRW().ok());
  auto rev = app_->EditArticle(2, "Recent", "fresh page", "created");
  ASSERT_TRUE(rev.ok());
  ASSERT_TRUE(app_->Watch(1, 2).ok());  // watched today (article id 2)
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  auto last_day = InRo([&] { return app_->watchlist(1, 1); }, /*staleness=*/0);
  auto last_week = InRo([&] { return app_->watchlist(1, 7); }, /*staleness=*/0);
  EXPECT_EQ(last_day.size(), 1u);
  EXPECT_EQ(last_week.size(), 2u) << "different 'days' arguments are different cache entries";
  // Both entries are independently cached.
  uint64_t queries = client_->stats().db_queries;
  InRo([&] { return app_->watchlist(1, 1); });
  InRo([&] { return app_->watchlist(1, 7); });
  EXPECT_EQ(client_->stats().db_queries, queries);
}

TEST_F(WikiTest, HistoryJoinsEditorNames) {
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->EditArticle(2, "TxCache", "v2", "tweak").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));
  auto history = InRo([&] { return app_->article_history("TxCache", 10); }, /*staleness=*/0);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].editor, "Bob") << "most recent first";
  EXPECT_EQ(history[1].editor, "Alice");
  EXPECT_GT(history[0].revision, history[1].revision);
}

TEST_F(WikiTest, LocalizationInvalidatedByMessageChange) {
  auto sidebar = InRo([&] { return app_->localization("sidebar."); });
  EXPECT_EQ(sidebar.size(), 2u);
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->SetMessage("sidebar.random", "Random page").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));
  auto updated = InRo([&] { return app_->localization("sidebar."); }, /*staleness=*/0);
  EXPECT_EQ(updated.size(), 3u) << "seq-scan wildcard tag caught the new message";
}

TEST_F(WikiTest, StalenessMirrorsReplicationLagTolerance) {
  // §7.2: MediaWiki distinguishes transactions that must see the latest state from those that
  // tolerate 1-30 s of replication lag. The same split maps onto staleness limits.
  InRo([&] { return app_->render_article("TxCache"); });
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->EditArticle(2, "TxCache", "fresher text", "edit").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(2));

  RenderedArticle lagged = InRo([&] { return app_->render_article("TxCache"); }, Seconds(30));
  EXPECT_EQ(lagged.html.find("fresher text"), std::string::npos)
      << "lag-tolerant read may serve the pre-edit render";
  RenderedArticle strict = InRo([&] { return app_->render_article("TxCache"); },
                                /*staleness=*/0);
  EXPECT_NE(strict.html.find("fresher text"), std::string::npos)
      << "latest-state read must recompute";
}

}  // namespace
}  // namespace txcache::wiki
