// Deterministic tests for size-aware admission and per-function TTL learning: the
// max_entry_fraction guard, the displacement-cost comparison (accept and decline sides, free
// stale bytes), multi-MB values round-tripping through MultiLookup, a model-checked oracle
// that size-aware admission never evicts a victim set whose summed benefit exceeds the
// admitted entry's, learned-lifetime demotion driving stale-first eviction, and the advisory
// hints fed back on Lookup/Insert responses. Everything runs on a fixed ManualClock with
// fixed seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "src/util/serde.h"

namespace txcache {
namespace {

// A MakeCacheKey-shaped key: the function name is recoverable via CacheKeyFunction, so fills
// of the same function share one admission profile, learned lifetime and hint snapshot.
std::string FnKey(const std::string& function, uint64_t arg) {
  Writer w;
  w.PutString(function);
  w.PutU64(arg);
  return w.Take();
}

InsertRequest StillValid(const std::string& key, size_t value_bytes, uint64_t fill_cost_us,
                         std::vector<InvalidationTag> tags = {}) {
  InsertRequest req;
  req.key = key;
  req.value = std::string(value_bytes, 'v');
  req.interval = {1, kTimestampInfinity};
  req.computed_at = 1;
  req.tags = std::move(tags);
  req.fill_cost_us = fill_cost_us;
  return req;
}

LookupRequest Probe(const std::string& key) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = 1;
  req.bounds_hi = kTimestampInfinity;
  return req;
}

CacheServer::Options OneShardOptions(size_t capacity_bytes) {
  CacheServer::Options options;
  options.capacity_bytes = capacity_bytes;
  options.num_shards = 1;  // single shard: eviction order is exact, not a cross-shard merge
  options.policy = EvictionPolicy::kCostAware;
  return options;
}

TEST(CacheAdmissionSizing, MaxEntryFractionGuardDeclinesOversizedFills) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options = OneShardOptions(8192);
  options.max_entry_fraction = 0.25;  // one entry may take at most 2048 of the 8192 bytes
  CacheServer server("guard", &clock, options);

  // Declined on an EMPTY cache: the guard is absolute — a value that would own a quarter of
  // its shard's slice is refused regardless of benefit or pressure.
  std::shared_ptr<const AdvisoryHints> hints;
  Status st = server.Insert(StillValid(FnKey("huge", 1), 4000, 1'000'000), &hints);
  EXPECT_EQ(st.code(), StatusCode::kDeclinedTooLarge) << st.ToString();
  EXPECT_EQ(server.version_count(), 0u);
  EXPECT_EQ(server.stats().admission_rejects_too_large, 1u);
  EXPECT_EQ(server.stats().admission_rejects, 0u) << "distinct from the watermark counter";
  // The decline carries fresh advisory hints: 1/1 fills declined.
  ASSERT_NE(hints, nullptr);
  EXPECT_DOUBLE_EQ(hints->decline_rate, 1.0);

  // A value under the cap is admitted as usual.
  ASSERT_TRUE(server.Insert(StillValid(FnKey("huge", 2), 1500, 1'000'000)).ok());
  EXPECT_TRUE(server.Lookup(Probe(FnKey("huge", 2))).hit);

  bool saw = false;
  for (const FunctionStatsEntry& e : server.FunctionStats()) {
    if (e.function == "huge") {
      saw = true;
      EXPECT_EQ(e.fills, 2u);
      EXPECT_EQ(e.declined_too_large, 1u);
      EXPECT_EQ(e.admission_rejects, 0u);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(CacheAdmissionSizing, DisplacementComparisonDecidesLargeFills) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options = OneShardOptions(64 * 1024);
  options.max_entry_fraction = 0;          // isolate the displacement comparison
  options.displacement_check_bytes = 16 * 1024;
  options.admission_min_samples = 1'000'000;  // watermark never fires
  CacheServer server("displacement", &clock, options);

  // Fill with small entries, each carrying 600 µs of benefit. With the aging floor still at
  // zero, each resident entry's remaining benefit equals its own fill cost.
  uint64_t accepted_small = 0;
  for (uint64_t i = 0; accepted_small * 700 < 64 * 1024; ++i, ++accepted_small) {
    ASSERT_TRUE(server.Insert(StillValid(FnKey("small", i), 600, 600)).ok());
    if (server.bytes_used() + 700 > 64 * 1024) {
      break;
    }
  }
  const size_t used_before = server.bytes_used();
  ASSERT_GT(used_before, 60u * 1024u);

  // A 32 KiB fill must displace ~46 small entries (~27k µs of benefit). 10'000 µs of fill
  // cost loses the comparison: declined kDeclinedTooLarge, nothing evicted.
  const CacheStats before = server.stats();
  Status lose = server.Insert(StillValid(FnKey("big", 1), 32 * 1024, 10'000));
  EXPECT_EQ(lose.code(), StatusCode::kDeclinedTooLarge) << lose.ToString();
  EXPECT_EQ(server.bytes_used(), used_before) << "a declined fill must not displace anything";
  EXPECT_EQ(server.stats().capacity_evictions(), before.capacity_evictions());
  EXPECT_EQ(server.stats().admission_rejects_too_large,
            before.admission_rejects_too_large + 1);

  // The same bytes with 100'000 µs of fill cost win: admitted, victims evicted, and the
  // value is resident and servable.
  Status win = server.Insert(StillValid(FnKey("big", 2), 32 * 1024, 100'000));
  ASSERT_TRUE(win.ok()) << win.ToString();
  EXPECT_LE(server.bytes_used(), options.capacity_bytes);
  EXPECT_GT(server.stats().evictions_cost, 0u);
  LookupResponse resp = server.Lookup(Probe(FnKey("big", 2)));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.value_ref().size(), 32u * 1024u);
}

TEST(CacheAdmissionSizing, StaleVictimsAreFreeToDisplace) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options = OneShardOptions(64 * 1024);
  options.max_entry_fraction = 0;
  options.displacement_check_bytes = 16 * 1024;
  options.admission_min_samples = 1'000'000;
  CacheServer server("stale-free", &clock, options);

  // Same setup as the losing case above, but every small entry's interval is then closed by
  // a wildcard invalidation: stale-listed bytes are free, so even a ZERO-cost large fill is
  // admitted (displacement cost 0 is not greater than benefit 0).
  auto tag = InvalidationTag::Concrete("t", "i", "g");
  for (uint64_t i = 0; i < 90; ++i) {
    ASSERT_TRUE(server.Insert(StillValid(FnKey("small", i), 600, 600, {tag})).ok());
    if (server.bytes_used() + 700 > 64 * 1024) {
      break;
    }
  }
  InvalidationMessage msg;
  msg.seqno = 1;
  msg.ts = 50;
  msg.wallclock = clock.Now();
  msg.tags = {tag};
  server.Deliver(msg);

  Status st = server.Insert(StillValid(FnKey("big", 1), 32 * 1024, 0));
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(server.stats().evictions_capacity_stale, 0u);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("big", 1))).hit);
}

TEST(CacheAdmissionSizing, MultiMbValueRoundTripsThroughMultiLookup) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options;
  options.capacity_bytes = 64u << 20;
  options.num_shards = 4;
  options.policy = EvictionPolicy::kCostAware;
  CacheServer server("multimb", &clock, options);
  CacheCluster cluster;
  cluster.AddNode(&server);

  // Three 4 MB values (each well under the 8 MB shard slice x 0.5 guard), inserted through
  // cluster routing with the hash-once contract.
  constexpr size_t kMb = 4u << 20;
  for (uint64_t i = 0; i < 3; ++i) {
    InsertRequest req = StillValid(FnKey("blob", i), kMb, 500'000);
    req.value[0] = static_cast<char>('A' + i);  // distinguishable first byte
    req.value[kMb - 1] = static_cast<char>('x' + i);
    req.key_hash = Fnv1a(req.key);
    InsertResponse resp = cluster.Insert(req);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  }

  MultiLookupRequest batch;
  for (uint64_t i = 0; i < 3; ++i) {
    LookupRequest req = Probe(FnKey("blob", i));
    req.key_hash = Fnv1a(req.key);
    batch.lookups.push_back(std::move(req));
  }
  auto resp_or = cluster.MultiLookup(batch);
  ASSERT_TRUE(resp_or.ok());
  for (uint64_t i = 0; i < 3; ++i) {
    const LookupResponse& resp = resp_or.value().responses[i];
    ASSERT_TRUE(resp.hit) << "blob " << i;
    ASSERT_EQ(resp.value_ref().size(), kMb);
    EXPECT_EQ(resp.value_ref()[0], static_cast<char>('A' + i));
    EXPECT_EQ(resp.value_ref()[kMb - 1], static_cast<char>('x' + i));
    // Zero-copy: a second lookup of the same key aliases the same resident buffer.
    LookupRequest again = Probe(FnKey("blob", i));
    again.key_hash = Fnv1a(again.key);
    EXPECT_EQ(server.Lookup(again).value->data(), resp.value->data());
  }
}

TEST(CacheAdmissionSizing, OracleNeverEvictsMoreBenefitThanAdmitted) {
  // Model-checked oracle for the size-aware invariant: whenever a large fill is ADMITTED at
  // byte pressure, the summed remaining benefit of the victims its bytes displace must not
  // exceed the fill's own benefit. The test mirrors the single-shard cost-aware policy
  // exactly (score = floor-at-insert + cost/bytes, evict lowest score first, floor ratchets
  // to each evicted score), predicts every admission decision and every eviction, and
  // cross-checks the model against the server's accounting and residency after every step.
  for (uint64_t seed : {7u, 21u, 63u}) {
    ManualClock clock;
    clock.Set(Seconds(100));
    CacheServer::Options options = OneShardOptions(32 * 1024);
    options.max_entry_fraction = 0;  // the displacement comparison is the only size gate
    options.displacement_check_bytes = 4096;
    options.admission_min_samples = 1'000'000;  // watermark out of the way
    CacheServer server("oracle", &clock, options);
    Rng rng(seed);

    struct Entry {
      size_t bytes;
      uint64_t cost;
      double score;
    };
    std::map<std::string, Entry> model;  // resident set, mirrored
    size_t model_bytes = 0;

    for (uint64_t i = 0; i < 300; ++i) {
      const bool large = rng.Bernoulli(0.2);
      const size_t value_bytes = large ? static_cast<size_t>(rng.Uniform(4096, 12000))
                                       : static_cast<size_t>(rng.Uniform(200, 800));
      // Distinct costs avoid score ties, which the model would have to tie-break.
      const uint64_t cost = 1000 * (i + 1) + rng.Uniform(1, 999);
      InsertRequest req = StillValid(FnKey(large ? "large" : "small", i), value_bytes, cost);
      const size_t est = CacheShard::EstimateBytes(req);
      const double floor_before = server.aging_floor();
      const bool pressure = model_bytes + est > options.capacity_bytes;

      // Model prediction of the displacement decision.
      bool expect_decline = false;
      if (pressure && est >= options.displacement_check_bytes) {
        std::vector<Entry> victims;
        for (const auto& [_, e] : model) {
          victims.push_back(e);
        }
        std::sort(victims.begin(), victims.end(),
                  [](const Entry& a, const Entry& b) { return a.score < b.score; });
        const size_t need = model_bytes + est - options.capacity_bytes;
        size_t covered = 0;
        double displaced = 0;
        for (const Entry& v : victims) {
          if (covered >= need) {
            break;
          }
          covered += v.bytes;
          displaced += std::max(0.0, v.score - floor_before) * static_cast<double>(v.bytes);
        }
        expect_decline = displaced > static_cast<double>(cost);
        if (!expect_decline) {
          // THE invariant under test: an admitted victim set never out-benefits the entry.
          ASSERT_LE(displaced, static_cast<double>(cost)) << "step " << i;
        }
      }

      Status st = server.Insert(req);
      if (expect_decline) {
        ASSERT_EQ(st.code(), StatusCode::kDeclinedTooLarge)
            << "step " << i << ": " << st.ToString();
        continue;
      }
      ASSERT_TRUE(st.ok()) << "step " << i << ": " << st.ToString();

      // Mirror the insert + EvictToFit: the new entry scores at the pre-eviction floor and
      // is itself a potential victim; evict lowest score until the budget fits.
      model[req.key] = Entry{est, cost,
                             floor_before + static_cast<double>(cost) /
                                                static_cast<double>(est)};
      model_bytes += est;
      while (model_bytes > options.capacity_bytes) {
        auto victim = model.begin();
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->second.score < victim->second.score) {
            victim = it;
          }
        }
        model_bytes -= victim->second.bytes;
        model.erase(victim);
      }
      ASSERT_EQ(server.bytes_used(), model_bytes) << "model diverged at step " << i;
      ASSERT_EQ(server.version_count(), model.size()) << "model diverged at step " << i;
    }

    // Retroactive validation that the model's resident set (and with it every displacement
    // sum the oracle checked) tracked the server exactly: residents hit, evictees miss.
    for (uint64_t i = 0; i < 300; ++i) {
      for (const char* fn : {"large", "small"}) {
        const std::string key = FnKey(fn, i);
        LookupResponse resp = server.Lookup(Probe(key));
        EXPECT_EQ(resp.hit, model.contains(key)) << "seed " << seed << " key " << fn << i;
      }
    }
  }
}

TEST(CacheAdmissionSizing, DisplacementPricesInHitsOnUnrefreshedVictims) {
  // Regression for the displacement estimate undervaluing live-but-unrefreshed victims: a
  // resident entry that keeps serving HITS but is never re-filled has a GreedyDual score
  // margin near the floor, so the pure score-margin formula priced it as almost free and a
  // marginal large fill displaced it. PreviewVictims now folds in a recency-decayed hit
  // benefit (hits x fill cost), so the same fill is declined once the victims have proven
  // traffic. Two identical servers, identical fill — the only difference is lookups.
  auto build = [](ManualClock* clock, const char* name) {
    CacheServer::Options options = OneShardOptions(32 * 1024);
    options.max_entry_fraction = 0;
    options.displacement_check_bytes = 4096;
    options.admission_min_samples = 1'000'000;  // watermark out of the way
    auto server = std::make_unique<CacheServer>(name, clock, options);
    for (uint64_t i = 0; i < 8; ++i) {
      // Low-cost residents: score margin ~ 1000/4096 us/byte, so the score-only displacement
      // sum for any victim subset stays around 1000 us per victim.
      EXPECT_TRUE(server->Insert(StillValid(FnKey("resident", i), 3800, 1000)).ok());
    }
    return server;
  };
  // The challenger needs ~16 KB at full pressure: roughly four residents must make way.
  // Its 6000 us benefit beats their ~4 x 1000 us score-margin price.
  const InsertRequest challenger = StillValid(FnKey("challenger", 0), 16 * 1024, 6000);

  ManualClock clock;
  clock.Set(Seconds(100));
  auto idle = build(&clock, "idle");
  Status admitted = idle->Insert(challenger);
  EXPECT_TRUE(admitted.ok()) << admitted.ToString()
                             << " (never-hit victims keep the exact score-margin price)";

  auto busy = build(&clock, "busy");
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(busy->Lookup(Probe(FnKey("resident", i))).hit);
    }
  }
  Status declined = busy->Insert(challenger);
  EXPECT_EQ(declined.code(), StatusCode::kDeclinedTooLarge)
      << "ten hits apiece must outprice a 6000 us fill: the victims' saved recomputes "
         "(~10 x 1000 us each, barely decayed) now count";
  EXPECT_EQ(busy->version_count(), 8u) << "the declined fill displaced nothing";
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(busy->Lookup(Probe(FnKey("resident", i))).hit);
  }
}

TEST(CacheAdmissionSizing, LearnedTtlDemotesOverdueEntriesToStaleFirstEviction) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options = OneShardOptions(16 * 1024);
  options.lifetime_min_samples = 2;
  options.ttl_expiry_slack = 1.5;
  options.sweep_interval_ops = 4;  // every few mutations runs the sweep (and the TTL pass)
  options.admission_min_samples = 1'000'000;
  CacheServer server("ttl", &clock, options);
  auto tag = InvalidationTag::Concrete("t", "i", "hot");

  // Teach the cache that "volatile" results live ~100 ms: two insert → invalidate rounds.
  // Each fill is computed at the current stream position so it enters still-valid (an older
  // computed_at would be insert-time truncated by the replay history and learn nothing).
  uint64_t seqno = 1;
  Timestamp ts = 10;
  for (uint64_t round = 0; round < 2; ++round) {
    InsertRequest req = StillValid(FnKey("volatile", round), 600, 50'000, {tag});
    req.interval.lower = ts + 1;
    req.computed_at = ts + 1;
    ASSERT_TRUE(server.Insert(req).ok());
    clock.Advance(Millis(100));
    InvalidationMessage msg;
    msg.seqno = seqno++;
    msg.ts = ts += 2;
    msg.wallclock = clock.Now();
    msg.tags = {tag};
    server.Deliver(msg);
  }
  bool saw = false;
  for (const FunctionStatsEntry& e : server.FunctionStats()) {
    if (e.function == "volatile") {
      saw = true;
      EXPECT_EQ(e.truncations, 2u);
      EXPECT_NEAR(e.ewma_lifetime_us, 100'000.0, 1.0);
    }
  }
  ASSERT_TRUE(saw) << "lifetime learning must surface in FunctionStats";

  // A fresh volatile entry plus a cheap stable one. The volatile entry carries 50x the
  // benefit-per-byte, so WITHOUT TTL demotion it would outlive the stable entry under
  // pressure. Let it outlive its learned lifetime instead.
  InsertRequest overdue = StillValid(FnKey("volatile", 100), 600, 50'000, {tag});
  overdue.interval.lower = ts + 1;
  overdue.computed_at = ts + 1;
  ASSERT_TRUE(server.Insert(overdue).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("stable", 1), 600, 1'000)).ok());
  clock.Advance(Millis(400));  // 400 ms > 1.5 x 100 ms: overdue

  // Mutations run the op-counter sweep, which demotes the overdue entry (validity intact:
  // it still serves hits as still-valid until evicted or truncated).
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(server.Insert(StillValid(FnKey("filler", i), 400, 2'000)).ok());
  }
  EXPECT_GT(server.stats().ttl_demotions, 0u);
  LookupRequest probe_overdue = Probe(FnKey("volatile", 100));
  probe_overdue.bounds_lo = ts + 1;
  LookupResponse before_evict = server.Lookup(probe_overdue);
  ASSERT_TRUE(before_evict.hit) << "demotion must not change what the entry serves";
  EXPECT_TRUE(before_evict.still_valid);

  // Capacity pressure: the demoted entry is evicted stale-first, before every still-valid
  // entry — its 50x benefit score notwithstanding. The cheap stable entry survives it.
  uint64_t stale_evictions_before = server.stats().evictions_capacity_stale;
  for (uint64_t i = 0; i < 64 && server.Lookup(probe_overdue).hit; ++i) {
    ASSERT_TRUE(server.Insert(StillValid(FnKey("pressure", i), 900, 2'000)).ok());
  }
  EXPECT_FALSE(server.Lookup(probe_overdue).hit) << "overdue entry must go first";
  EXPECT_GT(server.stats().evictions_capacity_stale, stale_evictions_before);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("stable", 1))).hit)
      << "stable entry outlives the TTL-demoted one";
}

TEST(CacheAdmissionSizing, AdvisoryHintsFlowOnInsertAndLookupResponses) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options = OneShardOptions(64 * 1024);
  options.lifetime_min_samples = 1;
  CacheServer server("hints", &clock, options);
  auto tag = InvalidationTag::Concrete("t", "i", "g");

  // First insert: hints published with the optimistic profile.
  std::shared_ptr<const AdvisoryHints> hints;
  ASSERT_TRUE(server.Insert(StillValid(FnKey("fn", 1), 500, 5'000, {tag}), &hints).ok());
  ASSERT_NE(hints, nullptr);
  EXPECT_EQ(hints->learned_lifetime_us, 0u) << "nothing learned before any truncation";
  EXPECT_GT(hints->observed_bpb, 0.0);
  EXPECT_DOUBLE_EQ(hints->decline_rate, 0.0);

  // Truncate it 250 ms later: the next insert's hints carry the learned lifetime.
  clock.Advance(Millis(250));
  InvalidationMessage msg;
  msg.seqno = 1;
  msg.ts = 50;
  msg.wallclock = clock.Now();
  msg.tags = {tag};
  server.Deliver(msg);
  InsertRequest second = StillValid(FnKey("fn", 2), 500, 5'000, {tag});
  second.interval.lower = 51;
  second.computed_at = 51;
  ASSERT_TRUE(server.Insert(second, &hints).ok());
  ASSERT_NE(hints, nullptr);
  EXPECT_NEAR(static_cast<double>(hints->learned_lifetime_us), 250'000.0, 1.0);

  // A lookup hit serves the stored snapshot (zero-copy alias of the published hints).
  LookupRequest probe = Probe(FnKey("fn", 2));
  probe.bounds_lo = 51;
  LookupResponse resp = server.Lookup(probe);
  ASSERT_TRUE(resp.hit);
  ASSERT_NE(resp.hints, nullptr);
  EXPECT_EQ(resp.hints->learned_lifetime_us, hints->learned_lifetime_us);
}

}  // namespace
}  // namespace txcache
