// The zero-copy read fast path (docs/architecture.md §"Read fast path"):
//   * a hit aliases the resident value/tag buffers — pointer identity, zero deep copies —
//     and the alias stays readable and bitwise stable after eviction, truncation, flush and
//     even destruction of the owning server;
//   * a hit acquires no exclusive shard lock (asserted via the instrumented lock wrapper);
//   * hit-time LRU/score maintenance is deferred into the touch buffer and drained by the
//     next exclusive-section operation, preserving LRU monotonicity — including when the
//     buffer overflows and the drain repairs the order from the per-version ticks;
//   * the kExclusiveCopy baseline (kept for benchmarks) stays observably equivalent.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cache/cache_types.h"
#include "src/core/cacheable_function.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

InsertRequest StillValidInsert(const std::string& key, std::string value,
                               Timestamp lower = 1) {
  InsertRequest req;
  req.key = key;
  req.value = std::move(value);
  req.interval = {lower, kTimestampInfinity};
  req.computed_at = lower;
  req.tags = {InvalidationTag::Concrete("t", "idx", key)};
  return req;
}

LookupRequest Probe(const std::string& key) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = 1;
  req.bounds_hi = kTimestampInfinity;
  return req;
}

InvalidationMessage Invalidate(uint64_t seqno, Timestamp ts, const std::string& key) {
  InvalidationMessage msg;
  msg.seqno = seqno;
  msg.ts = ts;
  msg.tags = {InvalidationTag::Concrete("t", "idx", key)};
  return msg;
}

TEST(CacheReadPath, HitAliasesResidentBufferWithPointerIdentity) {
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 2;
  CacheServer server("alias", &clock, options);
  ASSERT_TRUE(server.Insert(StillValidInsert("k", "payload")).ok());

  LookupResponse first = server.Lookup(Probe("k"));
  LookupResponse second = server.Lookup(Probe("k"));
  ASSERT_TRUE(first.hit);
  ASSERT_TRUE(second.hit);
  // Zero-copy means aliasing: both hits hand out the SAME resident buffer, not copies.
  EXPECT_EQ(first.value.get(), second.value.get());
  ASSERT_TRUE(first.tags != nullptr);
  EXPECT_EQ(first.tags.get(), second.tags.get()) << "tag blocks must alias too";
  EXPECT_EQ(first.value_ref(), "payload");

  // The batched path aliases the same buffer as the single-key path.
  MultiLookupRequest batch;
  batch.lookups.push_back(Probe("k"));
  MultiLookupResponse multi = server.MultiLookup(batch);
  ASSERT_TRUE(multi.responses[0].hit);
  EXPECT_EQ(multi.responses[0].value.get(), first.value.get());
}

TEST(CacheReadPath, AliasSurvivesTruncationEvictionFlushAndServerDestruction) {
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 16 * 1024;  // a handful of 4 KiB entries
  auto server = std::make_unique<CacheServer>("lifetime", &clock, options);
  const std::string payload(4096, 'z');
  ASSERT_TRUE(server->Insert(StillValidInsert("k", payload)).ok());

  LookupResponse hit = server->Lookup(Probe("k"));
  ASSERT_TRUE(hit.hit);
  const std::string* raw = hit.value.get();

  // Truncation narrows the version's interval but never rewrites the payload bytes.
  server->Deliver(Invalidate(1, 50, "k"));
  EXPECT_EQ(hit.value.get(), raw);
  EXPECT_EQ(*hit.value, payload);

  // Capacity eviction destroys the version; the reader's alias keeps the buffer alive.
  LookupRequest pinned = Probe("k");
  pinned.bounds_hi = 49;  // the truncated version still serves old snapshots
  LookupResponse again = server->Lookup(pinned);
  ASSERT_TRUE(again.hit);
  std::shared_ptr<const std::vector<InvalidationTag>> held_tags = hit.tags;
  ASSERT_TRUE(held_tags != nullptr);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        server->Insert(StillValidInsert("fill" + std::to_string(i), std::string(4096, 'f'), 60))
            .ok());
  }
  ASSERT_FALSE(server->Lookup(pinned).hit) << "test setup: the held version must be gone";
  EXPECT_EQ(again.value.get(), raw) << "the alias IS the evicted buffer, not a copy";
  EXPECT_EQ(*again.value, payload) << "alias must outlive the eviction, bit-stable";

  // Flush, then destroy the whole server: the alias stays readable.
  server->Flush();
  EXPECT_EQ(server->version_count(), 0u);
  EXPECT_EQ(*hit.value, payload);
  server.reset();
  EXPECT_EQ(*again.value, payload);
  EXPECT_EQ(held_tags->size(), 1u);
  EXPECT_EQ((*held_tags)[0].key, "k");
}

TEST(CacheReadPath, HitsAcquireNoExclusiveShardLock) {
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 4;
  CacheServer server("locks", &clock, options);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(server.Insert(StillValidInsert("k" + std::to_string(i), "v")).ok());
  }

  const uint64_t exclusive_before = server.exclusive_lock_acquisitions();
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(server.Lookup(Probe("k" + std::to_string(i))).hit);
    }
    ASSERT_FALSE(server.Lookup(Probe("unknown")).hit);  // misses are shared-side too
  }
  MultiLookupRequest batch;
  for (int i = 0; i < 32; ++i) {
    batch.lookups.push_back(Probe("k" + std::to_string(i)));
  }
  MultiLookupResponse multi = server.MultiLookup(batch);
  for (const LookupResponse& r : multi.responses) {
    ASSERT_TRUE(r.hit);
  }
  EXPECT_EQ(server.exclusive_lock_acquisitions(), exclusive_before)
      << "the read fast path must never take the exclusive side of a shard lock";

  // Sanity: mutating operations DO take the exclusive side, so the counter works.
  ASSERT_TRUE(server.Insert(StillValidInsert("k-new", "v")).ok());
  EXPECT_GT(server.exclusive_lock_acquisitions(), exclusive_before);
}

// Builds a single-shard kLru server whose capacity fits exactly `fit` copies of a fixed-size
// test entry (a key shaped like `sample_key`, 64-byte value).
CacheOptions LruOptions(size_t fit, size_t touch_buffer = 1024,
                        const std::string& sample_key = "k0") {
  CacheOptions options;
  options.num_shards = 1;
  options.policy = EvictionPolicy::kLru;
  options.touch_buffer_capacity = touch_buffer;
  InsertRequest probe = StillValidInsert(sample_key, std::string(64, 'v'));
  options.capacity_bytes = fit * CacheShard::EstimateBytes(probe) + 8;
  return options;
}

TEST(CacheReadPath, DeferredTouchDrainsBeforeEvictionDecides) {
  // k0..k3 fill the cache; a deferred (not yet drained) hit on k0 must still protect it when
  // the next insert forces an eviction — the insert drains first, so k1 (the true LRU tail)
  // goes, not k0.
  ManualClock clock;
  CacheServer server("drain", &clock, LruOptions(4));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Insert(StillValidInsert("k" + std::to_string(i), std::string(64, 'v'))).ok());
  }
  ASSERT_TRUE(server.Lookup(Probe("k0")).hit);  // deferred touch, still in the buffer
  ASSERT_TRUE(server.Insert(StillValidInsert("k4", std::string(64, 'v'))).ok());
  EXPECT_TRUE(server.Lookup(Probe("k0")).hit) << "touched entry evicted: drain ran too late";
  EXPECT_FALSE(server.Lookup(Probe("k1")).hit) << "true LRU tail survived";
  EXPECT_EQ(server.stats().evictions_lru, 1u);
}

TEST(CacheReadPath, TouchBufferOverflowRepairsLruOrderFromTicks) {
  // A 2-slot buffer drops the touch records for k2/k3, but their recency ticks were still
  // written; the drain's overflow repair re-sorts the LRU list from the ticks, so the
  // untouched k4/k5 are evicted first — NOT the touched-but-dropped k2/k3.
  ManualClock clock;
  CacheServer server("overflow", &clock, LruOptions(6, /*touch_buffer=*/2));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.Insert(StillValidInsert("k" + std::to_string(i), std::string(64, 'v'))).ok());
  }
  for (int i = 0; i < 4; ++i) {  // 4 hits into a 2-slot buffer: k2 and k3 overflow
    ASSERT_TRUE(server.Lookup(Probe("k" + std::to_string(i))).hit);
  }
  ASSERT_TRUE(server.Insert(StillValidInsert("k6", std::string(64, 'v'))).ok());
  ASSERT_TRUE(server.Insert(StillValidInsert("k7", std::string(64, 'v'))).ok());
  EXPECT_FALSE(server.Lookup(Probe("k4")).hit) << "untouched entries must be evicted first";
  EXPECT_FALSE(server.Lookup(Probe("k5")).hit);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(server.Lookup(Probe("k" + std::to_string(i))).hit)
        << "k" << i << ": dropped touch record lost its recency — overflow repair failed";
  }
}

TEST(CacheReadPath, LruMonotonicityPropertyUnderRandomDrainInterleavings) {
  // Model check: a single-shard kLru node under random insert/hit interleavings must evict in
  // exactly the order a reference LRU list predicts, for both a roomy touch buffer and a
  // 1-slot buffer that overflows constantly (exercising the tick-sort repair on every drain).
  for (size_t buffer : {size_t{1024}, size_t{1}}) {
    for (uint64_t seed : {11u, 23u, 47u}) {
      ManualClock clock;
      CacheServer server("prop", &clock, LruOptions(8, buffer, "k1000"));
      Rng rng(seed);
      std::list<std::string> model_lru;  // front = most recent
      auto model_touch = [&model_lru](const std::string& key) {
        model_lru.remove(key);
        model_lru.push_front(key);
      };
      int next_key = 0;
      // Fixed-width keys so every entry has identical EstimateBytes and the capacity always
      // fits exactly 8 of them.
      auto key_name = [](int k) { return "k" + std::to_string(1000 + k); };
      for (int step = 0; step < 400; ++step) {
        if (model_lru.empty() || rng.Bernoulli(0.35)) {
          const std::string key = key_name(next_key++);
          ASSERT_TRUE(server.Insert(StillValidInsert(key, std::string(64, 'v'))).ok());
          model_touch(key);
          if (model_lru.size() > 8) {
            model_lru.pop_back();  // the server must have evicted exactly this key
          }
        } else {
          // Hit a random resident key (per the model); the server must agree it is resident.
          auto it = model_lru.begin();
          std::advance(it, static_cast<long>(rng.Uniform(0, static_cast<int64_t>(model_lru.size()) - 1)));
          const std::string key = *it;
          ASSERT_TRUE(server.Lookup(Probe(key)).hit)
              << "buffer=" << buffer << " seed=" << seed << " step=" << step << " key=" << key;
          model_touch(key);
        }
      }
      // Survivor set must match the model exactly: anything else means an eviction took a
      // version that was not the least recently touched (monotonicity violation).
      for (int k = 0; k < next_key; ++k) {
        const std::string key = key_name(k);
        const bool model_resident =
            std::find(model_lru.begin(), model_lru.end(), key) != model_lru.end();
        EXPECT_EQ(server.Lookup(Probe(key)).hit, model_resident)
            << "buffer=" << buffer << " seed=" << seed << " key=" << key;
      }
    }
  }
}

TEST(CacheReadPath, FunctionHitsFlowThroughDeferredDrain) {
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 2;
  CacheServer server("fnhits", &clock, options);  // kCostAware default
  const std::string key_a = MakeCacheKey("get_user", int64_t{1});
  const std::string key_b = MakeCacheKey("get_item", int64_t{2});
  InsertRequest a = StillValidInsert(key_a, "ua");
  InsertRequest b = StillValidInsert(key_b, "ib");
  ASSERT_TRUE(server.Insert(a).ok());
  ASSERT_TRUE(server.Insert(b).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Lookup(Probe(key_a)).hit);
  }
  ASSERT_TRUE(server.Lookup(Probe(key_b)).hit);
  // FunctionStats drains the touch buffers, so the profile reflects every completed hit even
  // though no mutating operation ran since.
  std::map<std::string, uint64_t> hits;
  for (const FunctionStatsEntry& e : server.FunctionStats()) {
    hits[e.function] = e.hits;
  }
  EXPECT_EQ(hits["get_user"], 5u);
  EXPECT_EQ(hits["get_item"], 1u);
}

TEST(CacheReadPath, ExclusiveCopyBaselineMatchesSharedZeroCopyObservably) {
  // The benchmark baseline (ReadPath::kExclusiveCopy) must stay semantically identical to the
  // production path: same hits, same payloads, same intervals, same eviction outcomes, under
  // an identical random op sequence.
  ManualClock clock;
  CacheOptions shared_opts;
  shared_opts.num_shards = 4;
  shared_opts.capacity_bytes = 64 * 1024;
  CacheOptions copy_opts = shared_opts;
  copy_opts.read_path = ReadPath::kExclusiveCopy;
  CacheServer fast("fast", &clock, shared_opts);
  CacheServer base("base", &clock, copy_opts);

  Rng rng(7);
  uint64_t seqno = 1;
  Timestamp now_ts = 1;
  for (int step = 0; step < 800; ++step) {
    const std::string key = "k" + std::to_string(rng.Uniform(0, 40));
    if (rng.Bernoulli(0.45)) {
      const Timestamp lower = now_ts;
      InsertRequest req = StillValidInsert(key, "v" + std::to_string(step), lower);
      if (rng.Bernoulli(0.3)) {
        req.interval.upper = lower + 10;
      }
      req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(0, 4000));
      ASSERT_EQ(fast.Insert(req).code(), base.Insert(req).code());
    } else if (rng.Bernoulli(0.25)) {
      InvalidationMessage msg = Invalidate(seqno++, ++now_ts, key);
      fast.Deliver(msg);
      base.Deliver(msg);
    } else {
      LookupRequest req = Probe(key);
      req.bounds_lo = static_cast<Timestamp>(rng.Uniform(0, static_cast<int64_t>(now_ts)));
      req.bounds_hi = rng.Bernoulli(0.4) ? kTimestampInfinity : req.bounds_lo + 12;
      LookupResponse a = fast.Lookup(req);
      LookupResponse b = base.Lookup(req);
      ASSERT_EQ(a.hit, b.hit) << "step " << step;
      ASSERT_EQ(a.miss, b.miss);
      ASSERT_EQ(a.value_ref(), b.value_ref());
      ASSERT_EQ(a.interval, b.interval);
      ASSERT_EQ(a.still_valid, b.still_valid);
      ASSERT_EQ(a.tags_ref(), b.tags_ref());
    }
  }
  EXPECT_EQ(fast.version_count(), base.version_count());
  EXPECT_EQ(fast.bytes_used(), base.bytes_used());
  const CacheStats fs = fast.stats();
  const CacheStats bs = base.stats();
  EXPECT_EQ(fs.hits, bs.hits);
  EXPECT_EQ(fs.misses(), bs.misses());
}

}  // namespace
}  // namespace txcache
