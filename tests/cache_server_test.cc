// Cache server semantics (paper §4): versioned entries, interval lookups, invalidation
// application, eviction, miss classification, stream reordering, insert/invalidate races.
#include "src/cache/cache_server.h"

#include <gtest/gtest.h>

#include "src/util/clock.h"

namespace txcache {
namespace {

InsertRequest MakeInsert(const std::string& key, const std::string& value, Interval iv,
                         Timestamp computed_at = 0,
                         std::vector<InvalidationTag> tags = {}) {
  InsertRequest req;
  req.key = key;
  req.value = value;
  req.interval = iv;
  req.computed_at = computed_at == 0 ? iv.lower : computed_at;
  req.tags = std::move(tags);
  return req;
}

LookupRequest MakeLookup(const std::string& key, Timestamp lo, Timestamp hi,
                         Timestamp fresh_lo = 0) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = lo;
  req.bounds_hi = hi;
  req.fresh_lo = fresh_lo;
  return req;
}

InvalidationMessage MakeMsg(uint64_t seqno, Timestamp ts, std::vector<InvalidationTag> tags) {
  InvalidationMessage msg;
  msg.seqno = seqno;
  msg.ts = ts;
  msg.wallclock = static_cast<WallClock>(ts) * 1000;
  msg.tags = std::move(tags);
  return msg;
}

class CacheServerTest : public ::testing::Test {
 protected:
  CacheServerTest() : server_("test-node", &clock_) {}

  ManualClock clock_;
  CacheServer server_;
};

TEST_F(CacheServerTest, MissOnEmptyCacheIsCompulsory) {
  LookupResponse resp = server_.Lookup(MakeLookup("k", 0, 100));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kCompulsory);
  EXPECT_EQ(server_.stats().miss_compulsory, 1u);
}

TEST_F(CacheServerTest, InsertThenHit) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, 20})).ok());
  LookupResponse resp = server_.Lookup(MakeLookup("k", 12, 15));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.value_ref(), "v");
  EXPECT_EQ(resp.interval, (Interval{10, 20}));
  EXPECT_FALSE(resp.still_valid);
}

TEST_F(CacheServerTest, LookupBoundsAreInclusive) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, 20})).ok());
  EXPECT_TRUE(server_.Lookup(MakeLookup("k", 19, 25)).hit) << "interval end overlaps bound lo";
  EXPECT_TRUE(server_.Lookup(MakeLookup("k", 0, 10)).hit) << "bound hi == interval lower";
  EXPECT_FALSE(server_.Lookup(MakeLookup("k", 20, 30)).hit) << "upper bound is exclusive";
  EXPECT_FALSE(server_.Lookup(MakeLookup("k", 0, 9)).hit);
}

TEST_F(CacheServerTest, EmptyIntervalRejected) {
  EXPECT_FALSE(server_.Insert(MakeInsert("k", "v", Interval::Empty())).ok());
}

TEST_F(CacheServerTest, MultipleVersionsMostRecentWins) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "old", {10, 20})).ok());
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "new", {20, 30})).ok());
  LookupResponse resp = server_.Lookup(MakeLookup("k", 0, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.value_ref(), "new") << "most recent matching version preferred";
  LookupResponse old = server_.Lookup(MakeLookup("k", 12, 15));
  ASSERT_TRUE(old.hit);
  EXPECT_EQ(old.value_ref(), "old");
}

TEST_F(CacheServerTest, OverlappingInsertIsDroppedAsDuplicate) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v1", {10, 30})).ok());
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v1", {15, 25})).ok());
  EXPECT_EQ(server_.stats().duplicate_inserts, 1u);
  EXPECT_EQ(server_.version_count(), 1u);
}

TEST_F(CacheServerTest, StillValidEntryBoundedByLastInvalidation) {
  // §4.2: a still-valid entry is treated as valid through the last invalidation applied.
  auto tag = InvalidationTag::Concrete("t", "i", "x");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  // No invalidations yet: effective upper = computed_at + 1 = 6.
  EXPECT_TRUE(server_.Lookup(MakeLookup("k", 5, 5)).hit);
  EXPECT_FALSE(server_.Lookup(MakeLookup("k", 7, 100)).hit)
      << "cannot vouch for timestamps beyond what the stream confirmed";
  // An unrelated invalidation at ts 50 advances the horizon.
  server_.Deliver(MakeMsg(1, 50, {InvalidationTag::Concrete("t", "i", "other")}));
  LookupResponse resp = server_.Lookup(MakeLookup("k", 7, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval, (Interval{5, 51}));
  EXPECT_TRUE(resp.still_valid);
  EXPECT_EQ(resp.tags_ref().size(), 1u);
}

TEST_F(CacheServerTest, InvalidationTruncatesMatchingEntry) {
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  server_.Deliver(MakeMsg(1, 42, {tag}));
  EXPECT_EQ(server_.stats().invalidation_truncations, 1u);
  LookupResponse resp = server_.Lookup(MakeLookup("k", 10, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval, (Interval{5, 42})) << "truncated at the update's commit ts";
  EXPECT_FALSE(resp.still_valid);
  EXPECT_FALSE(server_.Lookup(MakeLookup("k", 42, 100)).hit);
}

TEST_F(CacheServerTest, InvalidationIgnoresUnrelatedTags) {
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  server_.Deliver(MakeMsg(1, 42, {InvalidationTag::Concrete("users", "pk", "\x02")}));
  server_.Deliver(MakeMsg(2, 43, {InvalidationTag::Concrete("items", "pk", "\x01")}));
  EXPECT_EQ(server_.stats().invalidation_truncations, 0u);
  EXPECT_TRUE(server_.Lookup(MakeLookup("k", 40, 43)).hit);
}

TEST_F(CacheServerTest, WildcardMessageInvalidatesWholeTable) {
  ASSERT_TRUE(server_
                  .Insert(MakeInsert("k1", "v", {5, kTimestampInfinity}, 5,
                                     {InvalidationTag::Concrete("users", "pk", "\x01")}))
                  .ok());
  ASSERT_TRUE(server_
                  .Insert(MakeInsert("k2", "v", {5, kTimestampInfinity}, 5,
                                     {InvalidationTag::Concrete("users", "name", "alice")}))
                  .ok());
  ASSERT_TRUE(server_
                  .Insert(MakeInsert("k3", "v", {5, kTimestampInfinity}, 5,
                                     {InvalidationTag::Concrete("items", "pk", "\x09")}))
                  .ok());
  server_.Deliver(MakeMsg(1, 30, {InvalidationTag::Wildcard("users")}));
  EXPECT_EQ(server_.stats().invalidation_truncations, 2u);
  EXPECT_FALSE(server_.Lookup(MakeLookup("k1", 30, 100)).hit);
  EXPECT_FALSE(server_.Lookup(MakeLookup("k2", 30, 100)).hit);
  EXPECT_TRUE(server_.Lookup(MakeLookup("k3", 30, 100)).hit);
}

TEST_F(CacheServerTest, WildcardHolderInvalidatedByAnyTableWrite) {
  // An entry tagged TABLE:? (e.g. from a sequential scan) depends on everything in the table.
  ASSERT_TRUE(server_
                  .Insert(MakeInsert("scan", "v", {5, kTimestampInfinity}, 5,
                                     {InvalidationTag::Wildcard("users")}))
                  .ok());
  server_.Deliver(MakeMsg(1, 30, {InvalidationTag::Concrete("users", "pk", "\x05")}));
  LookupResponse resp = server_.Lookup(MakeLookup("scan", 10, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval.upper, 30u);
}

TEST_F(CacheServerTest, InvalidationAtOrBeforeKnownValidIsIgnored) {
  // The database vouched for validity through computed_at; a coarser tag match at or before
  // that point must not truncate (the change is already folded into the value).
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 9, {tag})).ok());
  server_.Deliver(MakeMsg(1, 8, {tag}));
  server_.Deliver(MakeMsg(2, 9, {tag}));
  EXPECT_EQ(server_.stats().invalidation_truncations, 0u);
  LookupResponse resp = server_.Lookup(MakeLookup("k", 6, 9));
  EXPECT_TRUE(resp.hit);
  EXPECT_TRUE(resp.still_valid);
}

TEST_F(CacheServerTest, LateInsertTruncatedByHistory) {
  // The insert/invalidate race (§4.2): the invalidation arrives first, then a value computed
  // *before* that invalidation is inserted claiming still-valid. History replay must bound it.
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  server_.Deliver(MakeMsg(1, 40, {tag}));
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "stale", {10, kTimestampInfinity}, 20, {tag})).ok());
  EXPECT_EQ(server_.stats().insert_time_truncations, 1u);
  LookupResponse resp = server_.Lookup(MakeLookup("k", 15, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval, (Interval{10, 40}));
  EXPECT_FALSE(server_.Lookup(MakeLookup("k", 40, 100)).hit)
      << "the stale negative-result bug from MediaWiki cannot happen";
}

TEST_F(CacheServerTest, LateInsertImmediatelyInvalidatedStillServesItsInstant) {
  // An entry valid from ts 10 whose dependency changed at ts 11: history replay bounds it to
  // the single-timestamp interval [10, 11), which can still serve transactions pinned at 10.
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  server_.Deliver(MakeMsg(1, 11, {tag}));
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, kTimestampInfinity}, 10, {tag})).ok());
  EXPECT_EQ(server_.version_count(), 1u);
  LookupResponse at10 = server_.Lookup(MakeLookup("k", 10, 10));
  ASSERT_TRUE(at10.hit);
  EXPECT_EQ(at10.interval, (Interval{10, 11}));
  EXPECT_FALSE(server_.Lookup(MakeLookup("k", 11, 100)).hit);
}

TEST_F(CacheServerTest, InvalidationAtEntryLowerBoundIsTheCreatingCommit) {
  // The commit that changed the result is the one that made this value current: an
  // invalidation with ts == lower must not truncate the entry into nothingness.
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  server_.Deliver(MakeMsg(1, 10, {tag}));
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, kTimestampInfinity}, 10, {tag})).ok());
  LookupResponse resp = server_.Lookup(MakeLookup("k", 10, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_TRUE(resp.still_valid);
}

TEST_F(CacheServerTest, LateInsertWildcardHistoryChecked) {
  server_.Deliver(MakeMsg(1, 40, {InvalidationTag::Wildcard("users")}));
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, kTimestampInfinity}, 20, {tag})).ok());
  LookupResponse resp = server_.Lookup(MakeLookup("k", 15, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval.upper, 40u) << "wildcard message bounds concrete-tagged late insert";
}

TEST_F(CacheServerTest, LateInsertWithWildcardTagChecksAnyHistory) {
  server_.Deliver(MakeMsg(1, 40, {InvalidationTag::Concrete("users", "pk", "\x07")}));
  ASSERT_TRUE(server_
                  .Insert(MakeInsert("scan", "v", {10, kTimestampInfinity}, 20,
                                     {InvalidationTag::Wildcard("users")}))
                  .ok());
  LookupResponse resp = server_.Lookup(MakeLookup("scan", 15, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval.upper, 40u);
}

TEST_F(CacheServerTest, ReorderBufferAppliesInSeqnoOrder) {
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  // Deliver out of order: 3, 2, then 1. Nothing applies until 1 arrives.
  server_.Deliver(MakeMsg(3, 30, {InvalidationTag::Concrete("t", "i", "z")}));
  server_.Deliver(MakeMsg(2, 20, {tag}));
  EXPECT_EQ(server_.stats().invalidation_messages, 0u);
  EXPECT_EQ(server_.stats().reorder_buffered, 2u);
  server_.Deliver(MakeMsg(1, 10, {InvalidationTag::Concrete("t", "i", "y")}));
  EXPECT_EQ(server_.stats().invalidation_messages, 3u);
  EXPECT_EQ(server_.last_invalidation_ts(), 30u);
  LookupResponse resp = server_.Lookup(MakeLookup("k", 10, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval.upper, 20u) << "message 2 truncated the entry";
}

TEST_F(CacheServerTest, DuplicateStreamMessagesIgnored) {
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  server_.Deliver(MakeMsg(1, 10, {tag}));
  server_.Deliver(MakeMsg(1, 10, {tag}));
  EXPECT_EQ(server_.stats().invalidation_messages, 1u);
}

TEST_F(CacheServerTest, InvalidationIdempotentOnTruncatedEntry) {
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  server_.Deliver(MakeMsg(1, 20, {tag}));
  server_.Deliver(MakeMsg(2, 30, {tag}));  // already bounded: no further effect
  LookupResponse resp = server_.Lookup(MakeLookup("k", 10, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval.upper, 20u);
  EXPECT_EQ(server_.stats().invalidation_truncations, 1u);
}

TEST_F(CacheServerTest, LruEvictionUnderPressure) {
  CacheServer::Options options;
  options.capacity_bytes = 1000;  // each ~300-byte entry: three fit, the fourth must evict
  options.policy = EvictionPolicy::kLru;  // this test pins the classic LRU policy
  CacheServer small("small", &clock_, options);
  std::string big(200, 'x');
  ASSERT_TRUE(small.Insert(MakeInsert("a", big, {1, 2})).ok());
  ASSERT_TRUE(small.Insert(MakeInsert("b", big, {1, 2})).ok());
  ASSERT_TRUE(small.Insert(MakeInsert("c", big, {1, 2})).ok());
  // Touch "a" so "b" is the LRU victim when "d" arrives.
  ASSERT_TRUE(small.Lookup(MakeLookup("a", 1, 1)).hit);
  ASSERT_TRUE(small.Insert(MakeInsert("d", big, {1, 2})).ok());
  EXPECT_GE(small.stats().evictions_lru, 1u);
  EXPECT_TRUE(small.Lookup(MakeLookup("a", 1, 1)).hit);
  LookupResponse b = small.Lookup(MakeLookup("b", 1, 1));
  EXPECT_FALSE(b.hit);
  EXPECT_EQ(b.miss, MissKind::kCapacity) << "evicted key misses as capacity, not compulsory";
  EXPECT_LE(small.bytes_used(), options.capacity_bytes);
}

TEST_F(CacheServerTest, EvictedStillValidEntryLeavesTagIndex) {
  CacheServer::Options options;
  options.capacity_bytes = 700;
  options.policy = EvictionPolicy::kLru;
  CacheServer small("small", &clock_, options);
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  std::string big(400, 'x');
  ASSERT_TRUE(small.Insert(MakeInsert("a", big, {1, kTimestampInfinity}, 1, {tag})).ok());
  ASSERT_TRUE(small.Insert(MakeInsert("b", big, {1, kTimestampInfinity}, 1, {tag})).ok());
  EXPECT_GE(small.stats().evictions_lru, 1u);
  // Invalidation after eviction must not crash or truncate freed memory.
  small.Deliver(MakeMsg(1, 50, {tag}));
  SUCCEED();
}

TEST_F(CacheServerTest, StalenessSweepEvictsUselessVersions) {
  CacheServer::Options options;
  options.max_staleness = Seconds(30);
  options.sweep_interval_ops = 1;  // sweep on every op
  CacheServer server("sweeper", &clock_, options);
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  clock_.Set(Seconds(100));
  ASSERT_TRUE(server.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  server.Deliver(MakeMsg(1, 40, {tag}));  // invalidated at wallclock 100s
  clock_.Set(Seconds(200));               // 100 s later: far beyond any staleness limit
  ASSERT_TRUE(server.Insert(MakeInsert("other", "v", {50, 60})).ok());  // triggers sweep
  EXPECT_GE(server.stats().evictions_stale, 1u);
  EXPECT_FALSE(server.Lookup(MakeLookup("k", 10, 39)).hit);
}

TEST_F(CacheServerTest, MissClassificationStalenessVsConsistency) {
  // Versions exist but are too old => staleness. A fresh-enough version exists but the caller's
  // bounds exclude it => consistency.
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, 20})).ok());
  server_.Deliver(MakeMsg(1, 90, {InvalidationTag::Concrete("t", "i", "q")}));
  LookupResponse stale = server_.Lookup(MakeLookup("k", 50, 100, /*fresh_lo=*/30));
  EXPECT_EQ(stale.miss, MissKind::kStaleness) << "nothing valid at or after fresh_lo=30";
  LookupResponse consistency = server_.Lookup(MakeLookup("k", 50, 100, /*fresh_lo=*/15));
  EXPECT_EQ(consistency.miss, MissKind::kConsistency)
      << "version valid at 15 satisfies freshness but not the pin-set bounds";
}

TEST_F(CacheServerTest, FlushClearsDataButKeepsStreamPosition) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v", {10, 20})).ok());
  server_.Deliver(MakeMsg(1, 15, {InvalidationTag::Concrete("t", "i", "q")}));
  server_.Flush();
  EXPECT_EQ(server_.version_count(), 0u);
  EXPECT_EQ(server_.bytes_used(), 0u);
  EXPECT_EQ(server_.last_invalidation_ts(), 15u);
  server_.Deliver(MakeMsg(2, 25, {InvalidationTag::Concrete("t", "i", "q")}));
  EXPECT_EQ(server_.last_invalidation_ts(), 25u) << "seqno position survived the flush";
}

TEST_F(CacheServerTest, ByteAccountingConsistent) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k1", std::string(100, 'a'), {1, 2})).ok());
  size_t after_one = server_.bytes_used();
  EXPECT_GT(after_one, 100u);
  ASSERT_TRUE(server_.Insert(MakeInsert("k2", std::string(50, 'b'), {1, 2})).ok());
  EXPECT_GT(server_.bytes_used(), after_one);
  server_.Flush();
  EXPECT_EQ(server_.bytes_used(), 0u);
}

TEST_F(CacheServerTest, SnapshotRoundtripPreservesEverything) {
  // Paper §8 methodology: warm caches are restored from snapshots.
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  ASSERT_TRUE(server_.Insert(MakeInsert("bounded", "v1", {10, 20})).ok());
  ASSERT_TRUE(server_.Insert(MakeInsert("live", "v2", {5, kTimestampInfinity}, 5, {tag})).ok());
  server_.Deliver(MakeMsg(1, 30, {InvalidationTag::Concrete("t", "i", "other")}));

  CacheServer restored("restored", &clock_);
  ASSERT_TRUE(restored.ImportSnapshot(server_.ExportSnapshot()).ok());
  EXPECT_EQ(restored.version_count(), 2u);
  EXPECT_EQ(restored.last_invalidation_ts(), 30u);
  LookupResponse bounded = restored.Lookup(MakeLookup("bounded", 12, 15));
  ASSERT_TRUE(bounded.hit);
  EXPECT_EQ(bounded.value_ref(), "v1");
  LookupResponse live = restored.Lookup(MakeLookup("live", 10, 100));
  ASSERT_TRUE(live.hit);
  EXPECT_TRUE(live.still_valid);
  // The restored still-valid entry is wired into the tag index: invalidations reach it.
  restored.Deliver(MakeMsg(2, 40, {tag}));
  LookupResponse after = restored.Lookup(MakeLookup("live", 10, 100));
  ASSERT_TRUE(after.hit);
  EXPECT_EQ(after.interval.upper, 40u);
}

TEST_F(CacheServerTest, SnapshotImportRespectsLocalInvalidationHistory) {
  // A node that already processed an invalidation must not accept a snapshot entry claiming
  // to be still valid from before it: history replay bounds it on import.
  auto tag = InvalidationTag::Concrete("users", "pk", "\x01");
  CacheServer source("source", &clock_);
  ASSERT_TRUE(source.Insert(MakeInsert("k", "v", {5, kTimestampInfinity}, 5, {tag})).ok());
  server_.Deliver(MakeMsg(1, 25, {tag}));  // the *importing* node knows about ts 25
  ASSERT_TRUE(server_.ImportSnapshot(source.ExportSnapshot()).ok());
  LookupResponse resp = server_.Lookup(MakeLookup("k", 10, 100));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.interval.upper, 25u) << "import-time truncation applied";
}

TEST_F(CacheServerTest, SnapshotImportRejectsGarbage) {
  EXPECT_FALSE(server_.ImportSnapshot("definitely not a snapshot").ok());
  EXPECT_FALSE(server_.ImportSnapshot("").ok());
}

TEST_F(CacheServerTest, DisjointVersionsPerKeyInvariant) {
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v1", {10, 20})).ok());
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v2", {20, 30})).ok());
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v3", {40, kTimestampInfinity}, 45)).ok());
  EXPECT_EQ(server_.version_count(), 3u);
  // Overlap with the still-valid version's *effective* interval is also a duplicate.
  ASSERT_TRUE(server_.Insert(MakeInsert("k", "v3b", {42, 44})).ok());
  EXPECT_EQ(server_.version_count(), 3u);
  EXPECT_EQ(server_.stats().duplicate_inserts, 1u);
}

}  // namespace
}  // namespace txcache
