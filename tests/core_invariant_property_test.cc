// Randomized end-to-end check of the paper's correctness invariants (§6.2.1):
//
//   Invariant 1 — everything a read-only transaction observes (cache hits AND database reads)
//   is consistent with one snapshot: re-executing every observed query directly against the
//   database at the transaction's reported timestamp reproduces exactly what was observed.
//
//   Invariant 2 — the pin set never empties mid-transaction.
//
// Random writers keep mutating; random readers make cacheable calls with random staleness
// limits. This is the test that fails if any piece of the machinery — validity intervals,
// invalidation streams, pin-set narrowing, still-valid bounding — is wrong.
#include <gtest/gtest.h>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

struct Observation {
  int64_t id;          // account queried
  int64_t balance;     // -1 if absent
};

struct InvariantParam {
  uint64_t seed;
  ClientMode mode;
};

class EndToEndInvariantTest : public ::testing::TestWithParam<InvariantParam> {};

TEST_P(EndToEndInvariantTest, ObservationsAreSerializableAtReportedTimestamp) {
  ManualClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node_a("a", &clock), node_b("b", &clock);
  bus.Subscribe(&node_a);
  bus.Subscribe(&node_b);
  CacheCluster cluster;
  cluster.AddNode(&node_a);
  cluster.AddNode(&node_b);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);

  Rng rng(GetParam().seed);
  constexpr int64_t kIds = 10;
  for (int64_t id = 0; id < kIds; ++id) {
    InsertAccount(&db, id, "o" + std::to_string(id), 100 * id);
  }

  TxCacheClient::Options options;
  options.mode = GetParam().mode;
  TxCacheClient reader(&db, &pincushion, &cluster, &clock, options);
  TxCacheClient writer_client(&db, &pincushion, &cluster, &clock, options);

  auto balance = reader.MakeCacheable<int64_t, int64_t>(
      "bal", [&reader](int64_t id) -> int64_t {
        auto r = reader.ExecuteQuery(AccountById(id));
        if (!r.ok() || r.value().rows.empty()) {
          return -1;
        }
        return r.value().rows[0][AccountsCol::kBalance].AsInt();
      });

  const bool check_consistency = GetParam().mode == ClientMode::kConsistent ||
                                 GetParam().mode == ClientMode::kNoCache;

  for (int round = 0; round < 120; ++round) {
    // Random mutation burst.
    const int writes = static_cast<int>(rng.Uniform(0, 3));
    for (int w = 0; w < writes; ++w) {
      const int64_t id = rng.Uniform(0, kIds - 1);
      TxnId txn = db.BeginReadWrite();
      if (rng.Bernoulli(0.15)) {
        db.Delete(txn, kAccounts, AccountById(id).from, nullptr);
      } else {
        auto n = db.Update(txn, kAccounts, AccountById(id).from, nullptr,
                           {{AccountsCol::kBalance, Value(rng.Uniform(0, 999))}});
        if (n.ok() && n.value() == 0) {
          db.Insert(txn, kAccounts, Account(id, "o" + std::to_string(id), rng.Uniform(0, 999)));
        }
      }
      ASSERT_TRUE(db.Commit(txn).ok());
    }
    clock.Advance(Millis(rng.Uniform(50, 4000)));

    // Read-only transaction with a random staleness limit and random reads.
    const WallClock staleness = Seconds(rng.Uniform(0, 12));
    ASSERT_TRUE(reader.BeginRO(staleness).ok());
    std::vector<Observation> observed;
    const int reads = static_cast<int>(rng.Uniform(1, 5));
    for (int r = 0; r < reads; ++r) {
      const int64_t id = rng.Uniform(0, kIds - 1);
      observed.push_back({id, balance(id)});
      // Invariant 2: the pin set is never empty while the transaction runs.
      ASSERT_FALSE(reader.pin_set().empty()) << "round " << round;
    }
    auto ts_or = reader.Commit();
    ASSERT_TRUE(ts_or.ok());
    if (!check_consistency) {
      continue;  // kNoConsistency intentionally forfeits Invariant 1
    }
    const Timestamp ts = ts_or.value();

    // Invariant 1: replay every observation directly on the database at ts.
    db.Pin();  // protect ts from vacuum during verification (ts <= latest; pin latest is enough
               // only if nothing committed since — so pin and verify via snapshot ts directly)
    auto verify_txn = db.BeginReadOnly(ts == db.LatestCommitTs() ? ts : ts);
    if (!verify_txn.ok()) {
      // Snapshot no longer retained (not pinned): skip this round's verification. Does not
      // happen in practice because reader pins are still live here.
      db.Unpin(db.LatestCommitTs());
      continue;
    }
    for (const Observation& obs : observed) {
      auto r = db.Execute(verify_txn.value(), AccountById(obs.id));
      ASSERT_TRUE(r.ok());
      const int64_t truth =
          r.value().rows.empty() ? -1 : r.value().rows[0][AccountsCol::kBalance].AsInt();
      ASSERT_EQ(obs.balance, truth)
          << "round " << round << ": transaction claimed serialization at ts " << ts
          << " but observed balance[" << obs.id << "]=" << obs.balance
          << " while the database at ts has " << truth;
    }
    db.Commit(verify_txn.value());
    db.Unpin(db.LatestCommitTs());

    if (round % 10 == 0) {
      pincushion.Sweep();
      db.Vacuum();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, EndToEndInvariantTest,
    ::testing::Values(InvariantParam{1, ClientMode::kConsistent},
                      InvariantParam{2, ClientMode::kConsistent},
                      InvariantParam{3, ClientMode::kConsistent},
                      InvariantParam{4, ClientMode::kConsistent},
                      InvariantParam{5, ClientMode::kConsistent},
                      InvariantParam{6, ClientMode::kNoCache},
                      InvariantParam{7, ClientMode::kNoConsistency},
                      InvariantParam{8, ClientMode::kConsistent}),
    [](const ::testing::TestParamInfo<InvariantParam>& param_info) {
      const char* mode = param_info.param.mode == ClientMode::kConsistent ? "consistent"
                         : param_info.param.mode == ClientMode::kNoCache  ? "nocache"
                                                                          : "noconsistency";
      return std::string(mode) + "_seed" + std::to_string(param_info.param.seed);
    });

// The "no new anomalies" guarantee (§2.2): with the cache in consistent mode, two values
// cached at different times can never be observed together unless they coexisted at one
// database snapshot.
TEST(EndToEndInvariant, NeverMixesSnapshotsAcrossCacheEntries) {
  ManualClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node("n", &clock);
  bus.Subscribe(&node);
  CacheCluster cluster;
  cluster.AddNode(&node);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  InsertAccount(&db, 1, "a", 10);
  InsertAccount(&db, 2, "b", 20);

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto balance = client.MakeCacheable<int64_t, int64_t>(
      "bal", [&client](int64_t id) -> int64_t {
        auto r = client.ExecuteQuery(AccountById(id));
        return r.ok() && !r.value().rows.empty()
                   ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                   : -1;
      });

  // Cache balance(1) at snapshot S1.
  ASSERT_TRUE(client.BeginRO().ok());
  EXPECT_EQ(balance(1), 10);
  ASSERT_TRUE(client.Commit().ok());

  // Transfer: both rows change together. Invariant: sum stays 30.
  {
    TxnId txn = db.BeginReadWrite();
    ASSERT_TRUE(db.Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{5})}})
                    .ok());
    ASSERT_TRUE(db.Update(txn, kAccounts, AccountById(2).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{25})}})
                    .ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }
  clock.Advance(Seconds(2));

  // Cache balance(2) at snapshot S2 (a fresh transaction that pins past the transfer).
  ASSERT_TRUE(client.BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(balance(2), 25);
  ASSERT_TRUE(client.Commit().ok());

  // Now the cache holds balance(1)=10 from S1 and balance(2)=25 from S2 — a sum of 35 would be
  // a consistency violation. Any single transaction must read {10,20} or {5,25}.
  for (WallClock staleness : {Seconds(0), Seconds(5), Seconds(60)}) {
    ASSERT_TRUE(client.BeginRO(staleness).ok());
    int64_t sum = balance(1) + balance(2);
    ASSERT_TRUE(client.Commit().ok());
    EXPECT_EQ(sum, 30) << "staleness " << staleness;
  }
}

}  // namespace
}  // namespace txcache
