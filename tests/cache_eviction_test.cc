// Deterministic tests for the cost-aware automatic-management subsystem: stale-first capacity
// eviction, benefit-per-byte ordering (GreedyDual score with the node-global aging floor),
// the adaptive admission watermark (reject, probe, re-accept), byte-budget accounting across
// shards, and the end-to-end fill-cost pipeline from TxCacheClient frames to per-function
// server stats. Everything runs on a fixed ManualClock with fixed seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/pincushion/pincushion.h"
#include "src/util/clock.h"
#include "src/util/serde.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

// A MakeCacheKey-shaped key: the function name is recoverable via CacheKeyFunction, so fills
// of the same function share one admission profile no matter which argument they carry.
std::string FnKey(const std::string& function, uint64_t arg) {
  Writer w;
  w.PutString(function);
  w.PutU64(arg);
  return w.Take();
}

InsertRequest StillValid(const std::string& key, size_t value_bytes, uint64_t fill_cost_us,
                         std::vector<InvalidationTag> tags = {}) {
  InsertRequest req;
  req.key = key;
  req.value = std::string(value_bytes, 'v');
  req.interval = {1, kTimestampInfinity};
  req.computed_at = 1;
  req.tags = std::move(tags);
  req.fill_cost_us = fill_cost_us;
  return req;
}

LookupRequest Probe(const std::string& key) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = 1;
  req.bounds_hi = kTimestampInfinity;
  return req;
}

CacheServer::Options OneShardOptions(size_t capacity_bytes) {
  CacheServer::Options options;
  options.capacity_bytes = capacity_bytes;
  options.num_shards = 1;  // single shard: eviction order is exact, not a cross-shard merge
  options.policy = EvictionPolicy::kCostAware;
  return options;
}

TEST(CacheEviction, StaleVersionsEvictedBeforeAnyStillValidEntry) {
  ManualClock clock;
  clock.Set(Seconds(100));
  // Budget fits three ~600-byte entries; the fourth insert forces one eviction.
  CacheServer server("stale-first", &clock, OneShardOptions(2000));
  auto tag = InvalidationTag::Concrete("t", "i", "a");

  // "expensive" has by far the best benefit-per-byte, but its interval gets closed by an
  // invalidation — the stale-first preference must evict it before either cheap still-valid
  // entry, benefit notwithstanding.
  ASSERT_TRUE(server.Insert(StillValid(FnKey("expensive", 1), 500, 1'000'000, {tag})).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("cheap", 1), 500, 10)).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("cheap", 2), 500, 10)).ok());
  InvalidationMessage msg;
  msg.seqno = 1;
  msg.ts = 50;
  msg.wallclock = clock.Now();
  msg.tags = {tag};
  server.Deliver(msg);

  ASSERT_TRUE(server.Insert(StillValid(FnKey("cheap", 3), 500, 10)).ok());

  CacheStats stats = server.stats();
  EXPECT_EQ(stats.evictions_capacity_stale, 1u);
  EXPECT_EQ(stats.evictions_cost, 0u);
  EXPECT_EQ(stats.evictions_lru, 0u);
  LookupRequest old_probe = Probe(FnKey("expensive", 1));
  old_probe.bounds_hi = 49;  // the closed interval [1, 50) would still have matched this
  EXPECT_FALSE(server.Lookup(old_probe).hit) << "stale version must be the first victim";
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cheap", 1))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cheap", 2))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cheap", 3))).hit);
}

TEST(CacheEviction, LowestBenefitPerByteEvictedFirst) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer server("bpb-order", &clock, OneShardOptions(2000));

  // Equal sizes, strictly increasing fill cost: the eviction order must be cost order, not
  // insertion or recency order (note the cheapest entry is inserted LAST and is still the
  // first victim).
  ASSERT_TRUE(server.Insert(StillValid(FnKey("cost300", 1), 500, 300)).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("cost900", 1), 500, 900)).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("cost100", 1), 500, 100)).ok());

  ASSERT_TRUE(server.Insert(StillValid(FnKey("cost600", 1), 500, 600)).ok());
  EXPECT_FALSE(server.Lookup(Probe(FnKey("cost100", 1))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cost300", 1))).hit);

  ASSERT_TRUE(server.Insert(StillValid(FnKey("cost800", 1), 500, 800)).ok());
  EXPECT_FALSE(server.Lookup(Probe(FnKey("cost300", 1))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cost900", 1))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cost600", 1))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("cost800", 1))).hit);

  CacheStats stats = server.stats();
  EXPECT_EQ(stats.evictions_cost, 2u);
  EXPECT_GT(server.aging_floor(), 0.0) << "evicting scored entries must raise the aging floor";
}

TEST(CacheEviction, EqualScoresEvictLeastRecentlyTouchedFirst) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer server("tie-break", &clock, OneShardOptions(2000));

  // Identical cost and size => identical score. A hit refreshes the touched entry's position,
  // so the untouched one is the victim: LRU order among equals.
  ASSERT_TRUE(server.Insert(StillValid(FnKey("fn", 1), 500, 400)).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("fn", 2), 500, 400)).ok());
  ASSERT_TRUE(server.Insert(StillValid(FnKey("fn", 3), 500, 400)).ok());
  ASSERT_TRUE(server.Lookup(Probe(FnKey("fn", 1))).hit);  // refresh 1: victim becomes 2

  ASSERT_TRUE(server.Insert(StillValid(FnKey("fn", 4), 500, 400)).ok());
  EXPECT_TRUE(server.Lookup(Probe(FnKey("fn", 1))).hit);
  EXPECT_FALSE(server.Lookup(Probe(FnKey("fn", 2))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("fn", 3))).hit);
  EXPECT_TRUE(server.Lookup(Probe(FnKey("fn", 4))).hit);
}

TEST(CacheEviction, AdmissionWatermarkRejectsColdFunctionAndProbesPeriodically) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options = OneShardOptions(2000);
  options.admission_min_samples = 4;
  options.admission_probe_interval = 4;
  options.admission_watermark_fraction = 0.5;
  options.benefit_ewma_alpha = 0.5;
  CacheServer server("admission", &clock, options);

  // "good": high benefit-per-byte, and its entries earn hits. Keep three resident.
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(server.Insert(StillValid(FnKey("good", i), 400, 500'000)).ok());
  }
  // "junk": modest cost, never hit. Each fill forces an eviction; with all "good" entries
  // carrying vastly higher scores, the victim is always the junk entry itself, so junk's
  // realized benefit (0 hits) halves its EWMA while the aging floor ratchets upward.
  uint64_t declined = 0;
  uint64_t accepted = 0;
  for (uint64_t i = 1; i <= 40; ++i) {
    // Keep "good" hot so refreshed scores stay above the floor.
    ASSERT_TRUE(server.Lookup(Probe(FnKey("good", 1 + (i % 3)))).hit);
    Status st = server.Insert(StillValid(FnKey("junk", i), 400, 2'000));
    if (st.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(st.code(), StatusCode::kDeclined) << st.ToString();
      ++declined;
    }
  }
  // Deterministic sequence: fills 1-4 are accepted below min_samples (each evicted unhit, so
  // the EWMA halves while the floor ratchets); fills 5-40 all trigger the watermark — 36
  // triggers, every 4th admitted as a probe. 4 + 9 accepted, 27 declined.
  EXPECT_EQ(declined, 27u);
  EXPECT_EQ(accepted, 13u);
  CacheStats stats = server.stats();
  EXPECT_EQ(stats.admission_rejects, declined);
  EXPECT_EQ(stats.admission_probes, 9u) << "every 4th watermark trigger is admitted as a probe";
  // "good" is never declined: its EWMA prior stays far above the watermark.
  ASSERT_TRUE(server.Insert(StillValid(FnKey("good", 9), 400, 500'000)).ok());

  // Per-function profiles surface the story: junk has rejects and a collapsed EWMA, good
  // has hits and none.
  bool saw_good = false, saw_junk = false;
  for (const FunctionStatsEntry& e : server.FunctionStats()) {
    if (e.function == "good") {
      saw_good = true;
      EXPECT_EQ(e.admission_rejects, 0u);
      EXPECT_GT(e.hits, 0u);
    } else if (e.function == "junk") {
      saw_junk = true;
      EXPECT_GT(e.admission_rejects, 0u);
      EXPECT_LT(e.ewma_benefit_per_byte, server.aging_floor());
    }
  }
  EXPECT_TRUE(saw_good);
  EXPECT_TRUE(saw_junk);
}

TEST(CacheEviction, ByteBudgetAccountingAcrossShards) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer::Options options;
  options.capacity_bytes = 16 * 1024;
  options.num_shards = 8;
  options.policy = EvictionPolicy::kCostAware;
  CacheServer server("budget", &clock, options);

  // Unique keys (no duplicate-insert drops), deterministic sizes/costs, entries landing on
  // all shards. Every accepted byte is either resident or was reclaimed by eviction.
  size_t accepted_bytes = 0;
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    InsertRequest req =
        StillValid(FnKey("fn" + std::to_string(i % 7), i), 100 + (i * 37) % 900, 50 + i % 400);
    Status st = server.Insert(req);
    // The 16 KiB budget split 8 ways puts the size-aware guard at 1 KiB per entry, so the
    // biggest fills are declined kDeclinedTooLarge; accounting must hold either way.
    ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDeclined ||
                st.code() == StatusCode::kDeclinedTooLarge)
        << st.ToString();
    if (st.ok()) {
      accepted_bytes += CacheShard::EstimateBytes(req);
      ++accepted;
    }
    ASSERT_LE(server.bytes_used(), options.capacity_bytes) << "budget overshoot at insert " << i;
  }
  CacheStats stats = server.stats();
  EXPECT_EQ(stats.inserts, accepted);
  EXPECT_GT(stats.capacity_evictions(), 0u);
  EXPECT_EQ(accepted_bytes - server.bytes_used(), stats.eviction_bytes_reclaimed)
      << "every accepted byte must be resident or reclaimed";
  EXPECT_EQ(server.version_count(),
            accepted - stats.capacity_evictions());
  server.Flush();
  EXPECT_EQ(server.bytes_used(), 0u);
}

TEST(CacheEviction, ClientMeasuresFillCostAndServerTracksItPerFunction) {
  // End-to-end cost pipeline: a miss fill's frame meters the database work it performed, the
  // cost ships with the insert, the server profiles it per function, and a later hit reports
  // the same cost back as recomputation saved.
  ManualClock clock;
  clock.Set(Seconds(10));
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node("cache", &clock);
  bus.Subscribe(&node);
  CacheCluster cluster;
  cluster.AddNode(&node);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  InsertAccount(&db, 1, "o", 100);

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto balance = client.MakeCacheable<int64_t, int64_t>("bal", [&client](int64_t id) -> int64_t {
    auto r = client.ExecuteQuery(AccountById(id));
    return r.ok() && !r.value().rows.empty() ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                                             : -1;
  });

  ASSERT_TRUE(client.BeginRO().ok());
  EXPECT_EQ(balance(1), 100);  // miss: recompute, measure, insert
  ASSERT_TRUE(client.Commit().ok());
  ClientStats after_miss = client.stats();
  EXPECT_GT(after_miss.recompute_cost_us, 0u) << "the frame must have metered the DB work";
  EXPECT_EQ(after_miss.saved_recompute_cost_us, 0u);

  ASSERT_TRUE(client.BeginRO().ok());
  EXPECT_EQ(balance(1), 100);  // hit: the stored fill cost comes back as savings
  ASSERT_TRUE(client.Commit().ok());
  ClientStats after_hit = client.stats();
  EXPECT_EQ(after_hit.recompute_cost_us, after_miss.recompute_cost_us);
  EXPECT_EQ(after_hit.saved_recompute_cost_us, after_miss.recompute_cost_us)
      << "a hit saves exactly the cost the fill reported";

  bool saw_bal = false;
  for (const FunctionStatsEntry& e : node.FunctionStats()) {
    if (e.function == "bal") {
      saw_bal = true;
      EXPECT_EQ(e.fills, 1u);
      EXPECT_EQ(e.hits, 1u);
      EXPECT_EQ(e.fill_cost_total_us, after_miss.recompute_cost_us);
      EXPECT_GT(e.ewma_benefit_per_byte, 0.0);
    }
  }
  EXPECT_TRUE(saw_bal) << "the cacheable function must appear in the per-function profiles";
}

}  // namespace
}  // namespace txcache
