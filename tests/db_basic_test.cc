#include <gtest/gtest.h>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class DbBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    CreateAccountsTable(db_.get());
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(DbBasicTest, CreateTableRejectsDuplicatesAndEmpty) {
  EXPECT_FALSE(db_->CreateTable(TableSchema{kAccounts, {{"x", ValueType::kInt, false}}}).ok());
  EXPECT_FALSE(db_->CreateTable(TableSchema{"", {{"x", ValueType::kInt, false}}}).ok());
  EXPECT_FALSE(db_->CreateTable(TableSchema{"empty", {}}).ok());
}

TEST_F(DbBasicTest, CreateIndexValidation) {
  EXPECT_FALSE(db_->CreateIndex(IndexSchema{"i", "nope", {0}, false}).ok());
  EXPECT_FALSE(db_->CreateIndex(IndexSchema{"i", kAccounts, {}, false}).ok());
  EXPECT_FALSE(db_->CreateIndex(IndexSchema{"i", kAccounts, {99}, false}).ok());
  EXPECT_FALSE(db_->CreateIndex(IndexSchema{kAccountsPk, kAccounts, {0}, false}).ok());
}

TEST_F(DbBasicTest, ListAndFindTables) {
  EXPECT_NE(db_->FindTable(kAccounts), nullptr);
  EXPECT_EQ(db_->FindTable("nope"), nullptr);
  auto names = db_->ListTables();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], kAccounts);
}

TEST_F(DbBasicTest, InsertAndReadBack) {
  InsertAccount(db_.get(), 1, "alice", 100);
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kOwner].AsString(), "alice");
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 100);
}

TEST_F(DbBasicTest, InsertValidatesArityAndTypes) {
  TxnId txn = db_->BeginReadWrite();
  EXPECT_FALSE(db_->Insert(txn, kAccounts, Row{Value(1)}).ok());
  EXPECT_FALSE(
      db_->Insert(txn, kAccounts, Row{Value("x"), Value("alice"), Value(1), Value(0)}).ok());
  EXPECT_FALSE(
      db_->Insert(txn, kAccounts, Row{Value::Null(), Value("a"), Value(1), Value(0)}).ok());
  EXPECT_FALSE(db_->Insert(txn, "nope", Account(1, "a", 1)).ok());
  db_->Abort(txn);
}

TEST_F(DbBasicTest, InsertInReadOnlyTxnFails) {
  auto txn = db_->BeginReadOnly();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(db_->Insert(txn.value(), kAccounts, Account(1, "a", 1)).code(),
            StatusCode::kFailedPrecondition);
  db_->Commit(txn.value());
}

TEST_F(DbBasicTest, SeqScanWithPredicate) {
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "bob", 50);
  InsertAccount(db_.get(), 3, "carol", 150);
  QueryResult r = ReadLatest(
      db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                     .Where(PCmp(AccountsCol::kBalance, CmpOp::kGe, Value(int64_t{100})))
                     .Project({AccountsCol::kId})
                     .SortBy(0));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{1, 3}));
}

TEST_F(DbBasicTest, IndexEqLookup) {
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "alice", 70);
  InsertAccount(db_.get(), 3, "bob", 50);
  QueryResult r = ReadLatest(
      db_.get(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")}))
          .Project({AccountsCol::kId})
          .SortBy(0));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{1, 2}));
  EXPECT_GE(r.stats.index_probes, 1u);
  EXPECT_EQ(r.stats.seq_scanned, 0u);
}

TEST_F(DbBasicTest, IndexEqMissingIndexIsError) {
  auto txn = db_->BeginReadOnly();
  ASSERT_TRUE(txn.ok());
  auto r = db_->Execute(txn.value(),
                        Query::From(AccessPath::IndexEq(kAccounts, "nope", Row{Value(1)})));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  db_->Commit(txn.value());
}

TEST_F(DbBasicTest, IndexRangeScan) {
  for (int64_t i = 0; i < 10; ++i) {
    InsertAccount(db_.get(), i, "o" + std::to_string(i), i * 10);
  }
  QueryResult r = ReadLatest(
      db_.get(), Query::From(AccessPath::IndexRange(kAccounts, kAccountsPk,
                                                    Row{Value(int64_t{3})}, Row{Value(int64_t{6})}))
                     .Project({AccountsCol::kId}));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST_F(DbBasicTest, IndexRangeOpenEnded) {
  for (int64_t i = 0; i < 5; ++i) {
    InsertAccount(db_.get(), i, "o", 0);
  }
  QueryResult lo = ReadLatest(
      db_.get(), Query::From(AccessPath::IndexRange(kAccounts, kAccountsPk,
                                                    Row{Value(int64_t{3})}, std::nullopt))
                     .Project({AccountsCol::kId}));
  EXPECT_EQ(IntColumn(lo), (std::vector<int64_t>{3, 4}));
  QueryResult hi = ReadLatest(
      db_.get(), Query::From(AccessPath::IndexRange(kAccounts, kAccountsPk, std::nullopt,
                                                    Row{Value(int64_t{1})}))
                     .Project({AccountsCol::kId}));
  EXPECT_EQ(IntColumn(hi), (std::vector<int64_t>{0, 1}));
}

TEST_F(DbBasicTest, PredicateOperators) {
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "bob", 200);
  auto count = [&](PredicatePtr p) {
    return ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts)).Where(std::move(p)))
        .rows.size();
  };
  EXPECT_EQ(count(PEq(AccountsCol::kOwner, Value("bob"))), 1u);
  EXPECT_EQ(count(PCmp(AccountsCol::kBalance, CmpOp::kNe, Value(int64_t{100}))), 1u);
  EXPECT_EQ(count(PCmp(AccountsCol::kBalance, CmpOp::kLt, Value(int64_t{200}))), 1u);
  EXPECT_EQ(count(PCmp(AccountsCol::kBalance, CmpOp::kLe, Value(int64_t{200}))), 2u);
  EXPECT_EQ(count(PCmp(AccountsCol::kBalance, CmpOp::kGt, Value(int64_t{100}))), 1u);
  EXPECT_EQ(count(PAnd({PEq(AccountsCol::kOwner, Value("alice")),
                        PCmp(AccountsCol::kBalance, CmpOp::kGe, Value(int64_t{50}))})),
            1u);
  EXPECT_EQ(count(POr({PEq(AccountsCol::kOwner, Value("alice")),
                       PEq(AccountsCol::kOwner, Value("bob"))})),
            2u);
  EXPECT_EQ(count(PNot(PEq(AccountsCol::kOwner, Value("alice")))), 1u);
  EXPECT_EQ(count(PIsNull(AccountsCol::kOwner)), 0u);
  EXPECT_EQ(count(PColumnCmp(AccountsCol::kId, CmpOp::kLt, AccountsCol::kBalance)), 2u);
  EXPECT_EQ(count(PTrue()), 2u);
}

TEST_F(DbBasicTest, NullComparisonsNeverMatch) {
  InsertAccount(db_.get(), 1, "alice", 100);
  EXPECT_EQ(ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                      .Where(PEq(AccountsCol::kOwner, Value::Null())))
                .rows.size(),
            0u);
}

TEST_F(DbBasicTest, Aggregates) {
  InsertAccount(db_.get(), 1, "a", 10, 1);
  InsertAccount(db_.get(), 2, "b", 30, 1);
  InsertAccount(db_.get(), 3, "c", 20, 2);
  auto agg = [&](AggKind kind) {
    return ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                     .Agg(kind, AccountsCol::kBalance))
        .rows[0][0];
  };
  EXPECT_EQ(agg(AggKind::kCount), Value(int64_t{3}));
  EXPECT_EQ(agg(AggKind::kSum), Value(int64_t{60}));
  EXPECT_EQ(agg(AggKind::kMin), Value(int64_t{10}));
  EXPECT_EQ(agg(AggKind::kMax), Value(int64_t{30}));
  EXPECT_EQ(agg(AggKind::kAvg), Value(20.0));
}

TEST_F(DbBasicTest, AggregatesOnEmptyInput) {
  auto agg = [&](AggKind kind) {
    return ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                     .Agg(kind, AccountsCol::kBalance))
        .rows[0][0];
  };
  EXPECT_EQ(agg(AggKind::kCount), Value(int64_t{0}));
  EXPECT_TRUE(agg(AggKind::kSum).is_null());
  EXPECT_TRUE(agg(AggKind::kMin).is_null());
  EXPECT_TRUE(agg(AggKind::kAvg).is_null());
}

TEST_F(DbBasicTest, GroupByAggregate) {
  InsertAccount(db_.get(), 1, "a", 10, 1);
  InsertAccount(db_.get(), 2, "b", 30, 1);
  InsertAccount(db_.get(), 3, "c", 20, 2);
  QueryResult r = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                            .Agg(AggKind::kSum, AccountsCol::kBalance)
                                            .GroupBy(AccountsCol::kBranch));
  ASSERT_EQ(r.rows.size(), 2u);  // groups come out in key order
  EXPECT_EQ(r.rows[0], (Row{Value(int64_t{1}), Value(int64_t{40})}));
  EXPECT_EQ(r.rows[1], (Row{Value(int64_t{2}), Value(int64_t{20})}));
}

TEST_F(DbBasicTest, OrderByLimitOffset) {
  for (int64_t i = 0; i < 6; ++i) {
    InsertAccount(db_.get(), i, "o", 100 - i);
  }
  QueryResult r = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                            .SortBy(AccountsCol::kBalance, /*descending=*/true)
                                            .Limit(2, 1)
                                            .Project({AccountsCol::kId}));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{1, 2}));
}

TEST_F(DbBasicTest, OffsetPastEndYieldsEmpty) {
  InsertAccount(db_.get(), 1, "a", 1);
  QueryResult r = ReadLatest(
      db_.get(), Query::From(AccessPath::SeqScan(kAccounts)).Limit(5, 100));
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(DbBasicTest, MultiKeyOrderBy) {
  InsertAccount(db_.get(), 1, "a", 10, 2);
  InsertAccount(db_.get(), 2, "b", 10, 1);
  InsertAccount(db_.get(), 3, "c", 5, 9);
  QueryResult r = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                            .SortBy(AccountsCol::kBalance)
                                            .SortBy(AccountsCol::kBranch)
                                            .Project({AccountsCol::kId}));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{3, 2, 1}));
}

TEST_F(DbBasicTest, ProjectionOutOfRangeIsError) {
  InsertAccount(db_.get(), 1, "a", 1);
  auto txn = db_->BeginReadOnly();
  ASSERT_TRUE(txn.ok());
  auto r = db_->Execute(txn.value(),
                        Query::From(AccessPath::SeqScan(kAccounts)).Project({99}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  db_->Commit(txn.value());
}

TEST_F(DbBasicTest, JoinViaIndex) {
  ASSERT_TRUE(db_->CreateTable(TableSchema{"branches",
                                           {{"id", ValueType::kInt, false},
                                            {"city", ValueType::kString, false}}})
                  .ok());
  ASSERT_TRUE(db_->CreateIndex(IndexSchema{"branches_pk", "branches", {0}, true}).ok());
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, "branches", Row{Value(int64_t{1}), Value("boston")}).ok());
  ASSERT_TRUE(db_->Insert(txn, "branches", Row{Value(int64_t{2}), Value("nyc")}).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  InsertAccount(db_.get(), 10, "alice", 100, 1);
  InsertAccount(db_.get(), 11, "bob", 50, 2);
  InsertAccount(db_.get(), 12, "carol", 70, 1);

  constexpr uint32_t kCity = AccountsCol::kCount + 1;
  QueryResult r = ReadLatest(db_.get(),
                             Query::From(AccessPath::SeqScan(kAccounts))
                                 .Join(JoinStep{"branches", "branches_pk",
                                                {AccountsCol::kBranch}, nullptr})
                                 .SortBy(AccountsCol::kId)
                                 .Project({AccountsCol::kId, kCity}));
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "boston");
  EXPECT_EQ(r.rows[1][1].AsString(), "nyc");
  EXPECT_EQ(r.rows[2][1].AsString(), "boston");
}

TEST_F(DbBasicTest, JoinWithResidualPredicate) {
  ASSERT_TRUE(db_->CreateTable(TableSchema{"branches",
                                           {{"id", ValueType::kInt, false},
                                            {"city", ValueType::kString, false}}})
                  .ok());
  ASSERT_TRUE(db_->CreateIndex(IndexSchema{"branches_pk", "branches", {0}, true}).ok());
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, "branches", Row{Value(int64_t{1}), Value("boston")}).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  InsertAccount(db_.get(), 10, "alice", 100, 1);
  constexpr uint32_t kCity = AccountsCol::kCount + 1;
  QueryResult r = ReadLatest(
      db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                     .Join(JoinStep{"branches", "branches_pk", {AccountsCol::kBranch},
                                    PEq(kCity, Value("nowhere"))}));
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(DbBasicTest, JoinDanglingForeignKeyDropsRow) {
  ASSERT_TRUE(db_->CreateTable(TableSchema{"branches",
                                           {{"id", ValueType::kInt, false},
                                            {"city", ValueType::kString, false}}})
                  .ok());
  ASSERT_TRUE(db_->CreateIndex(IndexSchema{"branches_pk", "branches", {0}, true}).ok());
  InsertAccount(db_.get(), 10, "alice", 100, 77);  // branch 77 does not exist
  QueryResult r = ReadLatest(
      db_.get(),
      Query::From(AccessPath::SeqScan(kAccounts))
          .Join(JoinStep{"branches", "branches_pk", {AccountsCol::kBranch}, nullptr}));
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(DbBasicTest, UpdateChangesVisibleRow) {
  InsertAccount(db_.get(), 1, "alice", 100);
  UpdateBalance(db_.get(), 1, 250);
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 250);
}

TEST_F(DbBasicTest, UpdateValidatesColumnsAndTypes) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  EXPECT_FALSE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                           {{99, Value(int64_t{1})}})
                   .ok());
  EXPECT_FALSE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                           {{AccountsCol::kBalance, Value("not-an-int")}})
                   .ok());
  db_->Abort(txn);
}

TEST_F(DbBasicTest, DeleteRemovesRow) {
  InsertAccount(db_.get(), 1, "alice", 100);
  DeleteAccount(db_.get(), 1);
  EXPECT_TRUE(ReadLatest(db_.get(), AccountById(1)).rows.empty());
}

TEST_F(DbBasicTest, UpdateIsVisibleThroughSecondaryIndexes) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kOwner, Value("renamed")}})
                  .ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  QueryResult by_new = ReadLatest(
      db_.get(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("renamed")})));
  EXPECT_EQ(by_new.rows.size(), 1u);
  QueryResult by_old = ReadLatest(
      db_.get(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")})));
  EXPECT_TRUE(by_old.rows.empty());
}

TEST_F(DbBasicTest, UniqueConstraintEnforced) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  EXPECT_EQ(db_->Insert(txn, kAccounts, Account(1, "dup", 0)).code(), StatusCode::kConflict);
  db_->Abort(txn);
}

TEST_F(DbBasicTest, UniqueSlotReusableAfterDelete) {
  InsertAccount(db_.get(), 1, "alice", 100);
  DeleteAccount(db_.get(), 1);
  InsertAccount(db_.get(), 1, "alice-2", 5);
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kOwner].AsString(), "alice-2");
}

TEST_F(DbBasicTest, DeleteThenReinsertInSameTxn) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Delete(txn, kAccounts, AccountById(1).from, nullptr).ok());
  ASSERT_TRUE(db_->Insert(txn, kAccounts, Account(1, "reborn", 1)).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kOwner].AsString(), "reborn");
}

TEST_F(DbBasicTest, ListIndexesReturnsCatalog) {
  auto indexes = db_->ListIndexes(kAccounts);
  ASSERT_EQ(indexes.size(), 3u);
  EXPECT_EQ(indexes[0].name, kAccountsPk);
  EXPECT_TRUE(indexes[0].unique);
  EXPECT_FALSE(indexes[1].unique);
  EXPECT_TRUE(db_->ListIndexes("no_such_table").empty());
}

TEST_F(DbBasicTest, UpdateWithEmptySetsIsHarmless) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  auto n = db_->Update(txn, kAccounts, AccountById(1).from, nullptr, {});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1u) << "matched one row, changed nothing";
  ASSERT_TRUE(db_->Commit(txn).ok());
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 100);
}

TEST_F(DbBasicTest, UpdateMatchingNothingAffectsNothing) {
  TxnId txn = db_->BeginReadWrite();
  auto n = db_->Update(txn, kAccounts, AccountById(42).from, nullptr,
                       {{AccountsCol::kBalance, Value(int64_t{1})}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  // A write-free transaction commits without consuming a timestamp.
  Timestamp before = db_->LatestCommitTs();
  ASSERT_TRUE(db_->Commit(txn).ok());
  EXPECT_EQ(db_->LatestCommitTs(), before);
}

TEST_F(DbBasicTest, AggregateIgnoresProjection) {
  InsertAccount(db_.get(), 1, "a", 10);
  InsertAccount(db_.get(), 2, "b", 20);
  QueryResult r = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                            .Project({AccountsCol::kOwner})
                                            .Agg(AggKind::kSum, AccountsCol::kBalance));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 30) << "aggregates shape the output; projection is moot";
}

TEST_F(DbBasicTest, StatsAccumulate) {
  InsertAccount(db_.get(), 1, "alice", 100);
  ReadLatest(db_.get(), AccountById(1));
  DatabaseStats s = db_->stats();
  EXPECT_GE(s.inserts, 1u);
  EXPECT_GE(s.queries, 1u);
  EXPECT_GE(s.commits, 2u);
}

TEST_F(DbBasicTest, ApproximateDataBytesGrows) {
  size_t before = db_->ApproximateDataBytes();
  InsertAccount(db_.get(), 1, "alice", 100);
  EXPECT_GT(db_->ApproximateDataBytes(), before);
}

}  // namespace
}  // namespace txcache
