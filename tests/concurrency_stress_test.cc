// Multithreaded stress tests: the database, cache servers, bus and pincushion are shared,
// mutex-protected components; clients are per-thread. These tests hammer them from real threads
// and assert the same invariants the single-threaded property tests check.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/cacheable_function.h"
#include "src/util/rng.h"
#include "src/core/txcache_client.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

TEST(ConcurrencyStress, DatabaseParallelTransfersConserveTotal) {
  SystemClock clock;
  Database db(&clock);
  CreateAccountsTable(&db);
  constexpr int64_t kNumAccounts = 16;
  constexpr int64_t kInitial = 1000;
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    InsertAccount(&db, i, "o" + std::to_string(i), kInitial);
  }

  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 300;
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &conflicts, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const int64_t from = rng.Uniform(0, kNumAccounts - 1);
        int64_t to = rng.Uniform(0, kNumAccounts - 1);
        if (to == from) {
          to = (to + 1) % kNumAccounts;
        }
        const int64_t amount = rng.Uniform(1, 20);
        TxnId txn = db.BeginReadWrite();
        auto read = [&](int64_t id) -> int64_t {
          auto r = db.Execute(txn, AccountById(id));
          return r.ok() && !r.value().rows.empty()
                     ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                     : -1;
        };
        const int64_t from_balance = read(from);
        const int64_t to_balance = read(to);
        // Widen the read-modify-write race window: on a single-core host the scheduler can
        // otherwise run entire transactions back to back and never produce a conflict.
        std::this_thread::yield();
        auto u1 = db.Update(txn, kAccounts, AccountById(from).from, nullptr,
                            {{AccountsCol::kBalance, Value(from_balance - amount)}});
        if (!u1.ok()) {
          db.Abort(txn);
          ++conflicts;
          continue;
        }
        auto u2 = db.Update(txn, kAccounts, AccountById(to).from, nullptr,
                            {{AccountsCol::kBalance, Value(to_balance + amount)}});
        if (!u2.ok()) {
          db.Abort(txn);
          ++conflicts;
          continue;
        }
        if (!db.Commit(txn).ok()) {
          ++conflicts;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Money conservation: concurrent transfers with first-committer-wins must keep the total.
  QueryResult sum = ReadLatest(&db, Query::From(AccessPath::SeqScan(kAccounts))
                                        .Agg(AggKind::kSum, AccountsCol::kBalance));
  EXPECT_EQ(sum.rows[0][0].AsInt(), kNumAccounts * kInitial)
      << "lost or created money under concurrency (conflicts=" << conflicts.load() << ")";
  // Some contention must actually have happened for this test to mean anything.
  EXPECT_GT(conflicts.load(), 0);
  db.Vacuum();
  QueryResult again = ReadLatest(&db, Query::From(AccessPath::SeqScan(kAccounts))
                                          .Agg(AggKind::kSum, AccountsCol::kBalance));
  EXPECT_EQ(again.rows[0][0].AsInt(), kNumAccounts * kInitial);
}

TEST(ConcurrencyStress, CacheServerParallelOpsKeepAccounting) {
  SystemClock clock;
  CacheServer::Options options;
  // Small enough that the ~200-key working set cannot fit even one version per key, so
  // capacity evictions are guaranteed regardless of how interval dedup falls out.
  options.capacity_bytes = 32 * 1024;
  CacheServer server("stress", &clock, options);
  std::atomic<uint64_t> seqno{1};
  std::atomic<bool> stop_stats{false};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &seqno, t] {
      Rng rng(77 + t);
      for (int i = 0; i < 2000; ++i) {
        const int op = static_cast<int>(rng.Uniform(0, 2));
        if (op == 0) {
          InsertRequest req;
          req.key = "k" + std::to_string(rng.Uniform(0, 200));
          req.value = std::string(static_cast<size_t>(rng.Uniform(16, 256)), 'v');
          Timestamp lower = static_cast<Timestamp>(rng.Uniform(1, 500));
          req.interval = {lower, rng.Bernoulli(0.5) ? kTimestampInfinity : lower + 10};
          req.computed_at = lower;
          req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 20)))};
          req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(0, 3000));
          server.Insert(req);
        } else if (op == 1) {
          LookupRequest req;
          req.key = "k" + std::to_string(rng.Uniform(0, 200));
          req.bounds_lo = static_cast<Timestamp>(rng.Uniform(0, 500));
          req.bounds_hi = req.bounds_lo + 20;
          LookupResponse resp = server.Lookup(req);
          if (resp.hit) {
            // Effective interval must always overlap what we asked for.
            ASSERT_TRUE(resp.interval.Overlaps(Interval{req.bounds_lo, req.bounds_hi + 1}));
          }
        } else {
          InvalidationMessage msg;
          msg.seqno = seqno.fetch_add(1);
          msg.ts = 500 + msg.seqno;
          msg.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 20)))};
          server.Deliver(msg);
        }
      }
    });
  }
  // Stats reader: the eviction/admission counters are node-level atomics and the per-function
  // profiles sit behind their own mutex precisely so this thread is race-free (TSan-checked)
  // while the workers hammer Insert/EvictToFit.
  std::thread stats_reader([&server, &stop_stats] {
    uint64_t last_reclaimed = 0;
    while (!stop_stats.load()) {
      CacheStats s = server.stats();
      ASSERT_GE(s.eviction_bytes_reclaimed, last_reclaimed) << "reclaimed bytes are monotone";
      last_reclaimed = s.eviction_bytes_reclaimed;
      ASSERT_GE(s.hits + s.misses(), s.hits);
      for (const FunctionStatsEntry& e : server.FunctionStats()) {
        ASSERT_FALSE(e.function.empty());
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) {
    t.join();
  }
  stop_stats.store(true);
  stats_reader.join();
  EXPECT_LE(server.bytes_used(), options.capacity_bytes);
  const CacheStats stats = server.stats();
  EXPECT_GT(stats.capacity_evictions(), 0u);
  EXPECT_GT(stats.eviction_bytes_reclaimed, 0u);
  // The lock-free node counter and the shard-derived per-kind counts agree at rest.
  EXPECT_EQ(server.capacity_eviction_count(), stats.capacity_evictions());
  server.Flush();
  EXPECT_EQ(server.bytes_used(), 0u);
  EXPECT_EQ(server.version_count(), 0u);
}

TEST(ConcurrencyStress, FullStackReadersAndWriters) {
  // The paper's deployment shape: many application servers sharing one database, cache fleet,
  // and pincushion. Each thread owns a client; the consistency invariant (transfer sum) must
  // hold for every read-only transaction no matter how reads split between cache and database.
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node_a("a", &clock), node_b("b", &clock);
  bus.Subscribe(&node_a);
  bus.Subscribe(&node_b);
  CacheCluster cluster;
  cluster.AddNode(&node_a);
  cluster.AddNode(&node_b);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  constexpr int64_t kPairs = 6;
  for (int64_t i = 0; i < kPairs * 2; ++i) {
    InsertAccount(&db, i, "o", 500);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::atomic<int> reads_done{0};

  // Writers: transfer within a pair (invariant: each pair sums to 1000).
  std::thread writer([&] {
    TxCacheClient client(&db, &pincushion, &cluster, &clock);
    Rng rng(5);
    while (!stop.load()) {
      const int64_t pair = rng.Uniform(0, kPairs - 1);
      const int64_t a = pair * 2, b = pair * 2 + 1;
      const int64_t amount = rng.Uniform(1, 50);
      if (!client.BeginRW().ok()) {
        continue;
      }
      auto read = [&](int64_t id) -> int64_t {
        auto r = client.ExecuteQuery(AccountById(id));
        return r.ok() && !r.value().rows.empty()
                   ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                   : -1;
      };
      int64_t av = read(a), bv = read(b);
      bool ok = client
                    .Update(kAccounts, AccountById(a).from, nullptr,
                            {{AccountsCol::kBalance, Value(av - amount)}})
                    .ok() &&
                client
                    .Update(kAccounts, AccountById(b).from, nullptr,
                            {{AccountsCol::kBalance, Value(bv + amount)}})
                    .ok();
      if (ok) {
        client.Commit();
      } else {
        client.Abort();
      }
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      TxCacheClient client(&db, &pincushion, &cluster, &clock);
      auto balance = client.MakeCacheable<int64_t, int64_t>(
          "bal" + std::to_string(t), [&client](int64_t id) -> int64_t {
            auto r = client.ExecuteQuery(AccountById(id));
            return r.ok() && !r.value().rows.empty()
                       ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                       : -1;
          });
      Rng rng(100 + t);
      while (reads_done.load() < 900) {
        const int64_t pair = rng.Uniform(0, kPairs - 1);
        if (!client.BeginRO(Seconds(1)).ok()) {
          continue;
        }
        const int64_t sum = balance(pair * 2) + balance(pair * 2 + 1);
        if (client.Commit().ok()) {
          if (sum != 1000) {
            ++violations;
          }
          ++reads_done;
        }
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(violations.load(), 0)
      << "a read-only transaction observed a torn transfer across cache/database";
  EXPECT_GE(reads_done.load(), 900);
}

TEST(ConcurrencyStress, InvalidationRacingInsertsLeavesNoStaleStillValidVersion) {
  // The §4.2 race, cross-shard edition: writers insert still-valid versions on every shard
  // while the invalidation stream truncates them. Whatever the interleaving, after a final
  // fence invalidation covering every tag, no version may claim validity at the fence
  // timestamp: a version was either truncated when its shard applied the message (it was
  // registered first) or bounded at insert time by the shard's invalidation history (the
  // message was recorded first). Batched MultiLookups run throughout to stress the grouped
  // per-shard locking.
  SystemClock clock;
  CacheServer::Options options;
  options.num_shards = 8;
  CacheServer server("race", &clock, options);
  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 400;
  constexpr int kGroups = 16;
  constexpr uint64_t kMessages = 600;
  std::atomic<Timestamp> published_ts{1000};
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&server, &published_ts, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        // Claim validity from the newest commit timestamp this writer has observed — the
        // racy approximation an application node would have.
        const Timestamp computed_at = published_ts.load(std::memory_order_relaxed);
        InsertRequest req;
        req.key = "w" + std::to_string(w) + "-" + std::to_string(i);
        req.value = std::to_string(computed_at);
        req.interval = {computed_at, kTimestampInfinity};
        req.computed_at = computed_at;
        req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(i % kGroups))};
        ASSERT_TRUE(server.Insert(req).ok());
      }
    });
  }
  std::thread invalidator([&server, &published_ts] {
    Rng rng(3);
    for (uint64_t seq = 1; seq <= kMessages; ++seq) {
      InvalidationMessage msg;
      msg.seqno = seq;
      msg.ts = published_ts.fetch_add(1, std::memory_order_relaxed) + 1;
      msg.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 15))),
                  InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 15)))};
      if (rng.Bernoulli(0.1)) {
        msg.tags.push_back(InvalidationTag::Wildcard("t"));
      }
      server.Deliver(msg);
    }
  });
  std::thread reader([&server, &stop_readers] {
    Rng rng(17);
    while (!stop_readers.load()) {
      MultiLookupRequest batch;
      for (int i = 0; i < 16; ++i) {
        LookupRequest req;
        req.key = "w" + std::to_string(rng.Uniform(0, kWriters - 1)) + "-" +
                  std::to_string(rng.Uniform(0, kKeysPerWriter - 1));
        req.bounds_lo = static_cast<Timestamp>(rng.Uniform(900, 1700));
        req.bounds_hi = req.bounds_lo + 40;
        batch.lookups.push_back(req);
      }
      MultiLookupResponse resp = server.MultiLookup(batch);
      for (size_t i = 0; i < batch.lookups.size(); ++i) {
        if (resp.responses[i].hit) {
          ASSERT_TRUE(resp.responses[i].interval.Overlaps(
              Interval{batch.lookups[i].bounds_lo, batch.lookups[i].bounds_hi + 1}));
        }
      }
    }
  });
  for (std::thread& t : writers) {
    t.join();
  }
  invalidator.join();
  stop_readers.store(true);
  reader.join();

  // Fence: one final message covering everything, at a timestamp beyond every insert.
  const Timestamp fence_ts = published_ts.load() + 10;
  InvalidationMessage fence;
  fence.seqno = kMessages + 1;
  fence.ts = fence_ts;
  fence.tags = {InvalidationTag::Wildcard("t")};
  server.Deliver(fence);

  // Nothing was computed at or after the fence, so nothing may claim validity there. A
  // version that slipped through the insert/invalidate race would surface here as a
  // still-valid hit whose value (its computed_at) predates the fence. Misses must be of the
  // "versions exist but none qualify" kinds — a compulsory miss would mean the key was never
  // actually inserted and the probe proved nothing.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      LookupRequest req;
      req.key = "w" + std::to_string(w) + "-" + std::to_string(i);
      req.bounds_lo = fence_ts;
      req.bounds_hi = kTimestampInfinity;
      LookupResponse resp = server.Lookup(req);
      ASSERT_FALSE(resp.hit) << "stale still-valid version survived the fence: key " << req.key
                             << " computed_at=" << resp.value_ref() << " fence=" << fence_ts;
      ASSERT_NE(resp.miss, MissKind::kCompulsory) << "key was never inserted: " << req.key;
    }
  }
  // The stream was fully applied in order (no gaps left behind).
  EXPECT_EQ(server.stats().invalidation_messages, kMessages + 1);
}

TEST(ConcurrencyStress, MembershipChurnUnderLoadStaysSoundAndRaceFree) {
  // Batched lookups, inserts and a live invalidation stream racing a churn thread that
  // crashes/rejoins nodes and resizes the ring in a loop. Run under TSan by scripts/check.sh:
  // the cluster's shared-mutex membership, the node-state machine and the join protocol must
  // be data-race-free, and every answered hit must still satisfy the bounds it was asked for.
  SystemClock clock;
  CacheServer::Options options;
  options.capacity_bytes = 256 * 1024;
  options.num_shards = 4;
  CacheServer n0("c0", &clock, options), n1("c1", &clock, options), n2("c2", &clock, options);
  CacheServer* nodes[3] = {&n0, &n1, &n2};
  InvalidationBus bus;
  CacheCluster cluster;
  for (CacheServer* n : nodes) {
    bus.Subscribe(n);
    cluster.AddNode(n);
  }
  std::atomic<bool> stop{false};
  std::atomic<Timestamp> published_ts{1000};

  constexpr int kWorkers = 3;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&cluster, &published_ts, w] {
      Rng rng(900 + w);
      for (int i = 0; i < 1500; ++i) {
        if (rng.Bernoulli(0.45)) {
          MultiLookupRequest batch;
          for (int k = 0; k < 8; ++k) {
            LookupRequest req;
            req.key = "k" + std::to_string(rng.Uniform(0, 150));
            req.bounds_lo = static_cast<Timestamp>(rng.Uniform(900, 1800));
            req.bounds_hi = req.bounds_lo + 40;
            batch.lookups.push_back(req);
          }
          auto resp_or = cluster.MultiLookup(batch);
          if (!resp_or.ok()) {
            continue;  // the churn thread emptied the ring for an instant
          }
          ASSERT_EQ(resp_or.value().responses.size(), batch.lookups.size());
          for (size_t k = 0; k < batch.lookups.size(); ++k) {
            const LookupResponse& r = resp_or.value().responses[k];
            if (r.hit) {
              ASSERT_TRUE(r.interval.Overlaps(
                  Interval{batch.lookups[k].bounds_lo, batch.lookups[k].bounds_hi + 1}));
            }
          }
        } else if (rng.Bernoulli(0.7)) {
          const Timestamp computed_at = published_ts.load(std::memory_order_relaxed);
          InsertRequest req;
          req.key = "k" + std::to_string(rng.Uniform(0, 150));
          req.value = std::string(static_cast<size_t>(rng.Uniform(16, 128)), 'v');
          req.interval = {computed_at, kTimestampInfinity};
          req.computed_at = computed_at;
          req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 15)))};
          InsertResponse resp = cluster.Insert(req);
          // Ok, declined (admission) and unavailable (churn) are all legitimate outcomes;
          // anything else is a bug surfaced by churn.
          ASSERT_TRUE(resp.status.ok() || resp.status.code() == StatusCode::kDeclined ||
                      resp.status.code() == StatusCode::kUnavailable)
              << resp.status.ToString();
        } else {
          LookupRequest req;
          req.key = "k" + std::to_string(rng.Uniform(0, 150));
          req.bounds_lo = static_cast<Timestamp>(rng.Uniform(900, 1800));
          req.bounds_hi = req.bounds_lo + 40;
          LookupResponse r = cluster.Lookup(req);
          if (r.hit) {
            ASSERT_TRUE(r.interval.Overlaps(Interval{req.bounds_lo, req.bounds_hi + 1}));
          }
        }
      }
    });
  }
  std::thread invalidator([&bus, &published_ts, &stop] {
    Rng rng(31);
    while (!stop.load()) {
      InvalidationMessage msg;
      msg.ts = published_ts.fetch_add(1, std::memory_order_relaxed) + 1;
      msg.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 15)))};
      bus.Publish(msg);
      std::this_thread::yield();
    }
  });
  std::thread churn([&cluster, &bus, &nodes, &stop] {
    Rng rng(47);
    for (int round = 0; !stop.load() && round < 200; ++round) {
      CacheServer* victim = nodes[round % 3];
      if (rng.Bernoulli(0.5)) {
        // Crash + rejoin: the node stays in the ring, its keys degrade to misses meanwhile.
        victim->Crash();
        std::this_thread::yield();
        ASSERT_TRUE(victim->Join(&bus).ok());
      } else {
        // Ring resize: leave, then rejoin through the join barrier and re-enter the ring.
        cluster.RemoveNode(victim->name());
        victim->Crash();
        std::this_thread::yield();
        ASSERT_TRUE(victim->Join(&bus).ok());
        cluster.AddNode(victim);
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& t : workers) {
    t.join();
  }
  stop.store(true);
  churn.join();
  invalidator.join();

  // Quiesce: every node rejoined and serving, membership restored, accounting intact.
  for (CacheServer* n : nodes) {
    ASSERT_TRUE(n->Join(&bus).ok());
    EXPECT_TRUE(n->serving());
    cluster.AddNode(n);  // no-op when still present
    EXPECT_LE(n->bytes_used(), options.capacity_bytes);
  }
  EXPECT_EQ(cluster.node_count(), 3u);
  const CacheStats total = cluster.TotalStats();
  EXPECT_EQ(total.hits + total.misses(), total.lookups)
      << "unavailable misses must stay consistent with the lookup count";
}

TEST(ConcurrencyStress, PincushionParallelAcquireRelease) {
  SystemClock clock;
  Database db(&clock);
  CreateAccountsTable(&db);
  InsertAccount(&db, 1, "a", 1);
  Pincushion pincushion(&db, &clock);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        PinnedSnapshot snap = db.Pin();
        pincushion.Register(PinInfo{snap.ts, snap.wallclock});
        auto pins = pincushion.AcquireFreshPins(Seconds(30));
        pincushion.Release(pins);
        pincushion.Release({PinInfo{snap.ts, snap.wallclock}});
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Everything is released: a sweep far in the future can unpin it all.
  for (int i = 0; i < 64 && db.pinned_snapshot_count() > 0; ++i) {
    pincushion.Sweep();
  }
  // (SystemClock time barely advanced, so pins may be too young to sweep; force via count.)
  SUCCEED();
}

TEST(ConcurrencyStress, ZeroCopyReadersStayStableUnderInvalidationEvictionAndDrain) {
  // The read fast path under fire (TSan-checked via scripts/check.sh): reader threads hammer
  // shared-lock lookups and hold on to the zero-copy aliases they get back, while a writer
  // forces capacity evictions, an invalidator truncates entries through the bus path, and a
  // stats thread drains the touch buffers via FunctionStats. Every held alias must stay
  // bitwise stable no matter what happened to its version after the hit — each key's value is
  // derived from the key, so any torn/recycled buffer is caught by content comparison.
  SystemClock clock;
  CacheServer::Options options;
  // Tight budget: the working set cannot fit, so evictions run continuously.
  options.capacity_bytes = 48 * 1024;
  options.num_shards = 4;
  options.touch_buffer_capacity = 32;  // overflow repeatedly: the drain repair path races too
  CacheServer server("zerocopy", &clock, options);
  std::atomic<uint64_t> seqno{1};
  std::atomic<bool> stop{false};

  constexpr int kKeys = 160;
  auto value_for = [](int key) {
    return "VAL(" + std::to_string(key) + ")" + std::string(240, static_cast<char>('a' + key % 23));
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&server, &value_for, t] {
      Rng rng(500 + t);
      // Held aliases deliberately outlive evictions of their versions.
      std::vector<std::pair<int, std::shared_ptr<const std::string>>> held;
      for (int i = 0; i < 4000; ++i) {
        const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
        LookupRequest req;
        req.key = "k" + std::to_string(key);
        req.bounds_lo = 1;
        req.bounds_hi = kTimestampInfinity;
        LookupResponse resp = server.Lookup(req);
        if (resp.hit) {
          ASSERT_EQ(*resp.value, value_for(key)) << "hit returned a foreign/torn buffer";
          if (held.size() < 64) {
            held.emplace_back(key, resp.value);
          }
        }
        if (held.size() >= 64 || (i % 512 == 511 && !held.empty())) {
          // Long after the hits (many evictions later), the aliases must be unchanged.
          for (const auto& [k, v] : held) {
            ASSERT_EQ(*v, value_for(k)) << "held alias mutated after eviction/invalidation";
          }
          held.clear();
        }
      }
    });
  }
  std::thread writer([&server, &value_for] {
    Rng rng(91);
    for (int i = 0; i < 6000; ++i) {
      const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
      InsertRequest req;
      req.key = "k" + std::to_string(key);
      req.value = value_for(key);
      req.interval = {1, kTimestampInfinity};
      req.computed_at = 1;
      req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(key % 12))};
      req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(0, 2000));
      Status st = server.Insert(req);
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDeclined) << st.ToString();
    }
  });
  std::thread invalidator([&server, &seqno, &stop] {
    Rng rng(13);
    while (!stop.load()) {
      InvalidationMessage msg;
      msg.seqno = seqno.fetch_add(1);
      // Timestamps below every insert's computed_at: truncation machinery runs (tag index,
      // policy demotion) but values stay servable, keeping the readers' hit rate high.
      msg.ts = msg.seqno;
      msg.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 11)))};
      server.Deliver(msg);
      std::this_thread::yield();
    }
  });
  std::thread stats_poller([&server, &stop] {
    while (!stop.load()) {
      CacheStats s = server.stats();
      ASSERT_LE(s.hits, s.lookups);
      (void)server.FunctionStats();  // exclusive-side drain racing the shared-side readers
      std::this_thread::yield();
    }
  });

  for (std::thread& t : readers) {
    t.join();
  }
  writer.join();
  stop.store(true);
  invalidator.join();
  stats_poller.join();

  // The byte budget held throughout and the accounting did not drift.
  EXPECT_LE(server.bytes_used(), options.capacity_bytes);
  const CacheStats s = server.stats();
  EXPECT_EQ(s.hits + s.misses(), s.lookups);
}

TEST(ConcurrencyStress, MultiMbInsertsRaceZeroCopyReadersAndSizeAwareAdmission) {
  // Size-aware admission under fire (TSan-checked via scripts/check.sh): writer threads pump
  // multi-MB values through the displacement-comparison path (shared-lock victim previews
  // racing inserts, evictions and invalidations on every shard) while small fills churn the
  // budget and zero-copy readers hold aliases of the big buffers across their evictions.
  // Every held multi-MB alias must stay bitwise stable, admission declines must never leak
  // partial state, and the byte budget and hit accounting must hold at the end.
  SystemClock clock;
  CacheServer::Options options;
  options.capacity_bytes = 16u << 20;
  options.num_shards = 2;  // 8 MB shard slices: a 2 MB value passes the 0.5 guard
  options.touch_buffer_capacity = 32;
  options.lifetime_min_samples = 1;  // invalidations teach lifetimes immediately
  options.ttl_expiry_slack = 1.0;
  options.sweep_interval_ops = 64;   // TTL demotion pass runs frequently
  CacheServer server("multimb-stress", &clock, options);
  std::atomic<uint64_t> seqno{1};
  std::atomic<bool> stop{false};

  constexpr int kBigKeys = 12;
  constexpr size_t kBigBytes = 2u << 20;
  constexpr int kSmallKeys = 200;
  auto big_value = [](int key) {
    std::string v = "BIG(" + std::to_string(key) + ")";
    v.resize(kBigBytes, static_cast<char>('A' + key % 23));
    return v;
  };
  auto small_value = [](int key) {
    return "small(" + std::to_string(key) + ")" +
           std::string(300, static_cast<char>('a' + key % 23));
  };
  // Expected contents, precomputed so reader-side comparison allocates nothing.
  std::vector<std::string> expected_big;
  for (int k = 0; k < kBigKeys; ++k) {
    expected_big.push_back(big_value(k));
  }

  std::vector<std::thread> big_writers;
  for (int t = 0; t < 2; ++t) {
    big_writers.emplace_back([&server, &big_value, t] {
      Rng rng(900 + t);
      for (int i = 0; i < 80; ++i) {
        const int key = static_cast<int>(rng.Uniform(0, kBigKeys - 1));
        InsertRequest req;
        req.key = "big-" + std::to_string(key);
        req.value = big_value(key);
        req.interval = {1, kTimestampInfinity};
        req.computed_at = 1;
        req.tags = {InvalidationTag::Concrete("t", "i", "big" + std::to_string(key % 4))};
        // Costs straddle the displacement break-even, so both admission outcomes race.
        req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(0, 4'000'000));
        Status st = server.Insert(req);
        ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDeclined ||
                    st.code() == StatusCode::kDeclinedTooLarge)
            << st.ToString();
      }
    });
  }
  std::thread small_writer([&server, &small_value] {
    Rng rng(77);
    for (int i = 0; i < 4000; ++i) {
      const int key = static_cast<int>(rng.Uniform(0, kSmallKeys - 1));
      InsertRequest req;
      req.key = "s" + std::to_string(key);
      req.value = small_value(key);
      req.interval = {1, kTimestampInfinity};
      req.computed_at = 1;
      req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(key % 12))};
      req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(0, 2000));
      Status st = server.Insert(req);
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDeclined ||
                  st.code() == StatusCode::kDeclinedTooLarge)
          << st.ToString();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&server, &expected_big, &small_value, t] {
      Rng rng(300 + t);
      std::vector<std::pair<int, std::shared_ptr<const std::string>>> held;
      for (int i = 0; i < 1500; ++i) {
        const bool big = rng.Bernoulli(0.3);
        const int key = static_cast<int>(
            rng.Uniform(0, big ? kBigKeys - 1 : kSmallKeys - 1));
        LookupRequest req;
        req.key = (big ? "big-" : "s") + std::to_string(key);
        req.bounds_lo = 1;
        req.bounds_hi = kTimestampInfinity;
        LookupResponse resp = server.Lookup(req);
        if (resp.hit) {
          if (big) {
            ASSERT_EQ(*resp.value, expected_big[key]) << "multi-MB hit returned torn bytes";
            if (held.size() < 8) {
              held.emplace_back(key, resp.value);  // outlives this version's eviction
            }
          } else {
            ASSERT_EQ(*resp.value, small_value(key));
          }
        }
        if (held.size() >= 8 || (i % 256 == 255 && !held.empty())) {
          for (const auto& [k, v] : held) {
            ASSERT_EQ(*v, expected_big[k]) << "held multi-MB alias mutated after eviction";
          }
          held.clear();
        }
      }
    });
  }
  std::thread invalidator([&server, &seqno, &stop] {
    Rng rng(13);
    while (!stop.load()) {
      InvalidationMessage msg;
      msg.seqno = seqno.fetch_add(1);
      msg.ts = msg.seqno;  // below computed_at: machinery runs, values stay servable
      msg.tags = {rng.Bernoulli(0.3)
                      ? InvalidationTag::Concrete("t", "i",
                                                  "big" + std::to_string(rng.Uniform(0, 3)))
                      : InvalidationTag::Concrete("t", "i",
                                                  std::to_string(rng.Uniform(0, 11)))};
      server.Deliver(msg);
      std::this_thread::yield();
    }
  });
  std::thread stats_poller([&server, &stop] {
    while (!stop.load()) {
      CacheStats s = server.stats();
      ASSERT_LE(s.hits, s.lookups);
      (void)server.FunctionStats();  // drains touch buffers + advisor snapshots concurrently
      std::this_thread::yield();
    }
  });

  for (std::thread& t : big_writers) {
    t.join();
  }
  small_writer.join();
  for (std::thread& t : readers) {
    t.join();
  }
  stop.store(true);
  invalidator.join();
  stats_poller.join();

  EXPECT_LE(server.bytes_used(), options.capacity_bytes);
  const CacheStats s = server.stats();
  EXPECT_EQ(s.hits + s.misses(), s.lookups);
}

TEST(ConcurrencyStress, EightHittersRaceEvictionInvalidationTtlDemotionAndDrainsOnOneShard) {
  // The EBR hit path at maximum contention on a SINGLE shard: eight hitter threads run
  // lock-free lookups (each writing only its own touch-buffer/stats stripe) while one writer
  // forces capacity evictions and touch-buffer drains, an invalidator truncates entries with
  // post-insert timestamps (so TTL learning observes real lifetimes and the sweep's demotion
  // pass runs), and a stats poller folds the striped counters. Everything a hitter touched —
  // flat-table slots, version arrays, versions, resident blocks — is freed only through the
  // EBR domain, so TSan/ASan verify the reclamation protocol and every held alias must stay
  // bitwise stable.
  SystemClock clock;
  CacheServer::Options options;
  options.num_shards = 1;  // all contention lands on one shard's structures
  options.capacity_bytes = 48 * 1024;
  options.touch_buffer_capacity = 32;  // per-stripe; small enough to overflow under 8 hitters
  options.sweep_interval_ops = 64;     // TTL demotion pass fires often
  options.lifetime_min_samples = 1;
  options.ttl_expiry_slack = 0.5;
  CacheServer server("onehot", &clock, options);
  std::atomic<uint64_t> seqno{1};
  std::atomic<bool> stop{false};

  constexpr int kKeys = 96;
  auto key_for = [](int key) {
    return MakeCacheKey("hot_fn" + std::to_string(key % 7), static_cast<int64_t>(key));
  };
  auto value_for = [](int key) {
    return "HOT(" + std::to_string(key) + ")" + std::string(200, static_cast<char>('A' + key % 19));
  };

  std::vector<std::thread> hitters;
  for (int t = 0; t < 8; ++t) {
    hitters.emplace_back([&server, &key_for, &value_for, t] {
      Rng rng(9100 + t);
      std::vector<std::pair<int, std::shared_ptr<const std::string>>> held;
      for (int i = 0; i < 3000; ++i) {
        const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
        LookupRequest req;
        req.key = key_for(key);
        req.key_hash = Fnv1a(req.key);  // hash-once: carried into the flat-table probe
        req.bounds_lo = 1;
        req.bounds_hi = kTimestampInfinity;
        LookupResponse resp = server.Lookup(req);
        if (resp.hit) {
          ASSERT_EQ(*resp.value, value_for(key)) << "hit returned a foreign/torn buffer";
          if (resp.tags != nullptr) {
            ASSERT_EQ(resp.tags->size(), 1u);
          }
          if (held.size() < 48) {
            held.emplace_back(key, resp.value);
          }
        }
        if (held.size() >= 48) {
          for (const auto& [k, v] : held) {
            ASSERT_EQ(*v, value_for(k)) << "held alias mutated after eviction/truncation";
          }
          held.clear();
        }
      }
    });
  }
  std::thread writer([&server, &key_for, &value_for] {
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
      const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
      InsertRequest req;
      req.key = key_for(key);
      req.key_hash = Fnv1a(req.key);
      req.value = value_for(key);
      req.interval = {1, kTimestampInfinity};
      req.computed_at = 1;
      req.tags = {InvalidationTag::Concrete("t", "i", std::to_string(key % 8))};
      req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(100, 3000));
      Status st = server.Insert(req);
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDeclined) << st.ToString();
    }
  });
  std::thread invalidator([&server, &seqno, &stop] {
    Rng rng(31);
    while (!stop.load()) {
      InvalidationMessage msg;
      msg.seqno = seqno.fetch_add(1);
      // Timestamps ABOVE every insert's computed_at: versions genuinely truncate, the
      // advisor observes realized lifetimes, and the stale-first/TTL machinery gets fed.
      msg.ts = 100 + msg.seqno;
      msg.tags = {InvalidationTag::Concrete("t", "i", std::to_string(rng.Uniform(0, 7)))};
      server.Deliver(msg);
      std::this_thread::yield();
    }
  });
  std::thread stats_poller([&server, &stop] {
    while (!stop.load()) {
      CacheStats s = server.stats();
      ASSERT_LE(s.hits, s.lookups);
      (void)server.FunctionStats();
      std::this_thread::yield();
    }
  });

  for (std::thread& t : hitters) {
    t.join();
  }
  writer.join();
  stop.store(true);
  invalidator.join();
  stats_poller.join();

  EXPECT_LE(server.bytes_used(), options.capacity_bytes);
  const CacheStats s = server.stats();
  EXPECT_EQ(s.hits + s.misses(), s.lookups);
  EXPECT_GT(s.invalidation_truncations, 0u) << "invalidator never bit: test exercised nothing";
}

}  // namespace
}  // namespace txcache
