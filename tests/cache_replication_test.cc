// Hot-key replication: the ring's replica-set resolution, the server's top-k hot-key export,
// the cluster's replica push + primary-first/failover routing, the no-stale-read guarantee
// across replicas racing truncations, and the client's per-node advisory-hint merge (the
// cross-node last-writer-wins regression).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"
#include "src/core/txcache_client.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

InsertRequest StillValidEntry(const std::string& key, const std::string& value,
                              const std::string& group, Timestamp computed_at = 1) {
  InsertRequest req;
  req.key = key;
  req.value = value;
  req.interval = {computed_at, kTimestampInfinity};
  req.computed_at = computed_at;
  req.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return req;
}

LookupRequest Probe(const std::string& key, Timestamp lo, Timestamp hi) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = lo;
  req.bounds_hi = hi;
  req.fresh_lo = lo;
  return req;
}

InvalidationMessage GroupInval(const std::string& group, Timestamp ts) {
  InvalidationMessage msg;
  msg.ts = ts;
  msg.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return msg;
}

// --- ring: replica-set resolution ----------------------------------------------

TEST(Replication, ReplicasForHashYieldsDistinctSuccessorsLedByThePrimary) {
  ConsistentHashRing ring(32);
  for (int n = 0; n < 5; ++n) {
    ASSERT_TRUE(ring.AddNode("n" + std::to_string(n)));
  }
  for (int k = 0; k < 200; ++k) {
    const uint64_t hash = Fnv1a("key" + std::to_string(k));
    std::vector<std::string> replicas = ring.ReplicasForHash(hash, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas.front(), ring.NodeForKey(hash).value())
        << "the replica set is led by the key's primary";
    std::set<std::string> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size()) << "replicas must be distinct nodes";
  }
  // Successor sets walk the ring, so different keys see different orderings overall.
  std::set<std::string> seconds;
  for (int k = 0; k < 200; ++k) {
    seconds.insert(ring.ReplicasForHash(Fnv1a("key" + std::to_string(k)), 2)[1]);
  }
  EXPECT_GT(seconds.size(), 1u) << "every key having the same successor is a degenerate ring";
}

TEST(Replication, ReplicasForHashClampsToMembershipAndHandlesEmptyRing) {
  ConsistentHashRing ring(8);
  EXPECT_TRUE(ring.ReplicasForHash(123, 2).empty());
  ASSERT_TRUE(ring.AddNode("a"));
  ASSERT_TRUE(ring.AddNode("b"));
  std::vector<std::string> all = ring.ReplicasForHash(Fnv1a("k"), 16);
  ASSERT_EQ(all.size(), 2u) << "R beyond the membership returns every node once";
  EXPECT_NE(all[0], all[1]);
  EXPECT_EQ(ring.ReplicasForHash(Fnv1a("k"), 0).size(), 0u);
}

// --- server: top-k hot-key export ----------------------------------------------

TEST(Replication, ExportHotKeysRanksByObservedTraffic) {
  ManualClock clock;
  CacheServer::Options options;
  options.hot_key_sample_interval = 1;  // sample every hit: deterministic sketch counts
  CacheServer node("n", &clock, options);
  ASSERT_TRUE(node.Insert(StillValidEntry("hot", "vh", "g")).ok());
  ASSERT_TRUE(node.Insert(StillValidEntry("warm", "vw", "g")).ok());
  ASSERT_TRUE(node.Insert(StillValidEntry("cold", "vc", "g")).ok());
  auto hammer = [&](const std::string& key, int times) {
    for (int i = 0; i < times; ++i) {
      ASSERT_TRUE(node.Lookup(Probe(key, 1, kTimestampInfinity)).hit);
    }
  };
  hammer("hot", 64);
  hammer("warm", 8);
  hammer("cold", 1);

  std::vector<InsertRequest> exported = node.ExportHotKeys(2);
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported[0].key, "hot") << "hottest first";
  EXPECT_EQ(exported[1].key, "warm");
  for (const InsertRequest& req : exported) {
    EXPECT_NE(req.key_hash, 0u) << "the carried hash spares replicas a rehash";
    EXPECT_EQ(req.interval.upper, kTimestampInfinity) << "still-valid entries re-open";
    EXPECT_FALSE(req.tags.empty()) << "tags must travel so replicas truncate on the stream";
  }

  // Harvest clears the sketch: with no further traffic a second export finds nothing.
  EXPECT_TRUE(node.ExportHotKeys(2).empty()) << "the sketch is a sliding window, not a log";
}

// --- cluster: replica push and failover routing ---------------------------------

struct ReplicatedFixture {
  ManualClock clock;
  InvalidationBus bus{4096};
  CacheCluster cluster;
  std::vector<std::unique_ptr<CacheServer>> nodes;
  CacheServer* primary = nullptr;

  explicit ReplicatedFixture(const std::string& key) {
    CacheServer::Options options;
    options.hot_key_sample_interval = 1;
    for (int n = 0; n < 3; ++n) {
      nodes.push_back(
          std::make_unique<CacheServer>("n" + std::to_string(n), &clock, options));
      bus.Subscribe(nodes.back().get());
      EXPECT_TRUE(cluster.AddNode(nodes.back().get()));
    }
    cluster.set_replication(2);
    EXPECT_TRUE(cluster.Insert(StillValidEntry(key, "val", "g")).status.ok());
    primary = cluster.NodeForKey(key).value();
    for (int i = 0; i < 32; ++i) {  // make the key register as hot on its primary
      EXPECT_TRUE(cluster.Lookup(Probe(key, 1, kTimestampInfinity)).hit);
    }
    cluster.ReplicateHotKeys(/*max_keys_per_node=*/8);
  }

  // The non-primary node holding a replica of `key` (exactly one with R=2 and 3 nodes).
  CacheServer* ReplicaHolding(const std::string& key) {
    for (auto& node : nodes) {
      if (node.get() != primary && node->Lookup(Probe(key, 1, kTimestampInfinity)).hit) {
        return node.get();
      }
    }
    return nullptr;
  }
};

TEST(Replication, ReplicateHotKeysPushesToRingSuccessors) {
  ReplicatedFixture fix("payload");
  EXPECT_GE(fix.cluster.replica_pushes(), 1u);
  CacheServer* replica = fix.ReplicaHolding("payload");
  ASSERT_NE(replica, nullptr) << "a ring successor must now hold the hot key";
  LookupResponse direct = replica->Lookup(Probe("payload", 1, kTimestampInfinity));
  ASSERT_TRUE(direct.hit);
  EXPECT_EQ(direct.value_ref(), "val");
}

TEST(Replication, LookupFailsOverToAReplicaWhenThePrimaryIsDown) {
  ReplicatedFixture fix("payload");
  CacheServer* replica = fix.ReplicaHolding("payload");
  ASSERT_NE(replica, nullptr);

  fix.primary->Crash();
  LookupResponse resp = fix.cluster.Lookup(Probe("payload", 1, kTimestampInfinity));
  ASSERT_TRUE(resp.hit) << "the replica must absorb the primary's outage";
  EXPECT_EQ(resp.value_ref(), "val");
  EXPECT_EQ(resp.served_by, replica->name());
  EXPECT_GE(fix.cluster.replica_redirects(), 1u);

  // Batched path fails over too.
  MultiLookupRequest batch;
  batch.lookups.push_back(Probe("payload", 1, kTimestampInfinity));
  auto multi = fix.cluster.MultiLookup(batch);
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(multi.value().responses[0].hit);
  EXPECT_EQ(multi.value().responses[0].served_by, replica->name());
}

TEST(Replication, WithoutReplicationAPrimaryOutageStaysAMiss) {
  // Guard the default: R=1 keeps the old contract (kNodeUnavailable, no secret failover).
  ManualClock clock;
  CacheServer a("a", &clock), b("b", &clock);
  CacheCluster cluster;
  cluster.AddNode(&a);
  cluster.AddNode(&b);
  ASSERT_TRUE(cluster.Insert(StillValidEntry("k", "v", "g")).status.ok());
  cluster.NodeForKey("k").value()->Crash();
  LookupResponse resp = cluster.Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kNodeUnavailable);
  EXPECT_EQ(cluster.replica_redirects(), 0u);
}

TEST(Replication, ReplicaNeverServesStaleReadsAcrossTruncations) {
  // The race the design must win: a replica receives a pushed copy, then the entry's group is
  // invalidated. Because every node subscribes to the same bus, the replica truncates on the
  // same stream as the primary — so when the primary then crashes, the failover read at fresh
  // bounds must MISS, never serve the pre-invalidation value.
  ReplicatedFixture fix("payload");
  ASSERT_NE(fix.ReplicaHolding("payload"), nullptr);

  fix.bus.Publish(GroupInval("g", 50));
  fix.primary->Crash();

  LookupResponse fresh = fix.cluster.Lookup(Probe("payload", 50, kTimestampInfinity));
  EXPECT_FALSE(fresh.hit) << "replica served a value its own stream already invalidated";
  // The replica still answers the pre-invalidation window — failover is not a flush.
  LookupResponse old_window = fix.cluster.Lookup(Probe("payload", 1, 49));
  ASSERT_TRUE(old_window.hit);
  EXPECT_EQ(old_window.value_ref(), "val");
  EXPECT_LE(old_window.interval.upper, 50);
}

// --- background replication cadence (no driver pumping) --------------------------

TEST(Replication, AutoReplicationFiresFromTheDeliverTailWithoutPumping) {
  // Regression for the driver-pumped design: replication used to happen only when some caller
  // invoked ReplicateHotKeys() by hand. With EnableAutoReplication the hook fires from the
  // Deliver tail every Options::replication_interval_messages applied invalidations — the same
  // cadence shape as snapshot persistence — so ordinary invalidation traffic alone must push
  // hot keys to their ring successors.
  ManualClock clock;
  InvalidationBus bus{4096};
  CacheCluster cluster;
  CacheServer::Options options;
  options.hot_key_sample_interval = 1;
  options.replication_interval_messages = 4;
  std::vector<std::unique_ptr<CacheServer>> nodes;
  for (int n = 0; n < 3; ++n) {
    nodes.push_back(std::make_unique<CacheServer>("n" + std::to_string(n), &clock, options));
    bus.Subscribe(nodes.back().get());
    ASSERT_TRUE(cluster.AddNode(nodes.back().get()));
  }
  cluster.set_replication(2);
  cluster.EnableAutoReplication(/*max_keys_per_node=*/8);

  ASSERT_TRUE(cluster.Insert(StillValidEntry("payload", "val", "g")).status.ok());
  CacheServer* primary = cluster.NodeForKey("payload").value();
  for (int i = 0; i < 32; ++i) {  // register the key as hot on its primary
    ASSERT_TRUE(cluster.Lookup(Probe("payload", 1, kTimestampInfinity)).hit);
  }

  // Ordinary invalidation traffic for an unrelated group. Note: NO ReplicateHotKeys call.
  for (Timestamp ts = 100; ts < 110; ++ts) {
    bus.Publish(GroupInval("unrelated", ts));
  }

  EXPECT_GE(cluster.replica_pushes(), 1u) << "the Deliver-tail cadence never fired";
  CacheServer* replica = nullptr;
  for (auto& node : nodes) {
    if (node.get() != primary && node->Lookup(Probe("payload", 1, kTimestampInfinity)).hit) {
      replica = node.get();
    }
  }
  ASSERT_NE(replica, nullptr) << "a ring successor must hold the hot key without pumping";

  // Disabling detaches the hooks: further traffic pushes nothing new.
  cluster.EnableAutoReplication(0);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cluster.Lookup(Probe("payload", 1, kTimestampInfinity)).hit);
  }
  const uint64_t pushes_at_disable = cluster.replica_pushes();
  for (Timestamp ts = 200; ts < 210; ++ts) {
    bus.Publish(GroupInval("unrelated", ts));
  }
  EXPECT_EQ(cluster.replica_pushes(), pushes_at_disable);
}

TEST(Replication, AutoReplicationCoversLateJoiningNodes) {
  // A node added AFTER EnableAutoReplication must get the hook too: hot keys whose primary is
  // the newcomer replicate on its own invalidation cadence.
  ManualClock clock;
  InvalidationBus bus{4096};
  CacheCluster cluster;
  CacheServer::Options options;
  options.hot_key_sample_interval = 1;
  options.replication_interval_messages = 4;
  std::vector<std::unique_ptr<CacheServer>> nodes;
  for (int n = 0; n < 2; ++n) {
    nodes.push_back(std::make_unique<CacheServer>("n" + std::to_string(n), &clock, options));
    bus.Subscribe(nodes.back().get());
    ASSERT_TRUE(cluster.AddNode(nodes.back().get()));
  }
  cluster.set_replication(2);
  cluster.EnableAutoReplication(8);
  nodes.push_back(std::make_unique<CacheServer>("late", &clock, options));
  bus.Subscribe(nodes.back().get());
  ASSERT_TRUE(cluster.AddNode(nodes.back().get()));

  // Find a key the late node owns, make it hot there, then drive the bus cadence.
  std::string key;
  for (int i = 0; i < 512; ++i) {
    const std::string candidate = "k" + std::to_string(i);
    auto owner = cluster.NodeForKey(candidate);
    if (owner.ok() && owner.value() == nodes.back().get()) {
      key = candidate;
      break;
    }
  }
  ASSERT_FALSE(key.empty()) << "no key routed to the late node (degenerate ring)";
  ASSERT_TRUE(cluster.Insert(StillValidEntry(key, "lv", "g")).status.ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cluster.Lookup(Probe(key, 1, kTimestampInfinity)).hit);
  }
  for (Timestamp ts = 100; ts < 110; ++ts) {
    bus.Publish(GroupInval("unrelated", ts));
  }
  bool replicated = false;
  for (auto& node : nodes) {
    if (node.get() != nodes.back().get() &&
        node->Lookup(Probe(key, 1, kTimestampInfinity)).hit) {
      replicated = true;
    }
  }
  EXPECT_TRUE(replicated) << "the late joiner's hook never fired";
}

// --- client: per-node advisory-hint merge (cross-node regression) ---------------

TEST(Replication, ClientMergesHintsAcrossNodesInsteadOfLastWriterWins) {
  // Regression: ObserveHints used to overwrite the function's hints with whichever node
  // answered last. With replication (or any multi-node key space) consecutive responses come
  // from different nodes, so a healthy node's "all fine" response erased the overloaded
  // node's decline signal, and callers flapped. The merged view must keep the max decline
  // rate and weight the numeric estimates by each node's observed traffic.
  ManualClock clock;
  Database db(&clock);
  Pincushion pincushion(&db, &clock);
  CacheCluster cluster;
  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  const std::string function = "f";

  auto overloaded = std::make_shared<const AdvisoryHints>([] {
    AdvisoryHints h;
    h.decline_rate = 0.8;
    h.learned_lifetime_us = 1000;
    h.observed_bpb = 2.0;
    return h;
  }());
  auto healthy = std::make_shared<const AdvisoryHints>([] {
    AdvisoryHints h;
    h.decline_rate = 0.0;
    h.learned_lifetime_us = 5000;
    h.observed_bpb = 0.0;  // no estimate yet — must not drag the merged value to zero
    return h;
  }());

  // Three responses from the overloaded node, then ONE from the healthy node — last.
  for (int i = 0; i < 3; ++i) {
    client.ObserveHints("f(1)", &function, "node-a", overloaded);
  }
  client.ObserveHints("f(1)", &function, "node-b", healthy);

  auto merged = client.AdvisoryHintsFor(function);
  ASSERT_TRUE(merged.has_value());
  EXPECT_DOUBLE_EQ(merged->decline_rate, 0.8)
      << "the healthy node answering last must not erase the decline signal";
  // Traffic-weighted lifetime: (1000 * 3 + 5000 * 1) / 4.
  EXPECT_EQ(merged->learned_lifetime_us, 2000u);
  // Only node-a has a bpb estimate; node-b's zero means "unknown", not "zero benefit".
  EXPECT_DOUBLE_EQ(merged->observed_bpb, 2.0);

  // Same-node updates still refresh that node's bucket in place.
  auto recovered = std::make_shared<const AdvisoryHints>([] {
    AdvisoryHints h;
    h.decline_rate = 0.1;
    h.learned_lifetime_us = 1000;
    return h;
  }());
  client.ObserveHints("f(1)", &function, "node-a", recovered);
  merged = client.AdvisoryHintsFor(function);
  ASSERT_TRUE(merged.has_value());
  EXPECT_DOUBLE_EQ(merged->decline_rate, 0.1) << "node-a's newer state replaces its old one";
}

}  // namespace
}  // namespace txcache
