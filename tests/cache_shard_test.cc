// Tests for the sharded cache node: the stream sequencer, shard routing invariance, the
// batched MultiLookup path (server, cluster and client layers), and the per-shard-counter
// staleness sweep.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/bus/sequencer.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

InvalidationTag GroupTag(int64_t group) {
  return InvalidationTag::Concrete("t", "idx", "g" + std::to_string(group));
}

InvalidationMessage MakeMsg(uint64_t seqno, Timestamp ts, std::vector<InvalidationTag> tags) {
  InvalidationMessage msg;
  msg.seqno = seqno;
  msg.ts = ts;
  msg.tags = std::move(tags);
  return msg;
}

void ExpectSameResponse(const LookupResponse& a, const LookupResponse& b,
                        const std::string& context) {
  ASSERT_EQ(a.hit, b.hit) << context;
  EXPECT_EQ(a.miss, b.miss) << context;
  EXPECT_EQ(a.value_ref(), b.value_ref()) << context;
  EXPECT_EQ(a.interval, b.interval) << context;
  EXPECT_EQ(a.still_valid, b.still_valid) << context;
  EXPECT_EQ(a.tags_ref(), b.tags_ref()) << context;
}

// --- StreamSequencer ---------------------------------------------------------

TEST(StreamSequencer, DeliversInOrderAndBuffersGaps) {
  std::vector<uint64_t> applied;
  StreamSequencer seq([&](const InvalidationMessage& msg) { applied.push_back(msg.seqno); });
  seq.Deliver(MakeMsg(3, 30, {}));
  seq.Deliver(MakeMsg(2, 20, {}));
  EXPECT_TRUE(applied.empty());
  EXPECT_EQ(seq.reorder_buffered(), 2u);
  EXPECT_EQ(seq.pending(), 2u);
  seq.Deliver(MakeMsg(1, 10, {}));
  EXPECT_EQ(applied, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(seq.pending(), 0u);
  EXPECT_EQ(seq.next_expected_seqno(), 4u);
}

TEST(StreamSequencer, DropsDuplicates) {
  int applied = 0;
  StreamSequencer seq([&](const InvalidationMessage&) { ++applied; });
  seq.Deliver(MakeMsg(1, 10, {}));
  seq.Deliver(MakeMsg(1, 10, {}));
  seq.Deliver(MakeMsg(2, 20, {}));
  seq.Deliver(MakeMsg(2, 20, {}));
  EXPECT_EQ(applied, 2);
}

TEST(StreamSequencer, AdoptPositionSkipsForwardAndPrunesBuffer) {
  std::vector<uint64_t> applied;
  StreamSequencer seq([&](const InvalidationMessage& msg) { applied.push_back(msg.seqno); });
  seq.Deliver(MakeMsg(3, 30, {}));
  seq.Deliver(MakeMsg(5, 50, {}));
  seq.AdoptPosition(4);  // 3 is now stale; 5 still waits for 4
  EXPECT_EQ(seq.pending(), 1u);
  seq.Deliver(MakeMsg(4, 40, {}));
  EXPECT_EQ(applied, (std::vector<uint64_t>{4, 5}));
  seq.AdoptPosition(2);  // going backwards is ignored
  EXPECT_EQ(seq.next_expected_seqno(), 6u);
}

// --- MultiLookup equivalence -------------------------------------------------

TEST(CacheShard, MultiLookupMatchesSequentialLookups) {
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 8;
  CacheServer server("sharded", &clock, options);
  Rng rng(99);

  // A random population: some bounded, some still-valid, some invalidated afterwards.
  constexpr int kKeys = 64;
  uint64_t seqno = 1;
  for (int k = 0; k < kKeys; ++k) {
    InsertRequest req;
    req.key = "key" + std::to_string(k);
    req.value = "v" + std::to_string(k);
    Timestamp lower = static_cast<Timestamp>(rng.Uniform(1, 40));
    req.interval = {lower, rng.Bernoulli(0.5) ? kTimestampInfinity : lower + 10};
    req.computed_at = lower;
    req.tags = {GroupTag(k % 7)};
    ASSERT_TRUE(server.Insert(req).ok());
  }
  for (int i = 0; i < 10; ++i) {
    server.Deliver(MakeMsg(seqno, 50 + seqno, {GroupTag(rng.Uniform(0, 6))}));
    ++seqno;
  }

  // Batched responses must be byte-identical to issuing the same lookups one at a time.
  MultiLookupRequest batch;
  for (int probe = 0; probe < 200; ++probe) {
    LookupRequest req;
    req.key = "key" + std::to_string(rng.Uniform(0, kKeys + 5));  // includes unknown keys
    req.bounds_lo = static_cast<Timestamp>(rng.Uniform(0, 70));
    req.bounds_hi = rng.Bernoulli(0.3) ? kTimestampInfinity : req.bounds_lo + 15;
    req.fresh_lo = req.bounds_lo / 2;
    batch.lookups.push_back(req);
  }
  MultiLookupResponse batched = server.MultiLookup(batch);
  ASSERT_EQ(batched.responses.size(), batch.lookups.size());
  for (size_t i = 0; i < batch.lookups.size(); ++i) {
    LookupResponse single = server.Lookup(batch.lookups[i]);
    ExpectSameResponse(batched.responses[i], single,
                       "entry " + std::to_string(i) + " key=" + batch.lookups[i].key);
  }
  // The batch counted exactly one lookup per entry, like sequential calls would.
  EXPECT_EQ(server.stats().lookups, 2 * batch.lookups.size());
}

TEST(CacheShard, ShardCountDoesNotChangeVisibleState) {
  // The same operation sequence applied to nodes with 1, 3 and 16 shards must produce
  // identical lookup results everywhere: sharding is an internal concern.
  ManualClock clock;
  std::vector<std::unique_ptr<CacheServer>> servers;
  for (size_t shards : {size_t{1}, size_t{3}, size_t{16}}) {
    CacheOptions options;
    options.num_shards = shards;
    servers.push_back(
        std::make_unique<CacheServer>("s" + std::to_string(shards), &clock, options));
  }
  Rng rng(1234);
  uint64_t seqno = 1;
  Timestamp now_ts = 1;
  for (int step = 0; step < 500; ++step) {
    if (rng.Bernoulli(0.6)) {
      InsertRequest req;
      req.key = "k" + std::to_string(rng.Uniform(0, 30));
      req.value = "v" + std::to_string(step);
      Timestamp lower = static_cast<Timestamp>(rng.Uniform(
          static_cast<int64_t>(now_ts > 15 ? now_ts - 15 : 1), static_cast<int64_t>(now_ts)));
      req.interval = {lower, rng.Bernoulli(0.5) ? kTimestampInfinity : lower + 8};
      req.computed_at = lower;
      req.tags = {GroupTag(rng.Uniform(0, 4))};
      for (auto& server : servers) {
        ASSERT_TRUE(server->Insert(req).ok());
      }
    } else {
      InvalidationMessage msg = MakeMsg(seqno++, ++now_ts, {GroupTag(rng.Uniform(0, 4))});
      if (rng.Bernoulli(0.15)) {
        msg.tags.push_back(InvalidationTag::Wildcard("t"));
      }
      for (auto& server : servers) {
        server->Deliver(msg);
      }
    }
  }
  for (int k = 0; k < 31; ++k) {
    for (Timestamp lo = 0; lo < now_ts + 5; lo += 3) {
      LookupRequest req;
      req.key = "k" + std::to_string(k);
      req.bounds_lo = lo;
      req.bounds_hi = lo + 2;
      LookupResponse base = servers[0]->Lookup(req);
      for (size_t s = 1; s < servers.size(); ++s) {
        LookupResponse other = servers[s]->Lookup(req);
        ExpectSameResponse(base, other,
                           "key k" + std::to_string(k) + " lo=" + std::to_string(lo) +
                               " shards=" + servers[s]->name());
      }
    }
  }
  EXPECT_EQ(servers[0]->version_count(), servers[2]->version_count());
  EXPECT_EQ(servers[0]->bytes_used(), servers[2]->bytes_used());
}

// --- staleness sweep across shards -------------------------------------------

TEST(CacheShard, SkewedTrafficStillSweepsColdShards) {
  // Stale garbage parked in a cold shard must be collected even when every subsequent op
  // lands on other shards: the per-shard op counter fires, and the sweep covers all shards.
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 8;
  options.max_staleness = Seconds(30);
  options.sweep_interval_ops = 16;
  CacheServer server("sweeper", &clock, options);

  clock.Set(Seconds(100));
  // Place an entry, invalidate it (making it garbage), then drive traffic exclusively at
  // keys on *other* shards.
  const std::string cold_key = "cold";
  const size_t cold_shard = server.ShardIndexForKey(cold_key);
  InsertRequest req;
  req.key = cold_key;
  req.value = "v";
  req.interval = {5, kTimestampInfinity};
  req.computed_at = 5;
  req.tags = {GroupTag(1)};
  ASSERT_TRUE(server.Insert(req).ok());
  server.Deliver(MakeMsg(1, 40, {GroupTag(1)}));  // invalidated at wallclock 100 s

  clock.Set(Seconds(200));  // far beyond any staleness limit
  // Perfectly skewed traffic: every subsequent op lands on one single hot shard.
  const size_t hot_shard = (cold_shard + 1) % options.num_shards;
  int sent = 0;
  for (int i = 0; sent < 64; ++i) {
    std::string key = "hot" + std::to_string(i);
    if (server.ShardIndexForKey(key) != hot_shard) {
      continue;
    }
    InsertRequest hot;
    hot.key = key;
    hot.value = "h";
    hot.interval = {50, 60};
    ASSERT_TRUE(server.Insert(hot).ok());
    ++sent;
  }
  EXPECT_GE(server.stats().evictions_stale, 1u);
  LookupRequest probe;
  probe.key = cold_key;
  probe.bounds_lo = 10;
  probe.bounds_hi = 39;
  EXPECT_FALSE(server.Lookup(probe).hit) << "cold-shard garbage survived the sweep";
}

// --- cluster routing ----------------------------------------------------------

TEST(CacheCluster, MultiLookupRoutesAndReassembles) {
  ManualClock clock;
  CacheServer a("node-a", &clock), b("node-b", &clock), c("node-c", &clock);
  CacheCluster cluster;
  cluster.AddNode(&a);
  cluster.AddNode(&b);
  cluster.AddNode(&c);

  constexpr int kKeys = 40;
  for (int k = 0; k < kKeys; ++k) {
    InsertRequest req;
    req.key = "item" + std::to_string(k);
    req.value = "val" + std::to_string(k);
    req.interval = {1, kTimestampInfinity};
    req.computed_at = 1;
    auto node_or = cluster.NodeForKey(req.key);
    ASSERT_TRUE(node_or.ok());
    ASSERT_TRUE(node_or.value()->Insert(req).ok());
  }

  MultiLookupRequest batch;
  for (int k = 0; k < kKeys; ++k) {
    LookupRequest req;
    req.key = "item" + std::to_string(k);
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
    batch.lookups.push_back(req);
  }
  auto resp_or = cluster.MultiLookup(batch);
  ASSERT_TRUE(resp_or.ok());
  ASSERT_EQ(resp_or.value().responses.size(), batch.lookups.size());
  for (int k = 0; k < kKeys; ++k) {
    const LookupResponse& resp = resp_or.value().responses[k];
    ASSERT_TRUE(resp.hit) << "item" << k;
    EXPECT_EQ(resp.value_ref(), "val" + std::to_string(k));
    // Same answer as routing the key individually.
    auto node_or = cluster.NodeForKey(batch.lookups[k].key);
    ASSERT_TRUE(node_or.ok());
    ExpectSameResponse(resp, node_or.value()->Lookup(batch.lookups[k]),
                       "item" + std::to_string(k));
  }
  // Every node served its own keys; the batch did not funnel through one node.
  EXPECT_EQ(cluster.TotalStats().lookups, 2u * kKeys);

  CacheCluster empty;
  EXPECT_FALSE(empty.MultiLookup(batch).ok());
}

// --- client batched path -------------------------------------------------------

TEST(CacheShard, ClientBatchMatchesSequentialCallsAndBatchesRoundTrips) {
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node("cache", &clock);
  bus.Subscribe(&node);
  CacheCluster cluster;
  cluster.AddNode(&node);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  constexpr int64_t kNumAccounts = 12;
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    InsertAccount(&db, i, "o" + std::to_string(i), 100 + i);
  }

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto balance = client.MakeCacheable<int64_t, int64_t>("bal", [&client](int64_t id) -> int64_t {
    auto r = client.ExecuteQuery(AccountById(id));
    return r.ok() && !r.value().rows.empty() ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                                             : -1;
  });

  // Warm the cache with sequential calls in one transaction.
  ASSERT_TRUE(client.BeginRO().ok());
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    EXPECT_EQ(balance(i), 100 + i);
  }
  ASSERT_TRUE(client.Commit().ok());

  // A batched call in a fresh transaction: one MULTILOOKUP round-trip, same values.
  client.ResetStats();
  ASSERT_TRUE(client.BeginRO().ok());
  std::vector<std::tuple<int64_t>> calls;
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    calls.emplace_back(i);
  }
  std::vector<int64_t> values = balance.Batch(calls);
  ASSERT_TRUE(client.Commit().ok());
  ASSERT_EQ(values.size(), static_cast<size_t>(kNumAccounts));
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    EXPECT_EQ(values[i], 100 + i);
  }
  ClientStats stats = client.stats();
  EXPECT_EQ(stats.multi_lookup_batches, 1u);
  EXPECT_EQ(stats.multi_lookup_keys, static_cast<uint64_t>(kNumAccounts));
  EXPECT_EQ(stats.cache_hits, static_cast<uint64_t>(kNumAccounts));
  EXPECT_EQ(stats.cacheable_calls, static_cast<uint64_t>(kNumAccounts));
  EXPECT_EQ(stats.db_queries, 0u) << "a fully warm batch never touches the database";

  // Batched and sequential calls agree after a write invalidates part of the batch.
  ASSERT_TRUE(client.BeginRW().ok());
  ASSERT_TRUE(client
                  .Update(kAccounts, AccountById(3).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{999})}})
                  .ok());
  ASSERT_TRUE(client.Commit().ok());

  ASSERT_TRUE(client.BeginRO(Seconds(0)).ok());
  std::vector<int64_t> after = balance.Batch(calls);
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(after[3], 999);
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    if (i != 3) {
      EXPECT_EQ(after[i], 100 + i);
    }
  }

  // Outside a read-only transaction the batch degenerates to direct execution.
  ASSERT_TRUE(client.BeginRW().ok());
  std::vector<int64_t> rw = balance.Batch(calls);
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(rw[3], 999);
}

// --- MultiLookup edge cases ----------------------------------------------------

TEST(CacheShard, MultiLookupEmptyBatch) {
  ManualClock clock;
  CacheServer server("empty-batch", &clock);
  MultiLookupRequest empty;
  EXPECT_TRUE(server.MultiLookup(empty).responses.empty());
  EXPECT_EQ(server.stats().lookups, 0u);

  CacheCluster cluster;
  cluster.AddNode(&server);
  auto resp_or = cluster.MultiLookup(empty);
  ASSERT_TRUE(resp_or.ok()) << "an empty batch against a live cluster is a no-op, not an error";
  EXPECT_TRUE(resp_or.value().responses.empty());

  // Against an empty cluster even the empty batch reports the fleet as unavailable, matching
  // the single-key NodeForKey behavior.
  CacheCluster no_nodes;
  EXPECT_FALSE(no_nodes.MultiLookup(empty).ok());
}

TEST(CacheShard, MultiLookupAllMissBatchClassifiesEveryEntry) {
  ManualClock clock;
  CacheServer server("all-miss", &clock);
  // One key that exists but was evicted-to-empty is simulated via insert+flush? Flush drops
  // KeyEntries too, so instead: unknown keys only — every response must be a compulsory miss
  // with no payload, positionally aligned.
  MultiLookupRequest batch;
  for (int i = 0; i < 16; ++i) {
    LookupRequest req;
    req.key = "missing" + std::to_string(i);
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
    batch.lookups.push_back(req);
  }
  MultiLookupResponse resp = server.MultiLookup(batch);
  ASSERT_EQ(resp.responses.size(), batch.lookups.size());
  for (const LookupResponse& r : resp.responses) {
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.miss, MissKind::kCompulsory);
    EXPECT_TRUE(r.value_ref().empty());
  }
  EXPECT_EQ(server.stats().miss_compulsory, batch.lookups.size());
}

TEST(CacheCluster, MultiLookupWithOneNodeDownReroutesAndMisses) {
  ManualClock clock;
  CacheServer a("node-a", &clock), b("node-b", &clock);
  CacheCluster cluster;
  cluster.AddNode(&a);
  cluster.AddNode(&b);

  constexpr int kKeys = 32;
  int owned_by_b = 0;
  for (int k = 0; k < kKeys; ++k) {
    InsertRequest req;
    req.key = "item" + std::to_string(k);
    req.value = "val" + std::to_string(k);
    req.interval = {1, kTimestampInfinity};
    req.computed_at = 1;
    auto node_or = cluster.NodeForKey(req.key);
    ASSERT_TRUE(node_or.ok());
    ASSERT_TRUE(node_or.value()->Insert(req).ok());
    if (node_or.value() == &b) {
      ++owned_by_b;
    }
  }
  ASSERT_GT(owned_by_b, 0) << "test needs keys on both nodes";
  ASSERT_LT(owned_by_b, kKeys);

  // Node b goes down: the ring reroutes its arc to a. A cross-node batch must still succeed;
  // b's keys are compulsory misses on their new owner (the batch never touches b), a's keys
  // still hit.
  ASSERT_TRUE(cluster.RemoveNode("node-b"));
  MultiLookupRequest batch;
  for (int k = 0; k < kKeys; ++k) {
    LookupRequest req;
    req.key = "item" + std::to_string(k);
    req.bounds_lo = 1;
    req.bounds_hi = kTimestampInfinity;
    batch.lookups.push_back(req);
  }
  const uint64_t b_lookups_before = b.stats().lookups;
  auto resp_or = cluster.MultiLookup(batch);
  ASSERT_TRUE(resp_or.ok()) << "losing a node degrades hit rate, not availability";
  ASSERT_EQ(resp_or.value().responses.size(), batch.lookups.size());
  int hits = 0, misses = 0;
  for (int k = 0; k < kKeys; ++k) {
    const LookupResponse& r = resp_or.value().responses[k];
    if (r.hit) {
      ++hits;
      EXPECT_EQ(r.value_ref(), "val" + std::to_string(k));
    } else {
      ++misses;
      EXPECT_EQ(r.miss, MissKind::kCompulsory) << "rerouted key must miss compulsory on a";
    }
  }
  EXPECT_EQ(misses, owned_by_b);
  EXPECT_EQ(hits, kKeys - owned_by_b);
  EXPECT_EQ(b.stats().lookups, b_lookups_before) << "the downed node saw no traffic";
}

TEST(CacheShard, BatchMixingHitsAndMissesNarrowsPinSetLikeSequentialCalls) {
  // Pin-set narrowing when a batch mixes hits and misses: the hits narrow the pin set in
  // request order exactly as sequential lookups would, the misses recompute at the narrowed
  // snapshot, and the values the batch returns are mutually consistent.
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node("cache", &clock);
  bus.Subscribe(&node);
  CacheCluster cluster;
  cluster.AddNode(&node);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  constexpr int64_t kNumAccounts = 8;
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    InsertAccount(&db, i, "o" + std::to_string(i), 100 + i);
  }

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto balance = client.MakeCacheable<int64_t, int64_t>("mix", [&client](int64_t id) -> int64_t {
    auto r = client.ExecuteQuery(AccountById(id));
    return r.ok() && !r.value().rows.empty() ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                                             : -1;
  });

  // Warm only the even accounts.
  ASSERT_TRUE(client.BeginRO().ok());
  for (int64_t i = 0; i < kNumAccounts; i += 2) {
    EXPECT_EQ(balance(i), 100 + i);
  }
  ASSERT_TRUE(client.Commit().ok());

  // Invalidate account 2, so its cached version's interval is closed: the batch sees hits
  // (0,4,6), a consistency/staleness-classified miss (2) and compulsory misses (odds).
  ASSERT_TRUE(client.BeginRW().ok());
  ASSERT_TRUE(client
                  .Update(kAccounts, AccountById(2).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{777})}})
                  .ok());
  ASSERT_TRUE(client.Commit().ok());

  client.ResetStats();
  ASSERT_TRUE(client.BeginRO(Seconds(0)).ok());
  std::vector<std::tuple<int64_t>> calls;
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    calls.emplace_back(i);
  }
  std::vector<int64_t> values = balance.Batch(calls);
  ASSERT_TRUE(client.pin_set().has_pins()) << "hits must have narrowed onto concrete pins";
  ASSERT_TRUE(client.Commit().ok());
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    EXPECT_EQ(values[i], i == 2 ? 777 : 100 + i) << "account " << i;
  }
  ClientStats stats = client.stats();
  EXPECT_EQ(stats.multi_lookup_batches, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, static_cast<uint64_t>(kNumAccounts));
  EXPECT_EQ(stats.cache_hits, 3u) << "even accounts hit except the invalidated one";
  EXPECT_EQ(stats.miss_compulsory, 4u) << "odd accounts were never cached";
  EXPECT_EQ(stats.cache_misses, 5u);
  // The recomputes ran at the snapshot the hits narrowed to (post-update), so the whole batch
  // is serializable at one timestamp — checked by the value assertions above.
}

}  // namespace
}  // namespace txcache
