#include "src/util/interval.h"

#include <gtest/gtest.h>

#include <random>

namespace txcache {
namespace {

TEST(Interval, DefaultIsAll) {
  Interval iv;
  EXPECT_EQ(iv.lower, kTimestampZero);
  EXPECT_TRUE(iv.unbounded());
  EXPECT_FALSE(iv.empty());
}

TEST(Interval, EmptyDetection) {
  EXPECT_TRUE(Interval::Empty().empty());
  EXPECT_TRUE((Interval{5, 5}).empty());
  EXPECT_TRUE((Interval{7, 3}).empty());
  EXPECT_FALSE((Interval{3, 4}).empty());
}

TEST(Interval, PointContainsExactlyOne) {
  Interval p = Interval::Point(10);
  EXPECT_FALSE(p.Contains(9));
  EXPECT_TRUE(p.Contains(10));
  EXPECT_FALSE(p.Contains(11));
}

TEST(Interval, ContainsHalfOpenSemantics) {
  Interval iv{10, 20};
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
}

TEST(Interval, UnboundedContainsLargeTimestamps) {
  Interval iv{10, kTimestampInfinity};
  EXPECT_TRUE(iv.Contains(1'000'000'000ull));
  EXPECT_TRUE(iv.unbounded());
}

TEST(Interval, IntersectOverlapping) {
  Interval a{5, 15}, b{10, 20};
  EXPECT_EQ(a.Intersect(b), (Interval{10, 15}));
  EXPECT_EQ(b.Intersect(a), (Interval{10, 15}));
}

TEST(Interval, IntersectDisjointIsEmpty) {
  Interval a{5, 10}, b{10, 20};  // touching: half-open => disjoint
  EXPECT_TRUE(a.Intersect(b).empty());
}

TEST(Interval, IntersectNested) {
  Interval a{0, 100}, b{40, 60};
  EXPECT_EQ(a.Intersect(b), b);
}

TEST(Interval, IntersectWithUnbounded) {
  Interval a{10, kTimestampInfinity}, b{5, 50};
  EXPECT_EQ(a.Intersect(b), (Interval{10, 50}));
}

TEST(Interval, OverlapsIsSymmetricAndHalfOpen) {
  Interval a{5, 10}, b{9, 12}, c{10, 12};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_FALSE(c.Overlaps(a));
}

TEST(Interval, ToStringForms) {
  EXPECT_EQ((Interval{3, 7}).ToString(), "[3, 7)");
  EXPECT_EQ((Interval{3, kTimestampInfinity}).ToString(), "[3, inf)");
  EXPECT_EQ(Interval::Empty().ToString(), "[empty)");
}

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(0));
}

TEST(IntervalSet, AddIgnoresEmpty) {
  IntervalSet s;
  s.Add(Interval::Empty());
  s.Add(Interval{5, 5});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, AddDisjointKeepsBoth) {
  IntervalSet s;
  s.Add({10, 20});
  s.Add({30, 40});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(15));
  EXPECT_FALSE(s.Contains(25));
  EXPECT_TRUE(s.Contains(35));
}

TEST(IntervalSet, AddMergesOverlapping) {
  IntervalSet s;
  s.Add({10, 20});
  s.Add({15, 30});
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSet, AddMergesAdjacent) {
  IntervalSet s;
  s.Add({10, 20});
  s.Add({20, 30});
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSet, AddBridgesMultiple) {
  IntervalSet s;
  s.Add({10, 20});
  s.Add({30, 40});
  s.Add({50, 60});
  s.Add({15, 55});  // swallows everything
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{10, 60}));
}

TEST(IntervalSet, AddInsertionOrderIrrelevant) {
  IntervalSet a, b;
  a.Add({10, 20});
  a.Add({5, 8});
  a.Add({30, 35});
  b.Add({30, 35});
  b.Add({10, 20});
  b.Add({5, 8});
  EXPECT_EQ(a, b);
}

TEST(IntervalSet, OverlapsQueries) {
  IntervalSet s;
  s.Add({10, 20});
  s.Add({30, 40});
  EXPECT_TRUE(s.Overlaps({15, 16}));
  EXPECT_TRUE(s.Overlaps({19, 31}));
  EXPECT_FALSE(s.Overlaps({20, 30}));
  EXPECT_FALSE(s.Overlaps({0, 10}));
  EXPECT_FALSE(s.Overlaps(Interval::Empty()));
}

TEST(IntervalSet, MaximalGapAroundNoMask) {
  IntervalSet s;
  EXPECT_EQ(s.MaximalGapAround(50, {10, 100}), (Interval{10, 100}));
}

TEST(IntervalSet, MaximalGapAroundOutsideWithin) {
  IntervalSet s;
  EXPECT_TRUE(s.MaximalGapAround(5, {10, 100}).empty());
}

TEST(IntervalSet, MaximalGapAroundCoveredPoint) {
  IntervalSet s;
  s.Add({40, 60});
  EXPECT_TRUE(s.MaximalGapAround(50, {10, 100}).empty());
}

TEST(IntervalSet, MaximalGapAroundBothSides) {
  // Mask intervals on both sides of t: the gap is the open region between them (paper Fig. 4:
  // result validity minus invalidity mask, component containing the query timestamp).
  IntervalSet s;
  s.Add({10, 20});
  s.Add({60, 70});
  EXPECT_EQ(s.MaximalGapAround(40, {0, 100}), (Interval{20, 60}));
}

TEST(IntervalSet, MaximalGapAroundClampsToWithin) {
  IntervalSet s;
  s.Add({10, 20});
  EXPECT_EQ(s.MaximalGapAround(50, {30, 90}), (Interval{30, 90}));
  s.Add({80, 85});
  EXPECT_EQ(s.MaximalGapAround(50, {30, 90}), (Interval{30, 80}));
}

TEST(IntervalSet, MaximalGapAroundUnbounded) {
  IntervalSet s;
  s.Add({10, 20});
  Interval gap = s.MaximalGapAround(25, Interval::All());
  EXPECT_EQ(gap.lower, 20u);
  EXPECT_TRUE(gap.unbounded());
}

TEST(IntervalSet, CoveredCount) {
  IntervalSet s;
  s.Add({10, 20});
  s.Add({30, 35});
  EXPECT_EQ(s.CoveredCount(), 15u);
  s.Add({100, kTimestampInfinity});
  EXPECT_EQ(s.CoveredCount(), kTimestampInfinity);
}

// --- randomized property tests: IntervalSet vs a brute-force bitmap over a small domain ---

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, MatchesBruteForceBitmap) {
  constexpr Timestamp kDomain = 128;
  std::mt19937_64 rng(GetParam());
  IntervalSet s;
  std::vector<bool> bitmap(kDomain, false);
  for (int op = 0; op < 40; ++op) {
    Timestamp lo = rng() % kDomain;
    Timestamp hi = lo + rng() % (kDomain - lo + 1);
    s.Add({lo, hi});
    for (Timestamp t = lo; t < hi; ++t) {
      bitmap[t] = true;
    }
    for (Timestamp t = 0; t < kDomain; ++t) {
      ASSERT_EQ(s.Contains(t), bitmap[t]) << "t=" << t << " after adding [" << lo << "," << hi
                                          << ") set=" << s.ToString();
    }
  }
  // Disjointness + ordering structural invariants.
  const auto& ivs = s.intervals();
  for (size_t i = 0; i + 1 < ivs.size(); ++i) {
    ASSERT_LT(ivs[i].upper, ivs[i + 1].lower) << s.ToString();
  }
}

TEST_P(IntervalSetPropertyTest, MaximalGapMatchesBruteForce) {
  constexpr Timestamp kDomain = 96;
  std::mt19937_64 rng(GetParam() ^ 0xabcdef);
  IntervalSet s;
  std::vector<bool> bitmap(kDomain, false);
  for (int op = 0; op < 12; ++op) {
    Timestamp lo = rng() % kDomain;
    Timestamp hi = lo + rng() % (kDomain - lo + 1);
    s.Add({lo, hi});
    for (Timestamp t = lo; t < hi; ++t) {
      bitmap[t] = true;
    }
  }
  Interval within{rng() % 20, kDomain - rng() % 20};
  for (Timestamp t = 0; t < kDomain; ++t) {
    Interval gap = s.MaximalGapAround(t, within);
    if (!within.Contains(t) || bitmap[t]) {
      EXPECT_TRUE(gap.empty()) << "t=" << t;
      continue;
    }
    // Brute force: expand left/right from t through uncovered cells inside `within`.
    Timestamp lo = t;
    while (lo > within.lower && !bitmap[lo - 1]) {
      --lo;
    }
    Timestamp hi = t + 1;
    while (hi < within.upper && !bitmap[hi]) {
      ++hi;
    }
    EXPECT_EQ(gap, (Interval{lo, hi})) << "t=" << t << " set=" << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace txcache
