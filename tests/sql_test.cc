// SQL front end: lexer, parser, planner access-path selection, end-to-end execution, and
// integration with cacheable functions (SQL inside MAKE-CACHEABLE bodies).
#include <gtest/gtest.h>

#include "src/core/cacheable_function.h"
#include "src/sql/lexer.h"
#include "src/sql/session.h"
#include "tests/test_support.h"

namespace txcache::sql {
namespace {

using namespace txcache::testing;

// --- lexer ---

TEST(SqlLexer, TokenizesBasics) {
  auto tokens = Lex("SELECT id, balance FROM accounts WHERE owner = 'a''b' LIMIT 5;");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "ID");
  EXPECT_EQ(t[2].text, ",");
  EXPECT_EQ(t[8].text, "=");
  EXPECT_EQ(t[9].kind, TokenKind::kString);
  EXPECT_EQ(t[9].text, "a'b") << "'' unescapes to a single quote";
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(SqlLexer, NumbersAndOperators) {
  auto tokens = Lex("x >= -3.5 AND y <> 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].text, ">=");
  EXPECT_EQ(tokens.value()[2].text, "-3.5");
  EXPECT_EQ(tokens.value()[5].text, "!=") << "<> normalizes to !=";
}

TEST(SqlLexer, Errors) {
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT #").ok());
}

// --- parser ---

TEST(SqlParser, SelectShapes) {
  ASSERT_TRUE(Parse("SELECT * FROM accounts").ok());
  ASSERT_TRUE(Parse("SELECT id FROM accounts WHERE id = 1 AND balance > 5").ok());
  ASSERT_TRUE(Parse("SELECT COUNT(*) FROM accounts").ok());
  ASSERT_TRUE(Parse("SELECT branch, SUM(balance) FROM accounts GROUP BY branch").ok());
  ASSERT_TRUE(Parse("SELECT id FROM accounts ORDER BY balance DESC, id LIMIT 3 OFFSET 1").ok());
  ASSERT_TRUE(Parse("SELECT id FROM accounts WHERE (owner = 'a' OR owner = 'b')").ok());
  ASSERT_TRUE(Parse("SELECT id FROM accounts WHERE owner IS NOT NULL").ok());
}

TEST(SqlParser, WriteShapes) {
  ASSERT_TRUE(Parse("INSERT INTO accounts VALUES (1, 'a', 10, 0)").ok());
  ASSERT_TRUE(Parse("UPDATE accounts SET balance = 5, owner = 'x' WHERE id = 1").ok());
  ASSERT_TRUE(Parse("DELETE FROM accounts WHERE id = 2").ok());
}

TEST(SqlParser, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELEKT * FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE x ==").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t LIMIT -1").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t extra garbage").ok());
}

// --- planner + execution fixture ---

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("node", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    CreateAccountsTable(db_.get());
    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_);
    session_ = std::make_unique<SqlSession>(client_.get(), db_.get());
    planner_ = std::make_unique<Planner>(db_.get());

    ASSERT_TRUE(client_->BeginRW().ok());
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(session_
                      ->Execute("INSERT INTO accounts VALUES (" + std::to_string(i) + ", 'o" +
                                std::to_string(i % 3) + "', " + std::to_string(i * 10) + ", " +
                                std::to_string(i % 2) + ")")
                      .ok());
    }
    ASSERT_TRUE(client_->Commit().ok());
  }

  AccessPath::Kind PathFor(const std::string& sql_text) {
    auto stmt = Parse(sql_text);
    EXPECT_TRUE(stmt.ok());
    auto plan = planner_->PlanSelect(std::get<SelectStmt>(stmt.value()));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.value().query.from.kind;
  }

  SqlResult Run(const std::string& sql_text) {
    auto r = session_->Execute(sql_text);
    EXPECT_TRUE(r.ok()) << sql_text << ": " << r.status().ToString();
    return r.ok() ? r.take() : SqlResult{};
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<TxCacheClient> client_;
  std::unique_ptr<SqlSession> session_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(SqlTest, PlannerPicksIndexEqForUniqueKey) {
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE id = 3"), AccessPath::Kind::kIndexEq);
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE id = 3 AND balance > 5"),
            AccessPath::Kind::kIndexEq);
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE owner = 'o1'"), AccessPath::Kind::kIndexEq);
}

TEST_F(SqlTest, PlannerPicksRangeForBoundedPk) {
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE id >= 2 AND id <= 5"),
            AccessPath::Kind::kIndexRange);
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE id > 2"), AccessPath::Kind::kIndexRange);
}

TEST_F(SqlTest, PlannerFallsBackToSeqScan) {
  EXPECT_EQ(PathFor("SELECT * FROM accounts"), AccessPath::Kind::kSeqScan);
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE balance = 50"), AccessPath::Kind::kSeqScan);
  EXPECT_EQ(PathFor("SELECT * FROM accounts WHERE (owner = 'o1' OR owner = 'o2')"),
            AccessPath::Kind::kSeqScan)
      << "disjunctions cannot use the equality path";
}

TEST_F(SqlTest, SelectEndToEnd) {
  ASSERT_TRUE(client_->BeginRO().ok());
  SqlResult r = Run("SELECT id, balance FROM accounts WHERE owner = 'o1' ORDER BY id");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"id", "balance"}));
  ASSERT_EQ(r.rows.size(), 3u);  // ids 1, 4, 7
  EXPECT_EQ(r.rows[0], (Row{Value(int64_t{1}), Value(int64_t{10})}));
  EXPECT_EQ(r.rows[2], (Row{Value(int64_t{7}), Value(int64_t{70})}));
  EXPECT_TRUE(r.validity.Contains(db_->LatestCommitTs()));
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, SelectStarKeepsSchemaOrder) {
  ASSERT_TRUE(client_->BeginRO().ok());
  SqlResult r = Run("SELECT * FROM accounts WHERE id = 2");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"id", "owner", "balance", "branch"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 4u);
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, AggregatesAndGroupBy) {
  ASSERT_TRUE(client_->BeginRO().ok());
  SqlResult count = Run("SELECT COUNT(*) FROM accounts");
  EXPECT_EQ(count.rows[0][0], Value(int64_t{10}));
  SqlResult grouped = Run("SELECT branch, SUM(balance) FROM accounts GROUP BY branch");
  ASSERT_EQ(grouped.rows.size(), 2u);
  EXPECT_EQ(grouped.rows[0], (Row{Value(int64_t{0}), Value(int64_t{200})}));
  EXPECT_EQ(grouped.rows[1], (Row{Value(int64_t{1}), Value(int64_t{250})}));
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, LimitOffsetAndOrder) {
  ASSERT_TRUE(client_->BeginRO().ok());
  SqlResult r = Run("SELECT id FROM accounts ORDER BY balance DESC LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{8}));
  EXPECT_EQ(r.rows[1][0], Value(int64_t{7}));
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, UpdateAndDeleteThroughSql) {
  ASSERT_TRUE(client_->BeginRW().ok());
  SqlResult up = Run("UPDATE accounts SET balance = 999 WHERE id = 4");
  EXPECT_EQ(up.affected, 1u);
  SqlResult del = Run("DELETE FROM accounts WHERE owner = 'o2' AND balance < 30");
  EXPECT_EQ(del.affected, 1u);  // id 2 (balance 20)
  ASSERT_TRUE(client_->Commit().ok());

  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(Run("SELECT balance FROM accounts WHERE id = 4").rows[0][0], Value(int64_t{999}));
  EXPECT_TRUE(Run("SELECT * FROM accounts WHERE id = 2").rows.empty());
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, WritesRequireRwTransaction) {
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_FALSE(session_->Execute("INSERT INTO accounts VALUES (99,'x',0,0)").ok());
  EXPECT_FALSE(session_->Execute("UPDATE accounts SET balance = 1 WHERE id = 1").ok());
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, SemanticErrors) {
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_FALSE(session_->Execute("SELECT * FROM nope").ok());
  EXPECT_FALSE(session_->Execute("SELECT ghost FROM accounts").ok());
  EXPECT_FALSE(session_->Execute("SELECT branch FROM accounts GROUP BY branch").ok())
      << "GROUP BY without aggregate";
  EXPECT_FALSE(session_->Execute("SELECT SUM(balance), COUNT(*) FROM accounts").ok())
      << "one aggregate per query";
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(SqlTest, SqlInsideCacheableFunction) {
  // SQL issued inside MAKE-CACHEABLE bodies participates fully: the cached page is invalidated
  // when a SQL UPDATE touches its dependency.
  int executions = 0;
  auto owner_report = client_->MakeCacheable<std::string, std::string>(
      "owner_report", [&](const std::string& owner) {
        ++executions;
        auto r = session_->Execute("SELECT SUM(balance) FROM accounts WHERE owner = '" + owner +
                                   "'");
        return r.ok() && !r.value().rows.empty() ? r.value().rows[0][0].ToString()
                                                 : std::string("?");
      });
  ASSERT_TRUE(client_->BeginRO().ok());
  std::string before = owner_report("o1");
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(owner_report("o1"), before);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 1) << "second call was a cache hit";

  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(session_->Execute("UPDATE accounts SET balance = 0 WHERE id = 1").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_NE(owner_report("o1"), before) << "SQL update invalidated the cached report";
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 2);
}

TEST_F(SqlTest, ResultToStringRenders) {
  ASSERT_TRUE(client_->BeginRO().ok());
  SqlResult r = Run("SELECT id FROM accounts WHERE id = 1");
  EXPECT_NE(r.ToString().find("id"), std::string::npos);
  EXPECT_NE(r.ToString().find("(1 rows"), std::string::npos);
  ASSERT_TRUE(client_->Commit().ok());
}

}  // namespace
}  // namespace txcache::sql
