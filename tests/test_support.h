// Shared fixtures and helpers for the test suite.
#ifndef TESTS_TEST_SUPPORT_H_
#define TESTS_TEST_SUPPORT_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/bus/bus.h"
#include "src/db/database.h"
#include "src/util/clock.h"

namespace txcache::testing {

// A tiny accounts(id, owner, balance, branch) table used across database tests.
struct AccountsCol {
  enum : ColumnId { kId, kOwner, kBalance, kBranch, kCount };
};

inline constexpr const char* kAccounts = "accounts";
inline constexpr const char* kAccountsPk = "accounts_pk";
inline constexpr const char* kAccountsByOwner = "accounts_by_owner";
inline constexpr const char* kAccountsByBranch = "accounts_by_branch";

inline void CreateAccountsTable(Database* db) {
  ASSERT_TRUE(db->CreateTable(TableSchema{kAccounts,
                                          {{"id", ValueType::kInt, false},
                                           {"owner", ValueType::kString, false},
                                           {"balance", ValueType::kInt, false},
                                           {"branch", ValueType::kInt, false}}})
                  .ok());
  ASSERT_TRUE(db->CreateIndex(IndexSchema{kAccountsPk, kAccounts, {AccountsCol::kId}, true}).ok());
  ASSERT_TRUE(
      db->CreateIndex(IndexSchema{kAccountsByOwner, kAccounts, {AccountsCol::kOwner}, false})
          .ok());
  ASSERT_TRUE(
      db->CreateIndex(IndexSchema{kAccountsByBranch, kAccounts, {AccountsCol::kBranch}, false})
          .ok());
}

inline Row Account(int64_t id, const std::string& owner, int64_t balance, int64_t branch = 0) {
  return Row{Value(id), Value(owner), Value(balance), Value(branch)};
}

// Commits a single-statement write transaction; returns its commit timestamp.
inline Timestamp InsertAccount(Database* db, int64_t id, const std::string& owner,
                               int64_t balance, int64_t branch = 0) {
  TxnId txn = db->BeginReadWrite();
  EXPECT_TRUE(db->Insert(txn, kAccounts, Account(id, owner, balance, branch)).ok());
  auto info = db->Commit(txn);
  EXPECT_TRUE(info.ok());
  return info.value().ts;
}

inline Timestamp UpdateBalance(Database* db, int64_t id, int64_t balance) {
  TxnId txn = db->BeginReadWrite();
  auto n = db->Update(txn, kAccounts, AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(id)}),
                      nullptr, {{AccountsCol::kBalance, Value(balance)}});
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  auto info = db->Commit(txn);
  EXPECT_TRUE(info.ok());
  return info.value().ts;
}

inline Timestamp DeleteAccount(Database* db, int64_t id) {
  TxnId txn = db->BeginReadWrite();
  auto n = db->Delete(txn, kAccounts, AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(id)}),
                      nullptr);
  EXPECT_TRUE(n.ok());
  auto info = db->Commit(txn);
  EXPECT_TRUE(info.ok());
  return info.value().ts;
}

// Runs a read-only query at the database's latest snapshot and returns the result.
inline QueryResult ReadLatest(Database* db, const Query& query) {
  auto txn = db->BeginReadOnly();
  EXPECT_TRUE(txn.ok());
  auto result = db->Execute(txn.value(), query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  db->Commit(txn.value());
  return result.ok() ? result.take() : QueryResult{};
}

// Query for one account by primary key.
inline Query AccountById(int64_t id) {
  return Query::From(AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(id)}));
}

// Collects one int column from result rows.
inline std::vector<int64_t> IntColumn(const QueryResult& result, size_t col = 0) {
  std::vector<int64_t> out;
  for (const Row& r : result.rows) {
    out.push_back(r[col].AsInt());
  }
  return out;
}

// An invalidation subscriber that records every delivered message.
class RecordingSubscriber : public InvalidationSubscriber {
 public:
  void Deliver(const InvalidationMessage& msg) override { messages.push_back(msg); }
  std::vector<InvalidationMessage> messages;
};

}  // namespace txcache::testing

#endif  // TESTS_TEST_SUPPORT_H_
