// Snapshot isolation semantics: visibility, first-committer-wins, anomalies (paper §2.2, §5.1).
#include <gtest/gtest.h>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class DbMvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    CreateAccountsTable(db_.get());
  }

  int64_t BalanceIn(TxnId txn, int64_t id) {
    auto r = db_->Execute(txn, AccountById(id));
    EXPECT_TRUE(r.ok());
    if (!r.ok() || r.value().rows.empty()) {
      return -1;
    }
    return r.value().rows[0][AccountsCol::kBalance].AsInt();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(DbMvccTest, UncommittedWritesInvisibleToOthers) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId writer = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(writer, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{999})}})
                  .ok());
  auto reader = db_->BeginReadOnly();
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(BalanceIn(reader.value(), 1), 100) << "no dirty reads";
  db_->Commit(reader.value());
  ASSERT_TRUE(db_->Commit(writer).ok());
}

TEST_F(DbMvccTest, TransactionSeesOwnWrites) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{42})}})
                  .ok());
  EXPECT_EQ(BalanceIn(txn, 1), 42);
  ASSERT_TRUE(db_->Insert(txn, kAccounts, Account(2, "own", 7)).ok());
  EXPECT_EQ(BalanceIn(txn, 2), 7);
  ASSERT_TRUE(db_->Delete(txn, kAccounts, AccountById(2).from, nullptr).ok());
  EXPECT_EQ(BalanceIn(txn, 2), -1) << "own delete visible";
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_F(DbMvccTest, SnapshotReadsAreRepeatable) {
  InsertAccount(db_.get(), 1, "alice", 100);
  auto reader = db_->BeginReadOnly();
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(BalanceIn(reader.value(), 1), 100);
  UpdateBalance(db_.get(), 1, 500);  // concurrent committed update
  EXPECT_EQ(BalanceIn(reader.value(), 1), 100) << "repeatable read within snapshot";
  db_->Commit(reader.value());
  auto later = db_->BeginReadOnly();
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(BalanceIn(later.value(), 1), 500);
  db_->Commit(later.value());
}

TEST_F(DbMvccTest, RwTransactionSnapshotFixedAtBegin) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId t1 = db_->BeginReadWrite();
  UpdateBalance(db_.get(), 1, 500);
  EXPECT_EQ(BalanceIn(t1, 1), 100) << "RW snapshot taken at BEGIN";
  ASSERT_TRUE(db_->Commit(t1).ok());
}

TEST_F(DbMvccTest, FirstCommitterWinsOnWriteWriteConflict) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId t1 = db_->BeginReadWrite();
  TxnId t2 = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(t1, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{1})}})
                  .ok());
  // t2 targets the same row while t1's write is pending: conflict.
  auto r = db_->Update(t2, kAccounts, AccountById(1).from, nullptr,
                       {{AccountsCol::kBalance, Value(int64_t{2})}});
  EXPECT_EQ(r.status().code(), StatusCode::kConflict);
  db_->Abort(t2);
  ASSERT_TRUE(db_->Commit(t1).ok());
  auto final_read = db_->BeginReadOnly();
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(BalanceIn(final_read.value(), 1), 1);
  db_->Commit(final_read.value());
}

TEST_F(DbMvccTest, CommittedConflictDetectedAfterTheFact) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId t2 = db_->BeginReadWrite();  // snapshot before t1 commits
  UpdateBalance(db_.get(), 1, 111);  // t1 commits an update
  auto r = db_->Update(t2, kAccounts, AccountById(1).from, nullptr,
                       {{AccountsCol::kBalance, Value(int64_t{2})}});
  EXPECT_EQ(r.status().code(), StatusCode::kConflict)
      << "update of a row version superseded since our snapshot must fail";
  db_->Abort(t2);
}

TEST_F(DbMvccTest, WriteSkewIsAllowed) {
  // SI's classic anomaly: two transactions each read both rows and write different ones.
  // TxCache must not change the database's isolation level (§2.2), so this must commit.
  InsertAccount(db_.get(), 1, "alice", 60);
  InsertAccount(db_.get(), 2, "bob", 60);
  TxnId t1 = db_->BeginReadWrite();
  TxnId t2 = db_->BeginReadWrite();
  EXPECT_EQ(BalanceIn(t1, 1) + BalanceIn(t1, 2), 120);
  EXPECT_EQ(BalanceIn(t2, 1) + BalanceIn(t2, 2), 120);
  ASSERT_TRUE(db_->Update(t1, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{-40})}})
                  .ok());
  ASSERT_TRUE(db_->Update(t2, kAccounts, AccountById(2).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{-40})}})
                  .ok());
  EXPECT_TRUE(db_->Commit(t1).ok());
  EXPECT_TRUE(db_->Commit(t2).ok());
}

TEST_F(DbMvccTest, AbortUndoesEverything) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{1})}})
                  .ok());
  ASSERT_TRUE(db_->Insert(txn, kAccounts, Account(2, "temp", 0)).ok());
  ASSERT_TRUE(db_->Delete(txn, kAccounts, AccountById(1).from, nullptr).ok());
  ASSERT_TRUE(db_->Abort(txn).ok());
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 100);
  EXPECT_TRUE(ReadLatest(db_.get(), AccountById(2)).rows.empty());
}

TEST_F(DbMvccTest, RowWritableAgainAfterAbort) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId t1 = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(t1, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{1})}})
                  .ok());
  ASSERT_TRUE(db_->Abort(t1).ok());
  UpdateBalance(db_.get(), 1, 2);
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 2);
}

TEST_F(DbMvccTest, UniqueInsertRaceConflicts) {
  TxnId t1 = db_->BeginReadWrite();
  TxnId t2 = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(t1, kAccounts, Account(7, "first", 0)).ok());
  EXPECT_EQ(db_->Insert(t2, kAccounts, Account(7, "second", 0)).code(), StatusCode::kConflict);
  db_->Abort(t2);
  ASSERT_TRUE(db_->Commit(t1).ok());
}

TEST_F(DbMvccTest, UniqueSlotFreedByAbortedInsert) {
  TxnId t1 = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(t1, kAccounts, Account(7, "first", 0)).ok());
  db_->Abort(t1);
  InsertAccount(db_.get(), 7, "second", 0);
  QueryResult r = ReadLatest(db_.get(), AccountById(7));
  EXPECT_EQ(r.rows[0][AccountsCol::kOwner].AsString(), "second");
}

TEST_F(DbMvccTest, UpdateSameRowTwiceInOneTxn) {
  InsertAccount(db_.get(), 1, "alice", 100);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{200})}})
                  .ok());
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{300})}})
                  .ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  QueryResult r = ReadLatest(db_.get(), AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kBalance].AsInt(), 300);
}

TEST_F(DbMvccTest, CommitTimestampsAreDense) {
  Timestamp t1 = InsertAccount(db_.get(), 1, "a", 1);
  Timestamp t2 = InsertAccount(db_.get(), 2, "b", 2);
  Timestamp t3 = UpdateBalance(db_.get(), 1, 9);
  EXPECT_EQ(t2, t1 + 1);
  EXPECT_EQ(t3, t2 + 1);
}

TEST_F(DbMvccTest, ReadOnlyCommitConsumesNoTimestamp) {
  Timestamp t1 = InsertAccount(db_.get(), 1, "a", 1);
  auto ro = db_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  auto info = db_->Commit(ro.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().ts, t1) << "read-only commit reports its snapshot";
  EXPECT_EQ(db_->LatestCommitTs(), t1);
}

TEST_F(DbMvccTest, EmptyRwCommitConsumesNoTimestamp) {
  Timestamp t1 = InsertAccount(db_.get(), 1, "a", 1);
  TxnId txn = db_->BeginReadWrite();
  auto info = db_->Commit(txn);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(db_->LatestCommitTs(), t1);
}

TEST_F(DbMvccTest, OperationsOnFinishedTxnFail) {
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Commit(txn).ok());
  EXPECT_FALSE(db_->Insert(txn, kAccounts, Account(1, "x", 0)).ok());
  EXPECT_FALSE(db_->Commit(txn).ok());
  EXPECT_FALSE(db_->Abort(txn).ok());
  EXPECT_FALSE(db_->Execute(txn, AccountById(1)).ok());
}

TEST_F(DbMvccTest, ConflictCountsInStats) {
  InsertAccount(db_.get(), 1, "a", 1);
  TxnId t1 = db_->BeginReadWrite();
  TxnId t2 = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(t1, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{5})}})
                  .ok());
  db_->Update(t2, kAccounts, AccountById(1).from, nullptr,
              {{AccountsCol::kBalance, Value(int64_t{6})}});
  EXPECT_GE(db_->stats().conflicts, 1u);
  db_->Abort(t2);
  db_->Commit(t1);
}

}  // namespace
}  // namespace txcache
