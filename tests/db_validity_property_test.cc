// Randomized soundness property for validity intervals (paper §5.2):
//
//   For any query executed at snapshot S returning validity interval I (with S in I), re-running
//   the same query at ANY pinned snapshot inside I yields an identical result.
//
// The interval may be conservative (tighter than the truth) but must never be wrong. We build
// random update histories, pin every commit point, and cross-check queries against every pinned
// snapshot — including after vacuuming, mixed predicates, aggregates and joins.
#include <gtest/gtest.h>

#include <map>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

struct PropertyParam {
  uint64_t seed;
  bool predicate_first;
};

class ValidityPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

std::vector<Query> MakeQueries() {
  std::vector<Query> queries;
  // Point lookups for several ids.
  for (int64_t id : {0, 3, 7, 11}) {
    queries.push_back(AccountById(id));
  }
  // Secondary-index lookups.
  for (const char* owner : {"o0", "o1", "o2", "ghost"}) {
    queries.push_back(
        Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value(owner)})));
  }
  // Scans with predicates, aggregates, ordering.
  queries.push_back(Query::From(AccessPath::SeqScan(kAccounts))
                        .Where(PCmp(AccountsCol::kBalance, CmpOp::kGe, Value(int64_t{50})))
                        .SortBy(AccountsCol::kId));
  queries.push_back(Query::From(AccessPath::SeqScan(kAccounts))
                        .Agg(AggKind::kSum, AccountsCol::kBalance));
  queries.push_back(Query::From(AccessPath::IndexEq(kAccounts, kAccountsByBranch,
                                                    Row{Value(int64_t{1})}))
                        .Agg(AggKind::kCount));
  queries.push_back(Query::From(AccessPath::IndexRange(kAccounts, kAccountsPk,
                                                       Row{Value(int64_t{2})},
                                                       Row{Value(int64_t{9})}))
                        .SortBy(AccountsCol::kId)
                        .Project({AccountsCol::kId, AccountsCol::kBalance}));
  return queries;
}

TEST_P(ValidityPropertyTest, ReexecutionInsideIntervalIsIdentical) {
  ManualClock clock;
  Database::Options options;
  options.predicate_before_visibility = GetParam().predicate_first;
  Database db(&clock, options);
  CreateAccountsTable(&db);
  Rng rng(GetParam().seed);

  constexpr int64_t kIds = 14;
  std::vector<PinnedSnapshot> pins;
  std::map<int64_t, bool> exists;

  // Random history: insert/update/delete with interleaved pins.
  pins.push_back(db.Pin());  // the empty database is a snapshot too
  for (int step = 0; step < 60; ++step) {
    clock.Advance(Millis(10));
    const int64_t id = rng.Uniform(0, kIds - 1);
    const int choice = static_cast<int>(rng.Uniform(0, 2));
    TxnId txn = db.BeginReadWrite();
    if (!exists[id]) {
      EXPECT_TRUE(db.Insert(txn, kAccounts,
                            Account(id, "o" + std::to_string(id % 3), rng.Uniform(0, 100),
                                    rng.Uniform(0, 2)))
                      .ok());
      exists[id] = true;
    } else if (choice == 0) {
      auto n = db.Delete(txn, kAccounts, AccountById(id).from, nullptr);
      EXPECT_TRUE(n.ok());
      exists[id] = false;
    } else {
      auto n = db.Update(txn, kAccounts, AccountById(id).from, nullptr,
                         {{AccountsCol::kBalance, Value(rng.Uniform(0, 100))},
                          {AccountsCol::kBranch, Value(rng.Uniform(0, 2))}});
      EXPECT_TRUE(n.ok());
    }
    ASSERT_TRUE(db.Commit(txn).ok());
    pins.push_back(db.Pin());
  }

  // Occasionally vacuum mid-verification; pinned snapshots must keep everything reachable.
  db.Vacuum();

  const std::vector<Query> queries = MakeQueries();
  for (const Query& query : queries) {
    for (size_t i = 0; i < pins.size(); i += 3) {  // sample snapshots
      auto txn = db.BeginReadOnly(pins[i].ts);
      ASSERT_TRUE(txn.ok());
      auto result = db.Execute(txn.value(), query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      db.Commit(txn.value());
      const QueryResult& ref = result.value();
      ASSERT_TRUE(ref.validity.Contains(pins[i].ts))
          << "interval " << ref.validity.ToString() << " must contain snapshot " << pins[i].ts;

      for (const PinnedSnapshot& other : pins) {
        if (!ref.validity.Contains(other.ts)) {
          continue;
        }
        auto txn2 = db.BeginReadOnly(other.ts);
        ASSERT_TRUE(txn2.ok());
        auto again = db.Execute(txn2.value(), query);
        ASSERT_TRUE(again.ok());
        db.Commit(txn2.value());
        ASSERT_EQ(again.value().rows, ref.rows)
            << "query result differs at ts " << other.ts << " inside claimed interval "
            << ref.validity.ToString() << " (computed at " << pins[i].ts << ")";
      }
    }
  }
  for (const PinnedSnapshot& pin : pins) {
    db.Unpin(pin.ts);
  }
}

TEST_P(ValidityPropertyTest, InvalidationCompletenessUnderRandomHistory) {
  // Completeness: whenever consecutive snapshots disagree on a query's result, the update
  // transaction between them must have published a tag matching the query's tag set.
  ManualClock clock;
  Database::Options options;
  options.predicate_before_visibility = GetParam().predicate_first;
  Database db(&clock, options);
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db.set_invalidation_bus(&bus);
  CreateAccountsTable(&db);
  Rng rng(GetParam().seed ^ 0x5eed);

  constexpr int64_t kIds = 8;
  std::map<int64_t, bool> exists;
  std::vector<PinnedSnapshot> pins;
  pins.push_back(db.Pin());
  for (int step = 0; step < 40; ++step) {
    const int64_t id = rng.Uniform(0, kIds - 1);
    TxnId txn = db.BeginReadWrite();
    if (!exists[id]) {
      EXPECT_TRUE(
          db.Insert(txn, kAccounts,
                    Account(id, "o" + std::to_string(id % 2), rng.Uniform(0, 9), id % 2))
              .ok());
      exists[id] = true;
    } else if (rng.Bernoulli(0.4)) {
      EXPECT_TRUE(db.Delete(txn, kAccounts, AccountById(id).from, nullptr).ok());
      exists[id] = false;
    } else {
      EXPECT_TRUE(db.Update(txn, kAccounts, AccountById(id).from, nullptr,
                            {{AccountsCol::kBalance, Value(rng.Uniform(0, 9))}})
                      .ok());
    }
    ASSERT_TRUE(db.Commit(txn).ok());
    pins.push_back(db.Pin());
  }

  // Map commit ts -> published tags.
  std::map<Timestamp, std::vector<InvalidationTag>> published;
  for (const InvalidationMessage& msg : sub.messages) {
    published[msg.ts] = msg.tags;
  }

  auto matches = [](const std::vector<InvalidationTag>& update_tags,
                    const std::vector<InvalidationTag>& query_tags) {
    for (const InvalidationTag& u : update_tags) {
      for (const InvalidationTag& q : query_tags) {
        if (u == q) {
          return true;
        }
        if (u.table == q.table && (u.wildcard || q.wildcard)) {
          return true;  // wildcard on either side covers the whole table
        }
      }
    }
    return false;
  };

  for (const Query& query : MakeQueries()) {
    for (size_t i = 0; i + 1 < pins.size(); ++i) {
      auto t1 = db.BeginReadOnly(pins[i].ts);
      auto t2 = db.BeginReadOnly(pins[i + 1].ts);
      ASSERT_TRUE(t1.ok() && t2.ok());
      auto r1 = db.Execute(t1.value(), query);
      auto r2 = db.Execute(t2.value(), query);
      ASSERT_TRUE(r1.ok() && r2.ok());
      db.Commit(t1.value());
      db.Commit(t2.value());
      if (r1.value().rows == r2.value().rows) {
        continue;
      }
      // The result changed between these adjacent snapshots; the responsible commit is the one
      // with timestamp pins[i+1].ts.
      auto it = published.find(pins[i + 1].ts);
      ASSERT_NE(it, published.end())
          << "result changed at ts " << pins[i + 1].ts << " with no invalidation message";
      EXPECT_TRUE(matches(it->second, r1.value().tags))
          << "tags of the update at ts " << pins[i + 1].ts
          << " do not cover the query's dependencies";
    }
  }
  for (const PinnedSnapshot& pin : pins) {
    db.Unpin(pin.ts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ValidityPropertyTest,
    ::testing::Values(PropertyParam{101, true}, PropertyParam{202, true},
                      PropertyParam{303, true}, PropertyParam{404, true},
                      PropertyParam{505, false}, PropertyParam{606, false},
                      PropertyParam{707, true}, PropertyParam{808, false}),
    [](const ::testing::TestParamInfo<PropertyParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) +
             (param_info.param.predicate_first ? "_predfirst" : "_stock");
    });

}  // namespace
}  // namespace txcache
