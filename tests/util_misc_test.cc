#include <gtest/gtest.h>

#include "src/util/clock.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace txcache {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::Conflict("row locked");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConflict);
  EXPECT_EQ(s.ToString(), "CONFLICT: row locked");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode c : {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kConflict,
                       StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
                       StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, TakeMovesOut) {
  Result<std::string> r = std::string("payload");
  std::string v = r.take();
  EXPECT_EQ(v, "payload");
}

TEST(Clock, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(Seconds(2));
  EXPECT_EQ(clock.Now(), 100 + 2 * kMicrosPerSecond);
  clock.Set(5);
  EXPECT_EQ(clock.Now(), 5);
}

TEST(Clock, SystemClockMonotonic) {
  SystemClock clock;
  WallClock a = clock.Now();
  WallClock b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(Clock, UnitHelpers) {
  EXPECT_EQ(Seconds(1.5), 1'500'000);
  EXPECT_EQ(Millis(2.0), 2'000);
  EXPECT_DOUBLE_EQ(ToSeconds(2'500'000), 2.5);
}

TEST(Hash, Fnv1aStableAndSensitive) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a(""), Fnv1a(std::string_view("\0", 1)));
}

TEST(Hash, Mix64Decorrelates) {
  // Sequential inputs should not map to sequential outputs (Mix64(0) == 0 by construction).
  EXPECT_NE(Mix64(1) + 1, Mix64(2));
  EXPECT_NE(Mix64(1), 1u);
  EXPECT_NE(Mix64(2), 2u);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(11);
  double total = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    total += rng.Exponential(7.0);
  }
  EXPECT_NEAR(total / kN, 7.0, 0.25);
}

TEST(Rng, ZipfWithinBoundsAndSkewed) {
  Rng rng(13);
  constexpr int64_t kN = 1000;
  int64_t rank1 = 0, total = 50'000;
  for (int64_t i = 0; i < total; ++i) {
    int64_t v = rng.Zipf(kN, 1.1);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, kN);
    if (v == 1) {
      ++rank1;
    }
  }
  // Rank 1 should be far more popular than uniform (1/1000 of draws).
  EXPECT_GT(rank1, total / 200);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(17);
  EXPECT_EQ(rng.Zipf(1, 1.2), 1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(WeightedChoice, RespectsWeights) {
  Rng rng(19);
  WeightedChoice wc({1.0, 0.0, 3.0});
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40'000; ++i) {
    ++counts[wc.Pick(rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(WeightedChoice, SingleOption) {
  Rng rng(23);
  WeightedChoice wc({5.0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(wc.Pick(rng), 0u);
  }
}

}  // namespace
}  // namespace txcache
