// Randomized property tests for the cache server:
//   * versions of one key keep pairwise-disjoint validity intervals under any mix of inserts
//     and invalidations;
//   * the final cache state is independent of invalidation-stream delivery order (the reorder
//     buffer restores sequence order);
//   * a lookup never returns a value whose effective interval misses the requested bounds;
//   * under membership churn (node kill/rejoin, ring resize) racing inserts and invalidations,
//     no lookup ever returns a version whose validity interval was invalidated while its node
//     was down — the no-stale-read analogue of EvictionNeverResurrectsOrWidensValidity.
//   * two optimistic writer transactions racing readers, invalidations, cache flushes and
//     crash/rejoin churn stay serializable: every committed transaction's reads are exact
//     against a model applied in commit order, aborted transactions leave no trace, and no
//     write intent survives any exit path.
//   * random single-table SQL read/write interleavings running entirely on planner-derived
//     invalidation tags (src/sql/tag_deriver.h) never read stale: every cached ad-hoc SELECT
//     — point lookups, secondary-index equalities, ranges and seq-scan residuals on the
//     conservative table-wildcard path — matches a snapshot model at its reported
//     serialization timestamp.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/sql/session.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

InvalidationTag TagFor(int64_t key_group) {
  return InvalidationTag::Concrete("t", "idx", "g" + std::to_string(key_group));
}

class CachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CachePropertyTest, VersionIntervalsStayDisjointAndLookupsAreSound) {
  ManualClock clock;
  CacheServer server("prop", &clock);
  Rng rng(GetParam());

  constexpr int kKeys = 8;
  constexpr int kGroups = 4;
  Timestamp now_ts = 1;
  uint64_t seqno = 1;
  // Reference model: for each key, every (interval, value) ever accepted must stay internally
  // consistent — emulate by remembering the value inserted per (key, lower).
  std::map<std::pair<int, Timestamp>, std::string> inserted;

  for (int step = 0; step < 400; ++step) {
    const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
    const int group = key % kGroups;
    clock.Advance(Millis(10));
    if (rng.Bernoulli(0.55)) {
      // Insert: a value that became valid at some recent timestamp.
      Timestamp lower = static_cast<Timestamp>(rng.Uniform(
          static_cast<int64_t>(now_ts > 20 ? now_ts - 20 : 1), static_cast<int64_t>(now_ts)));
      InsertRequest req;
      req.key = "k" + std::to_string(key);
      req.value = "v" + std::to_string(key) + "@" + std::to_string(lower);
      req.interval = {lower, rng.Bernoulli(0.5)
                                 ? kTimestampInfinity
                                 : lower + static_cast<Timestamp>(rng.Uniform(1, 15))};
      req.computed_at = std::min(now_ts, std::max(lower, now_ts > 3 ? now_ts - 3 : lower));
      req.tags = {TagFor(group)};
      ASSERT_TRUE(server.Insert(req).ok());
      inserted[std::make_pair(key, lower)] = req.value;
    } else {
      // Invalidate one or two groups at the next commit timestamp.
      InvalidationMessage msg;
      msg.seqno = seqno++;
      msg.ts = ++now_ts;
      msg.wallclock = clock.Now();
      msg.tags.push_back(TagFor(static_cast<int64_t>(rng.Uniform(0, kGroups - 1))));
      if (rng.Bernoulli(0.2)) {
        msg.tags.push_back(InvalidationTag::Wildcard("t"));
      }
      server.Deliver(msg);
    }

    // Soundness of random lookups: any hit's effective interval must overlap the bounds, and
    // the returned value must be one we inserted for that key.
    const int probe = static_cast<int>(rng.Uniform(0, kKeys - 1));
    Timestamp lo = static_cast<Timestamp>(rng.Uniform(0, static_cast<int64_t>(now_ts)));
    Timestamp hi = lo + static_cast<Timestamp>(rng.Uniform(0, 30));
    LookupRequest req;
    req.key = "k" + std::to_string(probe);
    req.bounds_lo = lo;
    req.bounds_hi = hi;
    LookupResponse resp = server.Lookup(req);
    if (resp.hit) {
      ASSERT_FALSE(resp.interval.empty());
      ASSERT_TRUE(resp.interval.Overlaps(Interval{lo, hi + 1}))
          << resp.interval.ToString() << " vs [" << lo << "," << hi << "]";
      ASSERT_TRUE(inserted.contains(std::make_pair(probe, resp.interval.lower)))
          << "returned a value never inserted for this key/lower";
      ASSERT_EQ(resp.value_ref(), (inserted[std::make_pair(probe, resp.interval.lower)]));
    }
  }
}

TEST_P(CachePropertyTest, DeliveryOrderDoesNotMatter) {
  Rng rng(GetParam() ^ 0xfeed);
  // Build a batch of entries and a batch of invalidation messages; apply the messages in
  // sequence order to one server and in a random permutation to another. Final visible state
  // (every lookup outcome) must match.
  std::vector<InsertRequest> inserts;
  for (int k = 0; k < 10; ++k) {
    InsertRequest req;
    req.key = "k" + std::to_string(k);
    req.value = "v" + std::to_string(k);
    req.interval = {1, kTimestampInfinity};
    req.computed_at = 1;
    req.tags = {TagFor(k % 3)};
    inserts.push_back(req);
  }
  std::vector<InvalidationMessage> messages;
  for (uint64_t i = 0; i < 12; ++i) {
    InvalidationMessage msg;
    msg.seqno = i + 1;
    msg.ts = 5 + i * 3;
    msg.tags = {TagFor(static_cast<int64_t>(rng.Uniform(0, 2)))};
    messages.push_back(msg);
  }

  ManualClock clock;
  CacheServer in_order("in-order", &clock);
  CacheServer shuffled("shuffled", &clock);
  for (const InsertRequest& req : inserts) {
    ASSERT_TRUE(in_order.Insert(req).ok());
    ASSERT_TRUE(shuffled.Insert(req).ok());
  }
  for (const InvalidationMessage& msg : messages) {
    in_order.Deliver(msg);
  }
  std::vector<InvalidationMessage> permuted = messages;
  std::shuffle(permuted.begin(), permuted.end(), rng.engine());
  for (const InvalidationMessage& msg : permuted) {
    shuffled.Deliver(msg);
  }
  EXPECT_EQ(shuffled.last_invalidation_ts(), in_order.last_invalidation_ts());

  for (int k = 0; k < 10; ++k) {
    for (Timestamp lo = 0; lo < 45; lo += 5) {
      LookupRequest req;
      req.key = "k" + std::to_string(k);
      req.bounds_lo = lo;
      req.bounds_hi = lo + 4;
      LookupResponse a = in_order.Lookup(req);
      LookupResponse b = shuffled.Lookup(req);
      ASSERT_EQ(a.hit, b.hit) << "key " << k << " bounds [" << lo << "," << lo + 4 << "]";
      if (a.hit) {
        ASSERT_EQ(a.interval, b.interval);
        ASSERT_EQ(a.value_ref(), b.value_ref());
      }
    }
  }
}

TEST_P(CachePropertyTest, EvictionNeverBreaksAccounting) {
  ManualClock clock;
  for (EvictionPolicy policy : {EvictionPolicy::kLru, EvictionPolicy::kCostAware}) {
    CacheServer::Options options;
    options.capacity_bytes = 4096;
    options.policy = policy;
    CacheServer server("tiny", &clock, options);
    Rng rng(GetParam() ^ 0xcafe);
    for (int step = 0; step < 500; ++step) {
      InsertRequest req;
      req.key = "k" + std::to_string(rng.Uniform(0, 40));
      req.value = std::string(static_cast<size_t>(rng.Uniform(10, 400)), 'x');
      Timestamp lower = static_cast<Timestamp>(rng.Uniform(1, 1000));
      req.interval = {lower, lower + static_cast<Timestamp>(rng.Uniform(1, 50))};
      req.fill_cost_us = static_cast<uint64_t>(rng.Uniform(0, 5000));
      server.Insert(req);
      ASSERT_LE(server.bytes_used(), options.capacity_bytes);
    }
    const CacheStats stats = server.stats();
    EXPECT_GT(stats.capacity_evictions(), 0u);
    EXPECT_GT(stats.eviction_bytes_reclaimed, 0u);
    server.Flush();
    EXPECT_EQ(server.bytes_used(), 0u);
    EXPECT_EQ(server.version_count(), 0u);
  }
}

// Body of the no-resurrect/no-widen model check, shared by the capacity-eviction and
// TTL-expiry variants below. Under random insert / invalidate / evict interleavings (the tiny
// budget keeps the cost-aware eviction policy continuously active), no lookup may ever return
// a version outside its true validity interval: the value must be one actually inserted for
// that (key, lower), and its reported upper bound may never exceed the earliest invalidation
// of the version's tag group after its computed_at (nor the inserted upper for closed
// intervals). Eviction may only lose entries, never resurrect or widen them.
// (ASSERTs force a void return type; final stats are reported through *stats_out.)
void RunNoResurrectNoWiden(const CacheServer::Options& options, uint64_t seed,
                           CacheStats* stats_out = nullptr) {
  ManualClock clock;
  clock.Set(Seconds(100));
  CacheServer server("evict-prop", &clock, options);
  Rng rng(seed);

  constexpr int kKeys = 12;
  constexpr int kGroups = 4;
  Timestamp now_ts = 1;
  uint64_t seqno = 1;
  // Model: value inserted per (key, lower), the interval upper claimed at insert time
  // (kTimestampInfinity for still-valid inserts), its computed_at and group.
  struct Inserted {
    std::string value;
    Timestamp upper;
    Timestamp computed_at;
    int group;
  };
  std::map<std::pair<int, Timestamp>, Inserted> model;
  // Every invalidation: (group, ts); wildcard messages recorded as group -1 (hits all).
  std::vector<std::pair<int, Timestamp>> invals;
  auto first_invalidation_after = [&invals](int group, Timestamp after) {
    Timestamp first = kTimestampInfinity;
    for (const auto& [g, ts] : invals) {
      if ((g == group || g == -1) && ts > after) {
        first = std::min(first, ts);
      }
    }
    return first;
  };

  for (int step = 0; step < 600; ++step) {
    const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
    const int group = key % kGroups;
    clock.Advance(Millis(5));
    if (rng.Bernoulli(0.6)) {
      const Timestamp lower = static_cast<Timestamp>(rng.Uniform(
          static_cast<int64_t>(now_ts > 12 ? now_ts - 12 : 1), static_cast<int64_t>(now_ts)));
      // Everything about the version is a pure function of (key, lower): re-inserting after
      // an eviction reproduces the identical request, so the model never goes stale no matter
      // which of the colliding inserts ended up resident.
      const uint64_t mix = static_cast<uint64_t>(key) * 37 + lower * 13;
      const bool open = mix % 2 == 0;
      InsertRequest req;
      req.key = "k" + std::to_string(key);
      req.value = "v" + std::to_string(key) + "@" + std::to_string(lower) +
                  std::string(static_cast<size_t>(mix % 300), 'p');
      req.interval = {lower, open ? kTimestampInfinity : lower + 1 + (mix % 9)};
      req.computed_at = lower;
      req.tags = {TagFor(group)};
      req.fill_cost_us = mix % 10000;
      Status st = server.Insert(req);
      ASSERT_TRUE(st.ok() || st.code() == StatusCode::kDeclined) << st.ToString();
      model[std::make_pair(key, lower)] =
          Inserted{req.value, req.interval.upper, req.computed_at, group};
    } else {
      InvalidationMessage msg;
      msg.seqno = seqno++;
      msg.ts = ++now_ts;
      msg.wallclock = clock.Now();
      const int g = static_cast<int>(rng.Uniform(0, kGroups - 1));
      msg.tags.push_back(TagFor(g));
      invals.emplace_back(g, msg.ts);
      if (rng.Bernoulli(0.15)) {
        msg.tags.push_back(InvalidationTag::Wildcard("t"));
        invals.emplace_back(-1, msg.ts);
      }
      server.Deliver(msg);
    }
    ASSERT_LE(server.bytes_used(), options.capacity_bytes);

    // Probe a random key: any hit must be explainable by the model.
    const int probe = static_cast<int>(rng.Uniform(0, kKeys - 1));
    Timestamp lo = static_cast<Timestamp>(rng.Uniform(0, static_cast<int64_t>(now_ts)));
    Timestamp hi = lo + static_cast<Timestamp>(rng.Uniform(0, 20));
    LookupRequest req;
    req.key = "k" + std::to_string(probe);
    req.bounds_lo = lo;
    req.bounds_hi = hi;
    LookupResponse resp = server.Lookup(req);
    if (!resp.hit) {
      continue;
    }
    ASSERT_TRUE(resp.interval.Overlaps(Interval{lo, hi + 1}))
        << resp.interval.ToString() << " vs [" << lo << "," << hi << "]";
    auto it = model.find(std::make_pair(probe, resp.interval.lower));
    ASSERT_NE(it, model.end()) << "hit on a version never inserted: k" << probe << " lower="
                               << resp.interval.lower;
    ASSERT_EQ(resp.value_ref(), it->second.value);
    // No widening: the reported upper bound may never exceed what insert-time truncation and
    // the invalidation stream allow for this version.
    const Inserted& ins = it->second;
    Timestamp allowed_upper = ins.upper;
    if (ins.upper == kTimestampInfinity) {
      const Timestamp first = first_invalidation_after(ins.group, ins.computed_at);
      if (first != kTimestampInfinity) {
        allowed_upper = first;
      }
    }
    ASSERT_LE(resp.interval.upper, allowed_upper)
        << "validity widened beyond the stream: k" << probe << " lower=" << resp.interval.lower;
  }
  if (stats_out != nullptr) {
    *stats_out = server.stats();
  }
}

TEST_P(CachePropertyTest, EvictionNeverResurrectsOrWidensValidity) {
  CacheServer::Options options;
  options.capacity_bytes = 8192;
  options.policy = EvictionPolicy::kCostAware;
  // Tiny touch buffer: the probe on every step enqueues deferred hits, so the drains (and
  // their overflow-repair path) interleave with every insert/invalidate/evict the model
  // checks — the no-resurrect/no-widen invariant must survive those interleavings too.
  options.touch_buffer_capacity = 3;
  RunNoResurrectNoWiden(options, GetParam() ^ 0xbeef);
}

TEST_P(CachePropertyTest, TtlExpiryEvictionNeverResurrectsOrWidensValidity) {
  // Same model check with learned-TTL expiry running hot inside the interleavings: raw keys
  // are their own CacheKeyFunction bucket, the frequent invalidations teach per-key
  // lifetimes quickly (min_samples 2), the aggressive slack demotes anything resident past
  // half its learned lifetime, and the tiny sweep interval runs the demotion pass every few
  // mutations. Demotion must remain pure eviction preference: whatever it evicts, no lookup
  // may ever see a resurrected value or a widened interval.
  CacheServer::Options options;
  options.capacity_bytes = 8192;
  options.policy = EvictionPolicy::kCostAware;
  options.touch_buffer_capacity = 3;
  options.lifetime_min_samples = 1;
  options.ttl_expiry_slack = 0.25;
  options.sweep_interval_ops = 4;
  CacheStats stats;
  RunNoResurrectNoWiden(options, GetParam() ^ 0x77d1, &stats);
  EXPECT_GT(stats.ttl_demotions, 0u)
      << "the TTL variant must actually demote inside the interleavings, or it checks nothing";
}

TEST_P(CachePropertyTest, ChurnNeverServesVersionsInvalidatedWhileDown) {
  // Model-checked interleavings of lookups, inserts and invalidations racing node kill,
  // rejoin and ring resize. The invariant is the crash/rejoin analogue of
  // EvictionNeverResurrectsOrWidensValidity: whatever a node missed while down, no lookup may
  // ever return a version whose reported validity extends past the first invalidation of its
  // tag group after its computed_at — i.e. a rejoined node never serves entries it missed
  // invalidations for. The small bus history forces both rejoin paths (catch-up replay for
  // short outages, flush-and-adopt for long ones).
  ManualClock clock;
  clock.Set(Seconds(100));
  InvalidationBus bus(/*history_limit=*/24);
  CacheServer::Options options;
  options.num_shards = 4;
  CacheServer n0("n0", &clock, options), n1("n1", &clock, options);
  CacheServer* nodes[2] = {&n0, &n1};
  bus.Subscribe(&n0);
  bus.Subscribe(&n1);
  CacheCluster cluster;
  cluster.AddNode(&n0);
  cluster.AddNode(&n1);
  bool down[2] = {false, false};
  bool in_ring[2] = {true, true};
  Rng rng(GetParam() ^ 0x5ca1ab1e);

  constexpr int kKeys = 16;
  constexpr int kGroups = 4;
  Timestamp now_ts = 1;
  struct Inserted {
    std::string value;
    Timestamp upper;
    Timestamp computed_at;
    int group;
  };
  std::map<std::pair<int, Timestamp>, Inserted> model;
  std::vector<std::pair<int, Timestamp>> invals;  // (group, ts); -1 = wildcard
  auto first_invalidation_after = [&invals](int group, Timestamp after) {
    Timestamp first = kTimestampInfinity;
    for (const auto& [g, ts] : invals) {
      if ((g == group || g == -1) && ts > after) {
        first = std::min(first, ts);
      }
    }
    return first;
  };

  for (int step = 0; step < 900; ++step) {
    clock.Advance(Millis(5));
    const double roll = rng.UniformReal(0, 1);
    if (roll < 0.40) {
      // Insert through cluster routing. Everything about the version is a pure function of
      // (key, lower), so re-inserting after churn reproduces the identical request and the
      // model stays valid no matter which incarnation ended up resident. Refused inserts
      // (down/joining owner) still enter the model: it only bounds what a hit may claim.
      const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
      const int group = key % kGroups;
      const Timestamp lower = static_cast<Timestamp>(rng.Uniform(
          static_cast<int64_t>(now_ts > 12 ? now_ts - 12 : 1), static_cast<int64_t>(now_ts)));
      const uint64_t mix = static_cast<uint64_t>(key) * 41 + lower * 17;
      InsertRequest req;
      req.key = "k" + std::to_string(key);
      req.value = "v" + std::to_string(key) + "@" + std::to_string(lower);
      req.interval = {lower, mix % 2 == 0 ? kTimestampInfinity : lower + 1 + (mix % 9)};
      req.computed_at = lower;
      req.tags = {TagFor(group)};
      InsertResponse resp = cluster.Insert(req);
      ASSERT_TRUE(resp.status.ok() || resp.status.code() == StatusCode::kDeclined ||
                  resp.status.code() == StatusCode::kUnavailable)
          << resp.status.ToString();
      model[std::make_pair(key, lower)] =
          Inserted{req.value, req.interval.upper, req.computed_at, group};
    } else if (roll < 0.65) {
      // Invalidate through the bus: live nodes apply it, down nodes lose it — exactly the gap
      // the join protocol must close.
      InvalidationMessage msg;
      msg.ts = ++now_ts;
      msg.wallclock = clock.Now();
      const int g = static_cast<int>(rng.Uniform(0, kGroups - 1));
      msg.tags.push_back(TagFor(g));
      invals.emplace_back(g, msg.ts);
      if (rng.Bernoulli(0.1)) {
        msg.tags.push_back(InvalidationTag::Wildcard("t"));
        invals.emplace_back(-1, msg.ts);
      }
      bus.Publish(msg);
    } else if (roll < 0.75) {
      // Kill or rejoin a node.
      const size_t i = rng.Uniform(0, 1);
      if (down[i]) {
        ASSERT_TRUE(nodes[i]->Join(&bus).ok());
        ASSERT_TRUE(nodes[i]->serving()) << "synchronous join catches up before returning";
        down[i] = false;
      } else {
        nodes[i]->Crash();
        down[i] = true;
      }
    } else if (roll < 0.80) {
      // Ring resize: remove or re-add a node independently of its up/down state.
      const size_t i = rng.Uniform(0, 1);
      if (in_ring[i]) {
        cluster.RemoveNode(nodes[i]->name());
        in_ring[i] = false;
      } else {
        cluster.AddNode(nodes[i]);
        in_ring[i] = true;
      }
    }

    // Probe a random key through cluster routing: any hit must be explainable by the model.
    const int probe = static_cast<int>(rng.Uniform(0, kKeys - 1));
    const Timestamp lo = static_cast<Timestamp>(rng.Uniform(0, static_cast<int64_t>(now_ts)));
    const Timestamp hi = lo + static_cast<Timestamp>(rng.Uniform(0, 20));
    LookupRequest req;
    req.key = "k" + std::to_string(probe);
    req.bounds_lo = lo;
    req.bounds_hi = hi;
    LookupResponse resp = cluster.Lookup(req);
    if (!resp.hit) {
      continue;
    }
    ASSERT_TRUE(resp.interval.Overlaps(Interval{lo, hi + 1}));
    auto it = model.find(std::make_pair(probe, resp.interval.lower));
    ASSERT_NE(it, model.end()) << "hit on a version never inserted: k" << probe;
    ASSERT_EQ(resp.value_ref(), it->second.value);
    const Inserted& ins = it->second;
    Timestamp allowed_upper = ins.upper;
    if (ins.upper == kTimestampInfinity) {
      const Timestamp first = first_invalidation_after(ins.group, ins.computed_at);
      if (first != kTimestampInfinity) {
        allowed_upper = first;
      }
    }
    ASSERT_LE(resp.interval.upper, allowed_upper)
        << "stale read: k" << probe << " lower=" << resp.interval.lower
        << " claims validity past an invalidation its node must have missed";
  }

  // Quiesce: rejoin and re-add everything, then fence with a wildcard beyond every insert.
  // Nothing was computed at the fence timestamp, so no key may claim validity there — a
  // version that slipped through a crash/rejoin gap would surface exactly here.
  for (size_t i = 0; i < 2; ++i) {
    if (down[i]) {
      ASSERT_TRUE(nodes[i]->Join(&bus).ok());
      down[i] = false;
    }
    if (!in_ring[i]) {
      cluster.AddNode(nodes[i]);
      in_ring[i] = true;
    }
  }
  InvalidationMessage fence;
  fence.ts = ++now_ts;
  fence.wallclock = clock.Now();
  fence.tags = {InvalidationTag::Wildcard("t")};
  bus.Publish(fence);
  for (int key = 0; key < kKeys; ++key) {
    LookupRequest req;
    req.key = "k" + std::to_string(key);
    req.bounds_lo = fence.ts;
    req.bounds_hi = kTimestampInfinity;
    LookupResponse resp = cluster.Lookup(req);
    if (!resp.hit) {
      continue;
    }
    // A closed-interval insert whose declared upper extends past the fence may legitimately
    // hit (invalidations only truncate still-valid entries). What must be impossible is a
    // version still claiming open-ended validity — the wildcard fence reached every serving
    // node, so a surviving still-valid claim means a node served state from its gap.
    ASSERT_FALSE(resp.still_valid) << "still-valid version survived the fence on k" << key;
    auto it = model.find(std::make_pair(key, resp.interval.lower));
    ASSERT_NE(it, model.end());
    ASSERT_LE(resp.interval.upper, it->second.upper);
  }
}

TEST_P(CachePropertyTest, RacingWritersStaySerializable) {
  // Whole-system serializability under model-checked interleavings: two optimistic read-write
  // transactions advance step by step (begin / cached read / write intent / write / commit or
  // abort) interleaved with read-only transactions, the invalidation traffic their commits
  // generate, cache flushes, node crash/rejoin and ring resizes. The oracle applies committed
  // effects in commit order (the single-threaded step order IS the commit order):
  //   * a committed writer must have read exactly the model's current value — a stale cached
  //     read surviving commit validation would surface here as a lost update;
  //   * a committed write-free transaction and every read-only transaction must have read the
  //     model's value at their reported serialization timestamp;
  //   * an aborted transaction contributes nothing: the final database state equals the model,
  //     and no write intent survives any exit path or churn event.
  ManualClock clock;
  clock.Set(Seconds(100));
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer::Options copts;
  copts.num_shards = 4;
  CacheServer n0("n0", &clock, copts), n1("n1", &clock, copts);
  CacheServer* nodes[2] = {&n0, &n1};
  bus.Subscribe(&n0);
  bus.Subscribe(&n1);
  CacheCluster cluster;
  cluster.AddNode(&n0);
  cluster.AddNode(&n1);
  Pincushion pincushion(&db, &clock);
  bool down[2] = {false, false};
  bool in_ring[2] = {true, true};
  Rng rng(GetParam() ^ 0x0ddba11);

  constexpr int64_t kNumAccounts = 6;
  testing::CreateAccountsTable(&db);
  // Committed history per account: (commit ts, balance), appended in commit order.
  std::map<int64_t, std::vector<std::pair<Timestamp, int64_t>>> history;
  for (int64_t id = 1; id <= kNumAccounts; ++id) {
    const Timestamp ts = testing::InsertAccount(&db, id, "u" + std::to_string(id), 1000);
    history[id] = {{ts, 1000}};
  }
  auto value_at = [&history](int64_t id, Timestamp ts) {
    int64_t v = -1;
    for (const auto& [cts, bal] : history[id]) {
      if (cts <= ts) {
        v = bal;
      }
    }
    return v;
  };
  auto latest = [&history](int64_t id) { return history[id].back().second; };

  TxCacheClient::Options wopts;
  wopts.rw_backoff_sleep = [](WallClock) {};
  auto wa = std::make_unique<TxCacheClient>(&db, &pincushion, &cluster, &clock, wopts);
  auto wb = std::make_unique<TxCacheClient>(&db, &pincushion, &cluster, &clock, wopts);
  auto rd = std::make_unique<TxCacheClient>(&db, &pincushion, &cluster, &clock);
  TxCacheClient* writers[2] = {wa.get(), wb.get()};
  auto make_balance = [](TxCacheClient* c) {
    return c->MakeCacheable<int64_t, int64_t>("balance", [c](int64_t id) -> int64_t {
      auto r = c->ExecuteQuery(testing::AccountById(id));
      return r.ok() && !r.value().rows.empty()
                 ? r.value().rows[0][testing::AccountsCol::kBalance].AsInt()
                 : -1;
    });
  };
  CacheableFunction<int64_t, int64_t> balances[2] = {make_balance(wa.get()),
                                                     make_balance(wb.get())};
  CacheableFunction<int64_t, int64_t> reader_balance = make_balance(rd.get());

  struct WriterState {
    bool active = false;
    int64_t src = 0, dst = 0;
    int64_t observed = 0;       // balance(src) read at the transaction's snapshot
    bool wrote = false;
    int64_t written_value = 0;  // observed + delta, pending on dst until commit
  } w[2];
  uint64_t committed_writes = 0;

  for (int step = 0; step < 700; ++step) {
    clock.Advance(Millis(7));
    const double roll = rng.UniformReal(0, 1);
    if (roll < 0.55) {
      // Advance one writer's transaction state machine.
      const size_t i = rng.Uniform(0, 1);
      TxCacheClient* c = writers[i];
      WriterState& s = w[i];
      if (!s.active) {
        ASSERT_TRUE(c->BeginRw().ok());
        s.src = static_cast<int64_t>(rng.Uniform(1, kNumAccounts));
        s.dst = static_cast<int64_t>(rng.Uniform(1, kNumAccounts));
        s.observed = balances[i](s.src);  // cached hit, or tag-tracked recompute at snapshot
        ASSERT_GE(s.observed, 0);
        s.wrote = false;
        s.active = true;
      } else if (!s.wrote && rng.Bernoulli(0.7)) {
        // Announce and perform the write. A refused intent (the other writer got there
        // first) or a write-write conflict is an early abort: retryable, traceless.
        if (rng.Bernoulli(0.6)) {
          Status intent = c->WriteIntent(MakeCacheKey("balance", s.dst));
          if (!intent.ok()) {
            ASSERT_EQ(intent.code(), StatusCode::kConflict);
            ASSERT_TRUE(c->Abort().ok());
            s.active = false;
            continue;
          }
        }
        s.written_value = s.observed + 1 + static_cast<int64_t>(i);
        auto nrows = c->Update(
            testing::kAccounts,
            AccessPath::IndexEq(testing::kAccounts, testing::kAccountsPk, Row{Value(s.dst)}),
            nullptr, {{testing::AccountsCol::kBalance, Value(s.written_value)}});
        if (!nrows.ok()) {
          ASSERT_EQ(nrows.status().code(), StatusCode::kConflict);
          ASSERT_TRUE(c->Abort().ok());
          s.active = false;
          continue;
        }
        s.wrote = true;
      } else if (rng.Bernoulli(0.15)) {
        ASSERT_TRUE(c->Abort().ok());  // model untouched: the no-trace half of the oracle
        s.active = false;
      } else {
        auto ts_or = c->CommitRw();
        if (ts_or.ok()) {
          if (s.wrote) {
            // Strict serializability at the commit timestamp: the snapshot read must still
            // be the model's CURRENT value (commit order here is step order). A stale cached
            // read that slipped through validation shows up as exactly this mismatch.
            ASSERT_EQ(s.observed, latest(s.src))
                << "committed writer observed a stale balance for account " << s.src;
            history[s.dst].emplace_back(ts_or.value(), s.written_value);
            ++committed_writes;
          } else {
            // Write-free transactions serialize at their snapshot.
            ASSERT_EQ(s.observed, value_at(s.src, ts_or.value()));
          }
        } else {
          ASSERT_EQ(ts_or.status().code(), StatusCode::kConflict);
        }
        s.active = false;
      }
    } else if (roll < 0.72) {
      // Read-only transaction: its reported serialization point must explain its read.
      const int64_t id = static_cast<int64_t>(rng.Uniform(1, kNumAccounts));
      ASSERT_TRUE(rd->BeginRO(Seconds(30)).ok());
      const int64_t v = reader_balance(id);
      auto ts_or = rd->Commit();
      ASSERT_TRUE(ts_or.ok());
      ASSERT_EQ(v, value_at(id, ts_or.value()))
          << "read-only transaction read a value inconsistent with its serialization point";
    } else if (roll < 0.82) {
      // Kill or rejoin a node; crash and rejoin both drop intents wholesale.
      const size_t i = rng.Uniform(0, 1);
      if (down[i]) {
        ASSERT_TRUE(nodes[i]->Join(&bus).ok());
        down[i] = false;
      } else {
        nodes[i]->Crash();
        down[i] = true;
      }
    } else if (roll < 0.88) {
      // Ring resize, independent of up/down state.
      const size_t i = rng.Uniform(0, 1);
      if (in_ring[i]) {
        cluster.RemoveNode(nodes[i]->name());
        in_ring[i] = false;
      } else {
        cluster.AddNode(nodes[i]);
        in_ring[i] = true;
      }
    } else if (roll < 0.92) {
      // Wholesale eviction of a serving node's data (and any intents parked on it).
      const size_t i = rng.Uniform(0, 1);
      if (!down[i]) {
        nodes[i]->Flush();
      }
    }
  }

  // Quiesce: close open transactions, rejoin everything. The final database state must equal
  // the model exactly — every aborted transaction traceless, every committed one applied —
  // and no write intent may survive.
  for (size_t i = 0; i < 2; ++i) {
    if (w[i].active) {
      ASSERT_TRUE(writers[i]->Abort().ok());
    }
    if (down[i]) {
      ASSERT_TRUE(nodes[i]->Join(&bus).ok());
      down[i] = false;
    }
  }
  EXPECT_GT(committed_writes, 0u) << "the interleaving never committed a write; vacuous run";
  for (int64_t id = 1; id <= kNumAccounts; ++id) {
    ASSERT_EQ(testing::ReadLatest(&db, testing::AccountById(id))
                  .rows[0][testing::AccountsCol::kBalance]
                  .AsInt(),
              latest(id))
        << "final state diverged from the commit-order model on account " << id;
  }
  EXPECT_EQ(n0.ClearIntents(), 0u);
  EXPECT_EQ(n1.ClearIntents(), 0u);
}

TEST_P(CachePropertyTest, DerivedTagSqlReadsNeverGoStale) {
  // The no-stale-read property, extended to automatic tag derivation: every statement below
  // is planned, tagged and cached with ZERO hand-written tag specs (SqlSession in derived
  // mode with the ad-hoc statement cache on). Writers mutate the table through SQL — updates,
  // inserts, deletes — while a reader replays a small pool of SELECT statements spanning the
  // whole fallback ladder: point lookups (IndexEq, concrete tags), secondary-index equalities,
  // ranges (IndexRange, table wildcard) and balance residuals (SeqScan, table wildcard). The
  // oracle is a per-account committed history; whatever serialization timestamp the reader's
  // Commit() reports, its rows must equal the model at that timestamp. An under-scoped
  // derived tag set — a statement filed under tags some write does not touch — would leave a
  // stale entry behind and surface here as a row mismatch.
  ManualClock clock;
  clock.Set(Seconds(100));
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node("sqlprop", &clock);
  bus.Subscribe(&node);
  CacheCluster cluster;
  cluster.AddNode(&node);
  Pincushion pincushion(&db, &clock);
  Rng rng(GetParam() ^ 0x5a11);

  testing::CreateAccountsTable(&db);
  // Committed history per account id: (commit ts, balance), -1 = deleted/not yet inserted.
  std::map<int64_t, std::vector<std::pair<Timestamp, int64_t>>> history;
  auto owner_of = [](int64_t id) { return "g" + std::to_string(id % 3); };
  for (int64_t id = 1; id <= 6; ++id) {
    const Timestamp ts = testing::InsertAccount(&db, id, owner_of(id), 1000, id % 2);
    history[id] = {{ts, 1000}};
  }
  int64_t next_id = 7;
  auto value_at = [&history](int64_t id, Timestamp ts) {
    int64_t v = -1;
    for (const auto& [cts, bal] : history[id]) {
      if (cts <= ts) {
        v = bal;
      }
    }
    return v;
  };

  auto writer = std::make_unique<TxCacheClient>(&db, &pincushion, &cluster, &clock);
  sql::SqlSession write_sql(writer.get(), &db);
  write_sql.set_tag_mode(sql::SqlSession::TagMode::kDerived);
  auto reader = std::make_unique<TxCacheClient>(&db, &pincushion, &cluster, &clock);
  sql::SqlSession read_sql(reader.get(), &db);
  read_sql.set_tag_mode(sql::SqlSession::TagMode::kDerived);
  read_sql.set_cache_selects(true);

  auto run_write = [&](const std::string& text) -> std::pair<Timestamp, int64_t> {
    EXPECT_TRUE(writer->BeginRW().ok());
    auto r = write_sql.Execute(text);
    EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    auto ts = writer->Commit();
    EXPECT_TRUE(ts.ok());
    return {ts.value(), r.ok() ? r.value().affected : 0};
  };

  for (int step = 0; step < 400; ++step) {
    clock.Advance(Millis(7));
    const double roll = rng.UniformReal(0, 1);
    if (roll < 0.60) {
      // One SELECT from the statement pool, checked against the model at the transaction's
      // serialization timestamp. Literal pools are small so statements repeat and the ad-hoc
      // cache actually serves hits (asserted non-vacuous below).
      ASSERT_TRUE(reader->BeginRO(Seconds(30)).ok());
      const int family = static_cast<int>(rng.Uniform(0, 3));
      const int64_t id = static_cast<int64_t>(rng.Uniform(1, next_id - 1));
      const std::string group = owner_of(rng.Uniform(0, 5));
      const int64_t lo = static_cast<int64_t>(rng.Uniform(1, 4));
      const int64_t threshold = 500 * static_cast<int64_t>(rng.Uniform(1, 3));
      std::string text;
      switch (family) {
        case 0:
          text = "SELECT balance FROM accounts WHERE id = " + std::to_string(id);
          break;
        case 1:
          text = "SELECT id, balance FROM accounts WHERE owner = '" + group + "' ORDER BY id";
          break;
        case 2:
          text = "SELECT id, balance FROM accounts WHERE id >= " + std::to_string(lo) +
                 " AND id <= " + std::to_string(lo + 2) + " ORDER BY id";
          break;
        default:
          text = "SELECT id, balance FROM accounts WHERE balance >= " +
                 std::to_string(threshold) + " ORDER BY id";
          break;
      }
      auto r = read_sql.Execute(text);
      ASSERT_TRUE(r.ok()) << text << ": " << r.status().ToString();
      auto ts_or = reader->Commit();
      ASSERT_TRUE(ts_or.ok());
      const Timestamp ts = ts_or.value();
      // Expected rows from the model at ts, in the statement's ORDER BY id order.
      std::vector<std::pair<int64_t, int64_t>> expected;
      for (const auto& [aid, _] : history) {
        const int64_t bal = value_at(aid, ts);
        if (bal < 0) continue;
        const bool matches = family == 0   ? aid == id
                             : family == 1 ? owner_of(aid) == group
                             : family == 2 ? (aid >= lo && aid <= lo + 2)
                                           : bal >= threshold;
        if (matches) {
          expected.emplace_back(aid, bal);
        }
      }
      ASSERT_EQ(r.value().rows.size(), expected.size())
          << text << " at ts " << ts << (r.value().from_cache ? " (cached)" : " (computed)");
      for (size_t i = 0; i < expected.size(); ++i) {
        const Row& row = r.value().rows[i];
        if (family == 0) {
          ASSERT_EQ(row[0].AsInt(), expected[i].second) << text << " at ts " << ts;
        } else {
          ASSERT_EQ(row[0].AsInt(), expected[i].first) << text << " at ts " << ts;
          ASSERT_EQ(row[1].AsInt(), expected[i].second) << text << " at ts " << ts;
        }
      }
    } else if (roll < 0.85) {
      // UPDATE through the derived write-target wildcard.
      const int64_t id = static_cast<int64_t>(rng.Uniform(1, next_id - 1));
      const int64_t bal = static_cast<int64_t>(rng.Uniform(0, 2000));
      auto [ts, affected] = run_write("UPDATE accounts SET balance = " + std::to_string(bal) +
                                      " WHERE id = " + std::to_string(id));
      if (affected > 0) {
        history[id].emplace_back(ts, bal);
      }
    } else if (roll < 0.93) {
      // INSERT: per-index concrete tags must reach every cached statement that could now
      // return the new row (owner groups, ranges, scans).
      const int64_t id = next_id++;
      auto [ts, affected] =
          run_write("INSERT INTO accounts VALUES (" + std::to_string(id) + ", '" +
                    owner_of(id) + "', 1000, " + std::to_string(id % 2) + ")");
      if (affected > 0) {
        history[id].emplace_back(ts, 1000);
      }
    } else {
      // DELETE: rows must disappear from every cached statement at the commit timestamp.
      const int64_t id = static_cast<int64_t>(rng.Uniform(1, next_id - 1));
      auto [ts, affected] =
          run_write("DELETE FROM accounts WHERE id = " + std::to_string(id));
      if (affected > 0) {
        history[id].emplace_back(ts, -1);
      }
    }
  }

  EXPECT_GT(reader->stats().cache_hits, 0u)
      << "the ad-hoc statement cache never served a hit; the run was vacuous";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace txcache
