// Randomized property tests for the cache server:
//   * versions of one key keep pairwise-disjoint validity intervals under any mix of inserts
//     and invalidations;
//   * the final cache state is independent of invalidation-stream delivery order (the reorder
//     buffer restores sequence order);
//   * a lookup never returns a value whose effective interval misses the requested bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/cache/cache_server.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace txcache {
namespace {

InvalidationTag TagFor(int64_t key_group) {
  return InvalidationTag::Concrete("t", "idx", "g" + std::to_string(key_group));
}

class CachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CachePropertyTest, VersionIntervalsStayDisjointAndLookupsAreSound) {
  ManualClock clock;
  CacheServer server("prop", &clock);
  Rng rng(GetParam());

  constexpr int kKeys = 8;
  constexpr int kGroups = 4;
  Timestamp now_ts = 1;
  uint64_t seqno = 1;
  // Reference model: for each key, every (interval, value) ever accepted must stay internally
  // consistent — emulate by remembering the value inserted per (key, lower).
  std::map<std::pair<int, Timestamp>, std::string> inserted;

  for (int step = 0; step < 400; ++step) {
    const int key = static_cast<int>(rng.Uniform(0, kKeys - 1));
    const int group = key % kGroups;
    clock.Advance(Millis(10));
    if (rng.Bernoulli(0.55)) {
      // Insert: a value that became valid at some recent timestamp.
      Timestamp lower = static_cast<Timestamp>(rng.Uniform(
          static_cast<int64_t>(now_ts > 20 ? now_ts - 20 : 1), static_cast<int64_t>(now_ts)));
      InsertRequest req;
      req.key = "k" + std::to_string(key);
      req.value = "v" + std::to_string(key) + "@" + std::to_string(lower);
      req.interval = {lower, rng.Bernoulli(0.5)
                                 ? kTimestampInfinity
                                 : lower + static_cast<Timestamp>(rng.Uniform(1, 15))};
      req.computed_at = std::min(now_ts, std::max(lower, now_ts > 3 ? now_ts - 3 : lower));
      req.tags = {TagFor(group)};
      ASSERT_TRUE(server.Insert(req).ok());
      inserted[std::make_pair(key, lower)] = req.value;
    } else {
      // Invalidate one or two groups at the next commit timestamp.
      InvalidationMessage msg;
      msg.seqno = seqno++;
      msg.ts = ++now_ts;
      msg.wallclock = clock.Now();
      msg.tags.push_back(TagFor(static_cast<int64_t>(rng.Uniform(0, kGroups - 1))));
      if (rng.Bernoulli(0.2)) {
        msg.tags.push_back(InvalidationTag::Wildcard("t"));
      }
      server.Deliver(msg);
    }

    // Soundness of random lookups: any hit's effective interval must overlap the bounds, and
    // the returned value must be one we inserted for that key.
    const int probe = static_cast<int>(rng.Uniform(0, kKeys - 1));
    Timestamp lo = static_cast<Timestamp>(rng.Uniform(0, static_cast<int64_t>(now_ts)));
    Timestamp hi = lo + static_cast<Timestamp>(rng.Uniform(0, 30));
    LookupRequest req;
    req.key = "k" + std::to_string(probe);
    req.bounds_lo = lo;
    req.bounds_hi = hi;
    LookupResponse resp = server.Lookup(req);
    if (resp.hit) {
      ASSERT_FALSE(resp.interval.empty());
      ASSERT_TRUE(resp.interval.Overlaps(Interval{lo, hi + 1}))
          << resp.interval.ToString() << " vs [" << lo << "," << hi << "]";
      ASSERT_TRUE(inserted.contains(std::make_pair(probe, resp.interval.lower)))
          << "returned a value never inserted for this key/lower";
      ASSERT_EQ(resp.value, (inserted[std::make_pair(probe, resp.interval.lower)]));
    }
  }
}

TEST_P(CachePropertyTest, DeliveryOrderDoesNotMatter) {
  Rng rng(GetParam() ^ 0xfeed);
  // Build a batch of entries and a batch of invalidation messages; apply the messages in
  // sequence order to one server and in a random permutation to another. Final visible state
  // (every lookup outcome) must match.
  std::vector<InsertRequest> inserts;
  for (int k = 0; k < 10; ++k) {
    InsertRequest req;
    req.key = "k" + std::to_string(k);
    req.value = "v" + std::to_string(k);
    req.interval = {1, kTimestampInfinity};
    req.computed_at = 1;
    req.tags = {TagFor(k % 3)};
    inserts.push_back(req);
  }
  std::vector<InvalidationMessage> messages;
  for (uint64_t i = 0; i < 12; ++i) {
    InvalidationMessage msg;
    msg.seqno = i + 1;
    msg.ts = 5 + i * 3;
    msg.tags = {TagFor(static_cast<int64_t>(rng.Uniform(0, 2)))};
    messages.push_back(msg);
  }

  ManualClock clock;
  CacheServer in_order("in-order", &clock);
  CacheServer shuffled("shuffled", &clock);
  for (const InsertRequest& req : inserts) {
    ASSERT_TRUE(in_order.Insert(req).ok());
    ASSERT_TRUE(shuffled.Insert(req).ok());
  }
  for (const InvalidationMessage& msg : messages) {
    in_order.Deliver(msg);
  }
  std::vector<InvalidationMessage> permuted = messages;
  std::shuffle(permuted.begin(), permuted.end(), rng.engine());
  for (const InvalidationMessage& msg : permuted) {
    shuffled.Deliver(msg);
  }
  EXPECT_EQ(shuffled.last_invalidation_ts(), in_order.last_invalidation_ts());

  for (int k = 0; k < 10; ++k) {
    for (Timestamp lo = 0; lo < 45; lo += 5) {
      LookupRequest req;
      req.key = "k" + std::to_string(k);
      req.bounds_lo = lo;
      req.bounds_hi = lo + 4;
      LookupResponse a = in_order.Lookup(req);
      LookupResponse b = shuffled.Lookup(req);
      ASSERT_EQ(a.hit, b.hit) << "key " << k << " bounds [" << lo << "," << lo + 4 << "]";
      if (a.hit) {
        ASSERT_EQ(a.interval, b.interval);
        ASSERT_EQ(a.value, b.value);
      }
    }
  }
}

TEST_P(CachePropertyTest, EvictionNeverBreaksAccounting) {
  ManualClock clock;
  CacheServer::Options options;
  options.capacity_bytes = 4096;
  CacheServer server("tiny", &clock, options);
  Rng rng(GetParam() ^ 0xcafe);
  for (int step = 0; step < 500; ++step) {
    InsertRequest req;
    req.key = "k" + std::to_string(rng.Uniform(0, 40));
    req.value = std::string(static_cast<size_t>(rng.Uniform(10, 400)), 'x');
    Timestamp lower = static_cast<Timestamp>(rng.Uniform(1, 1000));
    req.interval = {lower, lower + static_cast<Timestamp>(rng.Uniform(1, 50))};
    server.Insert(req);
    ASSERT_LE(server.bytes_used(), options.capacity_bytes);
  }
  EXPECT_GT(server.stats().evictions_lru, 0u);
  server.Flush();
  EXPECT_EQ(server.bytes_used(), 0u);
  EXPECT_EQ(server.version_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace txcache
