// Elastic cluster membership: the epoch-stamped ring, the node crash/rejoin protocol (join
// barrier, catch-up vs. flush), and churn degrading to misses instead of errors.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/bus/bus.h"
#include "src/bus/sequencer.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"
#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

InsertRequest StillValidEntry(const std::string& key, const std::string& value,
                              const std::string& group, Timestamp computed_at = 1) {
  InsertRequest req;
  req.key = key;
  req.value = value;
  req.interval = {computed_at, kTimestampInfinity};
  req.computed_at = computed_at;
  req.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return req;
}

LookupRequest Probe(const std::string& key, Timestamp lo, Timestamp hi) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = lo;
  req.bounds_hi = hi;
  req.fresh_lo = lo;
  return req;
}

InvalidationMessage GroupInval(const std::string& group, Timestamp ts) {
  InvalidationMessage msg;
  msg.ts = ts;
  msg.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return msg;
}

// --- epoch protocol ------------------------------------------------------------

TEST(Membership, RingEpochBumpsOnEverySuccessfulChange) {
  ConsistentHashRing ring(8);
  EXPECT_EQ(ring.epoch(), 0u);
  EXPECT_TRUE(ring.AddNode("a"));
  EXPECT_EQ(ring.epoch(), 1u);
  EXPECT_FALSE(ring.AddNode("a")) << "duplicate add must not bump the epoch";
  EXPECT_EQ(ring.epoch(), 1u);
  EXPECT_TRUE(ring.AddNode("b"));
  EXPECT_EQ(ring.epoch(), 2u);
  EXPECT_TRUE(ring.RemoveNode("a"));
  EXPECT_EQ(ring.epoch(), 3u);
  EXPECT_FALSE(ring.RemoveNode("a"));
  EXPECT_EQ(ring.epoch(), 3u);
  // Strictly monotone through an add/remove loop.
  uint64_t last = ring.epoch();
  for (int i = 0; i < 10; ++i) {
    const std::string name = std::to_string(i);
    ASSERT_TRUE(ring.AddNode(name));
    ASSERT_GT(ring.epoch(), last);
    last = ring.epoch();
    ASSERT_TRUE(ring.RemoveNode(name));
    ASSERT_GT(ring.epoch(), last);
    last = ring.epoch();
  }
}

TEST(Membership, ClusterResponsesCarryTheRingEpoch) {
  ManualClock clock;
  CacheServer a("a", &clock), b("b", &clock);
  CacheCluster cluster;
  ASSERT_TRUE(cluster.AddNode(&a));
  EXPECT_EQ(cluster.epoch(), 1u);

  InsertResponse ins = cluster.Insert(StillValidEntry("k", "v", "g"));
  EXPECT_TRUE(ins.status.ok());
  EXPECT_EQ(ins.ring_epoch, 1u);

  LookupResponse look = cluster.Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_TRUE(look.hit);
  EXPECT_EQ(look.ring_epoch, 1u);

  MultiLookupRequest batch;
  batch.lookups.push_back(Probe("k", 1, kTimestampInfinity));
  auto multi = cluster.MultiLookup(batch);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi.value().ring_epoch, 1u);

  // Membership changes move the stamped epoch, so clients can tell their routing went stale.
  ASSERT_TRUE(cluster.AddNode(&b));
  EXPECT_EQ(cluster.epoch(), 2u);
  EXPECT_EQ(cluster.Lookup(Probe("k", 1, kTimestampInfinity)).ring_epoch, 2u);
  ASSERT_TRUE(cluster.RemoveNode("b"));
  EXPECT_EQ(cluster.Insert(StillValidEntry("k2", "v2", "g")).ring_epoch, 3u);
}

TEST(Membership, ClientObservesEpochChangesAndKeepsAnswering) {
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer a("a", &clock), b("b", &clock), c("c", &clock);
  bus.Subscribe(&a);
  bus.Subscribe(&b);
  CacheCluster cluster;
  cluster.AddNode(&a);
  cluster.AddNode(&b);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  constexpr int64_t kNumAccounts = 8;
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    InsertAccount(&db, i, "o", 100 + i);
  }

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto balance = client.MakeCacheable<int64_t, int64_t>("bal", [&client](int64_t id) -> int64_t {
    auto r = client.ExecuteQuery(AccountById(id));
    return r.ok() && !r.value().rows.empty() ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                                             : -1;
  });

  ASSERT_TRUE(client.BeginRO().ok());
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    EXPECT_EQ(balance(i), 100 + i);
  }
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(client.ring_epoch(), 2u) << "two AddNode calls before the first observation";
  EXPECT_EQ(client.stats().ring_epoch_changes, 0u);

  // Ring resize mid-session: the next calls observe the new epoch and still answer correctly
  // (remapped keys recompute; nothing errors).
  bus.Subscribe(&c);
  ASSERT_TRUE(cluster.AddNode(&c));
  ASSERT_TRUE(client.BeginRO().ok());
  for (int64_t i = 0; i < kNumAccounts; ++i) {
    EXPECT_EQ(balance(i), 100 + i);
  }
  ASSERT_TRUE(client.Commit().ok());
  EXPECT_EQ(client.ring_epoch(), 3u);
  EXPECT_GE(client.stats().ring_epoch_changes, 1u) << "the resize was observed as a re-route";
}

// --- remap fraction ------------------------------------------------------------

TEST(Membership, LeaveRemapsAboutOneOverNOfKeys) {
  constexpr size_t kNodes = 8;
  constexpr int kKeys = 40'000;
  ConsistentHashRing ring(64);
  for (size_t n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(ring.AddNode("n" + std::to_string(n)));
  }
  std::map<std::string, std::string> before;
  size_t on_victim = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key" + std::to_string(i);
    before[key] = ring.NodeForKey(key).value();
    if (before[key] == "n3") {
      ++on_victim;
    }
  }
  ASSERT_TRUE(ring.RemoveNode("n3"));
  size_t moved = 0;
  for (const auto& [key, owner] : before) {
    const std::string now = ring.NodeForKey(key).value();
    if (now != owner) {
      ++moved;
      EXPECT_EQ(owner, "n3") << "only the departed node's keys may move";
    }
  }
  EXPECT_EQ(moved, on_victim);
  // Statistical bound: with 64 virtual nodes the departed arc is ~1/n of the key space —
  // never more than 2/n, and not degenerately small either.
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_LE(fraction, 2.0 / kNodes) << "a leave disturbed more than 2/n of the key space";
  EXPECT_GE(fraction, 0.25 / kNodes) << "suspiciously small victim arc";

  // Re-adding the same name restores the exact pre-leave mapping (virtual-node positions are
  // a pure function of the name), so a rejoin reclaims precisely its old arc.
  ASSERT_TRUE(ring.AddNode("n3"));
  for (const auto& [key, owner] : before) {
    EXPECT_EQ(ring.NodeForKey(key).value(), owner);
  }
}

// --- join barrier and catch-up vs flush ---------------------------------------

TEST(Membership, JoinBarrierBlocksServingUntilCaughtUp) {
  ManualClock clock;
  InvalidationBus bus;
  CacheServer node("n", &clock);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.serving()) << "fixed-membership construction serves immediately";
  ASSERT_TRUE(node.Insert(StillValidEntry("k", "v", "g")).ok());

  node.Crash();
  EXPECT_EQ(node.state(), NodeState::kDown);
  LookupResponse down = node.Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(down.hit);
  EXPECT_EQ(down.miss, MissKind::kNodeUnavailable);
  EXPECT_EQ(node.Insert(StillValidEntry("k2", "v2", "g")).code(), StatusCode::kUnavailable);

  // Invalidation published while the node is down: lost to the node, retained by the bus.
  bus.Publish(GroupInval("g", 10));

  // Hold all further deliveries (including the join catch-up replay), as a network with
  // latency would: the join barrier must stay up until the replay actually arrives.
  std::vector<std::pair<InvalidationSubscriber*, InvalidationMessage>> held;
  bus.SetDeliveryHook([&held](InvalidationSubscriber* sub, const InvalidationMessage& msg) {
    held.emplace_back(sub, msg);
  });
  ASSERT_TRUE(node.Join(&bus).ok());
  EXPECT_EQ(node.state(), NodeState::kJoining);
  LookupResponse joining = node.Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(joining.hit) << "join barrier: no serving before catch-up completes";
  EXPECT_EQ(joining.miss, MissKind::kNodeUnavailable);
  ASSERT_FALSE(held.empty()) << "the join requested a catch-up replay";

  // Deliver the held replay: the barrier drops and the missed invalidation has been applied.
  for (auto& [sub, msg] : held) {
    sub->Deliver(msg);
  }
  EXPECT_TRUE(node.serving());
  EXPECT_FALSE(node.Lookup(Probe("k", 10, kTimestampInfinity)).hit)
      << "entry invalidated during the outage must not be served at post-invalidation bounds";
  LookupResponse old_window = node.Lookup(Probe("k", 1, 9));
  EXPECT_TRUE(old_window.hit) << "catch-up retains data; the old validity window still serves";
  EXPECT_EQ(old_window.interval.upper, 10);
  EXPECT_GE(node.stats().join_catchups, 1u);
  EXPECT_GE(node.stats().nodes_unavailable, 2u);
}

TEST(Membership, RejoinCatchUpRetainsUnaffectedEntries) {
  ManualClock clock;
  InvalidationBus bus;
  CacheServer node("n", &clock);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.Insert(StillValidEntry("ka", "va", "ga")).ok());
  ASSERT_TRUE(node.Insert(StillValidEntry("kb", "vb", "gb")).ok());

  node.Crash();
  bus.Publish(GroupInval("ga", 10));
  ASSERT_TRUE(node.Join(&bus).ok());
  EXPECT_TRUE(node.serving()) << "synchronous replay catches up before Join returns";
  EXPECT_EQ(node.stats().join_catchups, 1u);
  EXPECT_EQ(node.stats().join_flushes, 0u);

  EXPECT_FALSE(node.Lookup(Probe("ka", 10, kTimestampInfinity)).hit)
      << "the invalidation missed while down was replayed";
  EXPECT_TRUE(node.Lookup(Probe("kb", 10, kTimestampInfinity)).hit)
      << "catch-up preserves entries the missed messages did not touch";
}

TEST(Membership, RejoinFlushesWhenHistoryNoLongerCoversTheGap) {
  ManualClock clock;
  clock.Set(Seconds(100));
  InvalidationBus bus(/*history_limit=*/4);
  CacheServer node("n", &clock);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.Insert(StillValidEntry("ka", "va", "ga")).ok());
  ASSERT_TRUE(node.Insert(StillValidEntry("kb", "vb", "gb")).ok());

  node.Crash();
  // The outage outruns the bounded history: eight messages published, only four retained.
  for (Timestamp ts = 10; ts < 18; ++ts) {
    bus.Publish(GroupInval("ga", ts));
  }
  ASSERT_TRUE(node.Join(&bus).ok());
  EXPECT_TRUE(node.serving());
  EXPECT_EQ(node.stats().join_flushes, 1u);
  EXPECT_EQ(node.stats().join_catchups, 0u);

  // Everything pre-crash is gone — including entries whose tags were never invalidated,
  // because the node cannot prove they were not (the no-stale-read invariant wins).
  EXPECT_FALSE(node.Lookup(Probe("ka", 1, kTimestampInfinity)).hit);
  EXPECT_FALSE(node.Lookup(Probe("kb", 1, kTimestampInfinity)).hit);
  EXPECT_EQ(node.version_count(), 0u);

  // The invalidation-history floor was raised to the adopted position: a late insert computed
  // before the gap cannot claim still-valid — it is conservatively truncated, so it can never
  // serve reads at timestamps whose invalidations this node missed.
  ASSERT_TRUE(node.Insert(StillValidEntry("kc", "vc", "gc", /*computed_at=*/5)).ok());
  EXPECT_GE(node.stats().insert_time_truncations, 1u);
  EXPECT_FALSE(node.Lookup(Probe("kc", 17, kTimestampInfinity)).hit);
  // An insert computed at/after the adopted position is trusted normally.
  ASSERT_TRUE(node.Insert(StillValidEntry("kd", "vd", "gd", /*computed_at=*/17)).ok());
  EXPECT_TRUE(node.Lookup(Probe("kd", 17, kTimestampInfinity)).hit);
}

TEST(Membership, AdoptPositionDrainsLiveMessagesBufferedAtOrPastIt) {
  // Regression: during a flush-rejoin, a message published after the join target was read can
  // arrive live and sit in the reorder buffer at exactly the adopted position. AdoptPosition
  // must release it (and its successors) — nothing will ever re-deliver it, and leaving it
  // stranded would stall the stream forever: every later message would wait on a gap that can
  // no longer fill.
  std::vector<uint64_t> sunk;
  StreamSequencer seq([&sunk](const InvalidationMessage& msg) { sunk.push_back(msg.seqno); });
  InvalidationMessage msg;
  msg.seqno = 5;
  seq.Deliver(msg);  // buffered: position is still 1
  msg.seqno = 6;
  seq.Deliver(msg);
  ASSERT_TRUE(sunk.empty());
  seq.AdoptPosition(5);
  EXPECT_EQ(sunk, (std::vector<uint64_t>{5, 6})) << "buffered live messages must drain";
  EXPECT_EQ(seq.next_expected_seqno(), 7u);
  EXPECT_EQ(seq.pending(), 0u);
  // And the stream keeps flowing afterwards.
  msg.seqno = 7;
  seq.Deliver(msg);
  EXPECT_EQ(sunk.back(), 7u);
}

TEST(Membership, ColdRestartJoinsEmptyAndServesNoPreCrashState) {
  ManualClock clock;
  InvalidationBus bus;
  auto incarnation1 = std::make_unique<CacheServer>("n1", &clock);
  bus.Subscribe(incarnation1.get());
  ASSERT_TRUE(incarnation1->Insert(StillValidEntry("k", "v", "g")).ok());
  bus.Publish(GroupInval("x", 5));  // advances the stream past the fresh-start position
  bus.Unsubscribe(incarnation1.get());
  incarnation1.reset();  // a true crash: the process and its memory are gone

  bus.Publish(GroupInval("g", 10));  // committed while no incarnation was alive

  CacheServer incarnation2("n1", &clock);
  ASSERT_TRUE(incarnation2.Join(&bus).ok());
  EXPECT_TRUE(incarnation2.serving());
  LookupResponse resp = incarnation2.Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit) << "a restarted process holds nothing from its previous life";
  EXPECT_EQ(resp.miss, MissKind::kCompulsory);
  EXPECT_EQ(incarnation2.stream_position(), bus.next_seqno());
}

// --- batched path under churn --------------------------------------------------

TEST(Membership, MultiLookupDegradesDownNodePositionsToMissesInRequestOrder) {
  ManualClock clock;
  CacheServer a("node-a", &clock), b("node-b", &clock);
  CacheCluster cluster;
  cluster.AddNode(&a);
  cluster.AddNode(&b);

  constexpr int kKeys = 32;
  std::vector<bool> owned_by_b(kKeys);
  int b_count = 0;
  for (int k = 0; k < kKeys; ++k) {
    InsertRequest req = StillValidEntry("item" + std::to_string(k), "val" + std::to_string(k), "g");
    ASSERT_TRUE(cluster.Insert(req).status.ok());
    owned_by_b[k] = cluster.NodeForKey(req.key).value() == &b;
    b_count += owned_by_b[k] ? 1 : 0;
  }
  ASSERT_GT(b_count, 0);
  ASSERT_LT(b_count, kKeys);

  // b crashes but stays in the ring (unplanned failure): its positions in a spanning batch
  // must degrade to kNodeUnavailable misses at their request-order slots, while a's positions
  // still hit — the batch never fails as a whole.
  b.Crash();
  MultiLookupRequest batch;
  for (int k = 0; k < kKeys; ++k) {
    batch.lookups.push_back(Probe("item" + std::to_string(k), 1, kTimestampInfinity));
  }
  auto resp_or = cluster.MultiLookup(batch);
  ASSERT_TRUE(resp_or.ok());
  ASSERT_EQ(resp_or.value().responses.size(), batch.lookups.size());
  for (int k = 0; k < kKeys; ++k) {
    const LookupResponse& r = resp_or.value().responses[k];
    if (owned_by_b[k]) {
      EXPECT_FALSE(r.hit);
      EXPECT_EQ(r.miss, MissKind::kNodeUnavailable) << "item" << k;
    } else {
      ASSERT_TRUE(r.hit) << "item" << k;
      EXPECT_EQ(r.value_ref(), "val" + std::to_string(k)) << "request-order reassembly broke";
    }
  }
  EXPECT_EQ(cluster.TotalStats().nodes_unavailable, static_cast<uint64_t>(b_count));

  // A planned leave (RemoveNode) instead reroutes b's arc: the same batch then answers every
  // position from a — b's keys as compulsory misses on their new owner, never an error.
  ASSERT_TRUE(cluster.RemoveNode("node-b"));
  auto rerouted = cluster.MultiLookup(batch);
  ASSERT_TRUE(rerouted.ok());
  for (int k = 0; k < kKeys; ++k) {
    const LookupResponse& r = rerouted.value().responses[k];
    if (owned_by_b[k]) {
      EXPECT_FALSE(r.hit);
      EXPECT_EQ(r.miss, MissKind::kCompulsory) << "rerouted key must miss compulsory on a";
    } else {
      EXPECT_TRUE(r.hit) << "item" << k;
    }
  }
}

TEST(Membership, SingleLookupAndInsertDegradeWhenUnroutable) {
  CacheCluster empty;
  LookupResponse resp = empty.Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kNodeUnavailable);
  EXPECT_EQ(empty.Insert(StillValidEntry("k", "v", "g")).status.code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(empty.NodeForKey("k").ok());
  EXPECT_NE(empty.NodeForKey("k").status().code(), StatusCode::kInternal)
      << "churn is never an internal error";
  EXPECT_EQ(empty.TotalStats().nodes_unavailable, 1u);
}

// --- full-stack crash/rejoin under live invalidation traffic -------------------

TEST(Membership, CrashRejoinUnderLiveTrafficNeverServesStaleReads) {
  // The §4.2 guarantee across a crash: a reader with a fresh staleness bound must never see
  // the pre-crash value of a pair that was updated while the cache node was down.
  SystemClock clock;
  Database db(&clock);
  InvalidationBus bus;
  db.set_invalidation_bus(&bus);
  CacheServer node("cache", &clock);
  bus.Subscribe(&node);
  CacheCluster cluster;
  cluster.AddNode(&node);
  Pincushion pincushion(&db, &clock);
  CreateAccountsTable(&db);
  InsertAccount(&db, 1, "a", 500);
  InsertAccount(&db, 2, "b", 500);

  TxCacheClient client(&db, &pincushion, &cluster, &clock);
  auto balance = client.MakeCacheable<int64_t, int64_t>("bal", [&client](int64_t id) -> int64_t {
    auto r = client.ExecuteQuery(AccountById(id));
    return r.ok() && !r.value().rows.empty() ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                                             : -1;
  });
  auto read_sum = [&]() -> int64_t {
    EXPECT_TRUE(client.BeginRO(Seconds(0)).ok());
    int64_t sum = balance(1) + balance(2);
    EXPECT_TRUE(client.Commit().ok());
    return sum;
  };

  ASSERT_EQ(read_sum(), 1000) << "warm the cache";

  // Crash, then transfer while the node is down: the invalidations for the transfer are lost.
  node.Crash();
  ASSERT_TRUE(client.BeginRW().ok());
  ASSERT_TRUE(client
                  .Update(kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{400})}})
                  .ok());
  ASSERT_TRUE(client
                  .Update(kAccounts, AccountById(2).from, nullptr,
                          {{AccountsCol::kBalance, Value(int64_t{600})}})
                  .ok());
  ASSERT_TRUE(client.Commit().ok());

  // While down every cacheable call recomputes (no stale reads possible, hit rate suffers).
  ASSERT_EQ(read_sum(), 1000);
  EXPECT_GE(client.stats().miss_node_unavailable, 2u);

  // Rejoin and read again with a fresh bound: the rejoined node must have caught up (or
  // flushed) — serving the pre-crash 500/500 snapshot as current would be the stale read.
  ASSERT_TRUE(node.Join(&bus).ok());
  ASSERT_TRUE(node.serving());
  ASSERT_TRUE(client.BeginRO(Seconds(0)).ok());
  EXPECT_EQ(balance(1), 400);
  EXPECT_EQ(balance(2), 600);
  ASSERT_TRUE(client.Commit().ok());
}

}  // namespace
}  // namespace txcache
