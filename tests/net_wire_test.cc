// Wire-protocol unit tests: framing (incremental parse, torn/truncated/oversized/garbage
// streams) and payload codec round-trips for every frame type. The transport-level behavior
// (sockets, timeouts, failure degradation) lives in net_transport_test.cc; this file never
// opens a socket.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/cache/cache_types.h"
#include "src/net/wire.h"
#include "src/util/status.h"

namespace txcache::net {
namespace {

LookupRequest SampleLookup() {
  LookupRequest req;
  req.key = "fn:user:42";
  req.key_hash = 0x1234567890abcdefull;
  req.bounds_lo = 7;
  req.bounds_hi = kTimestampInfinity;
  req.fresh_lo = 5;
  return req;
}

InsertRequest SampleInsert() {
  InsertRequest req;
  req.key = "fn:item:9";
  req.key_hash = 99;
  req.value = std::string("payload\0with\xff"
                          "binary",
                          19);
  req.interval = {11, kTimestampInfinity};
  req.computed_at = 11;
  req.tags = {InvalidationTag::Concrete("items", "idx_id", "\x09"),
              InvalidationTag::Wildcard("bids")};
  req.fill_cost_us = 420;
  return req;
}

// --- framing ---

TEST(WireFraming, EncodedFrameParsesBack) {
  const std::string payload = "hello payload";
  const std::string frame = EncodeFrame(FrameType::kLookupReq, 77, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  FrameHeader header;
  std::string_view got;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryParseFrame(frame, &header, &got, &consumed, &error), FrameParse::kFrame)
      << error;
  EXPECT_EQ(header.type, FrameType::kLookupReq);
  EXPECT_EQ(header.request_id, 77u);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(consumed, frame.size());
}

TEST(WireFraming, EveryTruncationPrefixNeedsMore) {
  // A torn frame — any strict prefix — must parse as kNeedMore, never kFrame or kError.
  const std::string frame = EncodeFrame(FrameType::kInsertReq, 5, "0123456789");
  for (size_t n = 0; n < frame.size(); ++n) {
    FrameHeader header;
    std::string_view payload;
    size_t consumed = 0;
    EXPECT_EQ(TryParseFrame(std::string_view(frame).substr(0, n), &header, &payload,
                            &consumed, nullptr),
              FrameParse::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(WireFraming, TwoFramesBackToBackParseInOrder) {
  const std::string a = EncodeFrame(FrameType::kPing, 1, "");
  const std::string b = EncodeFrame(FrameType::kLookupReq, 2, "xy");
  std::string buf = a + b;

  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(buf, &header, &payload, &consumed, nullptr), FrameParse::kFrame);
  EXPECT_EQ(header.type, FrameType::kPing);
  EXPECT_EQ(header.request_id, 1u);
  buf.erase(0, consumed);

  ASSERT_EQ(TryParseFrame(buf, &header, &payload, &consumed, nullptr), FrameParse::kFrame);
  EXPECT_EQ(header.type, FrameType::kLookupReq);
  EXPECT_EQ(header.request_id, 2u);
  EXPECT_EQ(payload, "xy");
  EXPECT_EQ(consumed, buf.size());
}

TEST(WireFraming, GarbageMagicIsAnErrorImmediately) {
  // The magic check fires as soon as four bytes are present — a client talking HTTP (or
  // anything else) to the cache port is rejected before it can stream a bogus "length".
  std::string garbage = "GET / HTTP/1.1\r\n";
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryParseFrame(garbage, &header, &payload, &consumed, &error), FrameParse::kError);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(TryParseFrame(std::string_view(garbage).substr(0, 4), &header, &payload,
                          &consumed, nullptr),
            FrameParse::kError);
}

TEST(WireFraming, WrongVersionAndUnknownTypeAreErrors) {
  std::string frame = EncodeFrame(FrameType::kPing, 1, "");
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;

  std::string bad_version = frame;
  bad_version[4] = 99;  // version byte
  EXPECT_EQ(TryParseFrame(bad_version, &header, &payload, &consumed, nullptr),
            FrameParse::kError);

  std::string bad_type = frame;
  bad_type[5] = static_cast<char>(200);  // type byte
  EXPECT_EQ(TryParseFrame(bad_type, &header, &payload, &consumed, nullptr),
            FrameParse::kError);
}

TEST(WireFraming, OversizedLengthIsAnErrorNotAnAllocation) {
  // Header claims a payload beyond kMaxFramePayload: reject at header-parse time, i.e. with
  // only 20 bytes in the buffer (kNeedMore here would make clients buffer 4 GiB of nothing).
  std::string frame = EncodeFrame(FrameType::kLookupReq, 1, "x");
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));  // payload_len field
  FrameHeader header;
  std::string_view payload;
  size_t consumed = 0;
  EXPECT_EQ(TryParseFrame(std::string_view(frame).substr(0, kFrameHeaderBytes), &header,
                          &payload, &consumed, nullptr),
            FrameParse::kError);
}

TEST(WireFraming, CorruptionCorpusNeverCrashesOrOverreads) {
  // Flip each byte of a valid two-frame stream and re-parse from scratch: every outcome must
  // be one of the three parse results with in-bounds `consumed` — no crashes, no throws.
  const std::string stream = EncodeFrame(FrameType::kInsertReq, 3, "abcdef") +
                             EncodeFrame(FrameType::kLookupReq, 4, "0123456789");
  for (size_t i = 0; i < stream.size(); ++i) {
    for (int delta : {1, 0x7f, 0xff}) {
      std::string mutated = stream;
      mutated[i] = static_cast<char>(mutated[i] + delta);
      std::string_view rest = mutated;
      for (int frames = 0; frames < 3; ++frames) {
        FrameHeader header;
        std::string_view payload;
        size_t consumed = 0;
        FrameParse parse = TryParseFrame(rest, &header, &payload, &consumed, nullptr);
        if (parse != FrameParse::kFrame) {
          break;  // kError closes the stream; kNeedMore waits — both safe
        }
        ASSERT_LE(consumed, rest.size());
        ASSERT_LE(header.payload_len, kMaxFramePayload);
        rest.remove_prefix(consumed);
      }
    }
  }
}

// --- request codecs ---

TEST(WireCodec, LookupRequestRoundTrip) {
  const LookupRequest req = SampleLookup();
  LookupRequest out;
  ASSERT_TRUE(DecodeLookupRequest(EncodeLookupRequest(req), &out));
  EXPECT_EQ(out.key, req.key);
  EXPECT_EQ(out.key_hash, req.key_hash);
  EXPECT_EQ(out.bounds_lo, req.bounds_lo);
  EXPECT_EQ(out.bounds_hi, req.bounds_hi);
  EXPECT_EQ(out.fresh_lo, req.fresh_lo);
}

TEST(WireCodec, MultiLookupRequestRoundTrip) {
  MultiLookupRequest req;
  for (int i = 0; i < 5; ++i) {
    LookupRequest one = SampleLookup();
    one.key += std::to_string(i);
    req.lookups.push_back(one);
  }
  MultiLookupRequest out;
  ASSERT_TRUE(DecodeMultiLookupRequest(EncodeMultiLookupRequest(req), &out));
  ASSERT_EQ(out.lookups.size(), 5u);
  EXPECT_EQ(out.lookups[4].key, req.lookups[4].key);
}

TEST(WireCodec, InsertRequestRoundTripWithBinaryValueAndTags) {
  const InsertRequest req = SampleInsert();
  InsertRequest out;
  ASSERT_TRUE(DecodeInsertRequest(EncodeInsertRequest(req), &out));
  EXPECT_EQ(out.key, req.key);
  EXPECT_EQ(out.value, req.value);
  EXPECT_EQ(out.interval.lower, req.interval.lower);
  EXPECT_EQ(out.interval.upper, req.interval.upper);
  EXPECT_EQ(out.computed_at, req.computed_at);
  ASSERT_EQ(out.tags.size(), 2u);
  EXPECT_EQ(out.tags[0], req.tags[0]);
  EXPECT_EQ(out.tags[1], req.tags[1]);
  EXPECT_EQ(out.fill_cost_us, req.fill_cost_us);
}

TEST(WireCodec, IntentRequestRoundTrip) {
  IntentRequest req;
  req.key = "k";
  req.key_hash = 1;
  req.txn_id = 0xfeedfacecafebeefull;
  IntentRequest out;
  ASSERT_TRUE(DecodeIntentRequest(EncodeIntentRequest(req), &out));
  EXPECT_EQ(out.key, req.key);
  EXPECT_EQ(out.txn_id, req.txn_id);
}

TEST(WireCodec, InvalidationMessageRoundTrip) {
  InvalidationMessage msg;
  msg.seqno = 31337;
  msg.ts = 1234;
  msg.wallclock = 5678;
  msg.tags = {InvalidationTag::Concrete("users", "idx", "abc"),
              InvalidationTag::Wildcard("items")};
  InvalidationMessage out;
  ASSERT_TRUE(DecodeInvalidationMessage(EncodeInvalidationMessage(msg), &out));
  EXPECT_EQ(out.seqno, msg.seqno);
  EXPECT_EQ(out.ts, msg.ts);
  EXPECT_EQ(out.wallclock, msg.wallclock);
  EXPECT_EQ(out.tags, msg.tags);
}

// --- response codecs ---

TEST(WireCodec, LookupResponseHitRoundTrip) {
  LookupResponse resp;
  resp.hit = true;
  resp.value = std::make_shared<const std::string>("the value");
  resp.fill_cost_us = 777;
  resp.interval = {10, 20};
  resp.still_valid = true;
  resp.tags = std::make_shared<const std::vector<InvalidationTag>>(
      std::vector<InvalidationTag>{InvalidationTag::Concrete("t", "i", "k")});
  auto hints = std::make_shared<AdvisoryHints>();
  hints->learned_lifetime_us = 5000;
  hints->observed_bpb = 1.5;
  hints->decline_rate = 0.25;
  resp.hints = hints;
  resp.intent_owner = 404;

  LookupResponse out;
  ASSERT_TRUE(DecodeLookupResponse(EncodeLookupResponse(resp), &out));
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.miss, MissKind::kNone);
  ASSERT_NE(out.value, nullptr);
  EXPECT_EQ(*out.value, "the value");
  EXPECT_EQ(out.fill_cost_us, 777u);
  EXPECT_EQ(out.interval.lower, 10u);
  EXPECT_EQ(out.interval.upper, 20u);
  EXPECT_TRUE(out.still_valid);
  ASSERT_NE(out.tags, nullptr);
  EXPECT_EQ(out.tags->size(), 1u);
  ASSERT_NE(out.hints, nullptr);
  EXPECT_EQ(out.hints->learned_lifetime_us, 5000u);
  EXPECT_DOUBLE_EQ(out.hints->observed_bpb, 1.5);
  EXPECT_EQ(out.intent_owner, 404u);
}

TEST(WireCodec, LookupResponseMissRoundTripsEveryMissKind) {
  for (MissKind kind : {MissKind::kNone, MissKind::kCompulsory, MissKind::kStaleness,
                        MissKind::kCapacity, MissKind::kConsistency,
                        MissKind::kNodeUnavailable}) {
    LookupResponse resp;
    resp.hit = false;
    resp.miss = kind;
    LookupResponse out;
    ASSERT_TRUE(DecodeLookupResponse(EncodeLookupResponse(resp), &out));
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(out.miss, kind);
    EXPECT_EQ(out.value, nullptr);
    EXPECT_EQ(out.tags, nullptr);
    EXPECT_EQ(out.hints, nullptr);
  }
}

TEST(WireCodec, MultiLookupResponseRoundTrip) {
  MultiLookupResponse resp;
  LookupResponse hit;
  hit.hit = true;
  hit.value = std::make_shared<const std::string>("v");
  hit.interval = {1, 2};
  resp.responses.push_back(hit);
  LookupResponse miss;
  miss.miss = MissKind::kCapacity;
  resp.responses.push_back(miss);

  MultiLookupResponse out;
  ASSERT_TRUE(DecodeMultiLookupResponse(EncodeMultiLookupResponse(resp), &out));
  ASSERT_EQ(out.responses.size(), 2u);
  EXPECT_TRUE(out.responses[0].hit);
  EXPECT_EQ(*out.responses[0].value, "v");
  EXPECT_FALSE(out.responses[1].hit);
  EXPECT_EQ(out.responses[1].miss, MissKind::kCapacity);
}

TEST(WireCodec, InsertOutcomeRoundTrip) {
  auto hints = std::make_shared<AdvisoryHints>();
  hints->learned_lifetime_us = 123;
  const std::string wire =
      EncodeInsertOutcome(Status::DeclinedTooLarge("too big"), hints);
  Status status;
  std::shared_ptr<const AdvisoryHints> got_hints;
  ASSERT_TRUE(DecodeInsertOutcome(wire, &status, &got_hints));
  EXPECT_EQ(status.code(), StatusCode::kDeclinedTooLarge);
  EXPECT_EQ(status.message(), "too big");
  ASSERT_NE(got_hints, nullptr);
  EXPECT_EQ(got_hints->learned_lifetime_us, 123u);

  // And the hint-less form.
  const std::string wire2 = EncodeInsertOutcome(Status::Ok(), nullptr);
  ASSERT_TRUE(DecodeInsertOutcome(wire2, &status, &got_hints));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(got_hints, nullptr);
}

TEST(WireCodec, IntentResponseRoundTrip) {
  IntentResponse resp;
  resp.status = Status::Conflict("held");
  resp.holder = 9009;
  IntentResponse out;
  ASSERT_TRUE(DecodeIntentResponse(EncodeIntentResponse(resp), &out));
  EXPECT_EQ(out.status.code(), StatusCode::kConflict);
  EXPECT_EQ(out.holder, 9009u);
}

TEST(WireCodec, StatusRoundTrip) {
  Status out;
  ASSERT_TRUE(DecodeStatus(EncodeStatus(Status::Unavailable("gone")), &out));
  EXPECT_EQ(out.code(), StatusCode::kUnavailable);
  EXPECT_EQ(out.message(), "gone");
}

// --- hostile payloads ---

TEST(WireCodec, DecodersRejectTruncatedAndTrailingBytes) {
  const std::string lookup = EncodeLookupRequest(SampleLookup());
  const std::string insert = EncodeInsertRequest(SampleInsert());
  LookupRequest lr;
  InsertRequest ir;

  // Every strict prefix must fail (no partial decode presented as success)...
  for (size_t n = 0; n < lookup.size(); ++n) {
    EXPECT_FALSE(DecodeLookupRequest(std::string_view(lookup).substr(0, n), &lr));
  }
  for (size_t n = 0; n < insert.size(); ++n) {
    EXPECT_FALSE(DecodeInsertRequest(std::string_view(insert).substr(0, n), &ir));
  }
  // ...and so must trailing garbage (a frame length lying about its payload).
  EXPECT_FALSE(DecodeLookupRequest(lookup + "x", &lr));
  EXPECT_FALSE(DecodeInsertRequest(insert + "x", &ir));
}

TEST(WireCodec, ResponseDecodersRejectOutOfRangeEnums) {
  LookupResponse resp;
  resp.miss = MissKind::kCapacity;
  std::string wire = EncodeLookupResponse(resp);
  // First byte is `hit`, second is the MissKind — forge an undefined enum value.
  ASSERT_GE(wire.size(), 2u);
  wire[1] = static_cast<char>(250);
  LookupResponse out;
  EXPECT_FALSE(DecodeLookupResponse(wire, &out));

  Status status;
  std::string swire = EncodeStatus(Status::Ok());
  swire[0] = static_cast<char>(250);  // StatusCode byte
  EXPECT_FALSE(DecodeStatus(swire, &status));
}

TEST(WireCodec, MultiLookupResponseRejectsLyingCount) {
  // A count far beyond the remaining bytes must fail fast, not allocate per claimed entry.
  MultiLookupResponse resp;
  resp.responses.emplace_back();
  std::string wire = EncodeMultiLookupResponse(resp);
  const uint32_t lie = 0x40000000;
  std::memcpy(wire.data() + 8, &lie, sizeof(lie));  // count field (after u64 ring_epoch)
  MultiLookupResponse out;
  EXPECT_FALSE(DecodeMultiLookupResponse(wire, &out));
}

TEST(WireCodec, RandomBytesNeverDecode) {
  // Deterministic xorshift corpus — decoders must fail or succeed cleanly, never crash.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string junk;
    const size_t len = next() % 64;
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(next()));
    }
    LookupRequest lr;
    InsertRequest ir;
    LookupResponse lresp;
    IntentResponse iresp;
    Status st;
    DecodeLookupRequest(junk, &lr);
    DecodeInsertRequest(junk, &ir);
    DecodeLookupResponse(junk, &lresp);
    DecodeIntentResponse(junk, &iresp);
    DecodeStatus(junk, &st);
  }
  SUCCEED();
}

}  // namespace
}  // namespace txcache::net
