// Unit tests for the engine's internal building blocks: the transaction manager (CLOG), the
// versioned heap, ordered indexes, and the validity tracker in isolation.
#include <gtest/gtest.h>

#include "src/db/heap.h"
#include "src/db/index.h"
#include "src/db/txn_manager.h"
#include "src/db/validity.h"

namespace txcache {
namespace {

TEST(TxnManager, IdsAreDenseAndOneBased) {
  TxnManager clog;
  EXPECT_EQ(clog.Begin(0, false), 1u);
  EXPECT_EQ(clog.Begin(0, true), 2u);
  EXPECT_EQ(clog.Begin(0, false), 3u);
  EXPECT_EQ(clog.transaction_count(), 3u);
}

TEST(TxnManager, CommitAssignsDenseTimestamps) {
  TxnManager clog;
  TxnId a = clog.Begin(0, false);
  TxnId b = clog.Begin(0, false);
  EXPECT_EQ(clog.Commit(b, 100), 1u);
  EXPECT_EQ(clog.Commit(a, 200), 2u);
  EXPECT_EQ(clog.latest_commit_ts(), 2u);
  EXPECT_EQ(clog.CommitWallClock(1), 100);
  EXPECT_EQ(clog.CommitWallClock(2), 200);
}

TEST(TxnManager, StateTransitions) {
  TxnManager clog;
  TxnId a = clog.Begin(0, false);
  EXPECT_TRUE(clog.IsInProgress(a));
  clog.Commit(a, 1);
  EXPECT_TRUE(clog.IsCommitted(a));
  TxnId b = clog.Begin(1, false);
  clog.Abort(b);
  EXPECT_TRUE(clog.IsAborted(b));
  TxnId c = clog.Begin(1, true);
  clog.FinishReadOnly(c);
  EXPECT_TRUE(clog.IsCommitted(c));
  EXPECT_EQ(clog.CommitTs(c), kTimestampZero) << "read-only finish consumes no timestamp";
}

TEST(TxnManager, PinRefcounting) {
  TxnManager clog;
  EXPECT_EQ(clog.Pin(5), 1);
  EXPECT_EQ(clog.Pin(5), 2);
  EXPECT_TRUE(clog.IsPinned(5));
  EXPECT_TRUE(clog.Unpin(5).ok());
  EXPECT_TRUE(clog.IsPinned(5));
  EXPECT_TRUE(clog.Unpin(5).ok());
  EXPECT_FALSE(clog.IsPinned(5));
  EXPECT_FALSE(clog.Unpin(5).ok());
}

TEST(TxnManager, VacuumHorizonMinOfPinsAndLiveTxns) {
  TxnManager clog;
  for (int i = 0; i < 5; ++i) {
    TxnId t = clog.Begin(clog.latest_commit_ts(), false);
    clog.Commit(t, i);
  }
  EXPECT_EQ(clog.VacuumHorizon(), 5u) << "nothing holds history back";
  clog.Pin(2);
  EXPECT_EQ(clog.VacuumHorizon(), 2u);
  TxnId live = clog.Begin(/*snapshot=*/1, true);
  EXPECT_EQ(clog.VacuumHorizon(), 1u) << "a running transaction's snapshot wins";
  clog.FinishReadOnly(live);
  clog.AdvanceLiveScanFloor();
  EXPECT_EQ(clog.VacuumHorizon(), 2u);
  clog.Unpin(2);
  EXPECT_EQ(clog.VacuumHorizon(), 5u);
}

TEST(TxnManager, WallClockHistoryPruning) {
  TxnManager clog;
  for (int i = 0; i < 10; ++i) {
    clog.Commit(clog.Begin(0, false), i * 100);
  }
  clog.PruneWallClockHistory(6);
  EXPECT_EQ(clog.CommitWallClock(3), 0) << "pruned";
  EXPECT_EQ(clog.CommitWallClock(7), 600) << "retained";
}

TEST(Heap, AppendAndVacuumAccounting) {
  Heap heap;
  TupleId a = heap.Append(Row{Value(int64_t{1}), Value("x")}, 1);
  TupleId b = heap.Append(Row{Value(int64_t{2}), Value("y")}, 1);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_GT(heap.live_bytes(), 0u);
  size_t before = heap.live_bytes();
  heap.MarkVacuumed(a);
  EXPECT_EQ(heap.vacuumed_count(), 1u);
  EXPECT_LT(heap.live_bytes(), before);
  EXPECT_TRUE(heap.Get(a).vacuumed);
  EXPECT_TRUE(heap.Get(a).row.empty()) << "memory released";
  heap.MarkVacuumed(a);  // idempotent
  EXPECT_EQ(heap.vacuumed_count(), 1u);
  EXPECT_FALSE(heap.Get(b).vacuumed);
}

TEST(Heap, ReferencesStableAcrossGrowth) {
  Heap heap;
  TupleId first = heap.Append(Row{Value(int64_t{0})}, 1);
  const TupleVersion* p = &heap.Get(first);
  for (int64_t i = 1; i < 4096; ++i) {
    heap.Append(Row{Value(i)}, 1);
  }
  EXPECT_EQ(p, &heap.Get(first)) << "deque storage must not relocate";
}

TEST(OrderedIndex, InsertLookupRemove) {
  OrderedIndex index(IndexSchema{"i", "t", {0}, false});
  index.Insert(Row{Value(int64_t{5})}, 10);
  index.Insert(Row{Value(int64_t{5})}, 11);
  index.Insert(Row{Value(int64_t{7})}, 12);
  ASSERT_NE(index.Lookup(Row{Value(int64_t{5})}), nullptr);
  EXPECT_EQ(index.Lookup(Row{Value(int64_t{5})})->size(), 2u);
  EXPECT_EQ(index.Lookup(Row{Value(int64_t{9})}), nullptr);
  index.Remove(Row{Value(int64_t{5})}, 10);
  EXPECT_EQ(index.Lookup(Row{Value(int64_t{5})})->size(), 1u);
  index.Remove(Row{Value(int64_t{5})}, 11);
  EXPECT_EQ(index.Lookup(Row{Value(int64_t{5})}), nullptr) << "empty bucket erased";
  EXPECT_EQ(index.distinct_keys(), 1u);
  index.Remove(Row{Value(int64_t{42})}, 99);  // removing absent entries is a no-op
}

TEST(OrderedIndex, CompositeKeysAndRange) {
  OrderedIndex index(IndexSchema{"i", "t", {1, 0}, false});
  Row row{Value(int64_t{7}), Value("b")};
  EXPECT_EQ(index.ExtractKey(row), (Row{Value("b"), Value(int64_t{7})}));
  for (int64_t i = 0; i < 10; ++i) {
    index.Insert(Row{Value("k"), Value(i)}, static_cast<TupleId>(i));
  }
  std::vector<TupleId> seen;
  index.Range(Row{Value("k"), Value(int64_t{3})}, Row{Value("k"), Value(int64_t{6})},
              [&](const Row&, TupleId id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<TupleId>{3, 4, 5, 6}));
}

TEST(OrderedIndex, RangeOpenEnds) {
  OrderedIndex index(IndexSchema{"i", "t", {0}, false});
  for (int64_t i = 0; i < 5; ++i) {
    index.Insert(Row{Value(i)}, static_cast<TupleId>(i));
  }
  size_t count = 0;
  index.Range(std::nullopt, std::nullopt, [&](const Row&, TupleId) { ++count; });
  EXPECT_EQ(count, 5u);
}

TEST(ValidityTracker, DisabledTrackerIsFree) {
  TxnManager clog;
  ValidityTracker tracker(&clog, 0, /*enabled=*/false);
  TupleVersion v;
  v.xmin = 1;
  tracker.ObserveVisible(v);
  tracker.ObserveInvisible(v);
  EXPECT_EQ(tracker.Finalize(), Interval::All());
}

TEST(ValidityTracker, LifetimeFromClog) {
  TxnManager clog;
  TxnId creator = clog.Begin(0, false);
  clog.Commit(creator, 10);
  TxnId deleter = clog.Begin(1, false);
  TupleVersion v;
  v.xmin = creator;
  v.xmax = deleter;
  ValidityTracker tracker(&clog, 1, true);
  EXPECT_EQ(tracker.Lifetime(v), (Interval{1, kTimestampInfinity}))
      << "uncommitted deleter does not bound the lifetime";
  clog.Commit(deleter, 20);
  EXPECT_EQ(tracker.Lifetime(v), (Interval{1, 2}));
}

TEST(ValidityTracker, UncommittedCreatorIgnoredInMask) {
  TxnManager clog;
  TxnId committed = clog.Begin(0, false);
  clog.Commit(committed, 1);
  TxnId pending = clog.Begin(1, false);
  ValidityTracker tracker(&clog, 1, true);
  TupleVersion ghost;
  ghost.xmin = pending;  // in progress: cannot constrain any committed timestamp
  tracker.ObserveInvisible(ghost);
  EXPECT_TRUE(tracker.mask().empty());
  TxnId aborted = clog.Begin(1, false);
  clog.Abort(aborted);
  TupleVersion dead;
  dead.xmin = aborted;
  tracker.ObserveInvisible(dead);
  EXPECT_TRUE(tracker.mask().empty());
}

}  // namespace
}  // namespace txcache
