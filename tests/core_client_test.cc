// TxCache client library tests (paper §2, §6): cacheable functions, lazy timestamp selection,
// pin-set narrowing, nested calls, staleness, and the evaluation modes.
#include <gtest/gtest.h>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(TxCacheClient::Options{}); }

  void Reset(TxCacheClient::Options options) { Reset(options, CacheServer::Options{}); }

  void Reset(TxCacheClient::Options options, CacheServer::Options cache_options) {
    client_.reset();
    pincushion_.reset();
    cluster_ = std::make_unique<CacheCluster>();
    cache_ = std::make_unique<CacheServer>("node", &clock_, cache_options);
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    bus_->Subscribe(cache_.get());
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    CreateAccountsTable(db_.get());
    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_, options);
  }

  // A cacheable function counting real executions.
  CacheableFunction<int64_t, int64_t> MakeBalanceFn(int* executions) {
    return client_->MakeCacheable<int64_t, int64_t>(
        "balance", [this, executions](int64_t id) -> int64_t {
          ++*executions;
          auto r = client_->ExecuteQuery(AccountById(id));
          if (!r.ok() || r.value().rows.empty()) {
            return -1;
          }
          return r.value().rows[0][AccountsCol::kBalance].AsInt();
        });
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<TxCacheClient> client_;
};

TEST_F(ClientTest, TransactionLifecycleErrors) {
  EXPECT_FALSE(client_->Commit().ok());
  EXPECT_FALSE(client_->Abort().ok());
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_FALSE(client_->BeginRO().ok()) << "no nested transactions";
  EXPECT_FALSE(client_->BeginRW().ok());
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(client_->Abort().ok());
  EXPECT_FALSE(client_->in_transaction());
}

TEST_F(ClientTest, MissComputeInsertThenHit) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);

  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 1);

  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 1) << "second call served from the cache";
  EXPECT_EQ(client_->stats().cache_hits, 1u);
  EXPECT_EQ(client_->stats().cache_inserts, 1u);
}

TEST_F(ClientTest, DistinctArgumentsGetDistinctEntries) {
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "bob", 50);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  EXPECT_EQ(balance(2), 50);
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 2);
  EXPECT_EQ(client_->stats().cache_hits, 1u) << "repeat call within txn hits";
}

TEST_F(ClientTest, UpdateInvalidatesCachedResult) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());

  UpdateBalance(db_.get(), 1, 500);
  clock_.Advance(Seconds(1));  // the old pin is now genuinely stale for a 0 s limit

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(balance(1), 500) << "fresh transaction sees the committed update";
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 2);
}

TEST_F(ClientTest, StaleTransactionMayUseInvalidatedEntry) {
  // An invalidated entry stays useful within the staleness limit (§8.2).
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  UpdateBalance(db_.get(), 1, 500);
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(Seconds(30)).ok());
  EXPECT_EQ(balance(1), 100) << "stale but consistent value acceptable within the limit";
  auto ts = client_->Commit();
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(executions, 1);
}

TEST_F(ClientTest, CommitTimestampEnablesMonotonicReads) {
  // The paper's session pattern: pass the last transaction's timestamp forward so a user never
  // observes time moving backwards.
  InsertAccount(db_.get(), 1, "alice", 100);
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(client_
                  ->Update(kAccounts, AccountById(1).from, nullptr,
                           {{AccountsCol::kBalance, Value(int64_t{500})}})
                  .ok());
  auto w = client_->Commit();
  ASSERT_TRUE(w.ok());

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  auto r = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][AccountsCol::kBalance].AsInt(), 500);
  auto ts = client_->Commit();
  ASSERT_TRUE(ts.ok());
  EXPECT_GE(ts.value(), w.value());
}

TEST_F(ClientTest, RwTransactionsBypassCache) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_TRUE(client_->BeginRW().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 2) << "RW transactions execute the implementation directly (§2.2)";
  EXPECT_EQ(client_->stats().bypassed_calls, 1u);
}

TEST_F(ClientTest, WritesRequireRwTransaction) {
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(client_->Insert(kAccounts, Account(1, "x", 0)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(client_->Update(kAccounts, AccountById(1).from, nullptr, {}).ok());
  EXPECT_FALSE(client_->Delete(kAccounts, AccountById(1).from, nullptr).ok());
  client_->Commit();
}

TEST_F(ClientTest, CacheOnlyTransactionNeverTouchesDatabase) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  uint64_t queries_before = client_->stats().db_queries;

  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(client_->stats().db_queries, queries_before)
      << "fully cached transaction issues no database queries (§6.1)";
}

TEST_F(ClientTest, LazyTimestampPrefersExistingPin) {
  // Policy (§6.2): within the new-pin threshold, reuse the newest pinned snapshot rather than
  // pinning a new one.
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);  // pins a snapshot
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(client_->stats().pins_created, 1u);
  UpdateBalance(db_.get(), 1, 500);
  clock_.Advance(Seconds(1));  // within the 5 s threshold

  ASSERT_TRUE(client_->BeginRO().ok());
  auto r = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][AccountsCol::kBalance].AsInt(), 100)
      << "query ran on the existing pinned snapshot, before the update";
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(client_->stats().pins_created, 1u) << "no new pin";
}

TEST_F(ClientTest, LazyTimestampPinsFreshAfterThreshold) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  UpdateBalance(db_.get(), 1, 500);
  clock_.Advance(Seconds(10));  // beyond the 5 s threshold

  ASSERT_TRUE(client_->BeginRO(Seconds(60)).ok());
  auto r = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][AccountsCol::kBalance].AsInt(), 500)
      << "the * choice pinned a fresh snapshot";
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(client_->stats().pins_created, 2u);
}

TEST_F(ClientTest, PinSetNarrowsOnObservations) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  // Create two pinned snapshots by running two transactions 6+ seconds apart.
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  Timestamp update_ts = UpdateBalance(db_.get(), 1, 500);
  clock_.Advance(Seconds(6));
  ASSERT_TRUE(client_->BeginRO().ok());
  auto q = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(client_->Commit().ok());

  // Now both pins are fresh. A new transaction starts with both in its pin set; observing the
  // *new* version of account 1 must eliminate the older pin.
  ASSERT_TRUE(client_->BeginRO(Seconds(60)).ok());
  EXPECT_GE(client_->pin_set().pin_count(), 2u);
  auto r = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(r.ok());
  if (r.value().rows[0][AccountsCol::kBalance].AsInt() == 500) {
    for (const PinInfo& pin : client_->pin_set().pins()) {
      EXPECT_GE(pin.ts, update_ts) << "pins inconsistent with the observation were removed";
    }
  }
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(ClientTest, ConsistencyAcrossCacheAndDatabase) {
  // The core guarantee (§2.2, Invariant 1): cached values and database reads in one transaction
  // reflect one snapshot, even when updates race between them.
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "bob", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);

  // Warm the cache with both balances.
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1) + balance(2), 200);
  ASSERT_TRUE(client_->Commit().ok());

  // A transfer moves 50 from alice to bob (invariant: sum == 200).
  {
    TxnId txn = db_->BeginReadWrite();
    ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                            {{AccountsCol::kBalance, Value(int64_t{50})}})
                    .ok());
    ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(2).from, nullptr,
                            {{AccountsCol::kBalance, Value(int64_t{150})}})
                    .ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }

  // Any later transaction — whatever mix of cache and database it reads — must see sum 200.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(client_->BeginRO().ok());
    int64_t sum = balance(1) + balance(2);
    ASSERT_TRUE(client_->Commit().ok());
    EXPECT_EQ(sum, 200) << "round " << round << ": mixed cache/db reads broke the invariant";
    clock_.Advance(Seconds(2));
  }
}

TEST_F(ClientTest, NestedCallsPropagateValidityAndTags) {
  InsertAccount(db_.get(), 1, "alice", 100);
  int inner_runs = 0, outer_runs = 0;
  auto inner = MakeBalanceFn(&inner_runs);
  auto outer = client_->MakeCacheable<std::string, int64_t>(
      "page", [&](int64_t id) {
        ++outer_runs;
        return "balance=" + std::to_string(inner(id));
      });

  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(outer(1), "balance=100");
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(inner_runs, 1);
  EXPECT_EQ(outer_runs, 1);

  // An update must invalidate BOTH cached entries — the outer one inherited the inner's tags.
  UpdateBalance(db_.get(), 1, 999);
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(outer(1), "balance=999");
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(outer_runs, 2);
  EXPECT_EQ(inner_runs, 2);
}

TEST_F(ClientTest, NestedHitInsideOuterMiss) {
  // Inner result cached from an earlier transaction; outer recomputes and must inherit the
  // inner entry's validity/tags even though the inner call was a cache hit.
  InsertAccount(db_.get(), 1, "alice", 100);
  int inner_runs = 0, outer_runs = 0;
  auto inner = MakeBalanceFn(&inner_runs);
  ASSERT_TRUE(client_->BeginRO().ok());
  inner(1);
  ASSERT_TRUE(client_->Commit().ok());

  auto outer = client_->MakeCacheable<std::string, int64_t>(
      "page2", [&](int64_t id) {
        ++outer_runs;
        return "b=" + std::to_string(inner(id));
      });
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(outer(1), "b=100");
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(inner_runs, 1) << "inner call hit the cache inside the outer miss";

  // Invalidate: the outer entry (built from the cached inner value) must be invalidated too.
  UpdateBalance(db_.get(), 1, 7);
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(outer(1), "b=7");
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(outer_runs, 2);
}

TEST_F(ClientTest, ThrowingCacheableFunctionLeavesCleanState) {
  InsertAccount(db_.get(), 1, "alice", 100);
  auto boom = client_->MakeCacheable<int64_t, int64_t>(
      "boom", [](int64_t) -> int64_t { throw std::runtime_error("kaboom"); });
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_THROW(boom(1), std::runtime_error);
  // The frame stack must be clean: other cacheable calls still work and cache correctly.
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(client_->stats().cache_inserts, 1u);
}

TEST_F(ClientTest, PureFunctionCachedForever) {
  int executions = 0;
  auto pure = client_->MakeCacheable<int64_t, int64_t>("square", [&](int64_t x) {
    ++executions;
    return x * x;
  });
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(pure(9), 81);
  ASSERT_TRUE(client_->Commit().ok());
  UpdateBalance(db_.get(), 999, 0);  // no-op update; just advances time
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(pure(9), 81);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 1) << "no database dependency, never invalidated";
}

TEST_F(ClientTest, DeclinedTooLargeFillRecomputesWithoutRetryAndKeepsAccounting) {
  // The size-aware gate refuses every fill of a function whose serialized result exceeds its
  // shard's max_entry_fraction slice. The client must simply keep recomputing — one
  // execution per call, no insert retry loop — count the declines in the dedicated counter,
  // and keep hits + misses == lookups on both sides of the wire.
  CacheServer::Options cache_options;
  cache_options.capacity_bytes = 16 * 1024;
  cache_options.num_shards = 1;
  cache_options.max_entry_fraction = 0.05;  // 820-byte ceiling: the 4 KB result never fits
  Reset(TxCacheClient::Options{}, cache_options);
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto blob = client_->MakeCacheable<std::string, int64_t>("blob", [&](int64_t id) {
    ++executions;
    auto r = client_->ExecuteQuery(AccountById(id));  // real DB work: tags + validity
    return std::string(4096, r.ok() ? 'b' : '?');
  });

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(client_->BeginRO().ok());
    EXPECT_EQ(blob(1).size(), 4096u);
    ASSERT_TRUE(client_->Commit().ok());
  }
  EXPECT_EQ(executions, 3) << "every call recomputes exactly once: decline, not retry";

  const ClientStats stats = client_->stats();
  EXPECT_EQ(stats.inserts_declined_too_large, 3u);
  EXPECT_EQ(stats.inserts_declined, 0u) << "size declines are counted separately";
  EXPECT_EQ(stats.cache_inserts, 0u);
  EXPECT_EQ(stats.cacheable_calls, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 3u);

  // Server-side accounting closes too (this was the PR-2 gap: nothing covered the decline
  // path through a real CacheableFunction).
  const CacheStats cs = cache_->stats();
  EXPECT_EQ(cs.hits + cs.misses(), cs.lookups);
  EXPECT_EQ(cs.admission_rejects_too_large, 3u);
  EXPECT_EQ(cs.inserts, 0u);

  // The feedback loop: the decline responses carried hints, so the call site can see that
  // 100% of its fills are refused and adapt its sizing.
  auto hints = blob.hints();
  ASSERT_TRUE(hints.has_value());
  EXPECT_DOUBLE_EQ(hints->decline_rate, 1.0);
}

TEST_F(ClientTest, NoCacheModeAlwaysExecutes) {
  TxCacheClient::Options options;
  options.mode = ClientMode::kNoCache;
  Reset(options);
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client_->BeginRO().ok());
    EXPECT_EQ(balance(1), 100);
    ASSERT_TRUE(client_->Commit().ok());
  }
  EXPECT_EQ(executions, 3);
  EXPECT_EQ(client_->stats().cache_hits, 0u);
  EXPECT_EQ(cache_->stats().lookups, 0u);
}

TEST_F(ClientTest, NoConsistencyModeServesFreshEnoughData) {
  TxCacheClient::Options options;
  options.mode = ClientMode::kNoConsistency;
  Reset(options);
  InsertAccount(db_.get(), 1, "alice", 100);
  int executions = 0;
  auto balance = MakeBalanceFn(&executions);
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  UpdateBalance(db_.get(), 1, 500);
  ASSERT_TRUE(client_->BeginRO(Seconds(30)).ok());
  EXPECT_EQ(balance(1), 100) << "stale version within the window is fine here";
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions, 1);
}

TEST_F(ClientTest, DestructorAbortsOpenTransaction) {
  InsertAccount(db_.get(), 1, "a", 1);
  {
    TxCacheClient doomed(db_.get(), pincushion_.get(), cluster_.get(), &clock_);
    ASSERT_TRUE(doomed.BeginRW().ok());
    ASSERT_TRUE(doomed.Insert(kAccounts, Account(2, "ghost", 0)).ok());
  }
  EXPECT_TRUE(ReadLatest(db_.get(), AccountById(2)).rows.empty()) << "insert rolled back";
}

TEST_F(ClientTest, PinsReleasedAtTransactionEnd) {
  InsertAccount(db_.get(), 1, "a", 1);
  ASSERT_TRUE(client_->BeginRO().ok());
  auto r = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(client_->Commit().ok());
  // After release + long idle, the sweeper can unpin everything.
  clock_.Advance(Seconds(600));
  pincushion_->Sweep();
  EXPECT_EQ(db_->pinned_snapshot_count(), 0u);
}

}  // namespace
}  // namespace txcache
