// Unit tests for the pin set (§6.2): bounds, narrowing, the * element, Invariant 2 protection.
#include "src/core/pin_set.h"

#include <gtest/gtest.h>

namespace txcache {
namespace {

PinInfo P(Timestamp ts) { return PinInfo{ts, static_cast<WallClock>(ts) * 1000}; }

TEST(PinSet, EmptyWithoutStarIsEmpty) {
  PinSet set;
  set.Reset({}, false);
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.has_pins());
}

TEST(PinSet, StarAloneIsNotEmpty) {
  PinSet set;
  set.Reset({}, true);
  EXPECT_FALSE(set.empty());
  EXPECT_TRUE(set.has_star());
  EXPECT_EQ(set.BoundsHi(), kTimestampInfinity);
}

TEST(PinSet, ResetSortsPins) {
  PinSet set;
  set.Reset({P(30), P(10), P(20)}, false);
  EXPECT_EQ(set.oldest().ts, 10u);
  EXPECT_EQ(set.newest().ts, 30u);
  EXPECT_EQ(set.BoundsLo(), 10u);
  EXPECT_EQ(set.BoundsHi(), 30u);
}

TEST(PinSet, StarMakesUpperBoundUnbounded) {
  PinSet set;
  set.Reset({P(10), P(20)}, true);
  EXPECT_EQ(set.BoundsLo(), 10u);
  EXPECT_EQ(set.BoundsHi(), kTimestampInfinity);
  set.DropStar();
  EXPECT_EQ(set.BoundsHi(), 20u);
}

TEST(PinSet, AddPinKeepsOrderAndDeduplicates) {
  PinSet set;
  set.Reset({P(10), P(30)}, true);
  set.AddPin(P(20));
  set.AddPin(P(20));
  EXPECT_EQ(set.pin_count(), 3u);
  EXPECT_EQ(set.pins()[1].ts, 20u);
}

TEST(PinSet, NarrowToKeepsContainedPins) {
  PinSet set;
  set.Reset({P(10), P(20), P(30), P(40)}, true);
  EXPECT_TRUE(set.NarrowTo(Interval{15, 35}));
  EXPECT_EQ(set.pin_count(), 2u);
  EXPECT_EQ(set.oldest().ts, 20u);
  EXPECT_EQ(set.newest().ts, 30u);
  EXPECT_FALSE(set.has_star()) << "observing cached data drops *";
}

TEST(PinSet, NarrowToRefusesEmptyResult) {
  // Invariant 2 protection: a narrowing that would empty the set is rejected and the set is
  // left unchanged (the caller treats the offending value as a cache miss).
  PinSet set;
  set.Reset({P(10), P(20)}, true);
  EXPECT_FALSE(set.NarrowTo(Interval{50, 60}));
  EXPECT_EQ(set.pin_count(), 2u);
  EXPECT_TRUE(set.has_star()) << "failed narrowing must not consume *";
}

TEST(PinSet, NarrowToUnboundedInterval) {
  PinSet set;
  set.Reset({P(10), P(20)}, true);
  EXPECT_TRUE(set.NarrowTo(Interval{15, kTimestampInfinity}));
  EXPECT_EQ(set.pin_count(), 1u);
  EXPECT_EQ(set.newest().ts, 20u);
}

TEST(PinSet, SequentialNarrowingsIntersect) {
  PinSet set;
  set.Reset({P(10), P(20), P(30)}, true);
  EXPECT_TRUE(set.NarrowTo(Interval{10, 31}));
  EXPECT_TRUE(set.NarrowTo(Interval{15, 31}));
  EXPECT_TRUE(set.NarrowTo(Interval{15, 25}));
  EXPECT_EQ(set.pin_count(), 1u);
  EXPECT_EQ(set.newest().ts, 20u);
  // Any further narrowing excluding ts 20 must fail, never empty the set.
  EXPECT_FALSE(set.NarrowTo(Interval{21, 100}));
  EXPECT_EQ(set.pin_count(), 1u);
}

TEST(PinSet, ContainsChecksExactTimestamps) {
  PinSet set;
  set.Reset({P(10), P(30)}, false);
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Contains(20));
  EXPECT_TRUE(set.Contains(30));
}

}  // namespace
}  // namespace txcache
