// Consistent hashing ring, invalidation bus, and pincushion tests.
#include <gtest/gtest.h>

#include <map>

#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cluster/consistent_hash.h"
#include "src/pincushion/pincushion.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

TEST(ConsistentHash, EmptyRingErrors) {
  ConsistentHashRing ring;
  EXPECT_FALSE(ring.NodeForKey("k").ok());
}

TEST(ConsistentHash, AddRemoveNodes) {
  ConsistentHashRing ring(16);
  EXPECT_TRUE(ring.AddNode("a"));
  EXPECT_FALSE(ring.AddNode("a")) << "duplicate add rejected";
  EXPECT_TRUE(ring.AddNode("b"));
  EXPECT_EQ(ring.node_count(), 2u);
  EXPECT_EQ(ring.ring_size(), 32u);
  EXPECT_TRUE(ring.RemoveNode("a"));
  EXPECT_FALSE(ring.RemoveNode("a"));
  EXPECT_EQ(ring.node_count(), 1u);
}

TEST(ConsistentHash, DeterministicMapping) {
  ConsistentHashRing r1, r2;
  for (const char* n : {"a", "b", "c"}) {
    r1.AddNode(n);
    r2.AddNode(n);
  }
  for (int i = 0; i < 200; ++i) {
    std::string key = "key" + std::to_string(i);
    EXPECT_EQ(r1.NodeForKey(key).value(), r2.NodeForKey(key).value());
  }
}

TEST(ConsistentHash, ReasonablyBalanced) {
  ConsistentHashRing ring(128);
  for (const char* n : {"a", "b", "c", "d"}) {
    ring.AddNode(n);
  }
  std::map<std::string, int> counts;
  constexpr int kKeys = 20'000;
  for (int i = 0; i < kKeys; ++i) {
    counts[ring.NodeForKey("key" + std::to_string(i)).value()]++;
  }
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, kKeys / 4 / 2) << node << " underloaded";
    EXPECT_LT(count, kKeys / 4 * 2) << node << " overloaded";
  }
}

TEST(ConsistentHash, RemovalOnlyRemapsVictimsKeys) {
  ConsistentHashRing ring(64);
  for (const char* n : {"a", "b", "c", "d"}) {
    ring.AddNode(n);
  }
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "key" + std::to_string(i);
    before[key] = ring.NodeForKey(key).value();
  }
  ring.RemoveNode("c");
  for (const auto& [key, node] : before) {
    std::string now = ring.NodeForKey(key).value();
    if (node != "c") {
      EXPECT_EQ(now, node) << "keys on surviving nodes must not move";
    } else {
      EXPECT_NE(now, "c");
    }
  }
}

TEST(Bus, AssignsContiguousSeqnos) {
  InvalidationBus bus;
  RecordingSubscriber sub;
  bus.Subscribe(&sub);
  InvalidationMessage m;
  m.ts = 1;
  EXPECT_EQ(bus.Publish(m), 1u);
  EXPECT_EQ(bus.Publish(m), 2u);
  EXPECT_EQ(bus.Publish(m), 3u);
  ASSERT_EQ(sub.messages.size(), 3u);
  EXPECT_EQ(sub.messages[0].seqno, 1u);
  EXPECT_EQ(sub.messages[2].seqno, 3u);
}

TEST(Bus, DeliversToAllSubscribers) {
  InvalidationBus bus;
  RecordingSubscriber a, b;
  bus.Subscribe(&a);
  bus.Subscribe(&b);
  InvalidationMessage m;
  bus.Publish(m);
  EXPECT_EQ(a.messages.size(), 1u);
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(Bus, DeliveryHookIntercepts) {
  InvalidationBus bus;
  RecordingSubscriber sub;
  bus.Subscribe(&sub);
  std::vector<InvalidationMessage> held;
  bus.SetDeliveryHook([&held](InvalidationSubscriber*, const InvalidationMessage& msg) {
    held.push_back(msg);  // swallow: deliver later (models network delay)
  });
  InvalidationMessage m;
  bus.Publish(m);
  EXPECT_TRUE(sub.messages.empty());
  ASSERT_EQ(held.size(), 1u);
  sub.Deliver(held[0]);
  EXPECT_EQ(sub.messages.size(), 1u);
}

TEST(CacheCluster, RoutesKeysToNodes) {
  ManualClock clock;
  CacheServer a("a", &clock), b("b", &clock);
  CacheCluster cluster;
  EXPECT_TRUE(cluster.AddNode(&a));
  EXPECT_TRUE(cluster.AddNode(&b));
  EXPECT_FALSE(cluster.AddNode(&a));
  int on_a = 0, on_b = 0;
  for (int i = 0; i < 500; ++i) {
    auto node = cluster.NodeForKey("key" + std::to_string(i));
    ASSERT_TRUE(node.ok());
    (node.value() == &a ? on_a : on_b)++;
  }
  EXPECT_GT(on_a, 50);
  EXPECT_GT(on_b, 50);
}

TEST(CacheCluster, AggregatesStats) {
  ManualClock clock;
  CacheServer a("a", &clock), b("b", &clock);
  CacheCluster cluster;
  cluster.AddNode(&a);
  cluster.AddNode(&b);
  InsertRequest req;
  req.key = "k";
  req.value = "v";
  req.interval = {1, 2};
  a.Insert(req);
  b.Insert(req);
  EXPECT_EQ(cluster.TotalStats().inserts, 2u);
  EXPECT_GT(cluster.TotalBytesUsed(), 0u);
  cluster.FlushAll();
  EXPECT_EQ(cluster.TotalBytesUsed(), 0u);
  cluster.ResetStatsAll();
  EXPECT_EQ(cluster.TotalStats().inserts, 0u);
}

class PincushionTest : public ::testing::Test {
 protected:
  PincushionTest() : db_(&clock_), pincushion_(&db_, &clock_, {.unpin_after = Seconds(60)}) {
    CreateAccountsTable(&db_);
  }

  ManualClock clock_;
  Database db_;
  Pincushion pincushion_;
};

TEST_F(PincushionTest, EmptyWhenNothingPinned) {
  EXPECT_TRUE(pincushion_.AcquireFreshPins(Seconds(30)).empty());
}

TEST_F(PincushionTest, RegisterAndAcquire) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot snap = db_.Pin();
  pincushion_.Register(PinInfo{snap.ts, snap.wallclock});
  auto pins = pincushion_.AcquireFreshPins(Seconds(30));
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].ts, snap.ts);
}

TEST_F(PincushionTest, StalePinsNotHandedOut) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot snap = db_.Pin();
  pincushion_.Register(PinInfo{snap.ts, snap.wallclock});
  pincushion_.Release({PinInfo{snap.ts, snap.wallclock}});
  clock_.Advance(Seconds(31));
  EXPECT_TRUE(pincushion_.AcquireFreshPins(Seconds(30)).empty());
  EXPECT_FALSE(pincushion_.AcquireFreshPins(Seconds(60)).empty());
}

TEST_F(PincushionTest, SweepUnpinsOnlyUnusedOldPins) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot snap = db_.Pin();
  pincushion_.Register(PinInfo{snap.ts, snap.wallclock});  // in_use = 1
  clock_.Advance(Seconds(120));
  EXPECT_EQ(pincushion_.Sweep(), 0u) << "in-use pins survive";
  pincushion_.Release({PinInfo{snap.ts, snap.wallclock}});
  EXPECT_EQ(pincushion_.Sweep(), 1u);
  EXPECT_EQ(db_.pinned_snapshot_count(), 0u) << "UNPIN reached the database";
}

TEST_F(PincushionTest, RecentPinsSurviveSweep) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot snap = db_.Pin();
  pincushion_.Register(PinInfo{snap.ts, snap.wallclock});
  pincushion_.Release({PinInfo{snap.ts, snap.wallclock}});
  EXPECT_EQ(pincushion_.Sweep(), 0u) << "young pins stay";
  EXPECT_EQ(pincushion_.pinned_count(), 1u);
}

TEST_F(PincushionTest, AcquireMarksInUse) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot snap = db_.Pin();
  pincushion_.Register(PinInfo{snap.ts, snap.wallclock});
  pincushion_.Release({PinInfo{snap.ts, snap.wallclock}});
  auto pins = pincushion_.AcquireFreshPins(Seconds(30));  // re-acquired: in use again
  clock_.Advance(Seconds(120));
  EXPECT_EQ(pincushion_.Sweep(), 0u);
  pincushion_.Release(pins);
  EXPECT_EQ(pincushion_.Sweep(), 1u);
}

TEST_F(PincushionTest, DoubleRegisterRefcountsDbPins) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot s1 = db_.Pin();
  PinnedSnapshot s2 = db_.Pin();  // same ts, db refcount 2
  ASSERT_EQ(s1.ts, s2.ts);
  pincushion_.Register(PinInfo{s1.ts, s1.wallclock});
  pincushion_.Register(PinInfo{s2.ts, s2.wallclock});
  pincushion_.Release({PinInfo{s1.ts, s1.wallclock}, PinInfo{s2.ts, s2.wallclock}});
  clock_.Advance(Seconds(120));
  EXPECT_EQ(pincushion_.Sweep(), 1u);
  EXPECT_EQ(db_.pinned_snapshot_count(), 0u) << "both database pins released";
}

TEST_F(PincushionTest, MultipleSnapshotsSortedOldestFirst) {
  InsertAccount(&db_, 1, "a", 1);
  PinnedSnapshot s1 = db_.Pin();
  pincushion_.Register(PinInfo{s1.ts, s1.wallclock});
  clock_.Advance(Seconds(2));
  UpdateBalance(&db_, 1, 2);
  PinnedSnapshot s2 = db_.Pin();
  pincushion_.Register(PinInfo{s2.ts, s2.wallclock});
  auto pins = pincushion_.AcquireFreshPins(Seconds(30));
  ASSERT_EQ(pins.size(), 2u);
  EXPECT_LT(pins[0].ts, pins[1].ts);
}

}  // namespace
}  // namespace txcache
