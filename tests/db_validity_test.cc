// Validity-interval tracking (paper §5.2, Fig. 4) and invalidation-tag generation (§5.3).
#include <gtest/gtest.h>

#include "src/db/database.h"
#include "src/util/clock.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class DbValidityTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(Database::Options{}); }

  void Reset(Database::Options options) {
    db_ = std::make_unique<Database>(&clock_, options);
    CreateAccountsTable(db_.get());
  }

  // Executes a query in a read-only transaction at `snapshot` (pinning it if needed).
  QueryResult RunAt(Timestamp snapshot, const Query& query) {
    bool pinned = false;
    if (snapshot != db_->LatestCommitTs()) {
      // Tests pre-pin snapshots; this is only a convenience for the latest.
      pinned = false;
    }
    auto txn = db_->BeginReadOnly(snapshot);
    EXPECT_TRUE(txn.ok()) << txn.status().ToString();
    auto r = db_->Execute(txn.value(), query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    db_->Commit(txn.value());
    (void)pinned;
    return r.ok() ? r.take() : QueryResult{};
  }

  bool HasTag(const QueryResult& r, const InvalidationTag& tag) {
    return std::find(r.tags.begin(), r.tags.end(), tag) != r.tags.end();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(DbValidityTest, FreshRowIsStillValid) {
  Timestamp t = InsertAccount(db_.get(), 1, "a", 100);
  QueryResult r = RunAt(t, AccountById(1));
  EXPECT_EQ(r.validity.lower, t) << "valid since the insert's commit";
  EXPECT_TRUE(r.validity.unbounded()) << "still valid: nothing changed it since";
  EXPECT_TRUE(r.still_valid());
}

TEST_F(DbValidityTest, EmptyResultIsStillValidFromZero) {
  InsertAccount(db_.get(), 1, "a", 100);
  QueryResult r = RunAt(db_->LatestCommitTs(), AccountById(42));
  EXPECT_EQ(r.rows.size(), 0u);
  EXPECT_EQ(r.validity.lower, kTimestampZero)
      << "the key never existed, so the empty result was valid from the beginning";
  EXPECT_TRUE(r.validity.unbounded());
}

TEST_F(DbValidityTest, LowerBoundIsLastChangeToResult) {
  InsertAccount(db_.get(), 1, "a", 100);
  InsertAccount(db_.get(), 2, "b", 50);
  Timestamp t3 = UpdateBalance(db_.get(), 1, 200);
  InsertAccount(db_.get(), 3, "c", 10);  // unrelated
  QueryResult r = RunAt(db_->LatestCommitTs(), AccountById(1));
  EXPECT_EQ(r.validity.lower, t3) << "result last changed when account 1 was updated";
  EXPECT_TRUE(r.validity.unbounded());
}

TEST_F(DbValidityTest, DeletedTupleBoundsUpperAtOldSnapshot) {
  // Fig. 4, tuple 1: visible at the query snapshot but deleted later => bounded upper.
  Timestamp t1 = InsertAccount(db_.get(), 1, "a", 100);
  PinnedSnapshot pin = db_->Pin();
  Timestamp t2 = DeleteAccount(db_.get(), 1);
  QueryResult r = RunAt(pin.ts, AccountById(1));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.validity, (Interval{t1, t2}));
  EXPECT_FALSE(r.still_valid());
  db_->Unpin(pin.ts);
}

TEST_F(DbValidityTest, PhantomCreatedAfterSnapshotMasksUpper) {
  // Fig. 4, tuple 4: a tuple matching the predicate created after the snapshot caps the
  // validity interval via the invalidity mask.
  Timestamp t1 = InsertAccount(db_.get(), 1, "alice", 100);
  PinnedSnapshot pin = db_->Pin();
  Timestamp t2 = InsertAccount(db_.get(), 2, "alice", 50);  // same owner: matches the query
  QueryResult r = RunAt(
      pin.ts,
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")})));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.validity, (Interval{t1, t2}))
      << "result differs before t1 (no rows) and from t2 (two rows)";
  db_->Unpin(pin.ts);
}

TEST_F(DbValidityTest, PhantomDeletedBeforeSnapshotMasksLower) {
  // Fig. 4, tuple 3: a matching tuple deleted before the snapshot raises the lower bound.
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "alice", 50);
  Timestamp t3 = DeleteAccount(db_.get(), 2);
  QueryResult r = RunAt(
      db_->LatestCommitTs(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")})));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.validity.lower, t3)
      << "before the delete, the query would also return account 2";
  EXPECT_TRUE(r.validity.unbounded());
}

TEST_F(DbValidityTest, Figure4CompositeScenario) {
  // Recreate the full Fig. 4 shape: two visible tuples intersect to form the result validity;
  // two invisible ones form the mask; the final interval is the gap around the snapshot.
  Timestamp tA = InsertAccount(db_.get(), 1, "grp", 10);   // visible, lives to the end
  InsertAccount(db_.get(), 2, "grp", 20);                  // visible until deleted later
  InsertAccount(db_.get(), 3, "grp", 30);                  // deleted before snapshot (tuple 3)
  Timestamp tDel3 = DeleteAccount(db_.get(), 3);
  PinnedSnapshot pin = db_->Pin();                         // query snapshot
  Timestamp tDel2 = DeleteAccount(db_.get(), 2);           // bounds tuple 2's validity
  InsertAccount(db_.get(), 4, "grp", 40);                  // created after snapshot (tuple 4)

  QueryResult r = RunAt(
      pin.ts, Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("grp")})));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.validity, (Interval{tDel3, tDel2}));
  EXPECT_TRUE(r.validity.Contains(pin.ts));
  EXPECT_GE(r.validity.lower, tA);
  db_->Unpin(pin.ts);
}

TEST_F(DbValidityTest, ValidityAlwaysContainsSnapshot) {
  InsertAccount(db_.get(), 1, "a", 1);
  PinnedSnapshot p1 = db_->Pin();
  UpdateBalance(db_.get(), 1, 2);
  PinnedSnapshot p2 = db_->Pin();
  UpdateBalance(db_.get(), 1, 3);
  for (Timestamp ts : {p1.ts, p2.ts, db_->LatestCommitTs()}) {
    QueryResult r = RunAt(ts, AccountById(1));
    EXPECT_TRUE(r.validity.Contains(ts)) << "snapshot " << ts;
  }
  db_->Unpin(p1.ts);
  db_->Unpin(p2.ts);
}

TEST_F(DbValidityTest, ReexecutionInsideIntervalGivesSameResult) {
  // Soundness: pin every commit point, then check the result is constant over the interval.
  InsertAccount(db_.get(), 1, "a", 1);
  std::vector<PinnedSnapshot> pins;
  pins.push_back(db_->Pin());
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      UpdateBalance(db_.get(), 1, 100 + i);
    } else {
      InsertAccount(db_.get(), 10 + i, "other", i);
    }
    pins.push_back(db_->Pin());
  }
  QueryResult reference = RunAt(pins[3].ts, AccountById(1));
  for (const PinnedSnapshot& pin : pins) {
    if (reference.validity.Contains(pin.ts)) {
      QueryResult again = RunAt(pin.ts, AccountById(1));
      EXPECT_EQ(again.rows, reference.rows) << "at ts " << pin.ts;
    }
  }
  for (const PinnedSnapshot& pin : pins) {
    db_->Unpin(pin.ts);
  }
}

TEST_F(DbValidityTest, AggregateValidityTracksContributingRows) {
  InsertAccount(db_.get(), 1, "grp", 10);
  Timestamp t2 = InsertAccount(db_.get(), 2, "grp", 20);
  QueryResult r = RunAt(db_->LatestCommitTs(),
                        Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner,
                                                        Row{Value("grp")}))
                            .Agg(AggKind::kSum, AccountsCol::kBalance));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 30);
  EXPECT_EQ(r.validity.lower, t2) << "sum changed when the second row arrived";
  EXPECT_TRUE(r.validity.unbounded());
}

TEST_F(DbValidityTest, JoinValidityIntersectsBothSides) {
  ASSERT_TRUE(db_->CreateTable(TableSchema{"branches",
                                           {{"id", ValueType::kInt, false},
                                            {"city", ValueType::kString, false}}})
                  .ok());
  ASSERT_TRUE(db_->CreateIndex(IndexSchema{"branches_pk", "branches", {0}, true}).ok());
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, "branches", Row{Value(int64_t{1}), Value("boston")}).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  InsertAccount(db_.get(), 1, "a", 10, 1);
  PinnedSnapshot pin = db_->Pin();
  // Updating the *branch* (inner side) must bound the join result's validity.
  TxnId t2 = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(t2, "branches",
                          AccessPath::IndexEq("branches", "branches_pk", Row{Value(int64_t{1})}),
                          nullptr, {{1, Value("cambridge")}})
                  .ok());
  auto info = db_->Commit(t2);
  ASSERT_TRUE(info.ok());
  QueryResult r = RunAt(
      pin.ts, Query::From(AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(int64_t{1})}))
                  .Join(JoinStep{"branches", "branches_pk", {AccountsCol::kBranch}, nullptr}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.validity.upper, info.value().ts);
  db_->Unpin(pin.ts);
}

TEST_F(DbValidityTest, StockModeSkipsTracking) {
  Database::Options options;
  options.track_validity = false;
  Reset(options);
  Timestamp t = InsertAccount(db_.get(), 1, "a", 1);
  QueryResult r = RunAt(t, AccountById(1));
  EXPECT_EQ(r.validity, Interval::All());
  EXPECT_TRUE(r.tags.empty());
}

TEST_F(DbValidityTest, RwTransactionsGetNoValidity) {
  InsertAccount(db_.get(), 1, "a", 1);
  TxnId txn = db_->BeginReadWrite();
  auto r = db_->Execute(txn, AccountById(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().validity, Interval::All()) << "validity is only tracked for RO queries";
  EXPECT_TRUE(r.value().tags.empty());
  db_->Commit(txn);
}

// --- invalidation tags (query side) ---

TEST_F(DbValidityTest, IndexEqQueryGetsConcreteTag) {
  InsertAccount(db_.get(), 1, "alice", 1);
  QueryResult r = RunAt(
      db_->LatestCommitTs(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")})));
  ASSERT_EQ(r.tags.size(), 1u);
  EXPECT_EQ(r.tags[0], InvalidationTag::Concrete(kAccounts, kAccountsByOwner,
                                                 EncodeRow(Row{Value("alice")})));
}

TEST_F(DbValidityTest, SeqScanGetsWildcardTag) {
  InsertAccount(db_.get(), 1, "alice", 1);
  QueryResult r = RunAt(db_->LatestCommitTs(), Query::From(AccessPath::SeqScan(kAccounts)));
  ASSERT_EQ(r.tags.size(), 1u);
  EXPECT_EQ(r.tags[0], InvalidationTag::Wildcard(kAccounts));
}

TEST_F(DbValidityTest, IndexRangeGetsWildcardTag) {
  InsertAccount(db_.get(), 1, "alice", 1);
  QueryResult r = RunAt(db_->LatestCommitTs(),
                        Query::From(AccessPath::IndexRange(kAccounts, kAccountsPk,
                                                           std::nullopt, std::nullopt)));
  ASSERT_EQ(r.tags.size(), 1u);
  EXPECT_TRUE(r.tags[0].wildcard);
}

TEST_F(DbValidityTest, EmptyIndexProbeStillTagged) {
  // Negative results depend on continued absence: the tag must exist even with no matches.
  QueryResult r = RunAt(
      db_->LatestCommitTs(),
      Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("ghost")})));
  EXPECT_EQ(r.rows.size(), 0u);
  ASSERT_EQ(r.tags.size(), 1u);
  EXPECT_FALSE(r.tags[0].wildcard);
}

TEST_F(DbValidityTest, JoinProbesTagEachKey) {
  ASSERT_TRUE(db_->CreateTable(TableSchema{"branches",
                                           {{"id", ValueType::kInt, false},
                                            {"city", ValueType::kString, false}}})
                  .ok());
  ASSERT_TRUE(db_->CreateIndex(IndexSchema{"branches_pk", "branches", {0}, true}).ok());
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, "branches", Row{Value(int64_t{1}), Value("x")}).ok());
  ASSERT_TRUE(db_->Insert(txn, "branches", Row{Value(int64_t{2}), Value("y")}).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  InsertAccount(db_.get(), 10, "a", 1, 1);
  InsertAccount(db_.get(), 11, "b", 1, 2);
  InsertAccount(db_.get(), 12, "c", 1, 1);
  QueryResult r = RunAt(
      db_->LatestCommitTs(),
      Query::From(AccessPath::SeqScan(kAccounts))
          .Join(JoinStep{"branches", "branches_pk", {AccountsCol::kBranch}, nullptr}));
  // One wildcard for the scan + one concrete tag per distinct probed branch key.
  EXPECT_TRUE(HasTag(r, InvalidationTag::Wildcard(kAccounts)));
  EXPECT_TRUE(HasTag(r, InvalidationTag::Concrete("branches", "branches_pk",
                                                  EncodeRow(Row{Value(int64_t{1})}))));
  EXPECT_TRUE(HasTag(r, InvalidationTag::Concrete("branches", "branches_pk",
                                                  EncodeRow(Row{Value(int64_t{2})}))));
  EXPECT_EQ(r.tags.size(), 3u) << "duplicate probes deduplicated";
}

// --- invalidation messages (update side) ---

TEST_F(DbValidityTest, CommitPublishesTagsForEveryIndex) {
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db_->set_invalidation_bus(&bus);
  Timestamp t = InsertAccount(db_.get(), 5, "eve", 42, 3);
  ASSERT_EQ(sub.messages.size(), 1u);
  const InvalidationMessage& msg = sub.messages[0];
  EXPECT_EQ(msg.ts, t);
  // One tag per index the row appears in: pk, owner, branch.
  EXPECT_EQ(msg.tags.size(), 3u);
  auto has = [&](const InvalidationTag& tag) {
    return std::find(msg.tags.begin(), msg.tags.end(), tag) != msg.tags.end();
  };
  EXPECT_TRUE(has(InvalidationTag::Concrete(kAccounts, kAccountsPk,
                                            EncodeRow(Row{Value(int64_t{5})}))));
  EXPECT_TRUE(
      has(InvalidationTag::Concrete(kAccounts, kAccountsByOwner, EncodeRow(Row{Value("eve")}))));
  EXPECT_TRUE(has(InvalidationTag::Concrete(kAccounts, kAccountsByBranch,
                                            EncodeRow(Row{Value(int64_t{3})}))));
}

TEST_F(DbValidityTest, UpdatePublishesOldAndNewKeyTags) {
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db_->set_invalidation_bus(&bus);
  InsertAccount(db_.get(), 1, "alice", 1);
  sub.messages.clear();
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                          {{AccountsCol::kOwner, Value("bob")}})
                  .ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  ASSERT_EQ(sub.messages.size(), 1u);
  auto has = [&](const InvalidationTag& tag) {
    return std::find(sub.messages[0].tags.begin(), sub.messages[0].tags.end(), tag) !=
           sub.messages[0].tags.end();
  };
  EXPECT_TRUE(has(InvalidationTag::Concrete(kAccounts, kAccountsByOwner,
                                            EncodeRow(Row{Value("alice")}))))
      << "queries for the old key must be invalidated";
  EXPECT_TRUE(
      has(InvalidationTag::Concrete(kAccounts, kAccountsByOwner, EncodeRow(Row{Value("bob")}))))
      << "queries for the new key must be invalidated";
}

TEST_F(DbValidityTest, AbortPublishesNothing) {
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db_->set_invalidation_bus(&bus);
  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, kAccounts, Account(1, "x", 0)).ok());
  db_->Abort(txn);
  EXPECT_TRUE(sub.messages.empty());
}

TEST_F(DbValidityTest, ReadOnlyCommitPublishesNothing) {
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db_->set_invalidation_bus(&bus);
  InsertAccount(db_.get(), 1, "x", 0);
  sub.messages.clear();
  auto ro = db_->BeginReadOnly();
  ASSERT_TRUE(ro.ok());
  db_->Execute(ro.value(), AccountById(1));
  db_->Commit(ro.value());
  EXPECT_TRUE(sub.messages.empty());
}

TEST_F(DbValidityTest, WildcardCollapseAtThreshold) {
  Database::Options options;
  options.wildcard_tag_threshold = 5;
  Reset(options);
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db_->set_invalidation_bus(&bus);
  // One transaction inserting many rows => more than 5 distinct tags => one wildcard.
  TxnId txn = db_->BeginReadWrite();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Insert(txn, kAccounts, Account(i, "o" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(db_->Commit(txn).ok());
  ASSERT_EQ(sub.messages.size(), 1u);
  ASSERT_EQ(sub.messages[0].tags.size(), 1u);
  EXPECT_EQ(sub.messages[0].tags[0], InvalidationTag::Wildcard(kAccounts));
  EXPECT_GE(db_->stats().wildcard_collapses, 1u);
}

TEST_F(DbValidityTest, InvalidationCompleteness) {
  // If a committed transaction changes a query's result, its invalidation tags must match the
  // query's tags (here: concrete tag equality on the owner index).
  RecordingSubscriber sub;
  InvalidationBus bus;
  bus.Subscribe(&sub);
  db_->set_invalidation_bus(&bus);
  InsertAccount(db_.get(), 1, "alice", 10);
  Query q = Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("alice")}));
  QueryResult before = RunAt(db_->LatestCommitTs(), q);
  sub.messages.clear();
  UpdateBalance(db_.get(), 1, 20);  // changes the result
  QueryResult after = RunAt(db_->LatestCommitTs(), q);
  ASSERT_NE(before.rows, after.rows);
  ASSERT_EQ(sub.messages.size(), 1u);
  bool matched = false;
  for (const InvalidationTag& tag : sub.messages[0].tags) {
    for (const InvalidationTag& qtag : before.tags) {
      if (tag == qtag) {
        matched = true;
      }
    }
  }
  EXPECT_TRUE(matched) << "the update's tag set must cover the query's dependency";
}

// --- predicate-before-visibility ablation (§5.2) ---

class MaskOrderingTest : public ::testing::TestWithParam<bool> {};

TEST_P(MaskOrderingTest, MaskQualityDependsOnOrdering) {
  ManualClock clock;
  Database::Options options;
  options.predicate_before_visibility = GetParam();
  Database db(&clock, options);
  CreateAccountsTable(&db);

  // History: an account that does NOT match the query predicate churns heavily. With
  // predicate-first evaluation its dead versions never enter the mask; with the stock ordering
  // (visibility first) they do, needlessly narrowing the interval.
  InsertAccount(&db, 1, "target", 100);
  for (int i = 0; i < 5; ++i) {
    UpdateBalance(&db, 1, 100);  // self-churn on a *matching* row? no: use another account
  }
  // Rebuild: account 2 churns, account 1 stable. Query selects owner="stable".
  Database db2(&clock, options);
  CreateAccountsTable(&db2);
  Timestamp t1 = InsertAccount(&db2, 1, "stable", 100);
  InsertAccount(&db2, 2, "churn", 0);
  Timestamp last_churn = 0;
  for (int i = 0; i < 5; ++i) {
    last_churn = UpdateBalance(&db2, 2, i);
  }
  auto txn = db2.BeginReadOnly();
  ASSERT_TRUE(txn.ok());
  auto r = db2.Execute(txn.value(), Query::From(AccessPath::SeqScan(kAccounts))
                                        .Where(PEq(AccountsCol::kOwner, Value("stable"))));
  ASSERT_TRUE(r.ok());
  db2.Commit(txn.value());
  if (GetParam()) {
    EXPECT_EQ(r.value().validity.lower, t1)
        << "predicate-first: churn on non-matching rows is invisible to the mask";
  } else {
    EXPECT_EQ(r.value().validity.lower, last_churn)
        << "stock ordering: every dead version encountered lands in the mask";
  }
  // Both orderings must remain sound: the interval always contains the snapshot.
  EXPECT_TRUE(r.value().validity.Contains(db2.LatestCommitTs()));
}

INSTANTIATE_TEST_SUITE_P(BothOrders, MaskOrderingTest, ::testing::Bool());

}  // namespace
}  // namespace txcache
