// Focused tests for the post-choice lookup restriction (the protocol subtlety documented in
// DESIGN.md §5): once a read-only transaction's database snapshot is chosen, cache hits must be
// valid at exactly that timestamp.
#include <gtest/gtest.h>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class LookupSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("node", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    CreateAccountsTable(db_.get());
    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_);
  }

  CacheableFunction<int64_t, int64_t> MakeBalanceFn() {
    return client_->MakeCacheable<int64_t, int64_t>(
        "balance", [this](int64_t id) -> int64_t {
          auto r = client_->ExecuteQuery(AccountById(id));
          return r.ok() && !r.value().rows.empty()
                     ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                     : -1;
        });
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<TxCacheClient> client_;
};

TEST_F(LookupSemanticsTest, PostChoiceHitMustContainChosenTimestamp) {
  // Build two pinned snapshots with an entry valid ONLY at the older one, then force a
  // transaction to choose the newer snapshot before looking that entry up. The protocol must
  // reject the hit (consistency miss) rather than narrow the pin set past the chosen ts.
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "bob", 200);
  auto balance = MakeBalanceFn();

  // Pin snapshot S1 and cache balance(1) there: the entry's validity will be truncated by the
  // update below, leaving it valid only around S1.
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  UpdateBalance(db_.get(), 1, 111);

  // Make the S1 pin older than the new-pin threshold so the next transaction chooses * and
  // pins a fresh snapshot S2 > update.
  clock_.Advance(Seconds(10));
  ASSERT_TRUE(client_->BeginRO(Seconds(60)).ok());
  auto q = client_->ExecuteQuery(AccountById(2));  // forces the choice: chosen ts = S2
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(client_->chosen_timestamp().has_value());
  const Timestamp chosen = *client_->chosen_timestamp();
  EXPECT_EQ(chosen, db_->LatestCommitTs());

  // The old cached entry (valid only before the update) must NOT be served now.
  EXPECT_EQ(balance(1), 111) << "post-choice lookup must recompute, not serve the S1 entry";
  EXPECT_TRUE(client_->pin_set().Contains(chosen))
      << "the chosen timestamp stays in the pin set (Invariant 2 precondition)";
  auto ts = client_->Commit();
  ASSERT_TRUE(ts.ok());
  EXPECT_GE(ts.value(), chosen);
}

TEST_F(LookupSemanticsTest, PreChoiceHitsStillUseFullPinSetBounds) {
  // Before any database query, lookups use the full pin-set bounds and may serialize the
  // transaction in the past — the lazy-selection payoff.
  InsertAccount(db_.get(), 1, "alice", 100);
  auto balance = MakeBalanceFn();
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  UpdateBalance(db_.get(), 1, 111);
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(Seconds(30)).ok());
  EXPECT_EQ(balance(1), 100) << "hit on the old-but-fresh-enough entry";
  EXPECT_FALSE(client_->chosen_timestamp().has_value()) << "no database contact";
  auto ts = client_->Commit();
  ASSERT_TRUE(ts.ok());
  EXPECT_LT(ts.value(), db_->LatestCommitTs()) << "serialized in the past, consistently";
}

TEST_F(LookupSemanticsTest, MixedHitThenQueryStaysConsistent) {
  // Hit first (narrowing to the old pin), then a bare query: the query must run at a snapshot
  // where the hit is still valid — i.e. the old pin, NOT the latest state.
  InsertAccount(db_.get(), 1, "alice", 100);
  InsertAccount(db_.get(), 2, "bob", 200);
  auto balance = MakeBalanceFn();
  ASSERT_TRUE(client_->BeginRO().ok());
  balance(1);
  ASSERT_TRUE(client_->Commit().ok());
  {
    TxnId txn = db_->BeginReadWrite();
    ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(1).from, nullptr,
                            {{AccountsCol::kBalance, Value(int64_t{111})}})
                    .ok());
    ASSERT_TRUE(db_->Update(txn, kAccounts, AccountById(2).from, nullptr,
                            {{AccountsCol::kBalance, Value(int64_t{222})}})
                    .ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(Seconds(30)).ok());
  int64_t cached = balance(1);  // may hit the pre-update entry
  auto fresh = client_->ExecuteQuery(AccountById(2));
  ASSERT_TRUE(fresh.ok());
  int64_t direct = fresh.value().rows[0][AccountsCol::kBalance].AsInt();
  ASSERT_TRUE(client_->Commit().ok());
  // Either both pre-update or both post-update; never mixed.
  EXPECT_TRUE((cached == 100 && direct == 200) || (cached == 111 && direct == 222))
      << "cached=" << cached << " direct=" << direct;
}

}  // namespace
}  // namespace txcache
