// Discrete-event simulator tests: event queue ordering, resource queueing, end-to-end runs.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "src/sim/cluster_sim.h"
#include "src/sim/event_queue.h"

namespace txcache::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(42, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) {
      q.ScheduleAfter(10, chain);
    }
  };
  q.Schedule(0, chain);
  while (q.RunNext()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 40);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; });
  q.Schedule(30, [&] { ++fired; });
  q.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue q;
  q.Schedule(100, [] {});
  q.RunNext();
  bool ran = false;
  q.Schedule(5, [&] { ran = true; });  // in the past: runs "now"
  q.RunNext();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 100);
}

TEST(SimClock, TracksQueueTime) {
  EventQueue q;
  SimClock clock(&q);
  EXPECT_EQ(clock.Now(), 0);
  q.Schedule(123, [] {});
  q.RunNext();
  EXPECT_EQ(clock.Now(), 123);
}

TEST(SimResource, IdleResourceServesImmediately) {
  SimResource r;
  EXPECT_EQ(r.Serve(100, 10), 110);
  EXPECT_EQ(r.busy_time(), 10);
}

TEST(SimResource, BusyResourceQueues) {
  SimResource r;
  EXPECT_EQ(r.Serve(100, 10), 110);
  EXPECT_EQ(r.Serve(105, 10), 120) << "second request waits for the first";
  EXPECT_EQ(r.Serve(200, 10), 210) << "idle gap resets";
}

TEST(SimResource, MultiServerDividesServiceTime) {
  SimResource pool(4.0);
  EXPECT_EQ(pool.Serve(0, 40), 10);
}

TEST(ClusterSim, SmallRunProducesSaneMetrics) {
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 50;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(4);
  ClusterSim sim(cfg);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SimResult& r = result.value();
  EXPECT_GT(r.completed, 50u);
  EXPECT_GT(r.throughput_rps, 10.0);
  EXPECT_GT(r.avg_response_ms, 0.0);
  EXPECT_GT(r.cache.lookups, 0u);
  EXPECT_LE(r.db_cpu_utilization, 1.05);
  EXPECT_GT(r.db_bytes, 0u);
}

TEST(ClusterSim, BulkValueOverlayExercisesSizeAwareAdmissionAndAdapts) {
  // The multi-MB skewed value mix: bulk attachments padded to three size classes ride on a
  // fraction of interactions, with large blobs keyed on write-hot active items (short
  // learned lifetimes) and small ones on users. The large class exceeds its shard-slice
  // guard on the small per-node budget, so fills are declined kDeclinedTooLarge — and the
  // advisory-hint feedback makes the generator downgrade large fetches to the small class.
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 50;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(6);
  cfg.cache_bytes_per_node = 2 << 20;  // shard slice 256 KiB: the large class can never fit
  cfg.bulk_fraction = 0.5;
  cfg.bulk_small_bytes = 2 << 10;
  cfg.bulk_medium_bytes = 16 << 10;
  cfg.bulk_large_bytes = 512 << 10;
  cfg.bulk_large_fraction = 0.2;
  ClusterSim sim(cfg);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SimResult& r = result.value();
  EXPECT_GT(r.completed, 50u);
  EXPECT_GT(r.bulk_calls, 100u) << "the overlay must actually run";
  EXPECT_GT(r.clients.inserts_declined_too_large, 0u)
      << "oversized bulk fills must hit the size-aware gate";
  EXPECT_GT(r.bulk_downgrades, 0u)
      << "decline-rate hints must reach the generator and shrink its fills";
  // hits + misses == lookups still holds fleet-wide with declines in play.
  EXPECT_EQ(r.cache.hits + r.cache.misses(), r.cache.lookups);
}

TEST(ClusterSim, MembershipChurnDegradesToMissesAndRecovers) {
  // Fault injection through the new churn knobs: a cache node crashes mid-run and rejoins
  // while the RUBiS closed loop keeps going. The run must stay healthy (no failed
  // interactions beyond the baseline), churn must be visible as unavailable misses — never
  // errors — and the victim must be serving again at the end.
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 50;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(6);
  cfg.churn = ChurnKind::kCrashRejoin;
  cfg.churn_victim = 0;
  cfg.churn_start = Seconds(3);  // inside the measurement window
  cfg.churn_down_time = Seconds(2);
  ClusterSim sim(cfg);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SimResult& r = result.value();
  EXPECT_EQ(r.churn_kills, 1u);
  EXPECT_EQ(r.churn_rejoins, 1u);
  EXPECT_GT(r.completed, 50u) << "the closed loop survived the outage";
  EXPECT_GT(r.cache.nodes_unavailable, 0u) << "the outage surfaced as misses";
  EXPECT_EQ(r.cache.join_catchups + r.cache.join_flushes, 1u);
  EXPECT_GT(r.cache.hits, 0u);

  // Ring resize flavor: the victim leaves the ring while down, so its arc remaps and the
  // batch path sees a membership epoch change instead of unavailable misses.
  cfg.churn = ChurnKind::kLeaveRejoin;
  ClusterSim resize_sim(cfg);
  auto resize = resize_sim.Run();
  ASSERT_TRUE(resize.ok());
  EXPECT_EQ(resize.value().churn_rejoins, 1u);
  EXPECT_GT(resize.value().clients.ring_epoch_changes, 0u)
      << "clients observed the resize through response epochs";
  EXPECT_GT(resize.value().completed, 50u);
}

TEST(ClusterSim, SnapshotDirPersistsNodeSnapshotsToDiskDuringChurn) {
  // SimConfig::snapshot_dir wires a FileSnapshotStore into the fleet: the periodic
  // Deliver-tail persistence must land real files on disk while the churn cycle runs, and
  // the run must stay as healthy as the in-memory-store variant.
  char tmpl[] = "/tmp/txcache_simsnap_XXXXXX";
  char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 50;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(6);
  cfg.snapshot_dir = dir;
  cfg.snapshot_interval_messages = 16;
  cfg.churn = ChurnKind::kCrashRejoin;
  cfg.churn_victim = 0;
  cfg.churn_start = Seconds(3);
  cfg.churn_down_time = Seconds(2);
  {
    ClusterSim sim(cfg);
    auto result = sim.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().churn_rejoins, 1u);
    EXPECT_GT(result.value().completed, 50u);
  }

  size_t snap_files = 0;
  if (DIR* d = opendir(dir)) {
    while (dirent* e = readdir(d)) {
      std::string name = e->d_name;
      if (name.size() > 5 && name.substr(name.size() - 5) == ".snap") {
        ++snap_files;
      }
      if (name != "." && name != "..") {
        unlink((std::string(dir) + "/" + name).c_str());
      }
    }
    closedir(d);
  }
  rmdir(dir);
  EXPECT_GT(snap_files, 0u) << "periodic persistence never reached the file store";
}

TEST(ClusterSim, OptimisticWritesCommitThroughTheCache) {
  // The whole write mix routed through optimistic transactions: the closed loop must stay
  // healthy, commits must flow, and no advisory intent may survive the run. Backoff on the
  // rare conflicts costs simulated time only, so the run's wall time stays bounded.
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 50;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(4);
  cfg.optimistic_writes = true;
  ClusterSim sim(cfg);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SimResult& r = result.value();
  EXPECT_GT(r.completed, 50u);
  EXPECT_GT(r.rw_commits, 0u) << "read/write interactions committed optimistically";
  EXPECT_GE(r.rw_aborts, r.rw_retries > 0 ? 1u : 0u);
  EXPECT_GT(r.cache.hits, 0u);
  EXPECT_EQ(r.cache.intent_releases + r.cache.intents_cleared, r.cache.intent_acquires)
      << "every acquired intent was released or dropped";
}

TEST(ClusterSim, NoCacheModeNeverTouchesCache) {
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 30;
  cfg.warmup = Seconds(1);
  cfg.measure = Seconds(3);
  cfg.mode = ClientMode::kNoCache;
  ClusterSim sim(cfg);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().cache.lookups, 0u);
  EXPECT_EQ(result.value().cache_bytes_used, 0u);
}

TEST(ClusterSim, CachingReducesDatabaseLoad) {
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 100;
  cfg.warmup = Seconds(3);
  cfg.measure = Seconds(5);

  cfg.mode = ClientMode::kNoCache;
  ClusterSim baseline(cfg);
  auto base = baseline.Run();
  ASSERT_TRUE(base.ok());

  cfg.mode = ClientMode::kConsistent;
  ClusterSim cached(cfg);
  auto with_cache = cached.Run();
  ASSERT_TRUE(with_cache.ok());

  EXPECT_LT(with_cache.value().db_cpu_utilization, base.value().db_cpu_utilization)
      << "cache hits must offload the database";
  EXPECT_GT(with_cache.value().cache.hit_rate(), 0.3);
}

TEST(ClusterSim, DiskBoundConfigUsesDisk) {
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.disk_bound = true;
  cfg.num_clients = 30;
  cfg.warmup = Seconds(1);
  cfg.measure = Seconds(3);
  cfg.mode = ClientMode::kNoCache;
  ClusterSim sim(cfg);
  auto result = sim.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().db_disk_utilization, 0.0);
}

TEST(ClusterSim, DeterministicForFixedSeed) {
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.num_clients = 40;
  cfg.warmup = Seconds(1);
  cfg.measure = Seconds(3);
  cfg.seed = 99;
  ClusterSim a(cfg), b(cfg);
  auto ra = a.Run();
  auto rb = b.Run();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().completed, rb.value().completed);
  EXPECT_EQ(ra.value().cache.hits, rb.value().cache.hits);
}

TEST(ClusterSim, OversaturationLeavesMeasurableBacklog) {
  // With offered load far beyond capacity, queued work remains at window close; PeakThroughput
  // uses this signal to reject transiently-inflated samples.
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.disk_bound = true;  // tiny disk capacity saturates immediately
  cfg.mode = ClientMode::kNoCache;
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(4);
  cfg.num_clients = 40;
  ClusterSim modest(cfg);
  auto ok_run = modest.Run();
  ASSERT_TRUE(ok_run.ok());
  cfg.num_clients = 4000;
  ClusterSim flooded(cfg);
  auto flood_run = flooded.Run();
  ASSERT_TRUE(flood_run.ok());
  EXPECT_GT(flood_run.value().max_backlog_s, ok_run.value().max_backlog_s);
  EXPECT_GT(flood_run.value().max_backlog_s, 2.0) << "unworked queue at window close";
}

TEST(ClusterSim, MoreClientsMoreThroughputUntilSaturation) {
  SimConfig cfg;
  cfg.scale = rubis::RubisScale::InMemory(0.005);
  cfg.warmup = Seconds(2);
  cfg.measure = Seconds(4);
  cfg.mode = ClientMode::kNoCache;
  cfg.num_clients = 25;
  ClusterSim small(cfg);
  auto r_small = small.Run();
  cfg.num_clients = 100;
  ClusterSim big(cfg);
  auto r_big = big.Run();
  ASSERT_TRUE(r_small.ok() && r_big.ok());
  EXPECT_GT(r_big.value().throughput_rps, r_small.value().throughput_rps * 1.5);
}

}  // namespace
}  // namespace txcache::sim
