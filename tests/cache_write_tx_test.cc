// Optimistic read-write transactions through the cache (ctest label: txn).
//
// Covers the full intent lifecycle (check-and-acquire, conflict, idempotent release, wholesale
// drop on crash/flush/rejoin), the commit-validation accept/reject matrix (stale cached read
// vs. write-free serialization at the snapshot vs. own-writes no-self-conflict vs. unrelated
// invalidations), deterministic seeded backoff in the retry loop, the no-intent-leak guarantee
// on every abort/crash/rejoin path, and a racing-committers stress run (TSan set) whose
// read-modify-write counter would lose updates if a stale cached read ever survived commit
// validation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

IntentRequest Intent(const std::string& key, uint64_t token) {
  IntentRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);
  req.txn_id = token;
  return req;
}

class WriteTxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("node", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    CreateAccountsTable(db_.get());
    InsertAccount(db_.get(), 1, "alice", 100);
    InsertAccount(db_.get(), 2, "bob", 200);
    client_ = MakeClient();
  }

  std::unique_ptr<TxCacheClient> MakeClient(uint64_t seed = 7) {
    TxCacheClient::Options options;
    options.rw_backoff_seed = seed;
    options.rw_backoff_sleep = [this](WallClock delay) { backoff_delays_.push_back(delay); };
    return std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                           &clock_, options);
  }

  CacheableFunction<int64_t, int64_t> MakeBalanceFn(TxCacheClient* client) {
    return client->MakeCacheable<int64_t, int64_t>("balance", [client](int64_t id) -> int64_t {
      auto r = client->ExecuteQuery(AccountById(id));
      return r.ok() && !r.value().rows.empty()
                 ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                 : -1;
    });
  }

  // Warms the cache entry for balance(id) through a read-only transaction (optimistic
  // transactions never store).
  void WarmBalance(TxCacheClient* client, CacheableFunction<int64_t, int64_t>& fn, int64_t id) {
    ASSERT_TRUE(client->BeginRO().ok());
    fn(id);
    ASSERT_TRUE(client->Commit().ok());
  }

  Status SetBalance(TxCacheClient* client, int64_t id, int64_t balance) {
    auto n = client->Update(kAccounts,
                            AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(id)}),
                            nullptr, {{AccountsCol::kBalance, Value(balance)}});
    return n.ok() ? Status::Ok() : n.status();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<TxCacheClient> client_;
  std::vector<WallClock> backoff_delays_;
};

// --- intent lifecycle -------------------------------------------------------------------

TEST_F(WriteTxTest, IntentAcquireConflictRelease) {
  const std::string key = "k";
  EXPECT_TRUE(cache_->AcquireIntent(Intent(key, 10)).status.ok());
  // Idempotent re-acquire by the same owner.
  EXPECT_TRUE(cache_->AcquireIntent(Intent(key, 10)).status.ok());
  // A different transaction is refused and told who holds it.
  IntentResponse conflict = cache_->AcquireIntent(Intent(key, 20));
  EXPECT_EQ(conflict.status.code(), StatusCode::kConflict);
  EXPECT_EQ(conflict.holder, 10u);
  // Release by a non-owner is a no-op: the intent stays held.
  cache_->ReleaseIntent(Intent(key, 20));
  EXPECT_EQ(cache_->AcquireIntent(Intent(key, 20)).status.code(), StatusCode::kConflict);
  // The owner's release frees it for the next acquirer.
  cache_->ReleaseIntent(Intent(key, 10));
  EXPECT_TRUE(cache_->AcquireIntent(Intent(key, 20)).status.ok());
  cache_->ReleaseIntent(Intent(key, 20));
  EXPECT_EQ(cache_->ClearIntents(), 0u);  // nothing leaked
  CacheStats stats = cache_->stats();
  EXPECT_EQ(stats.intent_acquires, 2u);
  EXPECT_EQ(stats.intent_conflicts, 2u);
  EXPECT_EQ(stats.intent_releases, 2u);
}

TEST_F(WriteTxTest, IntentStampsServedVersions) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  const std::string key = MakeCacheKey("balance", int64_t{1});
  ASSERT_TRUE(cache_->AcquireIntent(Intent(key, 42)).status.ok());
  LookupRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);
  LookupResponse resp = cache_->Lookup(req);
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.intent_owner, 42u);  // lookups surface the holder for early aborts
  cache_->ReleaseIntent(Intent(key, 42));
  resp = cache_->Lookup(req);
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.intent_owner, 0u);
}

TEST_F(WriteTxTest, InsertUnderHeldIntentInheritsOwner) {
  const std::string key = MakeCacheKey("balance", int64_t{1});
  ASSERT_TRUE(cache_->AcquireIntent(Intent(key, 9)).status.ok());
  // A fill landing while the intent is held must surface the owner too — otherwise an
  // in-transaction reader hitting the fresh fill would miss the early-abort signal.
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  LookupRequest req;
  req.key = key;
  req.key_hash = Fnv1a(key);
  LookupResponse resp = cache_->Lookup(req);
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.intent_owner, 9u);
  cache_->ReleaseIntent(Intent(key, 9));
}

TEST_F(WriteTxTest, NoIntentLeakOnCrashFlushAndRejoin) {
  ASSERT_TRUE(cache_->AcquireIntent(Intent("a", 1)).status.ok());
  ASSERT_TRUE(cache_->AcquireIntent(Intent("b", 2)).status.ok());
  cache_->Crash();
  // Crash drops every intent wholesale; after rejoin nothing may still be held.
  ASSERT_TRUE(cache_->Join(bus_.get()).ok());
  ASSERT_TRUE(cache_->serving());
  EXPECT_EQ(cache_->ClearIntents(), 0u);
  EXPECT_TRUE(cache_->AcquireIntent(Intent("a", 3)).status.ok());
  EXPECT_TRUE(cache_->AcquireIntent(Intent("b", 3)).status.ok());
  // Flush drops them too.
  cache_->Flush();
  EXPECT_EQ(cache_->ClearIntents(), 0u);
  EXPECT_GE(cache_->stats().intents_cleared, 4u);
}

TEST_F(WriteTxTest, ClientReleasesIntentsOnEveryExitPath) {
  auto balance = MakeBalanceFn(client_.get());
  const std::string key = MakeCacheKey("balance", int64_t{1});
  // Abort path.
  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->WriteIntent(key).ok());
  ASSERT_TRUE(client_->Abort().ok());
  EXPECT_EQ(cache_->ClearIntents(), 0u);
  // Commit path.
  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->WriteIntent(key).ok());
  ASSERT_TRUE(SetBalance(client_.get(), 1, 101).ok());
  ASSERT_TRUE(client_->CommitRw().ok());
  EXPECT_EQ(cache_->ClearIntents(), 0u);
  // Destructor path.
  {
    auto doomed = MakeClient();
    ASSERT_TRUE(doomed->BeginRw().ok());
    ASSERT_TRUE(doomed->WriteIntent(key).ok());
  }
  EXPECT_EQ(cache_->ClearIntents(), 0u);
  EXPECT_EQ(client_->stats().rw_intents_acquired, 2u);
}

TEST_F(WriteTxTest, WriteIntentConflictIsEarlyAbortSignal) {
  const std::string key = MakeCacheKey("balance", int64_t{1});
  auto other = MakeClient();
  ASSERT_TRUE(other->BeginRw().ok());
  ASSERT_TRUE(other->WriteIntent(key).ok());

  ASSERT_TRUE(client_->BeginRw().ok());
  EXPECT_EQ(client_->WriteIntent(key).code(), StatusCode::kConflict);
  EXPECT_EQ(client_->stats().rw_intent_conflicts, 1u);
  ASSERT_TRUE(client_->Abort().ok());
  // An in-transaction cached read under the foreign intent also aborts early.
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  ASSERT_TRUE(client_->BeginRw().ok());
  EXPECT_EQ(client_->ReadInTx(key).status().code(), StatusCode::kConflict);
  ASSERT_TRUE(client_->Abort().ok());
  ASSERT_TRUE(other->Abort().ok());
  EXPECT_EQ(cache_->ClearIntents(), 0u);
}

// --- commit-validation accept/reject matrix ---------------------------------------------

TEST_F(WriteTxTest, StaleCachedReadAbortsWriter) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);

  ASSERT_TRUE(client_->BeginRw().ok());
  auto read = client_->ReadInTx(MakeCacheKey("balance", int64_t{1}));
  ASSERT_TRUE(read.ok());  // cached hit, recorded in the read set

  // A racing writer invalidates account 1 before we commit.
  UpdateBalance(db_.get(), 1, 50);

  // We write a DIFFERENT row, so snapshot isolation alone would commit this write skew; only
  // commit-time read validation can reject it.
  ASSERT_TRUE(SetBalance(client_.get(), 2, 999).ok());
  auto commit = client_->CommitRw();
  EXPECT_EQ(commit.status().code(), StatusCode::kConflict);
  EXPECT_EQ(client_->stats().rw_aborts, 1u);
  EXPECT_EQ(db_->stats().validation_conflicts, 1u);

  // The aborted write left no trace.
  EXPECT_EQ(ReadLatest(db_.get(), AccountById(2)).rows[0][AccountsCol::kBalance].AsInt(), 200);
}

TEST_F(WriteTxTest, WriteFreeTransactionSerializesAtSnapshot) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);

  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->ReadInTx(MakeCacheKey("balance", int64_t{1})).ok());
  UpdateBalance(db_.get(), 1, 50);
  // No writes: the transaction serializes at its snapshot, where the read WAS valid.
  auto commit = client_->CommitRw();
  EXPECT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(client_->stats().rw_commits, 1u);
}

TEST_F(WriteTxTest, RecomputedReadValidatedLikeCachedOne) {
  // Cold cache: the cacheable call inside the transaction recomputes through the engine,
  // whose tag tracking feeds the same read set.
  ASSERT_TRUE(client_->BeginRw().ok());
  auto balance = MakeBalanceFn(client_.get());
  EXPECT_EQ(balance(1), 100);
  UpdateBalance(db_.get(), 1, 50);
  ASSERT_TRUE(SetBalance(client_.get(), 2, 999).ok());
  EXPECT_EQ(client_->CommitRw().status().code(), StatusCode::kConflict);
}

TEST_F(WriteTxTest, UnrelatedInvalidationDoesNotAbort) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->ReadInTx(MakeCacheKey("balance", int64_t{1})).ok());
  // Racing write to a different key: its tags do not match the read set.
  UpdateBalance(db_.get(), 2, 201);
  ASSERT_TRUE(SetBalance(client_.get(), 1, 101).ok());
  auto commit = client_->CommitRw();
  EXPECT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(db_->stats().validated_commits, 1u);
}

TEST_F(WriteTxTest, OwnWritesNeverSelfConflict) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->ReadInTx(MakeCacheKey("balance", int64_t{1})).ok());
  // Update the very row the read covers: our own invalidation tags must not trip validation.
  ASSERT_TRUE(SetBalance(client_.get(), 1, 150).ok());
  auto commit = client_->CommitRw();
  EXPECT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(ReadLatest(db_.get(), AccountById(1)).rows[0][AccountsCol::kBalance].AsInt(), 150);
}

TEST_F(WriteTxTest, GenericCommitRoutesThroughValidation) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->ReadInTx(MakeCacheKey("balance", int64_t{1})).ok());
  UpdateBalance(db_.get(), 1, 50);
  ASSERT_TRUE(SetBalance(client_.get(), 2, 999).ok());
  // The generic Commit() must not offer a validation-skipping back door.
  EXPECT_EQ(client_->Commit().status().code(), StatusCode::kConflict);
}

// --- retry loop and backoff -------------------------------------------------------------

TEST_F(WriteTxTest, RunRwTransactionRetriesConflictsToSuccess) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  int attempts = 0;
  auto ts_or = client_->RunRwTransaction([&]() -> Status {
    ++attempts;
    auto read = client_->ReadInTx(MakeCacheKey("balance", int64_t{1}));
    if (!read.ok() && read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
    if (attempts == 1) {
      UpdateBalance(db_.get(), 1, 50);  // sabotage the first attempt only
    }
    return SetBalance(client_.get(), 2, 777);
  });
  EXPECT_TRUE(ts_or.ok()) << ts_or.status().ToString();
  EXPECT_EQ(attempts, 2);
  ClientStats stats = client_->stats();
  EXPECT_EQ(stats.rw_retries, 1u);
  EXPECT_EQ(stats.rw_commits, 1u);
  EXPECT_EQ(stats.rw_aborts, 1u);
  EXPECT_EQ(backoff_delays_.size(), 1u);
}

TEST_F(WriteTxTest, RetryBudgetCapsConflictLoop) {
  auto ts_or = client_->RunRwTransaction([]() -> Status { return Status::Conflict("always"); });
  EXPECT_EQ(ts_or.status().code(), StatusCode::kConflict);
  EXPECT_EQ(client_->stats().rw_retries,
            client_->options().rw_max_retries - 1);  // budget spent, then surfaced
  // Every round aborted through the body path, not commit validation — each one still counts.
  EXPECT_EQ(client_->stats().rw_aborts, client_->options().rw_max_retries);
  EXPECT_EQ(backoff_delays_.size(), client_->options().rw_max_retries - 1);
}

TEST_F(WriteTxTest, BackoffIsSeededDeterministicAndCapped) {
  auto run = [this](uint64_t seed) {
    backoff_delays_.clear();
    auto c = MakeClient(seed);
    c->RunRwTransaction([]() -> Status { return Status::Conflict("always"); });
    return backoff_delays_;
  };
  const std::vector<WallClock> a = run(11);
  const std::vector<WallClock> b = run(11);
  const std::vector<WallClock> c = run(12);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // same seed => identical delay sequence
  EXPECT_NE(a, c);  // different seed => different jitter
  TxCacheClient::Options defaults;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a[i], 0);
    EXPECT_LE(a[i], defaults.rw_backoff_cap + defaults.rw_backoff_cap / 2 + 1);
    if (i > 0) {
      // Capped exponential: the deterministic half never shrinks attempt over attempt.
      EXPECT_GE(a[i] * 2 + 1, a[i - 1]);
    }
  }
}

TEST_F(WriteTxTest, NonConflictErrorIsNotRetried) {
  int attempts = 0;
  auto ts_or = client_->RunRwTransaction([&]() -> Status {
    ++attempts;
    return Status::InvalidArgument("bug in the body");
  });
  EXPECT_EQ(ts_or.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(backoff_delays_.empty());
}

// --- aborted transactions leave no trace ------------------------------------------------

TEST_F(WriteTxTest, AbortedTransactionLeavesNoTrace) {
  auto balance = MakeBalanceFn(client_.get());
  WarmBalance(client_.get(), balance, 1);
  const CacheStats before = cache_->stats();
  ASSERT_TRUE(client_->BeginRw().ok());
  ASSERT_TRUE(client_->WriteIntent(MakeCacheKey("balance", int64_t{1})).ok());
  ASSERT_TRUE(client_->ReadInTx(MakeCacheKey("balance", int64_t{1})).ok());
  ASSERT_TRUE(SetBalance(client_.get(), 1, 12345).ok());
  ASSERT_TRUE(client_->Abort().ok());
  // Database state untouched, no invalidation published, no cache mutation, no intent held.
  EXPECT_EQ(ReadLatest(db_.get(), AccountById(1)).rows[0][AccountsCol::kBalance].AsInt(), 100);
  EXPECT_EQ(cache_->stats().inserts, before.inserts);
  EXPECT_EQ(cache_->stats().invalidation_messages, before.invalidation_messages);
  EXPECT_EQ(cache_->ClearIntents(), 0u);
  // And the cached entry still serves (the abort widened/neither resurrected nothing).
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(balance(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(WriteTxTest, IntentAgainstDownNodeIsVacuousSuccess) {
  cache_->Crash();
  ASSERT_TRUE(client_->BeginRw().ok());
  // The owning node serves no reads, so there is nothing to protect: vacuous success, and
  // the release on exit must not error either.
  EXPECT_TRUE(client_->WriteIntent(MakeCacheKey("balance", int64_t{1})).ok());
  EXPECT_EQ(client_->stats().rw_intents_acquired, 0u);  // nothing actually held
  ASSERT_TRUE(client_->Abort().ok());
  ASSERT_TRUE(cache_->Join(bus_.get()).ok());
  EXPECT_EQ(cache_->ClearIntents(), 0u);
}

// --- racing committers (TSan set) -------------------------------------------------------

TEST_F(WriteTxTest, ConcurrencyStressRacingCommittersLoseNoUpdate) {
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 50;
  std::atomic<int64_t> committed{0};
  std::atomic<bool> stop_warming{false};

  // A warming thread keeps refilling the cacheable read through RO transactions, so the
  // optimistic committers race against live fills, hits and invalidations.
  std::thread warmer([&] {
    TxCacheClient warm_client(db_.get(), pincushion_.get(), cluster_.get(), &clock_);
    auto balance = MakeBalanceFn(&warm_client);
    while (!stop_warming.load(std::memory_order_relaxed)) {
      if (warm_client.BeginRO().ok()) {
        balance(1);
        warm_client.Commit();
      }
    }
  });

  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&, t] {
      TxCacheClient::Options options;
      options.rw_backoff_seed = 1000 + static_cast<uint64_t>(t);
      options.rw_max_retries = 1u << 20;  // the increment must eventually land
      options.rw_backoff_sleep = [](WallClock) {};
      TxCacheClient client(db_.get(), pincushion_.get(), cluster_.get(), &clock_, options);
      auto balance = MakeBalanceFn(&client);
      const std::string key = MakeCacheKey("balance", int64_t{1});
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        auto ts_or = client.RunRwTransaction([&]() -> Status {
          const int64_t bal = balance(1);  // cached hit or tag-tracked recompute
          if (bal < 0) {
            return Status::Internal("read failed");
          }
          Status intent = client.WriteIntent(key);
          if (!intent.ok()) {
            return intent;  // early abort on a foreign intent; retried with backoff
          }
          auto n = client.Update(kAccounts,
                                 AccessPath::IndexEq(kAccounts, kAccountsPk, Row{Value(1)}),
                                 nullptr, {{AccountsCol::kBalance, Value(bal + 1)}});
          return n.ok() ? Status::Ok() : n.status();
        });
        if (ts_or.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : committers) {
    th.join();
  }
  stop_warming.store(true, std::memory_order_relaxed);
  warmer.join();

  // The serializability oracle for a read-modify-write counter: any stale read that survived
  // commit validation would lose an update and leave the balance short.
  EXPECT_EQ(committed.load(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(ReadLatest(db_.get(), AccountById(1)).rows[0][AccountsCol::kBalance].AsInt(),
            100 + committed.load());
  EXPECT_EQ(cache_->ClearIntents(), 0u);  // no intent leaked under the race either
}

}  // namespace
}  // namespace txcache
