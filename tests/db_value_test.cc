// Value semantics (typed comparison, NULL ordering, byte accounting) and additional query
// shapes not covered elsewhere.
#include <gtest/gtest.h>

#include "src/db/database.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

TEST(Value, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{1}).type(), ValueType::kInt);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("s").type(), ValueType::kString);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value(int64_t{0}).is_null());
}

TEST(Value, SameTypeComparison) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_LT(Value(1.0), Value(1.5));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, CrossTypeComparisonOrdersByTypeTag) {
  // NULL < int < double < string < bool (variant index order): a total order for indexes, not
  // SQL coercion semantics (the executor never compares across types in well-typed schemas).
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{999}), Value(0.0));
  EXPECT_LT(Value(999.0), Value(""));
  EXPECT_LT(Value("zzz"), Value(false));
}

TEST(Value, AccessorsReturnStoredValues) {
  EXPECT_EQ(Value(int64_t{-7}).AsInt(), -7);
  EXPECT_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value("x").AsString(), "x");
  EXPECT_EQ(Value(true).AsBool(), true);
}

TEST(Value, ByteSizeTracksContent) {
  EXPECT_LT(Value::Null().ByteSize(), Value(int64_t{1}).ByteSize());
  EXPECT_LT(Value("ab").ByteSize(), Value("abcdefgh").ByteSize());
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
}

TEST(Value, RowHelpers) {
  Row row{Value(int64_t{1}), Value("x")};
  EXPECT_EQ(RowToString(row), "(1, 'x')");
  EXPECT_GT(RowByteSize(row), 0u);
}

class QueryShapesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    CreateAccountsTable(db_.get());
    for (int64_t i = 0; i < 12; ++i) {
      InsertAccount(db_.get(), i, "o" + std::to_string(i % 4), i * 5, i % 3);
    }
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(QueryShapesTest, GroupByWithOrderAndLimit) {
  QueryResult r = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                            .Agg(AggKind::kCount)
                                            .GroupBy(AccountsCol::kBranch)
                                            .SortBy(1, /*descending=*/true)
                                            .Limit(2));
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_GE(r.rows[0][1].AsInt(), r.rows[1][1].AsInt());
}

TEST_F(QueryShapesTest, AvgOverIndexSubset) {
  QueryResult r = ReadLatest(
      db_.get(), Query::From(AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("o1")}))
                     .Agg(AggKind::kAvg, AccountsCol::kBalance));
  ASSERT_EQ(r.rows.size(), 1u);
  // o1 owns ids 1, 5, 9 => balances 5, 25, 45 => avg 25.
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 25.0);
}

TEST_F(QueryShapesTest, UpdateViaSecondaryIndexPath) {
  TxnId txn = db_->BeginReadWrite();
  auto n = db_->Update(txn, kAccounts,
                       AccessPath::IndexEq(kAccounts, kAccountsByOwner, Row{Value("o2")}),
                       PCmp(AccountsCol::kBalance, CmpOp::kGe, Value(int64_t{30})),
                       {{AccountsCol::kBalance, Value(int64_t{0})}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);  // ids 6 (30) and 10 (50)
  ASSERT_TRUE(db_->Commit(txn).ok());
  QueryResult r = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts))
                                            .Where(PEq(AccountsCol::kBalance, Value(int64_t{0})))
                                            .Project({AccountsCol::kId})
                                            .SortBy(0));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{0, 6, 10}));
}

TEST_F(QueryShapesTest, DeleteViaSeqScanWithPredicate) {
  TxnId txn = db_->BeginReadWrite();
  auto n = db_->Delete(txn, kAccounts, AccessPath::SeqScan(kAccounts),
                       PCmp(AccountsCol::kBalance, CmpOp::kGt, Value(int64_t{40})));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);  // balances 45, 50, 55
  ASSERT_TRUE(db_->Commit(txn).ok());
  QueryResult count =
      ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts)).Agg(AggKind::kCount));
  EXPECT_EQ(count.rows[0][0].AsInt(), 9);
}

TEST_F(QueryShapesTest, IndexRangeOverCompositeIndex) {
  ASSERT_TRUE(db_->CreateIndex(IndexSchema{"by_branch_id", kAccounts,
                                           {AccountsCol::kBranch, AccountsCol::kId}, false})
                  .ok());
  QueryResult r = ReadLatest(
      db_.get(), Query::From(AccessPath::IndexRange(
                                 kAccounts, "by_branch_id",
                                 Row{Value(int64_t{1}), Value(int64_t{0})},
                                 Row{Value(int64_t{1}), Value(int64_t{99})}))
                     .Project({AccountsCol::kId}));
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{1, 4, 7, 10}));
}

TEST_F(QueryShapesTest, LateIndexCreationBackfillsExistingRows) {
  ASSERT_TRUE(db_->CreateIndex(
                     IndexSchema{"by_balance", kAccounts, {AccountsCol::kBalance}, false})
                  .ok());
  QueryResult r = ReadLatest(
      db_.get(),
      Query::From(AccessPath::IndexEq(kAccounts, "by_balance", Row{Value(int64_t{25})})));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][AccountsCol::kId].AsInt(), 5);
}

TEST_F(QueryShapesTest, ProjectionWithDuplicatesAndReorder) {
  QueryResult r = ReadLatest(db_.get(),
                             Query::From(AccessPath::IndexEq(kAccounts, kAccountsPk,
                                                             Row{Value(int64_t{3})}))
                                 .Project({AccountsCol::kBalance, AccountsCol::kId,
                                           AccountsCol::kBalance}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0], (Row{Value(int64_t{15}), Value(int64_t{3}), Value(int64_t{15})}));
}

TEST_F(QueryShapesTest, QueryStatsPopulated) {
  QueryResult scan = ReadLatest(db_.get(), Query::From(AccessPath::SeqScan(kAccounts)));
  EXPECT_EQ(scan.stats.seq_scanned, 12u);
  EXPECT_EQ(scan.stats.rows_returned, 12u);
  QueryResult probe = ReadLatest(db_.get(), AccountById(1));
  EXPECT_EQ(probe.stats.index_probes, 1u);
  EXPECT_GE(probe.stats.tuples_examined, 1u);
}

}  // namespace
}  // namespace txcache
