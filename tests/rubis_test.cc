// RUBiS application tests: loader, interactions, read/write operations, cross-page consistency.
#include <gtest/gtest.h>

#include "src/rubis/app.h"
#include "src/rubis/data.h"
#include "src/rubis/schema.h"
#include "src/rubis/session.h"
#include "tests/test_support.h"

namespace txcache::rubis {
namespace {

class RubisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("n", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);

    RubisScale scale;
    scale.users = 50;
    scale.active_items = 60;
    scale.old_items = 20;
    scale.max_bids_per_item = 3;
    scale.description_bytes = 32;
    auto ds = LoadRubis(db_.get(), scale, &clock_, /*seed=*/42);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = std::move(ds.value());

    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_);
    app_ = std::make_unique<RubisApp>(client_.get(), dataset_.get(), &clock_);
  }

  int64_t CountRows(const char* table) {
    auto txn = db_->BeginReadOnly();
    EXPECT_TRUE(txn.ok());
    auto r = db_->Execute(txn.value(),
                          Query::From(AccessPath::SeqScan(table)).Agg(AggKind::kCount));
    EXPECT_TRUE(r.ok());
    db_->Commit(txn.value());
    return r.value().rows[0][0].AsInt();
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<RubisDataset> dataset_;
  std::unique_ptr<TxCacheClient> client_;
  std::unique_ptr<RubisApp> app_;
};

TEST_F(RubisTest, LoaderPopulatesAllTables) {
  EXPECT_EQ(CountRows(kUsers), 50);
  EXPECT_EQ(CountRows(kItems), 60);
  EXPECT_EQ(CountRows(kOldItems), 20);
  EXPECT_EQ(CountRows(kCategories), 20);
  EXPECT_EQ(CountRows(kRegions), 62);
  EXPECT_EQ(CountRows(kItemRegCat), 60) << "one row per active item";
  EXPECT_GT(CountRows(kBids), 0);
  EXPECT_GT(CountRows(kComments), 0);
}

TEST_F(RubisTest, GetItemFindsActiveAndOldItems) {
  ASSERT_TRUE(client_->BeginRO().ok());
  ItemInfo active = app_->get_item(0);
  EXPECT_TRUE(active.found);
  EXPECT_FALSE(active.closed);
  ItemInfo old_item = app_->get_item(60);  // old item ids start after active
  EXPECT_TRUE(old_item.found);
  EXPECT_TRUE(old_item.closed);
  ItemInfo missing = app_->get_item(999'999);
  EXPECT_FALSE(missing.found);
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, AuthUserResolvesNickname) {
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_EQ(app_->auth_user("user_7"), 7);
  EXPECT_EQ(app_->auth_user("no_such_user"), -1);
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, PagesRenderNonEmpty) {
  ASSERT_TRUE(client_->BeginRO().ok());
  EXPECT_NE(app_->view_item_page(1).html.find("item-1"), std::string::npos);
  EXPECT_NE(app_->view_user_page(3).html.find("user_3"), std::string::npos);
  EXPECT_FALSE(app_->browse_categories_page().html.empty());
  EXPECT_FALSE(app_->browse_regions_page().html.empty());
  EXPECT_FALSE(app_->bid_history_page(1).html.empty());
  EXPECT_FALSE(app_->about_me_page(5).html.empty());
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, CategoryListingPaginates) {
  ASSERT_TRUE(client_->BeginRO().ok());
  // With 60 items over 20 categories, page 0 should have a few items; pages must not overlap.
  std::vector<int64_t> page0, page1;
  for (int64_t cat = 0; cat < 20; ++cat) {
    auto p0 = app_->category_items(cat, 0);
    if (!p0.empty()) {
      page0 = p0;
      page1 = app_->category_items(cat, 1);
      break;
    }
  }
  EXPECT_FALSE(page0.empty());
  for (int64_t id : page1) {
    EXPECT_EQ(std::count(page0.begin(), page0.end(), id), 0) << "pages must not overlap";
  }
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, StoreBidUpdatesItemAndInsertsBid) {
  const int64_t bids_before = CountRows(kBids);
  ASSERT_TRUE(client_->BeginRO().ok());
  ItemInfo before = app_->get_item(1);
  ASSERT_TRUE(client_->Commit().ok());

  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->StoreBid(3, 1, before.max_bid + 50).ok());
  ASSERT_TRUE(client_->Commit().ok());

  EXPECT_EQ(CountRows(kBids), bids_before + 1);
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  ItemInfo after = app_->get_item(1);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(after.nb_of_bids, before.nb_of_bids + 1);
  EXPECT_EQ(after.max_bid, before.max_bid + 50);
}

TEST_F(RubisTest, StoreBidOnMissingItemFails) {
  ASSERT_TRUE(client_->BeginRW().ok());
  EXPECT_EQ(app_->StoreBid(3, 999'999, 10.0).code(), StatusCode::kNotFound);
  client_->Abort();
}

TEST_F(RubisTest, BuyNowSellsOutAndClosesAuction) {
  // Find the item's quantity, then buy it all: the auction must move to old_items.
  ASSERT_TRUE(client_->BeginRO().ok());
  ItemInfo item = app_->get_item(2);
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_GT(item.quantity, 0);

  for (int64_t i = 0; i < item.quantity; ++i) {
    ASSERT_TRUE(client_->BeginRW().ok());
    ASSERT_TRUE(app_->StoreBuyNow(4, 2, 1).ok());
    ASSERT_TRUE(client_->Commit().ok());
  }
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  ItemInfo closed = app_->get_item(2);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_TRUE(closed.found);
  EXPECT_TRUE(closed.closed) << "sold-out auction moved to old_items";
  EXPECT_EQ(closed.quantity, 0);
}

TEST_F(RubisTest, StoreCommentAdjustsRating) {
  ASSERT_TRUE(client_->BeginRO().ok());
  UserInfo before = app_->get_user(6);
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->StoreComment(7, 6, 1, 5, "excellent").ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  UserInfo after = app_->get_user(6);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(after.rating, before.rating + 2);  // rating 5 => +2
}

TEST_F(RubisTest, RegisterUserAndItemAllocateFreshIds) {
  ASSERT_TRUE(client_->BeginRW().ok());
  auto user = app_->RegisterUser(3);
  ASSERT_TRUE(user.ok());
  EXPECT_GE(user.value(), 50);
  auto item = app_->RegisterItem(user.value(), 2, 3, "gizmo", "shiny", 9.5);
  ASSERT_TRUE(item.ok());
  EXPECT_GE(item.value(), 80);
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_TRUE(app_->get_item(item.value()).found);
  EXPECT_TRUE(app_->get_user(user.value()).found);
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, CachedItemPageInvalidatedByBid) {
  ASSERT_TRUE(client_->BeginRO().ok());
  Page page1 = app_->view_item_page(5);
  ASSERT_TRUE(client_->Commit().ok());

  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->StoreBid(9, 5, 10'000.0).ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  Page page2 = app_->view_item_page(5);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_NE(page1.html, page2.html) << "bid must invalidate the cached page";
  EXPECT_NE(page2.html.find("10000"), std::string::npos);
}

TEST_F(RubisTest, BrowsePageWildcardInvalidatedByNewCategory) {
  // browse_categories_page is built from a sequential scan, so it carries a wildcard tag: ANY
  // write to the categories table — even inserting a brand-new row no index lookup would have
  // found — must invalidate it.
  ASSERT_TRUE(client_->BeginRO().ok());
  Page before = app_->browse_categories_page();
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(before.html.find("category-999"), std::string::npos);

  TxnId txn = db_->BeginReadWrite();
  ASSERT_TRUE(db_->Insert(txn, kCategories, Row{Value(int64_t{999}), Value("category-999")})
                  .ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  Page after = app_->browse_categories_page();
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_NE(after.html.find("category-999"), std::string::npos)
      << "wildcard invalidation must catch inserts of previously-unknown keys";
}

TEST_F(RubisTest, CacheNodeLossOnlyCostsMisses) {
  // Removing a cache node remaps its keys; correctness is unaffected — subsequent reads
  // recompute (compulsory misses on the surviving node) but stay consistent.
  ASSERT_TRUE(client_->BeginRO().ok());
  ItemInfo before = app_->get_item(3);
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_TRUE(cluster_->RemoveNode(cache_->name()));
  // Install a fresh replacement node (a cold standby joining the ring).
  CacheServer standby("standby", &clock_);
  bus_->Subscribe(&standby);
  ASSERT_TRUE(cluster_->AddNode(&standby));

  ASSERT_TRUE(client_->BeginRO().ok());
  ItemInfo after = app_->get_item(3);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(after.name, before.name);
  EXPECT_EQ(after.max_bid, before.max_bid);
  EXPECT_GT(standby.stats().inserts, 0u) << "recomputed results landed on the new node";
}

TEST_F(RubisTest, InteractionNamesAndReadOnlyFlags) {
  int rw = 0;
  for (size_t i = 0; i < static_cast<size_t>(Interaction::kCount); ++i) {
    auto interaction = static_cast<Interaction>(i);
    EXPECT_STRNE(InteractionName(interaction), "");
    if (!IsReadOnly(interaction)) {
      ++rw;
    }
  }
  EXPECT_EQ(rw, 5) << "five read/write interaction types";
}

TEST_F(RubisTest, SessionRunsEveryInteraction) {
  RubisSession session(client_.get(), dataset_.get(), &clock_, /*seed=*/7);
  for (size_t i = 0; i < static_cast<size_t>(Interaction::kCount); ++i) {
    auto interaction = static_cast<Interaction>(i);
    Status st = session.Run(interaction);
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kNotFound ||
                st.code() == StatusCode::kConflict)
        << InteractionName(interaction) << ": " << st.ToString();
    EXPECT_FALSE(client_->in_transaction()) << InteractionName(interaction);
    clock_.Advance(Millis(200));
  }
  EXPECT_GT(session.stats().completed, 15u);
}

TEST_F(RubisTest, SessionMixIsRoughlyEightyFifteen) {
  RubisSession session(client_.get(), dataset_.get(), &clock_, /*seed=*/11);
  int ro = 0, rw = 0;
  for (int i = 0; i < 20'000; ++i) {
    (IsReadOnly(session.Next()) ? ro : rw)++;
  }
  double rw_frac = static_cast<double>(rw) / (ro + rw);
  EXPECT_NEAR(rw_frac, 0.15, 0.02) << "bidding mix is ~15% read/write";
}

TEST_F(RubisTest, AdvisoryDeclineRateShrinksListingFills) {
  // Hint-driven fill pacing: when the fleet's advisory hints report the listing function's
  // fills being declined, the impl shrinks the page it computes (kPageSize=20 → 5 at a
  // decline rate ≥ 0.75). Give category 2 enough items that a full page is actually full.
  constexpr int64_t kCat = 2;
  ASSERT_TRUE(client_->BeginRW().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(app_->RegisterItem(5, kCat, 3, "filler", "bulk listing", 4.2).ok());
  }
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(app_->category_items(kCat, 0).size(), 20u) << "no hints: full page";
  ASSERT_TRUE(client_->Commit().ok());

  // The cache fleet starts declining this function's fills: feed the observation the next
  // lookup/insert response would have carried.
  const std::string fn = "rubis.category_items";
  auto hints = std::make_shared<AdvisoryHints>();
  hints->decline_rate = 0.9;
  client_->ObserveHints(MakeCacheKey(fn, kCat, int64_t{0}), &fn, cache_->name(), hints);

  // Invalidate the cached page so the next read actually recomputes.
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->RegisterItem(5, kCat, 3, "filler", "bulk listing", 4.2).ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(app_->category_items(kCat, 0).size(), 5u)
      << "decline rate 0.9 downgrades the fill to a quarter page";
  // The page offset keeps the full stride, so downgraded pages still never overlap.
  std::vector<int64_t> page0 = app_->category_items(kCat, 0);
  std::vector<int64_t> page1 = app_->category_items(kCat, 1);
  for (int64_t id : page1) {
    EXPECT_EQ(std::count(page0.begin(), page0.end(), id), 0);
  }
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, AdvisoryDeclineRateShrinksDerivedSqlListingFills) {
  // The same hint-driven pacing must govern the SQL-path fills: in derived-tag mode the
  // listing is computed by an ad-hoc SELECT whose LIMIT comes from FillLimit, so a declining
  // fleet shrinks the SQL statement's page exactly like the hand-written query's.
  ASSERT_TRUE(app_->EnableDerivedTags(db_.get()).ok());
  constexpr int64_t kCat = 2;
  ASSERT_TRUE(client_->BeginRW().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(app_->RegisterItem(5, kCat, 3, "filler", "bulk listing", 4.2).ok());
  }
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(app_->category_items(kCat, 0).size(), 20u) << "no hints: full page";
  ASSERT_TRUE(client_->Commit().ok());

  const std::string fn = "rubis.category_items";
  auto hints = std::make_shared<AdvisoryHints>();
  hints->decline_rate = 0.9;
  client_->ObserveHints(MakeCacheKey(fn, kCat, int64_t{0}), &fn, cache_->name(), hints);

  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(app_->RegisterItem(5, kCat, 3, "filler", "bulk listing", 4.2).ok());
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  EXPECT_EQ(app_->category_items(kCat, 0).size(), 5u)
      << "decline rate 0.9 must downgrade the derived-SQL fill to a quarter page";
  std::vector<int64_t> page0 = app_->category_items(kCat, 0);
  std::vector<int64_t> page1 = app_->category_items(kCat, 1);
  for (int64_t id : page1) {
    EXPECT_EQ(std::count(page0.begin(), page0.end(), id), 0)
        << "downgraded pages keep the full stride and must not overlap";
  }
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RubisTest, OptimisticStoreBidBacksOffOnForeignIntentThenCommits) {
  const int64_t bids_before = CountRows(kBids);
  ASSERT_TRUE(client_->BeginRO().ok());
  ItemInfo before = app_->get_item(1);
  ASSERT_TRUE(client_->Commit().ok());

  // A rival optimistic transaction announces it is about to invalidate item 1's entries.
  TxCacheClient rival(db_.get(), pincushion_.get(), cluster_.get(), &clock_);
  ASSERT_TRUE(rival.BeginRw().ok());
  ASSERT_TRUE(rival.WriteIntent(MakeCacheKey("rubis.get_item", int64_t{1})).ok());

  // StoreBid's own intent acquisition is refused every round, so the retry budget is spent
  // without paying for any reads or writes.
  auto blocked = client_->RunRwTransaction(
      [&] { return app_->StoreBid(3, 1, before.max_bid + 50); });
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kConflict);
  EXPECT_EQ(client_->stats().rw_retries, client_->options().rw_max_retries - 1);
  EXPECT_GT(client_->stats().rw_intent_conflicts, 0u);
  EXPECT_EQ(CountRows(kBids), bids_before) << "refused intent aborts before any write";

  // The rival aborts; its intent is released and the bid goes through.
  rival.Abort();
  auto ts = client_->RunRwTransaction(
      [&] { return app_->StoreBid(3, 1, before.max_bid + 50); });
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();
  EXPECT_EQ(CountRows(kBids), bids_before + 1);
  clock_.Advance(Seconds(1));
  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  ItemInfo after = app_->get_item(1);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(after.nb_of_bids, before.nb_of_bids + 1);
  EXPECT_EQ(cache_->ClearIntents(), 0u) << "no intent may outlive its transaction";
}

TEST_F(RubisTest, SessionOptimisticWritesRunEveryInteraction) {
  RubisSession session(client_.get(), dataset_.get(), &clock_, /*seed=*/7);
  session.set_optimistic_writes(true);
  for (size_t i = 0; i < static_cast<size_t>(Interaction::kCount); ++i) {
    auto interaction = static_cast<Interaction>(i);
    Status st = session.Run(interaction);
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kNotFound ||
                st.code() == StatusCode::kConflict)
        << InteractionName(interaction) << ": " << st.ToString();
    EXPECT_FALSE(client_->in_transaction()) << InteractionName(interaction);
    clock_.Advance(Millis(200));
  }
  EXPECT_GT(session.stats().completed, 15u);
  EXPECT_GT(client_->stats().rw_optimistic_txns, 0u);
  EXPECT_GT(client_->stats().rw_commits, 0u);
  EXPECT_EQ(client_->stats().bypassed_calls, 0u)
      << "optimistic RW interactions read through the cache instead of bypassing it";
  EXPECT_EQ(cache_->ClearIntents(), 0u);
}

TEST_F(RubisTest, SessionLoopMaintainsConsistency) {
  RubisSession session(client_.get(), dataset_.get(), &clock_, /*seed=*/13);
  for (int i = 0; i < 300; ++i) {
    session.Run(session.Next());
    clock_.Advance(Millis(137));
  }
  EXPECT_GT(session.stats().completed, 250u);
  // Cache must have been exercised.
  EXPECT_GT(client_->stats().cacheable_calls, 0u);
  EXPECT_GT(client_->stats().cache_hits, 0u);
}

}  // namespace
}  // namespace txcache::rubis
