// Replicated pincushion (§5.4 extension): primary-backup state machine, failover, resync.
#include "src/pincushion/replicated_pincushion.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class ReplicatedPincushionTest : public ::testing::Test {
 protected:
  ReplicatedPincushionTest() : db_(&clock_), group_(&db_, &clock_, 3) {
    CreateAccountsTable(&db_);
    InsertAccount(&db_, 1, "a", 1);
  }

  PinInfo PinAndRegister() {
    PinnedSnapshot snap = db_.Pin();
    PinInfo pin{snap.ts, snap.wallclock};
    group_.Register(pin);
    return pin;
  }

  ManualClock clock_;
  Database db_;
  ReplicatedPincushion group_;
};

TEST_F(ReplicatedPincushionTest, StartsWithThreeLiveReplicas) {
  EXPECT_EQ(group_.replica_count(), 3u);
  EXPECT_EQ(group_.live_count(), 3u);
  EXPECT_EQ(group_.primary_index(), 0u);
}

TEST_F(ReplicatedPincushionTest, WritesVisibleOnEveryReplica) {
  PinAndRegister();
  group_.Release(group_.AcquireFreshPins(Seconds(30)));
  for (size_t i = 0; i < 3; ++i) {
    auto pins = group_.AcquireFreshPinsFrom(i, Seconds(30));
    EXPECT_EQ(pins.size(), 1u) << "replica " << i;
    group_.Release(pins);
  }
}

TEST_F(ReplicatedPincushionTest, FailoverPromotesNextReplica) {
  PinAndRegister();
  ASSERT_TRUE(group_.FailReplica(0));
  EXPECT_EQ(group_.primary_index(), 1u);
  EXPECT_EQ(group_.live_count(), 2u);
  // The group keeps serving with identical state.
  auto pins = group_.AcquireFreshPins(Seconds(30));
  EXPECT_EQ(pins.size(), 1u);
  group_.Release(pins);
  EXPECT_EQ(group_.pinned_count(), 1u);
}

TEST_F(ReplicatedPincushionTest, RefusesToKillLastReplica) {
  ASSERT_TRUE(group_.FailReplica(0));
  ASSERT_TRUE(group_.FailReplica(1));
  EXPECT_FALSE(group_.FailReplica(2)) << "the last live replica must survive";
  EXPECT_EQ(group_.live_count(), 1u);
}

TEST_F(ReplicatedPincushionTest, FailedReplicaServesNothing) {
  PinAndRegister();
  ASSERT_TRUE(group_.FailReplica(1));
  EXPECT_TRUE(group_.AcquireFreshPinsFrom(1, Seconds(30)).empty());
  EXPECT_FALSE(group_.FailReplica(1)) << "double-fail rejected";
}

TEST_F(ReplicatedPincushionTest, RecoveryResyncsMissedWrites) {
  ASSERT_TRUE(group_.FailReplica(2));
  PinInfo pin = PinAndRegister();  // replica 2 misses this write
  ASSERT_TRUE(group_.RecoverReplica(2));
  auto pins = group_.AcquireFreshPinsFrom(2, Seconds(30));
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].ts, pin.ts) << "recovered replica caught up via state transfer";
  group_.Release(pins);
  EXPECT_FALSE(group_.RecoverReplica(2)) << "double-recover rejected";
}

TEST_F(ReplicatedPincushionTest, PrimaryFailsBackoverAfterRecovery) {
  ASSERT_TRUE(group_.FailReplica(0));
  EXPECT_EQ(group_.primary_index(), 1u);
  ASSERT_TRUE(group_.RecoverReplica(0));
  EXPECT_EQ(group_.primary_index(), 0u) << "lowest live index is primary again";
}

TEST_F(ReplicatedPincushionTest, SweepRunsOnPrimaryAndSyncsBackups) {
  PinInfo pin = PinAndRegister();
  group_.Release({pin});  // Register marked it in use once
  clock_.Advance(Seconds(300));
  EXPECT_EQ(group_.Sweep(), 1u);
  EXPECT_EQ(db_.pinned_snapshot_count(), 0u) << "exactly one UNPIN reached the database";
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(group_.AcquireFreshPinsFrom(i, Seconds(600)).empty())
        << "replica " << i << " kept a swept pin";
  }
}

TEST_F(ReplicatedPincushionTest, SweepAfterFailoverDoesNotDoubleUnpin) {
  PinInfo pin = PinAndRegister();
  group_.Release({pin});
  ASSERT_TRUE(group_.FailReplica(0));
  clock_.Advance(Seconds(300));
  EXPECT_EQ(group_.Sweep(), 1u);
  EXPECT_EQ(db_.pinned_snapshot_count(), 0u);
  // Recovering the old primary must not resurrect the swept pin.
  ASSERT_TRUE(group_.RecoverReplica(0));
  EXPECT_EQ(group_.pinned_count(), 0u);
  EXPECT_EQ(group_.Sweep(), 0u) << "nothing left to unpin";
}

TEST_F(ReplicatedPincushionTest, SurvivesRollingFailures) {
  for (int round = 0; round < 6; ++round) {
    PinInfo pin = PinAndRegister();
    size_t victim = static_cast<size_t>(round) % 3;
    if (group_.live_count() > 1) {
      group_.FailReplica(victim);
    }
    auto pins = group_.AcquireFreshPins(Seconds(60));
    EXPECT_FALSE(pins.empty()) << "round " << round;
    group_.Release(pins);
    group_.Release({pin});
    group_.RecoverReplica(victim);
    EXPECT_EQ(group_.live_count(), 3u);
  }
}

}  // namespace
}  // namespace txcache
