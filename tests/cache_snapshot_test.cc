// Snapshot persistence and warm rejoin: the export/import round-trip property (no lookup on
// an imported node may ever answer staler than the exporter would have), the periodic
// persistence cadence, and Join()'s snapshot-first fallback — restore + residual replay, the
// degraded close when history no longer covers even the residual gap, and the guards that
// keep a stale snapshot from masking the flush path.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/bus/bus.h"
#include "src/cache/cache_server.h"
#include "src/cache/file_snapshot_store.h"
#include "src/cache/snapshot_store.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace txcache {
namespace {

InsertRequest StillValidEntry(const std::string& key, const std::string& value,
                              const std::string& group, Timestamp computed_at = 1) {
  InsertRequest req;
  req.key = key;
  req.value = value;
  req.interval = {computed_at, kTimestampInfinity};
  req.computed_at = computed_at;
  req.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return req;
}

LookupRequest Probe(const std::string& key, Timestamp lo, Timestamp hi) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = lo;
  req.bounds_hi = hi;
  req.fresh_lo = lo;
  return req;
}

InvalidationMessage GroupInval(const std::string& group, Timestamp ts) {
  InvalidationMessage msg;
  msg.ts = ts;
  msg.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return msg;
}

// --- round-trip property under a live invalidation feed -------------------------

TEST(Snapshot, RoundTripUnderLiveFeedNeverServesStaleReads) {
  // Property: export a node mid-stream while inserts and invalidations interleave, import
  // the bytes into a fresh node, and compare every probe against a replay oracle. The
  // imported node must never claim validity past the last invalidation the exporter applied
  // to that entry's group — that would be the stale read — while entries whose groups were
  // never invalidated after their insert must still hit (the snapshot is not allowed to be
  // conservatively empty either).
  ManualClock clock;
  InvalidationBus bus(/*history_limit=*/4096);
  CacheServer exporter("exporter", &clock);
  bus.Subscribe(&exporter);

  constexpr size_t kKeys = 96;
  constexpr size_t kGroups = 12;
  auto key_name = [](size_t k) { return "key-" + std::to_string(k); };
  auto group_name = [&](size_t k) { return "g" + std::to_string(k % kGroups); };

  Rng rng(11);
  Timestamp feed_ts = 1;
  std::map<size_t, Timestamp> inserted_at;           // key -> computed_at of its live insert
  std::map<std::string, Timestamp> last_inval;       // group -> last invalidation ts
  // Interleave: each step either (re)inserts a key still-valid at the current feed position
  // or publishes an invalidation on a random group through the real bus.
  for (int step = 0; step < 600; ++step) {
    if (rng.Uniform(0, 2) != 0) {
      const size_t k = static_cast<size_t>(rng.Uniform(0, kKeys - 1));
      ASSERT_TRUE(
          exporter.Insert(StillValidEntry(key_name(k), "v" + std::to_string(k), group_name(k),
                                          /*computed_at=*/feed_ts))
              .ok());
      inserted_at[k] = feed_ts;
    } else {
      const std::string group = "g" + std::to_string(rng.Uniform(0, kGroups - 1));
      bus.Publish(GroupInval(group, ++feed_ts));
      last_inval[group] = feed_ts;
    }
  }

  const std::string snapshot = exporter.ExportSnapshot();
  CacheServer importer("importer", &clock);
  ASSERT_TRUE(importer.ImportSnapshot(snapshot).ok());
  EXPECT_EQ(importer.stream_position(), exporter.stream_position())
      << "the importer adopts the exporter's stream position";

  const Timestamp now = feed_ts;
  size_t live_hits = 0;
  for (const auto& [k, computed_at] : inserted_at) {
    auto it = last_inval.find(group_name(k));
    const bool invalidated_after_insert = it != last_inval.end() && it->second > computed_at;
    LookupResponse fresh = importer.Lookup(Probe(key_name(k), now, kTimestampInfinity));
    if (invalidated_after_insert) {
      // Oracle: the exporter truncated this entry at its group's invalidation; the imported
      // copy claiming validity at/past `now` would be a stale read.
      EXPECT_FALSE(fresh.hit) << key_name(k);
      // The closed version still serves the pre-invalidation window, exactly like the
      // exporter's copy.
      LookupResponse old_window =
          importer.Lookup(Probe(key_name(k), computed_at, it->second - 1));
      EXPECT_TRUE(old_window.hit) << key_name(k);
      if (old_window.hit) {
        EXPECT_LE(old_window.interval.upper, it->second) << key_name(k);
      }
    } else {
      ASSERT_TRUE(fresh.hit) << key_name(k) << " must survive the round-trip still-valid";
      EXPECT_EQ(fresh.value_ref(), "v" + std::to_string(k));
      ++live_hits;
    }
  }
  ASSERT_GT(live_hits, 0u) << "degenerate run: every key was invalidated";

  // Tag registrations survive the import: a post-import invalidation delivered to the
  // importer truncates its still-valid entries like any live node's.
  bus.Subscribe(&importer);
  const std::string victim_group = "g0";
  bus.Publish(GroupInval(victim_group, ++feed_ts));
  for (const auto& [k, computed_at] : inserted_at) {
    if (group_name(k) == victim_group) {
      EXPECT_FALSE(importer.Lookup(Probe(key_name(k), feed_ts, kTimestampInfinity)).hit)
          << "imported still-valid entry must honor post-import invalidations";
    }
  }
}

// --- periodic persistence cadence ----------------------------------------------

TEST(Snapshot, PeriodicPersistenceFollowsTheConfiguredCadence) {
  ManualClock clock;
  InvalidationBus bus;
  InMemorySnapshotStore store;
  CacheServer::Options options;
  options.snapshot_interval_messages = 4;
  CacheServer node("n", &clock, options);
  node.set_snapshot_store(&store);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.Insert(StillValidEntry("k", "v", "g")).ok());

  for (Timestamp ts = 2; ts <= 13; ++ts) {
    bus.Publish(GroupInval("other", ts));
  }
  EXPECT_EQ(store.saves(), 3u) << "12 applied messages at interval 4";

  // The persisted bytes are a usable snapshot: a fresh node importing them holds the entry.
  auto snap = store.LoadFreshest("n");
  ASSERT_TRUE(snap.has_value());
  CacheServer probe("probe", &clock);
  ASSERT_TRUE(probe.ImportSnapshot(*snap).ok());
  EXPECT_TRUE(probe.Lookup(Probe("k", 1, kTimestampInfinity)).hit);
}

TEST(Snapshot, PersistenceIsInertWithoutAStoreOrWithIntervalZero) {
  ManualClock clock;
  InvalidationBus bus;
  // No store attached: deliveries must not crash, PersistSnapshot is a no-op.
  CacheServer bare("bare", &clock);
  bus.Subscribe(&bare);
  bus.Publish(GroupInval("g", 2));
  bare.PersistSnapshot();

  // interval 0 disables the periodic hook entirely; explicit PersistSnapshot still works.
  InMemorySnapshotStore store;
  CacheServer::Options options;
  options.snapshot_interval_messages = 0;
  CacheServer node("n", &clock, options);
  node.set_snapshot_store(&store);
  bus.Subscribe(&node);
  for (Timestamp ts = 3; ts < 40; ++ts) {
    bus.Publish(GroupInval("g", ts));
  }
  EXPECT_EQ(store.saves(), 0u);
  node.PersistSnapshot();
  EXPECT_EQ(store.saves(), 1u);
}

// --- warm rejoin: Join()'s snapshot-first fallback ------------------------------

TEST(Snapshot, ColdRestartRestoresFreshestSnapshotInsteadOfFlushing) {
  ManualClock clock;
  // History far too short for a from-scratch replay (the restart's position is 1) but long
  // enough for the residual gap after the last periodic snapshot.
  InvalidationBus bus(/*history_limit=*/8);
  InMemorySnapshotStore store;
  CacheServer::Options options;
  options.snapshot_interval_messages = 2;
  auto incarnation1 = std::make_unique<CacheServer>("n", &clock, options);
  incarnation1->set_snapshot_store(&store);
  bus.Subscribe(incarnation1.get());
  ASSERT_TRUE(incarnation1->Insert(StillValidEntry("ka", "va", "ga")).ok());
  ASSERT_TRUE(incarnation1->Insert(StillValidEntry("kb", "vb", "gb")).ok());
  Timestamp feed_ts = 1;
  for (int i = 0; i < 10; ++i) {
    bus.Publish(GroupInval("other", ++feed_ts));  // periodic snapshots fire along the way
  }
  ASSERT_GE(store.saves(), 1u);

  // True crash: process destroyed, memory gone; only the snapshot store survives. Traffic
  // continues while no incarnation is alive.
  bus.Unsubscribe(incarnation1.get());
  incarnation1.reset();
  bus.Publish(GroupInval("ga", ++feed_ts));  // invalidates ka during the outage
  bus.Publish(GroupInval("other", ++feed_ts));

  CacheServer incarnation2("n", &clock, options);
  incarnation2.set_snapshot_store(&store);
  ASSERT_TRUE(incarnation2.Join(&bus).ok());
  EXPECT_TRUE(incarnation2.serving());
  EXPECT_EQ(incarnation2.stats().join_snapshot_restores, 1u);
  EXPECT_EQ(incarnation2.stats().join_flushes, 0u)
      << "the snapshot made the rejoin warm; flushing would have thrown the state away";
  EXPECT_EQ(incarnation2.stream_position(), bus.next_seqno());

  // Warm: the entry untouched by the outage serves immediately.
  LookupResponse warm = incarnation2.Lookup(Probe("kb", 1, kTimestampInfinity));
  ASSERT_TRUE(warm.hit);
  EXPECT_EQ(warm.value_ref(), "vb");
  // Correct: the invalidation published during the outage was replayed over the restored
  // state — serving ka at fresh bounds would be the stale read.
  EXPECT_FALSE(incarnation2.Lookup(Probe("ka", feed_ts, kTimestampInfinity)).hit);
}

TEST(Snapshot, ResidualGapBeyondHistoryClosesRestoredEntriesConservatively) {
  // The degraded warm path: the snapshot restores, but the bus history no longer covers even
  // the residual gap [snapshot position, join target). The node must keep the restored data
  // yet stop vouching for its current validity — still-valid entries are closed at the
  // snapshot's last applied invalidation, and the history floor rises to the adopted
  // position so late inserts from inside the gap are truncated too.
  ManualClock clock;
  InvalidationBus bus(/*history_limit=*/4);
  InMemorySnapshotStore store;
  CacheServer::Options options;
  options.snapshot_interval_messages = 0;  // manual persistence: pin the snapshot position
  auto incarnation1 = std::make_unique<CacheServer>("n", &clock, options);
  incarnation1->set_snapshot_store(&store);
  bus.Subscribe(incarnation1.get());
  ASSERT_TRUE(incarnation1->Insert(StillValidEntry("ka", "va", "ga")).ok());
  bus.Publish(GroupInval("other", 5));  // the snapshot's last applied invalidation
  incarnation1->PersistSnapshot();

  // The outage outruns the bounded history even measured from the snapshot's position.
  bus.Unsubscribe(incarnation1.get());
  incarnation1.reset();
  for (Timestamp ts = 6; ts < 14; ++ts) {
    bus.Publish(GroupInval("other", ts));
  }

  CacheServer incarnation2("n", &clock, options);
  incarnation2.set_snapshot_store(&store);
  ASSERT_TRUE(incarnation2.Join(&bus).ok());
  EXPECT_TRUE(incarnation2.serving());
  EXPECT_EQ(incarnation2.stats().join_snapshot_restores, 1u);
  EXPECT_EQ(incarnation2.stats().join_flushes, 0u);
  EXPECT_GT(incarnation2.version_count(), 0u) << "restored data is retained, not flushed";

  // ka cannot prove it survived the unseen gap: no hit at fresh bounds...
  EXPECT_FALSE(incarnation2.Lookup(Probe("ka", 13, kTimestampInfinity)).hit);
  // ...but the window the snapshot could vouch for still serves.
  LookupResponse old_window = incarnation2.Lookup(Probe("ka", 1, 5));
  ASSERT_TRUE(old_window.hit);
  EXPECT_EQ(old_window.value_ref(), "va");

  // History floor: an insert computed inside the unseen gap is conservatively truncated.
  ASSERT_TRUE(incarnation2.Insert(StillValidEntry("kc", "vc", "gc", /*computed_at=*/8)).ok());
  EXPECT_GE(incarnation2.stats().insert_time_truncations, 1u);
  EXPECT_FALSE(incarnation2.Lookup(Probe("kc", 13, kTimestampInfinity)).hit);
}

TEST(Snapshot, StaleSnapshotDoesNotMaskTheFlushPath) {
  // Warm restart (memory survived, position ahead of every stored snapshot): restoring would
  // REWIND the node onto state whose truncations it already applied — the guard requires the
  // snapshot to be strictly ahead of our position, so this rejoin must take the flush path.
  ManualClock clock;
  InvalidationBus bus(/*history_limit=*/4);
  InMemorySnapshotStore store;
  CacheServer node("n", &clock);
  node.set_snapshot_store(&store);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.Insert(StillValidEntry("ka", "va", "ga")).ok());
  node.PersistSnapshot();  // snapshot at the CURRENT position — never ahead of it

  node.Crash();  // memory kept: the node's position stays where it was
  for (Timestamp ts = 10; ts < 18; ++ts) {
    bus.Publish(GroupInval("ga", ts));
  }
  ASSERT_TRUE(node.Join(&bus).ok());
  EXPECT_TRUE(node.serving());
  EXPECT_EQ(node.stats().join_snapshot_restores, 0u);
  EXPECT_EQ(node.stats().join_flushes, 1u);
  EXPECT_FALSE(node.Lookup(Probe("ka", 1, kTimestampInfinity)).hit)
      << "flush semantics unchanged: pre-crash state is gone";
}

TEST(Snapshot, CorruptSnapshotFallsBackToFlush) {
  ManualClock clock;
  InvalidationBus bus(/*history_limit=*/4);
  InMemorySnapshotStore store;
  CacheServer node("n", &clock);
  node.set_snapshot_store(&store);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.Insert(StillValidEntry("ka", "va", "ga")).ok());

  // A truncated/garbage blob in the store: the header peek (or the import) must reject it
  // and the rejoin must degrade to the flush path, never crash or serve bad state.
  store.Save("n", "not a snapshot");
  node.Crash();
  for (Timestamp ts = 10; ts < 18; ++ts) {
    bus.Publish(GroupInval("ga", ts));
  }
  ASSERT_TRUE(node.Join(&bus).ok());
  EXPECT_TRUE(node.serving());
  EXPECT_EQ(node.stats().join_snapshot_restores, 0u);
  EXPECT_EQ(node.stats().join_flushes, 1u);
  EXPECT_EQ(node.version_count(), 0u);
}

// --- file-backed store: durability across a real process boundary ---------------

// A scratch directory under /tmp, removed (recursively, one level) on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/txcache_snap_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "";
  }
  ~ScratchDir() {
    if (path_.empty()) {
      return;
    }
    if (DIR* d = opendir(path_.c_str())) {
      while (dirent* e = readdir(d)) {
        std::string name = e->d_name;
        if (name != "." && name != "..") {
          unlink((path_ + "/" + name).c_str());
        }
      }
      closedir(d);
    }
    rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FileSnapshot, SaveLoadRoundTripAndAtomicReplace) {
  ScratchDir dir;
  FileSnapshotStore store(dir.path());
  store.Save("n", "first snapshot bytes");
  EXPECT_EQ(store.saves(), 1u);
  EXPECT_EQ(store.save_failures(), 0u);

  auto loaded = store.LoadFreshest("n");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "first snapshot bytes");

  // Replace: the newer save wins wholesale — never a splice of old and new bytes.
  store.Save("n", "second, longer snapshot payload");
  loaded = store.LoadFreshest("n");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "second, longer snapshot payload");

  // A second store over the same directory sees the bytes: this is the property the
  // in-memory store cannot provide — survival across the process boundary.
  FileSnapshotStore reopened(dir.path());
  auto survived = reopened.LoadFreshest("n");
  ASSERT_TRUE(survived.has_value());
  EXPECT_EQ(*survived, "second, longer snapshot payload");

  store.Erase("n");
  EXPECT_FALSE(store.LoadFreshest("n").has_value());
}

TEST(FileSnapshot, HostileNodeNamesStayInsideTheDirectory) {
  ScratchDir dir;
  FileSnapshotStore store(dir.path());
  const std::string hostile = "../escape/node:0";
  store.Save(hostile, "bytes");
  const std::string path = store.PathFor(hostile);
  EXPECT_EQ(path.find(dir.path() + "/"), 0u);
  // Separators never survive sanitization, so ".." is just two literal dots in one file
  // name — the path cannot climb out of the directory.
  const std::string leaf = path.substr(dir.path().size() + 1);
  EXPECT_EQ(leaf.find('/'), std::string::npos);
  auto loaded = store.LoadFreshest(hostile);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "bytes");
}

TEST(FileSnapshot, CorruptAndTruncatedFilesAreRejectedNotServed) {
  ScratchDir dir;
  FileSnapshotStore store(dir.path());
  const std::string snapshot(512, 's');
  store.Save("n", snapshot);
  const std::string path = store.PathFor("n");

  // Read the good file once so we can write damaged variants back.
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream ss;
    ss << in.rdbuf();
    good = ss.str();
  }
  ASSERT_GT(good.size(), 24u);

  auto rewrite = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  const uint64_t rejects_before = store.corrupt_rejects();
  // Flip one payload byte: checksum mismatch.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x5a;
  rewrite(flipped);
  EXPECT_FALSE(store.LoadFreshest("n").has_value());
  // Truncate mid-payload: length mismatch.
  rewrite(good.substr(0, good.size() / 2));
  EXPECT_FALSE(store.LoadFreshest("n").has_value());
  // Shorter than the header: rejected before any field parses.
  rewrite(good.substr(0, 7));
  EXPECT_FALSE(store.LoadFreshest("n").has_value());
  // Wrong magic entirely.
  rewrite("this is not a snapshot file at all");
  EXPECT_FALSE(store.LoadFreshest("n").has_value());
  EXPECT_GE(store.corrupt_rejects(), rejects_before + 4);

  // Intact bytes restored: loads again. Corruption never poisons the store object.
  rewrite(good);
  auto loaded = store.LoadFreshest("n");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, snapshot);
}

TEST(FileSnapshot, UncreatableDirectoryMakesSavesCountedNoOps) {
  FileSnapshotStore store("/proc/definitely/not/creatable");
  store.Save("n", "bytes");
  EXPECT_EQ(store.save_failures(), 1u);
  EXPECT_FALSE(store.LoadFreshest("n").has_value());
}

TEST(FileSnapshot, WarmRejoinThroughARealDirectorySurvivesStoreDestruction) {
  // The ColdRestartRestoresFreshestSnapshot scenario, but nothing in memory survives the
  // crash: incarnation1 AND its store object are destroyed, and incarnation2 warms up from
  // a brand-new FileSnapshotStore over the same directory — i.e. from the disk bytes alone.
  ScratchDir dir;
  ManualClock clock;
  InvalidationBus bus(/*history_limit=*/8);
  CacheServer::Options options;
  options.snapshot_interval_messages = 2;
  Timestamp feed_ts = 1;
  {
    FileSnapshotStore store1(dir.path());
    auto incarnation1 = std::make_unique<CacheServer>("n", &clock, options);
    incarnation1->set_snapshot_store(&store1);
    bus.Subscribe(incarnation1.get());
    ASSERT_TRUE(incarnation1->Insert(StillValidEntry("ka", "va", "ga")).ok());
    ASSERT_TRUE(incarnation1->Insert(StillValidEntry("kb", "vb", "gb")).ok());
    for (int i = 0; i < 10; ++i) {
      bus.Publish(GroupInval("other", ++feed_ts));
    }
    ASSERT_GE(store1.saves(), 1u);
    bus.Unsubscribe(incarnation1.get());
  }
  bus.Publish(GroupInval("ga", ++feed_ts));  // invalidates ka during the outage
  bus.Publish(GroupInval("other", ++feed_ts));

  FileSnapshotStore store2(dir.path());
  CacheServer incarnation2("n", &clock, options);
  incarnation2.set_snapshot_store(&store2);
  ASSERT_TRUE(incarnation2.Join(&bus).ok());
  EXPECT_TRUE(incarnation2.serving());
  EXPECT_EQ(incarnation2.stats().join_snapshot_restores, 1u);
  EXPECT_EQ(incarnation2.stats().join_flushes, 0u);

  LookupResponse warm = incarnation2.Lookup(Probe("kb", 1, kTimestampInfinity));
  ASSERT_TRUE(warm.hit);
  EXPECT_EQ(warm.value_ref(), "vb");
  EXPECT_FALSE(incarnation2.Lookup(Probe("ka", feed_ts, kTimestampInfinity)).hit);
}

TEST(FileSnapshot, DamagedFileDegradesTheRejoinToFlushNeverAnError) {
  ScratchDir dir;
  ManualClock clock;
  InvalidationBus bus(/*history_limit=*/4);
  FileSnapshotStore store(dir.path());
  CacheServer node("n", &clock);
  node.set_snapshot_store(&store);
  bus.Subscribe(&node);
  ASSERT_TRUE(node.Insert(StillValidEntry("ka", "va", "ga")).ok());
  node.PersistSnapshot();
  ASSERT_TRUE(store.LoadFreshest("n").has_value());

  // Torn write simulation: chop the tail off the on-disk file.
  {
    std::ifstream in(store.PathFor("n"), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    std::ofstream out(store.PathFor("n"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }

  node.Crash();
  for (Timestamp ts = 10; ts < 18; ++ts) {
    bus.Publish(GroupInval("ga", ts));
  }
  ASSERT_TRUE(node.Join(&bus).ok());
  EXPECT_TRUE(node.serving());
  EXPECT_EQ(node.stats().join_snapshot_restores, 0u);
  EXPECT_EQ(node.stats().join_flushes, 1u);
  EXPECT_GE(store.corrupt_rejects(), 1u);
}

}  // namespace
}  // namespace txcache
