// Automatic invalidation-tag derivation (src/sql/tag_deriver.h), proven equivalent to
// hand-written tags:
//   * for every planned access path, the derived tag set is a superset of the tags the
//     executor attaches at run time (byte-identical for IndexEq, table wildcard otherwise);
//   * every wiki and RUBiS cacheable call site runs in both tag modes on identically-seeded
//     stacks and the derived set covers the hand-written one, with over-broadening beyond
//     the table-level fallback reported as a failure;
//   * hostile SQL (NULL literals, contradictory/range-only/OR predicates, mixed-case text,
//     planner-rejected statements) never yields an under-scoped tag set — it fails closed to
//     table tags and is never cached;
//   * write statements derive tag sets that cover everything the commit publishes on the
//     invalidation stream;
//   * both applications run end-to-end on derived tags: caching still works (no re-queries on
//     a hit) and writes still invalidate (staleness-0 re-reads see fresh data).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/cacheable_function.h"
#include "src/rubis/app.h"
#include "src/rubis/data.h"
#include "src/rubis/schema.h"
#include "src/sql/session.h"
#include "src/sql/tag_deriver.h"
#include "src/wiki/wiki.h"
#include "tests/test_support.h"

namespace txcache::sql {
namespace {

using namespace txcache::testing;

using TagSet = std::set<InvalidationTag>;

TagSet ToSet(const std::vector<InvalidationTag>& tags) {
  return TagSet(tags.begin(), tags.end());
}

// The superset-safety relation: `derived` covers `tag` if it contains the tag itself or a
// wildcard on the tag's table (a table wildcard dominates every tag on that table).
bool Covers(const TagSet& derived, const InvalidationTag& tag) {
  return derived.count(tag) > 0 || derived.count(InvalidationTag::Wildcard(tag.table)) > 0;
}

std::string Dump(const TagSet& tags) {
  std::string out = "{";
  for (const InvalidationTag& tag : tags) {
    out += (out.size() > 1 ? ", " : "") + tag.ToString();
  }
  return out + "}";
}

// Derived ⊇ hand-written, and no broader than the hand-written path already went: a derived
// wildcard is legitimate only where the hand-written tags contain the same wildcard (i.e. the
// executor itself fell back to a table-level dependency).
void ExpectDerivedEquivalent(const std::string& site, const TagSet& handwritten,
                             const TagSet& derived) {
  for (const InvalidationTag& tag : handwritten) {
    EXPECT_TRUE(Covers(derived, tag))
        << site << ": derived set " << Dump(derived) << " misses hand-written tag "
        << tag.ToString();
  }
  for (const InvalidationTag& tag : derived) {
    if (tag.wildcard) {
      EXPECT_TRUE(handwritten.count(tag) > 0)
          << site << ": derivation over-broadened to " << tag.ToString()
          << " where the hand-written path used " << Dump(handwritten);
    }
  }
}

// --- accounts-table fixture: planner-level derivation, hostile SQL, write-side coverage ---

class TagDerivationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("node", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    CreateAccountsTable(db_.get());
    InsertAccount(db_.get(), 1, "alice", 10, 0);
    InsertAccount(db_.get(), 2, "bob", 20, 0);
    InsertAccount(db_.get(), 3, "alice", 30, 1);
    InsertAccount(db_.get(), 4, "carol", 40, 1);
    bus_->Subscribe(&sub_);  // record only the invalidations the test itself causes
    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_);
    session_ = std::make_unique<SqlSession>(client_.get(), db_.get());
    planner_ = std::make_unique<Planner>(db_.get());
    clock_.Advance(Seconds(1));
  }

  // Plans `text`, executes the plan, and asserts the derived tags cover every tag the
  // executor attached. Returns the derived set for further shape assertions.
  DerivedTags PlanAndCheck(const std::string& text) {
    auto parsed = Parse(text);
    EXPECT_TRUE(parsed.ok()) << text;
    if (!parsed.ok()) return {};
    const auto* select = std::get_if<SelectStmt>(&parsed.value());
    EXPECT_NE(select, nullptr) << text;
    if (select == nullptr) return {};
    auto plan = planner_->PlanSelect(*select);
    EXPECT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
    if (!plan.ok()) return {};
    EXPECT_TRUE(client_->BeginRO().ok());
    auto result = client_->ExecuteQuery(plan.value().query);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    EXPECT_TRUE(client_->Commit().ok());
    if (result.ok()) {
      TagSet derived = ToSet(plan.value().derived_tags.tags);
      for (const InvalidationTag& tag : result.value().tags) {
        EXPECT_TRUE(Covers(derived, tag))
            << text << ": executor tag " << tag.ToString() << " not covered by "
            << plan.value().derived_tags.ToString();
      }
    }
    return plan.value().derived_tags;
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  RecordingSubscriber sub_;
  std::unique_ptr<TxCacheClient> client_;
  std::unique_ptr<SqlSession> session_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(TagDerivationTest, DerivedTagsCoverExecutorTagsAcrossAccessPaths) {
  // IndexEq: byte-identical concrete tag, no wildcard anywhere.
  DerivedTags pk = PlanAndCheck("SELECT * FROM accounts WHERE id = 1");
  EXPECT_EQ(pk.derivation, TagDerivation::kIndexEq);
  EXPECT_FALSE(pk.conservative());
  ASSERT_EQ(pk.tags.size(), 1u);
  EXPECT_EQ(pk.tags[0],
            InvalidationTag::Concrete(kAccounts, kAccountsPk, EncodeRow(Row{Value(int64_t{1})})));

  DerivedTags owner = PlanAndCheck("SELECT id, balance FROM accounts WHERE owner = 'alice'");
  EXPECT_EQ(owner.derivation, TagDerivation::kIndexEq);
  ASSERT_EQ(owner.tags.size(), 1u);
  EXPECT_EQ(owner.tags[0].index, kAccountsByOwner);

  // IndexEq survives extra residual clauses, sorting and limits.
  DerivedTags mixed =
      PlanAndCheck("SELECT * FROM accounts WHERE owner = 'alice' AND balance > 15 "
                   "ORDER BY id DESC LIMIT 1");
  EXPECT_EQ(mixed.derivation, TagDerivation::kIndexEq);

  // Range and scan paths: conservative table wildcard, matching the executor.
  DerivedTags range = PlanAndCheck("SELECT id FROM accounts WHERE id > 2");
  EXPECT_EQ(range.derivation, TagDerivation::kIndexRange);
  EXPECT_TRUE(range.conservative());
  ASSERT_EQ(range.tags.size(), 1u);
  EXPECT_TRUE(range.tags[0].wildcard);

  DerivedTags scan = PlanAndCheck("SELECT id FROM accounts WHERE balance >= 20");
  EXPECT_EQ(scan.derivation, TagDerivation::kSeqScan);
  EXPECT_TRUE(scan.conservative());

  PlanAndCheck("SELECT COUNT(*) FROM accounts");
  PlanAndCheck("SELECT id FROM accounts ORDER BY balance DESC LIMIT 2 OFFSET 1");
}

TEST_F(TagDerivationTest, HostileStatementsNeverUnderScope) {
  // NULL equality: plans as an IndexEq over the (empty) null bucket — the derived concrete
  // tag equals the executor's, and no row can ever match, so concrete is still sound.
  DerivedTags null_eq = PlanAndCheck("SELECT * FROM accounts WHERE owner = NULL");
  EXPECT_EQ(null_eq.derivation, TagDerivation::kIndexEq);

  // IS NULL is not an equality: no index key to bind, falls to the scan wildcard.
  DerivedTags is_null = PlanAndCheck("SELECT * FROM accounts WHERE owner IS NULL");
  EXPECT_TRUE(is_null.conservative());

  // Contradictory equalities (the dialect's stand-in for an empty IN list): the planner keeps
  // the first binding and the full residual — the result is empty forever, and the concrete
  // tag on the bound bucket is still a superset of what the executor reads.
  DerivedTags contradiction = PlanAndCheck("SELECT * FROM accounts WHERE id = 1 AND id = 2");
  EXPECT_EQ(contradiction.derivation, TagDerivation::kIndexEq);

  // OR forces the scan path; so does a range-only predicate on an indexed column.
  DerivedTags disjunction =
      PlanAndCheck("SELECT id FROM accounts WHERE (owner = 'alice' OR owner = 'bob')");
  EXPECT_TRUE(disjunction.conservative());
  DerivedTags range_only = PlanAndCheck("SELECT * FROM accounts WHERE id >= 1 AND id <= 3");
  EXPECT_TRUE(range_only.conservative());

  // Mixed-case text derives the same tags as the canonical spelling.
  DerivedTags canonical = PlanAndCheck("SELECT id FROM accounts WHERE owner = 'alice'");
  DerivedTags shouty = PlanAndCheck("select ID from ACCOUNTS where OWNER = 'alice'");
  EXPECT_EQ(ToSet(canonical.tags), ToSet(shouty.tags));
}

TEST_F(TagDerivationTest, RejectedStatementsFailClosedAndAreNeverCached) {
  session_->set_tag_mode(SqlSession::TagMode::kDerived);
  session_->set_cache_selects(true);
  const uint64_t inserts_before = client_->stats().cache_inserts;

  ASSERT_TRUE(client_->BeginRO().ok());
  // Planner-rejected (unknown table): error out, report the table wildcard, cache nothing.
  auto missing = session_->Execute("SELECT * FROM missing_table");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(session_->last_derived_tags().derivation, TagDerivation::kTableFallback);
  ASSERT_EQ(session_->last_derived_tags().tags.size(), 1u);
  EXPECT_EQ(session_->last_derived_tags().tags[0], InvalidationTag::Wildcard("missing_table"));

  // Unparseable: error out with the empty bottom rung (no table to even name).
  auto garbled = session_->Execute("SELECT FROM accounts");
  EXPECT_FALSE(garbled.ok());
  EXPECT_EQ(session_->last_derived_tags().derivation, TagDerivation::kTableFallback);
  EXPECT_TRUE(session_->last_derived_tags().tags.empty());
  ASSERT_TRUE(client_->Commit().ok());

  EXPECT_EQ(client_->stats().cache_inserts, inserts_before)
      << "a rejected statement must never reach the cache";
}

TEST_F(TagDerivationTest, StatementCacheKeyCanonicalizes) {
  // Whitespace and identifier case collapse to one key; string literals stay case-sensitive
  // and distinguishable from identifiers.
  const std::string canonical =
      SqlSession::StatementCacheKey("SELECT id FROM accounts WHERE owner = 'alice'");
  EXPECT_EQ(SqlSession::StatementCacheKey("select   id\nfrom ACCOUNTS where OWNER='alice'"),
            canonical);
  EXPECT_NE(SqlSession::StatementCacheKey("SELECT id FROM accounts WHERE owner = 'ALICE'"),
            canonical);
  EXPECT_NE(SqlSession::StatementCacheKey("SELECT id FROM accounts WHERE owner = 'bob'"),
            canonical);
  // 'ID' the string vs ID the identifier must not collide.
  EXPECT_NE(SqlSession::StatementCacheKey("SELECT id FROM accounts WHERE owner = 'id'"),
            SqlSession::StatementCacheKey("SELECT id FROM accounts WHERE owner = id"));
}

TEST_F(TagDerivationTest, AdHocSelectCachingHitsAndStaysFresh) {
  session_->set_tag_mode(SqlSession::TagMode::kDerived);
  session_->set_cache_selects(true);
  const std::string text = "SELECT id, balance FROM accounts WHERE owner = 'alice' ORDER BY id";

  ASSERT_TRUE(client_->BeginRO().ok());
  auto first = session_->Execute(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().from_cache);
  ASSERT_EQ(first.value().rows.size(), 2u);
  ASSERT_TRUE(client_->Commit().ok());

  clock_.Advance(Seconds(1));
  const uint64_t hits_before = client_->stats().cache_hits;
  ASSERT_TRUE(client_->BeginRO().ok());
  auto second = session_->Execute(text);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache) << "same canonical statement must hit";
  EXPECT_EQ(second.value().rows, first.value().rows);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_GT(client_->stats().cache_hits, hits_before);

  // A write through the same session invalidates the cached statement: a staleness-0 reread
  // recomputes and sees the new balance (the no-stale-read guarantee on derived tags).
  ASSERT_TRUE(client_->BeginRW().ok());
  auto update = session_->Execute("UPDATE accounts SET balance = 99 WHERE id = 1");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update.value().affected, 1);
  ASSERT_TRUE(client_->Commit().ok());
  clock_.Advance(Seconds(1));

  ASSERT_TRUE(client_->BeginRO(/*staleness=*/0).ok());
  auto third = session_->Execute(text);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(third.value().rows.size(), 2u);
  EXPECT_EQ(third.value().rows[0][1].AsInt(), 99) << "stale read through a derived-tag entry";
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(TagDerivationTest, InsertDerivationMatchesPublishedInvalidations) {
  ASSERT_TRUE(client_->BeginRW().ok());
  auto r = session_->Execute("INSERT INTO accounts VALUES (7, 'gina', 55, 2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(client_->Commit().ok());

  DerivedTags derived = session_->last_derived_tags();
  EXPECT_EQ(derived.derivation, TagDerivation::kWriteRow);
  EXPECT_FALSE(derived.conservative());
  // The full row is known, so derivation reproduces the engine's per-index tag set exactly.
  TagSet expected = {
      InvalidationTag::Concrete(kAccounts, kAccountsPk, EncodeRow(Row{Value(int64_t{7})})),
      InvalidationTag::Concrete(kAccounts, kAccountsByOwner,
                                EncodeRow(Row{Value(std::string("gina"))})),
      InvalidationTag::Concrete(kAccounts, kAccountsByBranch, EncodeRow(Row{Value(int64_t{2})})),
  };
  EXPECT_EQ(ToSet(derived.tags), expected);

  ASSERT_FALSE(sub_.messages.empty());
  TagSet derived_set = ToSet(derived.tags);
  for (const InvalidationTag& published : sub_.messages.back().tags) {
    EXPECT_TRUE(Covers(derived_set, published))
        << "commit published " << published.ToString() << " outside " << Dump(derived_set);
  }
}

TEST_F(TagDerivationTest, UpdateAndDeleteDerivationCoversPublishedInvalidations) {
  for (const char* text : {"UPDATE accounts SET balance = 0 WHERE owner = 'alice'",
                           "DELETE FROM accounts WHERE id = 2"}) {
    const size_t messages_before = sub_.messages.size();
    ASSERT_TRUE(client_->BeginRW().ok());
    auto r = session_->Execute(text);
    ASSERT_TRUE(r.ok()) << text << ": " << r.status().ToString();
    EXPECT_GT(r.value().affected, 0) << text;
    ASSERT_TRUE(client_->Commit().ok());

    DerivedTags derived = session_->last_derived_tags();
    EXPECT_EQ(derived.derivation, TagDerivation::kWriteTarget) << text;
    EXPECT_TRUE(derived.conservative()) << text << ": write targets go table-wide";
    TagSet derived_set = ToSet(derived.tags);
    ASSERT_GT(sub_.messages.size(), messages_before) << text;
    for (const InvalidationTag& published : sub_.messages.back().tags) {
      EXPECT_TRUE(Covers(derived_set, published))
          << text << ": commit published " << published.ToString() << " outside "
          << Dump(derived_set);
    }
  }
}

// --- full application stacks, one per tag mode, identically seeded ---

// Captures the complete tag footprint of one call site: an explicit outer frame collects
// every tag any nested query, cache fill or cache hit propagates (§6.3 — PropagateToFrames
// feeds all frames on the stack), so the set is mode-comparable even across nesting.
template <typename App>
TagSet CallSiteTags(TxCacheClient* client, App* app,
                    const std::function<void(App&)>& call) {
  EXPECT_TRUE(client->BeginRO().ok());
  client->FrameBegin();
  call(*app);
  FrameOutcome outcome = client->FrameEnd();
  EXPECT_TRUE(client->Commit().ok());
  return ToSet(outcome.tags);
}

struct WikiStack {
  ManualClock clock;
  std::unique_ptr<Database> db;
  std::unique_ptr<InvalidationBus> bus;
  std::unique_ptr<CacheServer> cache;
  std::unique_ptr<CacheCluster> cluster;
  std::unique_ptr<Pincushion> pincushion;
  std::unique_ptr<TxCacheClient> client;
  std::unique_ptr<wiki::WikiApp> app;

  void Build(bool derived) {
    db = std::make_unique<Database>(&clock);
    bus = std::make_unique<InvalidationBus>();
    db->set_invalidation_bus(bus.get());
    cache = std::make_unique<CacheServer>("node", &clock);
    bus->Subscribe(cache.get());
    cluster = std::make_unique<CacheCluster>();
    cluster->AddNode(cache.get());
    pincushion = std::make_unique<Pincushion>(db.get(), &clock);
    ASSERT_TRUE(wiki::CreateWikiSchema(db.get()).ok());
    client = std::make_unique<TxCacheClient>(db.get(), pincushion.get(), cluster.get(), &clock);
    app = std::make_unique<wiki::WikiApp>(client.get(), &clock);
    if (derived) {
      ASSERT_TRUE(app->EnableDerivedTags(db.get()).ok());
      ASSERT_TRUE(app->derived_tags());
    }
    ASSERT_TRUE(client->BeginRW().ok());
    ASSERT_TRUE(app->RegisterUser(1, "Alice").ok());
    ASSERT_TRUE(app->RegisterUser(2, "Bob").ok());
    ASSERT_TRUE(app->SetMessage("sidebar.main", "Main page").ok());
    ASSERT_TRUE(app->SetMessage("footer.license", "CC BY-SA").ok());
    ASSERT_TRUE(app->EditArticle(1, "TxCache", "A transactional cache.", "created").ok());
    ASSERT_TRUE(app->EditArticle(2, "TxCache", "Expanded.", "edited").ok());
    ASSERT_TRUE(app->Watch(1, /*article_id=*/1).ok());
    ASSERT_TRUE(client->Commit().ok());
    clock.Advance(Seconds(1));
  }

  TagSet Tags(const std::function<void(wiki::WikiApp&)>& call) {
    return CallSiteTags<wiki::WikiApp>(client.get(), app.get(), call);
  }
};

TEST(SqlTagEquivalence, WikiDerivedTagsCoverHandwrittenTags) {
  WikiStack handwritten, derived;
  handwritten.Build(false);
  derived.Build(true);

  const std::vector<std::pair<const char*, std::function<void(wiki::WikiApp&)>>> sites = {
      {"render_article", [](wiki::WikiApp& a) { a.render_article("TxCache"); }},
      {"render_article(missing)", [](wiki::WikiApp& a) { a.render_article("Ghost"); }},
      {"user_card", [](wiki::WikiApp& a) { a.user_card(1); }},
      {"article_history", [](wiki::WikiApp& a) { a.article_history("TxCache", 10); }},
      {"watchlist", [](wiki::WikiApp& a) { a.watchlist(1, 7); }},
      {"localization", [](wiki::WikiApp& a) { a.localization("sidebar."); }},
  };
  for (const auto& [name, call] : sites) {
    ExpectDerivedEquivalent(name, handwritten.Tags(call), derived.Tags(call));
  }

  // Same data in, same pages out: tag mode must not change results.
  auto render = [](WikiStack& s) {
    EXPECT_TRUE(s.client->BeginRO().ok());
    wiki::RenderedArticle page = s.app->render_article("TxCache");
    EXPECT_TRUE(s.client->Commit().ok());
    return page;
  };
  wiki::RenderedArticle a = render(handwritten), b = render(derived);
  EXPECT_EQ(a.html, b.html);
  EXPECT_EQ(a.revision, b.revision);
}

TEST(SqlTagEquivalence, WikiRunsEndToEndOnDerivedTags) {
  WikiStack w;
  w.Build(true);

  ASSERT_TRUE(w.client->BeginRO().ok());
  wiki::RenderedArticle first = w.app->render_article("TxCache");
  ASSERT_TRUE(w.client->Commit().ok());
  EXPECT_TRUE(first.found);
  EXPECT_NE(first.html.find("Expanded."), std::string::npos);

  // Fully cached on the second read: the derived-tag path still stores and hits.
  const uint64_t queries = w.client->stats().db_queries;
  ASSERT_TRUE(w.client->BeginRO().ok());
  EXPECT_EQ(w.app->render_article("TxCache").html, first.html);
  ASSERT_TRUE(w.client->Commit().ok());
  EXPECT_EQ(w.client->stats().db_queries, queries) << "second render must be fully cached";

  // And writes still invalidate: derived tags carry the dependency to the cache.
  ASSERT_TRUE(w.client->BeginRW().ok());
  ASSERT_TRUE(w.app->EditArticle(2, "TxCache", "Rewritten body.", "rewrite").ok());
  ASSERT_TRUE(w.client->Commit().ok());
  w.clock.Advance(Seconds(1));

  ASSERT_TRUE(w.client->BeginRO(/*staleness=*/0).ok());
  EXPECT_NE(w.app->render_article("TxCache").html.find("Rewritten body."), std::string::npos)
      << "stale render after an edit — derived tags failed to invalidate";
  EXPECT_EQ(w.app->user_card(2).edit_count, 2) << "Bob's second edit must be visible";
  std::vector<std::string> watched = w.app->watchlist(1, 7);
  EXPECT_NE(std::count(watched.begin(), watched.end(), "TxCache"), 0);
  EXPECT_EQ(w.app->localization("sidebar.").size(), 1u);
  ASSERT_TRUE(w.client->Commit().ok());
}

struct RubisStack {
  ManualClock clock;
  std::unique_ptr<Database> db;
  std::unique_ptr<InvalidationBus> bus;
  std::unique_ptr<CacheServer> cache;
  std::unique_ptr<CacheCluster> cluster;
  std::unique_ptr<Pincushion> pincushion;
  std::unique_ptr<rubis::RubisDataset> dataset;
  std::unique_ptr<TxCacheClient> client;
  std::unique_ptr<rubis::RubisApp> app;

  void Build(bool derived) {
    db = std::make_unique<Database>(&clock);
    bus = std::make_unique<InvalidationBus>();
    db->set_invalidation_bus(bus.get());
    cache = std::make_unique<CacheServer>("node", &clock);
    bus->Subscribe(cache.get());
    cluster = std::make_unique<CacheCluster>();
    cluster->AddNode(cache.get());
    pincushion = std::make_unique<Pincushion>(db.get(), &clock);
    // Small deterministic dataset: per-user/per-item row counts stay under every page limit,
    // so the hand-written join executor probes exactly the rows the decomposed derived-mode
    // SELECTs probe and the two tag footprints are directly comparable.
    rubis::RubisScale scale;
    scale.users = 30;
    scale.active_items = 40;
    scale.old_items = 10;
    scale.max_bids_per_item = 3;
    scale.description_bytes = 32;
    auto ds = rubis::LoadRubis(db.get(), scale, &clock, /*seed=*/42);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset = std::move(ds.value());
    client = std::make_unique<TxCacheClient>(db.get(), pincushion.get(), cluster.get(), &clock);
    app = std::make_unique<rubis::RubisApp>(client.get(), dataset.get(), &clock);
    if (derived) {
      ASSERT_TRUE(app->EnableDerivedTags(db.get()).ok());
      ASSERT_TRUE(app->derived_tags());
    }
    clock.Advance(Seconds(1));
  }

  TagSet Tags(const std::function<void(rubis::RubisApp&)>& call) {
    return CallSiteTags<rubis::RubisApp>(client.get(), app.get(), call);
  }
};

TEST(SqlTagEquivalence, RubisDerivedTagsCoverHandwrittenTags) {
  RubisStack handwritten, derived;
  handwritten.Build(false);
  derived.Build(true);

  const std::vector<std::pair<const char*, std::function<void(rubis::RubisApp&)>>> sites = {
      {"get_item(active)", [](rubis::RubisApp& a) { a.get_item(0); }},
      {"get_item(old)", [](rubis::RubisApp& a) { a.get_item(40); }},
      {"get_item(missing)", [](rubis::RubisApp& a) { a.get_item(999'999); }},
      {"get_user", [](rubis::RubisApp& a) { a.get_user(3); }},
      {"auth_user", [](rubis::RubisApp& a) { a.auth_user("user_7"); }},
      {"auth_user(missing)", [](rubis::RubisApp& a) { a.auth_user("nobody"); }},
      {"category_items", [](rubis::RubisApp& a) { a.category_items(2, 0); }},
      {"region_category_items", [](rubis::RubisApp& a) { a.region_category_items(3, 2, 0); }},
      {"item_bids", [](rubis::RubisApp& a) { a.item_bids(1); }},
      {"view_item_page", [](rubis::RubisApp& a) { a.view_item_page(1); }},
      {"view_user_page", [](rubis::RubisApp& a) { a.view_user_page(3); }},
      {"bid_history_page", [](rubis::RubisApp& a) { a.bid_history_page(1); }},
      {"browse_categories_page", [](rubis::RubisApp& a) { a.browse_categories_page(); }},
      {"browse_regions_page", [](rubis::RubisApp& a) { a.browse_regions_page(); }},
      {"about_me_page", [](rubis::RubisApp& a) { a.about_me_page(5); }},
  };
  for (const auto& [name, call] : sites) {
    ExpectDerivedEquivalent(name, handwritten.Tags(call), derived.Tags(call));
  }

  // Tag mode must not change what the pages say.
  auto page = [](RubisStack& s, int64_t user) {
    EXPECT_TRUE(s.client->BeginRO().ok());
    rubis::Page p = s.app->view_user_page(user);
    EXPECT_TRUE(s.client->Commit().ok());
    return p.html;
  };
  EXPECT_EQ(page(handwritten, 3), page(derived, 3));
}

TEST(SqlTagEquivalence, RubisRunsEndToEndOnDerivedTags) {
  RubisStack r;
  r.Build(true);

  ASSERT_TRUE(r.client->BeginRO().ok());
  EXPECT_NE(r.app->view_item_page(1).html.find("item-1"), std::string::npos);
  EXPECT_FALSE(r.app->about_me_page(5).html.empty());
  EXPECT_EQ(r.app->auth_user("user_7"), 7);
  ASSERT_TRUE(r.client->Commit().ok());

  const uint64_t queries = r.client->stats().db_queries;
  ASSERT_TRUE(r.client->BeginRO().ok());
  r.app->view_item_page(1);
  r.app->about_me_page(5);
  ASSERT_TRUE(r.client->Commit().ok());
  EXPECT_EQ(r.client->stats().db_queries, queries) << "repeat pages must be fully cached";

  // A new bid invalidates through derived tags: the staleness-0 reread sees it first.
  r.clock.Advance(Seconds(1));
  ASSERT_TRUE(r.client->BeginRW().ok());
  ASSERT_TRUE(r.app->StoreBid(/*user=*/2, /*item=*/1, /*amount=*/10'000.0).ok());
  ASSERT_TRUE(r.client->Commit().ok());
  r.clock.Advance(Seconds(1));

  ASSERT_TRUE(r.client->BeginRO(/*staleness=*/0).ok());
  std::vector<rubis::BidInfo> bids = r.app->item_bids(1);
  ASSERT_FALSE(bids.empty());
  EXPECT_EQ(bids.front().amount, 10'000.0) << "newest bid missing: stale derived-tag entry";
  EXPECT_EQ(bids.front().bidder_nickname, "user_2");
  ASSERT_TRUE(r.client->Commit().ok());
}

}  // namespace
}  // namespace txcache::sql
