// Socket-transport integration tests: real RPCs over real TCP (NetClient → epoll
// NetServer), the parity contract with the loopback transport, pipelining, keep-alive, and
// — most importantly — the failure contract: connect refused, request timeout and
// mid-request disconnect each degrade to kNodeUnavailable / kUnavailable, never an error
// and never a stale read. Labeled into the TSan set by scripts/check.sh.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/bus/bus.h"
#include "src/cache/cache_cluster.h"
#include "src/cache/cache_server.h"
#include "src/net/net_client.h"
#include "src/net/net_server.h"
#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/util/clock.h"
#include "src/util/hash.h"

namespace txcache {
namespace {

InsertRequest StillValidEntry(const std::string& key, const std::string& value,
                              const std::string& group, Timestamp computed_at = 1) {
  InsertRequest req;
  req.key = key;
  req.value = value;
  req.interval = {computed_at, kTimestampInfinity};
  req.computed_at = computed_at;
  req.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return req;
}

LookupRequest Probe(const std::string& key, Timestamp lo, Timestamp hi) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = lo;
  req.bounds_hi = hi;
  req.fresh_lo = lo;
  return req;
}

InvalidationMessage GroupInval(const std::string& group, Timestamp ts) {
  InvalidationMessage msg;
  msg.ts = ts;
  msg.tags = {InvalidationTag::Concrete("t", "idx", group)};
  return msg;
}

// A listener that accepts connections and then does exactly nothing with them (black hole:
// requests sit unanswered until the client's deadline) — or closes them immediately.
class MisbehavingListener {
 public:
  enum class Mode { kBlackHole, kCloseOnAccept };

  explicit MisbehavingListener(Mode mode) : mode_(mode) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd_, 0);
    int on = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(listen(fd_, 16), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~MisbehavingListener() {
    stop_.store(true);
    shutdown(fd_, SHUT_RDWR);
    close(fd_);
    thread_.join();
    for (int fd : held_) {
      close(fd);
    }
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      int conn = accept(fd_, nullptr, nullptr);
      if (conn < 0) {
        return;  // listener closed
      }
      if (mode_ == Mode::kCloseOnAccept) {
        // Let the client finish its write, then slam the connection shut mid-request.
        char buf[4096];
        (void)recv(conn, buf, sizeof(buf), 0);
        close(conn);
      } else {
        held_.push_back(conn);  // never read, never write
      }
    }
  }

  const Mode mode_;
  int fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::vector<int> held_;
  std::thread thread_;
};

// Binds and immediately closes a listener to find a port with (very probably) nobody on it.
uint16_t UnusedPort() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  close(fd);
  return ntohs(addr.sin_port);
}

// --- basic RPC parity ---------------------------------------------------------

TEST(SocketTransport, InsertLookupRoundTripOverRealSockets) {
  ManualClock clock;
  CacheServer server("n0", &clock);
  auto transport = MakeSelfHostedSocketTransport(&server);
  ASSERT_NE(transport, nullptr);

  ASSERT_TRUE(transport->Insert(StillValidEntry("k1", "v1", "g"), nullptr).ok());
  LookupResponse resp = transport->Lookup(Probe("k1", 1, kTimestampInfinity));
  ASSERT_TRUE(resp.hit);
  EXPECT_EQ(resp.value_ref(), "v1");
  EXPECT_TRUE(resp.still_valid);
  ASSERT_NE(resp.tags, nullptr);
  ASSERT_EQ(resp.tags->size(), 1u);
  EXPECT_EQ((*resp.tags)[0], InvalidationTag::Concrete("t", "idx", "g"));

  // Miss classification survives the wire.
  LookupResponse miss = transport->Lookup(Probe("nope", 1, kTimestampInfinity));
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.miss, MissKind::kCompulsory);
  EXPECT_EQ(transport->transport_failures(), 0u);
}

TEST(SocketTransport, LoopbackParityOnIdenticalWorkload) {
  // The same operation sequence against the same server must answer identically over both
  // transports (values, miss kinds, validity intervals, intent outcomes).
  ManualClock clock;
  CacheServer server("n0", &clock);
  auto loop = MakeLoopbackTransport(&server);
  auto sock = MakeSelfHostedSocketTransport(&server);
  ASSERT_NE(sock, nullptr);

  ASSERT_TRUE(loop->Insert(StillValidEntry("a", "va", "g1", 2), nullptr).ok());
  ASSERT_TRUE(sock->Insert(StillValidEntry("b", "vb", "g2", 3), nullptr).ok());
  InvalidationMessage inval = GroupInval("g1", 10);
  inval.seqno = 1;  // direct Deliver bypasses the bus; the sequencer expects seqno 1 first
  server.Deliver(inval);

  for (const auto& t : {loop, sock}) {
    LookupResponse a = t->Lookup(Probe("a", 2, 5));
    ASSERT_TRUE(a.hit) << t->name();
    EXPECT_EQ(a.value_ref(), "va");
    EXPECT_FALSE(a.still_valid) << "g1 was invalidated at ts 10";
    EXPECT_EQ(a.interval.upper, 10u) << "truncated upper must survive the wire";

    LookupResponse b = t->Lookup(Probe("b", 3, kTimestampInfinity));
    ASSERT_TRUE(b.hit);
    EXPECT_EQ(b.value_ref(), "vb");
    EXPECT_TRUE(b.still_valid);
  }

  // Intent acquire/release parity, including the conflict answer.
  IntentRequest intent;
  intent.key = "a";
  intent.txn_id = 42;
  EXPECT_TRUE(sock->AcquireIntent(intent).status.ok());
  IntentRequest other = intent;
  other.txn_id = 43;
  IntentResponse conflict = sock->AcquireIntent(other);
  EXPECT_EQ(conflict.status.code(), StatusCode::kConflict);
  EXPECT_EQ(conflict.holder, 42u);
  EXPECT_TRUE(sock->ReleaseIntent(intent).status.ok());
  EXPECT_TRUE(loop->AcquireIntent(other).status.ok());
  EXPECT_TRUE(loop->ReleaseIntent(other).status.ok());
}

TEST(SocketTransport, MultiLookupScatterAnswersOnlyItsIndices) {
  ManualClock clock;
  CacheServer server("n0", &clock);
  auto sock = MakeSelfHostedSocketTransport(&server);
  ASSERT_NE(sock, nullptr);
  ASSERT_TRUE(sock->Insert(StillValidEntry("k0", "v0", "g"), nullptr).ok());
  ASSERT_TRUE(sock->Insert(StillValidEntry("k2", "v2", "g"), nullptr).ok());

  MultiLookupRequest batch;
  batch.lookups.push_back(Probe("k0", 1, kTimestampInfinity));
  batch.lookups.push_back(Probe("k1", 1, kTimestampInfinity));
  batch.lookups.push_back(Probe("k2", 1, kTimestampInfinity));
  MultiLookupResponse out;
  out.responses.resize(batch.lookups.size());
  sock->MultiLookup(batch, {0, 2}, &out);
  EXPECT_TRUE(out.responses[0].hit);
  EXPECT_EQ(out.responses[0].value_ref(), "v0");
  EXPECT_FALSE(out.responses[1].hit) << "index 1 was not asked for";
  EXPECT_EQ(out.responses[1].miss, MissKind::kNone) << "untouched slot stays default";
  EXPECT_TRUE(out.responses[2].hit);
  EXPECT_EQ(out.responses[2].value_ref(), "v2");
}

// --- pipelining ---------------------------------------------------------------

TEST(SocketTransport, PipelinedCallsAnswerInOrderOnOneConnection) {
  ManualClock clock;
  CacheServer server("n0", &clock);
  net::NetServer net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());
  net::NetClientOptions opts;
  opts.port = net_server.port();
  net::NetClient client(opts);

  for (int i = 0; i < 8; ++i) {
    InsertRequest ins = StillValidEntry("k" + std::to_string(i), "v" + std::to_string(i), "g");
    net::FrameType type;
    std::string payload;
    ASSERT_TRUE(client.Call(net::FrameType::kInsertReq, net::EncodeInsertRequest(ins), &type,
                            &payload));
    ASSERT_EQ(type, net::FrameType::kInsertResp);
  }

  // 16 back-to-back lookups in ONE exchange; responses must come back in request order.
  std::vector<std::pair<net::FrameType, std::string>> requests;
  for (int i = 0; i < 16; ++i) {
    requests.emplace_back(
        net::FrameType::kLookupReq,
        net::EncodeLookupRequest(Probe("k" + std::to_string(i % 8), 1, kTimestampInfinity)));
  }
  std::vector<net::FrameType> types;
  std::vector<std::string> payloads;
  ASSERT_TRUE(client.CallPipelined(requests, &types, &payloads));
  ASSERT_EQ(types.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(types[i], net::FrameType::kLookupResp);
    LookupResponse resp;
    ASSERT_TRUE(net::DecodeLookupResponse(payloads[i], &resp));
    ASSERT_TRUE(resp.hit) << "lookup " << i;
    EXPECT_EQ(resp.value_ref(), "v" + std::to_string(i % 8));
  }
  // The whole burst plus the inserts rode a single kept-alive connection.
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(client.failures(), 0u);
  net_server.Stop();
}

TEST(SocketTransport, WellFramedGarbageGetsErrorFrameAndConnectionSurvives) {
  ManualClock clock;
  CacheServer server("n0", &clock);
  net::NetServer net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());
  net::NetClientOptions opts;
  opts.port = net_server.port();
  net::NetClient client(opts);

  // A correctly framed request whose payload does not decode: the server answers kError and
  // keeps serving on the same connection (the stream itself was never corrupted).
  net::FrameType type;
  std::string payload;
  ASSERT_TRUE(client.Call(net::FrameType::kLookupReq, "not a lookup", &type, &payload));
  EXPECT_EQ(type, net::FrameType::kError);
  Status err;
  ASSERT_TRUE(net::DecodeStatus(payload, &err));
  EXPECT_FALSE(err.ok());

  ASSERT_TRUE(client.Call(net::FrameType::kPing, "", &type, &payload));
  EXPECT_EQ(type, net::FrameType::kPong);
  EXPECT_EQ(client.connects(), 1u) << "the error frame must not cost the connection";
  EXPECT_GE(net_server.protocol_errors(), 1u);
  net_server.Stop();
}

// --- the failure contract -----------------------------------------------------

TEST(SocketTransportFailure, ConnectRefusedDegradesToNodeUnavailable) {
  auto transport = MakeSocketTransport("dead", nullptr, "127.0.0.1", UnusedPort(),
                                       /*connect_timeout_ms=*/200, /*request_timeout_ms=*/200);
  LookupResponse resp = transport->Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kNodeUnavailable);

  MultiLookupRequest batch;
  batch.lookups.push_back(Probe("a", 1, kTimestampInfinity));
  batch.lookups.push_back(Probe("b", 1, kTimestampInfinity));
  MultiLookupResponse multi = transport->MultiLookup(batch);
  ASSERT_EQ(multi.responses.size(), 2u) << "degraded batch still answers every position";
  for (const LookupResponse& r : multi.responses) {
    EXPECT_EQ(r.miss, MissKind::kNodeUnavailable);
  }

  Status ins = transport->Insert(StillValidEntry("k", "v", "g"), nullptr);
  EXPECT_EQ(ins.code(), StatusCode::kUnavailable);

  IntentRequest intent;
  intent.key = "k";
  intent.txn_id = 7;
  EXPECT_EQ(transport->AcquireIntent(intent).status.code(), StatusCode::kUnavailable);
  EXPECT_GE(transport->transport_failures(), 4u);
}

TEST(SocketTransportFailure, RequestTimeoutDegradesToNodeUnavailable) {
  MisbehavingListener blackhole(MisbehavingListener::Mode::kBlackHole);
  auto transport = MakeSocketTransport("tarpit", nullptr, "127.0.0.1", blackhole.port(),
                                       /*connect_timeout_ms=*/500, /*request_timeout_ms=*/150);
  LookupResponse resp = transport->Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kNodeUnavailable);
  Status ins = transport->Insert(StillValidEntry("k", "v", "g"), nullptr);
  EXPECT_EQ(ins.code(), StatusCode::kUnavailable);
  EXPECT_GE(transport->transport_failures(), 2u);
}

TEST(SocketTransportFailure, MidRequestDisconnectDegradesToNodeUnavailable) {
  MisbehavingListener slammer(MisbehavingListener::Mode::kCloseOnAccept);
  auto transport = MakeSocketTransport("flaky", nullptr, "127.0.0.1", slammer.port(),
                                       /*connect_timeout_ms=*/500, /*request_timeout_ms=*/500);
  LookupResponse resp = transport->Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kNodeUnavailable);
  EXPECT_GE(transport->transport_failures(), 1u);
}

TEST(SocketTransportFailure, ServerStopMakesNodeUnavailableNotAnError) {
  // A node that was healthy and then vanished: in-flight pool connections die, later calls
  // hit connect-refused — every path lands on kNodeUnavailable.
  ManualClock clock;
  auto server = std::make_unique<CacheServer>("n0", &clock);
  auto net_server = std::make_unique<net::NetServer>(server.get());
  ASSERT_TRUE(net_server->Start().ok());
  auto transport =
      MakeSocketTransport("n0", server.get(), "127.0.0.1", net_server->port(), 200, 200);

  ASSERT_TRUE(transport->Insert(StillValidEntry("k", "v", "g"), nullptr).ok());
  ASSERT_TRUE(transport->Lookup(Probe("k", 1, kTimestampInfinity)).hit);

  net_server->Stop();
  net_server.reset();

  LookupResponse resp = transport->Lookup(Probe("k", 1, kTimestampInfinity));
  EXPECT_FALSE(resp.hit);
  EXPECT_EQ(resp.miss, MissKind::kNodeUnavailable);
}

// --- cluster over sockets -----------------------------------------------------

TEST(SocketCluster, RoutedLookupsInsertsAndInvalidationsBehaveAcrossNodes) {
  ManualClock clock;
  CacheServer a("node-a", &clock);
  CacheServer b("node-b", &clock);
  InvalidationBus bus;
  bus.Subscribe(&a);
  bus.Subscribe(&b);

  CacheCluster cluster;
  auto ta = MakeSelfHostedSocketTransport(&a);
  auto tb = MakeSelfHostedSocketTransport(&b);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  ASSERT_TRUE(cluster.AddNode(ta));
  ASSERT_TRUE(cluster.AddNode(tb));

  // Spread entries over both nodes; every routed answer must carry the true origin.
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    InsertRequest req = StillValidEntry(key, "val-" + std::to_string(i),
                                        i % 2 == 0 ? "even" : "odd");
    req.key_hash = Fnv1a(req.key);
    InsertResponse ins = cluster.Insert(req);
    ASSERT_TRUE(ins.status.ok()) << key << ": " << ins.status.ToString();
    ASSERT_FALSE(ins.served_by.empty());
  }
  EXPECT_GT(a.stats().inserts, 0u) << "ring should route some keys to node-a";
  EXPECT_GT(b.stats().inserts, 0u) << "ring should route some keys to node-b";

  for (int i = 0; i < kKeys; ++i) {
    LookupRequest probe = Probe("key-" + std::to_string(i), 1, kTimestampInfinity);
    probe.key_hash = Fnv1a(probe.key);
    LookupResponse resp = cluster.Lookup(probe);
    ASSERT_TRUE(resp.hit) << i;
    EXPECT_EQ(resp.value_ref(), "val-" + std::to_string(i));
    EXPECT_FALSE(resp.served_by.empty());
  }

  // Invalidate the even group; still_valid flips over the wire, odd group untouched.
  bus.Publish(GroupInval("even", 50));
  for (int i = 0; i < kKeys; ++i) {
    LookupRequest probe = Probe("key-" + std::to_string(i), 1, kTimestampInfinity);
    probe.key_hash = Fnv1a(probe.key);
    LookupResponse resp = cluster.Lookup(probe);
    if (i % 2 == 0) {
      if (resp.hit) {
        EXPECT_FALSE(resp.still_valid);
        EXPECT_LE(resp.interval.upper, 50u);
      }
    } else {
      ASSERT_TRUE(resp.hit) << i;
      EXPECT_TRUE(resp.still_valid);
    }
  }

  // Batch path: one MultiLookup spanning both nodes (scatter + single frame per node).
  MultiLookupRequest batch;
  for (int i = 1; i < kKeys; i += 2) {
    LookupRequest probe = Probe("key-" + std::to_string(i), 1, kTimestampInfinity);
    probe.key_hash = Fnv1a(probe.key);
    batch.lookups.push_back(probe);
  }
  auto multi = cluster.MultiLookup(batch);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi.value().responses.size(), batch.lookups.size());
  for (size_t i = 0; i < multi.value().responses.size(); ++i) {
    ASSERT_TRUE(multi.value().responses[i].hit) << i;
    EXPECT_TRUE(multi.value().responses[i].still_valid);
  }
  EXPECT_EQ(ta->transport_failures() + tb->transport_failures(), 0u);
}

// No-stale-read property over sockets: concurrent inserts, lookups and invalidations; no
// lookup may ever answer a still-valid hit whose group was already invalidated at a
// timestamp <= the probe's lower bound (that would be a stale read presented as fresh).
TEST(SocketCluster, NoStaleReadsUnderConcurrentInvalidationOverSockets) {
  ManualClock clock;
  CacheServer a("node-a", &clock);
  CacheServer b("node-b", &clock);
  InvalidationBus bus;
  bus.Subscribe(&a);
  bus.Subscribe(&b);

  CacheCluster cluster;
  auto ta = MakeSelfHostedSocketTransport(&a);
  auto tb = MakeSelfHostedSocketTransport(&b);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  ASSERT_TRUE(cluster.AddNode(ta));
  ASSERT_TRUE(cluster.AddNode(tb));

  constexpr int kKeys = 16;
  // invalidated_at[g] is the highest timestamp the invalidator has PUBLISHED for group g
  // (monotone; published strictly before the atomic store, so any lookup observing the
  // store's value can rely on delivery having begun).
  std::array<std::atomic<uint64_t>, kKeys> invalidated_at{};
  std::atomic<uint64_t> now{100};
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const int g = static_cast<int>(now.load(std::memory_order_relaxed)) % kKeys;
      const uint64_t ts = now.fetch_add(1, std::memory_order_relaxed);
      bus.Publish(GroupInval("g" + std::to_string(g), ts));
      invalidated_at[g].store(ts, std::memory_order_release);
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      for (int iter = 0; iter < 120 && !stop.load(std::memory_order_relaxed); ++iter) {
        const int k = (iter * 7 + w) % kKeys;
        const std::string key = "key-" + std::to_string(k);
        const std::string group = "g" + std::to_string(k);
        const uint64_t ts = now.fetch_add(1, std::memory_order_relaxed);
        InsertRequest req = StillValidEntry(key, "v", group, ts);
        req.key_hash = Fnv1a(req.key);
        cluster.Insert(req);

        // Publish is synchronous (no delivery hook), so an invalidation at ts X recorded in
        // invalidated_at BEFORE our lookup has been applied by every node. A still-valid hit
        // reports upper = the node's last-applied invalidation timestamp — claiming an upper
        // strictly below X would present a pre-invalidation view as current: a stale read.
        const uint64_t floor_before = invalidated_at[k].load(std::memory_order_acquire);
        LookupRequest probe = Probe(key, 1, kTimestampInfinity);
        probe.key_hash = Fnv1a(probe.key);
        LookupResponse resp = cluster.Lookup(probe);
        if (resp.hit && resp.still_valid && resp.interval.upper < floor_before) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(violations.load(), 0) << "a still-valid hit claimed validity at or below an "
                                     "invalidation already published before its own insert";
  EXPECT_EQ(ta->transport_failures() + tb->transport_failures(), 0u);
}

// --- default-factory parameterization ----------------------------------------

TEST(TransportFactory, AddNodeUsesInstalledFactory) {
  ManualClock clock;
  CacheServer server("n0", &clock);
  int built = 0;
  SetDefaultTransportFactory([&built](CacheServer* s) {
    ++built;
    return MakeLoopbackTransport(s);
  });
  CacheCluster cluster;
  ASSERT_TRUE(cluster.AddNode(&server));
  EXPECT_EQ(built, 1);
  SetDefaultTransportFactory(nullptr);  // restore the environment-driven default
}

}  // namespace
}  // namespace txcache
