// Epoch-based reclamation (src/util/ebr.h) and the flat shard table (src/cache/flat_table.h):
//   * a retired object is never reclaimed while any reader epoch pins it — checked over the
//     deterministic enter/retire/advance interleavings AND under a threaded hammer;
//   * a stalled reader bounds reclamation: the domain's retire lists only grow while the
//     reader pins, and drain once it exits;
//   * payload aliases handed out by the zero-copy hit path stay readable and bitwise stable
//     across truncation, eviction, flush and destruction of the owning server (the EBR
//     deferral is what makes the shard-side frees safe);
//   * the flat table's tombstone / probe-chain / rehash rules.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cache/cache_types.h"
#include "src/cache/flat_table.h"
#include "src/util/ebr.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

// Most tests use the process-global domain — the one the shards share. Reader slots are
// per (thread, domain): a private domain instance tracks its own pins, which the dedicated
// tests below exercise (that used to be broken; see PrivateDomain* and CrossDomain*).
EbrDomain& Domain() { return EbrDomain::Global(); }

// Runs `fn` on a fresh thread inside an EBR critical region and keeps the region pinned
// until Release() is called. The calling test controls exactly when the reader's pin starts
// and ends, which is what lets it enumerate enter/retire/advance interleavings.
class PinnedReader {
 public:
  PinnedReader() {
    thread_ = std::thread([this] {
      EbrDomain::Guard guard(&Domain());
      {
        std::unique_lock<std::mutex> lock(mu_);
        pinned_ = true;
        cv_.notify_all();
        cv_.wait(lock, [this] { return released_; });
      }
    });
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pinned_; });
  }

  ~PinnedReader() { Release(); }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (released_) {
        return;
      }
      released_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool pinned_ = false;
  bool released_ = false;
};

void RetireFlag(std::atomic<bool>* freed) {
  Domain().Retire(freed, [](void* p) {
    static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_release);
  });
}

TEST(Ebr, ReaderPinBlocksReclamationUntilExit) {
  // Interleaving: enter -> retire -> advance*N. The object is retired at (or after) the
  // reader's pinned epoch, so no number of advance attempts may free it while the pin holds.
  PinnedReader reader;
  std::atomic<bool> freed{false};
  RetireFlag(&freed);
  for (int i = 0; i < 16; ++i) {
    Domain().TryAdvance();
    ASSERT_FALSE(freed.load(std::memory_order_acquire))
        << "retired object reclaimed while a reader epoch pinned it (attempt " << i << ")";
  }
  reader.Release();
  Domain().Synchronize();
  EXPECT_TRUE(freed.load(std::memory_order_acquire))
      << "object leaked after the pinning reader exited";
}

TEST(Ebr, RetireThenPinStillBlocksReclamation) {
  // Interleaving: retire -> enter -> advance*N. The reader pins the epoch the object was
  // retired in (or a later one); the required two-advance gap cannot complete under the pin.
  std::atomic<bool> freed{false};
  RetireFlag(&freed);
  PinnedReader reader;
  for (int i = 0; i < 16; ++i) {
    Domain().TryAdvance();
    ASSERT_FALSE(freed.load(std::memory_order_acquire));
  }
  reader.Release();
  Domain().Synchronize();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(Ebr, InterleavedRetiresAcrossEpochStepsAllWaitForTheReader) {
  // Interleaving: retire -> advance -> retire -> advance -> ... with a reader pinned the
  // whole time. Objects land in different epoch buckets, yet none may be freed until exit.
  PinnedReader reader;
  std::atomic<bool> freed[4] = {{false}, {false}, {false}, {false}};
  for (auto& f : freed) {
    RetireFlag(&f);
    Domain().TryAdvance();
  }
  for (const auto& f : freed) {
    ASSERT_FALSE(f.load(std::memory_order_acquire));
  }
  reader.Release();
  Domain().Synchronize();
  for (const auto& f : freed) {
    EXPECT_TRUE(f.load(std::memory_order_acquire));
  }
}

TEST(Ebr, StalledReaderBoundsRetireListGrowth) {
  // While one reader stalls inside a critical region, everything retired since accumulates
  // unfreed (bounded staleness, never a use-after-free); the backlog drains once it exits.
  Domain().Synchronize();  // start from a drained domain so the delta below is exact
  const size_t before = Domain().pending_retired();
  PinnedReader reader;
  constexpr int kRetired = 200;
  std::vector<std::unique_ptr<std::atomic<bool>>> flags;
  for (int i = 0; i < kRetired; ++i) {
    flags.push_back(std::make_unique<std::atomic<bool>>(false));
    RetireFlag(flags.back().get());
  }
  Domain().Synchronize();
  EXPECT_GE(Domain().pending_retired(), before + kRetired)
      << "retires reclaimed under a stalled reader";
  reader.Release();
  Domain().Synchronize();
  EXPECT_LE(Domain().pending_retired(), before);
  for (const auto& f : flags) {
    EXPECT_TRUE(f->load(std::memory_order_acquire));
  }
}

TEST(Ebr, NestedGuardsPinOnce) {
  std::atomic<bool> freed{false};
  {
    EbrDomain::Guard outer(&Domain());
    {
      EbrDomain::Guard inner(&Domain());
      RetireFlag(&freed);
    }
    // The inner guard's exit must not unpin the thread: the outer region still protects.
    for (int i = 0; i < 8; ++i) {
      Domain().TryAdvance();
    }
    ASSERT_FALSE(freed.load(std::memory_order_acquire));
  }
  Domain().Synchronize();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(Ebr, CrossDomainPinsAreIndependent) {
  // Regression: thread-local reader state used to be a single slot shared across ALL
  // domains. A thread that entered domain A and then domain B silently reused A's slot —
  // registered only in A's slot list — so B's epoch scan saw no pin at all and B could
  // reclaim an object the thread was still reading (use-after-free), while A's epochs were
  // pinned by critical regions that had nothing to do with A. Pins are per (thread, domain)
  // now: a pin on one domain neither protects nor stalls another.
  EbrDomain private_domain;
  std::atomic<bool> freed{false};
  {
    EbrDomain::Guard global_guard(&Domain());
    EbrDomain::Guard private_guard(&private_domain);
    private_domain.Retire(&freed, [](void* p) {
      static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_release);
    });
    for (int i = 0; i < 16; ++i) {
      private_domain.TryAdvance();
      ASSERT_FALSE(freed.load(std::memory_order_acquire))
          << "the private domain ignored its own reader's pin";
    }
    // Dropping only the private pin lets the private domain reclaim, even though the global
    // guard (a different domain) is still open on this thread.
  }
  {
    EbrDomain::Guard global_guard(&Domain());
    private_domain.Synchronize();
    EXPECT_TRUE(freed.load(std::memory_order_acquire))
        << "an unrelated domain's pin stalled this domain's reclamation";
  }
}

TEST(Ebr, PrivateDomainSlotReleasesWhenItsGuardExits) {
  // Regression: a thread's reader slot was released back to its domain only at THREAD exit —
  // and unconditionally to the global domain at that. For a private domain this meant (a)
  // the slot stayed pinned-idle in the private domain's slot list after the critical region
  // ended, and (b) a slot the global domain never allocated was handed to its free list when
  // the thread died — corrupting it, or use-after-free if the private domain died first.
  // Non-global slots now return to their owning domain at the outermost Exit, so a private
  // domain outlived by nothing can be destroyed as soon as its guards are gone.
  for (int round = 0; round < 8; ++round) {
    EbrDomain private_domain;
    std::atomic<bool> freed{false};
    // Short-lived threads enter/exit the private domain and die; their slots must not leak
    // into the domain nor escape into the global domain's free list.
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&private_domain] {
        for (int i = 0; i < 50; ++i) {
          EbrDomain::Guard guard(&private_domain);
        }
      });
    }
    for (auto& t : workers) {
      t.join();
    }
    {
      EbrDomain::Guard guard(&private_domain);
      private_domain.Retire(&freed, [](void* p) {
        static_cast<std::atomic<bool>*>(p)->store(true, std::memory_order_release);
      });
    }
    private_domain.Synchronize();
    EXPECT_TRUE(freed.load(std::memory_order_acquire))
        << "a dead thread's abandoned slot still pins the private domain";
    // private_domain is destroyed here, strictly before the threads' thread-local state
    // would have been torn down under the old scheme. ASan/TSan make any lingering
    // cross-domain slot release a hard failure.
  }
  Domain().Synchronize();  // the global domain must be unharmed by all of the above
}

TEST(Ebr, ThreadedHammerNeverReclaimsUnderAReader) {
  // Many readers repeatedly pin, snapshot a shared pointer to the current object, and verify
  // its canary; one writer keeps swapping and retiring objects. Any premature reclamation is
  // a torn canary (and a sanitizer report under ASan/TSan).
  struct Canary {
    explicit Canary(uint64_t v) : value(v), check(~v) {}
    uint64_t value;
    uint64_t check;
  };
  std::atomic<Canary*> current{new Canary(0)};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&current, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        EbrDomain::Guard guard(&Domain());
        Canary* c = current.load(std::memory_order_acquire);
        ASSERT_EQ(c->check, ~c->value) << "reclaimed (or torn) object reached under a pin";
      }
    });
  }
  for (uint64_t i = 1; i <= 3000; ++i) {
    Canary* next = new Canary(i);
    Canary* old = current.exchange(next, std::memory_order_acq_rel);
    Domain().RetireObject(old);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  delete current.load(std::memory_order_relaxed);
  Domain().Synchronize();
}

// --- zero-copy aliases across shard-side frees ------------------------------------------

InsertRequest StillValidInsert(const std::string& key, std::string value, Timestamp lower = 1) {
  InsertRequest req;
  req.key = key;
  req.value = std::move(value);
  req.interval = {lower, kTimestampInfinity};
  req.computed_at = lower;
  req.tags = {InvalidationTag::Concrete("t", "idx", key)};
  return req;
}

LookupRequest Probe(const std::string& key) {
  LookupRequest req;
  req.key = key;
  req.bounds_lo = 1;
  req.bounds_hi = kTimestampInfinity;
  return req;
}

TEST(Ebr, HeldAliasesStayBitwiseStableAcrossEveryFreePath) {
  // The shard never frees a version in place — it retires it — so aliases taken from hits
  // stay valid across truncation, capacity eviction, flush and full server destruction, even
  // while other readers keep hitting. This is the PR-4 lifetime contract, now carried by EBR.
  ManualClock clock;
  CacheOptions options;
  options.num_shards = 1;
  options.capacity_bytes = 16 * 1024;
  auto server = std::make_unique<CacheServer>("ebr-alias", &clock, options);
  const std::string payload(4096, 'e');
  ASSERT_TRUE(server->Insert(StillValidInsert("k", payload)).ok());

  LookupResponse hit = server->Lookup(Probe("k"));
  ASSERT_TRUE(hit.hit);
  const std::string* raw = hit.value.get();
  std::shared_ptr<const std::vector<InvalidationTag>> held_tags = hit.tags;
  ASSERT_TRUE(held_tags != nullptr);

  // Truncate (invalidation), then evict by capacity pressure.
  InvalidationMessage msg;
  msg.seqno = 1;
  msg.ts = 50;
  msg.tags = {InvalidationTag::Concrete("t", "idx", "k")};
  server->Deliver(msg);
  EXPECT_EQ(hit.value.get(), raw);
  EXPECT_EQ(*hit.value, payload);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        server->Insert(StillValidInsert("fill" + std::to_string(i), std::string(4096, 'f'), 60))
            .ok());
  }
  EXPECT_EQ(hit.value.get(), raw) << "the alias IS the resident buffer, not a copy";
  EXPECT_EQ(*hit.value, payload);

  server->Flush();
  EXPECT_EQ(*hit.value, payload);
  server.reset();  // shard destruction retires every slot/array/version it still owned
  EXPECT_EQ(*hit.value, payload);
  ASSERT_EQ(held_tags->size(), 1u);
  EXPECT_EQ((*held_tags)[0].key, "k");
}

// --- flat table --------------------------------------------------------------------------

struct Rec {
  uint64_t hash = 0;
  std::string key;
  int id = 0;
};

uint64_t H(const std::string& key) { return Fnv1a(key); }

TEST(FlatTable, InsertFindEraseWithTombstones) {
  FlatHashTable<Rec> table(&Domain(), 16);
  std::vector<std::unique_ptr<Rec>> recs;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "key" + std::to_string(i);
    recs.push_back(std::unique_ptr<Rec>(new Rec{H(key), key, i}));
    EXPECT_EQ(table.InsertIfAbsent(recs.back()->hash, recs.back().get()), nullptr);
  }
  EXPECT_EQ(table.size(), 8u);
  {
    EbrDomain::Guard guard(&Domain());
    for (int i = 0; i < 8; ++i) {
      const std::string key = "key" + std::to_string(i);
      Rec* r = table.Find(H(key), key);
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(r->id, i);
    }
    EXPECT_EQ(table.Find(H("absent"), "absent"), nullptr);
  }

  // Erase tombstones the slot: later keys on the same probe chain must stay reachable, and
  // a re-insert of the erased key must reuse the tombstone, not shadow a duplicate.
  EXPECT_EQ(table.Erase(H("key3"), "key3"), recs[3].get());
  EXPECT_EQ(table.size(), 7u);
  {
    EbrDomain::Guard guard(&Domain());
    EXPECT_EQ(table.Find(H("key3"), "key3"), nullptr);
    for (int i = 4; i < 8; ++i) {
      const std::string key = "key" + std::to_string(i);
      EXPECT_NE(table.Find(H(key), key), nullptr) << "probe chain broken by a tombstone";
    }
  }
  auto again = std::unique_ptr<Rec>(new Rec{H("key3"), "key3", 33});
  EXPECT_EQ(table.InsertIfAbsent(again->hash, again.get()), nullptr);
  {
    EbrDomain::Guard guard(&Domain());
    Rec* r = table.Find(H("key3"), "key3");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->id, 33);
  }
  // Inserting a present key returns the existing record and does not replace it.
  auto dup = std::unique_ptr<Rec>(new Rec{H("key5"), "key5", 55});
  EXPECT_EQ(table.InsertIfAbsent(dup->hash, dup.get()), recs[5].get());
}

TEST(FlatTable, RehashGrowsAndPreservesEveryRecord) {
  FlatHashTable<Rec> table(&Domain(), 16);
  std::vector<std::unique_ptr<Rec>> recs;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "grow" + std::to_string(i);
    recs.push_back(std::unique_ptr<Rec>(new Rec{H(key), key, i}));
    ASSERT_EQ(table.InsertIfAbsent(recs.back()->hash, recs.back().get()), nullptr);
  }
  EXPECT_EQ(table.size(), 500u);
  EXPECT_GE(table.capacity(), 512u);
  EbrDomain::Guard guard(&Domain());
  for (int i = 0; i < 500; ++i) {
    const std::string key = "grow" + std::to_string(i);
    Rec* r = table.Find(H(key), key);
    ASSERT_NE(r, nullptr) << key << " lost in rehash";
    EXPECT_EQ(r, recs[i].get()) << "record pointers must be stable across rehash";
  }
}

TEST(FlatTable, TombstoneChurnRehashesInPlaceInsteadOfGrowing) {
  // Insert/erase churn with few live entries fills the table with tombstones; the rehash rule
  // must rebuild at the SAME size (squashing tombstones), not double forever.
  FlatHashTable<Rec> table(&Domain(), 16);
  for (int round = 0; round < 300; ++round) {
    const std::string key = "churn" + std::to_string(round);
    auto* r = new Rec{H(key), key, round};
    ASSERT_EQ(table.InsertIfAbsent(r->hash, r), nullptr);
    ASSERT_EQ(table.Erase(r->hash, key), r);
    delete r;  // writer-side test: no concurrent readers, immediate delete is fine
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_LE(table.capacity(), 64u) << "tombstone churn must not grow the table";
  Domain().Synchronize();  // drain the retired slot arrays
}

TEST(FlatTable, ReadersOnTheOldTableSurviveARehash) {
  // A reader probing the pre-rehash slot array must keep working after the writer rehashes:
  // the displaced array is EBR-retired, not freed.
  auto table = std::make_unique<FlatHashTable<Rec>>(&Domain(), 16);
  std::vector<std::unique_ptr<Rec>> recs;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "pre" + std::to_string(i);
    recs.push_back(std::unique_ptr<Rec>(new Rec{H(key), key, i}));
    table->InsertIfAbsent(recs.back()->hash, recs.back().get());
  }
  std::atomic<bool> stop{false};
  std::thread reader([&table, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EbrDomain::Guard guard(&Domain());
      for (int i = 0; i < 8; ++i) {
        const std::string key = "pre" + std::to_string(i);
        Rec* r = table->Find(Fnv1a(key), key);
        ASSERT_NE(r, nullptr);
        ASSERT_EQ(r->id, i);
      }
    }
  });
  for (int i = 0; i < 2000; ++i) {  // force repeated rehashes under the reader
    const std::string key = "more" + std::to_string(i);
    recs.push_back(std::unique_ptr<Rec>(new Rec{H(key), key, 100 + i}));
    table->InsertIfAbsent(recs.back()->hash, recs.back().get());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  table.reset();
  Domain().Synchronize();
}

}  // namespace
}  // namespace txcache
