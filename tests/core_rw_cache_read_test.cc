// The §2.2 extension: read/write transactions reading from the cache (opt-in), including the
// own-writes anomaly the paper warns about.
#include <gtest/gtest.h>

#include "src/core/cacheable_function.h"
#include "src/core/txcache_client.h"
#include "tests/test_support.h"

namespace txcache {
namespace {

using namespace txcache::testing;

class RwCacheReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&clock_);
    bus_ = std::make_unique<InvalidationBus>();
    db_->set_invalidation_bus(bus_.get());
    cache_ = std::make_unique<CacheServer>("node", &clock_);
    bus_->Subscribe(cache_.get());
    cluster_ = std::make_unique<CacheCluster>();
    cluster_->AddNode(cache_.get());
    pincushion_ = std::make_unique<Pincushion>(db_.get(), &clock_);
    CreateAccountsTable(db_.get());
    InsertAccount(db_.get(), 1, "alice", 100);

    TxCacheClient::Options options;
    options.allow_rw_cache_reads = true;
    client_ = std::make_unique<TxCacheClient>(db_.get(), pincushion_.get(), cluster_.get(),
                                              &clock_, options);
    balance_ = client_->MakeCacheable<int64_t, int64_t>(
        "balance", [this](int64_t id) -> int64_t {
          ++executions_;
          auto r = client_->ExecuteQuery(AccountById(id));
          return r.ok() && !r.value().rows.empty()
                     ? r.value().rows[0][AccountsCol::kBalance].AsInt()
                     : -1;
        });
  }

  void WarmCache() {
    ASSERT_TRUE(client_->BeginRO().ok());
    EXPECT_EQ(balance_(1), 100);
    ASSERT_TRUE(client_->Commit().ok());
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvalidationBus> bus_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<CacheCluster> cluster_;
  std::unique_ptr<Pincushion> pincushion_;
  std::unique_ptr<TxCacheClient> client_;
  CacheableFunction<int64_t, int64_t> balance_;
  int executions_ = 0;
};

TEST_F(RwCacheReadTest, RwTransactionServedFromCache) {
  WarmCache();
  ASSERT_TRUE(client_->BeginRW().ok());
  EXPECT_EQ(balance_(1), 100);
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions_, 1) << "the RW call hit the cache";
  EXPECT_EQ(client_->stats().cache_hits, 1u);
}

TEST_F(RwCacheReadTest, MissExecutesButNeverStores) {
  uint64_t inserts_before = cache_->stats().inserts;
  ASSERT_TRUE(client_->BeginRW().ok());
  EXPECT_EQ(balance_(1), 100);  // cold cache: executes directly
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions_, 1);
  EXPECT_EQ(cache_->stats().inserts, inserts_before)
      << "RW results carry no validity interval and must not be cached";
}

TEST_F(RwCacheReadTest, OwnWritesAnomalyIsExactlyAsDocumented) {
  WarmCache();
  ASSERT_TRUE(client_->BeginRW().ok());
  ASSERT_TRUE(client_
                  ->Update(kAccounts, AccountById(1).from, nullptr,
                           {{AccountsCol::kBalance, Value(int64_t{999})}})
                  .ok());
  // The cached value predates our uncommitted write: this is the anomaly the paper warns
  // about ("read/write transactions typically expect to see the effects of their own
  // updates"). The opt-in accepts it.
  EXPECT_EQ(balance_(1), 100);
  // A bare database query in the same transaction DOES see the own write.
  auto direct = client_->ExecuteQuery(AccountById(1));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value().rows[0][AccountsCol::kBalance].AsInt(), 999);
  ASSERT_TRUE(client_->Commit().ok());
}

TEST_F(RwCacheReadTest, OthersCommittedWritesRespected) {
  WarmCache();
  UpdateBalance(db_.get(), 1, 500);  // commits and invalidates the cached entry
  ASSERT_TRUE(client_->BeginRW().ok());
  EXPECT_EQ(balance_(1), 500)
      << "the entry was invalidated; the RW snapshot forces a recompute, not a stale read";
  ASSERT_TRUE(client_->Commit().ok());
  EXPECT_EQ(executions_, 2);
}

TEST_F(RwCacheReadTest, DisabledByDefault) {
  TxCacheClient plain(db_.get(), pincushion_.get(), cluster_.get(), &clock_);
  int executions = 0;
  auto balance = plain.MakeCacheable<int64_t, int64_t>("b2", [&](int64_t id) -> int64_t {
    ++executions;
    auto r = plain.ExecuteQuery(AccountById(id));
    return r.ok() && !r.value().rows.empty()
               ? r.value().rows[0][AccountsCol::kBalance].AsInt()
               : -1;
  });
  ASSERT_TRUE(plain.BeginRO().ok());
  balance(1);
  ASSERT_TRUE(plain.Commit().ok());
  ASSERT_TRUE(plain.BeginRW().ok());
  balance(1);
  ASSERT_TRUE(plain.Commit().ok());
  EXPECT_EQ(executions, 2) << "without the opt-in, RW calls always execute (§2.2)";
  EXPECT_EQ(plain.stats().bypassed_calls, 1u);
}

}  // namespace
}  // namespace txcache
