#include "src/util/serde.h"

#include <gtest/gtest.h>

#include "src/db/value.h"

namespace txcache {
namespace {

template <typename T>
T Roundtrip(const T& v) {
  std::string bytes = SerializeToString(v);
  auto out = DeserializeFromString<T>(bytes);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.take();
}

TEST(Serde, Integers) {
  EXPECT_EQ(Roundtrip<int64_t>(0), 0);
  EXPECT_EQ(Roundtrip<int64_t>(-1), -1);
  EXPECT_EQ(Roundtrip<int64_t>(INT64_MAX), INT64_MAX);
  EXPECT_EQ(Roundtrip<int64_t>(INT64_MIN), INT64_MIN);
  EXPECT_EQ(Roundtrip<int32_t>(-42), -42);
  EXPECT_EQ(Roundtrip<uint64_t>(~0ull), ~0ull);
}

TEST(Serde, Bool) {
  EXPECT_EQ(Roundtrip(true), true);
  EXPECT_EQ(Roundtrip(false), false);
}

TEST(Serde, Double) {
  EXPECT_EQ(Roundtrip(3.25), 3.25);
  EXPECT_EQ(Roundtrip(-0.0), -0.0);
  EXPECT_EQ(Roundtrip(1e300), 1e300);
}

TEST(Serde, Strings) {
  EXPECT_EQ(Roundtrip<std::string>(""), "");
  EXPECT_EQ(Roundtrip<std::string>("hello"), "hello");
  std::string binary("\x00\x01\xff\x7f", 4);
  EXPECT_EQ(Roundtrip(binary), binary);
  EXPECT_EQ(Roundtrip(std::string(100'000, 'x')).size(), 100'000u);
}

TEST(Serde, Optional) {
  EXPECT_EQ(Roundtrip(std::optional<int64_t>{}), std::nullopt);
  EXPECT_EQ(Roundtrip(std::optional<int64_t>{7}), std::optional<int64_t>{7});
  EXPECT_EQ(Roundtrip(std::optional<std::string>{"x"}), std::optional<std::string>{"x"});
}

TEST(Serde, Vector) {
  EXPECT_EQ(Roundtrip(std::vector<int64_t>{}), (std::vector<int64_t>{}));
  EXPECT_EQ(Roundtrip(std::vector<int64_t>{1, 2, 3}), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(Roundtrip(std::vector<std::string>{"a", "", "c"}),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(Serde, NestedContainers) {
  std::vector<std::vector<std::optional<int64_t>>> v{{1, std::nullopt}, {}, {3}};
  EXPECT_EQ(Roundtrip(v), v);
}

TEST(Serde, PairAndTuple) {
  auto p = std::make_pair(std::string("k"), int64_t{9});
  EXPECT_EQ(Roundtrip(p), p);
  auto t = std::make_tuple(int64_t{1}, std::string("two"), 3.0);
  EXPECT_EQ(Roundtrip(t), t);
}

struct Point {
  int64_t x = 0;
  int64_t y = 0;
  std::string label;
  template <typename F>
  void ForEachField(F&& f) {
    f(x), f(y), f(label);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(x), f(y), f(label);
  }
  bool operator==(const Point&) const = default;
};

TEST(Serde, StructViaForEachField) {
  Point p{3, -4, "origin-ish"};
  EXPECT_EQ(Roundtrip(p), p);
}

TEST(Serde, StructInVector) {
  std::vector<Point> v{{1, 2, "a"}, {3, 4, "b"}};
  EXPECT_EQ(Roundtrip(v), v);
}

TEST(Serde, DeterministicBytes) {
  // Cache keys rely on identical values producing identical bytes.
  EXPECT_EQ(SerializeToString(int64_t{42}, std::string("x")),
            SerializeToString(int64_t{42}, std::string("x")));
  EXPECT_NE(SerializeToString(int64_t{42}, std::string("x")),
            SerializeToString(int64_t{43}, std::string("x")));
  EXPECT_NE(SerializeToString(std::string("ab"), std::string("c")),
            SerializeToString(std::string("a"), std::string("bc")))
      << "length prefixes must prevent concatenation ambiguity";
}

TEST(Serde, MalformedInputFailsCleanly) {
  EXPECT_FALSE(DeserializeFromString<int64_t>("").ok());
  EXPECT_FALSE(DeserializeFromString<int64_t>("abc").ok());
  EXPECT_FALSE(DeserializeFromString<std::string>("\xff\xff\xff\xff").ok());
  // A vector claiming a huge element count but no payload.
  Writer w;
  w.PutU32(1'000'000);
  EXPECT_FALSE(DeserializeFromString<std::vector<int64_t>>(w.bytes()).ok());
}

TEST(Serde, TrailingGarbageRejected) {
  std::string bytes = SerializeToString(int64_t{1});
  bytes += "extra";
  EXPECT_FALSE(DeserializeFromString<int64_t>(bytes).ok());
}

TEST(Serde, ValueRoundtrips) {
  for (const Value& v : {Value::Null(), Value(int64_t{-7}), Value(2.5), Value("str"),
                         Value(true), Value(false), Value("")}) {
    Writer w;
    SerializeValue(w, v);
    Reader r(w.bytes());
    Value out;
    ASSERT_TRUE(DeserializeValue(r, &out));
    EXPECT_EQ(out, v) << v.ToString();
  }
}

TEST(Serde, RowEncodingRoundtrips) {
  Row row{Value(int64_t{1}), Value("nick"), Value(3.5), Value::Null(), Value(true)};
  auto decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), row);
}

TEST(Serde, RowEncodingIsInjectiveAcrossArity) {
  EXPECT_NE(EncodeRow(Row{Value(int64_t{1})}), EncodeRow(Row{Value(int64_t{1}), Value(int64_t{0})}));
}

}  // namespace
}  // namespace txcache
