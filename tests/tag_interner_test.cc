// Tag-set interning: identical invalidation tag sets across versions and keys share one
// allocation; the unit covers dedup, collision disambiguation, and weak-ptr liveness, and
// the end-to-end test proves the CacheServer insert path actually routes through the
// interner without changing lookup semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cache/tag_interner.h"
#include "src/util/clock.h"

namespace txcache {
namespace {

using TagSet = TagSetInterner::TagSet;

TagSet Tags(const std::string& group) {
  return {InvalidationTag::Concrete("t", "idx", group), InvalidationTag::Wildcard("t2")};
}

TEST(TagSetInterner, IdenticalSetsAliasOneAllocation) {
  TagSetInterner interner;
  auto a = interner.Intern(Tags("g1"));
  auto b = interner.Intern(Tags("g1"));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get()) << "byte-identical sets must share the interned vector";
  EXPECT_EQ(interner.dedup_hits(), 1u);
  EXPECT_EQ(interner.size(), 1u);

  auto c = interner.Intern(Tags("g2"));
  EXPECT_NE(a.get(), c.get()) << "distinct contents must not alias";
  EXPECT_EQ(interner.size(), 2u);
}

TEST(TagSetInterner, EmptySetIsASingletonAndNeverNull) {
  TagSetInterner interner;
  auto a = interner.Intern({});
  auto b = interner.Intern({});
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->empty());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(interner.size(), 0u) << "the singleton does not occupy the map";
}

TEST(TagSetInterner, FieldBoundariesAreHashedNotConcatenated) {
  // ("ab","c",...) vs ("a","bc",...): same concatenation, different tags. The separator in
  // HashTagSet makes the hashes differ, and even on a collision the deep compare would
  // disambiguate — either way these must not alias.
  TagSetInterner interner;
  auto a = interner.Intern({InvalidationTag::Concrete("ab", "c", "k")});
  auto b = interner.Intern({InvalidationTag::Concrete("a", "bc", "k")});
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(interner.dedup_hits(), 0u);
  // Wildcard-ness is part of identity even when the strings match.
  auto conc = interner.Intern({InvalidationTag::Concrete("t", "", "")});
  auto wild = interner.Intern({InvalidationTag::Wildcard("t")});
  EXPECT_NE(conc.get(), wild.get());
}

TEST(TagSetInterner, DeadSetsAreNotResurrected) {
  TagSetInterner interner;
  const TagSet* first_addr = nullptr;
  {
    auto a = interner.Intern(Tags("g"));
    first_addr = a.get();
  }
  // The only owner died: the weak entry is expired, so re-interning allocates fresh (the
  // old address may or may not be reused by the allocator — what must NOT happen is a lock
  // of the dead weak_ptr handing back a freed vector).
  auto b = interner.Intern(Tags("g"));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*b, Tags("g"));
  EXPECT_EQ(interner.dedup_hits(), 0u) << "an expired entry is a miss, not a dedup hit";
  (void)first_addr;
}

InsertRequest EntryWith(const std::string& key, const std::string& group) {
  InsertRequest req;
  req.key = key;
  req.value = "v:" + key;
  req.interval = {1, kTimestampInfinity};
  req.computed_at = 1;
  req.tags = Tags(group);
  return req;
}

TEST(TagSetInterner, CacheServerSharesTagBlocksAcrossKeysAndVersions) {
  ManualClock clock;
  CacheServer server("n", &clock);
  // 32 keys, all carrying the same two-tag set: one interned allocation serves them all.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(server.Insert(EntryWith("k" + std::to_string(i), "shared")).ok());
  }
  EXPECT_GE(server.tag_interner().dedup_hits(), 31u)
      << "every insert after the first should have aliased the interned set";

  // Lookups on two different keys hand back the same underlying tag vector.
  LookupRequest probe;
  probe.key = "k0";
  probe.bounds_lo = 1;
  probe.bounds_hi = kTimestampInfinity;
  probe.fresh_lo = 1;
  LookupResponse r0 = server.Lookup(probe);
  probe.key = "k1";
  LookupResponse r1 = server.Lookup(probe);
  ASSERT_TRUE(r0.hit);
  ASSERT_TRUE(r1.hit);
  ASSERT_NE(r0.tags, nullptr);
  EXPECT_EQ(r0.tags.get(), r1.tags.get())
      << "hit responses alias the single interned tag block";
  EXPECT_EQ(*r0.tags, Tags("shared")) << "interning must not change the visible tags";

  // A different tag set does not alias.
  ASSERT_TRUE(server.Insert(EntryWith("kx", "other")).ok());
  probe.key = "kx";
  LookupResponse rx = server.Lookup(probe);
  ASSERT_TRUE(rx.hit);
  EXPECT_NE(rx.tags.get(), r0.tags.get());
}

}  // namespace
}  // namespace txcache
