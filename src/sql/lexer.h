// SQL lexer for the engine's query surface.
#ifndef SRC_SQL_LEXER_H_
#define SRC_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace txcache::sql {

enum class TokenKind : uint8_t {
  kIdentifier,  // table/column names and keywords (case-insensitive)
  kNumber,      // integer or decimal literal
  kString,      // '...' with '' escaping
  kSymbol,      // = != < <= > >= ( ) , * . ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifiers upper-cased; symbols verbatim; strings unescaped
  size_t offset = 0;  // byte offset in the input, for error messages

  bool Is(TokenKind k, const char* t) const { return kind == k && text == t; }
};

// Tokenizes `input`. The final token is always kEnd.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace txcache::sql

#endif  // SRC_SQL_LEXER_H_
