#include "src/sql/session.h"

#include <sstream>

namespace txcache::sql {

std::string SqlResult::ToString() const {
  std::ostringstream os;
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      os << (i == 0 ? "" : " | ") << columns[i];
    }
    os << "\n";
  }
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : " | ") << row[i].ToString();
    }
    os << "\n";
  }
  os << "(" << rows.size() << " rows";
  if (affected > 0) {
    os << ", " << affected << " affected";
  }
  os << ")";
  return os.str();
}

Result<SqlResult> SqlSession::Execute(const std::string& sql_text) {
  auto statement = Parse(sql_text);
  if (!statement.ok()) {
    return statement.status();
  }
  SqlResult out;
  if (const auto* select = std::get_if<SelectStmt>(&statement.value())) {
    SelectStmt normalized = *select;
    auto plan = planner_.PlanSelect(normalized);
    if (!plan.ok()) {
      return plan.status();
    }
    auto result = client_->ExecuteQuery(plan.value().query);
    if (!result.ok()) {
      return result.status();
    }
    out.columns = plan.value().column_names;
    out.rows = std::move(result.value().rows);
    out.validity = result.value().validity;
    return out;
  }
  if (const auto* insert = std::get_if<InsertStmt>(&statement.value())) {
    Status st = client_->Insert(CatalogName(insert->table), insert->values);
    if (!st.ok()) {
      return st;
    }
    out.affected = 1;
    return out;
  }
  if (const auto* update = std::get_if<UpdateStmt>(&statement.value())) {
    const std::string table = CatalogName(update->table);
    auto target = planner_.PlanTarget(table, update->where);
    if (!target.ok()) {
      return target.status();
    }
    auto sets = planner_.PlanSets(table, update->sets);
    if (!sets.ok()) {
      return sets.status();
    }
    auto n = client_->Update(table, target.value().path, target.value().residual, sets.value());
    if (!n.ok()) {
      return n.status();
    }
    out.affected = n.value();
    return out;
  }
  const auto& del = std::get<DeleteStmt>(statement.value());
  const std::string table = CatalogName(del.table);
  auto target = planner_.PlanTarget(table, del.where);
  if (!target.ok()) {
    return target.status();
  }
  auto n = client_->Delete(table, target.value().path, target.value().residual);
  if (!n.ok()) {
    return n.status();
  }
  out.affected = n.value();
  return out;
}

}  // namespace txcache::sql
