#include "src/sql/session.h"

#include <sstream>

#include "src/core/cacheable_function.h"
#include "src/sql/lexer.h"

namespace txcache::sql {

namespace {

// The cost-accounting bucket every ad-hoc cached SELECT files under: one function-style name
// keeps the server-side profiles, advisory hints and admission feedback working for
// statements no MAKE-CACHEABLE call ever declared.
const std::string kSqlSelectFunction = "sql.select";

}  // namespace

std::string QuoteSqlString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') {
      out.push_back('\'');
    }
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string SqlSession::StatementCacheKey(const std::string& sql_text) {
  // Canonical form: lexer tokens re-joined with single spaces, string literals re-quoted.
  // Identifiers are upper-cased by the lexer, so statements differing only in whitespace or
  // identifier case map to the same key; string literals keep their exact (case-sensitive)
  // value and stay distinguishable from identifiers through the quoting.
  std::ostringstream canonical;
  auto tokens = Lex(sql_text);
  if (!tokens.ok()) {
    // Unlexable text never reaches the planner; key it verbatim so the caller's lookup is
    // still well-defined (it will miss, and the statement errors before any store).
    canonical << sql_text;
  } else {
    bool first = true;
    for (const Token& token : tokens.value()) {
      if (token.kind == TokenKind::kEnd) {
        break;
      }
      canonical << (first ? "" : " ")
                << (token.kind == TokenKind::kString ? QuoteSqlString(token.text) : token.text);
      first = false;
    }
  }
  return MakeCacheKey(kSqlSelectFunction, canonical.str());
}

std::string SqlResult::ToString() const {
  std::ostringstream os;
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      os << (i == 0 ? "" : " | ") << columns[i];
    }
    os << "\n";
  }
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : " | ") << row[i].ToString();
    }
    os << "\n";
  }
  os << "(" << rows.size() << " rows";
  if (affected > 0) {
    os << ", " << affected << " affected";
  }
  os << ")";
  return os.str();
}

Result<SqlResult> SqlSession::ExecuteSelect(const std::string& sql_text,
                                            const SelectStmt& stmt) {
  auto plan = planner_.PlanSelect(stmt);
  if (!plan.ok()) {
    // Fail closed: a statement the planner rejects reports the table-level fallback and is
    // never cached (we return before any lookup or store).
    last_derived_ = TagDeriver::TableFallback(CatalogName(stmt.table));
    return plan.status();
  }
  last_derived_ = plan.value().derived_tags;

  SqlResult out;
  out.columns = plan.value().column_names;

  const bool derived = tag_mode_ == TagMode::kDerived;
  if (cache_selects_ && client_->ShouldUseCache()) {
    // Ad-hoc statement cache: the canonicalized text is the key, the derived tags are what
    // the entry is filed under — no MAKE-CACHEABLE spec anywhere. ExecuteQueryTagged pushes
    // the derived (superset) tags into our frame, so the FrameOutcome passed to CacheStore
    // carries them; nested observations (none today — single statement) would fold in too.
    const std::string key = StatementCacheKey(sql_text);
    auto hit = client_->CacheLookup(key, &kSqlSelectFunction);
    if (hit.ok()) {
      auto decoded = DeserializeFromString<std::vector<Row>>(*hit.value());
      if (decoded.ok()) {
        out.rows = decoded.take();
        out.from_cache = true;
        out.validity = Interval::Empty();  // the pin-set machinery owns consistency here
        return out;
      }
    }
    FrameGuard guard(client_);
    auto result = client_->ExecuteQueryTagged(plan.value().query, last_derived_.tags);
    if (!result.ok()) {
      return result.status();
    }
    FrameOutcome outcome = guard.Finish();
    client_->CacheStore(key, SerializeToString(result.value().rows), outcome,
                        &kSqlSelectFunction);
    out.rows = std::move(result.value().rows);
    out.validity = result.value().validity;
    return out;
  }

  auto result = derived ? client_->ExecuteQueryTagged(plan.value().query, last_derived_.tags)
                        : client_->ExecuteQuery(plan.value().query);
  if (!result.ok()) {
    return result.status();
  }
  out.rows = std::move(result.value().rows);
  out.validity = result.value().validity;
  return out;
}

Result<SqlResult> SqlSession::Execute(const std::string& sql_text) {
  auto statement = Parse(sql_text);
  if (!statement.ok()) {
    last_derived_ = TagDeriver::TableFallback("");  // unparseable: no table to even name
    return statement.status();
  }
  SqlResult out;
  if (const auto* select = std::get_if<SelectStmt>(&statement.value())) {
    return ExecuteSelect(sql_text, *select);
  }
  if (const auto* insert = std::get_if<InsertStmt>(&statement.value())) {
    const std::string table = CatalogName(insert->table);
    last_derived_ = deriver_.ForInsert(table, insert->values);
    Status st = client_->Insert(table, insert->values);
    if (!st.ok()) {
      return st;
    }
    out.affected = 1;
    return out;
  }
  if (const auto* update = std::get_if<UpdateStmt>(&statement.value())) {
    const std::string table = CatalogName(update->table);
    auto target = planner_.PlanTarget(table, update->where);
    if (!target.ok()) {
      last_derived_ = TagDeriver::TableFallback(table);
      return target.status();
    }
    last_derived_ = target.value().derived_write_tags;
    auto sets = planner_.PlanSets(table, update->sets);
    if (!sets.ok()) {
      return sets.status();
    }
    auto n = client_->Update(table, target.value().path, target.value().residual, sets.value());
    if (!n.ok()) {
      return n.status();
    }
    out.affected = n.value();
    return out;
  }
  const auto& del = std::get<DeleteStmt>(statement.value());
  const std::string table = CatalogName(del.table);
  auto target = planner_.PlanTarget(table, del.where);
  if (!target.ok()) {
    last_derived_ = TagDeriver::TableFallback(table);
    return target.status();
  }
  last_derived_ = target.value().derived_write_tags;
  auto n = client_->Delete(table, target.value().path, target.value().residual);
  if (!n.ok()) {
    return n.status();
  }
  out.affected = n.value();
  return out;
}

}  // namespace txcache::sql
