// Automatic invalidation-tag derivation from planned access paths (the paper's
// automatic-management thesis applied to the SQL surface; cf. Ji et al., "Transparent Cache
// Invalidation", PAPERS.md).
//
// The executor already stamps every query result with the invalidation tags of the access
// methods it used (db/database.cc, AddAccessTag); the cache uses those tags to truncate
// validity intervals when writes commit. What was missing is the *static* half: knowing, at
// plan time, which tags a statement's results will depend on — that is what lets a SELECT be
// cached with no hand-written MAKE-CACHEABLE tag spec, because the cache entry can be filed
// under the derived tags before the query ever runs.
//
// Derivation rules (the fallback ladder, most precise first):
//   IndexEq path      -> Concrete(table, index, EncodeRow(bound key))  — exactly the tag the
//                        executor will attach, byte for byte.
//   IndexRange path   -> Wildcard(table). A range has no finite key set; the executor makes
//                        the same call (paper §5.3: anything but index equality is a
//                        table-level dependency).
//   SeqScan path      -> Wildcard(table), same reasoning.
//   INSERT (full row) -> one Concrete tag per index of the table, keys extracted from the
//                        row — mirrors Database::AddWriteTagsLocked; Wildcard if the table
//                        has no indexes.
//   UPDATE/DELETE     -> Wildcard(table). The statement's access path bounds which rows are
//                        *found*, but the rows' other index keys (and, for UPDATE, the
//                        post-image keys) are unknowable statically; the table wildcard
//                        covers every concrete tag the engine can emit for the table.
//   anything else     -> TableFallback(table): fail closed to the table wildcard. Statements
//                        the planner rejects are never cached at all.
//
// Superset-safety contract: for reads, the derived set must cover every tag the executor
// attaches to the same statement (equal for IndexEq, table wildcard otherwise — a wildcard
// covers every tag on its table); for writes, it must cover every tag the commit publishes on
// the invalidation stream. Covering more than necessary can only cause extra invalidations or
// commit-validation conflicts — never a stale read — so every rule above errs wide.
// tests/sql_tag_derivation_test.cc diffs derived against hand-written/executor tags per call
// site, and the model-checked no-stale-read property in tests/cache_property_test.cc runs
// random read/write interleavings entirely on derived tags.
#ifndef SRC_SQL_TAG_DERIVER_H_
#define SRC_SQL_TAG_DERIVER_H_

#include <string>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/db/database.h"

namespace txcache::sql {

// Which rung of the fallback ladder produced a tag set — diagnostics for the equivalence
// tests and the "report over-broadening" contract; never consulted for correctness.
enum class TagDerivation : uint8_t {
  kIndexEq,        // concrete per-key tag from a fully-bound index
  kIndexRange,     // range path: conservative table wildcard
  kSeqScan,        // sequential scan: conservative table wildcard
  kWriteRow,       // INSERT with the full row in hand: per-index concrete tags
  kWriteTarget,    // UPDATE/DELETE: conservative table wildcard
  kTableFallback,  // fail closed (unanalyzable statement)
};

const char* TagDerivationName(TagDerivation d);

struct DerivedTags {
  std::vector<InvalidationTag> tags;  // sorted, deduplicated
  TagDerivation derivation = TagDerivation::kTableFallback;

  // True when the set is (or includes) a table-level wildcard — i.e. the derivation gave up
  // on per-key precision for at least one dependency.
  bool conservative() const;
  std::string ToString() const;
};

class TagDeriver {
 public:
  explicit TagDeriver(const Database* db) : db_(db) {}

  // Read side: the tags a query over `path` will depend on. Static mirror of the executor's
  // AddAccessTag — for IndexEq the returned tag is byte-identical to the one the executor
  // attaches at run time.
  static DerivedTags ForAccessPath(const AccessPath& path);

  // Write side. ForInsert mirrors Database::AddWriteTagsLocked: the full row is known, so
  // every index key is too. ForWriteTarget (UPDATE/DELETE) is the conservative table
  // wildcard regardless of how precise the access path is — see the header comment.
  DerivedTags ForInsert(const std::string& table, const Row& row) const;
  static DerivedTags ForWriteTarget(const std::string& table);

  // The bottom rung: fail closed to the table-level wildcard. Used for statements that plan
  // but fit no rule, and by callers that could not plan at all but still know the table.
  static DerivedTags TableFallback(const std::string& table);

 private:
  const Database* db_;
};

}  // namespace txcache::sql

#endif  // SRC_SQL_TAG_DERIVER_H_
