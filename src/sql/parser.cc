#include "src/sql/parser.h"

#include <cstdlib>

#include "src/sql/lexer.h"

namespace txcache::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Result<Statement> result = [&]() -> Result<Statement> {
      if (AcceptKeyword("SELECT")) {
        return ParseSelect();
      }
      if (AcceptKeyword("INSERT")) {
        return ParseInsert();
      }
      if (AcceptKeyword("UPDATE")) {
        return ParseUpdate();
      }
      if (AcceptKeyword("DELETE")) {
        return ParseDelete();
      }
      return Error("expected SELECT, INSERT, UPDATE or DELETE");
    }();
    if (!result.ok()) {
      return result;
    }
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after statement");
    }
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().Is(TokenKind::kIdentifier, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().Is(TokenKind::kSymbol, sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw + " near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::Ok();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym + "' near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::Ok();
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " near offset " + std::to_string(Peek().offset));
  }

  Result<std::string> ParseIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kString) {
      Advance();
      return Value(tok.text);
    }
    if (tok.kind == TokenKind::kNumber) {
      Advance();
      if (tok.text.find('.') != std::string::npos) {
        return Value(std::strtod(tok.text.c_str(), nullptr));
      }
      return Value(static_cast<int64_t>(std::strtoll(tok.text.c_str(), nullptr, 10)));
    }
    if (tok.Is(TokenKind::kIdentifier, "NULL")) {
      Advance();
      return Value::Null();
    }
    if (tok.Is(TokenKind::kIdentifier, "TRUE")) {
      Advance();
      return Value(true);
    }
    if (tok.Is(TokenKind::kIdentifier, "FALSE")) {
      Advance();
      return Value(false);
    }
    return Error("expected literal");
  }

  std::optional<CmpOp> ParseCmpOp() {
    static constexpr std::pair<const char*, CmpOp> kOps[] = {
        {"=", CmpOp::kEq},  {"!=", CmpOp::kNe}, {"<=", CmpOp::kLe},
        {">=", CmpOp::kGe}, {"<", CmpOp::kLt},  {">", CmpOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (AcceptSymbol(sym)) {
        return op;
      }
    }
    return std::nullopt;
  }

  // condition := primary (AND primary)*   — AND-chains stay flat so the planner can mine them.
  Result<ConditionPtr> ParseCondition() {
    auto first = ParseConditionPrimary();
    if (!first.ok()) {
      return first;
    }
    std::vector<ConditionPtr> conjuncts{first.value()};
    while (AcceptKeyword("AND")) {
      auto next = ParseConditionPrimary();
      if (!next.ok()) {
        return next;
      }
      conjuncts.push_back(next.value());
    }
    if (conjuncts.size() == 1) {
      return conjuncts[0];
    }
    auto node = std::make_shared<Condition>();
    node->kind = Condition::Kind::kAnd;
    node->children = std::move(conjuncts);
    return ConditionPtr(node);
  }

  // primary := '(' condition (OR condition)* ')' | column cmp literal | column IS [NOT] NULL
  Result<ConditionPtr> ParseConditionPrimary() {
    if (AcceptSymbol("(")) {
      auto inner = ParseCondition();
      if (!inner.ok()) {
        return inner;
      }
      std::vector<ConditionPtr> disjuncts{inner.value()};
      while (AcceptKeyword("OR")) {
        auto next = ParseCondition();
        if (!next.ok()) {
          return next;
        }
        disjuncts.push_back(next.value());
      }
      Status st = ExpectSymbol(")");
      if (!st.ok()) {
        return st;
      }
      if (disjuncts.size() == 1) {
        return disjuncts[0];
      }
      auto node = std::make_shared<Condition>();
      node->kind = Condition::Kind::kOr;
      node->children = std::move(disjuncts);
      return ConditionPtr(node);
    }
    auto column = ParseIdentifier("column name");
    if (!column.ok()) {
      return column.status();
    }
    if (AcceptKeyword("IS")) {
      const bool negated = AcceptKeyword("NOT");
      Status st = ExpectKeyword("NULL");
      if (!st.ok()) {
        return st;
      }
      auto node = std::make_shared<Condition>();
      node->kind = negated ? Condition::Kind::kIsNotNull : Condition::Kind::kIsNull;
      node->column = column.value();
      return ConditionPtr(node);
    }
    std::optional<CmpOp> op = ParseCmpOp();
    if (!op.has_value()) {
      return Error("expected comparison operator");
    }
    auto literal = ParseLiteral();
    if (!literal.ok()) {
      return literal.status();
    }
    auto node = std::make_shared<Condition>();
    node->kind = Condition::Kind::kCmp;
    node->column = column.value();
    node->op = *op;
    node->literal = literal.value();
    return ConditionPtr(node);
  }

  std::optional<AggKind> AggFromName(const std::string& name) {
    if (name == "COUNT") return AggKind::kCount;
    if (name == "SUM") return AggKind::kSum;
    if (name == "MIN") return AggKind::kMin;
    if (name == "MAX") return AggKind::kMax;
    if (name == "AVG") return AggKind::kAvg;
    return std::nullopt;
  }

  Result<Statement> ParseSelect() {
    SelectStmt stmt;
    do {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.star = true;
      } else {
        auto name = ParseIdentifier("column or aggregate");
        if (!name.ok()) {
          return name.status();
        }
        std::optional<AggKind> agg = AggFromName(name.value());
        if (agg.has_value() && AcceptSymbol("(")) {
          item.aggregate = agg;
          if (AcceptSymbol("*")) {
            if (*agg != AggKind::kCount) {
              return Error("only COUNT(*) may aggregate over *");
            }
          } else {
            auto col = ParseIdentifier("aggregate column");
            if (!col.ok()) {
              return col.status();
            }
            item.column = col.value();
          }
          Status st = ExpectSymbol(")");
          if (!st.ok()) {
            return st;
          }
        } else {
          item.column = name.value();
        }
      }
      stmt.items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    Status st = ExpectKeyword("FROM");
    if (!st.ok()) {
      return st;
    }
    auto table = ParseIdentifier("table name");
    if (!table.ok()) {
      return table.status();
    }
    stmt.table = table.value();

    if (AcceptKeyword("WHERE")) {
      auto where = ParseCondition();
      if (!where.ok()) {
        return where.status();
      }
      stmt.where = where.value();
    }
    if (AcceptKeyword("GROUP")) {
      st = ExpectKeyword("BY");
      if (!st.ok()) {
        return st;
      }
      auto col = ParseIdentifier("GROUP BY column");
      if (!col.ok()) {
        return col.status();
      }
      stmt.group_by = col.value();
    }
    if (AcceptKeyword("ORDER")) {
      st = ExpectKeyword("BY");
      if (!st.ok()) {
        return st;
      }
      do {
        auto col = ParseIdentifier("ORDER BY column");
        if (!col.ok()) {
          return col.status();
        }
        OrderItem item{col.value(), false};
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      auto n = ParseLiteral();
      if (!n.ok() || n.value().type() != ValueType::kInt || n.value().AsInt() < 0) {
        return Error("LIMIT expects a non-negative integer");
      }
      stmt.limit = static_cast<size_t>(n.value().AsInt());
      if (AcceptKeyword("OFFSET")) {
        auto m = ParseLiteral();
        if (!m.ok() || m.value().type() != ValueType::kInt || m.value().AsInt() < 0) {
          return Error("OFFSET expects a non-negative integer");
        }
        stmt.offset = static_cast<size_t>(m.value().AsInt());
      }
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    Status st = ExpectKeyword("INTO");
    if (!st.ok()) {
      return st;
    }
    InsertStmt stmt;
    auto table = ParseIdentifier("table name");
    if (!table.ok()) {
      return table.status();
    }
    stmt.table = table.value();
    st = ExpectKeyword("VALUES");
    if (!st.ok()) {
      return st;
    }
    st = ExpectSymbol("(");
    if (!st.ok()) {
      return st;
    }
    do {
      auto v = ParseLiteral();
      if (!v.ok()) {
        return v.status();
      }
      stmt.values.push_back(v.value());
    } while (AcceptSymbol(","));
    st = ExpectSymbol(")");
    if (!st.ok()) {
      return st;
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    UpdateStmt stmt;
    auto table = ParseIdentifier("table name");
    if (!table.ok()) {
      return table.status();
    }
    stmt.table = table.value();
    Status st = ExpectKeyword("SET");
    if (!st.ok()) {
      return st;
    }
    do {
      auto col = ParseIdentifier("column name");
      if (!col.ok()) {
        return col.status();
      }
      st = ExpectSymbol("=");
      if (!st.ok()) {
        return st;
      }
      auto v = ParseLiteral();
      if (!v.ok()) {
        return v.status();
      }
      stmt.sets.emplace_back(col.value(), v.value());
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) {
      auto where = ParseCondition();
      if (!where.ok()) {
        return where.status();
      }
      stmt.where = where.value();
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Status st = ExpectKeyword("FROM");
    if (!st.ok()) {
      return st;
    }
    DeleteStmt stmt;
    auto table = ParseIdentifier("table name");
    if (!table.ok()) {
      return table.status();
    }
    stmt.table = table.value();
    if (AcceptKeyword("WHERE")) {
      auto where = ParseCondition();
      if (!where.ok()) {
        return where.status();
      }
      stmt.where = where.value();
    }
    return Statement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(tokens.take());
  return parser.ParseStatement();
}

}  // namespace txcache::sql
