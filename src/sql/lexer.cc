#include "src/sql/lexer.h"

#include <cctype>

namespace txcache::sql {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentCont(char c) { return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentCont(input[j])) {
        ++j;
      }
      tok.kind = TokenKind::kIdentifier;
      tok.text = input.substr(i, j - i);
      for (char& ch : tok.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool saw_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !saw_dot))) {
        saw_dot |= input[j] == '.';
        ++j;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // '' escapes a quote
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
      i = j;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
          tok.kind = TokenKind::kSymbol;
          tok.text = two == "<>" ? "!=" : two;
          tokens.push_back(tok);
          i += 2;
          continue;
        }
      }
      switch (c) {
        case '=':
        case '<':
        case '>':
        case '(':
        case ')':
        case ',':
        case '*':
        case '.':
        case ';':
          tok.kind = TokenKind::kSymbol;
          tok.text = std::string(1, c);
          ++i;
          break;
        default:
          return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                         "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace txcache::sql
