#include "src/sql/tag_deriver.h"

#include <algorithm>
#include <sstream>

namespace txcache::sql {

namespace {

void Canonicalize(std::vector<InvalidationTag>* tags) {
  std::sort(tags->begin(), tags->end());
  tags->erase(std::unique(tags->begin(), tags->end()), tags->end());
}

}  // namespace

const char* TagDerivationName(TagDerivation d) {
  switch (d) {
    case TagDerivation::kIndexEq:
      return "index-eq";
    case TagDerivation::kIndexRange:
      return "index-range";
    case TagDerivation::kSeqScan:
      return "seq-scan";
    case TagDerivation::kWriteRow:
      return "write-row";
    case TagDerivation::kWriteTarget:
      return "write-target";
    case TagDerivation::kTableFallback:
      return "table-fallback";
  }
  return "unknown";
}

bool DerivedTags::conservative() const {
  return std::any_of(tags.begin(), tags.end(),
                     [](const InvalidationTag& t) { return t.wildcard; });
}

std::string DerivedTags::ToString() const {
  std::ostringstream os;
  os << TagDerivationName(derivation) << "{";
  for (size_t i = 0; i < tags.size(); ++i) {
    os << (i == 0 ? "" : ", ") << tags[i].ToString();
  }
  os << "}";
  return os.str();
}

DerivedTags TagDeriver::ForAccessPath(const AccessPath& path) {
  DerivedTags out;
  switch (path.kind) {
    case AccessPath::Kind::kIndexEq:
      // Byte-identical to the executor's AddAccessTag for the same path.
      out.tags.push_back(InvalidationTag::Concrete(path.table, path.index,
                                                   EncodeRow(path.eq_key)));
      out.derivation = TagDerivation::kIndexEq;
      return out;
    case AccessPath::Kind::kIndexRange:
      out.tags.push_back(InvalidationTag::Wildcard(path.table));
      out.derivation = TagDerivation::kIndexRange;
      return out;
    case AccessPath::Kind::kSeqScan:
      out.tags.push_back(InvalidationTag::Wildcard(path.table));
      out.derivation = TagDerivation::kSeqScan;
      return out;
  }
  return TableFallback(path.table);
}

DerivedTags TagDeriver::ForInsert(const std::string& table, const Row& row) const {
  DerivedTags out;
  out.derivation = TagDerivation::kWriteRow;
  for (const IndexSchema& index : db_->ListIndexes(table)) {
    Row key;
    key.reserve(index.columns.size());
    bool extractable = true;
    for (ColumnId c : index.columns) {
      if (c >= row.size()) {
        extractable = false;  // malformed row; the engine will reject it — stay conservative
        break;
      }
      key.push_back(row[c]);
    }
    if (!extractable) {
      return TableFallback(table);
    }
    out.tags.push_back(InvalidationTag::Concrete(table, index.name, EncodeRow(key)));
  }
  if (out.tags.empty()) {
    // No indexes: the engine publishes the table wildcard for such writes.
    return TableFallback(table);
  }
  Canonicalize(&out.tags);
  return out;
}

DerivedTags TagDeriver::ForWriteTarget(const std::string& table) {
  DerivedTags out;
  out.tags.push_back(InvalidationTag::Wildcard(table));
  out.derivation = TagDerivation::kWriteTarget;
  return out;
}

DerivedTags TagDeriver::TableFallback(const std::string& table) {
  DerivedTags out;
  out.derivation = TagDerivation::kTableFallback;
  if (!table.empty()) {
    out.tags.push_back(InvalidationTag::Wildcard(table));
  }
  return out;
}

}  // namespace txcache::sql
