// SQL abstract syntax. The supported dialect (documented limitations in planner.h):
//
//   SELECT <* | col[, ...] | AGG(col)[, ...]> FROM table
//     [WHERE <cond> [AND <cond>]...]
//     [GROUP BY col] [ORDER BY col [ASC|DESC][, ...]] [LIMIT n [OFFSET m]]
//   INSERT INTO table VALUES (v, ...)
//   UPDATE table SET col = v [, ...] [WHERE ...]
//   DELETE FROM table [WHERE ...]
//
// Conditions are comparisons `col <op> literal` (op: = != < <= > >=) or `col IS [NOT] NULL`,
// combined with AND (OR is parsed inside parentheses as a residual predicate).
#ifndef SRC_SQL_AST_H_
#define SRC_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/db/query.h"
#include "src/db/value.h"

namespace txcache::sql {

struct Condition;
using ConditionPtr = std::shared_ptr<const Condition>;

struct Condition {
  enum class Kind : uint8_t { kCmp, kIsNull, kIsNotNull, kAnd, kOr };
  Kind kind = Kind::kCmp;
  std::string column;  // kCmp / kIsNull / kIsNotNull
  CmpOp op = CmpOp::kEq;
  Value literal;
  std::vector<ConditionPtr> children;  // kAnd / kOr
};

struct SelectItem {
  // Either a plain column, '*', or an aggregate over a column (column empty for COUNT(*)).
  std::string column;
  bool star = false;
  std::optional<AggKind> aggregate;
};

struct OrderItem {
  std::string column;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string table;
  ConditionPtr where;
  std::optional<std::string> group_by;
  std::vector<OrderItem> order_by;
  size_t limit = 0;
  size_t offset = 0;
};

struct InsertStmt {
  std::string table;
  Row values;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> sets;
  ConditionPtr where;
};

struct DeleteStmt {
  std::string table;
  ConditionPtr where;
};

using Statement = std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt>;

}  // namespace txcache::sql

#endif  // SRC_SQL_AST_H_
