// Recursive-descent SQL parser.
#ifndef SRC_SQL_PARSER_H_
#define SRC_SQL_PARSER_H_

#include <string>

#include "src/sql/ast.h"
#include "src/util/status.h"

namespace txcache::sql {

// Parses one statement (a trailing ';' is permitted).
Result<Statement> Parse(const std::string& sql);

}  // namespace txcache::sql

#endif  // SRC_SQL_PARSER_H_
