// SqlSession: executes SQL text through a TxCacheClient inside the client's current
// transaction. SELECTs in read-only transactions flow through the full TxCache machinery —
// they narrow the pin set and accumulate validity/tags for any enclosing cacheable function,
// so SQL inside MAKE-CACHEABLE bodies "just works".
#ifndef SRC_SQL_SESSION_H_
#define SRC_SQL_SESSION_H_

#include <string>
#include <vector>

#include "src/core/txcache_client.h"
#include "src/sql/parser.h"
#include "src/sql/planner.h"

namespace txcache::sql {

struct SqlResult {
  std::vector<std::string> columns;  // labels for SELECT output
  std::vector<Row> rows;             // SELECT results
  size_t affected = 0;               // rows touched by INSERT/UPDATE/DELETE
  Interval validity;                 // SELECT validity interval (read-only transactions)

  std::string ToString() const;  // ASCII table, for shells and demos
};

class SqlSession {
 public:
  SqlSession(TxCacheClient* client, Database* db) : client_(client), planner_(db) {}

  Result<SqlResult> Execute(const std::string& sql_text);

 private:
  TxCacheClient* client_;
  Planner planner_;
};

}  // namespace txcache::sql

#endif  // SRC_SQL_SESSION_H_
