// SqlSession: executes SQL text through a TxCacheClient inside the client's current
// transaction. SELECTs in read-only transactions flow through the full TxCache machinery —
// they narrow the pin set and accumulate validity/tags for any enclosing cacheable function,
// so SQL inside MAKE-CACHEABLE bodies "just works".
//
// Automatic tag derivation (docs/architecture.md §Automatic tag derivation): in
// TagMode::kDerived the session propagates the planner's statically derived tag set
// (src/sql/tag_deriver.h) in place of the executor's observed tags, and — with
// set_cache_selects(true) — caches any SELECT under those tags with no hand-written
// MAKE-CACHEABLE spec: the statement text itself (token-canonicalized) is the cache key.
// Statements the planner rejects fail closed: they are never cached and the last-derived
// diagnostics report the table-level fallback.
#ifndef SRC_SQL_SESSION_H_
#define SRC_SQL_SESSION_H_

#include <string>
#include <vector>

#include "src/core/txcache_client.h"
#include "src/sql/parser.h"
#include "src/sql/planner.h"
#include "src/sql/tag_deriver.h"

namespace txcache::sql {

struct SqlResult {
  std::vector<std::string> columns;  // labels for SELECT output
  std::vector<Row> rows;             // SELECT results
  size_t affected = 0;               // rows touched by INSERT/UPDATE/DELETE
  Interval validity;                 // SELECT validity interval (empty for cached hits —
                                     // the pin-set machinery, not the caller, owns it then)
  bool from_cache = false;           // SELECT answered from the ad-hoc statement cache

  std::string ToString() const;  // ASCII table, for shells and demos
};

class SqlSession {
 public:
  SqlSession(TxCacheClient* client, Database* db)
      : client_(client), planner_(db), deriver_(db) {}

  // kExecutor (the default) preserves the original behavior: the executor's dynamically
  // observed access tags flow to enclosing frames. kDerived propagates the planner's
  // statically derived superset instead — the mode the converted wiki/RUBiS layers run in.
  enum class TagMode : uint8_t { kExecutor, kDerived };
  void set_tag_mode(TagMode m) { tag_mode_ = m; }
  TagMode tag_mode() const { return tag_mode_; }

  // Ad-hoc statement cache: when on (and the client is in a cacheable read-only
  // transaction), every SELECT is looked up / stored under its canonicalized text with the
  // derived tags — caching queries no application ever declared. Implies derived-tag
  // propagation for the statements it caches.
  void set_cache_selects(bool on) { cache_selects_ = on; }
  bool cache_selects() const { return cache_selects_; }

  Result<SqlResult> Execute(const std::string& sql_text);

  // Diagnostics for the tag-derivation tests: the statically derived tags of the last
  // Execute() call (populated even when execution failed after planning; table-level
  // fallback when planning itself failed but the table was known).
  const DerivedTags& last_derived_tags() const { return last_derived_; }

  // Canonical cache key for a SELECT's text: lexer tokens re-joined, so statements differing
  // only in whitespace or identifier case share a cache entry. Exposed for tests.
  static std::string StatementCacheKey(const std::string& sql_text);

 private:
  Result<SqlResult> ExecuteSelect(const std::string& sql_text, const SelectStmt& stmt);

  TxCacheClient* client_;
  Planner planner_;
  TagDeriver deriver_;
  TagMode tag_mode_ = TagMode::kExecutor;
  bool cache_selects_ = false;
  DerivedTags last_derived_;
};

// Quotes a string literal for embedding in SQL text ('' escaping). Application layers that
// synthesize statements (wiki/RUBiS derived-tag mode) must route every user string through
// this.
std::string QuoteSqlString(const std::string& s);

}  // namespace txcache::sql

#endif  // SRC_SQL_SESSION_H_
