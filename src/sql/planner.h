// SQL planner: resolves names against the catalog and picks access paths.
//
// Access-path selection (in priority order):
//   1. an index whose every column is bound by a top-level AND-ed equality => IndexEq
//      (unique indexes and longer prefixes preferred);
//   2. a single-column index whose column has range bounds (< <= > >=) => IndexRange;
//   3. otherwise a sequential scan.
// The full WHERE condition is always kept as the residual predicate — redundant re-checking of
// index-consumed conjuncts is cheap and keeps the translation obviously sound.
//
// Dialect limitations (by design, documented): single-table statements (no joins — the engine's
// Query AST supports index-nested-loop joins, but the SQL surface does not expose them yet),
// one aggregate per SELECT, ORDER BY on the grouping column only when aggregating.
#ifndef SRC_SQL_PLANNER_H_
#define SRC_SQL_PLANNER_H_

#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/sql/ast.h"
#include "src/sql/tag_deriver.h"

namespace txcache::sql {

struct PlannedSelect {
  Query query;
  std::vector<std::string> column_names;  // output column labels
  // Statically derived read-side invalidation tags: a superset of the tags the executor will
  // attach to this query's result (equal for IndexEq paths). See src/sql/tag_deriver.h.
  DerivedTags derived_tags;
};

struct PlannedTarget {
  AccessPath path;
  PredicatePtr residual;
  // What a SELECT through this path depends on / what an UPDATE-or-DELETE through it will
  // invalidate, statically derived (tag_deriver.h). read is per-key for IndexEq paths; write
  // is always the conservative table wildcard (the found rows' other index keys — and, for
  // UPDATE, the post-image keys — are unknowable at plan time).
  DerivedTags derived_read_tags;
  DerivedTags derived_write_tags;
};

class Planner {
 public:
  explicit Planner(const Database* db) : db_(db) {}

  Result<PlannedSelect> PlanSelect(const SelectStmt& stmt) const;
  // Shared by UPDATE/DELETE: where to find the target rows.
  Result<PlannedTarget> PlanTarget(const std::string& table, const ConditionPtr& where) const;
  // Column updates for UPDATE.
  Result<std::vector<std::pair<ColumnId, Value>>> PlanSets(
      const std::string& table, const std::vector<std::pair<std::string, Value>>& sets) const;

 private:
  Result<ColumnId> ResolveColumn(const TableSchema& schema, const std::string& upper_name) const;
  Result<PredicatePtr> TranslateCondition(const TableSchema& schema,
                                          const ConditionPtr& condition) const;
  // Collects top-level AND-ed `col = literal` / range conjuncts.
  void CollectConjuncts(const ConditionPtr& condition,
                        std::vector<const Condition*>* out) const;

  const Database* db_;
};

// Lowercases a lexer-normalized (upper-case) identifier for catalog lookup; table and column
// names in this codebase are lower-case by convention.
std::string CatalogName(const std::string& upper);

}  // namespace txcache::sql

#endif  // SRC_SQL_PLANNER_H_
