#include "src/sql/planner.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace txcache::sql {

std::string CatalogName(const std::string& upper) {
  std::string out = upper;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<ColumnId> Planner::ResolveColumn(const TableSchema& schema,
                                        const std::string& upper_name) const {
  auto id = schema.ColumnIndex(CatalogName(upper_name));
  if (!id.has_value()) {
    return Status::InvalidArgument("no column " + CatalogName(upper_name) + " in table " +
                                   schema.name);
  }
  return *id;
}

Result<PredicatePtr> Planner::TranslateCondition(const TableSchema& schema,
                                                 const ConditionPtr& condition) const {
  if (condition == nullptr) {
    return PredicatePtr(nullptr);
  }
  switch (condition->kind) {
    case Condition::Kind::kCmp: {
      auto col = ResolveColumn(schema, condition->column);
      if (!col.ok()) {
        return col.status();
      }
      return PCmp(col.value(), condition->op, condition->literal);
    }
    case Condition::Kind::kIsNull: {
      auto col = ResolveColumn(schema, condition->column);
      if (!col.ok()) {
        return col.status();
      }
      return PIsNull(col.value());
    }
    case Condition::Kind::kIsNotNull: {
      auto col = ResolveColumn(schema, condition->column);
      if (!col.ok()) {
        return col.status();
      }
      return PNot(PIsNull(col.value()));
    }
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr: {
      std::vector<PredicatePtr> children;
      children.reserve(condition->children.size());
      for (const ConditionPtr& child : condition->children) {
        auto p = TranslateCondition(schema, child);
        if (!p.ok()) {
          return p;
        }
        children.push_back(p.value());
      }
      return condition->kind == Condition::Kind::kAnd ? PAnd(std::move(children))
                                                      : POr(std::move(children));
    }
  }
  return Status::Internal("unknown condition kind");
}

void Planner::CollectConjuncts(const ConditionPtr& condition,
                               std::vector<const Condition*>* out) const {
  if (condition == nullptr) {
    return;
  }
  if (condition->kind == Condition::Kind::kAnd) {
    for (const ConditionPtr& child : condition->children) {
      CollectConjuncts(child, out);
    }
    return;
  }
  out->push_back(condition.get());
}

Result<PlannedTarget> Planner::PlanTarget(const std::string& table,
                                          const ConditionPtr& where) const {
  const TableSchema* schema = db_->FindTable(table);
  if (schema == nullptr) {
    return Status::InvalidArgument("no such table: " + table);
  }
  auto residual = TranslateCondition(*schema, where);
  if (!residual.ok()) {
    return residual.status();
  }

  // Mine top-level conjuncts for equality bindings and range bounds.
  std::vector<const Condition*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  std::map<ColumnId, Value> equalities;
  struct Range {
    std::optional<Value> lo, hi;
  };
  std::map<ColumnId, Range> ranges;
  for (const Condition* c : conjuncts) {
    if (c->kind != Condition::Kind::kCmp) {
      continue;
    }
    auto col = ResolveColumn(*schema, c->column);
    if (!col.ok()) {
      return col.status();
    }
    switch (c->op) {
      case CmpOp::kEq:
        equalities.emplace(col.value(), c->literal);
        break;
      case CmpOp::kGe:
      case CmpOp::kGt:  // conservative: treat as >= and let the residual do the exclusion
        ranges[col.value()].lo = c->literal;
        break;
      case CmpOp::kLe:
      case CmpOp::kLt:  // conservative: treat as <=
        ranges[col.value()].hi = c->literal;
        break;
      default:
        break;
    }
  }

  // 1. Fully-bound index => IndexEq. Prefer unique, then wider indexes.
  const IndexSchema* best_eq = nullptr;
  std::vector<IndexSchema> indexes = db_->ListIndexes(table);
  for (const IndexSchema& index : indexes) {
    const bool bound = std::all_of(index.columns.begin(), index.columns.end(),
                                   [&](ColumnId c) { return equalities.contains(c); });
    if (!bound) {
      continue;
    }
    if (best_eq == nullptr || (index.unique && !best_eq->unique) ||
        (index.unique == best_eq->unique && index.columns.size() > best_eq->columns.size())) {
      best_eq = &index;
    }
  }
  // Every exit derives its tag sets here, so no access path can leave the planner untagged.
  auto planned = [&](AccessPath path) {
    PlannedTarget out{std::move(path), residual.value(), {}, {}};
    out.derived_read_tags = TagDeriver::ForAccessPath(out.path);
    out.derived_write_tags = TagDeriver::ForWriteTarget(table);
    return out;
  };

  if (best_eq != nullptr) {
    Row key;
    key.reserve(best_eq->columns.size());
    for (ColumnId c : best_eq->columns) {
      key.push_back(equalities.at(c));
    }
    return planned(AccessPath::IndexEq(table, best_eq->name, std::move(key)));
  }

  // 2. Single-column index with a range bound => IndexRange.
  for (const IndexSchema& index : indexes) {
    if (index.columns.size() != 1) {
      continue;
    }
    auto it = ranges.find(index.columns[0]);
    if (it == ranges.end()) {
      continue;
    }
    std::optional<Row> lo, hi;
    if (it->second.lo.has_value()) {
      lo = Row{*it->second.lo};
    }
    if (it->second.hi.has_value()) {
      hi = Row{*it->second.hi};
    }
    return planned(AccessPath::IndexRange(table, index.name, std::move(lo), std::move(hi)));
  }

  // 3. Sequential scan.
  return planned(AccessPath::SeqScan(table));
}

Result<PlannedSelect> Planner::PlanSelect(const SelectStmt& stmt) const {
  const std::string table = CatalogName(stmt.table);
  const TableSchema* schema = db_->FindTable(table);
  if (schema == nullptr) {
    return Status::InvalidArgument("no such table: " + table);
  }
  auto target = PlanTarget(table, stmt.where);
  if (!target.ok()) {
    return target.status();
  }
  PlannedSelect plan;
  plan.query = Query::From(target.value().path);
  plan.query.Where(target.value().residual);
  plan.derived_tags = target.value().derived_read_tags;

  // Select list: exactly one aggregate allowed; otherwise columns / '*'.
  const SelectItem* aggregate = nullptr;
  std::vector<uint32_t> projection;
  bool star = false;
  for (const SelectItem& item : stmt.items) {
    if (item.aggregate.has_value()) {
      if (aggregate != nullptr) {
        return Status::InvalidArgument("only one aggregate per SELECT is supported");
      }
      aggregate = &item;
    } else if (item.star) {
      star = true;
    } else {
      auto col = ResolveColumn(*schema, item.column);
      if (!col.ok()) {
        return col.status();
      }
      projection.push_back(col.value());
      plan.column_names.push_back(CatalogName(item.column));
    }
  }

  if (aggregate != nullptr) {
    uint32_t agg_col = 0;
    if (!aggregate->column.empty()) {
      auto col = ResolveColumn(*schema, aggregate->column);
      if (!col.ok()) {
        return col.status();
      }
      agg_col = col.value();
    } else if (*aggregate->aggregate != AggKind::kCount) {
      return Status::InvalidArgument("this aggregate needs a column argument");
    }
    plan.query.Agg(*aggregate->aggregate, agg_col);
    plan.column_names.clear();
    if (stmt.group_by.has_value()) {
      auto group = ResolveColumn(*schema, *stmt.group_by);
      if (!group.ok()) {
        return group.status();
      }
      plan.query.GroupBy(group.value());
      // Non-aggregate select items must be the grouping column.
      for (const SelectItem& item : stmt.items) {
        if (!item.aggregate.has_value() && !item.star) {
          auto col = ResolveColumn(*schema, item.column);
          if (!col.ok() || col.value() != group.value()) {
            return Status::InvalidArgument("selected column must be the GROUP BY column");
          }
        }
      }
      plan.column_names.push_back(CatalogName(*stmt.group_by));
    }
    plan.column_names.push_back("agg");
    if (!stmt.order_by.empty()) {
      if (!stmt.group_by.has_value()) {
        return Status::InvalidArgument("ORDER BY with an ungrouped aggregate");
      }
      auto col = ResolveColumn(*schema, stmt.order_by[0].column);
      if (!col.ok()) {
        return col.status();
      }
      auto group = ResolveColumn(*schema, *stmt.group_by);
      if (col.value() != group.value()) {
        return Status::InvalidArgument("ORDER BY must use the GROUP BY column");
      }
      plan.query.SortBy(0, stmt.order_by[0].descending);
    }
  } else {
    if (stmt.group_by.has_value()) {
      return Status::InvalidArgument("GROUP BY requires an aggregate");
    }
    if (star) {
      projection.clear();
      plan.column_names.clear();
      for (const Column& column : schema->columns) {
        plan.column_names.push_back(column.name);
      }
    }
    plan.query.Project(projection);
    for (const OrderItem& item : stmt.order_by) {
      auto col = ResolveColumn(*schema, item.column);
      if (!col.ok()) {
        return col.status();
      }
      plan.query.SortBy(col.value(), item.descending);
    }
  }
  plan.query.Limit(stmt.limit, stmt.offset);
  return plan;
}

Result<std::vector<std::pair<ColumnId, Value>>> Planner::PlanSets(
    const std::string& table, const std::vector<std::pair<std::string, Value>>& sets) const {
  const TableSchema* schema = db_->FindTable(table);
  if (schema == nullptr) {
    return Status::InvalidArgument("no such table: " + table);
  }
  std::vector<std::pair<ColumnId, Value>> out;
  out.reserve(sets.size());
  for (const auto& [name, value] : sets) {
    auto col = ResolveColumn(*schema, name);
    if (!col.ok()) {
      return col.status();
    }
    out.emplace_back(col.value(), value);
  }
  return out;
}

}  // namespace txcache::sql
