// Deterministic random-number utilities for workload generation and the simulator.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace txcache {

// Wrapper around a seeded 64-bit Mersenne Twister with the distributions the RUBiS client
// emulator needs (uniform picks, exponential think times, Zipf-like popularity skew).
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  uint64_t NextU64() { return gen_(); }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  // Exponentially distributed value with the given mean (RUBiS think time, paper §8).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  // Zipf-distributed rank in [1, n] with exponent s, via rejection-inversion. Used to give item
  // popularity a realistic skew in the workload generator.
  int64_t Zipf(int64_t n, double s);

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

// Weighted categorical choice over a fixed table (the RUBiS interaction mix).
class WeightedChoice {
 public:
  explicit WeightedChoice(std::vector<double> weights);

  // Returns an index in [0, weights.size()).
  size_t Pick(Rng& rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace txcache

#endif  // SRC_UTIL_RNG_H_
