// Core vocabulary types shared across all TxCache modules.
#ifndef SRC_UTIL_TYPES_H_
#define SRC_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace txcache {

// A commit timestamp: a dense logical ordinal assigned to committed read/write transactions by
// the database's transaction manager. Timestamp 0 is reserved ("before everything"); the first
// commit receives timestamp 1. All validity intervals, pinned snapshots, and invalidation-stream
// messages are expressed in this timestamp space (paper §4.1, §5.1).
using Timestamp = uint64_t;

// Sentinel meaning "unbounded" / "still valid" when used as an interval upper bound.
inline constexpr Timestamp kTimestampInfinity = std::numeric_limits<Timestamp>::max();

// Timestamp of the empty database before any transaction committed.
inline constexpr Timestamp kTimestampZero = 0;

// A transaction identifier, assigned at BEGIN time. Distinct from commit timestamps: a
// transaction id is allocated when the transaction starts, its commit timestamp (if it commits)
// when it commits. Id 0 is reserved as "no transaction" (e.g. an unset tuple xmax).
using TxnId = uint64_t;

inline constexpr TxnId kInvalidTxnId = 0;

// Wall-clock time in microseconds since an arbitrary epoch. Staleness limits (paper §2.2) are
// expressed in wall-clock time; the mapping from commit timestamps to wall-clock time is
// maintained by the transaction manager and the pincushion.
using WallClock = int64_t;

inline constexpr WallClock kMicrosPerSecond = 1'000'000;

constexpr WallClock Seconds(double s) { return static_cast<WallClock>(s * kMicrosPerSecond); }
constexpr double ToSeconds(WallClock t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}
constexpr WallClock Millis(double ms) { return static_cast<WallClock>(ms * 1000.0); }

}  // namespace txcache

#endif  // SRC_UTIL_TYPES_H_
