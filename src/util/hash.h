// Hashing utilities: a 64-bit FNV-1a for cache keys and the consistent-hashing ring.
//
// Fnv1a(key) is THE key hash of the system (the hash-once contract, see
// LookupRequest::key_hash): the client computes it once per request and every layer below —
// ring routing, per-node batch grouping, shard selection, the shard's map probe — reuses the
// carried value. Consumers that need decorrelated placements derive them by mixing (Mix64,
// optionally with a seed), never by rehashing the key bytes.
#ifndef SRC_UTIL_HASH_H_
#define SRC_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace txcache {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

constexpr uint64_t Fnv1a(std::string_view data, uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// 64-bit finalizer (from MurmurHash3) to decorrelate sequential inputs; used to derive virtual
// node positions on the consistent-hash ring.
constexpr uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace txcache

#endif  // SRC_UTIL_HASH_H_
