#include "src/util/status.h"

namespace txcache {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeclined:
      return "DECLINED";
    case StatusCode::kDeclinedTooLarge:
      return "DECLINED_TOO_LARGE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace txcache
