#include "src/util/interval.h"

#include <algorithm>
#include <sstream>

namespace txcache {

Interval Interval::Intersect(const Interval& o) const {
  Interval r{std::max(lower, o.lower), std::min(upper, o.upper)};
  if (r.lower >= r.upper) {
    return Interval::Empty();
  }
  return r;
}

std::string Interval::ToString() const {
  std::ostringstream os;
  if (empty()) {
    return "[empty)";
  }
  os << "[" << lower << ", ";
  if (unbounded()) {
    os << "inf";
  } else {
    os << upper;
  }
  os << ")";
  return os.str();
}

void IntervalSet::Add(const Interval& iv) {
  if (iv.empty()) {
    return;
  }
  // Find the first interval whose upper bound reaches iv.lower (merge adjacency too).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.lower,
      [](const Interval& a, Timestamp t) { return a.upper < t; });
  Interval merged = iv;
  auto it = first;
  while (it != intervals_.end() && it->lower <= merged.upper) {
    merged.lower = std::min(merged.lower, it->lower);
    merged.upper = std::max(merged.upper, it->upper);
    ++it;
  }
  it = intervals_.erase(first, it);
  intervals_.insert(it, merged);
}

void IntervalSet::AddAll(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) {
    Add(iv);
  }
}

bool IntervalSet::Contains(Timestamp t) const {
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), t,
                             [](Timestamp v, const Interval& a) { return v < a.upper; });
  return it != intervals_.end() && it->Contains(t);
}

bool IntervalSet::Overlaps(const Interval& iv) const {
  if (iv.empty()) {
    return false;
  }
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), iv.lower,
                             [](Timestamp v, const Interval& a) { return v < a.upper; });
  return it != intervals_.end() && it->Overlaps(iv);
}

Interval IntervalSet::MaximalGapAround(Timestamp t, const Interval& within) const {
  if (!within.Contains(t) || Contains(t)) {
    return Interval::Empty();
  }
  Interval gap = within;
  // First interval strictly after t constrains the upper bound; last interval ending at or
  // before t constrains the lower bound.
  auto after = std::upper_bound(intervals_.begin(), intervals_.end(), t,
                                [](Timestamp v, const Interval& a) { return v < a.lower; });
  if (after != intervals_.end()) {
    gap.upper = std::min(gap.upper, after->lower);
  }
  if (after != intervals_.begin()) {
    auto before = std::prev(after);
    // `before` starts at or before t; since t is uncovered, before->upper <= t.
    gap.lower = std::max(gap.lower, before->upper);
  }
  return gap;
}

Timestamp IntervalSet::CoveredCount() const {
  Timestamp total = 0;
  for (const Interval& iv : intervals_) {
    if (iv.unbounded()) {
      return kTimestampInfinity;
    }
    Timestamp len = iv.upper - iv.lower;
    if (total > kTimestampInfinity - len) {
      return kTimestampInfinity;
    }
    total += len;
  }
  return total;
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << intervals_[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace txcache
