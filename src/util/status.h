// Minimal Status / Result<T> error-handling vocabulary (no exceptions on normal control flow).
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace txcache {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // lookup missed (cache miss, unknown key, unknown snapshot)
  kConflict,          // serialization failure: write-write conflict under snapshot isolation
  kInvalidArgument,   // caller error (bad schema, malformed query, type mismatch)
  kFailedPrecondition,  // operation not valid in current state (e.g. commit of aborted txn)
  kUnavailable,       // component offline / partitioned (used in fault-injection tests)
  kDeclined,          // request refused by policy (e.g. cache admission gate), not an error
  // Size-aware admission refusal: the entry is too large for its shard's budget slice, or
  // its benefit loses to the summed benefit of the victims its bytes would displace. Distinct
  // from kDeclined so clients can count (and adapt fill sizing to) oversized fills separately.
  kDeclinedTooLarge,
  kInternal,          // invariant violation; indicates a bug
};

const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Conflict(std::string m = "serialization conflict") {
    return Status(StatusCode::kConflict, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unavailable(std::string m = "unavailable") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Declined(std::string m = "declined by policy") {
    return Status(StatusCode::kDeclined, std::move(m));
  }
  static Status DeclinedTooLarge(std::string m = "declined: entry not worth its bytes") {
    return Status(StatusCode::kDeclinedTooLarge, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. `value()` asserts success; prefer checking `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const { return ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace txcache

#endif  // SRC_UTIL_STATUS_H_
