// Epoch-based reclamation (EBR) for the lookup hot path.
//
// The cache shard's read fast path walks shard structures (flat table slots, version arrays,
// versions) with NO lock held: a reader enters a critical region by pinning the domain's
// current epoch in a thread-local slot, reads, and unpins. Writers never wait for readers —
// they unlink an object from the data structure (under their own exclusive lock), then Retire
// it into the bucket of the current epoch. A retired object is freed only once the global
// epoch has advanced twice past its retire epoch, which requires two full scans observing
// every active reader at the then-current epoch — at that point no reader that could still
// hold a pointer to the object remains inside a critical region.
//
// Epoch protocol (3-bucket classic EBR):
//   * enter: e = global; slot.exchange(e, seq_cst); re-read global until it matches the
//     pinned value. The seq_cst store/load pair closes the in-flight-reader race: either the
//     advancing writer's scan observes the pin, or the reader observes the bumped epoch and
//     re-pins at it — so a reader can never sit at epoch e without either blocking the
//     advance past e+1 or having happens-before visibility of every unlink retired at e-1
//     (the advance to e stored `global = e` after those unlinks, and the reader's load of
//     `global == e` acquires it).
//   * advance G -> G+1: allowed only when every non-idle slot equals G; frees bucket G-2.
//     Hence a reader pinned at e blocks reclamation of everything retired at >= e: at most
//     one advance (to e+1) can happen under a stalled reader, and the retire lists then only
//     grow — bounded staleness, never a use-after-free.
//
// One process-global domain serves every cache node: slots are per (THREAD, domain) —
// cache-line padded, allocated in never-freed segments, recycled through the owning
// domain's free list — so entering a critical region writes only the calling thread's own
// line — the whole point, versus bouncing a shared reader-writer lock word between cores on
// every hit. The global domain's slot is cached for the thread's lifetime; a private
// domain's slot is returned at the outermost Exit, so it never outlives its domain.
//
// Writers retire from inside exclusive shard sections; the domain's own mutex guards only
// the retire lists and the advance scan (cold path). Deleters run outside that mutex and
// must not re-enter the domain.
#ifndef SRC_UTIL_EBR_H_
#define SRC_UTIL_EBR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <new>

namespace txcache {

class EbrDomain {
 public:
  EbrDomain() = default;
  ~EbrDomain() {
    // Process teardown (static destruction): no readers can remain; free everything.
    CollectAll();
    Segment* seg = segments_;
    while (seg != nullptr) {
      Segment* next = seg->next;
      delete seg;
      seg = next;
    }
  }

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // The process-wide domain used by every CacheShard.
  static EbrDomain& Global() {
    static EbrDomain domain;
    return domain;
  }

  // RAII critical region. Re-entrant per thread (nested guards pin once); cheap enough for
  // one guard per lookup: one uncontended seq_cst RMW on the thread's own slot.
  class Guard {
   public:
    Guard() : domain_(&Global()) { domain_->Enter(); }
    explicit Guard(EbrDomain* domain) : domain_(domain) { domain_->Enter(); }
    ~Guard() { domain_->Exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain* domain_;
  };

  void Enter() {
    Pin& pin = PinFor(this);
    if (pin.depth++ > 0) {
      return;  // nested region in THIS domain: the outermost pin covers it
    }
    Slot* slot = pin.slot;
    if (slot == nullptr) {
      slot = pin.slot = AcquireSlot();
    }
    uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slot->state.exchange(e, std::memory_order_seq_cst);
      const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
      if (now == e) {
        return;
      }
      e = now;  // epoch moved while pinning: re-pin at the value we provably observed
    }
  }

  void Exit() {
    Pin& pin = PinFor(this);
    if (--pin.depth == 0) {
      pin.slot->state.store(kIdle, std::memory_order_release);
      if (this != &Global()) {
        // Hand the slot back to the domain that issued it, NOW: a non-global domain may be
        // destroyed (or the thread may exit) long before the other is torn down, and a slot
        // cached across that boundary would dangle — either freed under the domain or
        // released into the wrong domain's registry. Only the global pin (below) caches its
        // slot across guards; Global() outlives every thread.
        ReleaseSlot(pin.slot);
        pin.slot = nullptr;
        pin.domain = nullptr;
      }
    }
  }

  // Defers `deleter(p)` until no critical region that may still reach `p` remains. The caller
  // must have unlinked `p` from every reader-reachable structure first. Periodically tries to
  // advance the epoch and run due deleters.
  void Retire(void* p, void (*deleter)(void*)) {
    Node* n = new Node{p, deleter, nullptr};
    Node* run = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
      Bucket& b = buckets_[e % 3];
      n->next = b.head;
      b.head = n;
      ++b.count;
      pending_ += 1;
      if (++retires_since_advance_ >= kAdvanceEvery) {
        retires_since_advance_ = 0;
        run = TryAdvanceLocked();
      }
    }
    RunDeleters(run);  // outside mu_: deleters may free arbitrary object graphs
  }

  template <typename T>
  void RetireObject(T* p) {
    Retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // One epoch step if no reader blocks it; frees the newly safe bucket. Returns true when the
  // epoch advanced.
  bool TryAdvance() {
    Node* run = nullptr;
    bool advanced;
    {
      std::lock_guard<std::mutex> lock(mu_);
      run = TryAdvanceLocked();
      advanced = run != nullptr || advanced_empty_;
    }
    RunDeleters(run);
    return advanced;
  }

  // Best-effort drain: advance up to `steps` epochs and free everything that becomes safe.
  // With no active readers this empties all retire lists (shard/server destructors call it so
  // sanitizer runs see no outstanding allocations); a stalled reader simply stops progress.
  void Synchronize(int steps = 4) {
    for (int i = 0; i < steps; ++i) {
      if (!TryAdvance()) {
        return;
      }
    }
  }

  // Objects retired but not yet freed (tests: a stalled reader bounds reclamation, so this
  // only grows while the reader pins; it returns to zero once the reader exits and the
  // epoch is allowed to advance again).
  size_t pending_retired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

  uint64_t epoch() const { return global_epoch_.load(std::memory_order_seq_cst); }

 private:
  static constexpr uint64_t kIdle = 0;
  static constexpr size_t kSlotsPerSegment = 64;
  static constexpr uint64_t kAdvanceEvery = 64;

  struct alignas(64) Slot {
    std::atomic<uint64_t> state{kIdle};
    Slot* next_free = nullptr;  // guarded by slots_mu_
  };

  struct Segment {
    Slot slots[kSlotsPerSegment];
    Segment* next = nullptr;
  };

  struct Node {
    void* p;
    void (*deleter)(void*);
    Node* next;
  };

  struct Bucket {
    Node* head = nullptr;
    size_t count = 0;
  };

  // One thread's registration in ONE domain. Pins are per (thread, domain): each domain's
  // advance scan only walks its own segments, so a pin must live in a slot allocated by the
  // domain being read — parking it in another domain's slot would let this domain's epoch
  // advance past an active reader.
  struct Pin {
    EbrDomain* domain = nullptr;  // owner; nullptr = free entry
    Slot* slot = nullptr;
    uint32_t depth = 0;
  };

  // Thread registration. The global pin claims a slot from the free list (or a fresh
  // segment) on first use and recycles it when the thread exits, so Global()'s slot count
  // tracks peak concurrency, not total threads ever started. Non-global domains instead
  // acquire at the outermost Enter and release at the outermost Exit (see Exit); their
  // entries here only carry the nesting depth between the two.
  struct ThreadState {
    static constexpr size_t kMaxExtraPins = 4;
    Pin global_pin;
    Pin extra[kMaxExtraPins];  // concurrently-pinned non-global domains
    ~ThreadState() {
      if (global_pin.slot != nullptr) {
        Global().ReleaseSlot(global_pin.slot);
      }
    }
  };

  static ThreadState& Tls() {
    thread_local ThreadState ts;
    return ts;
  }

  // This thread's pin for `d`. The global domain short-circuits to its dedicated entry (the
  // hot path: every cache lookup lands here); other domains linear-scan the small fixed
  // table — a thread nesting more than kMaxExtraPins distinct private domains is a usage
  // error, and aborting beats silently sharing a pin between domains.
  static Pin& PinFor(EbrDomain* d) {
    ThreadState& ts = Tls();
    if (d == &Global()) {
      return ts.global_pin;
    }
    Pin* free_pin = nullptr;
    for (Pin& p : ts.extra) {
      if (p.domain == d) {
        return p;
      }
      if (p.domain == nullptr && free_pin == nullptr) {
        free_pin = &p;
      }
    }
    if (free_pin == nullptr) {
      std::abort();  // > kMaxExtraPins distinct non-global domains nested on one thread
    }
    free_pin->domain = d;
    return *free_pin;
  }

  // Slot registry: a plain mutex guards the free list and segment publication. Both paths are
  // cold (first EBR use on a thread, thread exit), and the mutex closes two races a lock-free
  // registry had: a Treiber-stack pop is ABA-prone (one slot handed to two threads breaks the
  // pin protocol), and a slot pinned before its segment is visible to the advance scan would
  // let the epoch move past an active reader. TryAdvanceLocked takes the same mutex while
  // scanning, so any slot that can hold a pin belongs to a segment the scan observes.
  Slot* AcquireSlot() {
    std::lock_guard<std::mutex> lock(slots_mu_);
    if (free_slots_ != nullptr) {
      Slot* s = free_slots_;
      free_slots_ = s->next_free;
      return s;
    }
    auto* seg = new Segment();
    // Register the segment before any of its slots can be handed out; the slot returned here
    // cannot be pinned until we release slots_mu_, by which point the scan sees the segment.
    seg->next = segments_;
    segments_ = seg;
    // Claim slot 0 for the caller; chain the rest into the free list.
    for (size_t i = kSlotsPerSegment - 1; i >= 1; --i) {
      seg->slots[i].next_free = free_slots_;
      free_slots_ = &seg->slots[i];
    }
    return &seg->slots[0];
  }

  void ReleaseSlot(Slot* s) {
    s->state.store(kIdle, std::memory_order_release);
    std::lock_guard<std::mutex> lock(slots_mu_);
    s->next_free = free_slots_;
    free_slots_ = s;
  }

  // Returns the deleter list to run (epoch advanced) or nullptr. advanced_empty_ records an
  // advance whose freed bucket happened to be empty, so TryAdvance can still report progress.
  Node* TryAdvanceLocked() {
    advanced_empty_ = false;
    const uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
    {
      // slots_mu_ orders this scan against segment publication in AcquireSlot: a slot pinned
      // before we locked belongs to a segment we will see. A slot handed out after we locked
      // can pin at most the pre-advance epoch g, which never blocks this advance (to g+1)
      // and is seen by the scan for the next one. Lock order is mu_ -> slots_mu_ only;
      // AcquireSlot/ReleaseSlot never take mu_.
      std::lock_guard<std::mutex> slots_lock(slots_mu_);
      for (Segment* seg = segments_; seg != nullptr; seg = seg->next) {
        for (size_t i = 0; i < kSlotsPerSegment; ++i) {
          const uint64_t s = seg->slots[i].state.load(std::memory_order_seq_cst);
          if (s != kIdle && s != g) {
            return nullptr;  // a reader still pins an older epoch
          }
        }
      }
    }
    global_epoch_.store(g + 1, std::memory_order_seq_cst);
    // Everything retired at epoch g-2 ((g+1) % 3's previous occupancy) is now unreachable:
    // the two advances since required every active reader to be at g-1, then at g.
    Bucket& freed = buckets_[(g + 1) % 3];
    Node* run = freed.head;
    advanced_empty_ = run == nullptr;
    pending_ -= freed.count;
    freed.head = nullptr;
    freed.count = 0;
    return run;
  }

  void CollectAll() {
    for (Bucket& b : buckets_) {
      RunDeleters(b.head);
      b.head = nullptr;
      b.count = 0;
    }
    pending_ = 0;
  }

  static void RunDeleters(Node* n) {
    while (n != nullptr) {
      Node* next = n->next;
      n->deleter(n->p);
      delete n;
      n = next;
    }
  }

  std::atomic<uint64_t> global_epoch_{1};  // 0 is the idle sentinel, so epochs start at 1

  std::mutex slots_mu_;  // guards segments_ + free_slots_; taken inside mu_ by the scan
  Segment* segments_ = nullptr;
  Slot* free_slots_ = nullptr;

  mutable std::mutex mu_;  // guards buckets_ + counters; never held while running deleters
  Bucket buckets_[3];
  size_t pending_ = 0;
  uint64_t retires_since_advance_ = 0;
  bool advanced_empty_ = false;
};

}  // namespace txcache

#endif  // SRC_UTIL_EBR_H_
