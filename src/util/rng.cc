#include "src/util/rng.h"

#include <algorithm>

namespace txcache {

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1);
  if (n == 1) {
    return 1;
  }
  // Rejection-inversion sampling (Hörmann & Derflinger). Good for repeated draws with varying n
  // without precomputing harmonic tables.
  const double b = std::pow(2.0, s - 1.0);
  double x;
  double t;
  do {
    const double u = UniformReal(0.0, 1.0);
    const double v = UniformReal(0.0, 1.0);
    x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    if (x < 1.0) {
      x = 1.0;
    }
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      break;
    }
  } while (true);
  return std::min<int64_t>(static_cast<int64_t>(x), n);
}

WeightedChoice::WeightedChoice(std::vector<double> weights) {
  assert(!weights.empty());
  cumulative_.resize(weights.size());
  double total = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    assert(weights[i] >= 0);
    total += weights[i];
    cumulative_[i] = total;
  }
  assert(total > 0);
  for (double& c : cumulative_) {
    c /= total;
  }
  cumulative_.back() = 1.0;
}

size_t WeightedChoice::Pick(Rng& rng) const {
  const double u = rng.UniformReal(0.0, 1.0);
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) {
    return cumulative_.size() - 1;
  }
  return static_cast<size_t>(it - cumulative_.begin());
}

}  // namespace txcache
