// Validity-interval algebra (paper §4.1, §5.2).
//
// A validity interval is a half-open range [lower, upper) of commit timestamps over which some
// value (a tuple, a query result, a cached object) is unchanged. upper == kTimestampInfinity
// means the value is still valid. An IntervalSet is a sorted set of disjoint intervals; it is
// used for the invalidity mask, which is a union of the lifetime intervals of tuples that
// matched a query's predicate but failed its visibility check.
#ifndef SRC_UTIL_INTERVAL_H_
#define SRC_UTIL_INTERVAL_H_

#include <string>
#include <vector>

#include "src/util/types.h"

namespace txcache {

struct Interval {
  Timestamp lower = kTimestampZero;
  Timestamp upper = kTimestampInfinity;  // exclusive; kTimestampInfinity => unbounded

  static Interval All() { return Interval{kTimestampZero, kTimestampInfinity}; }
  static Interval Empty() { return Interval{kTimestampZero, kTimestampZero}; }
  // The degenerate interval containing exactly one timestamp.
  static Interval Point(Timestamp t) { return Interval{t, t + 1}; }

  bool empty() const { return lower >= upper; }
  bool unbounded() const { return upper == kTimestampInfinity; }
  bool Contains(Timestamp t) const { return t >= lower && t < upper; }
  bool Overlaps(const Interval& o) const { return lower < o.upper && o.lower < upper; }

  // Intersection of two intervals (possibly empty).
  Interval Intersect(const Interval& o) const;

  bool operator==(const Interval& o) const = default;

  std::string ToString() const;

  // Serde hook (src/util/serde.h): intervals cross the wire inside cache RPCs.
  template <typename F>
  void ForEachField(F&& f) {
    f(lower);
    f(upper);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(lower);
    f(upper);
  }
};

// A set of timestamps represented as sorted, disjoint, non-adjacent half-open intervals.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv) { Add(iv); }

  // Adds (unions) an interval into the set, merging as needed. Empty intervals are ignored.
  void Add(const Interval& iv);

  // Unions another set into this one.
  void AddAll(const IntervalSet& other);

  bool Contains(Timestamp t) const;
  bool Overlaps(const Interval& iv) const;
  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  void Clear() { intervals_.clear(); }

  const std::vector<Interval>& intervals() const { return intervals_; }

  // Returns the largest sub-interval of `within` that contains `t` and does not intersect this
  // set. This is the final step of validity computation (paper Fig. 4): subtract the invalidity
  // mask from the result-tuple validity, keeping the component around the query timestamp.
  // Returns an empty interval if `t` is not in `within` or is covered by the set.
  Interval MaximalGapAround(Timestamp t, const Interval& within) const;

  // Total number of timestamps covered (saturating; unbounded intervals yield infinity).
  // Exposed for tests and stats.
  Timestamp CoveredCount() const;

  std::string ToString() const;

  bool operator==(const IntervalSet& o) const = default;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace txcache

#endif  // SRC_UTIL_INTERVAL_H_
