// Compact binary serialization used for cache keys and cached values.
//
// The TxCache library derives a cache key from a cacheable function's name and serialized
// arguments, and stores the function's serialized result as the cache value (paper §6.1). The
// format here is a simple, deterministic, length-prefixed binary encoding: identical logical
// values always produce identical bytes, which is what makes the derived keys stable.
//
// Supported out of the box: integral types, bool, double, std::string, std::optional<T>,
// std::pair<A,B>, std::tuple<...>, std::vector<T>. User-defined structs opt in by providing
//   template <typename F> void ForEachField(F&& f) / ... const
// or by specializing Serde<T>.
#ifndef SRC_UTIL_SERDE_H_
#define SRC_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace txcache {

class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutBytes(const void* data, size_t n) {
    const char* p = static_cast<const char*>(data);
    buf_.append(p, n);
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutFixed(T v) {
    // Little-endian fixed-width encoding.
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) {
      return Fail();
    }
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* out) { return GetFixed(out); }
  bool GetU64(uint64_t* out) { return GetFixed(out); }
  bool GetI64(int64_t* out) {
    uint64_t u;
    if (!GetFixed(&u)) {
      return false;
    }
    *out = static_cast<int64_t>(u);
    return true;
  }
  bool GetDouble(double* out) {
    uint64_t bits;
    if (!GetFixed(&bits)) {
      return false;
    }
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool GetBool(bool* out) {
    uint8_t v;
    if (!GetU8(&v)) {
      return false;
    }
    *out = (v != 0);
    return true;
  }
  bool GetString(std::string* out) {
    uint32_t n;
    if (!GetU32(&n) || pos_ + n > data_.size()) {
      return Fail();
    }
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  template <typename T>
  bool GetFixed(T* out) {
    if (pos_ + sizeof(T) > data_.size()) {
      return Fail();
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// Primary serialization trait. Specialize for custom types, or provide ForEachField.
template <typename T, typename Enable = void>
struct Serde;

template <typename T>
void SerializeValue(Writer& w, const T& v) {
  Serde<T>::Write(w, v);
}

template <typename T>
bool DeserializeValue(Reader& r, T* out) {
  return Serde<T>::Read(r, out);
}

// --- built-in specializations ---

template <typename T>
struct Serde<T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>> {
  static void Write(Writer& w, const T& v) { w.PutI64(static_cast<int64_t>(v)); }
  static bool Read(Reader& r, T* out) {
    int64_t v;
    if (!r.GetI64(&v)) {
      return false;
    }
    *out = static_cast<T>(v);
    return true;
  }
};

template <>
struct Serde<bool> {
  static void Write(Writer& w, const bool& v) { w.PutBool(v); }
  static bool Read(Reader& r, bool* out) { return r.GetBool(out); }
};

template <>
struct Serde<double> {
  static void Write(Writer& w, const double& v) { w.PutDouble(v); }
  static bool Read(Reader& r, double* out) { return r.GetDouble(out); }
};

template <>
struct Serde<std::string> {
  static void Write(Writer& w, const std::string& v) { w.PutString(v); }
  static bool Read(Reader& r, std::string* out) { return r.GetString(out); }
};

template <typename T>
struct Serde<std::optional<T>> {
  static void Write(Writer& w, const std::optional<T>& v) {
    w.PutBool(v.has_value());
    if (v.has_value()) {
      SerializeValue(w, *v);
    }
  }
  static bool Read(Reader& r, std::optional<T>* out) {
    bool has;
    if (!r.GetBool(&has)) {
      return false;
    }
    if (!has) {
      out->reset();
      return true;
    }
    T v;
    if (!DeserializeValue(r, &v)) {
      return false;
    }
    *out = std::move(v);
    return true;
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void Write(Writer& w, const std::vector<T>& v) {
    w.PutU32(static_cast<uint32_t>(v.size()));
    for (const T& e : v) {
      SerializeValue(w, e);
    }
  }
  static bool Read(Reader& r, std::vector<T>* out) {
    uint32_t n;
    if (!r.GetU32(&n)) {
      return false;
    }
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      T e;
      if (!DeserializeValue(r, &e)) {
        return false;
      }
      out->push_back(std::move(e));
    }
    return true;
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Write(Writer& w, const std::pair<A, B>& v) {
    SerializeValue(w, v.first);
    SerializeValue(w, v.second);
  }
  static bool Read(Reader& r, std::pair<A, B>* out) {
    return DeserializeValue(r, &out->first) && DeserializeValue(r, &out->second);
  }
};

template <typename... Ts>
struct Serde<std::tuple<Ts...>> {
  static void Write(Writer& w, const std::tuple<Ts...>& v) {
    std::apply([&w](const Ts&... es) { (SerializeValue(w, es), ...); }, v);
  }
  static bool Read(Reader& r, std::tuple<Ts...>* out) {
    return std::apply([&r](Ts&... es) { return (DeserializeValue(r, &es) && ...); }, *out);
  }
};

// Structs that expose `ForEachField(f)` (calling f on each member reference, in a fixed order)
// get serialization for free.
template <typename T>
concept HasForEachField = requires(T t, const T ct) {
  ct.ForEachField([](const auto&) {});
  t.ForEachField([](auto&) {});
};

template <typename T>
struct Serde<T, std::enable_if_t<HasForEachField<T>>> {
  static void Write(Writer& w, const T& v) {
    v.ForEachField([&w](const auto& field) { SerializeValue(w, field); });
  }
  static bool Read(Reader& r, T* out) {
    bool ok = true;
    out->ForEachField([&r, &ok](auto& field) {
      if (ok) {
        ok = DeserializeValue(r, &field);
      }
    });
    return ok;
  }
};

// Convenience: serialize a pack of values to one buffer (used for cache keys).
template <typename... Ts>
std::string SerializeToString(const Ts&... vs) {
  Writer w;
  (SerializeValue(w, vs), ...);
  return w.Take();
}

template <typename T>
Result<T> DeserializeFromString(std::string_view bytes) {
  Reader r(bytes);
  T v;
  if (!DeserializeValue(r, &v) || r.failed() || !r.AtEnd()) {
    return Status::InvalidArgument("malformed serialized value");
  }
  return v;
}

}  // namespace txcache

#endif  // SRC_UTIL_SERDE_H_
