// Clock abstraction. Production components take a Clock* so the discrete-event simulator can
// drive them on virtual time while examples and interactive use run on the system clock.
#ifndef SRC_UTIL_CLOCK_H_
#define SRC_UTIL_CLOCK_H_

#include <chrono>

#include "src/util/types.h"

namespace txcache {

// Interface for obtaining the current wall-clock time (microseconds).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual WallClock Now() const = 0;
};

// Real time, for examples and interactive use.
class SystemClock final : public Clock {
 public:
  WallClock Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

// Manually advanced clock, for tests and the simulator.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(WallClock start = 0) : now_(start) {}

  WallClock Now() const override { return now_; }

  void Advance(WallClock delta) { now_ += delta; }
  void Set(WallClock t) { now_ = t; }

 private:
  WallClock now_;
};

}  // namespace txcache

#endif  // SRC_UTIL_CLOCK_H_
