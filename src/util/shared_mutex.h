// A shared mutex that counts its acquisitions.
//
// The cache shard's read fast path promises "no exclusive lock on a hit"; that promise is
// only testable if the lock itself can report how often each side was taken. The counters are
// relaxed atomics bumped after the acquisition succeeds — two uncontended atomic increments
// per lock/unlock pair.
//
// Instrumentation is compile-time toggleable via TXCACHE_LOCK_STATS (CMake option, default
// ON): tests rely on the counters for their zero-exclusive-lock-on-hit assertions, while
// Release benchmark builds compile them out entirely so the measured hot path carries no
// accounting at all. With stats off the accessors return 0; callers that assert on deltas
// must be built with stats on (the default build is).
#ifndef SRC_UTIL_SHARED_MUTEX_H_
#define SRC_UTIL_SHARED_MUTEX_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

#ifndef TXCACHE_LOCK_STATS
#define TXCACHE_LOCK_STATS 1
#endif

namespace txcache {

class InstrumentedSharedMutex {
 public:
  // BasicLockable / SharedLockable, usable with std::unique_lock / std::shared_lock.
  void lock() {
    mu_.lock();
#if TXCACHE_LOCK_STATS
    exclusive_.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  void unlock() { mu_.unlock(); }
  bool try_lock() {
    if (!mu_.try_lock()) {
      return false;
    }
#if TXCACHE_LOCK_STATS
    exclusive_.fetch_add(1, std::memory_order_relaxed);
#endif
    return true;
  }

  void lock_shared() {
    mu_.lock_shared();
#if TXCACHE_LOCK_STATS
    shared_.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  void unlock_shared() { mu_.unlock_shared(); }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) {
      return false;
    }
#if TXCACHE_LOCK_STATS
    shared_.fetch_add(1, std::memory_order_relaxed);
#endif
    return true;
  }

  // Lifetime totals; safe to read concurrently with lock traffic. Always 0 when
  // TXCACHE_LOCK_STATS is compiled out.
#if TXCACHE_LOCK_STATS
  uint64_t exclusive_acquisitions() const { return exclusive_.load(std::memory_order_relaxed); }
  uint64_t shared_acquisitions() const { return shared_.load(std::memory_order_relaxed); }
#else
  uint64_t exclusive_acquisitions() const { return 0; }
  uint64_t shared_acquisitions() const { return 0; }
#endif

 private:
  std::shared_mutex mu_;
#if TXCACHE_LOCK_STATS
  std::atomic<uint64_t> exclusive_{0};
  std::atomic<uint64_t> shared_{0};
#endif
};

}  // namespace txcache

#endif  // SRC_UTIL_SHARED_MUTEX_H_
