// A shared mutex that counts its acquisitions.
//
// The cache shard's read fast path promises "no exclusive lock on a hit"; that promise is
// only testable if the lock itself can report how often each side was taken. The counters are
// relaxed atomics bumped after the acquisition succeeds — two uncontended atomic increments
// per lock/unlock pair, cheap enough to leave on in production builds and in benchmarks
// (which measure the instrumented lock on both sides of the comparison, so the overhead
// cancels out).
#ifndef SRC_UTIL_SHARED_MUTEX_H_
#define SRC_UTIL_SHARED_MUTEX_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace txcache {

class InstrumentedSharedMutex {
 public:
  // BasicLockable / SharedLockable, usable with std::unique_lock / std::shared_lock.
  void lock() {
    mu_.lock();
    exclusive_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock() { mu_.unlock(); }
  bool try_lock() {
    if (!mu_.try_lock()) {
      return false;
    }
    exclusive_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void lock_shared() {
    mu_.lock_shared();
    shared_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock_shared() { mu_.unlock_shared(); }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) {
      return false;
    }
    shared_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Lifetime totals; safe to read concurrently with lock traffic.
  uint64_t exclusive_acquisitions() const { return exclusive_.load(std::memory_order_relaxed); }
  uint64_t shared_acquisitions() const { return shared_.load(std::memory_order_relaxed); }

 private:
  std::shared_mutex mu_;
  std::atomic<uint64_t> exclusive_{0};
  std::atomic<uint64_t> shared_{0};
};

}  // namespace txcache

#endif  // SRC_UTIL_SHARED_MUTEX_H_
