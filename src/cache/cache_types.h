// Wire-level request/response types and statistics for the cache server.
#ifndef SRC_CACHE_CACHE_TYPES_H_
#define SRC_CACHE_CACHE_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/util/hash.h"
#include "src/util/interval.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace txcache {

// LOOKUP: find the most recent version of `key` whose validity interval intersects
// [bounds_lo, bounds_hi] — the bounds of the caller's pin set (§6.2). `fresh_lo` is the oldest
// timestamp the caller's staleness limit would accept; it is used only to classify misses
// (consistency vs staleness, §8.3), never to widen matches.
struct LookupRequest {
  std::string key;
  // Hash-once contract: Fnv1a(key), computed by the outermost caller (TxCacheClient) and
  // reused unchanged for ring routing, node grouping, shard selection and the shard's map
  // probe — the layers below never rehash the key. Zero means "not computed" (raw callers,
  // tests): each layer then derives it on demand via RequestKeyHash. A wrong hash can only
  // misroute the key into a miss, never violate consistency, so carriers may trust it.
  uint64_t key_hash = 0;
  Timestamp bounds_lo = kTimestampZero;
  Timestamp bounds_hi = kTimestampInfinity;  // kTimestampInfinity when * is in the pin set
  Timestamp fresh_lo = kTimestampZero;

  // Serde hook (src/util/serde.h) for the binary wire protocol (src/net/wire.h).
  template <typename F>
  void ForEachField(F&& f) {
    f(key);
    f(key_hash);
    f(bounds_lo);
    f(bounds_hi);
    f(fresh_lo);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(key);
    f(key_hash);
    f(bounds_lo);
    f(bounds_hi);
    f(fresh_lo);
  }
};

enum class MissKind : uint8_t {
  kNone = 0,     // hit
  kCompulsory,   // key never inserted
  kStaleness,    // versions exist but all are older than the staleness limit
  kCapacity,     // key was present but every version has been evicted
  kConsistency,  // a sufficiently fresh version exists but is inconsistent with the pin set
  // The owning node is down, joining (not yet caught up with the invalidation stream), or the
  // ring could not route the key. Under churn a vanished node is just misses (paper §4) — the
  // caller recomputes; it is never an error that fails a whole batch.
  kNodeUnavailable,
};

const char* MissKindName(MissKind kind);

// Advisory per-function feedback the cache attaches to its responses (automatic-management
// feedback loop). Strictly advisory: a client may use hints to size fills, skip fills it
// expects to be declined, or pace re-fetches of short-lived results — but it must NOT derive
// validity from them. Consistency comes only from validity intervals and the invalidation
// stream; hints are allowed to be stale, partial, or absent at any time, and a client that
// ignores them is always correct.
struct AdvisoryHints {
  // EWMA of the function's realized lifetime (wall-clock µs from insert until the
  // invalidation stream truncated the entry). Zero until the serving node has observed
  // enough truncations to trust the estimate. A caller re-fetching faster than this is
  // mostly refreshing bytes the stream is about to kill anyway.
  uint64_t learned_lifetime_us = 0;
  // The function's EWMA benefit-per-byte at the serving node (µs of recompute saved per
  // byte), the same quantity the admission watermark judges.
  double observed_bpb = 0.0;
  // Fraction of this function's fills the node refused to store (watermark declines plus
  // size-aware declines, probes included). A rate near 1 means fills of this shape are
  // wasted work: shrink them or stop offering them.
  double decline_rate = 0.0;
};

struct LookupResponse {
  bool hit = false;
  MissKind miss = MissKind::kNone;
  // Membership epoch the routing decision was made at (stamped by cluster-level routing; zero
  // when the server was addressed directly). A client seeing it change knows its cached view
  // of the fleet is stale and refreshes routing state instead of treating churn as an error.
  uint64_t ring_epoch = 0;
  // Name of the node that produced this response (stamped by cluster-level routing; empty
  // when the server was addressed directly). With hot-key replication a lookup may be served
  // by a replica rather than the primary, and clients keying per-node state — notably the
  // advisory-hint observations — need the true origin, not the routing decision.
  std::string served_by;
  // Zero-copy payload: on a hit this aliases the shard-resident buffer — never a copy. The
  // shared_ptr keeps the bytes alive and bitwise stable even after the version is evicted,
  // truncated, flushed or the owning node is destroyed; readers therefore never observe a
  // value changing under them. Null on a miss.
  std::shared_ptr<const std::string> value;
  // Fill cost (µs of compute/DB time) the caller reported when this entry was inserted; on a
  // hit this is the recomputation the cache just saved. Clients aggregate it into
  // ClientStats::saved_recompute_cost_us.
  uint64_t fill_cost_us = 0;
  // Effective validity interval of the returned version. For still-valid entries the upper
  // bound is the timestamp of the last invalidation applied before this lookup (§4.2), so the
  // interval is always concrete and race-free.
  Interval interval;
  bool still_valid = false;
  // Dependency tags of a still-valid hit, aliasing the resident tag block (same lifetime
  // rules as `value`). A cacheable function that consumed this value inherits them, so its
  // own cached result is invalidated when this one would be (§6.3). Null when absent.
  std::shared_ptr<const std::vector<InvalidationTag>> tags;
  // Advisory hints for the hit entry's function, aliasing the snapshot bundled with the
  // entry at insert time (hints are advisory and allowed to lag, see AdvisoryHints; fresh
  // snapshots flow to fillers via InsertResponse). Null on misses, under plain LRU, and for
  // unprofiled functions.
  std::shared_ptr<const AdvisoryHints> hints;
  // Write-intent owner token stamped on the served version (optimistic read-write
  // transactions): nonzero when some transaction holds a write intent covering this key —
  // i.e. it is about to invalidate what was just read. A reader inside an optimistic RW
  // transaction that sees a foreign token aborts early instead of discovering the conflict
  // at commit validation. Advisory only: correctness comes from commit-time validation.
  uint64_t intent_owner = 0;

  // Borrow-style accessors for callers that just want to read the payload.
  const std::string& value_ref() const {
    static const std::string kEmpty;
    return value ? *value : kEmpty;
  }
  const std::vector<InvalidationTag>& tags_ref() const {
    static const std::vector<InvalidationTag> kNone;
    return tags ? *tags : kNone;
  }
};

// MULTILOOKUP: a batch of lookups resolved in one round-trip. The server partitions the batch
// across its shards and answers each entry exactly as a standalone LOOKUP would; responses are
// returned in request order. Cluster routing groups entries per owning node before dispatch,
// so a cacheable call fanning out to many keys costs one round-trip per node, not per key.
struct MultiLookupRequest {
  std::vector<LookupRequest> lookups;

  template <typename F>
  void ForEachField(F&& f) {
    f(lookups);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(lookups);
  }
};

struct MultiLookupResponse {
  std::vector<LookupResponse> responses;
  uint64_t ring_epoch = 0;  // membership epoch the batch was routed at
};

// PUT: store the result of a cacheable-function call. `computed_at` is the snapshot the value
// was computed from; the database vouches for validity through that timestamp, so the server
// only needs to replay invalidations later than it when the entry claims to be still valid.
struct InsertRequest {
  std::string key;
  // Fnv1a(key); same hash-once contract as LookupRequest::key_hash (zero = not computed).
  uint64_t key_hash = 0;
  std::string value;
  Interval interval;  // unbounded upper => still valid, subscribe to invalidations
  Timestamp computed_at = kTimestampZero;
  std::vector<InvalidationTag> tags;
  // Wall-clock compute/DB time (µs) the client spent producing this value at miss-fill time.
  // The cost-aware policy keys admission and eviction off benefit-per-byte derived from it;
  // zero (legacy callers) is always safe — it can never trigger an admission reject on its own
  // because the adaptive watermark stays at zero until priced entries start being evicted.
  uint64_t fill_cost_us = 0;

  // Serde hook (src/util/serde.h) for the binary wire protocol (src/net/wire.h).
  template <typename F>
  void ForEachField(F&& f) {
    f(key);
    f(key_hash);
    f(value);
    f(interval);
    f(computed_at);
    f(tags);
    f(fill_cost_us);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(key);
    f(key_hash);
    f(value);
    f(interval);
    f(computed_at);
    f(tags);
    f(fill_cost_us);
  }
};

// PUT acknowledgement from cluster-level routing: the storage/admission outcome plus the
// membership epoch the routing decision was made at. kUnavailable means the owning node is
// down/joining or the key was unroutable — the fill is simply not stored, never an error.
struct InsertResponse {
  Status status;
  uint64_t ring_epoch = 0;
  // Name of the node that stored (or declined) the fill; same contract as
  // LookupResponse::served_by. Empty when the server was addressed directly.
  std::string served_by;
  // Advisory hints for the inserted function, fresh as of this admission decision (attached
  // to accepts AND declines — a declined caller is exactly the one that should adapt its
  // fill sizing). Null when the node keeps no profile for the function.
  std::shared_ptr<const AdvisoryHints> hints;
};

// WRITE INTENT: check-and-acquire / release of per-key write-intent ownership (optimistic
// read-write transactions, ClusterSTM-style). A transaction that will invalidate a key
// acquires an intent on it before writing; a concurrent acquirer or an in-transaction reader
// that encounters a foreign intent aborts early with backoff instead of paying for a doomed
// commit. Intents are strictly advisory — serializability comes from commit-time read-set
// validation in the database — so a node may drop them wholesale on crash, flush, or rejoin
// without any correctness consequence (only a briefly higher abort rate).
struct IntentRequest {
  std::string key;
  // Fnv1a(key); same hash-once contract as LookupRequest::key_hash (zero = not computed).
  uint64_t key_hash = 0;
  // Owner token (the client's database transaction id); nonzero.
  uint64_t txn_id = 0;

  // Serde hook (src/util/serde.h) for the binary wire protocol (src/net/wire.h).
  template <typename F>
  void ForEachField(F&& f) {
    f(key);
    f(key_hash);
    f(txn_id);
  }
  template <typename F>
  void ForEachField(F&& f) const {
    f(key);
    f(key_hash);
    f(txn_id);
  }
};

struct IntentResponse {
  // Ok = acquired/released (idempotent re-acquire by the same owner is Ok too); kConflict =
  // held by another transaction; kUnavailable = owning node down/joining/unroutable — treated
  // as vacuous success by callers, since a node serving no reads protects nothing.
  Status status;
  uint64_t ring_epoch = 0;  // membership epoch the routing decision was made at
  std::string served_by;
  uint64_t holder = 0;  // on kConflict: the token that owns the intent
};

// The function-name prefix of a cache key built by MakeCacheKey (length-prefixed serde
// string). Falls back to the whole key when the prefix does not parse (raw keys used by tests
// and tools), so every key always maps to exactly one "function" for cost accounting.
std::string CacheKeyFunction(const std::string& key);

// The request's carried key hash, or a freshly computed one when the caller did not fill it
// (see LookupRequest::key_hash for the contract). On the production hot path the client
// computes the hash exactly once and every layer below lands here on the carried value.
inline uint64_t RequestKeyHash(const LookupRequest& req) {
  return req.key_hash != 0 ? req.key_hash : Fnv1a(req.key);
}
inline uint64_t RequestKeyHash(const InsertRequest& req) {
  return req.key_hash != 0 ? req.key_hash : Fnv1a(req.key);
}
inline uint64_t RequestKeyHash(const IntentRequest& req) {
  return req.key_hash != 0 ? req.key_hash : Fnv1a(req.key);
}

// Capacity replacement policy for a cache node.
enum class EvictionPolicy : uint8_t {
  kLru,       // classic least-recently-used (the pre-cost-aware behavior)
  // Automatic management (paper title, §7 of the roadmap): evict versions whose validity
  // interval is already closed first (they can only serve pinned old snapshots), then the
  // still-valid entry with the lowest benefit-per-byte score; admission declines functions
  // whose observed benefit-per-byte sits below an adaptive watermark.
  kCostAware,
};

// How lookups traverse a shard. kSharedZeroCopy is the production path; kExclusiveCopy
// reproduces the pre-fast-path behavior and exists so benchmarks can measure the difference
// inside one binary.
enum class ReadPath : uint8_t {
  // Hits take the shard lock's SHARED side, alias the resident value/tag buffers (no deep
  // copy) and defer all LRU/score/profile bookkeeping into a bounded per-shard touch buffer
  // drained by the next exclusive-section operation.
  kSharedZeroCopy,
  // Baseline: exclusive lock per lookup, deep-copied payloads, inline LRU/score maintenance.
  kExclusiveCopy,
};

// Tuning knobs for a cache node. Shared by the thin CacheServer frontend and its shards.
struct CacheOptions {
  size_t capacity_bytes = 64 << 20;
  // Versions invalidated more than this long ago (wall clock) cannot satisfy any transaction
  // and are eagerly evicted. Matches the largest staleness limit the deployment uses.
  WallClock max_staleness = Seconds(120);
  // How many commit timestamps of per-tag invalidation history to retain for insert-time
  // replay. Inserts whose computed_at is older than the retained floor have their still-valid
  // claim truncated conservatively.
  Timestamp history_retention = 100'000;
  // Run the staleness sweep after any one shard has seen this many mutating operations. The
  // counter is per shard (not global) so skewed traffic concentrated on one shard still
  // triggers eager eviction promptly.
  uint64_t sweep_interval_ops = 2048;
  // Lock stripes inside one cache node. Each shard owns its own version chains, tag index,
  // LRU list and invalidation history, keyed by hash(key) % num_shards.
  size_t num_shards = 8;

  // --- read fast path ---
  ReadPath read_path = ReadPath::kSharedZeroCopy;
  // Per-shard capacity of the deferred-touch buffer. A hit whose record does not fit still
  // refreshes the version's recency tick atomically; the dropped policy refresh is repaired
  // at the next drain, which re-sorts the LRU order from the ticks (see docs/architecture.md
  // §"Read fast path").
  size_t touch_buffer_capacity = 1024;
  // Touch-buffer / lookup-counter stripes per shard. Threads map to stripes by a stable
  // per-thread seed, so concurrent hitters spread over distinct cache lines. Each stripe gets
  // the full touch_buffer_capacity (single-threaded behavior is unchanged by striping).
  // 0 = auto: min(hardware_concurrency, 16).
  size_t touch_buffer_stripes = 0;

  // --- automatic management (cost-aware admission + eviction) ---
  EvictionPolicy policy = EvictionPolicy::kCostAware;
  // EWMA smoothing for the per-function realized benefit-per-byte, updated when an entry of
  // that function is evicted (realized = hits * fill_cost / bytes over the entry's lifetime).
  double benefit_ewma_alpha = 0.3;
  // Admission gate: a function is declined only once it has been observed at least this many
  // times (optimistic start for new functions)...
  uint64_t admission_min_samples = 16;
  // ...and its EWMA benefit-per-byte has fallen below this fraction of the node's aging floor
  // (the score at which entries are currently being evicted — entries below it would be
  // evicted almost immediately, so storing them is wasted work).
  double admission_watermark_fraction = 0.5;
  // Every Nth fill of a rejected function is admitted anyway as a probe, so a function whose
  // workload turned hot can re-earn admission through realized hits. 0 disables probing.
  uint64_t admission_probe_interval = 16;
  // Upper bound on tracked function profiles (and per-shard hit counters). Real deployments
  // have a fixed set of MAKE-CACHEABLE registrations, far below this; the cap exists so raw
  // ad-hoc keys (each its own accounting bucket) cannot grow the side maps without bound.
  // Functions beyond the cap are simply not profiled — and never declined.
  size_t max_function_profiles = 4096;

  // --- size-aware admission ---
  // No single entry may exceed this fraction of one shard's slice of the byte budget
  // (capacity_bytes / num_shards): a multi-MB value that would monopolize its shard is
  // declined kDeclinedTooLarge regardless of benefit. <= 0 disables the guard.
  double max_entry_fraction = 0.5;
  // Fills at least this large additionally run the displacement comparison when the node is
  // at byte pressure: the fill's benefit (its fill cost — what a future hit would save) is
  // compared against the summed remaining benefit of the victims its bytes would displace,
  // and a fill that loses is declined kDeclinedTooLarge. Small fills keep the cheaper
  // watermark-only gate (they displace at most ~one victim, which the aging floor already
  // approximates); SIZE_MAX disables the comparison entirely (the PR-2 behavior).
  size_t displacement_check_bytes = 16 << 10;

  // --- per-function TTL learning ---
  // EWMA smoothing for realized lifetimes (wall clock from insert until the invalidation
  // stream truncates the entry), learned per CacheKeyFunction.
  double lifetime_ewma_alpha = 0.3;
  // A function's learned lifetime is advisory-only (zero) until this many truncations have
  // been observed — young functions must not be TTL-demoted off one unlucky sample.
  uint64_t lifetime_min_samples = 4;
  // A still-valid entry resident longer than slack x its function's learned lifetime is
  // demoted (at the next staleness sweep) to a stale-first eviction candidate: the stream
  // will almost certainly kill it soon, so under capacity pressure it goes before younger
  // entries. Demotion never touches the entry's validity — it still serves hits with its
  // true interval until genuinely invalidated or evicted. <= 0 disables TTL demotion.
  double ttl_expiry_slack = 1.5;

  // --- warm rejoin (snapshot persistence) ---
  // With a SnapshotStore attached (CacheServer::set_snapshot_store), persist a full snapshot
  // after every N applied invalidation messages. A cold-restarted node then rejoins at most N
  // stream messages behind its snapshot instead of empty; the residual gap is catch-up
  // replayed from the bus history (or floored conservatively when even that is gone).
  // 0 disables periodic persistence (explicit PersistSnapshot() still works).
  uint64_t snapshot_interval_messages = 256;

  // --- hot-key replication ---
  // Sample every Nth lookup hit into the per-stripe hot-key sketch that feeds top-k hot-key
  // replication (CacheServer::HarvestHotKeys). Sampling keeps the hit path at one extra
  // relaxed counter per hit; the sketch itself is touched only on the sampled ones.
  // 0 disables hot-key tracking.
  uint64_t hot_key_sample_interval = 16;
  // With a replication hook attached (CacheServer::set_replication_hook — CacheCluster
  // installs one per node under EnableAutoReplication), fire it after every N applied
  // invalidation deliveries, exactly like the snapshot-persistence cadence: replication then
  // rides the stream traffic itself, with no driver pumping ReplicateHotKeys. 0 disables the
  // cadence (explicit ReplicateHotKeys calls still work).
  uint64_t replication_interval_messages = 128;
};

// Per-function cost/benefit profile surfaced through CacheServer::FunctionStats(). `hits` is
// merged from the shards' per-function hit counters; the rest is maintained by the frontend's
// admission bookkeeping.
struct FunctionStatsEntry {
  std::string function;
  uint64_t fills = 0;            // insert attempts observed (accepted or declined)
  // Watermark triggers for this function, INCLUDING the every-Nth triggers admitted as
  // probes. The node-level CacheStats::admission_rejects counts only actual declines, so the
  // two differ by exactly the probe count.
  uint64_t admission_rejects = 0;
  // Size-aware declines (max_entry_fraction guard or lost displacement comparison).
  uint64_t declined_too_large = 0;
  uint64_t hits = 0;
  uint64_t bytes_inserted = 0;   // estimated bytes of all attempted fills
  uint64_t fill_cost_total_us = 0;
  double ewma_benefit_per_byte = 0.0;  // µs of recompute saved per byte-lifetime, smoothed
  // TTL learning: stream truncations observed for this function and the EWMA of the
  // realized lifetimes they revealed (wall-clock µs from insert to truncation). Zero
  // truncations means the function has never been invalidated while resident.
  uint64_t truncations = 0;
  double ewma_lifetime_us = 0.0;
};

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t miss_compulsory = 0;
  uint64_t miss_staleness = 0;
  uint64_t miss_capacity = 0;
  uint64_t miss_consistency = 0;
  uint64_t inserts = 0;
  uint64_t duplicate_inserts = 0;
  uint64_t invalidation_messages = 0;
  uint64_t invalidation_truncations = 0;
  uint64_t insert_time_truncations = 0;  // still-valid claims cut by replayed history
  uint64_t evictions_lru = 0;
  uint64_t evictions_stale = 0;
  // Cost-aware capacity evictions: a closed-interval version evicted by the stale-first
  // preference, and a still-valid version evicted for having the lowest benefit-per-byte.
  uint64_t evictions_capacity_stale = 0;
  uint64_t evictions_cost = 0;
  uint64_t eviction_bytes_reclaimed = 0;  // bytes freed by capacity evictions (all policies)
  uint64_t admission_rejects = 0;  // fills declined by the benefit-per-byte watermark
  uint64_t admission_probes = 0;   // fills of rejected functions admitted as re-measurement probes
  // Size-aware admission declines (kDeclinedTooLarge): the entry exceeded its shard's
  // max_entry_fraction slice, or its benefit lost the displacement comparison against the
  // victims it would evict. Counted separately from the watermark's admission_rejects.
  uint64_t admission_rejects_too_large = 0;
  // Still-valid versions demoted to stale-first eviction candidates because they outlived
  // their function's learned lifetime (validity untouched; eviction preference only).
  uint64_t ttl_demotions = 0;
  uint64_t reorder_buffered = 0;  // out-of-order stream messages held back
  // Membership churn: lookups answered as misses because the owning node was down, joining,
  // or unroutable (counted by the refusing node and by cluster routing), plus how each rejoin
  // resolved — catch-up replay from the bus history vs. flush-and-adopt.
  uint64_t nodes_unavailable = 0;
  uint64_t join_catchups = 0;
  uint64_t join_flushes = 0;
  // Rejoins that restored cached state from a persisted snapshot (warm rejoin) instead of
  // flushing: the snapshot's stream position was adopted and only the residual gap was
  // replayed or conservatively floored.
  uint64_t join_snapshot_restores = 0;
  // Write-intent traffic (optimistic read-write transactions): successful check-and-acquires,
  // acquires refused because another transaction held the key, releases, and intents dropped
  // wholesale by flush/crash/rejoin (advisory state only — see IntentRequest).
  uint64_t intent_acquires = 0;
  uint64_t intent_conflicts = 0;
  uint64_t intent_releases = 0;
  uint64_t intents_cleared = 0;

  // Counter-wise accumulation (fleet aggregation) and difference (measurement-window deltas:
  // end snapshot minus start snapshot). Both walk the single field list below, so a counter
  // added to the struct but missed there is one local omission — not a silently wrong window
  // delta hand-maintained in some distant benchmark.
  CacheStats& operator+=(const CacheStats& o) {
    ForEachPair(o, [](uint64_t& a, uint64_t b) { a += b; });
    return *this;
  }
  CacheStats& operator-=(const CacheStats& o) {
    ForEachPair(o, [](uint64_t& a, uint64_t b) { a -= b; });
    return *this;
  }

  uint64_t capacity_evictions() const {
    return evictions_lru + evictions_capacity_stale + evictions_cost;
  }

  uint64_t misses() const {
    return miss_compulsory + miss_staleness + miss_capacity + miss_consistency +
           nodes_unavailable;
  }
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

 private:
  template <typename Fn>
  void ForEachPair(const CacheStats& o, Fn fn) {
    uint64_t CacheStats::*fields[] = {
        &CacheStats::lookups, &CacheStats::hits, &CacheStats::miss_compulsory,
        &CacheStats::miss_staleness, &CacheStats::miss_capacity, &CacheStats::miss_consistency,
        &CacheStats::inserts, &CacheStats::duplicate_inserts,
        &CacheStats::invalidation_messages, &CacheStats::invalidation_truncations,
        &CacheStats::insert_time_truncations, &CacheStats::evictions_lru,
        &CacheStats::evictions_stale, &CacheStats::evictions_capacity_stale,
        &CacheStats::evictions_cost, &CacheStats::eviction_bytes_reclaimed,
        &CacheStats::admission_rejects, &CacheStats::admission_probes,
        &CacheStats::admission_rejects_too_large, &CacheStats::ttl_demotions,
        &CacheStats::reorder_buffered, &CacheStats::nodes_unavailable,
        &CacheStats::join_catchups, &CacheStats::join_flushes,
        &CacheStats::join_snapshot_restores, &CacheStats::intent_acquires,
        &CacheStats::intent_conflicts, &CacheStats::intent_releases,
        &CacheStats::intents_cleared};
    for (auto field : fields) {
      fn(this->*field, o.*field);
    }
  }
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_TYPES_H_
