// Wire-level request/response types and statistics for the cache server.
#ifndef SRC_CACHE_CACHE_TYPES_H_
#define SRC_CACHE_CACHE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/util/interval.h"
#include "src/util/types.h"

namespace txcache {

// LOOKUP: find the most recent version of `key` whose validity interval intersects
// [bounds_lo, bounds_hi] — the bounds of the caller's pin set (§6.2). `fresh_lo` is the oldest
// timestamp the caller's staleness limit would accept; it is used only to classify misses
// (consistency vs staleness, §8.3), never to widen matches.
struct LookupRequest {
  std::string key;
  Timestamp bounds_lo = kTimestampZero;
  Timestamp bounds_hi = kTimestampInfinity;  // kTimestampInfinity when * is in the pin set
  Timestamp fresh_lo = kTimestampZero;
};

enum class MissKind : uint8_t {
  kNone = 0,     // hit
  kCompulsory,   // key never inserted
  kStaleness,    // versions exist but all are older than the staleness limit
  kCapacity,     // key was present but every version has been evicted
  kConsistency,  // a sufficiently fresh version exists but is inconsistent with the pin set
};

const char* MissKindName(MissKind kind);

struct LookupResponse {
  bool hit = false;
  MissKind miss = MissKind::kNone;
  std::string value;
  // Effective validity interval of the returned version. For still-valid entries the upper
  // bound is the timestamp of the last invalidation applied before this lookup (§4.2), so the
  // interval is always concrete and race-free.
  Interval interval;
  bool still_valid = false;
  // Dependency tags of a still-valid hit. A cacheable function that consumed this value
  // inherits them, so its own cached result is invalidated when this one would be (§6.3).
  std::vector<InvalidationTag> tags;
};

// PUT: store the result of a cacheable-function call. `computed_at` is the snapshot the value
// was computed from; the database vouches for validity through that timestamp, so the server
// only needs to replay invalidations later than it when the entry claims to be still valid.
struct InsertRequest {
  std::string key;
  std::string value;
  Interval interval;  // unbounded upper => still valid, subscribe to invalidations
  Timestamp computed_at = kTimestampZero;
  std::vector<InvalidationTag> tags;
};

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t miss_compulsory = 0;
  uint64_t miss_staleness = 0;
  uint64_t miss_capacity = 0;
  uint64_t miss_consistency = 0;
  uint64_t inserts = 0;
  uint64_t duplicate_inserts = 0;
  uint64_t invalidation_messages = 0;
  uint64_t invalidation_truncations = 0;
  uint64_t insert_time_truncations = 0;  // still-valid claims cut by replayed history
  uint64_t evictions_lru = 0;
  uint64_t evictions_stale = 0;
  uint64_t reorder_buffered = 0;  // out-of-order stream messages held back

  uint64_t misses() const {
    return miss_compulsory + miss_staleness + miss_capacity + miss_consistency;
  }
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_TYPES_H_
