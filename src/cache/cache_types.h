// Wire-level request/response types and statistics for the cache server.
#ifndef SRC_CACHE_CACHE_TYPES_H_
#define SRC_CACHE_CACHE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bus/invalidation.h"
#include "src/util/interval.h"
#include "src/util/types.h"

namespace txcache {

// LOOKUP: find the most recent version of `key` whose validity interval intersects
// [bounds_lo, bounds_hi] — the bounds of the caller's pin set (§6.2). `fresh_lo` is the oldest
// timestamp the caller's staleness limit would accept; it is used only to classify misses
// (consistency vs staleness, §8.3), never to widen matches.
struct LookupRequest {
  std::string key;
  Timestamp bounds_lo = kTimestampZero;
  Timestamp bounds_hi = kTimestampInfinity;  // kTimestampInfinity when * is in the pin set
  Timestamp fresh_lo = kTimestampZero;
};

enum class MissKind : uint8_t {
  kNone = 0,     // hit
  kCompulsory,   // key never inserted
  kStaleness,    // versions exist but all are older than the staleness limit
  kCapacity,     // key was present but every version has been evicted
  kConsistency,  // a sufficiently fresh version exists but is inconsistent with the pin set
};

const char* MissKindName(MissKind kind);

struct LookupResponse {
  bool hit = false;
  MissKind miss = MissKind::kNone;
  std::string value;
  // Effective validity interval of the returned version. For still-valid entries the upper
  // bound is the timestamp of the last invalidation applied before this lookup (§4.2), so the
  // interval is always concrete and race-free.
  Interval interval;
  bool still_valid = false;
  // Dependency tags of a still-valid hit. A cacheable function that consumed this value
  // inherits them, so its own cached result is invalidated when this one would be (§6.3).
  std::vector<InvalidationTag> tags;
};

// MULTILOOKUP: a batch of lookups resolved in one round-trip. The server partitions the batch
// across its shards and answers each entry exactly as a standalone LOOKUP would; responses are
// returned in request order. Cluster routing groups entries per owning node before dispatch,
// so a cacheable call fanning out to many keys costs one round-trip per node, not per key.
struct MultiLookupRequest {
  std::vector<LookupRequest> lookups;
};

struct MultiLookupResponse {
  std::vector<LookupResponse> responses;
};

// PUT: store the result of a cacheable-function call. `computed_at` is the snapshot the value
// was computed from; the database vouches for validity through that timestamp, so the server
// only needs to replay invalidations later than it when the entry claims to be still valid.
struct InsertRequest {
  std::string key;
  std::string value;
  Interval interval;  // unbounded upper => still valid, subscribe to invalidations
  Timestamp computed_at = kTimestampZero;
  std::vector<InvalidationTag> tags;
};

// Tuning knobs for a cache node. Shared by the thin CacheServer frontend and its shards.
struct CacheOptions {
  size_t capacity_bytes = 64 << 20;
  // Versions invalidated more than this long ago (wall clock) cannot satisfy any transaction
  // and are eagerly evicted. Matches the largest staleness limit the deployment uses.
  WallClock max_staleness = Seconds(120);
  // How many commit timestamps of per-tag invalidation history to retain for insert-time
  // replay. Inserts whose computed_at is older than the retained floor have their still-valid
  // claim truncated conservatively.
  Timestamp history_retention = 100'000;
  // Run the staleness sweep after any one shard has seen this many mutating operations. The
  // counter is per shard (not global) so skewed traffic concentrated on one shard still
  // triggers eager eviction promptly.
  uint64_t sweep_interval_ops = 2048;
  // Lock stripes inside one cache node. Each shard owns its own version chains, tag index,
  // LRU list and invalidation history, keyed by hash(key) % num_shards.
  size_t num_shards = 8;
};

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t miss_compulsory = 0;
  uint64_t miss_staleness = 0;
  uint64_t miss_capacity = 0;
  uint64_t miss_consistency = 0;
  uint64_t inserts = 0;
  uint64_t duplicate_inserts = 0;
  uint64_t invalidation_messages = 0;
  uint64_t invalidation_truncations = 0;
  uint64_t insert_time_truncations = 0;  // still-valid claims cut by replayed history
  uint64_t evictions_lru = 0;
  uint64_t evictions_stale = 0;
  uint64_t reorder_buffered = 0;  // out-of-order stream messages held back

  CacheStats& operator+=(const CacheStats& o) {
    lookups += o.lookups;
    hits += o.hits;
    miss_compulsory += o.miss_compulsory;
    miss_staleness += o.miss_staleness;
    miss_capacity += o.miss_capacity;
    miss_consistency += o.miss_consistency;
    inserts += o.inserts;
    duplicate_inserts += o.duplicate_inserts;
    invalidation_messages += o.invalidation_messages;
    invalidation_truncations += o.invalidation_truncations;
    insert_time_truncations += o.insert_time_truncations;
    evictions_lru += o.evictions_lru;
    evictions_stale += o.evictions_stale;
    reorder_buffered += o.reorder_buffered;
    return *this;
  }

  uint64_t misses() const {
    return miss_compulsory + miss_staleness + miss_capacity + miss_consistency;
  }
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_TYPES_H_
