#include "src/cache/cache_shard.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <thread>

namespace txcache {

namespace {

// Fixed per-version bookkeeping overhead charged against the byte budget.
constexpr size_t kVersionOverhead = 96;

size_t TagBytes(const std::vector<InvalidationTag>& tags) {
  size_t n = 0;
  for (const InvalidationTag& t : tags) {
    n += t.table.size() + t.index.size() + t.key.size() + 8;
  }
  return n;
}

void InsertSorted(std::vector<Timestamp>& history, Timestamp ts) {
  auto it = std::lower_bound(history.begin(), history.end(), ts);
  if (it == history.end() || *it != ts) {
    history.insert(it, ts);
  }
}

Timestamp FirstAfter(const std::vector<Timestamp>& history, Timestamp after) {
  auto it = std::upper_bound(history.begin(), history.end(), after);
  return it == history.end() ? kTimestampInfinity : *it;
}

// Stable per-thread stripe seed; each thread maps to one touch-buffer / stats stripe via
// seed % stripe_count, so concurrent hitters spread over stripes without coordination.
uint32_t ThreadStripeSeed() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t seed = next.fetch_add(1, std::memory_order_relaxed);
  return seed;
}

size_t DefaultStripes(const CacheOptions& options) {
  if (options.touch_buffer_stripes > 0) {
    return options.touch_buffer_stripes;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc < 1 ? 1 : (hc > 16 ? 16 : hc);
}

// Node-global LRU ticks, handed out in thread-local batches so a hit touches the shared
// ticker once per kTickBatch allocations instead of once per hit. Ticks stay strictly
// monotone per (thread, ticker) — which is exactly what the single-threaded LRU model tests
// require — while cross-thread ordering is approximate within a batch, matching the already
// best-effort cross-shard eviction comparisons. The small cache is keyed by ticker address
// (one node = one ticker); rotation evicts the least recently added entry.
uint64_t NextTick(std::atomic<uint64_t>* ticker) {
  constexpr uint64_t kTickBatch = 64;
  struct Entry {
    std::atomic<uint64_t>* ticker = nullptr;
    uint64_t next = 0;
    uint64_t end = 0;
  };
  thread_local Entry entries[4];
  thread_local uint32_t victim = 0;
  for (Entry& e : entries) {
    if (e.ticker == ticker) {
      // A ticker that carved out this batch is always >= the batch end; a smaller value
      // means the address was reused by a fresh ticker (new server at a recycled address)
      // and the cached batch is stale.
      if (e.next == e.end || ticker->load(std::memory_order_relaxed) < e.end) {
        e.next = ticker->fetch_add(kTickBatch, std::memory_order_relaxed);
        e.end = e.next + kTickBatch;
      }
      return e.next++;
    }
  }
  Entry& e = entries[victim++ % 4];
  e.ticker = ticker;
  e.next = ticker->fetch_add(kTickBatch, std::memory_order_relaxed);
  e.end = e.next + kTickBatch;
  return e.next++;
}

}  // namespace

CacheShard::CacheShard(const Clock* clock, const CacheOptions& options,
                       std::atomic<size_t>* global_bytes, std::atomic<uint64_t>* touch_ticker,
                       std::atomic<double>* aging_floor, FunctionAdvisor* advisor,
                       FunctionInterner* interner, TagSetInterner* tag_interner)
    : clock_(clock),
      options_(options),
      global_bytes_(global_bytes),
      touch_ticker_(touch_ticker),
      aging_floor_(aging_floor),
      advisor_(advisor),
      interner_(interner),
      tag_interner_(tag_interner),
      domain_(&EbrDomain::Global()),
      table_(domain_),
      stripe_count_(DefaultStripes(options)),
      touch_buffer_(stripe_count_, options.touch_buffer_capacity),
      lookup_stats_(std::make_unique<LookupStatsStripe[]>(stripe_count_)) {}

CacheShard::~CacheShard() {
  Flush();
  // Best-effort reclaim of everything just retired (and anything older): with no readers
  // active this empties the domain's lists, so sanitized test runs exit with nothing held
  // back. Leftovers (a live reader elsewhere) are freed by the domain at process teardown.
  domain_->Synchronize();
}

size_t CacheShard::EstimateBytes(const InsertRequest& req) {
  return kVersionOverhead + req.key.size() + req.value.size() + TagBytes(req.tags);
}

size_t CacheShard::StripeIndex() const { return ThreadStripeSeed() % stripe_count_; }

void CacheShard::AddToScoreIndexLocked(Version* v) {
  // GreedyDual-Size score: the node's aging floor (score of the most valuable entry evicted so
  // far) plus this entry's benefit-per-byte. Refreshed to the current floor when a hit batch
  // drains, so entries that stop earning hits sink back toward the floor and get evicted.
  const double bpb =
      v->bytes == 0 ? 0.0 : static_cast<double>(v->fill_cost_us) / static_cast<double>(v->bytes);
  v->score = aging_floor_->load(std::memory_order_relaxed) + bpb;
  v->score_it = score_index_.emplace(v->score, v);
  v->in_score_index = true;
}

void CacheShard::AddToStaleListLocked(Version* v) {
  v->stale_seq = NextTick(touch_ticker_);
  stale_lru_.push_back(v);
  v->stale_it = std::prev(stale_lru_.end());
  v->in_stale_list = true;
}

void CacheShard::DetachPolicyStateLocked(Version* v) {
  if (v->in_score_index) {
    score_index_.erase(v->score_it);
    v->in_score_index = false;
  }
  if (v->in_stale_list) {
    stale_lru_.erase(v->stale_it);
    v->in_stale_list = false;
  }
}

void CacheShard::AttributeHitsLocked(Version* v) {
  if (!cost_aware() || v->fn_id == 0) {
    return;
  }
  const uint64_t total = v->hit_count.load(std::memory_order_relaxed);
  if (total == v->attributed_hits) {
    return;
  }
  // Per-function hit attribution into a dense vector indexed by the interned id (the
  // interner's cap bounds it like the frontend's profile map).
  if (v->fn_id >= fn_hits_.size()) {
    fn_hits_.resize(v->fn_id + 1, 0);
  }
  fn_hits_[v->fn_id] += total - v->attributed_hits;
  v->attributed_hits = total;
}

void CacheShard::DrainTouchesLocked() {
  const bool overflowed = touch_overflow_.exchange(false, std::memory_order_relaxed);
  drain_scratch_.clear();
  for (size_t s = 0; s < touch_buffer_.stripe_count(); ++s) {
    const size_t n = touch_buffer_.pending(s);
    for (size_t i = 0; i < n; ++i) {
      Version* v = touch_buffer_.slot(s, i);
      // Readers are not quiesced against this drain: a slot may hold null (claimed but not
      // yet written), a pointer a previous exclusive section removed, or a stale value from
      // an earlier round (Reset raced a straggler). The live-set check makes all of those
      // inert; a stale-but-live pointer just re-touches at the version's own current tick.
      if (v != nullptr && live_.count(v) != 0) {
        drain_scratch_.push_back(v);
      }
    }
  }
  touch_buffer_.Reset();
  if (drain_scratch_.empty() && !overflowed) {
    return;
  }
  // Unique versions, oldest current tick first: splicing to the front in ascending-tick order
  // leaves lru_ fully sorted by last touch among the drained set.
  std::sort(drain_scratch_.begin(), drain_scratch_.end());
  drain_scratch_.erase(std::unique(drain_scratch_.begin(), drain_scratch_.end()),
                       drain_scratch_.end());
  std::sort(drain_scratch_.begin(), drain_scratch_.end(), [](Version* a, Version* b) {
    return a->touch_tick.load(std::memory_order_relaxed) <
           b->touch_tick.load(std::memory_order_relaxed);
  });
  for (Version* v : drain_scratch_) {
    lru_.erase(v->lru_it);
    lru_.push_front(v);
    v->lru_it = lru_.begin();
    if (v->in_score_index) {
      // One refresh per hit batch instead of one per hit; the resulting score (current floor
      // + benefit-per-byte) is identical either way.
      score_index_.erase(v->score_it);
      AddToScoreIndexLocked(v);
    }
    AttributeHitsLocked(v);
  }
  if (overflowed) {
    // Some touches never made it into the buffers; their recency lives only in the
    // per-version ticks. Re-sort the whole list so LRU monotonicity (never evict a more
    // recently touched version while a less recently touched one stays resident) survives
    // the overflow. std::list::sort relinks nodes, so every Version::lru_it stays valid.
    lru_.sort([](const Version* a, const Version* b) {
      return a->touch_tick.load(std::memory_order_relaxed) >
             b->touch_tick.load(std::memory_order_relaxed);
    });
    if (cost_aware()) {
      // Dropped records also skipped their per-function attribution; the hit_count deltas
      // still know about those hits, so a full fold keeps the profiles lossless.
      for (Version* v : lru_) {
        AttributeHitsLocked(v);
      }
    }
  }
  drain_scratch_.clear();
}

EvictedVersion CacheShard::MakeEvictedLocked(const Version& v) const {
  EvictedVersion out;
  out.bytes = v.bytes;
  out.fill_cost_us = v.fill_cost_us;
  out.hits = v.hit_count.load(std::memory_order_relaxed);
  if (v.fn_id != 0) {
    out.function = interner_->Name(v.fn_id);  // cold path; never on a hit
  }
  return out;
}

Timestamp CacheShard::EffectiveUpper(const Version& v, Timestamp last_ts) {
  if (!v.still_valid.load(std::memory_order_acquire)) {
    // The acquire above pairs with truncation's release store of still_valid, making the
    // final upper visible.
    return v.upper.load(std::memory_order_relaxed);
  }
  // A still-valid entry is known valid through the later of (a) the snapshot it was computed
  // from (the database vouches for it) and (b) the last invalidation this caller observed
  // applied (the stream would have truncated it otherwise). +1 converts an inclusive
  // timestamp to the exclusive upper bound.
  return std::max(v.known_valid_through, last_ts) + 1;
}

LookupResponse CacheShard::Lookup(const LookupRequest& req, uint64_t key_hash) {
  if (options_.read_path == ReadPath::kExclusiveCopy) {
    std::unique_lock<InstrumentedSharedMutex> lock(mu_);
    return LookupExclusive(req, key_hash);
  }
  EbrDomain::Guard guard(domain_);
  return LookupRead(req, key_hash);
}

void CacheShard::LookupBatch(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                             MultiLookupResponse* out) {
  if (options_.read_path == ReadPath::kExclusiveCopy) {
    std::unique_lock<InstrumentedSharedMutex> lock(mu_);
    for (uint32_t i : indices) {
      out->responses[i] = LookupExclusive(req.lookups[i], RequestKeyHash(req.lookups[i]));
    }
    return;
  }
  EbrDomain::Guard guard(domain_);
  for (uint32_t i : indices) {
    out->responses[i] = LookupRead(req.lookups[i], RequestKeyHash(req.lookups[i]));
  }
}

CacheShard::Version* CacheShard::MatchVersions(const LookupRequest& req, uint64_t key_hash,
                                               Timestamp last_ts, LookupResponse* resp) const {
  const KeySlot* slot = table_.Find(key_hash, req.key);
  if (slot == nullptr) {
    resp->miss = MissKind::kCompulsory;
    return nullptr;
  }
  const VersionArray* arr = slot->versions.load(std::memory_order_acquire);

  const Interval want{req.bounds_lo,
                      req.bounds_hi == kTimestampInfinity ? kTimestampInfinity
                                                          : req.bounds_hi + 1};
  const Interval fresh_want{req.fresh_lo, std::max(req.fresh_lo, last_ts) + 1};
  Version* best = nullptr;
  Interval best_effective;
  bool any_fresh = false;  // some version intersects [fresh_lo, last_inval]: staleness is fine
  if (arr != nullptr) {
    for (Version* v : arr->items) {
      const Interval effective{v->lower, EffectiveUpper(*v, last_ts)};
      if (effective.Overlaps(fresh_want)) {
        any_fresh = true;
      }
      if (!effective.Overlaps(want)) {
        continue;
      }
      if (best == nullptr || effective.lower > best_effective.lower) {
        best = v;
        best_effective = effective;
      }
    }
  }
  if (best != nullptr) {
    resp->interval = best_effective;
    return best;
  }
  if (any_fresh) {
    // Something fresh enough existed, just not consistent with the caller's pin set.
    resp->miss = MissKind::kConsistency;
  } else if (arr == nullptr || arr->items.empty()) {
    resp->miss = MissKind::kCapacity;
  } else {
    resp->miss = MissKind::kStaleness;
  }
  return nullptr;
}

void CacheShard::CountMiss(MissKind kind, LookupStatsStripe* st) {
  switch (kind) {
    case MissKind::kCompulsory:
      st->miss_compulsory.fetch_add(1, std::memory_order_relaxed);
      break;
    case MissKind::kConsistency:
      st->miss_consistency.fetch_add(1, std::memory_order_relaxed);
      break;
    case MissKind::kCapacity:
      st->miss_capacity.fetch_add(1, std::memory_order_relaxed);
      break;
    case MissKind::kStaleness:
      st->miss_staleness.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

LookupResponse CacheShard::LookupRead(const LookupRequest& req, uint64_t key_hash) {
  // Caller holds an EBR guard; nothing reachable below can be freed under us. The
  // last-invalidation snapshot is taken ONCE, before any version state is read: a racing
  // truncation can only leave us with an equal-or-older snapshot, so a still-valid
  // observation yields an upper bound no wider than the truncating message's timestamp.
  LookupStatsStripe& st = lookup_stats_[StripeIndex()];
  st.lookups.fetch_add(1, std::memory_order_relaxed);
  LookupResponse resp;
  const Timestamp last_ts = last_invalidation_ts_.load(std::memory_order_acquire);
  Version* best = MatchVersions(req, key_hash, last_ts, &resp);
  if (best == nullptr) {
    CountMiss(resp.miss, &st);
    return resp;
  }
  st.hits.fetch_add(1, std::memory_order_relaxed);
  // Deferred touch: recency is published immediately through the atomic tick; the LRU splice,
  // score refresh and per-function attribution are queued for the next exclusive drain. When
  // the stripe is full the tick alone carries the recency and the drain repairs the order.
  best->touch_tick.store(NextTick(touch_ticker_), std::memory_order_relaxed);
  best->hit_count.fetch_add(1, std::memory_order_relaxed);
  if (!touch_buffer_.Record(best, ThreadStripeSeed())) {
    touch_overflow_.store(true, std::memory_order_relaxed);
  }
  // Hot-key sampling for replication: every Nth hit lands in the stripe's space-saving
  // sketch; the other N-1 pay exactly one relaxed counter bump.
  if (options_.hot_key_sample_interval != 0 &&
      st.sample_ticker.fetch_add(1, std::memory_order_relaxed) %
              options_.hot_key_sample_interval ==
          0) {
    RecordHotSample(st, key_hash);
  }
  resp.hit = true;
  // One control block for value + tags + hints: the aliases below share the resident block's
  // refcount, so a hit bumps a single count instead of three. Copying `block` is safe under
  // the guard — the version (and with it this shared_ptr instance) is destroyed only through
  // EBR retire, never while a reader pins it.
  const std::shared_ptr<const ResidentBlock>& block = best->block;
  resp.value = std::shared_ptr<const std::string>(block, &block->value);
  if (block->has_hints) {
    resp.hints = std::shared_ptr<const AdvisoryHints>(block, &block->hints);
  }
  resp.fill_cost_us = best->fill_cost_us;
  resp.intent_owner = best->intent_owner.load(std::memory_order_relaxed);
  const bool sv = best->still_valid.load(std::memory_order_acquire);
  resp.still_valid = sv;
  if (sv) {
    // Alias the BLOCK's control block, not the interned set's — still one refcount per hit.
    resp.tags =
        std::shared_ptr<const std::vector<InvalidationTag>>(block, block->tags.get());
  }
  return resp;
}

void CacheShard::RecordHotSample(LookupStatsStripe& st, uint64_t key_hash) {
  // Space-saving over a fixed slot array: a tracked hash increments its counter; an untracked
  // one claims an empty slot, else displaces the minimum-count slot inheriting its count + 1
  // (the classic overestimate bound). Races between samplers can lose or double an update —
  // the sketch only steers which keys get replicated, so approximate is fine.
  size_t min_i = 0;
  uint32_t min_count = UINT32_MAX;
  for (size_t i = 0; i < kHotSlotsPerStripe; ++i) {
    HotSample& slot = st.hot[i];
    const uint64_t h = slot.hash.load(std::memory_order_relaxed);
    if (h == key_hash) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (h == 0) {
      slot.hash.store(key_hash, std::memory_order_relaxed);
      slot.count.store(1, std::memory_order_relaxed);
      return;
    }
    const uint32_t c = slot.count.load(std::memory_order_relaxed);
    if (c < min_count) {
      min_count = c;
      min_i = i;
    }
  }
  st.hot[min_i].hash.store(key_hash, std::memory_order_relaxed);
  st.hot[min_i].count.store(min_count + 1, std::memory_order_relaxed);
}

std::unordered_map<uint64_t, uint64_t> CacheShard::HarvestHotHashes() {
  std::unordered_map<uint64_t, uint64_t> out;
  for (size_t s = 0; s < stripe_count_; ++s) {
    LookupStatsStripe& st = lookup_stats_[s];
    for (size_t i = 0; i < kHotSlotsPerStripe; ++i) {
      const uint64_t h = st.hot[i].hash.load(std::memory_order_relaxed);
      const uint32_t c = st.hot[i].count.exchange(0, std::memory_order_relaxed);
      // Clear the slot so the next harvest window starts fresh (sliding-window decay: a key
      // that cooled off stops being harvested instead of coasting on stale counts).
      st.hot[i].hash.store(0, std::memory_order_relaxed);
      if (h != 0 && c != 0) {
        out[h] += c;
      }
    }
  }
  return out;
}

std::vector<InsertRequest> CacheShard::ExportForReplication(
    const std::vector<uint64_t>& hashes) const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  std::vector<InsertRequest> out;
  if (hashes.empty()) {
    return out;
  }
  const Timestamp last_ts = last_invalidation_ts_.load(std::memory_order_relaxed);
  table_.ForEach([&](KeySlot* slot) {
    bool wanted = false;
    for (uint64_t h : hashes) {
      if (h == slot->hash) {
        wanted = true;
        break;
      }
    }
    if (!wanted) {
      return;
    }
    const VersionArray* arr = slot->versions.load(std::memory_order_relaxed);
    if (arr == nullptr) {
      return;
    }
    // Only the newest still-valid version is worth pushing: closed-interval versions serve a
    // shrinking set of pinned-old readers and would age out on the replica anyway.
    const Version* best = nullptr;
    for (const Version* v : arr->items) {
      if (v->still_valid.load(std::memory_order_relaxed) &&
          (best == nullptr || v->lower > best->lower)) {
        best = v;
      }
    }
    if (best == nullptr) {
      return;
    }
    InsertRequest req;
    req.key = slot->key;
    req.key_hash = slot->hash;
    req.value = best->block->value;
    req.interval = {best->lower, kTimestampInfinity};
    // The entry survived every invalidation this shard applied, so it is provably valid
    // through the later of what the database vouched for and our applied stream position.
    // A replica ahead of that position re-checks the claim against its own replay history
    // at insert time; a replica behind it truncates when the killing message arrives.
    req.computed_at = std::max(best->known_valid_through, last_ts);
    req.tags = *best->block->tags;
    req.fill_cost_us = best->fill_cost_us;
    out.push_back(std::move(req));
  });
  return out;
}

LookupResponse CacheShard::LookupExclusive(const LookupRequest& req, uint64_t key_hash) {
  // Benchmark baseline (ReadPath::kExclusiveCopy): the pre-fast-path cost profile — inline
  // LRU/score/profile maintenance and deep-copied payloads under the exclusive lock.
  LookupStatsStripe& st = lookup_stats_[StripeIndex()];
  st.lookups.fetch_add(1, std::memory_order_relaxed);
  LookupResponse resp;
  const Timestamp last_ts = last_invalidation_ts_.load(std::memory_order_relaxed);
  Version* best = MatchVersions(req, key_hash, last_ts, &resp);
  if (best == nullptr) {
    CountMiss(resp.miss, &st);
    return resp;
  }
  st.hits.fetch_add(1, std::memory_order_relaxed);
  lru_.erase(best->lru_it);
  lru_.push_front(best);
  best->lru_it = lru_.begin();
  best->touch_tick.store(NextTick(touch_ticker_), std::memory_order_relaxed);
  best->hit_count.fetch_add(1, std::memory_order_relaxed);
  AttributeHitsLocked(best);
  if (best->in_score_index) {
    score_index_.erase(best->score_it);
    AddToScoreIndexLocked(best);
  }
  resp.hit = true;
  resp.value = std::make_shared<const std::string>(best->block->value);
  if (best->block->has_hints) {
    resp.hints = std::make_shared<const AdvisoryHints>(best->block->hints);
  }
  resp.fill_cost_us = best->fill_cost_us;
  resp.intent_owner = best->intent_owner.load(std::memory_order_relaxed);
  resp.still_valid = best->still_valid.load(std::memory_order_relaxed);
  if (resp.still_valid) {
    // Exclusive-path baseline: share the interned set directly (a second refcount is fine
    // off the hot path).
    resp.tags = best->block->tags;
  }
  return resp;
}

bool CacheShard::CountOpLocked() {
  if (++ops_since_sweep_ >= options_.sweep_interval_ops) {
    ops_since_sweep_ = 0;
    return true;
  }
  return false;
}

Status CacheShard::Insert(const InsertRequest& req, uint64_t key_hash, std::string function,
                          std::shared_ptr<const AdvisoryHints> hints, bool* sweep_due) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  if (req.interval.empty()) {
    *sweep_due = CountOpLocked();
    return Status::InvalidArgument("empty validity interval");
  }
  KeySlot* slot = table_.Find(key_hash, req.key);
  if (slot == nullptr) {
    // The slot outlives its versions deliberately: its existence records "this key was
    // inserted at some point", which classifies later misses as capacity/staleness rather
    // than compulsory (the old map kept empty KeyEntries for the same purpose).
    slot = new KeySlot{key_hash, req.key};
    table_.InsertIfAbsent(key_hash, slot);
  }

  Interval interval = req.interval;
  Timestamp known_through = std::max(interval.lower, req.computed_at);
  bool still_valid = interval.unbounded();
  WallClock invalidated_at = 0;

  if (still_valid) {
    // Replay invalidations that arrived before this insert (§4.2): anything later than the
    // snapshot the value was computed at may have changed the result.
    if (known_through < history_floor_) {
      // History no longer covers the gap; conservatively bound validity at what the database
      // vouched for rather than risking a stale still-valid entry.
      interval.upper = known_through + 1;
      still_valid = false;
      invalidated_at = clock_->Now();
      ++stats_.insert_time_truncations;
    } else {
      Timestamp first = EarliestInvalidationAfterLocked(req.tags, known_through);
      if (first != kTimestampInfinity) {
        interval.upper = first;
        still_valid = false;
        invalidated_at = clock_->Now();
        ++stats_.insert_time_truncations;
        if (interval.empty()) {
          // Invalidated at or before it became valid; nothing worth storing.
          ++stats_.inserts;
          *sweep_due = CountOpLocked();
          return Status::Ok();
        }
      }
    }
  }

  // Preserve the disjointness invariant: if any stored version already covers part of this
  // interval, keep the existing one (same key + overlapping validity implies equal value).
  const Timestamp last_ts = last_invalidation_ts_.load(std::memory_order_relaxed);
  const VersionArray* existing = slot->versions.load(std::memory_order_relaxed);
  if (existing != nullptr) {
    for (Version* v : existing->items) {
      const Interval effective{v->lower, EffectiveUpper(*v, last_ts)};
      const Interval raw{v->lower, v->upper.load(std::memory_order_relaxed)};
      if (effective.Overlaps(interval) || raw.Overlaps(interval)) {
        ++stats_.duplicate_inserts;
        *sweep_due = CountOpLocked();
        return Status::Ok();
      }
    }
  }

  auto* version = new Version();
  version->lower = interval.lower;
  version->known_valid_through = known_through;
  version->upper.store(interval.upper, std::memory_order_relaxed);
  version->still_valid.store(still_valid, std::memory_order_relaxed);
  auto block = std::make_shared<ResidentBlock>();
  block->value = req.value;
  block->tags = tag_interner_->Intern(req.tags);
  if (hints != nullptr) {
    block->hints = *hints;
    block->has_hints = true;
  }
  version->block = std::move(block);
  version->invalidated_wallclock = invalidated_at;
  version->bytes = EstimateBytes(req);
  version->touch_tick.store(NextTick(touch_ticker_), std::memory_order_relaxed);
  version->fill_cost_us = req.fill_cost_us;
  version->fn_id = interner_->Intern(function);
  version->inserted_wallclock = clock_->Now();
  version->owner = slot;
  // A fresh version for a key whose write intent is held inherits the ownership bit, so
  // lock-free readers keep seeing the intent across the fill.
  if (!intents_.empty()) {
    auto intent_it = intents_.find(req.key);
    if (intent_it != intents_.end()) {
      version->intent_owner.store(intent_it->second, std::memory_order_relaxed);
    }
  }

  lru_.push_front(version);
  version->lru_it = lru_.begin();
  global_bytes_->fetch_add(version->bytes, std::memory_order_relaxed);
  ++version_count_;
  live_.insert(version);
  if (still_valid) {
    RegisterTagsLocked(version);
  }
  if (cost_aware()) {
    if (still_valid) {
      AddToScoreIndexLocked(version);
    } else {
      AddToStaleListLocked(version);
    }
  }

  // Publish: copy-on-write the version array (sorted by lower) and retire the superseded
  // snapshot — a concurrent reader keeps walking whichever array it acquired.
  auto* next = new VersionArray();
  const VersionArray* old = slot->versions.load(std::memory_order_relaxed);
  next->items.reserve((old == nullptr ? 0 : old->items.size()) + 1);
  if (old != nullptr) {
    next->items = old->items;
  }
  auto pos = std::lower_bound(next->items.begin(), next->items.end(), version->lower,
                              [](const Version* a, Timestamp t) { return a->lower < t; });
  next->items.insert(pos, version);
  slot->versions.store(next, std::memory_order_release);
  if (old != nullptr) {
    domain_->RetireObject(const_cast<VersionArray*>(old));
  }
  ++stats_.inserts;

  *sweep_due = CountOpLocked();
  return Status::Ok();
}

void CacheShard::ApplyInvalidation(const InvalidationMessage& msg, bool* sweep_due) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  const WallClock now = clock_->Now();
  std::vector<Version*> affected;
  for (const InvalidationTag& tag : msg.tags) {
    if (tag.wildcard) {
      auto it = table_index_.find(tag.table);
      if (it != table_index_.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
      }
    } else {
      auto it = tag_index_.find(tag);
      if (it != tag_index_.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
      }
      // Entries that carry a wildcard tag on this table depend on everything in it.
      auto wit = wildcard_holders_.find(tag.table);
      if (wit != wildcard_holders_.end()) {
        affected.insert(affected.end(), wit->second.begin(), wit->second.end());
      }
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
  for (Version* v : affected) {
    TruncateLocked(v, msg.ts, now);
  }
  RecordHistoryLocked(msg);
  // Published AFTER the truncations (release): a reader whose snapshot includes this
  // timestamp is guaranteed to see every truncation the message caused.
  const Timestamp cur = last_invalidation_ts_.load(std::memory_order_relaxed);
  last_invalidation_ts_.store(std::max(cur, msg.ts), std::memory_order_release);
  *sweep_due = CountOpLocked();
}

void CacheShard::TruncateLocked(Version* v, Timestamp ts, WallClock wallclock) {
  if (!v->still_valid.load(std::memory_order_relaxed)) {
    return;
  }
  // The database accounted for everything up to known_valid_through when it computed the
  // interval; a coarser-granularity tag match in that range does not bound this value.
  if (ts <= v->known_valid_through) {
    return;
  }
  UnregisterTagsLocked(v);
  // Store order matters for lock-free readers: final upper first, then the release store of
  // still_valid — a reader that observes still_valid == false (acquire) sees the new upper.
  v->upper.store(ts, std::memory_order_relaxed);
  v->still_valid.store(false, std::memory_order_release);
  v->invalidated_wallclock = wallclock;
  if (cost_aware()) {
    if (advisor_ != nullptr && v->fn_id != 0) {
      // TTL learning: the stream just revealed how long this function's result actually
      // stayed valid while resident. (Insert-time truncations never reach here — they carry
      // no residency interval worth learning from.)
      const WallClock lived = wallclock > v->inserted_wallclock
                                  ? wallclock - v->inserted_wallclock
                                  : WallClock{0};
      advisor_->ObserveLifetime(interner_->Name(v->fn_id), static_cast<uint64_t>(lived));
    }
    if (v->ttl_demoted) {
      // Already parked in the stale list by learned-TTL expiry — the prediction just came
      // true. Keep its (earlier) stale position; it is now genuinely stale.
      v->ttl_demoted = false;
    } else {
      // The version can now only serve pinned old snapshots: demote it from the score index
      // to the stale list, where the capacity policy evicts it before any still-valid entry.
      DetachPolicyStateLocked(v);
      AddToStaleListLocked(v);
    }
  }
  ++stats_.invalidation_truncations;
}

void CacheShard::RegisterTagsLocked(Version* v) {
  for (const InvalidationTag& tag : *v->block->tags) {
    if (tag.wildcard) {
      wildcard_holders_[tag.table].insert(v);
    } else {
      tag_index_[tag].insert(v);
    }
    table_index_[tag.table].insert(v);
  }
}

void CacheShard::UnregisterTagsLocked(Version* v) {
  for (const InvalidationTag& tag : *v->block->tags) {
    if (tag.wildcard) {
      auto it = wildcard_holders_.find(tag.table);
      if (it != wildcard_holders_.end()) {
        it->second.erase(v);
        if (it->second.empty()) {
          wildcard_holders_.erase(it);
        }
      }
    } else {
      auto it = tag_index_.find(tag);
      if (it != tag_index_.end()) {
        it->second.erase(v);
        if (it->second.empty()) {
          tag_index_.erase(it);
        }
      }
    }
    auto tit = table_index_.find(tag.table);
    if (tit != table_index_.end()) {
      tit->second.erase(v);
      if (tit->second.empty()) {
        table_index_.erase(tit);
      }
    }
  }
}

void CacheShard::UnpublishVersionLocked(Version* v) {
  KeySlot* slot = v->owner;
  VersionArray* old = slot->versions.load(std::memory_order_relaxed);
  assert(old != nullptr);
  VersionArray* next = nullptr;
  if (old->items.size() > 1) {
    next = new VersionArray();
    next->items.reserve(old->items.size() - 1);
    for (Version* u : old->items) {
      if (u != v) {
        next->items.push_back(u);
      }
    }
  }
  slot->versions.store(next, std::memory_order_release);
  domain_->RetireObject(old);
  // The version itself is retired too: a pinned reader may hold it (and, through its block
  // member, the payload an outstanding response aliases).
  domain_->RetireObject(v);
}

void CacheShard::RemoveVersionLocked(Version* v) {
  if (v->still_valid.load(std::memory_order_relaxed)) {
    UnregisterTagsLocked(v);
  }
  DetachPolicyStateLocked(v);
  lru_.erase(v->lru_it);
  global_bytes_->fetch_sub(v->bytes, std::memory_order_relaxed);
  --version_count_;
  live_.erase(v);
  UnpublishVersionLocked(v);
  // Keep the KeySlot itself (its existence distinguishes capacity from compulsory misses).
}

std::optional<uint64_t> CacheShard::OldestTick() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  if (lru_.empty()) {
    return std::nullopt;
  }
  return lru_.back()->touch_tick.load(std::memory_order_relaxed);
}

std::optional<EvictionCandidate> CacheShard::PeekVictim() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  if (stale_lru_.empty() && score_index_.empty()) {
    return std::nullopt;
  }
  EvictionCandidate c;
  if (!stale_lru_.empty()) {
    c.has_stale = true;
    c.stale_seq = stale_lru_.front()->stale_seq;
  }
  if (!score_index_.empty()) {
    c.has_scored = true;
    c.score = score_index_.begin()->first;
    c.tick = score_index_.begin()->second->touch_tick.load(std::memory_order_relaxed);
  }
  return c;
}

std::vector<VictimPreview> CacheShard::PreviewVictims(size_t bytes_needed) const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  std::vector<VictimPreview> out;
  const double floor = aging_floor_->load(std::memory_order_relaxed);
  size_t covered = 0;
  // This shard's own eviction order: the stale list front-to-back (all stale victims
  // precede all scored ones node-globally), then the score index ascending.
  for (const Version* v : stale_lru_) {
    if (covered >= bytes_needed) {
      return out;
    }
    VictimPreview p;
    p.stale = true;
    p.bytes = v->bytes;
    out.push_back(p);  // benefit 0: stale-listed bytes are free to displace
    covered += v->bytes;
  }
  const uint64_t now_tick = touch_ticker_->load(std::memory_order_relaxed);
  for (const auto& [score, v] : score_index_) {
    if (covered >= bytes_needed) {
      break;
    }
    VictimPreview p;
    p.score = score;
    p.bytes = v->bytes;
    p.benefit_us = std::max(0.0, score - floor) * static_cast<double>(v->bytes);
    // GreedyDual's score sinks toward the floor for any entry that stopped being REFRESHED,
    // even one that keeps serving hits — the drain re-bases the score but the margin decays
    // as the floor ratchets. Fold in a recency-decayed estimate of the recompute the victim
    // is still saving (hits x fill cost, halved every kRecencyHalfLifeTicks of touch-tick
    // idleness), so a quiet-but-alive victim is not priced near zero and displaced by a
    // marginal large fill. Never-hit entries contribute nothing, keeping the original
    // score-margin formula (and the admission-oracle model built on it) exact for them.
    const uint64_t hits = v->hit_count.load(std::memory_order_relaxed);
    if (hits > 0) {
      constexpr double kRecencyHalfLifeTicks = 1024.0;
      const uint64_t tick = v->touch_tick.load(std::memory_order_relaxed);
      const uint64_t idle = now_tick > tick ? now_tick - tick : 0;
      const double recency = std::exp2(-static_cast<double>(idle) / kRecencyHalfLifeTicks);
      p.benefit_us +=
          recency * static_cast<double>(hits) * static_cast<double>(v->fill_cost_us);
    }
    out.push_back(p);
    covered += v->bytes;
  }
  return out;
}

std::optional<EvictedVersion> CacheShard::EvictOne() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Apply pending touches first: within this shard the eviction decision is then exact with
  // respect to every hit that completed before the lock was acquired.
  DrainTouchesLocked();
  if (!cost_aware()) {
    if (lru_.empty()) {
      return std::nullopt;
    }
    EvictedVersion out = MakeEvictedLocked(*lru_.back());
    RemoveVersionLocked(lru_.back());
    ++stats_.evictions_lru;
    return out;
  }
  // Stale-first: a closed-interval version can only serve pinned old snapshots, so it always
  // goes before any still-valid entry; among stale versions, the longest-stale goes first.
  if (!stale_lru_.empty()) {
    Version* v = stale_lru_.front();
    EvictedVersion out = MakeEvictedLocked(*v);
    RemoveVersionLocked(v);
    ++stats_.evictions_capacity_stale;
    return out;
  }
  if (score_index_.empty()) {
    return std::nullopt;
  }
  // Lowest benefit-per-byte score goes first (equal scores evict in insertion order, which is
  // oldest-touched first since every drained hit batch reinserts). Evicting at score s raises
  // the node's aging floor to s: surviving entries must re-earn their margin through hits.
  Version* v = score_index_.begin()->second;
  const double evicted_score = v->score;
  double cur = aging_floor_->load(std::memory_order_relaxed);
  while (cur < evicted_score &&
         !aging_floor_->compare_exchange_weak(cur, evicted_score, std::memory_order_relaxed)) {
  }
  EvictedVersion out = MakeEvictedLocked(*v);
  RemoveVersionLocked(v);
  ++stats_.evictions_cost;
  return out;
}

std::unordered_map<std::string, uint64_t> CacheShard::FunctionHits() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Fold pending touches in first so profiles reflect every completed hit (the overflow
  // repair folds the whole LRU list, so dropped touch records cannot lose attribution).
  DrainTouchesLocked();
  std::unordered_map<std::string, uint64_t> out;
  for (uint32_t id = 1; id < fn_hits_.size(); ++id) {
    if (fn_hits_[id] != 0) {
      out.emplace(interner_->Name(id), fn_hits_[id]);
    }
  }
  return out;
}

void CacheShard::SweepStale(const LifetimeSnapshot* learned) {
  const bool ttl_enabled =
      cost_aware() && advisor_ != nullptr && options_.ttl_expiry_slack > 0.0;
  // Snapshot (when the caller did not) BEFORE taking the exclusive lock: the advisor is a
  // node-global mutex, and the all-shards sweep passes one shared snapshot precisely so the
  // copy is not re-made under every shard's lock.
  LifetimeSnapshot own;
  if (ttl_enabled && learned == nullptr) {
    own = advisor_->LifetimeSnapshot();
    learned = &own;
  }
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  SweepStaleLocked();
  if (ttl_enabled) {
    DemoteTtlExpiredLocked(*learned);
  }
}

void CacheShard::DemoteTtlExpiredLocked(const LifetimeSnapshot& learned) {
  // Scan the score index: only still-valid, score-indexed versions are demotion candidates.
  if (learned.empty()) {
    return;
  }
  const WallClock now = clock_->Now();
  std::vector<Version*> expired;
  std::unordered_map<uint32_t, std::string> names;  // resolve each fn id once per pass
  for (const auto& [_, v] : score_index_) {
    if (v->fn_id == 0) {
      continue;
    }
    auto nit = names.find(v->fn_id);
    if (nit == names.end()) {
      nit = names.emplace(v->fn_id, interner_->Name(v->fn_id)).first;
    }
    auto it = learned.find(nit->second);
    if (it == learned.end() || it->second.truncations < options_.lifetime_min_samples) {
      continue;  // lifetime not learned yet: never demote on guesswork
    }
    const double limit = options_.ttl_expiry_slack * it->second.ewma_lifetime_us;
    if (static_cast<double>(now - v->inserted_wallclock) > limit) {
      expired.push_back(v);
    }
  }
  for (Version* v : expired) {
    // Eviction preference only: the version stays registered in the tag index and keeps
    // serving hits with its true validity until genuinely truncated or evicted. Demotion is
    // sticky — later hits do not re-promote it (monotone, like real staleness).
    DetachPolicyStateLocked(v);
    AddToStaleListLocked(v);
    v->ttl_demoted = true;
    ++stats_.ttl_demotions;
  }
}

void CacheShard::SweepStaleLocked() {
  const WallClock cutoff = clock_->Now() - options_.max_staleness;
  std::vector<Version*> victims;
  for (Version* v : lru_) {
    if (!v->still_valid.load(std::memory_order_relaxed) && v->invalidated_wallclock > 0 &&
        v->invalidated_wallclock < cutoff) {
      victims.push_back(v);
    }
  }
  for (Version* v : victims) {
    RemoveVersionLocked(v);
    ++stats_.evictions_stale;
  }
}

void CacheShard::RecordHistoryLocked(const InvalidationMessage& msg) {
  for (const InvalidationTag& tag : msg.tags) {
    if (tag.wildcard) {
      InsertSorted(table_wildcard_history_[tag.table], msg.ts);
    } else {
      InsertSorted(tag_history_[tag], msg.ts);
    }
    InsertSorted(table_any_history_[tag.table], msg.ts);
  }
  // Prune old history so memory stays bounded.
  if (msg.ts > options_.history_retention &&
      msg.ts - options_.history_retention > history_floor_) {
    history_floor_ = msg.ts - options_.history_retention;
    auto prune = [floor = history_floor_](auto& map) {
      for (auto it = map.begin(); it != map.end();) {
        auto& vec = it->second;
        vec.erase(vec.begin(), std::lower_bound(vec.begin(), vec.end(), floor));
        if (vec.empty()) {
          it = map.erase(it);
        } else {
          ++it;
        }
      }
    };
    prune(tag_history_);
    prune(table_wildcard_history_);
    prune(table_any_history_);
  }
}

Timestamp CacheShard::EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                                      Timestamp after) const {
  Timestamp earliest = kTimestampInfinity;
  for (const InvalidationTag& tag : tags) {
    if (tag.wildcard) {
      // An entry depending on the whole table is invalidated by any message touching it.
      auto it = table_any_history_.find(tag.table);
      if (it != table_any_history_.end()) {
        earliest = std::min(earliest, FirstAfter(it->second, after));
      }
    } else {
      auto it = tag_history_.find(tag);
      if (it != tag_history_.end()) {
        earliest = std::min(earliest, FirstAfter(it->second, after));
      }
      auto wit = table_wildcard_history_.find(tag.table);
      if (wit != table_wildcard_history_.end()) {
        earliest = std::min(earliest, FirstAfter(wit->second, after));
      }
    }
  }
  return earliest;
}

std::pair<uint64_t, std::string> CacheShard::ExportEntries() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  Writer w;
  // The shared lock excludes writers, so the writer-side iteration over the flat table is
  // stable here.
  table_.ForEach([&w](KeySlot* slot) {
    const VersionArray* arr = slot->versions.load(std::memory_order_relaxed);
    if (arr == nullptr) {
      return;
    }
    for (const Version* v : arr->items) {
      const bool sv = v->still_valid.load(std::memory_order_relaxed);
      w.PutString(slot->key);
      w.PutString(v->block->value);
      w.PutU64(v->lower);
      w.PutU64(sv ? kTimestampInfinity : v->upper.load(std::memory_order_relaxed));
      w.PutU64(v->known_valid_through);
      w.PutU64(v->fill_cost_us);
      w.PutU32(static_cast<uint32_t>(v->block->tags->size()));
      for (const InvalidationTag& tag : *v->block->tags) {
        w.PutString(tag.table);
        w.PutString(tag.index);
        w.PutString(tag.key);
        w.PutBool(tag.wildcard);
      }
    }
  });
  return {version_count_, w.Take()};
}

void CacheShard::AdoptStreamPosition(Timestamp last_invalidation_ts, bool raise_history_floor) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  const Timestamp cur = last_invalidation_ts_.load(std::memory_order_relaxed);
  last_invalidation_ts_.store(std::max(cur, last_invalidation_ts), std::memory_order_release);
  if (raise_history_floor && last_invalidation_ts > history_floor_) {
    // The messages up to the adopted position were never applied here, so the retained
    // history has a gap. Raising the floor makes Insert's replay path bound any still-valid
    // claim computed before the gap at known_through + 1 instead of trusting it.
    history_floor_ = last_invalidation_ts;
  }
}

void CacheShard::CloseAllStillValid(Timestamp through) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  const WallClock now = clock_->Now();
  std::vector<Version*> open;
  for (Version* v : lru_) {
    if (v->still_valid.load(std::memory_order_relaxed)) {
      open.push_back(v);
    }
  }
  for (Version* v : open) {
    // Same store order as TruncateLocked (upper, then the release-clear of still_valid) so
    // lock-free readers racing this closure observe a consistent narrowed interval. No
    // lifetime is reported to the advisor — this is a join-time administrative closure, not
    // a stream-revealed lifetime — and invalidation_truncations stays untouched for the same
    // reason.
    UnregisterTagsLocked(v);
    v->upper.store(std::max(v->known_valid_through, through) + 1, std::memory_order_relaxed);
    v->still_valid.store(false, std::memory_order_release);
    v->invalidated_wallclock = now;
    if (cost_aware()) {
      if (v->ttl_demoted) {
        v->ttl_demoted = false;
      } else {
        DetachPolicyStateLocked(v);
        AddToStaleListLocked(v);
      }
    }
  }
}

void CacheShard::StampIntentLocked(KeySlot* slot, uint64_t token) {
  if (slot == nullptr) {
    return;
  }
  const VersionArray* arr = slot->versions.load(std::memory_order_relaxed);
  if (arr == nullptr) {
    return;
  }
  for (Version* v : arr->items) {
    v->intent_owner.store(token, std::memory_order_relaxed);
  }
}

IntentResponse CacheShard::AcquireIntent(const IntentRequest& req, uint64_t key_hash) {
  IntentResponse resp;
  if (req.txn_id == 0) {
    resp.status = Status::InvalidArgument("intent needs a nonzero owner token");
    return resp;
  }
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  auto [it, inserted] = intents_.try_emplace(req.key, req.txn_id);
  if (!inserted && it->second != req.txn_id) {
    ++stats_.intent_conflicts;
    resp.holder = it->second;
    resp.status = Status::Conflict("write intent held by another transaction");
    return resp;
  }
  if (inserted) {
    StampIntentLocked(table_.Find(key_hash, req.key), req.txn_id);
    ++stats_.intent_acquires;
  }
  resp.status = Status::Ok();
  return resp;
}

void CacheShard::ReleaseIntent(const IntentRequest& req, uint64_t key_hash) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  auto it = intents_.find(req.key);
  if (it == intents_.end() || it->second != req.txn_id) {
    return;  // idempotent: already released, or cleared wholesale by flush/crash/rejoin
  }
  intents_.erase(it);
  StampIntentLocked(table_.Find(key_hash, req.key), 0);
  ++stats_.intent_releases;
}

size_t CacheShard::ClearIntents() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  const size_t dropped = intents_.size();
  if (dropped == 0) {
    return 0;
  }
  intents_.clear();
  // Clear every ownership bit in one table walk instead of one Find per dropped intent.
  table_.ForEach([this](KeySlot* slot) { StampIntentLocked(slot, 0); });
  stats_.intents_cleared += dropped;
  return dropped;
}

void CacheShard::Flush() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Intents die with the data: advisory state only, so dropping them wholesale is safe (the
  // owning transactions discover the loss at commit validation, not as staleness).
  stats_.intents_cleared += intents_.size();
  intents_.clear();
  // Everything the touch buffers point at dies below; discard the records rather than apply
  // them. Readers that already hold value aliases keep their buffers — the versions (and the
  // blocks they own) are retired through the EBR domain, not freed in place.
  touch_buffer_.Reset();
  touch_overflow_.store(false, std::memory_order_relaxed);
  size_t freed = 0;
  for (const Version* v : lru_) {
    freed += v->bytes;
  }
  // Unlink before retire: swap in the fresh empty table FIRST, so no reader can reach a slot
  // through the published table once it sits in a retire list (Retire may advance the epoch
  // mid-loop on a large flush, which would otherwise free still-reachable records).
  std::vector<KeySlot*> flushed;
  flushed.reserve(table_.size());
  table_.ForEach([&flushed](KeySlot* slot) { flushed.push_back(slot); });
  table_.Clear();  // publishes a fresh empty table; the old slot array is retired
  for (KeySlot* slot : flushed) {
    VersionArray* arr = slot->versions.load(std::memory_order_relaxed);
    if (arr != nullptr) {
      for (Version* v : arr->items) {
        domain_->RetireObject(v);
      }
      domain_->RetireObject(arr);
    }
    domain_->RetireObject(slot);
  }
  lru_.clear();
  score_index_.clear();
  stale_lru_.clear();
  tag_index_.clear();
  table_index_.clear();
  wildcard_holders_.clear();
  live_.clear();
  global_bytes_->fetch_sub(freed, std::memory_order_relaxed);
  version_count_ = 0;
}

CacheStats CacheShard::stats() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  CacheStats s = stats_;
  for (size_t i = 0; i < stripe_count_; ++i) {
    const LookupStatsStripe& st = lookup_stats_[i];
    s.lookups += st.lookups.load(std::memory_order_relaxed);
    s.hits += st.hits.load(std::memory_order_relaxed);
    s.miss_compulsory += st.miss_compulsory.load(std::memory_order_relaxed);
    s.miss_staleness += st.miss_staleness.load(std::memory_order_relaxed);
    s.miss_capacity += st.miss_capacity.load(std::memory_order_relaxed);
    s.miss_consistency += st.miss_consistency.load(std::memory_order_relaxed);
  }
  return s;
}

void CacheShard::ResetStats() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Drain so pending per-function attribution lands before the profile counters are cleared,
  // then mark every resident version fully attributed — pre-reset hits must not leak into the
  // next window's profiles at a later drain.
  DrainTouchesLocked();
  stats_ = CacheStats{};
  for (size_t i = 0; i < stripe_count_; ++i) {
    LookupStatsStripe& st = lookup_stats_[i];
    st.lookups.store(0, std::memory_order_relaxed);
    st.hits.store(0, std::memory_order_relaxed);
    st.miss_compulsory.store(0, std::memory_order_relaxed);
    st.miss_staleness.store(0, std::memory_order_relaxed);
    st.miss_capacity.store(0, std::memory_order_relaxed);
    st.miss_consistency.store(0, std::memory_order_relaxed);
  }
  fn_hits_.clear();
  for (Version* v : lru_) {
    v->attributed_hits = v->hit_count.load(std::memory_order_relaxed);
  }
}

size_t CacheShard::version_count() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return version_count_;
}

size_t CacheShard::key_count() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return table_.size();
}

Timestamp CacheShard::last_invalidation_ts() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return last_invalidation_ts_.load(std::memory_order_relaxed);
}

}  // namespace txcache
