#include "src/cache/cache_shard.h"

#include <algorithm>
#include <cassert>

namespace txcache {

namespace {

// Fixed per-version bookkeeping overhead charged against the byte budget.
constexpr size_t kVersionOverhead = 96;

size_t TagBytes(const std::vector<InvalidationTag>& tags) {
  size_t n = 0;
  for (const InvalidationTag& t : tags) {
    n += t.table.size() + t.index.size() + t.key.size() + 8;
  }
  return n;
}

void InsertSorted(std::vector<Timestamp>& history, Timestamp ts) {
  auto it = std::lower_bound(history.begin(), history.end(), ts);
  if (it == history.end() || *it != ts) {
    history.insert(it, ts);
  }
}

Timestamp FirstAfter(const std::vector<Timestamp>& history, Timestamp after) {
  auto it = std::upper_bound(history.begin(), history.end(), after);
  return it == history.end() ? kTimestampInfinity : *it;
}

}  // namespace

CacheShard::CacheShard(const Clock* clock, const CacheOptions& options,
                       std::atomic<size_t>* global_bytes, std::atomic<uint64_t>* touch_ticker,
                       std::atomic<double>* aging_floor, FunctionAdvisor* advisor)
    : clock_(clock),
      options_(options),
      global_bytes_(global_bytes),
      touch_ticker_(touch_ticker),
      aging_floor_(aging_floor),
      advisor_(advisor),
      touch_buffer_(options.touch_buffer_capacity) {}

CacheShard::~CacheShard() = default;

size_t CacheShard::EstimateBytes(const InsertRequest& req) {
  return kVersionOverhead + req.key.size() + req.value.size() + TagBytes(req.tags);
}

void CacheShard::AddToScoreIndexLocked(Version* v) {
  // GreedyDual-Size score: the node's aging floor (score of the most valuable entry evicted so
  // far) plus this entry's benefit-per-byte. Refreshed to the current floor when a hit batch
  // drains, so entries that stop earning hits sink back toward the floor and get evicted.
  const double bpb =
      v->bytes == 0 ? 0.0 : static_cast<double>(v->fill_cost_us) / static_cast<double>(v->bytes);
  v->score = aging_floor_->load(std::memory_order_relaxed) + bpb;
  v->score_it = score_index_.emplace(v->score, v);
  v->in_score_index = true;
}

void CacheShard::AddToStaleListLocked(Version* v) {
  v->stale_seq = touch_ticker_->fetch_add(1, std::memory_order_relaxed);
  stale_lru_.push_back(v);
  v->stale_it = std::prev(stale_lru_.end());
  v->in_stale_list = true;
}

void CacheShard::DetachPolicyStateLocked(Version* v) {
  if (v->in_score_index) {
    score_index_.erase(v->score_it);
    v->in_score_index = false;
  }
  if (v->in_stale_list) {
    stale_lru_.erase(v->stale_it);
    v->in_stale_list = false;
  }
}

void CacheShard::AttributeHitsLocked(Version* v) {
  if (!cost_aware() || v->function.empty()) {
    return;
  }
  const uint64_t total = v->hit_count.load(std::memory_order_relaxed);
  if (total == v->attributed_hits) {
    return;
  }
  // Per-function hit attribution, bounded like the frontend's profile map.
  auto it = fn_hits_.find(v->function);
  if (it != fn_hits_.end()) {
    it->second += total - v->attributed_hits;
  } else if (fn_hits_.size() < options_.max_function_profiles) {
    fn_hits_.emplace(v->function, total - v->attributed_hits);
  }
  v->attributed_hits = total;
}

void CacheShard::DrainTouchesLocked() {
  const size_t n = touch_buffer_.pending();
  const bool overflowed = touch_overflow_.exchange(false, std::memory_order_relaxed);
  if (n == 0 && !overflowed) {
    return;
  }
  drain_scratch_.clear();
  for (size_t i = 0; i < n; ++i) {
    drain_scratch_.push_back(touch_buffer_.slot(i));
  }
  touch_buffer_.Reset();
  // Advisory-hint refresh, one advisor probe per DISTINCT function in the batch (a hot batch
  // is typically many versions of few functions — per-version probes would serialize every
  // shard's drains on the advisor's node-global mutex).
  std::unordered_map<std::string_view, std::shared_ptr<const AdvisoryHints>> hint_batch;
  // Unique versions, oldest current tick first: splicing to the front in ascending-tick order
  // leaves lru_ fully sorted by last touch. This is exact because nothing can still be in
  // flight — a producer holds the shared lock across both its tick assignment and its Record,
  // so by the time the exclusive side is held every assigned tick is in the buffer.
  std::sort(drain_scratch_.begin(), drain_scratch_.end());
  drain_scratch_.erase(std::unique(drain_scratch_.begin(), drain_scratch_.end()),
                       drain_scratch_.end());
  std::sort(drain_scratch_.begin(), drain_scratch_.end(), [](Version* a, Version* b) {
    return a->touch_tick.load(std::memory_order_relaxed) <
           b->touch_tick.load(std::memory_order_relaxed);
  });
  for (Version* v : drain_scratch_) {
    lru_.erase(v->lru_it);
    lru_.push_front(v);
    v->lru_it = lru_.begin();
    if (v->in_score_index) {
      // One refresh per hit batch instead of one per hit; the resulting score (current floor
      // + benefit-per-byte) is identical either way.
      score_index_.erase(v->score_it);
      AddToScoreIndexLocked(v);
    }
    if (cost_aware() && advisor_ != nullptr && !v->function.empty()) {
      // Refresh the advisory snapshot a hit hands out; the shared-lock hit path itself
      // stays probe-free (it only copies the shared_ptr stamped here).
      auto it = hint_batch.find(v->function);
      if (it == hint_batch.end()) {
        it = hint_batch.emplace(v->function, advisor_->Hints(v->function)).first;
      }
      v->hints = it->second;
    }
    AttributeHitsLocked(v);
  }
  if (overflowed) {
    // Some touches never made it into the buffer; their recency lives only in the per-version
    // ticks. Re-sort the whole list so LRU monotonicity (never evict a more recently touched
    // version while a less recently touched one stays resident) survives the overflow.
    // std::list::sort relinks nodes, so every Version::lru_it stays valid.
    lru_.sort([](const Version* a, const Version* b) {
      return a->touch_tick.load(std::memory_order_relaxed) >
             b->touch_tick.load(std::memory_order_relaxed);
    });
    if (cost_aware()) {
      // Dropped records also skipped their per-function attribution; the hit_count deltas
      // still know about those hits, so a full fold keeps the profiles lossless.
      for (Version* v : lru_) {
        AttributeHitsLocked(v);
      }
    }
  }
  drain_scratch_.clear();
}

EvictedVersion CacheShard::MakeEvictedLocked(const Version& v) const {
  EvictedVersion out;
  out.bytes = v.bytes;
  out.fill_cost_us = v.fill_cost_us;
  out.hits = v.hit_count.load(std::memory_order_relaxed);
  out.function = v.function;  // parsed once at insert; no re-parse on the eviction path
  return out;
}

Timestamp CacheShard::EffectiveUpperLocked(const Version& v) const {
  if (!v.still_valid) {
    return v.interval.upper;
  }
  // A still-valid entry is known valid through the later of (a) the snapshot it was computed
  // from (the database vouches for it) and (b) the last invalidation applied by this shard (the
  // stream would have truncated it otherwise). +1 converts an inclusive timestamp to the
  // exclusive upper bound.
  return std::max(v.known_valid_through, last_invalidation_ts_) + 1;
}

LookupResponse CacheShard::Lookup(const LookupRequest& req, uint64_t key_hash) {
  if (options_.read_path == ReadPath::kExclusiveCopy) {
    std::unique_lock<InstrumentedSharedMutex> lock(mu_);
    return LookupExclusive(req, key_hash);
  }
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return LookupShared(req, key_hash);
}

void CacheShard::LookupBatch(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                             MultiLookupResponse* out) {
  if (options_.read_path == ReadPath::kExclusiveCopy) {
    std::unique_lock<InstrumentedSharedMutex> lock(mu_);
    for (uint32_t i : indices) {
      out->responses[i] = LookupExclusive(req.lookups[i], RequestKeyHash(req.lookups[i]));
    }
    return;
  }
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  for (uint32_t i : indices) {
    out->responses[i] = LookupShared(req.lookups[i], RequestKeyHash(req.lookups[i]));
  }
}

CacheShard::Version* CacheShard::MatchLocked(const LookupRequest& req, uint64_t key_hash,
                                             LookupResponse* resp) {
  auto it = map_.find(HashedKey{req.key, key_hash});
  const KeyEntry* entry = it == map_.end() ? nullptr : &it->second;
  if (entry == nullptr || !entry->ever_inserted) {
    resp->miss = MissKind::kCompulsory;
    return nullptr;
  }

  const Interval want{req.bounds_lo,
                      req.bounds_hi == kTimestampInfinity ? kTimestampInfinity
                                                          : req.bounds_hi + 1};
  Version* best = nullptr;
  Interval best_effective;
  bool any_fresh = false;  // some version intersects [fresh_lo, last_inval]: staleness is fine
  for (const auto& v : entry->versions) {
    Interval effective = v->interval;
    effective.upper = EffectiveUpperLocked(*v);
    const Interval fresh_want{req.fresh_lo, std::max(req.fresh_lo, last_invalidation_ts_) + 1};
    if (effective.Overlaps(fresh_want)) {
      any_fresh = true;
    }
    if (!effective.Overlaps(want)) {
      continue;
    }
    if (best == nullptr || effective.lower > best_effective.lower) {
      best = v.get();
      best_effective = effective;
    }
  }
  if (best != nullptr) {
    resp->interval = best_effective;
    return best;
  }
  if (any_fresh) {
    // Something fresh enough existed, just not consistent with the caller's pin set.
    resp->miss = MissKind::kConsistency;
  } else if (entry->versions.empty()) {
    resp->miss = MissKind::kCapacity;
  } else {
    resp->miss = MissKind::kStaleness;
  }
  return nullptr;
}

void CacheShard::CountMissShared(MissKind kind) {
  switch (kind) {
    case MissKind::kCompulsory:
      miss_compulsory_.fetch_add(1, std::memory_order_relaxed);
      break;
    case MissKind::kConsistency:
      miss_consistency_.fetch_add(1, std::memory_order_relaxed);
      break;
    case MissKind::kCapacity:
      miss_capacity_.fetch_add(1, std::memory_order_relaxed);
      break;
    case MissKind::kStaleness:
      miss_staleness_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

LookupResponse CacheShard::LookupShared(const LookupRequest& req, uint64_t key_hash) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  LookupResponse resp;
  Version* best = MatchLocked(req, key_hash, &resp);
  if (best == nullptr) {
    CountMissShared(resp.miss);
    return resp;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Deferred touch: recency is published immediately through the atomic tick; the LRU splice,
  // score refresh and per-function attribution are queued for the next exclusive drain. When
  // the buffer is full the tick alone carries the recency and the drain repairs the order.
  best->touch_tick.store(touch_ticker_->fetch_add(1, std::memory_order_relaxed),
                         std::memory_order_relaxed);
  best->hit_count.fetch_add(1, std::memory_order_relaxed);
  if (!touch_buffer_.Record(best)) {
    touch_overflow_.store(true, std::memory_order_relaxed);
  }
  resp.hit = true;
  resp.value = best->value;  // aliases the resident buffer: refcount bump, zero byte copies
  resp.hints = best->hints;  // advisory snapshot, same aliasing discipline
  resp.fill_cost_us = best->fill_cost_us;
  resp.still_valid = best->still_valid;
  if (best->still_valid) {
    resp.tags = best->tags;
  }
  return resp;
}

LookupResponse CacheShard::LookupExclusive(const LookupRequest& req, uint64_t key_hash) {
  // Benchmark baseline (ReadPath::kExclusiveCopy): the pre-fast-path cost profile — inline
  // LRU/score/profile maintenance and deep-copied payloads under the exclusive lock.
  lookups_.fetch_add(1, std::memory_order_relaxed);
  LookupResponse resp;
  Version* best = MatchLocked(req, key_hash, &resp);
  if (best == nullptr) {
    CountMissShared(resp.miss);
    return resp;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.erase(best->lru_it);
  lru_.push_front(best);
  best->lru_it = lru_.begin();
  best->touch_tick.store(touch_ticker_->fetch_add(1, std::memory_order_relaxed),
                         std::memory_order_relaxed);
  best->hit_count.fetch_add(1, std::memory_order_relaxed);
  AttributeHitsLocked(best);
  if (best->in_score_index) {
    score_index_.erase(best->score_it);
    AddToScoreIndexLocked(best);
  }
  resp.hit = true;
  resp.value = std::make_shared<const std::string>(*best->value);
  resp.hints = best->hints;
  resp.fill_cost_us = best->fill_cost_us;
  resp.still_valid = best->still_valid;
  if (best->still_valid) {
    resp.tags = std::make_shared<const std::vector<InvalidationTag>>(*best->tags);
  }
  return resp;
}

bool CacheShard::CountOpLocked() {
  if (++ops_since_sweep_ >= options_.sweep_interval_ops) {
    ops_since_sweep_ = 0;
    return true;
  }
  return false;
}

Status CacheShard::Insert(const InsertRequest& req, uint64_t key_hash, std::string function,
                          std::shared_ptr<const AdvisoryHints> hints, bool* sweep_due) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  if (req.interval.empty()) {
    return Status::InvalidArgument("empty validity interval");
  }
  auto map_it = map_.find(HashedKey{req.key, key_hash});
  if (map_it == map_.end()) {
    map_it = map_.try_emplace(req.key).first;
  }
  KeyEntry& entry = map_it->second;
  entry.ever_inserted = true;

  Interval interval = req.interval;
  Timestamp known_through = std::max(interval.lower, req.computed_at);
  bool still_valid = interval.unbounded();
  WallClock invalidated_at = 0;

  if (still_valid) {
    // Replay invalidations that arrived before this insert (§4.2): anything later than the
    // snapshot the value was computed at may have changed the result.
    if (known_through < history_floor_) {
      // History no longer covers the gap; conservatively bound validity at what the database
      // vouched for rather than risking a stale still-valid entry.
      interval.upper = known_through + 1;
      still_valid = false;
      invalidated_at = clock_->Now();
      ++stats_.insert_time_truncations;
    } else {
      Timestamp first = EarliestInvalidationAfterLocked(req.tags, known_through);
      if (first != kTimestampInfinity) {
        interval.upper = first;
        still_valid = false;
        invalidated_at = clock_->Now();
        ++stats_.insert_time_truncations;
        if (interval.empty()) {
          // Invalidated at or before it became valid; nothing worth storing.
          ++stats_.inserts;
          *sweep_due = CountOpLocked();
          return Status::Ok();
        }
      }
    }
  }

  // Preserve the disjointness invariant: if any stored version already covers part of this
  // interval, keep the existing one (same key + overlapping validity implies equal value).
  for (const auto& v : entry.versions) {
    Interval effective = v->interval;
    effective.upper = EffectiveUpperLocked(*v);
    if (effective.Overlaps(interval) || v->interval.Overlaps(interval)) {
      ++stats_.duplicate_inserts;
      return Status::Ok();
    }
  }

  auto version = std::make_unique<Version>();
  version->interval = interval;
  version->known_valid_through = known_through;
  version->still_valid = still_valid;
  version->value = std::make_shared<const std::string>(req.value);
  version->tags = std::make_shared<const std::vector<InvalidationTag>>(req.tags);
  version->invalidated_wallclock = invalidated_at;
  version->bytes = EstimateBytes(req);
  version->touch_tick.store(touch_ticker_->fetch_add(1, std::memory_order_relaxed),
                            std::memory_order_relaxed);
  version->fill_cost_us = req.fill_cost_us;
  version->function = std::move(function);
  version->inserted_wallclock = clock_->Now();
  version->hints = std::move(hints);

  version->key = &map_it->first;
  lru_.push_front(version.get());
  version->lru_it = lru_.begin();
  global_bytes_->fetch_add(version->bytes, std::memory_order_relaxed);
  ++version_count_;
  if (still_valid) {
    RegisterTagsLocked(version.get());
  }
  if (cost_aware()) {
    if (still_valid) {
      AddToScoreIndexLocked(version.get());
    } else {
      AddToStaleListLocked(version.get());
    }
  }

  auto pos = std::lower_bound(
      entry.versions.begin(), entry.versions.end(), version->interval.lower,
      [](const std::unique_ptr<Version>& a, Timestamp t) { return a->interval.lower < t; });
  entry.versions.insert(pos, std::move(version));
  ++stats_.inserts;

  *sweep_due = CountOpLocked();
  return Status::Ok();
}

void CacheShard::ApplyInvalidation(const InvalidationMessage& msg, bool* sweep_due) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  const WallClock now = clock_->Now();
  std::vector<Version*> affected;
  for (const InvalidationTag& tag : msg.tags) {
    if (tag.wildcard) {
      auto it = table_index_.find(tag.table);
      if (it != table_index_.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
      }
    } else {
      auto it = tag_index_.find(tag);
      if (it != tag_index_.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
      }
      // Entries that carry a wildcard tag on this table depend on everything in it.
      auto wit = wildcard_holders_.find(tag.table);
      if (wit != wildcard_holders_.end()) {
        affected.insert(affected.end(), wit->second.begin(), wit->second.end());
      }
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
  for (Version* v : affected) {
    TruncateLocked(v, msg.ts, now);
  }
  RecordHistoryLocked(msg);
  last_invalidation_ts_ = std::max(last_invalidation_ts_, msg.ts);
  *sweep_due = CountOpLocked();
}

void CacheShard::TruncateLocked(Version* v, Timestamp ts, WallClock wallclock) {
  if (!v->still_valid) {
    return;
  }
  // The database accounted for everything up to known_valid_through when it computed the
  // interval; a coarser-granularity tag match in that range does not bound this value.
  if (ts <= v->known_valid_through) {
    return;
  }
  UnregisterTagsLocked(v);
  v->still_valid = false;
  v->interval.upper = ts;
  v->invalidated_wallclock = wallclock;
  if (cost_aware()) {
    if (advisor_ != nullptr && !v->function.empty()) {
      // TTL learning: the stream just revealed how long this function's result actually
      // stayed valid while resident. (Insert-time truncations never reach here — they carry
      // no residency interval worth learning from.)
      const WallClock lived = wallclock > v->inserted_wallclock
                                  ? wallclock - v->inserted_wallclock
                                  : WallClock{0};
      advisor_->ObserveLifetime(v->function, static_cast<uint64_t>(lived));
    }
    if (v->ttl_demoted) {
      // Already parked in the stale list by learned-TTL expiry — the prediction just came
      // true. Keep its (earlier) stale position; it is now genuinely stale.
      v->ttl_demoted = false;
    } else {
      // The version can now only serve pinned old snapshots: demote it from the score index
      // to the stale list, where the capacity policy evicts it before any still-valid entry.
      DetachPolicyStateLocked(v);
      AddToStaleListLocked(v);
    }
  }
  ++stats_.invalidation_truncations;
}

void CacheShard::RegisterTagsLocked(Version* v) {
  for (const InvalidationTag& tag : *v->tags) {
    if (tag.wildcard) {
      wildcard_holders_[tag.table].insert(v);
    } else {
      tag_index_[tag].insert(v);
    }
    table_index_[tag.table].insert(v);
  }
}

void CacheShard::UnregisterTagsLocked(Version* v) {
  for (const InvalidationTag& tag : *v->tags) {
    if (tag.wildcard) {
      auto it = wildcard_holders_.find(tag.table);
      if (it != wildcard_holders_.end()) {
        it->second.erase(v);
        if (it->second.empty()) {
          wildcard_holders_.erase(it);
        }
      }
    } else {
      auto it = tag_index_.find(tag);
      if (it != tag_index_.end()) {
        it->second.erase(v);
        if (it->second.empty()) {
          tag_index_.erase(it);
        }
      }
    }
    auto tit = table_index_.find(tag.table);
    if (tit != table_index_.end()) {
      tit->second.erase(v);
      if (tit->second.empty()) {
        table_index_.erase(tit);
      }
    }
  }
}

void CacheShard::RemoveVersionLocked(Version* v) {
  if (v->still_valid) {
    UnregisterTagsLocked(v);
  }
  DetachPolicyStateLocked(v);
  lru_.erase(v->lru_it);
  global_bytes_->fetch_sub(v->bytes, std::memory_order_relaxed);
  --version_count_;
  auto it = map_.find(*v->key);
  assert(it != map_.end());
  KeyEntry& entry = it->second;
  auto pos = std::find_if(entry.versions.begin(), entry.versions.end(),
                          [v](const std::unique_ptr<Version>& p) { return p.get() == v; });
  assert(pos != entry.versions.end());
  entry.versions.erase(pos);  // destroys v (readers holding its buffers keep them alive)
  // Keep the KeyEntry itself (ever_inserted distinguishes capacity from compulsory misses).
}

std::optional<uint64_t> CacheShard::OldestTick() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  if (lru_.empty()) {
    return std::nullopt;
  }
  return lru_.back()->touch_tick.load(std::memory_order_relaxed);
}

std::optional<EvictionCandidate> CacheShard::PeekVictim() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  if (stale_lru_.empty() && score_index_.empty()) {
    return std::nullopt;
  }
  EvictionCandidate c;
  if (!stale_lru_.empty()) {
    c.has_stale = true;
    c.stale_seq = stale_lru_.front()->stale_seq;
  }
  if (!score_index_.empty()) {
    c.has_scored = true;
    c.score = score_index_.begin()->first;
    c.tick = score_index_.begin()->second->touch_tick.load(std::memory_order_relaxed);
  }
  return c;
}

std::vector<VictimPreview> CacheShard::PreviewVictims(size_t bytes_needed) const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  std::vector<VictimPreview> out;
  const double floor = aging_floor_->load(std::memory_order_relaxed);
  size_t covered = 0;
  // This shard's own eviction order: the stale list front-to-back (all stale victims
  // precede all scored ones node-globally), then the score index ascending.
  for (const Version* v : stale_lru_) {
    if (covered >= bytes_needed) {
      return out;
    }
    VictimPreview p;
    p.stale = true;
    p.bytes = v->bytes;
    out.push_back(p);  // benefit 0: stale-listed bytes are free to displace
    covered += v->bytes;
  }
  for (const auto& [score, v] : score_index_) {
    if (covered >= bytes_needed) {
      break;
    }
    VictimPreview p;
    p.score = score;
    p.bytes = v->bytes;
    p.benefit_us = std::max(0.0, score - floor) * static_cast<double>(v->bytes);
    out.push_back(p);
    covered += v->bytes;
  }
  return out;
}

std::optional<EvictedVersion> CacheShard::EvictOne() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Apply pending touches first: within this shard the eviction decision is then exact with
  // respect to every hit that completed before the lock was acquired.
  DrainTouchesLocked();
  if (!cost_aware()) {
    if (lru_.empty()) {
      return std::nullopt;
    }
    EvictedVersion out = MakeEvictedLocked(*lru_.back());
    RemoveVersionLocked(lru_.back());
    ++stats_.evictions_lru;
    return out;
  }
  // Stale-first: a closed-interval version can only serve pinned old snapshots, so it always
  // goes before any still-valid entry; among stale versions, the longest-stale goes first.
  if (!stale_lru_.empty()) {
    Version* v = stale_lru_.front();
    EvictedVersion out = MakeEvictedLocked(*v);
    RemoveVersionLocked(v);
    ++stats_.evictions_capacity_stale;
    return out;
  }
  if (score_index_.empty()) {
    return std::nullopt;
  }
  // Lowest benefit-per-byte score goes first (equal scores evict in insertion order, which is
  // oldest-touched first since every drained hit batch reinserts). Evicting at score s raises
  // the node's aging floor to s: surviving entries must re-earn their margin through hits.
  Version* v = score_index_.begin()->second;
  const double evicted_score = v->score;
  double cur = aging_floor_->load(std::memory_order_relaxed);
  while (cur < evicted_score &&
         !aging_floor_->compare_exchange_weak(cur, evicted_score, std::memory_order_relaxed)) {
  }
  EvictedVersion out = MakeEvictedLocked(*v);
  RemoveVersionLocked(v);
  ++stats_.evictions_cost;
  return out;
}

std::unordered_map<std::string, uint64_t> CacheShard::FunctionHits() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Fold pending touches in first so profiles reflect every completed hit (the overflow
  // repair folds the whole LRU list, so dropped touch records cannot lose attribution).
  DrainTouchesLocked();
  return fn_hits_;
}

void CacheShard::SweepStale(const LifetimeSnapshot* learned) {
  const bool ttl_enabled =
      cost_aware() && advisor_ != nullptr && options_.ttl_expiry_slack > 0.0;
  // Snapshot (when the caller did not) BEFORE taking the exclusive lock: the advisor is a
  // node-global mutex, and the all-shards sweep passes one shared snapshot precisely so the
  // copy is not re-made under every shard's lock.
  LifetimeSnapshot own;
  if (ttl_enabled && learned == nullptr) {
    own = advisor_->LifetimeSnapshot();
    learned = &own;
  }
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  DrainTouchesLocked();
  SweepStaleLocked();
  if (ttl_enabled) {
    DemoteTtlExpiredLocked(*learned);
  }
}

void CacheShard::DemoteTtlExpiredLocked(const LifetimeSnapshot& learned) {
  // Scan the score index: only still-valid, score-indexed versions are demotion candidates.
  if (learned.empty()) {
    return;
  }
  const WallClock now = clock_->Now();
  std::vector<Version*> expired;
  for (const auto& [_, v] : score_index_) {
    if (v->function.empty()) {
      continue;
    }
    auto it = learned.find(v->function);
    if (it == learned.end() || it->second.truncations < options_.lifetime_min_samples) {
      continue;  // lifetime not learned yet: never demote on guesswork
    }
    const double limit = options_.ttl_expiry_slack * it->second.ewma_lifetime_us;
    if (static_cast<double>(now - v->inserted_wallclock) > limit) {
      expired.push_back(v);
    }
  }
  for (Version* v : expired) {
    // Eviction preference only: the version stays registered in the tag index and keeps
    // serving hits with its true validity until genuinely truncated or evicted. Demotion is
    // sticky — later hits do not re-promote it (monotone, like real staleness).
    DetachPolicyStateLocked(v);
    AddToStaleListLocked(v);
    v->ttl_demoted = true;
    ++stats_.ttl_demotions;
  }
}

void CacheShard::SweepStaleLocked() {
  const WallClock cutoff = clock_->Now() - options_.max_staleness;
  std::vector<Version*> victims;
  for (Version* v : lru_) {
    if (!v->still_valid && v->invalidated_wallclock > 0 && v->invalidated_wallclock < cutoff) {
      victims.push_back(v);
    }
  }
  for (Version* v : victims) {
    RemoveVersionLocked(v);
    ++stats_.evictions_stale;
  }
}

void CacheShard::RecordHistoryLocked(const InvalidationMessage& msg) {
  for (const InvalidationTag& tag : msg.tags) {
    if (tag.wildcard) {
      InsertSorted(table_wildcard_history_[tag.table], msg.ts);
    } else {
      InsertSorted(tag_history_[tag], msg.ts);
    }
    InsertSorted(table_any_history_[tag.table], msg.ts);
  }
  // Prune old history so memory stays bounded.
  if (msg.ts > options_.history_retention &&
      msg.ts - options_.history_retention > history_floor_) {
    history_floor_ = msg.ts - options_.history_retention;
    auto prune = [floor = history_floor_](auto& map) {
      for (auto it = map.begin(); it != map.end();) {
        auto& vec = it->second;
        vec.erase(vec.begin(), std::lower_bound(vec.begin(), vec.end(), floor));
        if (vec.empty()) {
          it = map.erase(it);
        } else {
          ++it;
        }
      }
    };
    prune(tag_history_);
    prune(table_wildcard_history_);
    prune(table_any_history_);
  }
}

Timestamp CacheShard::EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                                      Timestamp after) const {
  Timestamp earliest = kTimestampInfinity;
  for (const InvalidationTag& tag : tags) {
    if (tag.wildcard) {
      // An entry depending on the whole table is invalidated by any message touching it.
      auto it = table_any_history_.find(tag.table);
      if (it != table_any_history_.end()) {
        earliest = std::min(earliest, FirstAfter(it->second, after));
      }
    } else {
      auto it = tag_history_.find(tag);
      if (it != tag_history_.end()) {
        earliest = std::min(earliest, FirstAfter(it->second, after));
      }
      auto wit = table_wildcard_history_.find(tag.table);
      if (wit != table_wildcard_history_.end()) {
        earliest = std::min(earliest, FirstAfter(wit->second, after));
      }
    }
  }
  return earliest;
}

std::pair<uint64_t, std::string> CacheShard::ExportEntries() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  Writer w;
  for (const auto& [key, entry] : map_) {
    for (const auto& v : entry.versions) {
      w.PutString(key);
      w.PutString(*v->value);
      w.PutU64(v->interval.lower);
      w.PutU64(v->still_valid ? kTimestampInfinity : v->interval.upper);
      w.PutU64(v->known_valid_through);
      w.PutU64(v->fill_cost_us);
      w.PutU32(static_cast<uint32_t>(v->tags->size()));
      for (const InvalidationTag& tag : *v->tags) {
        w.PutString(tag.table);
        w.PutString(tag.index);
        w.PutString(tag.key);
        w.PutBool(tag.wildcard);
      }
    }
  }
  return {version_count_, w.Take()};
}

void CacheShard::AdoptStreamPosition(Timestamp last_invalidation_ts, bool raise_history_floor) {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  last_invalidation_ts_ = std::max(last_invalidation_ts_, last_invalidation_ts);
  if (raise_history_floor && last_invalidation_ts > history_floor_) {
    // The messages up to the adopted position were never applied here, so the retained
    // history has a gap. Raising the floor makes Insert's replay path bound any still-valid
    // claim computed before the gap at known_through + 1 instead of trusting it.
    history_floor_ = last_invalidation_ts;
  }
}

void CacheShard::Flush() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Everything the touch buffer points at dies below; discard the records rather than apply
  // them (readers that already hold value aliases keep their buffers via the shared_ptrs).
  touch_buffer_.Reset();
  touch_overflow_.store(false, std::memory_order_relaxed);
  size_t freed = 0;
  for (const Version* v : lru_) {
    freed += v->bytes;
  }
  map_.clear();
  lru_.clear();
  score_index_.clear();
  stale_lru_.clear();
  tag_index_.clear();
  table_index_.clear();
  wildcard_holders_.clear();
  global_bytes_->fetch_sub(freed, std::memory_order_relaxed);
  version_count_ = 0;
}

CacheStats CacheShard::stats() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  CacheStats s = stats_;
  s.lookups += lookups_.load(std::memory_order_relaxed);
  s.hits += hits_.load(std::memory_order_relaxed);
  s.miss_compulsory += miss_compulsory_.load(std::memory_order_relaxed);
  s.miss_staleness += miss_staleness_.load(std::memory_order_relaxed);
  s.miss_capacity += miss_capacity_.load(std::memory_order_relaxed);
  s.miss_consistency += miss_consistency_.load(std::memory_order_relaxed);
  return s;
}

void CacheShard::ResetStats() {
  std::unique_lock<InstrumentedSharedMutex> lock(mu_);
  // Drain so pending per-function attribution lands before the profile map is cleared, then
  // mark every resident version fully attributed — pre-reset hits must not leak into the
  // next window's profiles at a later drain.
  DrainTouchesLocked();
  stats_ = CacheStats{};
  for (std::atomic<uint64_t>* c :
       {&lookups_, &hits_, &miss_compulsory_, &miss_staleness_, &miss_capacity_,
        &miss_consistency_}) {
    c->store(0, std::memory_order_relaxed);
  }
  fn_hits_.clear();
  for (Version* v : lru_) {
    v->attributed_hits = v->hit_count.load(std::memory_order_relaxed);
  }
}

size_t CacheShard::version_count() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return version_count_;
}

size_t CacheShard::key_count() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return map_.size();
}

Timestamp CacheShard::last_invalidation_ts() const {
  std::shared_lock<InstrumentedSharedMutex> lock(mu_);
  return last_invalidation_ts_;
}

}  // namespace txcache
