#include "src/cache/file_snapshot_store.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "src/util/hash.h"
#include "src/util/serde.h"

namespace txcache {

namespace {

// "TXSN" little-endian, followed by a u32 format version.
constexpr uint32_t kSnapFileMagic = 0x4e535854;
constexpr uint32_t kSnapFileVersion = 1;
// magic + version + payload_len(u64) + checksum(u64)
constexpr size_t kSnapHeaderBytes = 4 + 4 + 8 + 8;

std::string SanitizeNodeName(const std::string& node) {
  std::string out;
  out.reserve(node.size());
  for (char c : node) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) {
    out = "_";
  }
  return out;
}

// Write all of `data` to fd, riding out EINTR/short writes.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

FileSnapshotStore::FileSnapshotStore(std::string dir) : dir_(std::move(dir)) {
  if (mkdir(dir_.c_str(), 0755) == 0 || errno == EEXIST) {
    dir_ok_ = true;
  }
}

std::string FileSnapshotStore::PathFor(const std::string& node) const {
  return dir_ + "/" + SanitizeNodeName(node) + ".snap";
}

void FileSnapshotStore::Save(const std::string& node, std::string snapshot) {
  if (!dir_ok_) {
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Writer w;
  w.PutU32(kSnapFileMagic);
  w.PutU32(kSnapFileVersion);
  w.PutU64(snapshot.size());
  w.PutU64(Fnv1a(snapshot));
  const std::string path = PathFor(node);
  const std::string tmp = path + ".tmp";
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const bool wrote = WriteAll(fd, w.Take()) && WriteAll(fd, snapshot) && fsync(fd) == 0;
  close(fd);
  if (!wrote || rename(tmp.c_str(), path.c_str()) != 0) {
    unlink(tmp.c_str());
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  saves_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::string> FileSnapshotStore::LoadFreshest(const std::string& node) const {
  loads_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = PathFor(node);
  int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return std::nullopt;  // no snapshot yet — not corruption
  }
  std::string raw;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    close(fd);
    if (n < 0) {
      corrupt_rejects_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    break;
  }
  if (raw.size() < kSnapHeaderBytes) {
    corrupt_rejects_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Reader r(raw);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
  if (!r.GetU32(&magic) || !r.GetU32(&version) || !r.GetU64(&payload_len) ||
      !r.GetU64(&checksum) || magic != kSnapFileMagic || version != kSnapFileVersion ||
      payload_len != raw.size() - kSnapHeaderBytes) {
    corrupt_rejects_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string payload = raw.substr(kSnapHeaderBytes);
  if (Fnv1a(payload) != checksum) {
    corrupt_rejects_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return payload;
}

void FileSnapshotStore::Erase(const std::string& node) {
  unlink(PathFor(node).c_str());
}

}  // namespace txcache
