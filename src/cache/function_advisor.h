// Node-level per-function learning shared between the CacheServer frontend and its shards:
// realized-lifetime EWMAs (TTL learning) and the latest published AdvisoryHints snapshot per
// CacheKeyFunction.
//
// Shards report a realized lifetime whenever the invalidation stream truncates a still-valid
// entry (wall clock from insert to truncation); the staleness sweep asks for the learned value
// to demote entries that outlived it to stale-first eviction candidates. The frontend publishes
// an AdvisoryHints snapshot on every admission decision and eviction fold-back; shards stamp
// the current snapshot onto versions at insert and refresh it at deferred-touch drains, so the
// zero-copy hit path serves hints with one shared_ptr copy and zero map probes.
//
// Locking: one leaf mutex. Callers may hold a shard lock or the frontend's profile mutex when
// calling in; the advisor never calls out, so no ordering cycle is possible. All methods are
// off the lookup hot path (truncation, sweep, insert, drain, stats).
#ifndef SRC_CACHE_FUNCTION_ADVISOR_H_
#define SRC_CACHE_FUNCTION_ADVISOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/cache/cache_types.h"

namespace txcache {

class FunctionAdvisor {
 public:
  struct LifetimeEntry {
    uint64_t truncations = 0;    // stream truncations observed (EWMA sample count)
    double ewma_lifetime_us = 0.0;
  };

  FunctionAdvisor(double ewma_alpha, uint64_t min_samples, size_t max_entries)
      : alpha_(ewma_alpha), min_samples_(min_samples), max_entries_(max_entries) {}

  FunctionAdvisor(const FunctionAdvisor&) = delete;
  FunctionAdvisor& operator=(const FunctionAdvisor&) = delete;

  // One realized lifetime observation: the invalidation stream truncated a still-valid entry
  // of `fn` that had been resident for `lifetime_us` of wall-clock time.
  void ObserveLifetime(const std::string& fn, uint64_t lifetime_us) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = FindOrCreateLocked(fn);
    if (e == nullptr) {
      return;  // over the cap: unprofiled functions learn nothing (and are never demoted)
    }
    ++e->lifetime.truncations;
    e->lifetime.ewma_lifetime_us =
        e->lifetime.truncations == 1
            ? static_cast<double>(lifetime_us)
            : alpha_ * static_cast<double>(lifetime_us) +
                  (1.0 - alpha_) * e->lifetime.ewma_lifetime_us;
  }

  // The function's learned lifetime in µs, or 0 while unknown (never observed, or fewer than
  // min_samples truncations — young functions must not be TTL-demoted off one sample).
  uint64_t LearnedLifetimeUs(const std::string& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(fn);
    if (it == map_.end() || it->second.lifetime.truncations < min_samples_) {
      return 0;
    }
    return static_cast<uint64_t>(it->second.lifetime.ewma_lifetime_us);
  }

  // Every function's lifetime profile (stats merge, and the sweep's one-snapshot-per-pass
  // demotion scan — one lock hop per sweep instead of one per resident version).
  std::unordered_map<std::string, LifetimeEntry> LifetimeSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::unordered_map<std::string, LifetimeEntry> out;
    out.reserve(map_.size());
    for (const auto& [fn, e] : map_) {
      out.emplace(fn, e.lifetime);
    }
    return out;
  }

  // Publishes the latest advisory snapshot for `fn` from the frontend's profile numbers,
  // folding in the learned lifetime under the same single lock acquisition. Replaces the
  // previous snapshot only when a field actually changed (readers holding the old
  // shared_ptr keep a stable view either way, exactly like the zero-copy value aliases);
  // an unchanged republish costs no allocation. Returns the current snapshot, or null when
  // the function is over the profile cap.
  std::shared_ptr<const AdvisoryHints> Publish(const std::string& fn, double observed_bpb,
                                               double decline_rate) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = FindOrCreateLocked(fn);
    if (e == nullptr) {
      return nullptr;
    }
    const uint64_t learned =
        e->lifetime.truncations >= min_samples_
            ? static_cast<uint64_t>(e->lifetime.ewma_lifetime_us)
            : 0;
    if (e->hints == nullptr || e->hints->learned_lifetime_us != learned ||
        e->hints->observed_bpb != observed_bpb || e->hints->decline_rate != decline_rate) {
      AdvisoryHints h;
      h.learned_lifetime_us = learned;
      h.observed_bpb = observed_bpb;
      h.decline_rate = decline_rate;
      e->hints = std::make_shared<const AdvisoryHints>(h);
    }
    return e->hints;
  }

  // Latest published snapshot, or null when none exists.
  std::shared_ptr<const AdvisoryHints> Hints(const std::string& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(fn);
    return it == map_.end() ? nullptr : it->second.hints;
  }

 private:
  struct Entry {
    LifetimeEntry lifetime;
    std::shared_ptr<const AdvisoryHints> hints;
  };

  Entry* FindOrCreateLocked(const std::string& fn) {
    auto it = map_.find(fn);
    if (it != map_.end()) {
      return &it->second;
    }
    if (map_.size() >= max_entries_) {
      return nullptr;  // bounded like the frontend's profile map (max_function_profiles)
    }
    return &map_.try_emplace(fn).first->second;
  }

  const double alpha_;
  const uint64_t min_samples_;
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace txcache

#endif  // SRC_CACHE_FUNCTION_ADVISOR_H_
