#include "src/cache/cache_server.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/util/hash.h"
#include "src/util/serde.h"

namespace txcache {

namespace {

// Decorrelates shard routing from the consistent-hash ring (which also hashes the key): a
// node must not see all its keys land on one shard because the ring already filtered them.
constexpr uint64_t kShardSeed = 0x7c15'cafe'f00d'9e37ull;

}  // namespace

const char* MissKindName(MissKind kind) {
  switch (kind) {
    case MissKind::kNone:
      return "hit";
    case MissKind::kCompulsory:
      return "compulsory";
    case MissKind::kStaleness:
      return "staleness";
    case MissKind::kCapacity:
      return "capacity";
    case MissKind::kConsistency:
      return "consistency";
  }
  return "?";
}

CacheServer::CacheServer(std::string name, const Clock* clock, Options options)
    : name_(std::move(name)),
      clock_(clock),
      options_(options),
      sequencer_([this](const InvalidationMessage& msg) { ApplySequenced(msg); }) {
  const size_t n = std::max<size_t>(options_.num_shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<CacheShard>(clock_, options_, &bytes_used_, &touch_ticker_));
  }
}

CacheServer::~CacheServer() = default;

size_t CacheServer::ShardIndexForKey(const std::string& key) const {
  return static_cast<size_t>(Mix64(Fnv1a(key) ^ kShardSeed) % shards_.size());
}

CacheShard* CacheServer::ShardForKey(const std::string& key) const {
  return shards_[ShardIndexForKey(key)].get();
}

LookupResponse CacheServer::Lookup(const LookupRequest& req) {
  return ShardForKey(req.key)->Lookup(req);
}

MultiLookupResponse CacheServer::MultiLookup(const MultiLookupRequest& req) {
  MultiLookupResponse resp;
  resp.responses.resize(req.lookups.size());
  std::vector<uint32_t> all(req.lookups.size());
  for (uint32_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  MultiLookup(req, all, &resp);
  return resp;
}

void CacheServer::MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                              MultiLookupResponse* out) {
  // Group request positions per shard, then take each shard lock once for its whole group.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (uint32_t i : indices) {
    by_shard[ShardIndexForKey(req.lookups[i].key)].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) {
      shards_[s]->LookupBatch(req, by_shard[s], out);
    }
  }
}

Status CacheServer::Insert(const InsertRequest& req) {
  bool sweep_due = false;
  Status st = ShardForKey(req.key)->Insert(req, &sweep_due);
  if (!st.ok()) {
    return st;
  }
  // Sweep and evict with no shard lock held (both take shard locks one at a time).
  if (sweep_due) {
    SweepAllShards();
  }
  EvictToFit();
  return Status::Ok();
}

void CacheServer::Deliver(const InvalidationMessage& msg) {
  sequencer_.Deliver(msg);
  // Sweep outside the sequencer's critical section: a full-node sweep inside the sink would
  // stall every concurrent Deliver for its whole duration.
  if (sweep_pending_.exchange(false, std::memory_order_relaxed)) {
    SweepAllShards();
  }
}

void CacheServer::ApplySequenced(const InvalidationMessage& msg) {
  invalidation_messages_.fetch_add(1, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    bool due = false;
    shard->ApplyInvalidation(msg, &due);
    if (due) {
      sweep_pending_.store(true, std::memory_order_relaxed);
    }
  }
}

void CacheServer::SweepAllShards() {
  // The trigger is a per-shard op counter (so skewed traffic still fires), but the sweep
  // itself covers every shard: stale garbage parked in a cold shard would otherwise never be
  // collected, since cold shards by definition see no ops of their own.
  for (auto& shard : shards_) {
    shard->SweepStale();
  }
}

void CacheServer::EvictToFit() {
  while (bytes_used_.load(std::memory_order_relaxed) > options_.capacity_bytes) {
    // Find the shard whose LRU tail is globally least recently used. Ticks come from one
    // monotone node-wide counter, so comparing tails reconstructs the monolithic LRU order
    // (approximately, under concurrent touches — eviction is best-effort LRU anyway).
    size_t victim = shards_.size();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < shards_.size(); ++i) {
      auto tick = shards_[i]->OldestTick();
      if (tick.has_value() && *tick < oldest) {
        oldest = *tick;
        victim = i;
      }
    }
    if (victim == shards_.size() || !shards_[victim]->EvictOne()) {
      break;  // nothing resident (accounting drift is impossible; avoid spinning regardless)
    }
  }
}

std::string CacheServer::ExportSnapshot() const {
  // Read the stream position BEFORE exporting shard entries: a message applied mid-export
  // may then be absent from some exported entry, but the importer — whose adopted position
  // predates that message — will receive and re-apply it, truncating the entry normally.
  // The reverse order would let an entry exported as still-valid escape the message forever.
  const uint64_t header_seqno = sequencer_.next_expected_seqno();
  const Timestamp header_last_ts = last_invalidation_ts();
  std::vector<std::pair<uint64_t, std::string>> parts;
  parts.reserve(shards_.size());
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    parts.push_back(shard->ExportEntries());
    total += parts.back().first;
  }
  Writer w;
  w.PutU64(header_seqno);
  w.PutU64(header_last_ts);
  w.PutU64(total);
  std::string out = w.Take();
  for (auto& [count, bytes] : parts) {
    out += bytes;
  }
  return out;
}

Status CacheServer::ImportSnapshot(const std::string& snapshot) {
  Reader r(snapshot);
  uint64_t seqno = 0;
  uint64_t last_ts = 0;
  uint64_t count = 0;
  if (!r.GetU64(&seqno) || !r.GetU64(&last_ts) || !r.GetU64(&count)) {
    return Status::InvalidArgument("malformed cache snapshot header");
  }
  // Adopt the snapshot's stream position only if it is ahead of ours; replaying an older
  // position would make us miss invalidations we already applied.
  sequencer_.AdoptPosition(seqno);
  for (auto& shard : shards_) {
    shard->AdoptStreamPosition(last_ts);
  }
  for (uint64_t i = 0; i < count; ++i) {
    InsertRequest req;
    uint64_t lower = 0, upper = 0, known = 0;
    uint32_t tag_count = 0;
    if (!r.GetString(&req.key) || !r.GetString(&req.value) || !r.GetU64(&lower) ||
        !r.GetU64(&upper) || !r.GetU64(&known) || !r.GetU32(&tag_count)) {
      return Status::InvalidArgument("malformed cache snapshot entry");
    }
    req.interval = Interval{lower, upper};
    req.computed_at = known;
    req.tags.reserve(tag_count);
    for (uint32_t t = 0; t < tag_count; ++t) {
      InvalidationTag tag;
      if (!r.GetString(&tag.table) || !r.GetString(&tag.index) || !r.GetString(&tag.key) ||
          !r.GetBool(&tag.wildcard)) {
        return Status::InvalidArgument("malformed cache snapshot tag");
      }
      req.tags.push_back(std::move(tag));
    }
    Status st = Insert(req);
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

void CacheServer::Flush() {
  for (auto& shard : shards_) {
    shard->Flush();
  }
}

CacheStats CacheServer::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    total += shard->stats();  // shard partials leave the node-level counters at zero
  }
  total.invalidation_messages = invalidation_messages_.load(std::memory_order_relaxed);
  total.reorder_buffered = sequencer_.reorder_buffered();
  return total;
}

void CacheServer::ResetStats() {
  for (auto& shard : shards_) {
    shard->ResetStats();
  }
  invalidation_messages_.store(0, std::memory_order_relaxed);
  sequencer_.ResetStats();
}

size_t CacheServer::bytes_used() const { return bytes_used_.load(std::memory_order_relaxed); }

size_t CacheServer::version_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->version_count();
  }
  return n;
}

size_t CacheServer::key_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->key_count();
  }
  return n;
}

Timestamp CacheServer::last_invalidation_ts() const {
  Timestamp ts = kTimestampZero;
  for (const auto& shard : shards_) {
    ts = std::max(ts, shard->last_invalidation_ts());
  }
  return ts;
}

}  // namespace txcache
