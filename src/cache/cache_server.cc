#include "src/cache/cache_server.h"

#include <algorithm>
#include <cassert>

#include "src/util/serde.h"

namespace txcache {

namespace {

// Fixed per-version bookkeeping overhead charged against the byte budget.
constexpr size_t kVersionOverhead = 96;

size_t TagBytes(const std::vector<InvalidationTag>& tags) {
  size_t n = 0;
  for (const InvalidationTag& t : tags) {
    n += t.table.size() + t.index.size() + t.key.size() + 8;
  }
  return n;
}

void InsertSorted(std::vector<Timestamp>& history, Timestamp ts) {
  auto it = std::lower_bound(history.begin(), history.end(), ts);
  if (it == history.end() || *it != ts) {
    history.insert(it, ts);
  }
}

Timestamp FirstAfter(const std::vector<Timestamp>& history, Timestamp after) {
  auto it = std::upper_bound(history.begin(), history.end(), after);
  return it == history.end() ? kTimestampInfinity : *it;
}

}  // namespace

const char* MissKindName(MissKind kind) {
  switch (kind) {
    case MissKind::kNone:
      return "hit";
    case MissKind::kCompulsory:
      return "compulsory";
    case MissKind::kStaleness:
      return "staleness";
    case MissKind::kCapacity:
      return "capacity";
    case MissKind::kConsistency:
      return "consistency";
  }
  return "?";
}

CacheServer::CacheServer(std::string name, const Clock* clock, Options options)
    : name_(std::move(name)), clock_(clock), options_(options) {}

CacheServer::~CacheServer() = default;

Timestamp CacheServer::EffectiveUpperLocked(const Version& v) const {
  if (!v.still_valid) {
    return v.interval.upper;
  }
  // A still-valid entry is known valid through the later of (a) the snapshot it was computed
  // from (the database vouches for it) and (b) the last invalidation applied by this node (the
  // stream would have truncated it otherwise). +1 converts an inclusive timestamp to the
  // exclusive upper bound.
  return std::max(v.known_valid_through, last_invalidation_ts_) + 1;
}

LookupResponse CacheServer::Lookup(const LookupRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  LookupResponse resp;

  auto it = map_.find(req.key);
  const KeyEntry* entry = it == map_.end() ? nullptr : &it->second;
  if (entry == nullptr || !entry->ever_inserted) {
    resp.miss = MissKind::kCompulsory;
    ++stats_.miss_compulsory;
    return resp;
  }

  const Interval want{req.bounds_lo,
                      req.bounds_hi == kTimestampInfinity ? kTimestampInfinity
                                                          : req.bounds_hi + 1};
  Version* best = nullptr;
  Interval best_effective;
  bool any_fresh = false;  // some version intersects [fresh_lo, last_inval]: staleness is fine
  for (const auto& v : entry->versions) {
    Interval effective = v->interval;
    effective.upper = EffectiveUpperLocked(*v);
    const Interval fresh_want{req.fresh_lo, std::max(req.fresh_lo, last_invalidation_ts_) + 1};
    if (effective.Overlaps(fresh_want)) {
      any_fresh = true;
    }
    if (!effective.Overlaps(want)) {
      continue;
    }
    if (best == nullptr || effective.lower > best_effective.lower) {
      best = v.get();
      best_effective = effective;
    }
  }
  if (best != nullptr) {
    ++stats_.hits;
    TouchLocked(best);
    resp.hit = true;
    resp.value = best->value;
    resp.interval = best_effective;
    resp.still_valid = best->still_valid;
    if (best->still_valid) {
      resp.tags = best->tags;
    }
    return resp;
  }
  if (any_fresh) {
    // Something fresh enough existed, just not consistent with the caller's pin set.
    resp.miss = MissKind::kConsistency;
    ++stats_.miss_consistency;
  } else if (entry->versions.empty()) {
    resp.miss = MissKind::kCapacity;
    ++stats_.miss_capacity;
  } else {
    resp.miss = MissKind::kStaleness;
    ++stats_.miss_staleness;
  }
  return resp;
}

Status CacheServer::Insert(const InsertRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (req.interval.empty()) {
    return Status::InvalidArgument("empty validity interval");
  }
  KeyEntry& entry = map_[req.key];
  entry.ever_inserted = true;

  Interval interval = req.interval;
  Timestamp known_through = std::max(interval.lower, req.computed_at);
  bool still_valid = interval.unbounded();
  WallClock invalidated_at = 0;

  if (still_valid) {
    // Replay invalidations that arrived before this insert (§4.2): anything later than the
    // snapshot the value was computed at may have changed the result.
    if (known_through < history_floor_) {
      // History no longer covers the gap; conservatively bound validity at what the database
      // vouched for rather than risking a stale still-valid entry.
      interval.upper = known_through + 1;
      still_valid = false;
      invalidated_at = clock_->Now();
      ++stats_.insert_time_truncations;
    } else {
      Timestamp first = EarliestInvalidationAfterLocked(req.tags, known_through);
      if (first != kTimestampInfinity) {
        interval.upper = first;
        still_valid = false;
        invalidated_at = clock_->Now();
        ++stats_.insert_time_truncations;
        if (interval.empty()) {
          // Invalidated at or before it became valid; nothing worth storing.
          ++stats_.inserts;
          return Status::Ok();
        }
      }
    }
  }

  // Preserve the disjointness invariant: if any stored version already covers part of this
  // interval, keep the existing one (same key + overlapping validity implies equal value).
  for (const auto& v : entry.versions) {
    Interval effective = v->interval;
    effective.upper = EffectiveUpperLocked(*v);
    if (effective.Overlaps(interval) || v->interval.Overlaps(interval)) {
      ++stats_.duplicate_inserts;
      return Status::Ok();
    }
  }

  auto version = std::make_unique<Version>();
  version->interval = interval;
  version->known_valid_through = known_through;
  version->still_valid = still_valid;
  version->value = req.value;
  version->tags = req.tags;
  version->invalidated_wallclock = invalidated_at;
  version->bytes = kVersionOverhead + req.key.size() + req.value.size() + TagBytes(req.tags);

  auto map_it = map_.find(req.key);
  version->key = &map_it->first;
  lru_.push_front(version.get());
  version->lru_it = lru_.begin();
  bytes_used_ += version->bytes;
  ++version_count_;
  if (still_valid) {
    RegisterTagsLocked(version.get());
  }

  auto pos = std::lower_bound(
      entry.versions.begin(), entry.versions.end(), version->interval.lower,
      [](const std::unique_ptr<Version>& a, Timestamp t) { return a->interval.lower < t; });
  entry.versions.insert(pos, std::move(version));
  ++stats_.inserts;

  if (++ops_since_sweep_ >= options_.sweep_interval_ops) {
    SweepStaleLocked();
    ops_since_sweep_ = 0;
  }
  EvictToFitLocked();
  return Status::Ok();
}

void CacheServer::Deliver(const InvalidationMessage& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (msg.seqno < next_expected_seqno_) {
    return;  // duplicate
  }
  if (msg.seqno > next_expected_seqno_) {
    reorder_buffer_.emplace(msg.seqno, msg);
    ++stats_.reorder_buffered;
    return;
  }
  ApplyLocked(msg);
  ++next_expected_seqno_;
  // Drain any buffered successors.
  auto it = reorder_buffer_.begin();
  while (it != reorder_buffer_.end() && it->first == next_expected_seqno_) {
    ApplyLocked(it->second);
    ++next_expected_seqno_;
    it = reorder_buffer_.erase(it);
  }
}

void CacheServer::ApplyLocked(const InvalidationMessage& msg) {
  ++stats_.invalidation_messages;
  const WallClock now = clock_->Now();
  std::vector<Version*> affected;
  for (const InvalidationTag& tag : msg.tags) {
    if (tag.wildcard) {
      auto it = table_index_.find(tag.table);
      if (it != table_index_.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
      }
    } else {
      auto it = tag_index_.find(tag);
      if (it != tag_index_.end()) {
        affected.insert(affected.end(), it->second.begin(), it->second.end());
      }
      // Entries that carry a wildcard tag on this table depend on everything in it.
      auto wit = wildcard_holders_.find(tag.table);
      if (wit != wildcard_holders_.end()) {
        affected.insert(affected.end(), wit->second.begin(), wit->second.end());
      }
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
  for (Version* v : affected) {
    TruncateLocked(v, msg.ts, now);
  }
  RecordHistoryLocked(msg);
  last_invalidation_ts_ = std::max(last_invalidation_ts_, msg.ts);
}

void CacheServer::TruncateLocked(Version* v, Timestamp ts, WallClock wallclock) {
  if (!v->still_valid) {
    return;
  }
  // The database accounted for everything up to known_valid_through when it computed the
  // interval; a coarser-granularity tag match in that range does not bound this value.
  if (ts <= v->known_valid_through) {
    return;
  }
  UnregisterTagsLocked(v);
  v->still_valid = false;
  v->interval.upper = ts;
  v->invalidated_wallclock = wallclock;
  ++stats_.invalidation_truncations;
}

void CacheServer::RegisterTagsLocked(Version* v) {
  for (const InvalidationTag& tag : v->tags) {
    if (tag.wildcard) {
      wildcard_holders_[tag.table].insert(v);
    } else {
      tag_index_[tag].insert(v);
    }
    table_index_[tag.table].insert(v);
  }
}

void CacheServer::UnregisterTagsLocked(Version* v) {
  for (const InvalidationTag& tag : v->tags) {
    if (tag.wildcard) {
      auto it = wildcard_holders_.find(tag.table);
      if (it != wildcard_holders_.end()) {
        it->second.erase(v);
        if (it->second.empty()) {
          wildcard_holders_.erase(it);
        }
      }
    } else {
      auto it = tag_index_.find(tag);
      if (it != tag_index_.end()) {
        it->second.erase(v);
        if (it->second.empty()) {
          tag_index_.erase(it);
        }
      }
    }
    auto tit = table_index_.find(tag.table);
    if (tit != table_index_.end()) {
      tit->second.erase(v);
      if (tit->second.empty()) {
        table_index_.erase(tit);
      }
    }
  }
}

void CacheServer::RemoveVersionLocked(Version* v) {
  if (v->still_valid) {
    UnregisterTagsLocked(v);
  }
  lru_.erase(v->lru_it);
  bytes_used_ -= v->bytes;
  --version_count_;
  auto it = map_.find(*v->key);
  assert(it != map_.end());
  KeyEntry& entry = it->second;
  auto pos = std::find_if(entry.versions.begin(), entry.versions.end(),
                          [v](const std::unique_ptr<Version>& p) { return p.get() == v; });
  assert(pos != entry.versions.end());
  entry.versions.erase(pos);  // destroys v
  // Keep the KeyEntry itself (ever_inserted distinguishes capacity from compulsory misses).
}

void CacheServer::TouchLocked(Version* v) {
  lru_.erase(v->lru_it);
  lru_.push_front(v);
  v->lru_it = lru_.begin();
}

void CacheServer::EvictToFitLocked() {
  while (bytes_used_ > options_.capacity_bytes && !lru_.empty()) {
    Version* victim = lru_.back();
    RemoveVersionLocked(victim);
    ++stats_.evictions_lru;
  }
}

void CacheServer::SweepStaleLocked() {
  const WallClock cutoff = clock_->Now() - options_.max_staleness;
  std::vector<Version*> victims;
  for (Version* v : lru_) {
    if (!v->still_valid && v->invalidated_wallclock > 0 && v->invalidated_wallclock < cutoff) {
      victims.push_back(v);
    }
  }
  for (Version* v : victims) {
    RemoveVersionLocked(v);
    ++stats_.evictions_stale;
  }
}

void CacheServer::RecordHistoryLocked(const InvalidationMessage& msg) {
  for (const InvalidationTag& tag : msg.tags) {
    if (tag.wildcard) {
      InsertSorted(table_wildcard_history_[tag.table], msg.ts);
    } else {
      InsertSorted(tag_history_[tag], msg.ts);
    }
    InsertSorted(table_any_history_[tag.table], msg.ts);
  }
  // Prune old history so memory stays bounded.
  if (msg.ts > options_.history_retention &&
      msg.ts - options_.history_retention > history_floor_) {
    history_floor_ = msg.ts - options_.history_retention;
    auto prune = [floor = history_floor_](auto& map) {
      for (auto it = map.begin(); it != map.end();) {
        auto& vec = it->second;
        vec.erase(vec.begin(), std::lower_bound(vec.begin(), vec.end(), floor));
        if (vec.empty()) {
          it = map.erase(it);
        } else {
          ++it;
        }
      }
    };
    prune(tag_history_);
    prune(table_wildcard_history_);
    prune(table_any_history_);
  }
}

Timestamp CacheServer::EarliestInvalidationAfterLocked(const std::vector<InvalidationTag>& tags,
                                                       Timestamp after) const {
  Timestamp earliest = kTimestampInfinity;
  for (const InvalidationTag& tag : tags) {
    if (tag.wildcard) {
      // An entry depending on the whole table is invalidated by any message touching it.
      auto it = table_any_history_.find(tag.table);
      if (it != table_any_history_.end()) {
        earliest = std::min(earliest, FirstAfter(it->second, after));
      }
    } else {
      auto it = tag_history_.find(tag);
      if (it != tag_history_.end()) {
        earliest = std::min(earliest, FirstAfter(it->second, after));
      }
      auto wit = table_wildcard_history_.find(tag.table);
      if (wit != table_wildcard_history_.end()) {
        earliest = std::min(earliest, FirstAfter(wit->second, after));
      }
    }
  }
  return earliest;
}

std::string CacheServer::ExportSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Writer w;
  w.PutU64(next_expected_seqno_);
  w.PutU64(last_invalidation_ts_);
  w.PutU64(version_count_);
  for (const auto& [key, entry] : map_) {
    for (const auto& v : entry.versions) {
      w.PutString(key);
      w.PutString(v->value);
      w.PutU64(v->interval.lower);
      w.PutU64(v->still_valid ? kTimestampInfinity : v->interval.upper);
      w.PutU64(v->known_valid_through);
      w.PutU32(static_cast<uint32_t>(v->tags.size()));
      for (const InvalidationTag& tag : v->tags) {
        w.PutString(tag.table);
        w.PutString(tag.index);
        w.PutString(tag.key);
        w.PutBool(tag.wildcard);
      }
    }
  }
  return w.Take();
}

Status CacheServer::ImportSnapshot(const std::string& snapshot) {
  Reader r(snapshot);
  uint64_t seqno = 0;
  uint64_t last_ts = 0;
  uint64_t count = 0;
  if (!r.GetU64(&seqno) || !r.GetU64(&last_ts) || !r.GetU64(&count)) {
    return Status::InvalidArgument("malformed cache snapshot header");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Adopt the snapshot's stream position only if it is ahead of ours; replaying an older
    // position would make us miss invalidations we already applied.
    next_expected_seqno_ = std::max(next_expected_seqno_, seqno);
    last_invalidation_ts_ = std::max<Timestamp>(last_invalidation_ts_, last_ts);
  }
  for (uint64_t i = 0; i < count; ++i) {
    InsertRequest req;
    uint64_t lower = 0, upper = 0, known = 0;
    uint32_t tag_count = 0;
    if (!r.GetString(&req.key) || !r.GetString(&req.value) || !r.GetU64(&lower) ||
        !r.GetU64(&upper) || !r.GetU64(&known) || !r.GetU32(&tag_count)) {
      return Status::InvalidArgument("malformed cache snapshot entry");
    }
    req.interval = Interval{lower, upper};
    req.computed_at = known;
    req.tags.reserve(tag_count);
    for (uint32_t t = 0; t < tag_count; ++t) {
      InvalidationTag tag;
      if (!r.GetString(&tag.table) || !r.GetString(&tag.index) || !r.GetString(&tag.key) ||
          !r.GetBool(&tag.wildcard)) {
        return Status::InvalidArgument("malformed cache snapshot tag");
      }
      req.tags.push_back(std::move(tag));
    }
    Status st = Insert(req);
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

void CacheServer::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  tag_index_.clear();
  table_index_.clear();
  wildcard_holders_.clear();
  bytes_used_ = 0;
  version_count_ = 0;
}

CacheStats CacheServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CacheServer::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

size_t CacheServer::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

size_t CacheServer::version_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_count_;
}

size_t CacheServer::key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

Timestamp CacheServer::last_invalidation_ts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_invalidation_ts_;
}

}  // namespace txcache
