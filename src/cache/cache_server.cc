#include "src/cache/cache_server.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <optional>

#include "src/util/hash.h"
#include "src/util/serde.h"

namespace txcache {

namespace {

// Decorrelates shard routing from the consistent-hash ring (which also hashes the key): a
// node must not see all its keys land on one shard because the ring already filtered them.
constexpr uint64_t kShardSeed = 0x7c15'cafe'f00d'9e37ull;

// Snapshot wire format. v2 added fill_cost_us to each entry record; the explicit version
// field makes a cross-build snapshot handoff fail loudly instead of misparsing.
constexpr uint32_t kSnapshotFormatVersion = 2;

}  // namespace

std::string CacheKeyFunction(const std::string& key) {
  // Keys built by MakeCacheKey start with the function name as a length-prefixed serde string.
  Reader r(key);
  std::string name;
  if (r.GetString(&name) && !name.empty()) {
    return name;
  }
  return key;  // raw key (tests/tools): the key is its own cost-accounting bucket
}

const char* MissKindName(MissKind kind) {
  switch (kind) {
    case MissKind::kNone:
      return "hit";
    case MissKind::kCompulsory:
      return "compulsory";
    case MissKind::kStaleness:
      return "staleness";
    case MissKind::kCapacity:
      return "capacity";
    case MissKind::kConsistency:
      return "consistency";
    case MissKind::kNodeUnavailable:
      return "node_unavailable";
  }
  return "?";
}

CacheServer::CacheServer(std::string name, const Clock* clock, Options options)
    : name_(std::move(name)),
      clock_(clock),
      options_(options),
      interner_(options.max_function_profiles),
      sequencer_([this](const InvalidationMessage& msg) { ApplySequenced(msg); }),
      advisor_(options.lifetime_ewma_alpha, options.lifetime_min_samples,
               options.max_function_profiles) {
  const size_t n = std::max<size_t>(options_.num_shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<CacheShard>(clock_, options_, &bytes_used_,
                                                   &touch_ticker_, &aging_floor_, &advisor_,
                                                   &interner_, &tag_interner_));
  }
}

CacheServer::~CacheServer() = default;

size_t CacheServer::ShardIndexForHash(uint64_t key_hash) const {
  return static_cast<size_t>(Mix64(key_hash ^ kShardSeed) % shards_.size());
}

size_t CacheServer::ShardIndexForKey(const std::string& key) const {
  return ShardIndexForHash(Fnv1a(key));
}

CacheShard* CacheServer::ShardForHash(uint64_t key_hash) const {
  return shards_[ShardIndexForHash(key_hash)].get();
}

uint64_t CacheServer::exclusive_lock_acquisitions() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->exclusive_lock_acquisitions();
  }
  return n;
}

bool CacheServer::CheckServing() {
  NodeState s = state_.load(std::memory_order_acquire);
  if (s == NodeState::kServing) {
    return true;
  }
  if (s == NodeState::kDown) {
    return false;
  }
  // Joining: the barrier drops itself once the sequencer has caught up to the join target.
  if (sequencer_.next_expected_seqno() >= join_target_.load(std::memory_order_acquire)) {
    NodeState expected = NodeState::kJoining;
    state_.compare_exchange_strong(expected, NodeState::kServing, std::memory_order_acq_rel);
    return state_.load(std::memory_order_acquire) == NodeState::kServing;
  }
  return false;
}

void CacheServer::FillUnavailable(LookupResponse* resp) {
  *resp = LookupResponse{};
  resp->miss = MissKind::kNodeUnavailable;
  unavailable_misses_.fetch_add(1, std::memory_order_relaxed);
}

void CacheServer::Crash() {
  state_.store(NodeState::kDown, std::memory_order_release);
  // A crashed process holds no advisory state: every write intent dies with it. (Cached DATA
  // is deliberately kept — Join() decides its fate — but intents guard in-flight transactions
  // whose clients will observe the crash as kUnavailable and treat their operations as
  // vacuously complete, so a surviving intent could only wedge later writers.)
  ClearIntents();
}

Status CacheServer::Join(InvalidationBus* bus) {
  // Raise the barrier before touching the stream: nothing may be served until the node has
  // seen every invalidation it missed. The sentinel target makes the barrier unconditional —
  // a concurrent request's CheckServing must not promote us against a stale (or zero) target
  // before the catch-up/flush work below has finished; the real target is published last.
  join_target_.store(std::numeric_limits<uint64_t>::max(), std::memory_order_release);
  state_.store(NodeState::kJoining, std::memory_order_release);
  // Any intent that survived in pre-crash state is from a transaction that has long since
  // aborted or committed (its release bounced off the down node): drop them all before
  // serving resumes, so a rejoined node never blocks fresh writers on dead owners.
  ClearIntents();
  // Subscribe BEFORE reading the join target: a message published in between is then either
  // inside the replayed range or delivered live (and held by the sequencer's reorder buffer
  // until replay fills the gap) — never lost.
  bus->Subscribe(this);
  const uint64_t target = bus->next_seqno();
  const uint64_t position = sequencer_.next_expected_seqno();
  if (position < target) {
    Status replay = bus->ReplayFrom(this, position);
    if (!replay.ok() && !TryRestoreFromSnapshot(bus, target, position)) {
      // Catch-up impossible and no snapshot helped: the bounded history no longer reaches
      // back to our position. Discard everything rather than risk serving an entry whose
      // invalidation fell in the gap, and adopt the live position (draining any
      // live-delivered messages the reorder buffer already holds at/after it). Raising the
      // shards' history floor makes later inserts computed inside the gap truncate
      // conservatively instead of claiming still-valid (the no-stale-read analogue of the
      // snapshot-import caveat).
      Flush();
      sequencer_.AdoptPosition(target);
      const Timestamp adopted_ts = bus->last_published_ts();
      for (auto& shard : shards_) {
        shard->AdoptStreamPosition(adopted_ts, /*raise_history_floor=*/true);
      }
      join_flushes_.fetch_add(1, std::memory_order_relaxed);
    } else if (replay.ok()) {
      join_catchups_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Only now may the barrier drop: every flush/floor side effect above is complete, so a
  // concurrent CheckServing that observes this target cannot expose partial join state.
  join_target_.store(target, std::memory_order_release);
  CheckServing();
  return Status::Ok();
}

bool CacheServer::TryRestoreFromSnapshot(InvalidationBus* bus, uint64_t target,
                                         uint64_t position) {
  if (snapshot_store_ == nullptr) {
    return false;
  }
  std::optional<std::string> snap = snapshot_store_->LoadFreshest(name_);
  if (!snap.has_value()) {
    return false;
  }
  // Peek the header without importing: the decision needs only the snapshot's stream
  // position. Restoring helps exactly when the snapshot is AHEAD of us — a cold restart
  // (fresh process at position 1) behind a store that kept persisting. A snapshot at or
  // behind our own position adds nothing: our residual gap would be unchanged.
  Reader r(*snap);
  uint32_t version = 0;
  uint64_t snap_seqno = 0;
  uint64_t snap_last_ts = 0;
  if (!r.GetU32(&version) || version != kSnapshotFormatVersion || !r.GetU64(&snap_seqno) ||
      !r.GetU64(&snap_last_ts) || snap_seqno <= position) {
    return false;
  }
  // Drop whatever (stale, uncovered) state we hold, then import. The fresh-node precondition
  // of ImportSnapshot (see the caveat on its declaration) is established by this flush: no
  // pre-existing still-valid entry can skip a truncation the snapshot fast-forwards past.
  Flush();
  if (!ImportSnapshot(*snap).ok()) {
    Flush();  // half-imported state is unusable; the caller's flush path adopts the target
    return false;
  }
  if (snap_seqno < target) {
    Status residual = bus->ReplayFrom(this, snap_seqno);
    if (!residual.ok()) {
      // Even the post-snapshot gap outran the bounded history. Keep the imported data — its
      // closed intervals are correct regardless — but administratively close every imported
      // still-valid version at what the exporter had seen: an invalidation inside the gap
      // can then never be skipped, because nothing claims validity beyond the snapshot.
      // Adopt the live position and raise the history floor, exactly like the flush path.
      const Timestamp adopted_ts = bus->last_published_ts();
      sequencer_.AdoptPosition(target);
      for (auto& shard : shards_) {
        shard->CloseAllStillValid(snap_last_ts);
        shard->AdoptStreamPosition(adopted_ts, /*raise_history_floor=*/true);
      }
    }
  }
  join_snapshot_restores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void CacheServer::PersistSnapshot() {
  if (snapshot_store_ == nullptr ||
      state_.load(std::memory_order_acquire) != NodeState::kServing) {
    return;
  }
  snapshot_store_->Save(name_, ExportSnapshot());
}

LookupResponse CacheServer::Lookup(const LookupRequest& req) {
  if (!CheckServing()) {
    LookupResponse resp;
    FillUnavailable(&resp);
    return resp;
  }
  // Hash-once: the client-carried hash routes the shard AND probes its map; nothing below
  // this point rehashes the key.
  const uint64_t key_hash = RequestKeyHash(req);
  return ShardForHash(key_hash)->Lookup(req, key_hash);
}

IntentResponse CacheServer::AcquireIntent(const IntentRequest& req) {
  if (!CheckServing()) {
    IntentResponse resp;
    resp.status = Status::Unavailable("cache node not serving (down or joining)");
    return resp;
  }
  const uint64_t key_hash = RequestKeyHash(req);
  return ShardForHash(key_hash)->AcquireIntent(req, key_hash);
}

IntentResponse CacheServer::ReleaseIntent(const IntentRequest& req) {
  IntentResponse resp;
  if (!CheckServing()) {
    // A node that went down holding intents has already dropped them (Crash/Join clear
    // wholesale); release against a non-serving node is a vacuous success.
    resp.status = Status::Unavailable("cache node not serving (down or joining)");
    return resp;
  }
  const uint64_t key_hash = RequestKeyHash(req);
  ShardForHash(key_hash)->ReleaseIntent(req, key_hash);
  resp.status = Status::Ok();
  return resp;
}

size_t CacheServer::ClearIntents() {
  size_t dropped = 0;
  for (auto& shard : shards_) {
    dropped += shard->ClearIntents();
  }
  return dropped;
}

void CacheServer::set_replication_hook(std::function<void(CacheServer*)> hook) {
  std::lock_guard<std::mutex> lock(replication_hook_mu_);
  replication_hook_ = std::move(hook);
}

MultiLookupResponse CacheServer::MultiLookup(const MultiLookupRequest& req) {
  MultiLookupResponse resp;
  resp.responses.resize(req.lookups.size());
  std::vector<uint32_t> all(req.lookups.size());
  for (uint32_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  MultiLookup(req, all, &resp);
  return resp;
}

void CacheServer::MultiLookup(const MultiLookupRequest& req, const std::vector<uint32_t>& indices,
                              MultiLookupResponse* out) {
  if (!CheckServing()) {
    // A down/joining node degrades its batch positions to misses; the rest of the batch (on
    // other nodes) is unaffected and request-order reassembly still holds.
    for (uint32_t i : indices) {
      FillUnavailable(&out->responses[i]);
    }
    return;
  }
  // Group request positions per shard, then take each shard lock once for its whole group.
  // Buckets reserve an even-split hint up front so skew only costs one regrow, not many.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  const size_t per_shard_hint = indices.size() / shards_.size() + 1;
  for (uint32_t i : indices) {
    auto& bucket = by_shard[ShardIndexForHash(RequestKeyHash(req.lookups[i]))];
    if (bucket.empty()) {
      bucket.reserve(per_shard_hint + 3);
    }
    bucket.push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) {
      shards_[s]->LookupBatch(req, by_shard[s], out);
    }
  }
}

double CacheServer::DisplacementCost(size_t bytes_needed) const {
  // Global eviction order: every stale-listed victim (free) goes before any scored one;
  // scored victims then charge cheapest-score first. Previews read shards under shared
  // locks one at a time — best-effort against concurrent mutation, like eviction itself.
  size_t covered = 0;
  std::vector<VictimPreview> scored;
  for (const auto& shard : shards_) {
    for (VictimPreview& p : shard->PreviewVictims(bytes_needed)) {
      if (p.stale) {
        covered += p.bytes;
      } else {
        scored.push_back(p);
      }
    }
  }
  if (covered >= bytes_needed) {
    return 0.0;  // the fill can be absorbed by evicting already-worthless bytes
  }
  std::sort(scored.begin(), scored.end(),
            [](const VictimPreview& a, const VictimPreview& b) { return a.score < b.score; });
  double cost = 0.0;
  for (const VictimPreview& p : scored) {
    if (covered >= bytes_needed) {
      break;
    }
    covered += p.bytes;
    cost += p.benefit_us;
  }
  return cost;
}

std::shared_ptr<const AdvisoryHints> CacheServer::PublishHintsLocked(
    const std::string& function, const FunctionProfile& p) {
  // One advisor lock hop: the learned lifetime is read and the snapshot swapped (only when
  // something changed) inside a single Publish call.
  return advisor_.Publish(function, p.ewma_benefit_per_byte,
                          p.fills == 0 ? 0.0
                                       : static_cast<double>(p.rejects + p.too_large) /
                                             static_cast<double>(p.fills));
}

Status CacheServer::AdmitInsert(const InsertRequest& req, const std::string& function,
                                std::shared_ptr<const AdvisoryHints>* hints) {
  if (options_.policy != EvictionPolicy::kCostAware) {
    // Plain LRU keeps the PR-1 insert path untouched: no node-global lock, no profiling.
    return Status::Ok();
  }
  const size_t est_bytes = CacheShard::EstimateBytes(req);
  const double bpb = est_bytes == 0 ? 0.0
                                    : static_cast<double>(req.fill_cost_us) /
                                          static_cast<double>(est_bytes);
  // One snapshot of the byte usage for the whole decision: pressure and the displacement
  // `need` below must come from the same load, or a concurrent eviction between two loads
  // could underflow `need` into a near-2^64 full-cache victim scan and a spurious decline.
  const size_t used = bytes_used_.load(std::memory_order_relaxed);
  const bool pressure = used + est_bytes > options_.capacity_bytes;

  // Size-aware gate, judged per entry before the per-function bookkeeping (a declined fill
  // still updates the profile, so decline_rate hints and EWMAs keep learning).
  Status size_gate = Status::Ok();
  const size_t shard_slice = options_.capacity_bytes / std::max<size_t>(shards_.size(), 1);
  if (options_.max_entry_fraction > 0.0 &&
      static_cast<double>(est_bytes) >
          options_.max_entry_fraction * static_cast<double>(shard_slice)) {
    // The guard: one entry may never monopolize its shard's slice of the byte budget,
    // benefit notwithstanding — a 4 MB value on an 8 MB slice would make the shard's
    // residency a coin flip between it and everything else.
    size_gate = Status::DeclinedTooLarge("entry exceeds max_entry_fraction of a shard slice");
  } else if (pressure && est_bytes >= options_.displacement_check_bytes) {
    // Displacement comparison: what this fill would earn (its fill cost — the recompute one
    // future hit saves) against the summed remaining benefit of the victims its bytes would
    // displace. The aging floor approximates this for small fills (they displace ~one
    // victim); a multi-MB fill displaces thousands of entries whose summed benefit the
    // floor never sees, which is exactly the comparison run here.
    const size_t need = used + est_bytes - options_.capacity_bytes;
    const double displaced = DisplacementCost(need);
    if (displaced > static_cast<double>(req.fill_cost_us)) {
      size_gate = Status::DeclinedTooLarge("fill benefit below displacement cost");
    }
  }

  std::lock_guard<std::mutex> lock(fn_mu_);
  auto it = fn_profiles_.find(function);
  if (it == fn_profiles_.end()) {
    if (fn_profiles_.size() >= options_.max_function_profiles) {
      // Over the profile cap: unprofiled functions are never watermark-declined, but the
      // per-entry size gate still applies (it needs no profile).
      if (!size_gate.ok()) {
        admission_rejects_too_large_.fetch_add(1, std::memory_order_relaxed);
      }
      return size_gate;
    }
    it = fn_profiles_.emplace(function, FunctionProfile{}).first;
    it->second.ewma_benefit_per_byte = bpb;  // optimistic prior: assume one hit per fill
  }
  FunctionProfile& p = it->second;
  ++p.fills;
  p.bytes_inserted += est_bytes;
  p.fill_cost_total_us += req.fill_cost_us;
  if (!size_gate.ok()) {
    ++p.too_large;
    admission_rejects_too_large_.fetch_add(1, std::memory_order_relaxed);
    *hints = PublishHintsLocked(function, p);
    return size_gate;
  }
  // Decline only when (a) the node is under byte pressure (this insert forces an eviction),
  // (b) the function has been observed enough to trust its profile, and (c) its realized
  // benefit-per-byte sits below the watermark — a fraction of the aging floor, i.e. of the
  // score entries are currently being evicted at. Such an entry would be evicted almost
  // immediately, so storing it only displaces more valuable bytes.
  const double floor = aging_floor_.load(std::memory_order_relaxed);
  if (floor > 0.0 && pressure && p.fills > options_.admission_min_samples &&
      p.ewma_benefit_per_byte < floor * options_.admission_watermark_fraction) {
    ++p.rejects;
    if (options_.admission_probe_interval != 0 &&
        p.rejects % options_.admission_probe_interval == 0) {
      // Periodic probe: admit anyway so a function whose workload turned hot can re-earn
      // admission through the realized hits of this entry.
      admission_probes_.fetch_add(1, std::memory_order_relaxed);
      *hints = PublishHintsLocked(function, p);
      return Status::Ok();
    }
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    *hints = PublishHintsLocked(function, p);
    return Status::Declined("benefit-per-byte below admission watermark");
  }
  *hints = PublishHintsLocked(function, p);
  return Status::Ok();
}

Status CacheServer::Insert(const InsertRequest& req,
                           std::shared_ptr<const AdvisoryHints>* hints_out) {
  if (!CheckServing()) {
    // Refusing fills while down/joining keeps the join barrier simple: nothing enters the
    // cache until the node provably holds the complete invalidation history behind it.
    // (Warm rejoin is the one exception — ImportSnapshot inserts through InsertImpl below,
    // because the snapshot's entries carry their own provably-consistent stream position.)
    return Status::Unavailable("cache node not serving (down or joining)");
  }
  return InsertImpl(req, hints_out);
}

Status CacheServer::InsertImpl(const InsertRequest& req,
                               std::shared_ptr<const AdvisoryHints>* hints_out) {
  // Hash and parse once per insert: the key hash routes the shard and probes its map; the
  // function prefix feeds the admission gate, the shard's per-function hit bookkeeping and
  // the eviction fold-back. Plain LRU never uses the function, so it skips the parse.
  const uint64_t key_hash = RequestKeyHash(req);
  std::string function = options_.policy == EvictionPolicy::kCostAware
                             ? CacheKeyFunction(req.key)
                             : std::string();
  std::shared_ptr<const AdvisoryHints> hints;
  Status admitted = AdmitInsert(req, function, &hints);
  if (hints_out != nullptr) {
    *hints_out = hints;
  }
  if (!admitted.ok()) {
    return admitted;
  }
  bool sweep_due = false;
  Status st = ShardForHash(key_hash)->Insert(req, key_hash, std::move(function),
                                             std::move(hints), &sweep_due);
  if (!st.ok()) {
    return st;
  }
  // Sweep and evict with no shard lock held (both take shard locks one at a time).
  if (sweep_due) {
    SweepAllShards();
  }
  EvictToFit();
  return Status::Ok();
}

void CacheServer::Deliver(const InvalidationMessage& msg) {
  if (state_.load(std::memory_order_acquire) == NodeState::kDown) {
    return;  // a crashed process loses stream traffic; Join() closes the gap on rejoin
  }
  sequencer_.Deliver(msg);
  // Join barrier: this message may have been the one that brings the stream position up to
  // the join target, in which case the node may start serving.
  CheckServing();
  // Sweep outside the sequencer's critical section: a full-node sweep inside the sink would
  // stall every concurrent Deliver for its whole duration.
  if (sweep_pending_.exchange(false, std::memory_order_relaxed)) {
    SweepAllShards();
  }
  // Periodic warm-rejoin persistence, also outside the sequencer: every
  // snapshot_interval_messages deliveries one (arbitrary) delivering thread exports and
  // saves. PersistSnapshot itself refuses while joining — a snapshot taken behind the join
  // barrier could capture a position ahead of entries the barrier hasn't admitted yet.
  if (snapshot_store_ != nullptr && options_.snapshot_interval_messages != 0 &&
      messages_since_snapshot_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          options_.snapshot_interval_messages) {
    messages_since_snapshot_.store(0, std::memory_order_relaxed);
    PersistSnapshot();
  }
  // Background hot-key replication rides the same tail: every replication_interval_messages
  // deliveries, one (arbitrary) delivering thread pushes this node's hot keys to its replicas
  // via the installed hook — no driver needs to pump ReplicateHotKeys. Only while serving: a
  // joining node's entries are behind the barrier and must not propagate.
  if (options_.replication_interval_messages != 0 &&
      messages_since_replication_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          options_.replication_interval_messages &&
      state_.load(std::memory_order_acquire) == NodeState::kServing) {
    messages_since_replication_.store(0, std::memory_order_relaxed);
    std::function<void(CacheServer*)> hook;
    {
      std::lock_guard<std::mutex> lock(replication_hook_mu_);
      hook = replication_hook_;
    }
    if (hook) {
      hook(this);
    }
  }
}

void CacheServer::ApplySequenced(const InvalidationMessage& msg) {
  invalidation_messages_.fetch_add(1, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    bool due = false;
    shard->ApplyInvalidation(msg, &due);
    if (due) {
      sweep_pending_.store(true, std::memory_order_relaxed);
    }
  }
}

void CacheServer::SweepAllShards() {
  // The trigger is a per-shard op counter (so skewed traffic still fires), but the sweep
  // itself covers every shard: stale garbage parked in a cold shard would otherwise never be
  // collected, since cold shards by definition see no ops of their own. The learned-lifetime
  // snapshot for the TTL-expiry pass is taken once here and shared by every shard.
  CacheShard::LifetimeSnapshot learned;
  if (options_.policy == EvictionPolicy::kCostAware && options_.ttl_expiry_slack > 0.0) {
    learned = advisor_.LifetimeSnapshot();
  }
  for (auto& shard : shards_) {
    shard->SweepStale(&learned);
  }
}

void CacheServer::EvictToFit() {
  while (bytes_used_.load(std::memory_order_relaxed) > options_.capacity_bytes) {
    size_t victim = shards_.size();
    if (options_.policy == EvictionPolicy::kCostAware) {
      // Node-global policy order: any stale (closed-interval) version goes before any
      // still-valid one, oldest-stale first; otherwise the globally lowest benefit-per-byte
      // score, ties broken by oldest touch. Candidates are re-peeked each iteration, so
      // concurrent mutation only costs a retry, never a wrong-policy eviction.
      uint64_t best_stale_seq = std::numeric_limits<uint64_t>::max();
      double best_score = std::numeric_limits<double>::infinity();
      uint64_t best_tick = std::numeric_limits<uint64_t>::max();
      size_t stale_victim = shards_.size();
      for (size_t i = 0; i < shards_.size(); ++i) {
        auto c = shards_[i]->PeekVictim();
        if (!c.has_value()) {
          continue;
        }
        if (c->has_stale && c->stale_seq < best_stale_seq) {
          best_stale_seq = c->stale_seq;
          stale_victim = i;
        }
        if (c->has_scored &&
            (c->score < best_score || (c->score == best_score && c->tick < best_tick))) {
          best_score = c->score;
          best_tick = c->tick;
          victim = i;
        }
      }
      if (stale_victim != shards_.size()) {
        victim = stale_victim;
      }
    } else {
      // Find the shard whose LRU tail is globally least recently used. Ticks come from one
      // monotone node-wide counter, so comparing tails reconstructs the monolithic LRU order
      // (approximately, under concurrent touches — eviction is best-effort LRU anyway).
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < shards_.size(); ++i) {
        auto tick = shards_[i]->OldestTick();
        if (tick.has_value() && *tick < oldest) {
          oldest = *tick;
          victim = i;
        }
      }
    }
    if (victim == shards_.size()) {
      break;  // nothing resident (accounting drift is impossible; avoid spinning regardless)
    }
    auto evicted = shards_[victim]->EvictOne();
    if (!evicted.has_value()) {
      break;
    }
    capacity_evictions_.fetch_add(1, std::memory_order_relaxed);
    eviction_bytes_reclaimed_.fetch_add(evicted->bytes, std::memory_order_relaxed);
    if (options_.policy == EvictionPolicy::kCostAware) {
      // Fold the victim's realized benefit-per-byte (what its residency actually earned) back
      // into its function's admission profile: functions whose entries die unhit drift below
      // the watermark; functions whose entries earn hits stay admitted.
      const double realized =
          evicted->bytes == 0
              ? 0.0
              : static_cast<double>(evicted->hits) * static_cast<double>(evicted->fill_cost_us) /
                    static_cast<double>(evicted->bytes);
      std::lock_guard<std::mutex> lock(fn_mu_);
      auto it = fn_profiles_.find(evicted->function);
      if (it != fn_profiles_.end()) {  // unprofiled (over the cap): nothing to update
        const double a = options_.benefit_ewma_alpha;
        it->second.ewma_benefit_per_byte =
            a * realized + (1.0 - a) * it->second.ewma_benefit_per_byte;
        // Keep the published advisory snapshot tracking the fold-back, so clients observing
        // hints see the same EWMA the admission gate will judge their next fill by.
        PublishHintsLocked(evicted->function, it->second);
      }
    }
  }
}

std::string CacheServer::ExportSnapshot() const {
  // Read the stream position BEFORE exporting shard entries: a message applied mid-export
  // may then be absent from some exported entry, but the importer — whose adopted position
  // predates that message — will receive and re-apply it, truncating the entry normally.
  // The reverse order would let an entry exported as still-valid escape the message forever.
  const uint64_t header_seqno = sequencer_.next_expected_seqno();
  const Timestamp header_last_ts = last_invalidation_ts();
  std::vector<std::pair<uint64_t, std::string>> parts;
  parts.reserve(shards_.size());
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    parts.push_back(shard->ExportEntries());
    total += parts.back().first;
  }
  Writer w;
  w.PutU32(kSnapshotFormatVersion);
  w.PutU64(header_seqno);
  w.PutU64(header_last_ts);
  w.PutU64(total);
  std::string out = w.Take();
  for (auto& [count, bytes] : parts) {
    out += bytes;
  }
  return out;
}

Status CacheServer::ImportSnapshot(const std::string& snapshot) {
  Reader r(snapshot);
  uint32_t version = 0;
  uint64_t seqno = 0;
  uint64_t last_ts = 0;
  uint64_t count = 0;
  if (!r.GetU32(&version)) {
    return Status::InvalidArgument("malformed cache snapshot header");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported cache snapshot format version " +
                                   std::to_string(version));
  }
  if (!r.GetU64(&seqno) || !r.GetU64(&last_ts) || !r.GetU64(&count)) {
    return Status::InvalidArgument("malformed cache snapshot header");
  }
  // Adopt the snapshot's stream position only if it is ahead of ours; replaying an older
  // position would make us miss invalidations we already applied.
  sequencer_.AdoptPosition(seqno);
  for (auto& shard : shards_) {
    shard->AdoptStreamPosition(last_ts);
  }
  for (uint64_t i = 0; i < count; ++i) {
    InsertRequest req;
    uint64_t lower = 0, upper = 0, known = 0, fill_cost = 0;
    uint32_t tag_count = 0;
    if (!r.GetString(&req.key) || !r.GetString(&req.value) || !r.GetU64(&lower) ||
        !r.GetU64(&upper) || !r.GetU64(&known) || !r.GetU64(&fill_cost) ||
        !r.GetU32(&tag_count)) {
      return Status::InvalidArgument("malformed cache snapshot entry");
    }
    req.interval = Interval{lower, upper};
    req.computed_at = known;
    req.fill_cost_us = fill_cost;
    req.tags.reserve(tag_count);
    for (uint32_t t = 0; t < tag_count; ++t) {
      InvalidationTag tag;
      if (!r.GetString(&tag.table) || !r.GetString(&tag.index) || !r.GetString(&tag.key) ||
          !r.GetBool(&tag.wildcard)) {
        return Status::InvalidArgument("malformed cache snapshot tag");
      }
      req.tags.push_back(std::move(tag));
    }
    // InsertImpl, not Insert: warm rejoin imports while the join barrier still refuses
    // public fills.
    Status st = InsertImpl(req, nullptr);
    if (!st.ok() && st.code() != StatusCode::kDeclined &&
        st.code() != StatusCode::kDeclinedTooLarge) {
      // An admission decline (watermark or size gate) is a policy outcome, not a malformed
      // snapshot: skip the entry.
      return st;
    }
  }
  return Status::Ok();
}

void CacheServer::Flush() {
  for (auto& shard : shards_) {
    shard->Flush();
  }
}

std::vector<InsertRequest> CacheServer::ExportHotKeys(size_t max_keys) {
  std::vector<InsertRequest> out;
  if (max_keys == 0) {
    return out;
  }
  // Harvest every shard's sketch (the counters reset as a side effect — sliding window),
  // rank globally, then export each shard's share of the winners in one pass per shard.
  std::vector<std::unordered_map<uint64_t, uint64_t>> per_shard;
  per_shard.reserve(shards_.size());
  std::vector<std::pair<uint64_t, uint64_t>> ranked;  // (count, hash)
  for (auto& shard : shards_) {
    per_shard.push_back(shard->HarvestHotHashes());
    for (const auto& [hash, count] : per_shard.back()) {
      ranked.emplace_back(count, hash);
    }
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  if (ranked.size() > max_keys) {
    ranked.resize(max_keys);
  }
  std::vector<std::vector<uint64_t>> wanted(shards_.size());
  for (const auto& [count, hash] : ranked) {
    wanted[ShardIndexForHash(hash)].push_back(hash);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (wanted[s].empty()) {
      continue;
    }
    std::vector<InsertRequest> part = shards_[s]->ExportForReplication(wanted[s]);
    for (InsertRequest& req : part) {
      out.push_back(std::move(req));
    }
  }
  // Re-rank the flattened exports hottest-first so callers replicating a prefix replicate
  // the right keys.
  std::unordered_map<uint64_t, uint64_t> rank;
  rank.reserve(ranked.size());
  for (const auto& [count, hash] : ranked) {
    rank[hash] = count;
  }
  std::sort(out.begin(), out.end(), [&rank](const InsertRequest& a, const InsertRequest& b) {
    return rank[a.key_hash] > rank[b.key_hash];
  });
  return out;
}

CacheStats CacheServer::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    total += shard->stats();  // shard partials leave the node-level counters at zero
  }
  total.invalidation_messages = invalidation_messages_.load(std::memory_order_relaxed);
  total.reorder_buffered = sequencer_.reorder_buffered();
  total.eviction_bytes_reclaimed = eviction_bytes_reclaimed_.load(std::memory_order_relaxed);
  total.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  total.admission_probes = admission_probes_.load(std::memory_order_relaxed);
  total.admission_rejects_too_large =
      admission_rejects_too_large_.load(std::memory_order_relaxed);
  // Lookups refused while down/joining count as lookups too, so hit_rate() reflects the
  // traffic the node turned away and hits + misses() still equals lookups.
  const uint64_t unavailable = unavailable_misses_.load(std::memory_order_relaxed);
  total.lookups += unavailable;
  total.nodes_unavailable += unavailable;
  total.join_catchups = join_catchups_.load(std::memory_order_relaxed);
  total.join_flushes = join_flushes_.load(std::memory_order_relaxed);
  total.join_snapshot_restores = join_snapshot_restores_.load(std::memory_order_relaxed);
  return total;
}

std::vector<FunctionStatsEntry> CacheServer::FunctionStats() const {
  std::unordered_map<std::string, FunctionStatsEntry> merged;
  {
    std::lock_guard<std::mutex> lock(fn_mu_);
    merged.reserve(fn_profiles_.size());
    for (const auto& [name, p] : fn_profiles_) {
      FunctionStatsEntry e;
      e.function = name;
      e.fills = p.fills;
      e.admission_rejects = p.rejects;
      e.declined_too_large = p.too_large;
      e.bytes_inserted = p.bytes_inserted;
      e.fill_cost_total_us = p.fill_cost_total_us;
      e.ewma_benefit_per_byte = p.ewma_benefit_per_byte;
      merged.emplace(name, std::move(e));
    }
  }
  for (const auto& [name, lt] : advisor_.LifetimeSnapshot()) {
    auto it = merged.find(name);
    if (it == merged.end()) {
      FunctionStatsEntry e;
      e.function = name;
      it = merged.emplace(name, std::move(e)).first;
    }
    it->second.truncations = lt.truncations;
    it->second.ewma_lifetime_us = lt.ewma_lifetime_us;
  }
  for (const auto& shard : shards_) {
    for (const auto& [name, hits] : shard->FunctionHits()) {
      auto it = merged.find(name);
      if (it == merged.end()) {
        FunctionStatsEntry e;
        e.function = name;
        it = merged.emplace(name, std::move(e)).first;
      }
      it->second.hits += hits;
    }
  }
  std::vector<FunctionStatsEntry> out;
  out.reserve(merged.size());
  for (auto& [_, e] : merged) {
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionStatsEntry& a, const FunctionStatsEntry& b) {
              return a.function < b.function;
            });
  return out;
}

void CacheServer::ResetStats() {
  for (auto& shard : shards_) {
    shard->ResetStats();
  }
  invalidation_messages_.store(0, std::memory_order_relaxed);
  capacity_evictions_.store(0, std::memory_order_relaxed);
  eviction_bytes_reclaimed_.store(0, std::memory_order_relaxed);
  admission_rejects_.store(0, std::memory_order_relaxed);
  admission_probes_.store(0, std::memory_order_relaxed);
  admission_rejects_too_large_.store(0, std::memory_order_relaxed);
  unavailable_misses_.store(0, std::memory_order_relaxed);
  join_catchups_.store(0, std::memory_order_relaxed);
  join_flushes_.store(0, std::memory_order_relaxed);
  join_snapshot_restores_.store(0, std::memory_order_relaxed);
  // Function profiles are policy state, not counters: they survive a stats reset so the
  // admission gate keeps its learned benefit history between measurement windows.
  sequencer_.ResetStats();
}

size_t CacheServer::bytes_used() const { return bytes_used_.load(std::memory_order_relaxed); }

size_t CacheServer::version_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->version_count();
  }
  return n;
}

size_t CacheServer::key_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->key_count();
  }
  return n;
}

Timestamp CacheServer::last_invalidation_ts() const {
  Timestamp ts = kTimestampZero;
  for (const auto& shard : shards_) {
    ts = std::max(ts, shard->last_invalidation_ts());
  }
  return ts;
}

}  // namespace txcache
