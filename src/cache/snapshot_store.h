// Pluggable persistence for cache snapshots (paper §8: "we ensured the cache was warm by
// restoring its contents from a snapshot").
//
// A CacheServer with a SnapshotStore attached persists its serialized state (see
// CacheServer::ExportSnapshot for the format) every Options::snapshot_interval_messages
// applied invalidations. On a COLD restart — a fresh process whose sequencer starts at
// position 1 — Join() asks the store for the freshest snapshot before falling back to an
// empty cache: the snapshot's embedded stream position becomes the node's adopted position
// and only the residual gap (snapshot position .. join target) needs catch-up replay from
// the bus history. That turns the full-flush rejoin cliff into a bounded dip whose size is
// the snapshot interval, not the outage length.
//
// The store sees opaque bytes keyed by node name; it performs no validation (ImportSnapshot
// re-checks the format version and replays every entry through the normal insert path). A
// production deployment would back this with local disk or a blob store; the in-memory
// implementation below is what the tests, the simulator and the benchmarks use.
#ifndef SRC_CACHE_SNAPSHOT_STORE_H_
#define SRC_CACHE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace txcache {

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  // Persists `snapshot` as the freshest state for `node`, replacing any prior snapshot. The
  // caller (CacheServer) invokes this from Deliver's periodic hook and from explicit
  // PersistSnapshot calls; implementations must be safe against concurrent Save/LoadFreshest.
  virtual void Save(const std::string& node, std::string snapshot) = 0;

  // Returns the freshest snapshot persisted for `node`, or nullopt when none exists. The
  // bytes embed the stream position they were exported at; Join() only restores when that
  // position is ahead of the rejoining node's own.
  virtual std::optional<std::string> LoadFreshest(const std::string& node) const = 0;
};

// Thread-safe in-memory store: one retained snapshot per node (each Save supersedes the
// last, mirroring a single rotated snapshot file). Counters let tests assert the periodic
// persistence cadence without reaching into the server.
class InMemorySnapshotStore : public SnapshotStore {
 public:
  void Save(const std::string& node, std::string snapshot) override {
    std::lock_guard<std::mutex> lock(mu_);
    snapshots_[node] = std::move(snapshot);
    ++saves_;
  }

  std::optional<std::string> LoadFreshest(const std::string& node) const override {
    std::lock_guard<std::mutex> lock(mu_);
    ++loads_;
    auto it = snapshots_.find(node);
    if (it == snapshots_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  uint64_t saves() const {
    std::lock_guard<std::mutex> lock(mu_);
    return saves_;
  }
  uint64_t loads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return loads_;
  }

  // Drops `node`'s snapshot (tests: force the no-snapshot fallback on a later rejoin).
  void Erase(const std::string& node) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshots_.erase(node);
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> snapshots_;
  uint64_t saves_ = 0;
  mutable uint64_t loads_ = 0;
};

}  // namespace txcache

#endif  // SRC_CACHE_SNAPSHOT_STORE_H_
