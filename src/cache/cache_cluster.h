// A fleet of cache servers addressed through consistent hashing (paper §4): every application
// node holds the full node list and maps keys directly to the owning server.
#ifndef SRC_CACHE_CACHE_CLUSTER_H_
#define SRC_CACHE_CACHE_CLUSTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_server.h"
#include "src/cluster/consistent_hash.h"

namespace txcache {

class CacheCluster {
 public:
  explicit CacheCluster(size_t virtual_nodes_per_node = 64) : ring_(virtual_nodes_per_node) {}

  // The cluster does not own servers; callers keep them alive.
  bool AddNode(CacheServer* server) {
    if (!ring_.AddNode(server->name())) {
      return false;
    }
    servers_[server->name()] = server;
    return true;
  }

  bool RemoveNode(const std::string& name) {
    if (!ring_.RemoveNode(name)) {
      return false;
    }
    servers_.erase(name);
    return true;
  }

  Result<CacheServer*> NodeForKey(const std::string& key) const {
    auto name_or = ring_.NodeForKey(key);
    if (!name_or.ok()) {
      return name_or.status();
    }
    auto it = servers_.find(name_or.value());
    if (it == servers_.end()) {
      return Status::Internal("ring references unknown node");
    }
    return it->second;
  }

  size_t node_count() const { return servers_.size(); }

  std::vector<CacheServer*> Nodes() const {
    std::vector<CacheServer*> out;
    out.reserve(servers_.size());
    for (const auto& [_, server] : servers_) {
      out.push_back(server);
    }
    return out;
  }

  CacheStats TotalStats() const {
    CacheStats total;
    for (const auto& [_, server] : servers_) {
      CacheStats s = server->stats();
      total.lookups += s.lookups;
      total.hits += s.hits;
      total.miss_compulsory += s.miss_compulsory;
      total.miss_staleness += s.miss_staleness;
      total.miss_capacity += s.miss_capacity;
      total.miss_consistency += s.miss_consistency;
      total.inserts += s.inserts;
      total.duplicate_inserts += s.duplicate_inserts;
      total.invalidation_messages += s.invalidation_messages;
      total.invalidation_truncations += s.invalidation_truncations;
      total.insert_time_truncations += s.insert_time_truncations;
      total.evictions_lru += s.evictions_lru;
      total.evictions_stale += s.evictions_stale;
      total.reorder_buffered += s.reorder_buffered;
    }
    return total;
  }

  void FlushAll() {
    for (const auto& [_, server] : servers_) {
      server->Flush();
    }
  }

  void ResetStatsAll() {
    for (const auto& [_, server] : servers_) {
      server->ResetStats();
    }
  }

  size_t TotalBytesUsed() const {
    size_t n = 0;
    for (const auto& [_, server] : servers_) {
      n += server->bytes_used();
    }
    return n;
  }

 private:
  ConsistentHashRing ring_;
  std::unordered_map<std::string, CacheServer*> servers_;
};

}  // namespace txcache

#endif  // SRC_CACHE_CACHE_CLUSTER_H_
